// Regenerates Table 1: data-set overview per collector project (RIPE,
// RouteViews, Isolario, PCH) plus the RIPE+RouteViews+Isolario aggregate "d".
// Runs the full pipeline: routes -> MRT emission -> extraction -> sanitation
// -> statistics. The right-most column quotes the paper's d values.
#include <iostream>

#include "common.h"
#include "eval/report.h"

using namespace bgpcu;

int main() {
  bench::print_banner("Table 1 — data sets overview", "Table 1");
  bench::WorldParams params;
  params.num_ases = 5000;
  params.peers = 130;
  auto world = bench::make_world(params);

  const collector::PathOutputs outputs(world.dataset);
  collector::EmissionConfig emission;
  emission.seed = params.seed;

  std::vector<collector::DatasetStats> stats;
  std::vector<std::string> names;
  collector::DatasetBundle aggregate;
  for (std::size_t i = 0; i < world.projects.size(); ++i) {
    collector::DatasetBuilder builder(world.topo.registry);
    for (const auto& emitted : collector::emit_project(world.topo, world.substrate, outputs,
                                                       world.projects[i], emission)) {
      builder.add_dump(emitted.rib_dump);
      builder.add_dump(emitted.update_dump);
    }
    auto bundle = builder.finish();
    stats.push_back(collector::compute_stats(bundle, world.topo.registry));
    names.push_back(world.projects[i].name);
    if (i < 3) aggregate.merge(std::move(bundle));  // d = RIPE+RouteViews+Isolario
  }
  // Insert the aggregate before PCH, like the paper's column order.
  stats.insert(stats.begin() + 3, collector::compute_stats(aggregate, world.topo.registry));
  names.insert(names.begin() + 3, "d(aggr)");

  eval::TextTable table({"Input data", names[0], names[1], names[2], names[3], names[4],
                         "paper d"});
  const auto row = [&](const std::string& label, auto field, const std::string& paper) {
    std::vector<std::string> cells{label};
    for (const auto& s : stats) cells.push_back(eval::with_commas(field(s)));
    cells.push_back(paper);
    table.add_row(std::move(cells));
  };
  using S = collector::DatasetStats;
  row("Entries total", [](const S& s) { return s.entries_total; }, "9,010M");
  row("incl. RIB entries", [](const S& s) { return s.rib_entries; }, "5,458M");
  row("Uniq. (path,comm)", [](const S& s) { return s.unique_tuples; }, "77M");
  row("AS numbers", [](const S& s) { return s.asns_raw; }, "80,651");
  row("After cleaning", [](const S& s) { return s.asns_clean; }, "72,951");
  row("incl. Leaf ASes", [](const S& s) { return s.leaf_ases; }, "60,420");
  row("incl. 32-bit ASes", [](const S& s) { return s.asns_32bit; }, "31,239");
  row("Collector peers", [](const S& s) { return s.collector_peers; }, "766");
  row("Communities", [](const S& s) { return s.communities_total; }, "39,703M");
  row("incl. large", [](const S& s) { return s.large_communities_total; }, "7,093M");
  row("Unique communities", [](const S& s) { return s.unique_communities; }, "84,186");
  row("incl. large", [](const S& s) { return s.unique_large_communities; }, "5,326");
  row("Uniq. upper (regular)", [](const S& s) { return s.uniq_upper_regular; }, "6,385");
  row("Uniq. upper (large)", [](const S& s) { return s.uniq_upper_large; }, "384");
  row("Uniq. upper (both)", [](const S& s) { return s.uniq_upper_both; }, "6,643");
  row("w/o private", [](const S& s) { return s.uniq_upper_wo_private; }, "6,025");
  row("w/o stray", [](const S& s) { return s.uniq_upper_wo_stray; }, "4,579");
  table.print(std::cout);

  std::cout << "\nShape checks (paper): RIB entries dominate entries for RIB projects;\n"
               "PCH contributes updates only; upper-field counts shrink monotonically\n"
               "both -> w/o private -> w/o stray.\n";
  return 0;
}
