// Regenerates Table 3: community-usage classification of real (here: wild
// synthetic) BGP data per collector project and for the aggregate d. PCH is
// classified from updates only, as in the paper.
#include <iostream>

#include "common.h"
#include "eval/report.h"

using namespace bgpcu;

namespace {

struct ClassCounts {
  std::uint64_t tagger = 0, silent = 0, tag_undecided = 0, tag_none = 0;
  std::uint64_t forward = 0, cleaner = 0, fwd_undecided = 0, fwd_none = 0;
  std::uint64_t tf = 0, tc = 0, sf = 0, sc = 0;
};

ClassCounts classify_all(const core::Dataset& dataset, const core::InferenceResult& result) {
  ClassCounts out;
  for (const auto asn : core::distinct_asns(dataset)) {
    const auto usage = result.usage(asn);
    switch (usage.tagging) {
      case core::TaggingClass::kTagger:
        ++out.tagger;
        break;
      case core::TaggingClass::kSilent:
        ++out.silent;
        break;
      case core::TaggingClass::kUndecided:
        ++out.tag_undecided;
        break;
      case core::TaggingClass::kNone:
        ++out.tag_none;
        break;
    }
    switch (usage.forwarding) {
      case core::ForwardingClass::kForward:
        ++out.forward;
        break;
      case core::ForwardingClass::kCleaner:
        ++out.cleaner;
        break;
      case core::ForwardingClass::kUndecided:
        ++out.fwd_undecided;
        break;
      case core::ForwardingClass::kNone:
        ++out.fwd_none;
        break;
    }
    const auto code = usage.code();
    if (code == "tf") ++out.tf;
    if (code == "tc") ++out.tc;
    if (code == "sf") ++out.sf;
    if (code == "sc") ++out.sc;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_banner("Table 3 — classification on collector data", "Table 3");
  bench::WorldParams params;
  params.num_ases = 5000;
  params.peers = 130;
  auto world = bench::make_world(params);

  const collector::PathOutputs outputs(world.dataset);
  collector::EmissionConfig emission;
  emission.seed = params.seed;

  std::vector<std::string> names;
  std::vector<ClassCounts> counts;
  collector::DatasetBundle aggregate;
  for (std::size_t i = 0; i < world.projects.size(); ++i) {
    collector::DatasetBuilder builder(world.topo.registry);
    for (const auto& emitted : collector::emit_project(world.topo, world.substrate, outputs,
                                                       world.projects[i], emission)) {
      builder.add_dump(emitted.rib_dump);
      builder.add_dump(emitted.update_dump);
    }
    auto bundle = builder.finish();
    const auto result = core::ColumnEngine().run(bundle.dataset);
    counts.push_back(classify_all(bundle.dataset, result));
    names.push_back(world.projects[i].name);
    if (i < 3) aggregate.merge(std::move(bundle));
  }
  const auto agg_result = core::ColumnEngine().run(aggregate.dataset);
  counts.insert(counts.begin() + 3, classify_all(aggregate.dataset, agg_result));
  names.insert(names.begin() + 3, "d(aggr)");

  eval::TextTable table({"Input data", names[0], names[1], names[2], names[3], names[4],
                         "paper d"});
  const auto row = [&](const std::string& label, auto field, const std::string& paper) {
    std::vector<std::string> cells{label};
    for (const auto& c : counts) cells.push_back(eval::with_commas(field(c)));
    cells.push_back(paper);
    table.add_row(std::move(cells));
  };
  using C = ClassCounts;
  row("tagger", [](const C& c) { return c.tagger; }, "860");
  row("silent", [](const C& c) { return c.silent; }, "12,315");
  row("undecided", [](const C& c) { return c.tag_undecided; }, "994");
  row("none", [](const C& c) { return c.tag_none; }, "58,782");
  table.add_rule();
  row("forward", [](const C& c) { return c.forward; }, "271");
  row("cleaner", [](const C& c) { return c.cleaner; }, "417");
  row("undecided", [](const C& c) { return c.fwd_undecided; }, "308");
  row("none", [](const C& c) { return c.fwd_none; }, "71,995");
  table.add_rule();
  row("tagger-forward", [](const C& c) { return c.tf; }, "84");
  row("tagger-cleaner", [](const C& c) { return c.tc; }, "81");
  row("silent-forward", [](const C& c) { return c.sf; }, "107");
  row("silent-cleaner", [](const C& c) { return c.sc; }, "251");
  table.print(std::cout);

  std::cout << "\nShape checks: taggers are a small multiple of hundreds while silent\n"
               "dominates the decided tagging classes; `none` dominates overall; the\n"
               "aggregate d yields the most classifications; PCH (updates only) the\n"
               "fewest; full classes are small with sc the most common.\n";
  return 0;
}
