// bench_sweep — the column-sweep kernel shootout, tracking the perf
// trajectory of the repo's hottest path across PRs.
//
// Kernels compared on one dataset (~168k unique tuples at default scale,
// the ROADMAP's reference size). Both implementations build a dense ASN
// index once up front; build and sweep are timed separately so the
// kernel-vs-kernel rows isolate what indexing changes *inside the loops*:
//
//   legacy_serial_kernel   the pre-IndexedDataset sweep, kept here verbatim
//                          as the baseline: a hash lookup
//                          (unordered_map::at) per path element per column
//                          per phase
//   indexed_serial_kernel  core::sweep_columns over an IndexedDataset with
//                          threads=1 — flat dense-id arrays, zero hash
//                          lookups in the inner loops
//   indexed_lanes_N        threads=N (N = 2, 4): lane partial counters
//                          merged per phase barrier
//   *_build                the one-time index constructions; indexed_build
//                          is also the stream engine's snapshot critical
//                          section (everything after it sweeps lock-free)
//
// All kernel outputs are verified bit-identical before timing is reported.
// On a single-core host the lane rows measure merge overhead, not speedup —
// the hardware_concurrency field in the JSON gives the context.
//
// --incremental adds the locked-phase shootout for the stream engine's
// snapshot protocol: `indexed_build` is what a rebuild-per-snapshot engine
// pays under its exclusive lock, `incremental_apply` is what the
// IncrementalIndex-maintaining engine pays for the same cut at a steady
// per-snapshot churn (1% of the tuple set removed + re-added). The swept
// output of the maintained index is verified bit-identical to the reference
// after every applied batch — any divergence exits non-zero, which is what
// lets CI run this as an optimized-build correctness gate.
//
// Usage: bench_sweep [--smoke] [--incremental] [--out FILE]
//   --smoke        small world + fewer reps (CI smoke mode; still runs
//                  every kernel including the parallel lanes)
//   --incremental  also run the incremental-vs-rebuild locked-phase mode
//   --out          where to write the machine-readable JSON results
//                  (default BENCH_sweep.json in the working directory)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common.h"
#include "core/engine.h"
#include "core/incremental.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;

namespace legacy {

/// The pre-indexing sweep kernel, preserved as the measurement baseline.
/// Functionally identical to core::sweep_columns; structurally the old
/// implementation: dense ASN index resolved through a hash map inside the
/// inner loops, a second full pass for max path length.
class AsnIndex {
 public:
  explicit AsnIndex(std::span<const core::TupleView> views) {
    for (const auto& view : views) {
      for (const auto asn : *view.path) {
        if (map_.emplace(asn, asns_.size()).second) asns_.push_back(asn);
      }
    }
  }

  [[nodiscard]] std::size_t of(bgp::Asn asn) const { return map_.at(asn); }
  [[nodiscard]] std::size_t size() const noexcept { return asns_.size(); }
  [[nodiscard]] const std::vector<bgp::Asn>& asns() const noexcept { return asns_; }

 private:
  std::unordered_map<bgp::Asn, std::size_t> map_;
  std::vector<bgp::Asn> asns_;
};

core::InferenceResult sweep_columns(std::span<const core::TupleView> views,
                                    const AsnIndex& index,
                                    const core::EngineConfig& config) {
  std::size_t max_len = 0;
  for (const auto& view : views) max_len = std::max(max_len, view.path->size());

  std::vector<core::UsageCounters> counters(index.size());
  std::vector<std::uint8_t> forward_flag(index.size(), 0);
  std::vector<std::uint8_t> tagger_flag(index.size(), 0);
  const auto snapshot = [&] {
    for (std::size_t i = 0; i < counters.size(); ++i) {
      forward_flag[i] = core::is_forward(counters[i], config.thresholds) ? 1 : 0;
      tagger_flag[i] = core::is_tagger(counters[i], config.thresholds) ? 1 : 0;
    }
  };
  const auto cond1 = [&](const std::vector<bgp::Asn>& path, std::size_t x) {
    for (std::size_t i = 0; i + 1 < x; ++i) {
      if (!forward_flag[index.of(path[i])]) return false;
    }
    return true;
  };

  std::size_t columns = max_len;
  if (config.max_columns != 0) columns = std::min(columns, config.max_columns);

  std::size_t swept = 0;
  for (std::size_t x = 1; x <= columns; ++x) {
    ++swept;
    std::uint64_t increments = 0;
    snapshot();
    for (const auto& view : views) {
      const auto& path = *view.path;
      if (path.size() < x || !cond1(path, x)) continue;
      auto& k = counters[index.of(path[x - 1])];
      if (view.upper_at(x - 1)) {
        ++k.t;
      } else {
        ++k.s;
      }
      ++increments;
    }
    snapshot();
    for (const auto& view : views) {
      const auto& path = *view.path;
      if (path.size() < x || !cond1(path, x)) continue;
      std::size_t t_pos = 0;
      for (std::size_t j = x + 1; j <= path.size(); ++j) {
        const std::size_t id = index.of(path[j - 1]);
        if (tagger_flag[id]) {
          t_pos = j;
          break;
        }
        if (!forward_flag[id]) break;
      }
      if (t_pos == 0) continue;
      auto& k = counters[index.of(path[x - 1])];
      if (view.upper_at(t_pos - 1)) {
        ++k.f;
      } else {
        ++k.c;
      }
      ++increments;
    }
    if (config.early_stop && increments == 0) break;
  }

  core::CounterMap out;
  out.reserve(index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    const auto& k = counters[i];
    if (k.t | k.s | k.f | k.c) out.emplace(index.asns()[i], k);
  }
  return core::InferenceResult(std::move(out), config.thresholds, swept);
}

}  // namespace legacy

struct KernelResult {
  std::string name;
  double best_ms = 0;
};

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool incremental = false;
  std::string out_path = "BENCH_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--incremental") == 0) {
      incremental = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_sweep [--smoke] [--incremental] [--out FILE]\n";
      return 2;
    }
  }

  bench::print_banner("Column-sweep kernel: legacy-hash vs indexed vs parallel lanes",
                      "engineering (hot-path kernel)");
  std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency() << "\n";

  // ~168k unique tuples at default scale (the ROADMAP's reference size);
  // --smoke shrinks the world an order of magnitude for CI.
  bench::WorldParams params;
  params.num_ases = smoke ? 800 : 6000;
  params.peers = smoke ? 12 : 28;
  auto world = bench::make_world(params);
  const int reps = smoke ? 2 : 5;

  std::vector<core::TupleView> views;
  views.reserve(world.dataset.size());
  for (const auto& tuple : world.dataset) {
    if (auto view = core::TupleView::prepare(tuple)) views.push_back(*view);
  }

  core::EngineConfig serial_config;
  serial_config.threads = 1;

  // Both kernels resolve ASNs to dense ids once up front; the difference
  // under measurement is what happens *inside the sweep loops* — the legacy
  // kernel re-resolves through the hash map per path element per column per
  // phase, the indexed kernel walks flat id arrays. Build and sweep are
  // timed separately so the "indexing alone" speedup is kernel-vs-kernel.
  const legacy::AsnIndex legacy_index(views);
  const core::IndexedDataset indexed(views);

  // Correctness gate before any timing: every kernel, bit-identical.
  const auto reference = legacy::sweep_columns(views, legacy_index, serial_config);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::EngineConfig config;
    config.threads = threads;
    const auto result = core::sweep_columns(indexed, config);
    if (result.counter_map() != reference.counter_map() ||
        result.columns_swept() != reference.columns_swept()) {
      std::cerr << "FATAL: kernel mismatch at threads=" << threads << "\n";
      return 1;
    }
  }
  std::cout << "verified: all kernels bit-identical (" << reference.counter_map().size()
            << " classified ASes, " << reference.columns_swept() << " columns)\n\n";

  std::vector<KernelResult> results;
  results.push_back({"legacy_serial_kernel", best_of(reps, [&] {
                       (void)legacy::sweep_columns(views, legacy_index, serial_config);
                     })});
  results.push_back({"indexed_serial_kernel", best_of(reps, [&] {
                       (void)core::sweep_columns(indexed, serial_config);
                     })});
  for (const std::size_t threads : {2u, 4u}) {
    core::EngineConfig config;
    config.threads = threads;
    results.push_back({"indexed_lanes_" + std::to_string(threads),
                       best_of(reps, [&] { (void)core::sweep_columns(indexed, config); })});
  }
  const double legacy_build_ms =
      best_of(reps, [&] { (void)legacy::AsnIndex(views); });
  // IndexedDataset construction is also the snapshot critical section: it is
  // the only part the stream engine runs under its lock.
  const double indexed_build_ms =
      best_of(reps, [&] { (void)core::IndexedDataset(views); });

  std::cout << "kernel best_ms (of " << reps << ")\n";
  for (const auto& r : results) std::printf("%-22s %10.2f\n", r.name.c_str(), r.best_ms);
  std::printf("%-22s %10.2f\n", "legacy_index_build", legacy_build_ms);
  std::printf("%-22s %10.2f\n", "indexed_build", indexed_build_ms);

  const double legacy_ms = results[0].best_ms;
  const double indexed_ms = results[1].best_ms;
  const double lanes4_ms = results.back().best_ms;
  const double legacy_total = legacy_build_ms + legacy_ms;
  const double indexed_total = indexed_build_ms + indexed_ms;
  std::printf("\nspeedup indexed_serial vs legacy_serial (kernel): %.2fx\n",
              legacy_ms / indexed_ms);
  std::printf("speedup indexed vs legacy (build + sweep): %.2fx\n",
              legacy_total / indexed_total);
  std::printf("speedup indexed_lanes_4 vs indexed_serial: %.2fx\n", indexed_ms / lanes4_ms);

  // ---- incremental-vs-rebuild locked-phase mode (--incremental) ----
  //
  // Simulates the stream engine's snapshot cadence at a steady churn: every
  // "snapshot" removes the 1% longest-resident tuples and re-adds them under
  // fresh keys (constant live set, so the reference result stays the
  // comparison oracle). What is timed is exactly the work each protocol does
  // under the engine's exclusive lock: a full IndexedDataset build
  // (rebuild-per-snapshot) vs an IncrementalIndex::apply of the churn batch.
  double incremental_apply_ms = 0;
  std::size_t churn = 0;
  if (incremental) {
    core::IncrementalIndex index;
    std::deque<std::pair<std::uint64_t, std::size_t>> order;  // key -> view index
    {
      std::vector<core::IndexDelta> bootstrap;
      bootstrap.reserve(views.size());
      for (std::size_t i = 0; i < views.size(); ++i) {
        bootstrap.push_back(
            {core::IndexDelta::Kind::kAdd, i, views[i].upper_mask, *views[i].path});
        order.emplace_back(i, i);
      }
      index.apply(std::move(bootstrap));
    }
    std::uint64_t next_key = views.size();
    churn = std::max<std::size_t>(1, views.size() / 100);
    const int churn_iters = smoke ? 4 : 10;

    for (int iter = 0; iter < churn_iters; ++iter) {
      std::vector<core::IndexDelta> batch;
      batch.reserve(2 * churn);
      for (std::size_t c = 0; c < churn; ++c) {
        const auto [key, view_index] = order.front();
        order.pop_front();
        batch.push_back({core::IndexDelta::Kind::kRemove, key, 0, {}});
        batch.push_back({core::IndexDelta::Kind::kAdd, next_key,
                         views[view_index].upper_mask, *views[view_index].path});
        order.emplace_back(next_key, view_index);
        ++next_key;
      }
      const auto start = Clock::now();
      index.apply(std::move(batch));
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start).count();
      if (iter == 0 || ms < incremental_apply_ms) incremental_apply_ms = ms;

      // Correctness gate every batch: the maintained index must sweep
      // bit-identically to the reference over the (unchanged) live set.
      const auto swept = core::sweep_columns(index.dataset(), serial_config);
      if (swept.counter_map() != reference.counter_map() ||
          swept.columns_swept() != reference.columns_swept()) {
        std::cerr << "FATAL: incremental index diverged from rebuilt reference at churn "
                     "iteration "
                  << iter << "\n";
        return 1;
      }
    }
    std::printf("\nincremental locked phase (%zu deltas/snapshot, %d snapshots, "
                "compactions %llu, rebuilds %llu)\n",
                2 * churn, churn_iters,
                static_cast<unsigned long long>(index.stats().group_compactions),
                static_cast<unsigned long long>(index.stats().full_rebuilds));
    std::printf("%-22s %10.2f\n", "incremental_apply", incremental_apply_ms);
    std::printf("speedup locked phase: incremental_apply vs indexed_build: %.1fx\n",
                indexed_build_ms / incremental_apply_ms);
    std::cout << "verified: incremental sweeps bit-identical through churn\n";
  }

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"bench\": \"sweep\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"tuples\": " << views.size() << ",\n"
       << "  \"classified_asns\": " << reference.counter_map().size() << ",\n"
       << "  \"columns_swept\": " << reference.columns_swept() << ",\n"
       << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency() << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"kernels\": {\n";
  for (const auto& r : results) {
    json << "    \"" << r.name << "_ms\": " << r.best_ms << ",\n";
  }
  json << "    \"legacy_index_build_ms\": " << legacy_build_ms << ",\n"
       << "    \"indexed_build_ms\": " << indexed_build_ms << "\n"
       << "  },\n"
       << "  \"speedup_indexed_vs_legacy_kernel\": " << legacy_ms / indexed_ms << ",\n"
       << "  \"speedup_indexed_vs_legacy_total\": " << legacy_total / indexed_total << ",\n"
       << "  \"speedup_lanes4_vs_indexed_serial\": " << indexed_ms / lanes4_ms;
  if (incremental) {
    json << ",\n  \"incremental\": {\n"
         << "    \"churn_deltas_per_snapshot\": " << 2 * churn << ",\n"
         << "    \"apply_best_ms\": " << incremental_apply_ms << ",\n"
         << "    \"rebuild_locked_ms\": " << indexed_build_ms << ",\n"
         << "    \"speedup_locked_phase\": " << indexed_build_ms / incremental_apply_ms
         << "\n  }";
  }
  json << "\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
