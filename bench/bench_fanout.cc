// Subscriber fan-out throughput: delivered events/sec as the subscriber
// count scales (128 / 1k / 8k loopback subscribers), measured from the
// first publish to the last byte delivered, with every subscriber drained
// concurrently by one poller-driven reader. Every tier re-checks that each
// subscriber's stream is bit-identical to the published sequence — the
// delivered-equals-published gate; any loss, duplication, or reorder is a
// correctness failure, exit 1. The 1k tier also runs against the legacy
// thread-per-connection server as the baseline the event-driven fan-out is
// measured over (the full run gates on >= 5x; --smoke scales down for CI
// and gates on correctness only). [--out FILE] records one JSON line
// (default BENCH_fanout.json).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "bgp/community.h"
#include "common.h"
#include "core/types.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/poller.h"
#include "net/server.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;

constexpr bgp::Asn kAsnSpace = 16;  ///< Changes per epoch: small events, many wakeups.

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

/// Raises RLIMIT_NOFILE toward `want` fds if the hard limit allows, and
/// returns the resulting soft limit (loopback fan-out costs ~3 eventfds per
/// subscriber, so the 8k tier needs more than common defaults).
std::size_t ensure_fd_budget(std::size_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < want) {
    rlimit next = rl;
    next.rlim_cur = rl.rlim_max == RLIM_INFINITY
                        ? static_cast<rlim_t>(want)
                        : std::min<rlim_t>(static_cast<rlim_t>(want), rl.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &next) == 0) rl = next;
  }
  return static_cast<std::size_t>(rl.rlim_cur);
}

struct Sub {
  std::unique_ptr<net::Connection> conn;
  net::FrameBuffer frames;
  std::vector<api::EpochDelta> deltas;
  bool eof = false;
};

struct FanoutResult {
  std::size_t subscribers = 0;
  double events_per_sec = 0;
  double wall_ms = 0;
  std::uint64_t delivered = 0;
  std::uint64_t expected = 0;
  bool exact = false;  ///< delivered-equals-published, per subscriber.
};

std::vector<std::uint8_t> next_frame(net::Connection& conn, net::FrameBuffer& frames) {
  std::vector<std::uint8_t> chunk(4096);
  for (;;) {
    auto frame = frames.extract();
    if (!frame.empty()) return frame;
    const auto n = conn.read_some(chunk);
    if (n == 0) return {};
    frames.append(std::span(chunk.data(), n));
  }
}

/// One tier: `subscribers` match-all subscriptions, `epochs` published
/// epochs, timed from first publish to last delivery.
FanoutResult bench_fanout(std::size_t subscribers, stream::Epoch epochs,
                          net::ServeMode mode) {
  // window_epochs = 1: the driver flips tagging parity every epoch; a longer
  // window would union consecutive epochs and publish no class changes.
  api::Service service({.stream = {.shards = 2, .window_epochs = 1}});
  auto listener = std::make_shared<net::LoopbackListener>();
  net::ServerConfig config;
  config.max_connections = subscribers + 8;
  config.mode = mode;
  net::Server server(service, listener, config);
  server.start();

  std::vector<Sub> subs(subscribers);
  for (auto& sub : subs) {
    sub.conn = listener->connect();
    if (!sub.conn->write_all(api::encode_hello({api::kProtocolVersion, ""}))) return {};
    if (next_frame(*sub.conn, sub.frames).empty()) return {};
    if (!sub.conn->write_all(api::encode_subscribe({1, {}, std::nullopt}))) return {};
    if (next_frame(*sub.conn, sub.frames).empty()) return {};
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> received{0};
  std::thread drainer([&] {
    auto poller = net::Poller::create(net::default_poller_backend());
    for (std::size_t i = 0; i < subscribers; ++i) {
      poller->set(subs[i].conn->poll_info().read_fd, i, true, false);
    }
    std::vector<net::PollerEvent> ready;
    std::vector<std::uint8_t> chunk(1 << 16);
    while (!stop.load()) {
      (void)poller->wait(ready, 20);
      for (const auto& event : ready) {
        auto& sub = subs[event.token];
        if (sub.eof) continue;
        for (;;) {
          std::size_t n = 0;
          const auto status = sub.conn->try_read(chunk, n);
          if (status == net::IoStatus::kOk) {
            sub.frames.append(std::span(chunk.data(), n));
            continue;
          }
          if (status == net::IoStatus::kEof) {
            sub.eof = true;
            poller->remove(sub.conn->poll_info().read_fd);
          }
          break;
        }
        for (;;) {
          const auto frame = sub.frames.extract();
          if (frame.empty()) break;
          if (api::peek_frame_type(frame) != api::FrameType::kEvent) continue;
          sub.deltas.push_back(api::decode_event(frame).delta);
          received.fetch_add(1);
        }
      }
    }
  });

  // Every epoch flips every AS's tagging, so each publish reaches every
  // subscriber (match-all filters: one encoded buffer, N queues).
  std::vector<api::EpochDelta> published;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(subscribers) * epochs;
  const auto t0 = Clock::now();
  for (stream::Epoch e = 0; e < epochs; ++e) {
    if (e > 0) (void)service.advance_epoch();
    core::Dataset batch;
    for (bgp::Asn a = 1; a <= kAsnSpace; ++a) {
      batch.push_back(tuple(a, 1000 + a, (e + a) % 2 == 0));
    }
    (void)service.ingest(std::move(batch));
    published.push_back(service.publish());
  }
  const auto deadline = Clock::now() + std::chrono::seconds(300);
  while (received.load() < expected && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto t1 = Clock::now();
  stop.store(true);
  drainer.join();
  server.stop();

  FanoutResult out;
  out.subscribers = subscribers;
  out.delivered = received.load();
  out.expected = expected;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.events_per_sec =
      out.wall_ms > 0 ? static_cast<double>(out.delivered) / (out.wall_ms / 1000.0) : 0;
  out.exact = out.delivered == expected;
  for (std::size_t i = 0; out.exact && i < subscribers; ++i) {
    std::size_t at = 0;
    for (const auto& delta : published) {
      if (delta.changes.empty()) continue;
      if (at >= subs[i].deltas.size() || subs[i].deltas[at].epoch != delta.epoch ||
          !(subs[i].deltas[at].changes == delta.changes)) {
        out.exact = false;
        break;
      }
      ++at;
    }
    if (at != subs[i].deltas.size()) out.exact = false;
  }
  return out;
}

int run(bool smoke, const std::string& out_path) {
  bench::print_banner(
      "Subscriber fan-out — delivered events/sec vs subscriber count, "
      "event loop vs thread-per-connection",
      "engineering (net subsystem)");

  std::vector<std::size_t> tiers =
      smoke ? std::vector<std::size_t>{128} : std::vector<std::size_t>{128, 1024, 8192};
  const stream::Epoch epochs = smoke ? 20 : 60;
  const std::size_t baseline_subs = smoke ? 128 : 1024;

  // ~3 eventfds per loopback subscriber plus headroom for everything else.
  const std::size_t fd_limit = ensure_fd_budget(4 * tiers.back() + 512);
  const std::size_t fd_fit = fd_limit > 512 ? (fd_limit - 512) / 4 : 64;
  for (auto& tier : tiers) {
    if (tier > fd_fit) {
      std::printf("fd limit %zu clamps the %zu-subscriber tier to %zu\n",
                  fd_limit, tier, fd_fit);
      tier = fd_fit;
    }
  }

  std::vector<FanoutResult> results;
  for (const auto tier : tiers) {
    const auto r = bench_fanout(tier, epochs, net::ServeMode::kEventLoop);
    std::printf("event loop, %6zu subscribers: %10.0f events/s over %zu epochs "
                "(%.0f ms wall, %llu/%llu delivered)%s\n",
                r.subscribers, r.events_per_sec, static_cast<std::size_t>(epochs),
                r.wall_ms, static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.expected),
                smoke ? " (smoke scale)" : "");
    if (!r.exact) {
      std::cerr << "FAIL: delivered stream diverges from the published sequence at "
                << r.subscribers << " subscribers\n";
      return 1;
    }
    results.push_back(r);
  }
  std::cout << "delivered-equals-published: identical on every tier\n";

  const auto baseline =
      bench_fanout(baseline_subs, epochs, net::ServeMode::kThreadPerConnection);
  std::printf("thread-per-connection baseline, %6zu subscribers: %10.0f events/s "
              "(%.0f ms wall, %llu/%llu delivered)\n",
              baseline.subscribers, baseline.events_per_sec, baseline.wall_ms,
              static_cast<unsigned long long>(baseline.delivered),
              static_cast<unsigned long long>(baseline.expected));
  if (!baseline.exact) {
    std::cerr << "FAIL: thread-per-connection baseline diverged\n";
    return 1;
  }
  const FanoutResult* peer = nullptr;
  for (const auto& r : results) {
    if (r.subscribers == baseline.subscribers) peer = &r;
  }
  const double speedup = (peer != nullptr && baseline.events_per_sec > 0)
                             ? peer->events_per_sec / baseline.events_per_sec
                             : 0;
  std::printf("event-loop speedup over thread-per-connection at %zu subscribers: %.1fx\n",
              baseline.subscribers, speedup);
  if (!smoke && speedup < 5.0) {
    std::cerr << "FAIL: event-driven fan-out must be >= 5x the thread-per-connection "
                 "baseline, got "
              << speedup << "x\n";
    return 1;
  }

  std::string tiers_json;
  for (const auto& r : results) {
    char item[192];
    std::snprintf(item, sizeof item,
                  "%s{\"subscribers\":%zu,\"events_per_sec\":%.0f,\"wall_ms\":%.1f}",
                  tiers_json.empty() ? "" : ",", r.subscribers, r.events_per_sec,
                  r.wall_ms);
    tiers_json += item;
  }
  char json[640];
  std::snprintf(json, sizeof json,
                "{\"bench\":\"fanout\",\"smoke\":%s,\"epochs\":%zu,"
                "\"tiers\":[%s],"
                "\"baseline_subscribers\":%zu,\"baseline_events_per_sec\":%.0f,"
                "\"speedup_vs_threaded\":%.2f,\"delivered_equals_published\":true}\n",
                smoke ? "true" : "false", static_cast<std::size_t>(epochs),
                tiers_json.c_str(), baseline.subscribers, baseline.events_per_sec,
                speedup);
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "recorded " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fanout.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return run(smoke, out_path);
}
