// Wire-codec throughput: encode/decode rates for snapshot and delta-batch
// frames at service-realistic sizes, plus the size of the binary artifact
// against the v1 text database it replaces. The codec sits on the publish
// path of the streaming service (one snapshot + one delta frame per epoch),
// so sustained MB/s and records/s here bound how fast epochs can be served.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "api/service.h"
#include "api/wire.h"
#include "common.h"
#include "core/database.h"
#include "stream/delta.h"
#include "topology/rng.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;

/// Counter table shaped like a real inference run: dense low ASNs plus a
/// 32-bit tail, counter magnitudes spread across the varint length classes.
core::InferenceResult synthetic_result(std::size_t ases, std::uint64_t seed) {
  topology::Rng rng(seed);
  core::CounterMap counters;
  counters.reserve(ases);
  while (counters.size() < ases) {
    const bgp::Asn asn = rng.chance(0.15)
                             ? 0x40000000u + static_cast<bgp::Asn>(rng.below(1u << 20))
                             : 1 + static_cast<bgp::Asn>(rng.below(400000));
    core::UsageCounters k;
    k.t = rng.below(1u << 12);
    k.s = rng.chance(0.25) ? rng.below(1ull << 34) : rng.below(64);
    k.f = rng.below(1u << 10);
    k.c = rng.chance(0.5) ? 0 : rng.below(1u << 16);
    counters.emplace(asn, k);
  }
  return core::InferenceResult(std::move(counters), core::Thresholds{}, 7);
}

api::EpochDelta synthetic_delta(std::size_t changes, std::uint64_t seed) {
  topology::Rng rng(seed);
  api::EpochDelta delta;
  delta.epoch = 12345;
  std::uint64_t asn = 0;
  while (delta.changes.size() < changes) {
    asn += 1 + rng.below(64);
    stream::ClassChange change;
    change.asn = static_cast<bgp::Asn>(asn);
    change.before = {static_cast<core::TaggingClass>(rng.below(4)),
                     static_cast<core::ForwardingClass>(rng.below(4))};
    change.after = {static_cast<core::TaggingClass>(rng.below(4)),
                    static_cast<core::ForwardingClass>(rng.below(4))};
    delta.changes.push_back(change);
  }
  return delta;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main() {
  bench::print_banner("Wire codec encode/decode throughput",
                      "engineering (api subsystem)");
  const auto scale = bench::scale_factor();
  const auto ases = static_cast<std::size_t>(200000 * scale);
  const auto changes = static_cast<std::size_t>(50000 * scale);
  constexpr int kReps = 5;

  const auto snapshot = synthetic_result(std::max<std::size_t>(ases, 1000), 42);
  std::stringstream text;
  core::write_database(text, snapshot);
  const auto text_bytes = text.str().size();

  // Snapshot encode (best of kReps).
  std::vector<std::uint8_t> frame;
  double encode_s = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    frame = api::encode_snapshot(snapshot);
    encode_s = std::min(encode_s, seconds_since(start));
  }
  double decode_s = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    const auto decoded = api::decode_snapshot(frame);
    decode_s = std::min(decode_s, seconds_since(start));
    if (decoded.counter_map().size() != snapshot.counter_map().size()) return 1;
  }

  const double n = static_cast<double>(snapshot.counter_map().size());
  std::cout << "snapshot: " << snapshot.counter_map().size() << " ASes\n";
  std::cout << "  wire size " << frame.size() << " B (" << fmt(8.0 * frame.size() / n)
            << " bits/AS), text size " << text_bytes << " B — "
            << fmt(100.0 * frame.size() / static_cast<double>(text_bytes))
            << "% of text\n";
  std::cout << "  encode " << fmt(n / encode_s / 1e6) << " M records/s ("
            << fmt(frame.size() / encode_s / 1e6) << " MB/s)\n";
  std::cout << "  decode " << fmt(n / decode_s / 1e6) << " M records/s ("
            << fmt(frame.size() / decode_s / 1e6) << " MB/s)\n";

  // Delta batch.
  const auto delta = synthetic_delta(std::max<std::size_t>(changes, 1000), 7);
  std::vector<std::uint8_t> delta_frame;
  double delta_encode_s = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    delta_frame = api::encode_delta_batch(delta);
    delta_encode_s = std::min(delta_encode_s, seconds_since(start));
  }
  double delta_decode_s = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    const auto decoded = api::decode_delta_batch(delta_frame);
    delta_decode_s = std::min(delta_decode_s, seconds_since(start));
    if (decoded.changes.size() != delta.changes.size()) return 1;
  }
  const double m = static_cast<double>(delta.changes.size());
  std::cout << "delta batch: " << delta.changes.size() << " changes, "
            << delta_frame.size() << " B ("
            << fmt(8.0 * delta_frame.size() / m) << " bits/change)\n";
  std::cout << "  encode " << fmt(m / delta_encode_s / 1e6) << " M changes/s, decode "
            << fmt(m / delta_decode_s / 1e6) << " M changes/s\n";
  return 0;
}
