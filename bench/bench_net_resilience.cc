// Networking resilience costs: (1) reconnect-to-first-delta latency — the
// time from a killed link to the resumed subscription delivering the next
// epoch, the recovery window a downstream consumer actually experiences —
// and (2) shed throughput — how fast an overloaded server turns away
// over-budget requests with kBusy while staying responsive. Both run over
// the in-process loopback transport so the numbers isolate protocol and
// client/server machinery from kernel TCP. Every run re-checks that the
// resumed delta stream is bit-identical to the published sequence; any
// divergence is a correctness failure, exit 1. --smoke scales down for CI;
// [--out FILE] records one JSON line (default BENCH_net.json).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "bgp/community.h"
#include "common.h"
#include "core/types.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/resilient.h"
#include "net/server.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;

core::PathCommTuple flip_tuple(bgp::Asn peer, bgp::Asn origin) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  return t;
}

/// Advances the service one epoch and publishes a small, deterministic delta
/// (one newly tagged AS per epoch).
api::EpochDelta publish_next(api::Service& service, stream::Epoch& published) {
  if (published > 0) (void)service.advance_epoch();
  (void)service.ingest({flip_tuple(100 + static_cast<bgp::Asn>(published), 20)});
  ++published;
  return service.publish();
}

struct ReconnectResult {
  double p50_ms = 0;
  double max_ms = 0;
  std::uint64_t reconnects = 0;
  bool diverged = false;
};

/// Kills the link `rounds` times; each round publishes one more epoch while
/// the link is down and times next_event() from the kill to the resumed
/// delta. The received sequence is compared against the published one.
ReconnectResult bench_reconnect(std::size_t rounds) {
  api::Service service({.stream = {.window_epochs = 1}});
  auto listener = std::make_shared<net::LoopbackListener>();
  net::Server server(service, listener, {});
  server.start();

  net::Connection* live = nullptr;
  net::ResilientConfig config;
  config.sleep_fn = [](std::chrono::milliseconds) {};  // backoff out of the timing
  net::ResilientClient client(
      [&] {
        auto conn = listener->connect();
        live = conn.get();
        return conn;
      },
      std::move(config));

  stream::Epoch published = 0;
  std::vector<api::EpochDelta> reference;
  reference.push_back(publish_next(service, published));
  client.subscribe({}, /*replay_from=*/0);

  std::vector<api::EpochDelta> got;
  std::vector<double> latencies;
  const auto consume_delta = [&]() -> bool {
    for (;;) {
      const auto event = client.next_event();
      if (!event) return false;
      if (event->kind == net::ResilientClient::Event::Kind::kDelta) {
        got.push_back(event->delta);
        return true;
      }
    }
  };
  if (!consume_delta()) return {0, 0, 0, true};

  for (std::size_t round = 0; round < rounds; ++round) {
    live->close();
    reference.push_back(publish_next(service, published));
    const auto t0 = Clock::now();
    if (!consume_delta()) return {0, 0, 0, true};
    latencies.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  server.stop();

  ReconnectResult out;
  out.reconnects = client.stats().reconnects;
  out.diverged = got.size() != reference.size();
  for (std::size_t i = 0; !out.diverged && i < got.size(); ++i) {
    out.diverged = got[i].epoch != reference[i].epoch ||
                   !(got[i].changes == reference[i].changes);
  }
  std::sort(latencies.begin(), latencies.end());
  out.p50_ms = latencies.empty() ? 0 : latencies[latencies.size() / 2];
  out.max_ms = latencies.empty() ? 0 : latencies.back();
  return out;
}

struct ShedResult {
  double sheds_per_sec = 0;
  std::uint64_t sheds = 0;
  std::uint64_t answered = 0;
  bool healthy = false;  ///< Server still answered after the flood.
};

/// Floods one connection with `requests` pipelined stats queries against a
/// token bucket that admits almost none of them, and times how fast the
/// server turns the excess away as kBusy.
ShedResult bench_shed(std::size_t requests) {
  api::Service service({.stream = {.window_epochs = 1}});
  auto listener = std::make_shared<net::LoopbackListener>();
  net::ServerConfig config;
  config.max_requests_per_sec = 100;  // flood outpaces this by orders of magnitude
  config.request_burst = 1;
  config.busy_retry_after_ms = 5;
  config.write_queue_limit = requests + 64;  // sheds are queued, not dropped
  net::Server server(service, listener, config);
  server.start();

  auto conn = listener->connect();
  net::FrameBuffer frames;
  std::vector<std::uint8_t> chunk(1 << 16);
  const auto next_frame = [&]() -> std::vector<std::uint8_t> {
    for (;;) {
      auto frame = frames.extract();
      if (!frame.empty()) return frame;
      const auto n = conn->read_some(chunk);
      if (n == 0) return {};
      frames.append(std::span(chunk.data(), n));
    }
  };

  (void)conn->write_all(api::encode_hello2({api::kProtocolVersion, "", api::kAllFeatures}));
  (void)api::decode_welcome2(next_frame());

  // Reader thread drains responses so the flood never deadlocks on a full
  // write queue in either direction.
  std::uint64_t sheds = 0, answered = 0;
  const api::QueryRequest stats_query{.kind = api::QueryKind::kStats};
  const auto t0 = Clock::now();
  std::size_t outstanding = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    if (!conn->write_all(api::encode_request({i + 1, stats_query}))) break;
    ++outstanding;
    // Drain in batches to bound the in-flight window without lockstep RTTs.
    while (outstanding >= 256) {
      const auto frame = next_frame();
      if (frame.empty()) { outstanding = 0; break; }
      --outstanding;
      if (api::peek_frame_type(frame) == api::FrameType::kBusy) ++sheds; else ++answered;
    }
  }
  while (outstanding > 0) {
    const auto frame = next_frame();
    if (frame.empty()) break;
    --outstanding;
    if (api::peek_frame_type(frame) == api::FrameType::kBusy) ++sheds; else ++answered;
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  // Liveness gate: a ping still comes back after the flood.
  bool healthy = false;
  if (conn->write_all(api::encode_ping({0xBEEF}))) {
    for (;;) {
      const auto frame = next_frame();
      if (frame.empty()) break;
      if (api::peek_frame_type(frame) == api::FrameType::kPong) { healthy = true; break; }
    }
  }
  conn->close();
  server.stop();

  ShedResult out;
  out.sheds = sheds;
  out.answered = answered;
  out.sheds_per_sec = elapsed > 0 ? static_cast<double>(sheds) / elapsed : 0;
  out.healthy = healthy;
  return out;
}

int run(bool smoke, const std::string& out_path) {
  bench::print_banner("Networking resilience — reconnect recovery latency, "
                      "overload shed throughput",
                      "engineering (net subsystem)");

  const std::size_t rounds = smoke ? 20 : 100;
  const std::size_t flood = smoke ? 5000 : 50000;

  const auto reconnect = bench_reconnect(rounds);
  std::printf("reconnect-to-first-delta over %zu link kills: p50 %.3f ms, max %.3f ms "
              "(%llu reconnects)%s\n",
              rounds, reconnect.p50_ms, reconnect.max_ms,
              static_cast<unsigned long long>(reconnect.reconnects),
              smoke ? " (smoke scale)" : "");
  if (reconnect.diverged) {
    std::cerr << "FAIL: resumed delta stream diverges from the published sequence\n";
    return 1;
  }
  std::cout << "resume-vs-published: identical\n";

  const auto shed = bench_shed(flood);
  std::printf("shed throughput over %zu flooded requests: %llu shed, %llu answered, "
              "%.0f sheds/s\n",
              flood, static_cast<unsigned long long>(shed.sheds),
              static_cast<unsigned long long>(shed.answered), shed.sheds_per_sec);
  if (!shed.healthy) {
    std::cerr << "FAIL: server stopped answering after the flood\n";
    return 1;
  }
  if (shed.sheds == 0) {
    std::cerr << "FAIL: admission control shed nothing under flood\n";
    return 1;
  }
  std::cout << "post-flood liveness: ping answered\n";

  char json[512];
  std::snprintf(json, sizeof json,
                "{\"bench\":\"net_resilience\",\"smoke\":%s,"
                "\"reconnects\":%llu,\"reconnect_p50_ms\":%.3f,"
                "\"reconnect_max_ms\":%.3f,\"flood_requests\":%zu,"
                "\"sheds\":%llu,\"answered\":%llu,\"sheds_per_sec\":%.0f,"
                "\"sequence_divergence\":false}\n",
                smoke ? "true" : "false",
                static_cast<unsigned long long>(reconnect.reconnects),
                reconnect.p50_ms, reconnect.max_ms, flood,
                static_cast<unsigned long long>(shed.sheds),
                static_cast<unsigned long long>(shed.answered), shed.sheds_per_sec);
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "recorded " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return run(smoke, out_path);
}
