// Regenerates Figure 5: community source-group counts (peer / foreign /
// stray / private) observed at the fully-classified collector peers, split
// by full class. The paper plots these as log-scale heat strips; we print
// the per-class totals and a per-peer breakdown for the busiest peers.
#include <algorithm>
#include <iostream>

#include "common.h"
#include "core/community_source.h"
#include "eval/report.h"

using namespace bgpcu;

int main() {
  bench::print_banner("Figure 5 — community types at fully-classified peers", "Fig. 5");
  bench::WorldParams params;
  params.num_ases = 5000;
  params.peers = 90;
  auto world = bench::make_world(params);
  const auto result = world.infer();

  struct PeerRow {
    bgp::Asn peer = 0;
    std::string cls;
    core::SourceGroupCounts counts;
  };
  std::unordered_map<bgp::Asn, PeerRow> rows;
  for (const auto& tuple : world.dataset) {
    const auto usage = result.usage(tuple.peer());
    if (!usage.full()) continue;
    auto& row = rows[tuple.peer()];
    row.peer = tuple.peer();
    row.cls = usage.code();
    row.counts += core::count_sources(tuple, world.topo.registry);
  }

  // Per-class aggregate: the four strips of the figure.
  for (const std::string cls : {"tf", "tc", "sf", "sc"}) {
    core::SourceGroupCounts total;
    std::size_t peers = 0;
    for (const auto& [asn, row] : rows) {
      if (row.cls != cls) continue;
      total += row.counts;
      ++peers;
    }
    std::cout << "\nclass " << cls << " (" << peers << " fully-classified peers)\n";
    eval::TextTable table({"type", "communities"});
    for (const auto group : {core::SourceGroup::kPeer, core::SourceGroup::kForeign,
                             core::SourceGroup::kStray, core::SourceGroup::kPrivate}) {
      table.add_row({core::to_string(group), eval::with_commas(total.of(group))});
    }
    table.print(std::cout);
  }

  // Busiest individual peers, ordered like the figure's x-axis.
  std::vector<PeerRow> ordered;
  for (const auto& [asn, row] : rows) ordered.push_back(row);
  std::sort(ordered.begin(), ordered.end(),
            [](const PeerRow& a, const PeerRow& b) { return a.counts.total() > b.counts.total(); });
  std::cout << "\nbusiest fully-classified peers\n";
  eval::TextTable table({"peer AS", "class", "peer", "foreign", "stray", "private"});
  for (std::size_t i = 0; i < ordered.size() && i < 12; ++i) {
    const auto& row = ordered[i];
    table.add_row({std::to_string(row.peer), row.cls,
                   eval::with_commas(row.counts.of(core::SourceGroup::kPeer)),
                   eval::with_commas(row.counts.of(core::SourceGroup::kForeign)),
                   eval::with_commas(row.counts.of(core::SourceGroup::kStray)),
                   eval::with_commas(row.counts.of(core::SourceGroup::kPrivate))});
  }
  table.print(std::cout);

  std::cout << "\npaper shape: peer communities appear for t* classes and (almost)\n"
               "vanish for s*; foreign communities appear for *f and (almost) vanish\n"
               "for *c; stray/private appear across all classes since the inference\n"
               "ignores them.\n";
  return 0;
}
