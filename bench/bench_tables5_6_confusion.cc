// Regenerates Tables 5 and 6: full confusion matrices (assigned roles,
// including hidden and leaf sub-rows, versus classification result) for
// every verification scenario.
#include <iostream>

#include "common.h"
#include "eval/metrics.h"
#include "eval/report.h"

using namespace bgpcu;

int main() {
  bench::print_banner("Tables 5+6 — confusion matrices per scenario", "Tables 5, 6");
  bench::WorldParams params;
  params.num_ases = 4000;
  params.peers = 80;
  params.with_pollution = false;
  auto world = bench::make_world(params);

  const sim::ScenarioKind kinds[] = {
      sim::ScenarioKind::kAllTf,  sim::ScenarioKind::kAllTc,    sim::ScenarioKind::kRandom,
      sim::ScenarioKind::kRandomNoise, sim::ScenarioKind::kRandomP, sim::ScenarioKind::kRandomPp,
  };

  for (const auto kind : kinds) {
    sim::ScenarioConfig config;
    config.kind = kind;
    config.seed = params.seed;
    const auto truth = sim::build_scenario(world.topo, world.substrate, config);
    const auto result = core::ColumnEngine().run(truth.dataset);
    const auto ev = eval::evaluate_scenario(world.topo, truth, result);

    std::cout << "\n=== scenario " << sim::to_string(kind) << " ===\n";
    std::cout << "tagging (Table 5 block)\n";
    eval::TextTable tag({"assigned \\ result", "tagger", "silent", "undecided", "none"});
    for (std::size_t r = 0; r < static_cast<std::size_t>(eval::TagRow::kCount); ++r) {
      const auto row = static_cast<eval::TagRow>(r);
      if (ev.tagging.row_total(row) == 0) continue;
      tag.add_row({eval::to_string(row), eval::with_commas(ev.tagging.at(row, 0)),
                   eval::with_commas(ev.tagging.at(row, 1)),
                   eval::with_commas(ev.tagging.at(row, 2)),
                   eval::with_commas(ev.tagging.at(row, 3))});
    }
    tag.print(std::cout);

    std::cout << "forwarding (Table 6 block)\n";
    eval::TextTable fwd({"assigned \\ result", "forward", "cleaner", "undecided", "none"});
    for (std::size_t r = 0; r < static_cast<std::size_t>(eval::FwdRow::kCount); ++r) {
      const auto row = static_cast<eval::FwdRow>(r);
      if (ev.forwarding.row_total(row) == 0) continue;
      fwd.add_row({eval::to_string(row), eval::with_commas(ev.forwarding.at(row, 0)),
                   eval::with_commas(ev.forwarding.at(row, 1)),
                   eval::with_commas(ev.forwarding.at(row, 2)),
                   eval::with_commas(ev.forwarding.at(row, 3))});
    }
    fwd.print(std::cout);
  }

  std::cout << "\npaper shape: hidden and leaf rows land in `none` (no counters); in\n"
               "consistent scenarios the visible diagonal is exact; noise moves silent\n"
               "and cleaner mass into `undecided`; selective scenarios split the\n"
               "selective row across tagger/silent/undecided.\n";
  return 0;
}
