// Streaming ingest throughput: tuples/sec into the stream engine under
// churn-shaped input, single-shard vs. sharded, single- vs. multi-threaded.
// The sharded counter tables are the repo's first concurrent hot path; this
// bench records how ingest scales when the per-shard mutexes stop being one
// global lock. Also reports snapshot latency (cold sweep vs. cached).
//
// Scaling expectations depend on hardware: with N usable cores, 4 shards x 4
// threads should beat 1 shard x 4 threads by >= 2x (lock contention gone,
// work parallel). On a single-core container the sharded run can only
// recover the contention overhead, not parallelize — the printed
// hardware_concurrency line gives the context for the recorded ratio.
// With --metrics-overhead [--out FILE], instead runs the observability
// overhead check: the same churn-shaped ingest with the obs instrumentation
// enabled vs. disabled (obs::set_enabled), recording both rates and the
// relative delta as JSON (FILE defaults to BENCH_obs.json). The CI gate
// keeps the relaxed-atomic hot-path instrumentation honest.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "obs/metrics.h"
#include "sim/churn.h"
#include "stream/engine.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;

struct RunResult {
  double tuples_per_sec = 0;
  std::uint64_t tuples = 0;
};

/// Ingests `per_thread` batch lists from `threads` workers into one engine.
RunResult run_ingest(const std::vector<std::vector<core::Dataset>>& per_thread,
                     std::size_t shards) {
  stream::StreamEngine engine({.shards = shards});
  std::uint64_t total = 0;
  // ingest() consumes its batch; deep-copy the input *outside* the timed
  // region so the clock sees engine cost, not std::vector duplication.
  auto consumable = per_thread;
  for (const auto& batches : consumable) {
    for (const auto& b : batches) total += b.size();
  }

  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(consumable.size());
    for (auto& batches : consumable) {
      workers.emplace_back([&engine, &batches] {
        for (auto& batch : batches) (void)engine.ingest(std::move(batch));
      });
    }
  }
  const auto elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  return {static_cast<double>(total) / elapsed, total};
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

/// The shared churn-shaped input: daily observation batches over the wild
/// dataset, re-announcements included (refresh-heavy, like real update
/// feeds), split into poll-sized ingest chunks.
std::vector<core::Dataset> make_chunks(std::uint64_t& total_tuples) {
  bench::WorldParams params;
  params.num_ases = 3000;
  params.peers = 60;
  auto world = bench::make_world(params);

  sim::ChurnConfig churn;
  constexpr std::uint32_t kDays = 12;
  constexpr std::size_t kChunk = 4096;  ///< Tuples per ingest call (one MRT poll).
  std::vector<core::Dataset> chunks;
  total_tuples = 0;
  for (const auto& day : sim::day_batches(world.dataset, churn, kDays)) {
    for (std::size_t start = 0; start < day.size(); start += kChunk) {
      chunks.emplace_back(day.begin() + static_cast<std::ptrdiff_t>(start),
                          day.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(start + kChunk, day.size())));
      total_tuples += chunks.back().size();
    }
  }
  return chunks;
}

/// --metrics-overhead: ingest rate with the obs hot-path instrumentation on
/// vs. off. The delta is what every counter bump and stage timer costs; the
/// CI gate fails the build if it creeps past a few percent.
int run_metrics_overhead(const std::string& out_path) {
  bench::print_banner("Observability overhead — ingest with metrics on vs. off",
                      "engineering (obs subsystem)");
  std::uint64_t total_tuples = 0;
  const auto chunks = make_chunks(total_tuples);
  std::cout << "input: " << total_tuples << " tuples in " << chunks.size()
            << " ingest chunks (4 shards, 4 threads)\n";

  constexpr std::size_t kShards = 4;
  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<core::Dataset>> per_thread(kThreads);
  for (std::size_t d = 0; d < chunks.size(); ++d) {
    per_thread[d % kThreads].push_back(chunks[d]);
  }

  // Interleave enabled/disabled reps so thermal or scheduler drift hits both
  // sides equally; keep the best of each.
  RunResult best_on, best_off;
  for (int rep = 0; rep < 3; ++rep) {
    obs::set_enabled(true);
    const auto on = run_ingest(per_thread, kShards);
    if (on.tuples_per_sec > best_on.tuples_per_sec) best_on = on;
    obs::set_enabled(false);
    const auto off = run_ingest(per_thread, kShards);
    if (off.tuples_per_sec > best_off.tuples_per_sec) best_off = off;
  }
  obs::set_enabled(true);

  const double overhead_pct =
      best_off.tuples_per_sec > 0
          ? (best_off.tuples_per_sec - best_on.tuples_per_sec) / best_off.tuples_per_sec * 100.0
          : 0.0;
  std::cout << "metrics_on  " << fmt(best_on.tuples_per_sec) << " tuples/sec\n"
            << "metrics_off " << fmt(best_off.tuples_per_sec) << " tuples/sec\n";
  char pct[32];
  std::snprintf(pct, sizeof pct, "%.2f", overhead_pct);
  std::cout << "overhead " << pct << "%\n";

  char json[512];
  std::snprintf(json, sizeof json,
                "{\"bench\":\"stream_ingest_metrics_overhead\",\"tuples\":%llu,"
                "\"shards\":%zu,\"threads\":%zu,"
                "\"metrics_on_tuples_per_sec\":%.0f,"
                "\"metrics_off_tuples_per_sec\":%.0f,"
                "\"overhead_pct\":%.2f}\n",
                static_cast<unsigned long long>(total_tuples), kShards, kThreads,
                best_on.tuples_per_sec, best_off.tuples_per_sec, overhead_pct);
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "recorded " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool overhead_mode = false;
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-overhead") == 0) {
      overhead_mode = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--metrics-overhead [--out FILE]]\n";
      return 2;
    }
  }
  if (overhead_mode) return run_metrics_overhead(out_path);

  bench::print_banner("Streaming ingest throughput — single-shard vs. sharded",
                      "engineering (stream subsystem)");
  std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency() << "\n";

  std::uint64_t total_tuples = 0;
  const auto chunks = make_chunks(total_tuples);
  std::cout << "input: 12 churn days, " << total_tuples << " tuples in "
            << chunks.size() << " ingest chunks\n\n";

  struct Config {
    std::size_t shards;
    std::size_t threads;
  };
  // A 1-shard row precedes every thread count so each row's speedup column
  // compares against a same-thread single-shard baseline.
  const Config configs[] = {{1, 1}, {4, 1}, {1, 4}, {2, 4}, {4, 4}, {8, 4}, {1, 8}, {16, 8}};

  std::cout << "shards threads tuples_per_sec speedup_vs_1shard_same_threads\n";
  std::map<std::size_t, double> single_shard_base;  ///< threads -> tuples/sec.
  double base_4thread = 0, sharded_4thread = 0;
  for (const auto& config : configs) {
    // Round-robin the chunks across threads so every worker touches every
    // peer region (worst case for a single lock, realistic for a collector
    // fan-in).
    std::vector<std::vector<core::Dataset>> per_thread(config.threads);
    for (std::size_t d = 0; d < chunks.size(); ++d) {
      per_thread[d % config.threads].push_back(chunks[d]);
    }
    // Warm-up + best-of-3 to tame scheduler noise.
    RunResult best;
    for (int rep = 0; rep < 3; ++rep) {
      const auto result = run_ingest(per_thread, config.shards);
      if (result.tuples_per_sec > best.tuples_per_sec) best = result;
    }
    if (config.shards == 1) single_shard_base[config.threads] = best.tuples_per_sec;
    if (config.shards == 1 && config.threads == 4) base_4thread = best.tuples_per_sec;
    if (config.shards == 4 && config.threads == 4) sharded_4thread = best.tuples_per_sec;

    const double base = single_shard_base[config.threads];
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", base > 0 ? best.tuples_per_sec / base : 1.0);
    std::cout << config.shards << " " << config.threads << " " << fmt(best.tuples_per_sec)
              << " " << speedup << "\n";
  }
  if (base_4thread > 0 && sharded_4thread > 0) {
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2f", sharded_4thread / base_4thread);
    std::cout << "\nsharded_scaling (4 shards vs 1 shard, 4 threads): " << ratio << "x\n";
  }

  // Snapshot cost: cold sweep vs. cached re-read.
  stream::StreamEngine engine({.shards = 4});
  for (const auto& b : chunks) (void)engine.ingest(b);
  auto t0 = Clock::now();
  const auto snap = engine.snapshot();
  const auto cold = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  t0 = Clock::now();
  (void)engine.snapshot();
  const auto cached = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::cout << "\nsnapshot: " << engine.live_tuples() << " live tuples, "
            << snap->counter_map().size() << " classified ASes, cold " << cold
            << " ms, cached " << cached << " ms\n"
            << "(cached snapshots are shared handles; serial-vs-parallel sweep "
               "kernels are measured in bench_sweep)\n";
  return 0;
}
