// Streaming ingest throughput: tuples/sec into the stream engine under
// churn-shaped input, single-shard vs. sharded, single- vs. multi-threaded.
// The sharded counter tables are the repo's first concurrent hot path; this
// bench records how ingest scales when the per-shard mutexes stop being one
// global lock. Also reports snapshot latency (cold sweep vs. cached).
//
// Scaling expectations depend on hardware: with N usable cores, 4 shards x 4
// threads should beat 1 shard x 4 threads by >= 2x (lock contention gone,
// work parallel). On a single-core container the sharded run can only
// recover the contention overhead, not parallelize — the printed
// hardware_concurrency line gives the context for the recorded ratio.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "common.h"
#include "sim/churn.h"
#include "stream/engine.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;

struct RunResult {
  double tuples_per_sec = 0;
  std::uint64_t tuples = 0;
};

/// Ingests `per_thread` batch lists from `threads` workers into one engine.
RunResult run_ingest(const std::vector<std::vector<core::Dataset>>& per_thread,
                     std::size_t shards) {
  stream::StreamEngine engine({.shards = shards});
  std::uint64_t total = 0;
  // ingest() consumes its batch; deep-copy the input *outside* the timed
  // region so the clock sees engine cost, not std::vector duplication.
  auto consumable = per_thread;
  for (const auto& batches : consumable) {
    for (const auto& b : batches) total += b.size();
  }

  const auto start = Clock::now();
  {
    std::vector<std::jthread> workers;
    workers.reserve(consumable.size());
    for (auto& batches : consumable) {
      workers.emplace_back([&engine, &batches] {
        for (auto& batch : batches) (void)engine.ingest(std::move(batch));
      });
    }
  }
  const auto elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  return {static_cast<double>(total) / elapsed, total};
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

}  // namespace

int main() {
  bench::print_banner("Streaming ingest throughput — single-shard vs. sharded",
                      "engineering (stream subsystem)");
  std::cout << "hardware_concurrency: " << std::thread::hardware_concurrency() << "\n";

  bench::WorldParams params;
  params.num_ases = 3000;
  params.peers = 60;
  auto world = bench::make_world(params);

  // Churn-shaped input: daily observation batches over the wild dataset,
  // re-announcements included (refresh-heavy, like real update feeds).
  sim::ChurnConfig churn;
  constexpr std::uint32_t kDays = 12;
  constexpr std::size_t kChunk = 4096;  ///< Tuples per ingest call (one MRT poll).
  std::vector<core::Dataset> chunks;
  std::uint64_t total_tuples = 0;
  for (const auto& day : sim::day_batches(world.dataset, churn, kDays)) {
    for (std::size_t start = 0; start < day.size(); start += kChunk) {
      chunks.emplace_back(day.begin() + static_cast<std::ptrdiff_t>(start),
                          day.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(start + kChunk, day.size())));
      total_tuples += chunks.back().size();
    }
  }
  std::cout << "input: " << kDays << " churn days, " << total_tuples << " tuples in "
            << chunks.size() << " ingest chunks\n\n";

  struct Config {
    std::size_t shards;
    std::size_t threads;
  };
  // A 1-shard row precedes every thread count so each row's speedup column
  // compares against a same-thread single-shard baseline.
  const Config configs[] = {{1, 1}, {4, 1}, {1, 4}, {2, 4}, {4, 4}, {8, 4}, {1, 8}, {16, 8}};

  std::cout << "shards threads tuples_per_sec speedup_vs_1shard_same_threads\n";
  std::map<std::size_t, double> single_shard_base;  ///< threads -> tuples/sec.
  double base_4thread = 0, sharded_4thread = 0;
  for (const auto& config : configs) {
    // Round-robin the chunks across threads so every worker touches every
    // peer region (worst case for a single lock, realistic for a collector
    // fan-in).
    std::vector<std::vector<core::Dataset>> per_thread(config.threads);
    for (std::size_t d = 0; d < chunks.size(); ++d) {
      per_thread[d % config.threads].push_back(chunks[d]);
    }
    // Warm-up + best-of-3 to tame scheduler noise.
    RunResult best;
    for (int rep = 0; rep < 3; ++rep) {
      const auto result = run_ingest(per_thread, config.shards);
      if (result.tuples_per_sec > best.tuples_per_sec) best = result;
    }
    if (config.shards == 1) single_shard_base[config.threads] = best.tuples_per_sec;
    if (config.shards == 1 && config.threads == 4) base_4thread = best.tuples_per_sec;
    if (config.shards == 4 && config.threads == 4) sharded_4thread = best.tuples_per_sec;

    const double base = single_shard_base[config.threads];
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx", base > 0 ? best.tuples_per_sec / base : 1.0);
    std::cout << config.shards << " " << config.threads << " " << fmt(best.tuples_per_sec)
              << " " << speedup << "\n";
  }
  if (base_4thread > 0 && sharded_4thread > 0) {
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2f", sharded_4thread / base_4thread);
    std::cout << "\nsharded_scaling (4 shards vs 1 shard, 4 threads): " << ratio << "x\n";
  }

  // Snapshot cost: cold sweep vs. cached re-read.
  stream::StreamEngine engine({.shards = 4});
  for (const auto& b : chunks) (void)engine.ingest(b);
  auto t0 = Clock::now();
  const auto snap = engine.snapshot();
  const auto cold = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  t0 = Clock::now();
  (void)engine.snapshot();
  const auto cached = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::cout << "\nsnapshot: " << engine.live_tuples() << " live tuples, "
            << snap->counter_map().size() << " classified ASes, cold " << cold
            << " ms, cached " << cached << " ms\n"
            << "(cached snapshots are shared handles; serial-vs-parallel sweep "
               "kernels are measured in bench_sweep)\n";
  return 0;
}
