// Regenerates Figure 2: ROC curves of the tagging and forwarding classifiers
// under threshold sweeps (50%..100%) for the selective scenarios random-p
// (left plot) and random-pp (right plot).
#include <iostream>

#include "common.h"
#include "eval/report.h"
#include "eval/roc.h"

using namespace bgpcu;

int main() {
  bench::print_banner("Figure 2 — ROC curves under threshold sweep", "Fig. 2");
  bench::WorldParams params;
  params.num_ases = 2500;
  params.peers = 60;
  params.with_pollution = false;
  auto world = bench::make_world(params);

  for (const auto kind : {sim::ScenarioKind::kRandomP, sim::ScenarioKind::kRandomPp}) {
    sim::ScenarioConfig config;
    config.kind = kind;
    config.seed = params.seed;
    const auto truth = sim::build_scenario(world.topo, world.substrate, config);

    std::cout << "\nscenario " << sim::to_string(kind) << " ("
              << (kind == sim::ScenarioKind::kRandomP ? "left plot" : "right plot") << ")\n";
    eval::TextTable table({"threshold", "tag TPR", "tag FPR", "fwd TPR", "fwd FPR"});
    for (const auto& point : eval::roc_sweep(world.topo, truth, 50, 100, 5)) {
      table.add_row({eval::ratio2(point.threshold), eval::ratio2(point.tagging_tpr),
                     eval::ratio2(point.tagging_fpr), eval::ratio2(point.forwarding_tpr),
                     eval::ratio2(point.forwarding_fpr)});
    }
    table.print(std::cout);
  }

  std::cout << "\npaper shape: raising the threshold 50%->100% drops the tagging FPR\n"
               "~10%->1% and forwarding FPR ~1%->0 while TPR falls by ~20%; random-pp\n"
               "runs at lower TPR than random-p. Performance is not threshold-sensitive.\n";
  return 0;
}
