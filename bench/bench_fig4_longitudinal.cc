// Regenerates Figure 4: longitudinal view — full-class counts once per
// quarter over two years (8 snapshots). Each snapshot is an independent day
// of a slowly growing Internet; counts should stay flat like the paper's.
#include <iostream>

#include "common.h"
#include "eval/report.h"

using namespace bgpcu;

int main() {
  bench::print_banner("Figure 4 — longitudinal view (2 years, quarterly)", "Fig. 4");
  constexpr int kQuarters = 8;
  const char* labels[kQuarters] = {"Dec'19", "Mar'20", "Jun'20", "Sep'20",
                                   "Dec'20", "Mar'21", "Jun'21", "Sep'21"};

  eval::TextTable table({"quarter", "ASes", "tagger-forward", "tagger-cleaner",
                         "silent-forward", "silent-cleaner"});
  for (int q = 0; q < kQuarters; ++q) {
    bench::WorldParams params;
    // The Internet grows a little every quarter; roles and topology evolve
    // (new seed) but the role model stays the same.
    params.num_ases = 3200 + 80 * static_cast<std::uint32_t>(q);
    params.peers = 70 + static_cast<std::size_t>(q);
    params.seed = 1000 + static_cast<std::uint64_t>(q);
    auto world = bench::make_world(params);
    const auto result = world.infer();

    std::uint64_t tf = 0, tc = 0, sf = 0, sc = 0;
    for (const auto& [asn, counters] : result.counter_map()) {
      const auto usage = core::classify(counters, result.thresholds());
      if (!usage.full()) continue;
      const auto code = usage.code();
      tf += code == "tf";
      tc += code == "tc";
      sf += code == "sf";
      sc += code == "sc";
    }
    table.add_row({labels[q], eval::with_commas(params.num_ases), eval::with_commas(tf),
                   eval::with_commas(tc), eval::with_commas(sf), eval::with_commas(sc)});
  }
  table.print(std::cout);

  std::cout << "\npaper shape: no significant trend across two years; per-class counts\n"
               "hover at the Table-3 levels throughout (a small, stable set of ASes\n"
               "with consistent community usage).\n";
  return 0;
}
