// Microbenchmarks (google-benchmark): throughput of the building blocks —
// column engine, row baseline, MRT parsing, sanitizer, route computation and
// customer-cone computation. These are engineering numbers, not paper
// figures; they bound what a full-scale (73k-AS / 77M-tuple) run would cost.
#include <benchmark/benchmark.h>

#include "common.h"
#include "core/row_baseline.h"
#include "sim/churn.h"
#include "topology/cone.h"
#include "topology/routing.h"

namespace {

using namespace bgpcu;

const bench::World& world() {
  static const bench::World w = [] {
    bench::WorldParams params;
    params.num_ases = 3000;
    params.peers = 60;
    return bench::make_world(params);
  }();
  return w;
}

void BM_ColumnEngine(benchmark::State& state) {
  const auto& dataset = world().dataset;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ColumnEngine().run(dataset));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_ColumnEngine)->Unit(benchmark::kMillisecond);

void BM_RowEngine(benchmark::State& state) {
  const auto& dataset = world().dataset;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::RowEngine().run(dataset));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset.size()));
}
BENCHMARK(BM_RowEngine)->Unit(benchmark::kMillisecond);

void BM_MrtEmitParse(benchmark::State& state) {
  const auto& w = world();
  const collector::PathOutputs outputs(w.dataset);
  collector::EmissionConfig emission;
  const auto dumps = collector::emit_project(w.topo, w.substrate, outputs, w.projects[2],
                                             emission);  // Isolario: smallest
  std::size_t bytes = 0;
  for (const auto& d : dumps) bytes += d.rib_dump.size() + d.update_dump.size();
  for (auto _ : state) {
    collector::DatasetBuilder builder(w.topo.registry);
    for (const auto& d : dumps) {
      builder.add_dump(d.rib_dump);
      builder.add_dump(d.update_dump);
    }
    benchmark::DoNotOptimize(builder.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MrtEmitParse)->Unit(benchmark::kMillisecond);

void BM_RouteComputation(benchmark::State& state) {
  const auto& w = world();
  topology::RouteComputer computer(w.topo.graph);
  topology::NodeId origin = 0;
  for (auto _ : state) {
    computer.compute(origin);
    origin = (origin + 97) % static_cast<topology::NodeId>(w.topo.graph.node_count());
    benchmark::DoNotOptimize(computer);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.topo.graph.edge_count()));
}
BENCHMARK(BM_RouteComputation);

void BM_CustomerCones(benchmark::State& state) {
  const auto& graph = world().topo.graph;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::customer_cone_sizes(graph));
  }
}
BENCHMARK(BM_CustomerCones)->Unit(benchmark::kMillisecond);

void BM_Deduplicate(benchmark::State& state) {
  const auto& w = world();
  for (auto _ : state) {
    state.PauseTiming();
    auto copy = w.dataset;
    copy.insert(copy.end(), w.dataset.begin(), w.dataset.end());
    state.ResumeTiming();
    benchmark::DoNotOptimize(core::deduplicate(copy));
  }
}
BENCHMARK(BM_Deduplicate)->Unit(benchmark::kMillisecond);

void BM_DayChurn(benchmark::State& state) {
  const auto& w = world();
  sim::ChurnConfig churn;
  std::uint32_t day = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::day_dataset(w.dataset, churn, day++));
  }
}
BENCHMARK(BM_DayChurn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
