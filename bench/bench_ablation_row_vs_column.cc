// Ablation for §5.7: the column-based engine versus the row-based baseline
// (Listing 2). Measures precision/recall, the number of hidden ASes each
// approach (mis)classifies, and wall-clock runtime on the same input.
#include <chrono>
#include <iostream>

#include "common.h"
#include "core/row_baseline.h"
#include "eval/metrics.h"
#include "eval/report.h"

using namespace bgpcu;

namespace {

template <typename Engine>
std::pair<eval::ScenarioEvaluation, double> run_engine(const Engine& engine,
                                                       const topology::GeneratedTopology& topo,
                                                       const sim::GroundTruth& truth) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = engine.run(truth.dataset);
  const auto seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);
  return {eval::evaluate_scenario(topo, truth, result), seconds.count()};
}

std::uint64_t hidden_classified(const eval::ScenarioEvaluation& ev) {
  std::uint64_t n = 0;
  for (const auto row : {eval::TagRow::kTaggerHidden, eval::TagRow::kSilentHidden,
                         eval::TagRow::kSelectiveHidden}) {
    for (std::size_t col = 0; col < 3; ++col) n += ev.tagging.at(row, col);
  }
  return n;
}

}  // namespace

int main() {
  bench::print_banner("Ablation §5.7 — column-based vs row-based counting", "Listing 1 vs 2");
  bench::WorldParams params;
  params.num_ases = 4000;
  params.peers = 80;
  params.with_pollution = false;
  auto world = bench::make_world(params);

  for (const auto kind : {sim::ScenarioKind::kRandom, sim::ScenarioKind::kRandomNoise,
                          sim::ScenarioKind::kRandomP}) {
    sim::ScenarioConfig config;
    config.kind = kind;
    config.seed = params.seed;
    const auto truth = sim::build_scenario(world.topo, world.substrate, config);

    const auto [col_ev, col_s] = run_engine(core::ColumnEngine(), world.topo, truth);
    const auto [row_ev, row_s] = run_engine(core::RowEngine(), world.topo, truth);

    std::cout << "\nscenario " << sim::to_string(kind) << " (" << truth.dataset.size()
              << " tuples)\n";
    eval::TextTable table({"engine", "tag.prec", "tag.rec", "fwd.prec", "fwd.rec",
                           "hidden classified", "runtime"});
    table.add_row({"column (paper)", eval::ratio2(col_ev.tagging_pr.precision),
                   eval::ratio2(col_ev.tagging_pr.recall),
                   eval::ratio2(col_ev.forwarding_pr.precision),
                   eval::ratio2(col_ev.forwarding_pr.recall),
                   eval::with_commas(hidden_classified(col_ev)),
                   eval::ratio2(col_s * 1e3) + " ms"});
    table.add_row({"row (baseline)", eval::ratio2(row_ev.tagging_pr.precision),
                   eval::ratio2(row_ev.tagging_pr.recall),
                   eval::ratio2(row_ev.forwarding_pr.precision),
                   eval::ratio2(row_ev.forwarding_pr.recall),
                   eval::with_commas(hidden_classified(row_ev)),
                   eval::ratio2(row_s * 1e3) + " ms"});
    table.print(std::cout);
  }

  std::cout << "\npaper claim (§5.7): the column-based design sacrifices some recall\n"
               "and runtime to avoid counting through cleaners — the row baseline\n"
               "classifies hidden ASes (silent-looking) and loses precision, while\n"
               "the column engine classifies <0.5% of hidden ASes.\n";
  return 0;
}
