// Regenerates Table 4: PEERING-testbed validation. Three temporally
// uncorrelated experiments (different seeds) announce a /24 with per-PoP
// community pairs; we report the share of AS paths containing at least one
// inferred cleaner, for paths that did and did not deliver our communities.
#include <iostream>

#include "common.h"
#include "eval/report.h"
#include "sim/peering.h"

using namespace bgpcu;

namespace {

std::string pct(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return std::to_string(part * 100 / whole) + "%";
}

}  // namespace

int main() {
  bench::print_banner("Table 4 — PEERING validation experiments", "Table 4");
  bench::WorldParams params;
  params.num_ases = 5000;
  params.peers = 90;
  auto world = bench::make_world(params);
  const auto inference = world.infer();

  eval::TextTable table({"experiment", "with comms: cleaner", "(undecided)",
                         "without comms: cleaner", "(undecided)"});
  const char* dates[] = {"2021-05-19", "2021-07-15", "2021-08-15"};
  for (int exp = 0; exp < 3; ++exp) {
    sim::PeeringConfig config;
    config.seed = 100 + static_cast<std::uint64_t>(exp);
    const auto obs = sim::run_peering_experiment(world.topo, world.substrate.peers, world.roles,
                                                 config);
    const auto v = sim::validate_observation(obs, inference, 47065);
    table.add_row({dates[exp],
                   std::to_string(v.with_comms_cleaner) + "/" + std::to_string(v.with_comms) +
                       " (" + pct(v.with_comms_cleaner, v.with_comms) + ")",
                   pct(v.with_comms_undecided, v.with_comms),
                   std::to_string(v.without_comms_cleaner) + "/" +
                       std::to_string(v.without_comms) + " (" +
                       pct(v.without_comms_cleaner, v.without_comms) + ")",
                   pct(v.without_comms_undecided, v.without_comms)});
  }
  table.print(std::cout);

  std::cout << "\npaper values: communities present -> cleaner on path in 6/177 (3%),\n"
               "1/104 (1%), 0/61 (0%); communities absent -> cleaner on path in\n"
               "285/367 (78%), 286/365 (78%), 300/359 (84%).\n"
               "Shape check: contradictions (left) stay near zero; most community-less\n"
               "paths contain an identified cleaner, the rest mostly undecided ASes.\n";
  return 0;
}
