// bench_store — what durability costs and what a restart buys back:
//
//   wal_overhead_pct       the daemon epoch loop — parse one day's MRT update
//                          dumps, sanitize, ingest, publish (exactly what
//                          bgpcu_serve does per poll) — with the WAL appended
//                          per epoch vs. the identical loop with no store at
//                          all; the budget is <= 5%
//   checkpoint_mb_per_sec  write bandwidth of one full checkpoint (.state +
//                          .snap + .index, atomic tmp+rename included)
//   recovery_ms            cold recovery of the directory — newest checkpoint
//                          plus WAL tail replay — into a fresh service, at
//                          paper scale (the IMC'21 snapshot holds ~173k
//                          tuples; the recorded live_tuples line gives this
//                          run's actual size)
//
// Every run (including --smoke) re-derives the recovered counter map and
// compares it against the live run's: any replay-vs-live divergence is a
// correctness failure, exit 1. --smoke scales the world down for CI;
// [--out FILE] records one JSON line (default BENCH_store.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "api/service.h"
#include "common.h"
#include "store/store.h"

namespace {

using namespace bgpcu;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

/// One epoch's worth of collector dumps (one buffer per collector box).
using EpochDumps = std::vector<std::vector<std::uint8_t>>;

stream::FeedMarks marks_at(std::size_t epoch) {
  return {{"updates.0001.mrt", 4096 * (epoch + 1)}};
}

api::ServiceConfig service_config() {
  api::ServiceConfig config;
  config.stream.shards = 4;
  config.stream.engine.threads = 1;  // replay determinism is the contract
  return config;
}

/// The per-poll parse path, identical to stream::Feed: every dump through
/// the extractor + sanitizer, deduplicated into one batch.
core::Dataset parse_epoch(const bench::World& world, const EpochDumps& dumps) {
  collector::DatasetBuilder builder(world.topo.registry);
  for (const auto& dump : dumps) builder.add_dump(dump);
  return builder.finish().dataset;
}

/// The daemon epoch loop, with or without a store riding along.
double run_loop(const bench::World& world, const std::vector<EpochDumps>& epoch_dumps,
                api::Service& service, store::Store* store) {
  const auto start = Clock::now();
  for (std::size_t e = 0; e < epoch_dumps.size(); ++e) {
    const auto batch = parse_epoch(world, epoch_dumps[e]);
    if (e > 0) (void)service.advance_epoch();
    if (store) store->append_epoch_batch(service.epoch(), batch, marks_at(e));
    (void)service.ingest(batch);
    const auto delta = service.publish();
    if (store) store->append_epoch_delta(delta);
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t dir_bytes(const std::string& dir) {
  std::uint64_t total = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::error_code ec;
    const auto size = fs::file_size(entry.path(), ec);
    if (!ec) total += size;
  }
  return total;
}

int run(bool smoke, const std::string& out_path) {
  bench::print_banner("Durable store costs — WAL overhead, checkpoint bandwidth, "
                      "cold recovery",
                      "engineering (store subsystem)");

  bench::WorldParams params;
  params.num_ases = smoke ? 800 : 4000;
  params.peers = smoke ? 20 : 80;
  const std::uint32_t days = smoke ? 4 : 10;
  auto world = bench::make_world(params);

  // One day of MRT update dumps per epoch, emitted once up front (emission is
  // not part of the daemon and stays outside the timed loop). Each epoch
  // re-announces that day's churn slice under a fresh seed, so consecutive
  // frames overlap heavily — the shape the WAL sees in production.
  const collector::PathOutputs outputs(world.dataset);
  std::vector<EpochDumps> epoch_dumps(days);
  std::uint64_t dump_bytes = 0;
  for (std::uint32_t e = 0; e < days; ++e) {
    collector::EmissionConfig emission;
    emission.seed = params.seed + 1000 + e;
    emission.base_timestamp += e * emission.day_seconds;
    for (auto& emitted : collector::emit_project(world.topo, world.substrate, outputs,
                                                 world.projects[0], emission)) {
      if (emitted.update_dump.empty()) continue;
      dump_bytes += emitted.update_dump.size();
      epoch_dumps[e].push_back(std::move(emitted.update_dump));
    }
  }
  std::uint64_t total_tuples = 0;
  for (const auto& dumps : epoch_dumps) total_tuples += parse_epoch(world, dumps).size();
  std::printf("input: %u epochs, %.1f MB of MRT updates, %llu batch tuples%s\n",
              days, static_cast<double>(dump_bytes) / 1e6,
              static_cast<unsigned long long>(total_tuples),
              smoke ? " (smoke scale)" : "");

  const auto dir = (fs::temp_directory_path() /
                    ("bgpcu_bench_store_" + std::to_string(::getpid())))
                       .string();
  fs::remove_all(dir);

  // Baseline: the identical loop, no store. Best-of-3 on both sides so
  // scheduler noise cannot masquerade as WAL overhead.
  double best_base = 1e300, best_wal = 1e300;
  core::CounterMap live_map;
  std::uint64_t live_tuples = 0;
  for (int rep = 0; rep < (smoke ? 1 : 3); ++rep) {
    {
      api::Service service(service_config());
      best_base = std::min(best_base, run_loop(world, epoch_dumps, service, nullptr));
    }
    fs::remove_all(dir);
    api::Service service(service_config());
    store::Store store({.dir = dir, .sync = store::SyncPolicy::kEpoch,
                        .checkpoint_every_epochs = 0});
    best_wal = std::min(best_wal, run_loop(world, epoch_dumps, service, &store));
    live_map = service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map();
    live_tuples = service.query({.kind = api::QueryKind::kStats}).stats->live_tuples;
  }
  const double overhead_pct =
      best_base > 0 ? (best_wal - best_base) / best_base * 100.0 : 0.0;
  const double wal_mb = static_cast<double>(dir_bytes(dir)) / 1e6;
  std::printf("epoch_loop no_store %.3f s, wal %.3f s, overhead %.2f%% (budget 5%%), "
              "wal size %.1f MB\n",
              best_base, best_wal, overhead_pct, wal_mb);
  if (smoke && overhead_pct > 5.0) {
    std::cout << "note: smoke epochs are a few ms each, too small to amortize the "
                 "per-epoch fsync; the full run is the budget check\n";
  }

  // Checkpoint bandwidth: one full checkpoint of the final state. The store
  // above went out of scope; reopen + recover, then time the checkpoint.
  double checkpoint_mb = 0, checkpoint_s = 0, recovery_ms = 0;
  std::uint64_t recovered_tuples = 0;
  bool diverged = false;
  {
    api::Service service(service_config());
    store::Store store({.dir = dir, .checkpoint_every_epochs = 0});
    (void)store.recover(service);
    const auto t0 = Clock::now();
    if (!store.checkpoint(service)) {
      std::cerr << "error: checkpoint failed\n";
      fs::remove_all(dir);
      return 1;
    }
    checkpoint_s = std::chrono::duration<double>(Clock::now() - t0).count();
    // GC pruned the dead segments, so measure the checkpoint files directly.
    checkpoint_mb = 0;
    for (const auto epoch : store.manifest().checkpoints) {
      for (const char* suffix : {".state", ".snap", ".index"}) {
        std::error_code ec;
        const auto size = fs::file_size(store::checkpoint_path(dir, epoch, suffix), ec);
        if (!ec) checkpoint_mb += static_cast<double>(size) / 1e6;
      }
    }
  }
  std::printf("checkpoint %.1f MB in %.3f s = %.1f MB/s\n", checkpoint_mb,
              checkpoint_s, checkpoint_s > 0 ? checkpoint_mb / checkpoint_s : 0.0);

  // Cold recovery into a fresh service, then the divergence gate.
  {
    api::Service service(service_config());
    store::Store store({.dir = dir});
    const auto t0 = Clock::now();
    const auto rec = store.recover(service);
    recovery_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    recovered_tuples =
        service.query({.kind = api::QueryKind::kStats}).stats->live_tuples;
    const auto recovered_map =
        service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map();
    diverged = !rec.recovered || !(recovered_map == live_map);
    std::printf("cold recovery: %.1f ms, %llu live tuples (%llu batch(es) replayed)\n",
                recovery_ms, static_cast<unsigned long long>(recovered_tuples),
                static_cast<unsigned long long>(rec.batches_replayed));
  }
  fs::remove_all(dir);

  if (diverged) {
    std::cerr << "FAIL: recovered state diverges from the live run\n";
    return 1;
  }
  std::cout << "replay-vs-live: identical (" << live_tuples << " live tuples)\n";

  char json[512];
  std::snprintf(json, sizeof json,
                "{\"bench\":\"store_durability\",\"smoke\":%s,\"epochs\":%u,"
                "\"dump_mb\":%.1f,\"tuples\":%llu,\"live_tuples\":%llu,"
                "\"no_store_s\":%.3f,\"wal_s\":%.3f,\"wal_overhead_pct\":%.2f,"
                "\"checkpoint_mb\":%.2f,\"checkpoint_mb_per_sec\":%.1f,"
                "\"recovery_ms\":%.1f,\"replay_divergence\":false}\n",
                smoke ? "true" : "false", days,
                static_cast<double>(dump_bytes) / 1e6,
                static_cast<unsigned long long>(total_tuples),
                static_cast<unsigned long long>(live_tuples), best_base, best_wal,
                overhead_pct, checkpoint_mb,
                checkpoint_s > 0 ? checkpoint_mb / checkpoint_s : 0.0, recovery_ms);
  std::ofstream out(out_path, std::ios::trunc);
  out << json;
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "recorded " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return run(smoke, out_path);
}
