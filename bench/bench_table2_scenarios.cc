// Regenerates Table 2: classification results and performance on the ground
// truth scenarios (alltc, alltf, random, random+noise, random-p, random-pp).
// Random-based scenarios are averaged over several seeds, like the paper's
// 10 iterations. The paper's values are printed beneath each row.
#include <iostream>

#include "common.h"
#include "eval/metrics.h"
#include "eval/report.h"

using namespace bgpcu;

namespace {

struct Row {
  std::string name;
  double tag_rec = 0, tag_prec = 0, fwd_rec = 0, fwd_prec = 0;
  double tc = 0, sc = 0, tf = 0, sf = 0, tn = 0, sn = 0, nc = 0, nf = 0;
  double nn = 0, tag_u = 0, fwd_u = 0, uu = 0;

  void accumulate(const eval::ScenarioEvaluation& ev) {
    tag_rec += ev.tagging_pr.recall;
    tag_prec += ev.tagging_pr.precision;
    fwd_rec += ev.forwarding_pr.recall;
    fwd_prec += ev.forwarding_pr.precision;
    const auto& h = ev.classes;
    tc += static_cast<double>(h.tc);
    sc += static_cast<double>(h.sc);
    tf += static_cast<double>(h.tf);
    sf += static_cast<double>(h.sf);
    tn += static_cast<double>(h.tn);
    sn += static_cast<double>(h.sn);
    nc += static_cast<double>(h.nc);
    nf += static_cast<double>(h.nf);
    nn += static_cast<double>(h.nn);
    tag_u += static_cast<double>(h.tag_u);
    fwd_u += static_cast<double>(h.fwd_u);
    uu += static_cast<double>(h.uu);
  }
  void divide(double n) {
    for (double* v : {&tag_rec, &tag_prec, &fwd_rec, &fwd_prec, &tc, &sc, &tf, &sf, &tn, &sn,
                      &nc, &nf, &nn, &tag_u, &fwd_u, &uu}) {
      *v /= n;
    }
  }
};

std::string num(double v) { return eval::with_commas(static_cast<std::uint64_t>(v + 0.5)); }

}  // namespace

int main() {
  bench::print_banner("Table 2 — scenario classification results", "Table 2");
  bench::WorldParams params;
  params.num_ases = 5000;
  params.peers = 90;
  params.with_pollution = false;  // scenarios replace the wild roles entirely
  auto world = bench::make_world(params);

  constexpr int kIterations = 3;  // paper: 10 per random scenario
  const struct {
    sim::ScenarioKind kind;
    bool randomized;
    const char* paper;
  } specs[] = {
      {sim::ScenarioKind::kAllTc, false,
       "paper: rec 1.00/0.82 prec 1.00/1.00; tc=578, tn=188, nn=72,185"},
      {sim::ScenarioKind::kAllTf, false,
       "paper: rec 0.96/0.83 prec 1.00/1.00; tf=10,427, tn=59,570, nn=2,954"},
      {sim::ScenarioKind::kRandom, true,
       "paper: rec 0.93/0.70 prec 1.00/1.00; ~1,300 per full class, tn/sn~20k"},
      {sim::ScenarioKind::kRandomNoise, true,
       "paper: rec 0.55/0.45 prec 1.00/1.00; u*=17,518, *u=1,288, uu=412"},
      {sim::ScenarioKind::kRandomP, true,
       "paper: rec 0.42/0.39 prec 0.86/0.97; nn=48,980, u*=622"},
      {sim::ScenarioKind::kRandomPp, true,
       "paper: rec 0.18/0.18 prec 0.89/0.94; nn=62,035"},
  };

  eval::TextTable table({"scenario", "tag.rec", "tag.prec", "fwd.rec", "fwd.prec", "tc", "sc",
                         "tf", "sf", "tn", "sn", "nc", "nf", "nn", "u*", "*u", "uu"});
  for (const auto& spec : specs) {
    Row row;
    row.name = sim::to_string(spec.kind);
    const int iterations = spec.randomized ? kIterations : 1;
    for (int it = 0; it < iterations; ++it) {
      sim::ScenarioConfig config;
      config.kind = spec.kind;
      config.seed = params.seed + static_cast<std::uint64_t>(it) * 101;
      const auto truth = sim::build_scenario(world.topo, world.substrate, config);
      const auto result = core::ColumnEngine().run(truth.dataset);
      row.accumulate(eval::evaluate_scenario(world.topo, truth, result));
    }
    row.divide(iterations);
    table.add_row({row.name, eval::ratio2(row.tag_rec), eval::ratio2(row.tag_prec),
                   eval::ratio2(row.fwd_rec), eval::ratio2(row.fwd_prec), num(row.tc),
                   num(row.sc), num(row.tf), num(row.sf), num(row.tn), num(row.sn), num(row.nc),
                   num(row.nf), num(row.nn), num(row.tag_u), num(row.fwd_u), num(row.uu)});
  }
  table.print(std::cout);
  std::cout << '\n';
  for (const auto& spec : specs) {
    std::cout << "  " << sim::to_string(spec.kind) << " -> " << spec.paper << '\n';
  }
  std::cout << "\nShape checks: precision 1.00 in consistent scenarios; noise floods\n"
               "u* while taggers stay classified; selective scenarios cut recall and\n"
               "precision; nn(alltf) < nn(random) < nn(alltc).\n";
  return 0;
}
