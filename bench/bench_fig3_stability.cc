// Regenerates Figure 3: impact of incrementally adding more days of input.
// Day k classifies the union of days 1..k; for each full class we report how
// many member ASes are new, stable (since day 1), or recurring.
#include <iostream>

#include "common.h"
#include "eval/report.h"
#include "eval/stability.h"
#include "sim/churn.h"

using namespace bgpcu;

int main() {
  bench::print_banner("Figure 3 — stability over successive days", "Fig. 3");
  bench::WorldParams params;
  params.num_ases = 4000;
  params.peers = 80;
  auto world = bench::make_world(params);

  sim::ChurnConfig churn;
  churn.seed = params.seed;
  constexpr std::uint32_t kDays = 5;

  eval::StabilityTracker tracker;
  core::Dataset cumulative;
  for (std::uint32_t day = 0; day < kDays; ++day) {
    cumulative = sim::merge_datasets(std::move(cumulative),
                                     sim::day_dataset(world.dataset, churn, day));
    tracker.add_day(core::ColumnEngine().run(cumulative));
    std::cout << "day +" << day + 1 << ": cumulative tuples " << cumulative.size() << "\n";
  }

  for (const auto cls : {eval::FullClass::kTf, eval::FullClass::kTc, eval::FullClass::kSf,
                         eval::FullClass::kSc}) {
    std::cout << "\n" << eval::to_string(cls) << "\n";
    eval::TextTable table({"day", "new", "stable", "recurring", "total"});
    const auto& series = tracker.series(cls);
    for (std::size_t day = 0; day < series.size(); ++day) {
      table.add_row({"+" + std::to_string(day + 1), eval::with_commas(series[day].fresh),
                     eval::with_commas(series[day].stable),
                     eval::with_commas(series[day].recurring),
                     eval::with_commas(series[day].total())});
    }
    table.print(std::cout);
  }

  std::cout << "\npaper shape: after day 1 only a handful of ASes are new (max ~10);\n"
               "90-97% of members are stable since day 1 — one day of data already\n"
               "gives stable inferences.\n";
  return 0;
}
