#include "common.h"

#include <cstdio>
#include <cstdlib>

namespace bgpcu::bench {

core::InferenceResult World::infer(core::Thresholds thresholds) const {
  core::EngineConfig config;
  config.thresholds = thresholds;
  return core::ColumnEngine(config).run(dataset);
}

double scale_factor() {
  const char* env = std::getenv("BGPCU_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

World make_world(WorldParams params) {
  const double scale = scale_factor();
  params.num_ases = static_cast<std::uint32_t>(static_cast<double>(params.num_ases) * scale);
  params.peers = static_cast<std::size_t>(static_cast<double>(params.peers) * scale);

  World world;
  topology::GeneratorParams gen;
  gen.num_ases = params.num_ases;
  gen.num_tier1 = std::max<std::uint32_t>(6, params.num_ases / 1000);
  gen.seed = params.seed;
  world.topo = topology::generate(gen);

  collector::ProjectLayoutParams layout;
  layout.total_peers = params.peers;
  layout.seed = params.seed;
  world.projects = collector::default_projects(world.topo, layout);
  world.substrate = sim::build_substrate(world.topo, collector::all_peers(world.projects));

  sim::WildParams wild;
  wild.seed = params.seed;
  if (!params.with_pollution) wild.pollution = sim::PollutionConfig{};
  world.roles = sim::assign_wild_roles(world.topo, wild);

  sim::OutputConfig output;
  output.pollution = wild.pollution;
  world.dataset = sim::generate_dataset(world.topo, world.substrate, world.roles, output,
                                        params.seed, params.observations);

  std::printf("world: %u ASes, %zu collector peers, %zu unique paths, %zu unique tuples\n",
              params.num_ases, world.substrate.peers.size(), world.substrate.paths.size(),
              world.dataset.size());
  return world;
}

void print_banner(const std::string& experiment, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("reproduces: %s — Krenc et al., \"AS-Level BGP Community Usage\n", paper_ref.c_str());
  std::printf("Classification\", IMC'21. Substrate: synthetic Internet (see\n");
  std::printf("DESIGN.md); compare shapes, not absolute magnitudes. BGPCU_SCALE=%g\n",
              scale_factor());
  std::printf("================================================================\n");
}

}  // namespace bgpcu::bench
