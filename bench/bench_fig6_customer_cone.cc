// Regenerates Figure 6: CDFs of customer-cone sizes per inferred tagging
// class (top plot) and forwarding class (bottom plot), printed as the CDF
// value at log-spaced cone sizes.
#include <algorithm>
#include <iostream>
#include <map>

#include "common.h"
#include "eval/report.h"
#include "topology/cone.h"

using namespace bgpcu;

namespace {

void print_cdfs(const std::map<std::string, std::vector<std::uint32_t>>& by_class) {
  const std::uint32_t points[] = {1, 2, 5, 10, 50, 100, 1000, 10000};
  std::vector<std::string> header{"cone <="};
  for (const auto& [cls, cones] : by_class) {
    header.push_back(cls + "(" + std::to_string(cones.size()) + ")");
  }
  eval::TextTable table(std::move(header));
  for (const auto point : points) {
    std::vector<std::string> row{std::to_string(point)};
    for (const auto& [cls, cones] : by_class) {
      if (cones.empty()) {
        row.push_back("-");
        continue;
      }
      const auto below = static_cast<double>(std::count_if(
          cones.begin(), cones.end(), [point](std::uint32_t c) { return c <= point; }));
      row.push_back(eval::ratio2(below / static_cast<double>(cones.size())));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::print_banner("Figure 6 — customer cone size CDFs per class", "Fig. 6");
  bench::WorldParams params;
  params.num_ases = 5000;
  params.peers = 90;
  auto world = bench::make_world(params);
  const auto result = world.infer();
  const auto cones = topology::customer_cone_sizes(world.topo.graph);

  std::map<std::string, std::vector<std::uint32_t>> tagging, forwarding;
  for (topology::NodeId n = 0; n < world.topo.graph.node_count(); ++n) {
    const auto asn = world.topo.graph.asn_of(n);
    const auto usage = result.usage(asn);
    const char tag = core::to_char(usage.tagging);
    const char fwd = core::to_char(usage.forwarding);
    const std::string tag_name = tag == 't'   ? "tagger"
                                 : tag == 's' ? "silent"
                                 : tag == 'u' ? "undecided"
                                              : "none";
    const std::string fwd_name = fwd == 'f'   ? "forward"
                                 : fwd == 'c' ? "cleaner"
                                 : fwd == 'u' ? "undecided"
                                              : "none";
    tagging[tag_name].push_back(cones[n]);
    forwarding[fwd_name].push_back(cones[n]);
  }

  std::cout << "\ntagging behavior (top plot)\n";
  print_cdfs(tagging);
  std::cout << "\nforwarding behavior (bottom plot)\n";
  print_cdfs(forwarding);

  std::cout << "\npaper shape: ~70% of silent ASes are cone-1 leaves while ~50% of\n"
               "taggers have cones > 10; undecided resembles tagger; `none` is ~90%\n"
               "leaf; cleaner and forward skew to larger ASes.\n";
  return 0;
}
