// Shared scaffolding for the experiment-regeneration binaries: builds the
// synthetic Internet ("world") every bench runs against and provides the
// BGPCU_SCALE environment knob. Each bench binary regenerates one table or
// figure of the paper; absolute magnitudes are scaled down from the real
// Internet, the printed "paper" columns give the original values for shape
// comparison.
#ifndef BGPCU_BENCH_COMMON_H
#define BGPCU_BENCH_COMMON_H

#include <cstdint>
#include <string>

#include "collector/emit.h"
#include "collector/extract.h"
#include "collector/spec.h"
#include "core/engine.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/generator.h"

namespace bgpcu::bench {

/// Size parameters of a bench world, before BGPCU_SCALE is applied.
struct WorldParams {
  std::uint32_t num_ases = 6000;
  std::size_t peers = 100;
  std::uint64_t seed = 1;
  std::uint32_t observations = 3;  ///< Per-path observation draws.
  bool with_pollution = true;      ///< Wild stray/private communities.
};

/// A fully-built synthetic measurement setting.
struct World {
  topology::GeneratedTopology topo;
  std::vector<collector::ProjectSpec> projects;
  sim::PathSubstrate substrate;
  sim::RoleVector roles;      ///< Wild role model.
  core::Dataset dataset;      ///< Wild (path, comm) tuples, deduplicated.

  [[nodiscard]] core::InferenceResult infer(core::Thresholds thresholds = {}) const;
};

/// Reads BGPCU_SCALE (default 1.0); world sizes multiply by it.
[[nodiscard]] double scale_factor();

/// Builds a world; prints a one-line summary of its dimensions to stdout.
[[nodiscard]] World make_world(WorldParams params);

/// Standard header every bench prints: experiment id + reproduction note.
void print_banner(const std::string& experiment, const std::string& paper_ref);

}  // namespace bgpcu::bench

#endif  // BGPCU_BENCH_COMMON_H
