// bgpcu_classify — command-line front end to the inference pipeline.
//
// Reads MRT dump files (TABLE_DUMP_V2 RIBs and/or BGP4MP updates, e.g. from
// RIPE RIS or RouteViews), applies the paper's sanitation (§4.1), runs the
// column-based inference (§5.6) and writes the per-AS community-usage
// database to stdout (or --output FILE).
//
// Usage:
//   bgpcu_classify [options] DUMP.mrt [DUMP2.mrt ...]
//
// Options:
//   --threshold P      classification threshold in [0.5, 1.0], default 0.99
//   --allocations F    allocation table: lines "asn LO HI" or "prefix P/len";
//                      without it every ASN/prefix is treated as allocated
//                      (the allocation filter becomes a no-op)
//   --output F         write the database to F instead of stdout
//   --vocabulary       also emit per-tagger community vocabularies (§8)
//   --summary          print class counts instead of the full database
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "collector/extract.h"
#include "core/database.h"
#include "core/engine.h"
#include "core/vocabulary.h"
#include "mrt/reader.h"
#include "registry/registry.h"

namespace {

using namespace bgpcu;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threshold P] [--allocations F] [--output F] [--vocabulary] [--summary]"
               " DUMP.mrt...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.99;
  std::string allocations_path;
  std::string output_path;
  bool vocabulary = false;
  bool summary = false;
  std::vector<std::string> dumps;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      threshold = std::atof(next());
      if (threshold < 0.5 || threshold > 1.0) {
        std::cerr << "--threshold must be in [0.5, 1.0]\n";
        return 2;
      }
    } else if (arg == "--allocations") {
      allocations_path = next();
    } else if (arg == "--output") {
      output_path = next();
    } else if (arg == "--vocabulary") {
      vocabulary = true;
    } else if (arg == "--summary") {
      summary = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else {
      dumps.push_back(arg);
    }
  }
  if (dumps.empty()) return usage(argv[0]);

  try {
    const auto reg = allocations_path.empty() ? registry::allow_all()
                                              : registry::load_allocations(allocations_path);
    collector::DatasetBuilder builder(reg);
    for (const auto& path : dumps) {
      // Feed the raw image straight to the extractor; the old parse +
      // re-serialize round trip through MrtWriter doubled the work per dump.
      const auto bytes = mrt::load_file(path);
      builder.add_dump(bytes);
      std::cerr << path << ": " << bytes.size() << " bytes\n";
    }
    const auto bundle = builder.finish();
    std::cerr << "entries: " << bundle.extraction.entries_total
              << " (RIB " << bundle.extraction.rib_entries << ", decode errors "
              << bundle.extraction.decode_errors << ")\n"
              << "sanitation: " << bundle.sanitation.output << " of "
              << bundle.sanitation.input << " entries kept, "
              << bundle.dataset.size() << " unique (path, comm) tuples\n";

    core::EngineConfig config;
    config.thresholds = core::Thresholds::uniform(threshold);
    const auto result = core::ColumnEngine(config).run(bundle.dataset);

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (!output_path.empty()) {
      file.open(output_path, std::ios::trunc);
      if (!file) throw std::runtime_error("cannot open output file: " + output_path);
      out = &file;
    }

    if (summary) {
      std::size_t tagger = 0, silent = 0, fwd = 0, cleaner = 0, undecided = 0, full = 0;
      for (const auto& [asn, counters] : result.counter_map()) {
        const auto usage_class = core::classify(counters, result.thresholds());
        tagger += usage_class.tagging == core::TaggingClass::kTagger;
        silent += usage_class.tagging == core::TaggingClass::kSilent;
        undecided += usage_class.tagging == core::TaggingClass::kUndecided;
        fwd += usage_class.forwarding == core::ForwardingClass::kForward;
        cleaner += usage_class.forwarding == core::ForwardingClass::kCleaner;
        full += usage_class.full();
      }
      *out << "tagger " << tagger << "\nsilent " << silent << "\nundecided " << undecided
           << "\nforward " << fwd << "\ncleaner " << cleaner << "\nfull " << full << "\n";
    } else {
      core::write_database(*out, result);
    }

    if (vocabulary) {
      const auto vocab = core::infer_vocabulary(bundle.dataset, result);
      *out << "# vocabulary: asn value occurrences coverage kind\n";
      for (const auto& [asn, entries] : vocab) {
        for (const auto& entry : entries) {
          *out << "V " << asn << ' ' << entry.value.to_string() << ' ' << entry.occurrences
               << ' ' << entry.coverage << ' ' << core::to_string(entry.kind) << '\n';
        }
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
