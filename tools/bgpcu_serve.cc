// bgpcu_serve — network serving daemon over the api::Service facade.
//
// Binds a TCP listener and speaks the frame protocol (docs/PROTOCOL.md):
// request/response queries (per-ASN class, bulk snapshot, live evidence,
// stats) and streaming class-change subscriptions, the operational mode
// anomaly-detection consumers of community data need. Optionally tails a
// directory of MRT dumps exactly like bgpcu_stream, so one process ingests
// the feed and serves the inferences.
//
// Usage:
//   bgpcu_serve [options] [WATCH_DIR]
//
// Serving options:
//   --host H           listen address, default 127.0.0.1
//   --port P           listen port; 0 picks an ephemeral port (default 4711)
//   --port-file F      write the actually bound port to F (for --port 0)
//   --token T          require this auth token in every client hello
//   --max-conns N      connection limit, default 64
//   --timeout MS       handshake deadline for a client's first frame
//                      (default 5000; 0 disables)
//   --io-threads N     event-loop threads multiplexing connections (default
//                      1; connections are assigned round-robin)
//   --workers N        worker threads dispatching decoded frames off the IO
//                      loops (default 1; 0 dispatches inline on the loop)
//
// Overload-protection options (docs/RELIABILITY.md):
//   --keepalive MS     probe idle negotiated connections with kPing every MS
//                      (default 15000; 0 disables probing)
//   --max-rps N        per-connection request admission rate; over-budget
//                      requests are shed with busy/retry-after (default 0 =
//                      unlimited)
//   --retry-after MS   retry hint carried in busy sheds (default 1000)
//
// Observability options (docs/OBSERVABILITY.md):
//   --metrics-port P       serve GET /metrics (Prometheus text), /metrics.json
//                          and /healthz on this port; 0 picks ephemeral
//   --metrics-port-file F  write the bound metrics port to F (for port 0)
//   --metrics-dump F,SEC   append one JSON metrics line to F every SEC seconds
//   --log-level L          error|warn|info|debug (default info)
//
// Ingest options (all as in bgpcu_stream; WATCH_DIR optional — without it
// the daemon serves an initially empty engine):
//   --threshold P --allocations F --shards N --window W --extension .EXT
//   --settle SEC --interval SEC
//
// Persistence options (docs/PERSISTENCE.md):
//   --data-dir D           durable store directory: WAL + checkpoints. On
//                          start the daemon recovers the newest checkpoint,
//                          replays the WAL tail, and resumes the feed at the
//                          recorded file offsets. Enables `history` queries.
//   --checkpoint-every N   checkpoint cadence in epochs (default 16; 0 =
//                          only the final shutdown checkpoint)
//   --checkpoint-interval SEC  also checkpoint once SEC seconds have passed
//                          since the last one and durable state is pending —
//                          whichever cadence fires first wins. Protects
//                          quiet feeds whose epoch trickle never reaches
//                          --checkpoint-every (default 0 = disabled)
//   --store-sync MODE      WAL fsync policy: none|epoch|always (default epoch)
//
// SIGINT/SIGTERM shut the daemon down cleanly (exit code 0), flushing a
// final checkpoint (with --data-dir) and a final metrics sample (with
// --metrics-dump) first.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "api/service.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/render.h"
#include "registry/registry.h"
#include "store/store.h"
#include "stream/feed.h"
#include "util/cli.h"

namespace {

using namespace bgpcu;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--host H] [--port P] [--port-file F] [--token T] [--max-conns N]"
               " [--timeout MS] [--io-threads N] [--workers N]"
               " [--keepalive MS] [--max-rps N] [--retry-after MS]"
               " [--metrics-port P] [--metrics-port-file F] [--metrics-dump F,SEC]"
               " [--log-level error|warn|info|debug]"
               " [--data-dir D] [--checkpoint-every N] [--checkpoint-interval SEC]"
               " [--store-sync none|epoch|always]"
               " [--threshold P] [--allocations F] [--shards N] [--window W]"
               " [--extension .EXT] [--settle SEC] [--interval SEC] [WATCH_DIR]\n";
  return 2;
}

using util::parse_threshold_or_exit;
using util::parse_u64_or_exit;

/// Sleeps up to `seconds`, returning early (false) once shutdown is asked.
bool interruptible_sleep(unsigned seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (g_stop.load()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return !g_stop.load();
}

/// Holds the background metrics-dump thread. Joining in the destructor (after
/// asking for stop) keeps an exception thrown later in startup — feed or
/// server construction — from destroying a joinable std::thread, which would
/// terminate the process instead of reporting the error.
struct JoiningThread {
  std::thread thread;
  ~JoiningThread() {
    if (thread.joinable()) {
      g_stop.store(true);
      thread.join();
    }
  }
};

/// Write-then-rename so a reader polling for the port can never observe an
/// empty or half-written file: rename() is atomic on POSIX, and the temp name
/// lives in the same directory so it cannot cross a filesystem boundary.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << port << "\n";
    out.flush();
    if (!out) throw std::runtime_error("cannot write port file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("cannot move port file into place: " + path + ": " +
                             ec.message());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 4711;
  std::string port_file;
  int metrics_port = -1;  ///< -1 = no metrics endpoint; 0 = ephemeral.
  std::string metrics_port_file;
  std::string metrics_dump_path;
  unsigned metrics_dump_sec = 0;
  std::string watch_dir;
  std::string allocations_path;
  std::string extension;
  double threshold = 0.99;
  std::uint32_t settle_sec = 0;
  unsigned interval_sec = 5;
  api::ServiceConfig config;
  net::ServerConfig server_config;
  store::StoreConfig store_config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      const auto value = parse_u64_or_exit(arg, next());
      if (value > 0xFFFF) {
        std::cerr << "--port must be <= 65535\n";
        return 2;
      }
      port = static_cast<std::uint16_t>(value);
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--metrics-port") {
      const auto value = parse_u64_or_exit(arg, next());
      if (value > 0xFFFF) {
        std::cerr << "--metrics-port must be <= 65535\n";
        return 2;
      }
      metrics_port = static_cast<int>(value);
    } else if (arg == "--metrics-port-file") {
      metrics_port_file = next();
    } else if (arg == "--metrics-dump") {
      // F,SEC — the interval is everything after the *last* comma, so a
      // path containing commas still parses.
      const std::string spec = next();
      const auto comma = spec.rfind(',');
      if (comma == std::string::npos || comma == 0 || comma + 1 == spec.size()) {
        std::cerr << "--metrics-dump needs FILE,SECONDS, got '" << spec << "'\n";
        return 2;
      }
      metrics_dump_path = spec.substr(0, comma);
      const auto seconds = parse_u64_or_exit("--metrics-dump interval", spec.substr(comma + 1));
      if (seconds == 0) {
        std::cerr << "--metrics-dump interval must be >= 1 second\n";
        return 2;
      }
      metrics_dump_sec = static_cast<unsigned>(seconds);
    } else if (arg == "--log-level") {
      const std::string name = next();
      const auto level = obs::parse_log_level(name);
      if (!level) {
        std::cerr << "--log-level must be error|warn|info|debug, got '" << name << "'\n";
        return 2;
      }
      obs::set_log_level(*level);
    } else if (arg == "--data-dir") {
      store_config.dir = next();
    } else if (arg == "--checkpoint-every") {
      store_config.checkpoint_every_epochs = parse_u64_or_exit(arg, next());
    } else if (arg == "--checkpoint-interval") {
      store_config.checkpoint_interval_sec = parse_u64_or_exit(arg, next());
    } else if (arg == "--store-sync") {
      const std::string mode = next();
      if (mode == "none") {
        store_config.sync = store::SyncPolicy::kNone;
      } else if (mode == "epoch") {
        store_config.sync = store::SyncPolicy::kEpoch;
      } else if (mode == "always") {
        store_config.sync = store::SyncPolicy::kAlways;
      } else {
        std::cerr << "--store-sync must be none|epoch|always, got '" << mode << "'\n";
        return 2;
      }
    } else if (arg == "--token") {
      server_config.auth_token = next();
    } else if (arg == "--max-conns") {
      server_config.max_connections = static_cast<std::size_t>(parse_u64_or_exit(arg, next()));
      if (server_config.max_connections == 0) {
        std::cerr << "--max-conns must be >= 1\n";
        return 2;
      }
    } else if (arg == "--timeout") {
      server_config.hello_timeout_ms =
          static_cast<std::uint32_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--io-threads") {
      server_config.io_threads = static_cast<std::size_t>(parse_u64_or_exit(arg, next()));
      if (server_config.io_threads == 0) {
        std::cerr << "--io-threads must be >= 1\n";
        return 2;
      }
    } else if (arg == "--workers") {
      server_config.worker_threads =
          static_cast<std::size_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--keepalive") {
      server_config.keepalive_interval_ms =
          static_cast<std::uint32_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--max-rps") {
      server_config.max_requests_per_sec =
          static_cast<std::uint32_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--retry-after") {
      server_config.busy_retry_after_ms =
          static_cast<std::uint32_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--threshold") {
      threshold = parse_threshold_or_exit(next());
    } else if (arg == "--allocations") {
      allocations_path = next();
    } else if (arg == "--shards") {
      config.stream.shards = static_cast<std::size_t>(parse_u64_or_exit(arg, next()));
      if (config.stream.shards == 0) {
        std::cerr << "--shards must be >= 1\n";
        return 2;
      }
    } else if (arg == "--window") {
      config.stream.window_epochs = parse_u64_or_exit(arg, next());
    } else if (arg == "--extension") {
      extension = next();
    } else if (arg == "--settle") {
      settle_sec = static_cast<std::uint32_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--interval") {
      interval_sec = static_cast<unsigned>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else if (watch_dir.empty()) {
      watch_dir = arg;
    } else {
      std::cerr << "only one WATCH_DIR expected\n";
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    const auto reg = allocations_path.empty() ? registry::allow_all()
                                              : registry::load_allocations(allocations_path);
    config.stream.engine.thresholds = core::Thresholds::uniform(threshold);
    api::Service service(config);

    // Recover durable state before the listener exists: no client can
    // observe a half-replayed engine.
    std::optional<store::Store> store;
    store::RecoveryStats recovery;
    if (!store_config.dir.empty()) {
      store.emplace(store_config);
      recovery = store->recover(service);
      if (recovery.recovered) {
        std::cerr << "recovered epoch " << recovery.resume_epoch << " from "
                  << store_config.dir << " (" << recovery.batches_replayed
                  << " batch(es) replayed, " << recovery.duration_ms << " ms)\n";
      }
      service.set_history_provider(
          [&store](bgp::Asn asn) { return store->history(asn); });
    }

    auto listener = std::make_shared<net::TcpListener>(host, port);
    std::cerr << "listening on " << listener->name() << "\n";
    obs::log_info("listening", {{"addr", listener->name()}});
    if (!port_file.empty()) write_port_file(port_file, listener->port());

    std::optional<obs::MetricsHttpServer> metrics_http;
    if (metrics_port >= 0) {
      metrics_http.emplace(host, static_cast<std::uint16_t>(metrics_port),
                           obs::Registry::global());
      obs::log_info("metrics_listening",
                    {{"host", host}, {"port", std::to_string(metrics_http->port())}});
      if (!metrics_port_file.empty()) {
        write_port_file(metrics_port_file, metrics_http->port());
      }
    }

    JoiningThread dump_thread;
    if (!metrics_dump_path.empty()) {
      dump_thread.thread = std::thread([path = metrics_dump_path, sec = metrics_dump_sec] {
        std::ofstream out(path, std::ios::app);
        if (!out) {
          obs::log_error("metrics_dump_open_failed", {{"path", path}});
          return;
        }
        // One JSON object per line (JSONL), flushed per sample so a tail -f
        // or a crashed process's last sample is always complete.
        while (!g_stop.load()) {
          out << obs::render_json(obs::Registry::global().collect(),
                                  static_cast<std::int64_t>(std::time(nullptr)))
              << "\n";
          out.flush();
          if (!interruptible_sleep(sec)) break;
        }
      });
      obs::log_info("metrics_dump_started",
                    {{"path", metrics_dump_path},
                     {"interval_sec", std::to_string(metrics_dump_sec)}});
    }

    net::Server server(service, listener, server_config);
    server.start();

    std::optional<stream::DirectoryFeed> feed;
    if (!watch_dir.empty()) {
      feed.emplace(watch_dir, reg, extension, settle_sec);
      // Resume reading MRT files where the durable marks left off, instead
      // of re-parsing (and re-offering) everything the WAL already replayed.
      if (!recovery.feed_marks.empty()) feed->restore_marks(recovery.feed_marks);
    }

    // A recovered engine's current epoch already holds its replayed batch;
    // the first live poll must open a new epoch, exactly as if the process
    // had never restarted.
    std::uint64_t ingest_polls = recovery.recovered ? 1 : 0;
    while (!g_stop.load()) {
      if (!feed) {
        // The time cadence must run even with nothing to ingest — that is
        // its whole point (a quiet feed leaving WAL state uncheckpointed).
        if (store) store->maybe_checkpoint(service);
        (void)interruptible_sleep(interval_sec);
        continue;
      }
      auto poll = feed->poll();
      for (const auto& path : poll.failed) {
        std::cerr << "warning: could not read " << path << " (will retry)\n";
        obs::log_warn("feed_read_failed", {{"path", path}, {"action", "will retry"}});
      }
      if (poll.empty()) {
        if (store) store->maybe_checkpoint(service);
        if (!interruptible_sleep(interval_sec)) break;
        continue;
      }
      // One epoch per ingesting poll, advanced before ingest as in
      // bgpcu_stream (keeps a --window 1 poll's own input alive).
      if (ingest_polls > 0) (void)service.advance_epoch();
      ++ingest_polls;
      // WAL the batch *before* applying it: a crash between the append and
      // the ingest replays the batch on restart, never loses it.
      if (store) {
        store->append_epoch_batch(service.epoch(), poll.batch, feed->export_marks());
      }
      const auto stats = service.ingest(std::move(poll.batch));
      const auto delta = service.publish();
      if (store) {
        store->append_epoch_delta(delta);
        store->maybe_checkpoint(service);
      }
      std::cerr << "epoch " << service.epoch() << ": " << poll.files.size()
                << " file(s), " << stats.accepted << " new tuples, " << delta.changes.size()
                << " class change(s), " << server.connection_count() << " client(s)\n";
      obs::log_debug("epoch_published",
                     {{"epoch", std::to_string(service.epoch())},
                      {"files", std::to_string(poll.files.size())},
                      {"accepted", std::to_string(stats.accepted)},
                      {"class_changes", std::to_string(delta.changes.size())},
                      {"clients", std::to_string(server.connection_count())}});
      if (!interruptible_sleep(interval_sec)) break;
    }

    obs::log_info("shutdown", {{"reason", "signal"}});
    server.stop();
    // Final checkpoint so a clean shutdown restarts with zero WAL replay.
    if (store && store->checkpoint(service)) {
      obs::log_info("final_checkpoint", {{"epoch", std::to_string(service.epoch())}});
    }
    if (dump_thread.thread.joinable()) {
      g_stop.store(true);  // already set on this path; explicit for clarity
      dump_thread.thread.join();
    }
    if (!metrics_dump_path.empty()) {
      // One last sample after everything above stopped, so the dump's final
      // line reflects the whole run (including the final checkpoint).
      std::ofstream out(metrics_dump_path, std::ios::app);
      if (out) {
        out << obs::render_json(obs::Registry::global().collect(),
                                static_cast<std::int64_t>(std::time(nullptr)))
            << "\n";
      }
    }
    if (metrics_http) metrics_http->stop();
    std::cerr << "shut down cleanly\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    obs::log_error("fatal", {{"what", e.what()}});
    return 1;
  }
}
