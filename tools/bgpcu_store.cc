// bgpcu_store — offline administration of a durable store directory
// (docs/PERSISTENCE.md). Run it only while no daemon is serving from the
// directory; the store has no cross-process lock.
//
// Usage:
//   bgpcu_store inspect DIR        manifest, checkpoints, WAL segments, and
//                                  the epoch range the directory can recover
//   bgpcu_store verify DIR         full CRC walk of every file; exit 1 on
//                                  corruption. A torn tail in the *newest*
//                                  segment is a normal crash artifact and
//                                  only warns.
//   bgpcu_store compact DIR        recover the store in-process and write a
//                                  fresh checkpoint, folding the WAL tail in
//                                  and GC-ing dead segments
//   bgpcu_store history ASN DIR    one AS's class evolution from the
//                                  retained checkpoints, offline
//
// Diagnostics go to stderr; stdout carries the requested report.
// Exit codes: 0 success, 1 corruption/failure, 2 usage error.
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "store/store.h"
#include "util/cli.h"

namespace {

using namespace bgpcu;
namespace fs = std::filesystem;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " inspect DIR | verify DIR | compact DIR | history ASN DIR\n";
  return 2;
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

int cmd_inspect(const std::string& dir) {
  store::Manifest manifest;
  bool manifest_ok = true;
  try {
    manifest = store::decode_manifest(store::io::read_file(store::manifest_path(dir)));
  } catch (const store::StoreError& e) {
    manifest_ok = false;
    std::cerr << "warning: manifest: " << e.what() << "\n";
  }
  std::cout << dir << ": manifest " << (manifest_ok ? "ok" : "unreadable") << ", "
            << manifest.checkpoints.size() << " checkpoint(s), wal start seq "
            << manifest.wal_start_seq << "\n";
  for (const auto epoch : manifest.checkpoints) {
    std::cout << "  checkpoint epoch " << epoch;
    for (const char* suffix : {".state", ".snap", ".index"}) {
      const auto path = store::checkpoint_path(dir, epoch, suffix);
      std::error_code ec;
      if (fs::exists(path, ec)) {
        std::cout << " " << suffix << " " << file_size_or_zero(path) << "B";
      }
    }
    std::cout << "\n";
  }
  std::uint64_t first_epoch = 0, last_epoch = 0, total_records = 0;
  bool any = false;
  for (const auto& [seq, path] : store::list_segments(dir, 0)) {
    const auto result = store::read_segment_file(path);
    std::cout << "  segment " << fs::path(path).filename().string() << ": "
              << result.records.size() << " record(s), " << file_size_or_zero(path)
              << " bytes" << (result.truncated_records != 0 ? ", TRUNCATED tail" : "")
              << (seq < manifest.wal_start_seq ? " (dead, awaiting gc)" : "") << "\n";
    total_records += result.records.size();
    for (const auto& record : result.records) {
      if (!any || record.epoch < first_epoch) first_epoch = record.epoch;
      if (!any || record.epoch > last_epoch) last_epoch = record.epoch;
      any = true;
    }
  }
  if (!manifest.checkpoints.empty()) {
    const auto base = manifest.checkpoints.back();
    if (!any || base < first_epoch) first_epoch = base;
    if (!any || base > last_epoch) last_epoch = base;
    any = true;
  }
  if (any) {
    std::cout << "  recoverable epochs " << first_epoch << ".." << last_epoch << ", "
              << total_records << " live WAL record(s)\n";
  } else {
    std::cout << "  empty store\n";
  }
  return 0;
}

int cmd_verify(const std::string& dir) {
  bool corrupt = false;
  const auto fail = [&corrupt](const std::string& what) {
    std::cerr << "CORRUPT: " << what << "\n";
    corrupt = true;
  };

  store::Manifest manifest;
  std::error_code ec;
  if (fs::exists(store::manifest_path(dir), ec)) {
    try {
      manifest = store::decode_manifest(store::io::read_file(store::manifest_path(dir)));
      std::cout << "manifest: ok\n";
    } catch (const store::StoreError& e) {
      fail(std::string("manifest: ") + e.what());
    }
  } else {
    std::cout << "manifest: absent\n";
  }

  for (const auto epoch : manifest.checkpoints) {
    const auto state_path = store::checkpoint_path(dir, epoch, ".state");
    try {
      const auto state = store::decode_state_file(store::io::read_file(state_path));
      std::size_t tuples = 0;
      for (const auto& shard : state.engine.shards) tuples += shard.tuples.size();
      std::cout << "checkpoint " << epoch << " .state: ok, " << tuples << " tuple(s)\n";
    } catch (const store::StoreError& e) {
      fail(state_path + ": " + e.what());
    }
    const auto snap_path = store::checkpoint_path(dir, epoch, ".snap");
    try {
      const auto snap = api::decode_snapshot(store::io::read_file(snap_path));
      std::cout << "checkpoint " << epoch << " .snap: ok, " << snap.counter_map().size()
                << " AS(es)\n";
    } catch (const std::exception& e) {
      fail(snap_path + ": " + e.what());
    }
    const auto index_path = store::checkpoint_path(dir, epoch, ".index");
    if (fs::exists(index_path, ec)) {
      try {
        const auto bytes = store::io::read_file(index_path);
        (void)store::index_file_payload(bytes);
        std::cout << "checkpoint " << epoch << " .index: ok\n";
      } catch (const store::StoreError& e) {
        fail(index_path + ": " + e.what());
      }
    }
  }

  const auto segments = store::list_segments(dir, 0);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [seq, path] = segments[i];
    const auto result = store::read_segment_file(path);
    const bool last = i + 1 == segments.size();
    if (result.truncated_records == 0 && result.warnings.empty()) {
      std::cout << fs::path(path).filename().string() << ": ok, "
                << result.records.size() << " record(s)\n";
    } else if (last) {
      // The newest segment legitimately ends torn after a crash: recovery
      // truncates it, so this is a warning, not corruption.
      for (const auto& w : result.warnings) std::cerr << "warning: " << w << "\n";
      std::cout << fs::path(path).filename().string() << ": torn tail, "
                << result.records.size() << " record(s) recoverable\n";
    } else {
      for (const auto& w : result.warnings) fail(w);
      if (result.warnings.empty()) fail(path + ": truncated record(s)");
    }
  }

  if (corrupt) {
    std::cerr << "verification FAILED\n";
    return 1;
  }
  std::cout << "verification ok\n";
  return 0;
}

int cmd_compact(const std::string& dir) {
  // Build a service matching the persisted config fingerprint so replay is
  // bit-identical to the daemon that wrote the WAL, then checkpoint: the
  // fresh checkpoint absorbs the whole tail and GC empties the directory of
  // dead segments.
  api::ServiceConfig config;
  if (const auto state = store::load_newest_state(dir)) {
    config = store::service_config_from(*state);
  }
  config.stream.engine.threads = 1;
  api::Service service(config);
  store::Store st({.dir = dir});
  const auto recovery = st.recover(service);
  for (const auto& warning : recovery.warnings) {
    std::cerr << "warning: " << warning << "\n";
  }
  if (!recovery.recovered) {
    std::cout << dir << ": nothing to compact\n";
    return 0;
  }
  if (!st.checkpoint(service)) {
    std::cerr << "error: checkpoint failed (store degraded)\n";
    return 1;
  }
  std::cout << dir << ": compacted to checkpoint epoch " << service.epoch() << " ("
            << recovery.batches_replayed << " batch(es) folded in)\n";
  return 0;
}

int cmd_history(const std::string& asn_text, const std::string& dir) {
  const auto asn = util::parse_asn_or_exit(asn_text);
  const store::Store st({.dir = dir});
  for (const auto& point : st.history(asn)) {
    std::cout << "epoch " << point.epoch << " AS " << asn << " class "
              << point.usage.code() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) return usage(argv[0]);
  try {
    if (args.size() == 2 && args[0] == "inspect") return cmd_inspect(args[1]);
    if (args.size() == 2 && args[0] == "verify") return cmd_verify(args[1]);
    if (args.size() == 2 && args[0] == "compact") return cmd_compact(args[1]);
    if (args.size() == 3 && args[0] == "history") return cmd_history(args[1], args[2]);
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
