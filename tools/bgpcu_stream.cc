// bgpcu_stream — streaming front end to the inference pipeline, built
// entirely on the bgpcu::api::Service facade.
//
// Tails a directory that MRT dumps (BGP4MP update files and/or TABLE_DUMP_V2
// RIBs) are dropped into, feeds each poll's new bytes through extraction +
// sanitation as one batch, and maintains live per-AS community-usage
// classifications. Every poll that ingests data advances one epoch;
// snapshots are published periodically as inference databases (text or
// binary wire format) plus a class-change delta feed on stdout:
//
//   AS 3356 changed tf->tc at epoch 12
//
// Usage:
//   bgpcu_stream [options] WATCH_DIR
//
// Options:
//   --threshold P      classification threshold in [0.5, 1.0], default 0.99
//   --allocations F    allocation table (see bgpcu_classify); default: all
//                      ASNs/prefixes treated as allocated
//   --shards N         ASN-hash shard count, default 8 (must be >= 1)
//   --window W         sliding window in epochs; tuples unseen for W epochs
//                      age out; 0 (default) keeps everything forever
//   --extension .EXT   only consume files with this extension
//   --settle SEC       skip files modified within the last SEC seconds
//                      (for feeds written in place rather than renamed in);
//                      default 0 (off)
//   --interval SEC     poll interval in seconds, default 5
//   --max-epochs N     exit after N ingesting epochs (0 = run forever)
//   --once             drain the directory once and exit (implies a final
//                      snapshot even if the last poll was empty)
//   --snapshot-dir D   write snapshot-<epoch> artifacts into D
//   --snapshot-every K publish a snapshot every K epochs, default 1
//   --format F         snapshot/delta artifact format: text (default) or
//                      wire; wire also writes delta-<epoch>.wire files
//   --watch ASNS       comma-separated ASN watchlist for the stdout delta
//                      feed (default: all ASes)
//   --transition SPEC  only report FROM->TO class transitions on stdout,
//                      each side a class code or '*' (e.g. '*->tc')
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "api/service.h"
#include "api/wire.h"
#include "registry/registry.h"
#include "stream/feed.h"
#include "util/cli.h"

namespace {

using namespace bgpcu;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threshold P] [--allocations F] [--shards N] [--window W]"
               " [--extension .EXT] [--settle SEC] [--interval SEC] [--max-epochs N] [--once]"
               " [--snapshot-dir D] [--snapshot-every K] [--format text|wire]"
               " [--watch ASN[,ASN...]] [--transition FROM->TO] WATCH_DIR\n";
  return 2;
}

using util::parse_threshold_or_exit;
using util::parse_u64_or_exit;

std::string artifact_path(const std::string& dir, const char* stem, stream::Epoch epoch,
                          const std::string& extension) {
  char name[32];
  std::snprintf(name, sizeof name, "%s-%06llu", stem,
                static_cast<unsigned long long>(epoch));
  return (std::filesystem::path(dir) / (name + extension)).string();
}

void write_delta_file(const std::string& path, const api::EpochDelta& delta) {
  const auto frame = api::encode_delta_batch(delta);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  if (!out) throw std::runtime_error("short write to delta file: " + path);
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.99;
  std::string allocations_path;
  std::string watch_dir;
  std::string snapshot_dir;
  std::string extension;
  api::ServiceConfig config;
  api::SubscriptionFilter filter;
  api::Format format = api::Format::kText;
  std::uint32_t settle_sec = 0;
  unsigned interval_sec = 5;
  std::uint64_t max_epochs = 0;
  std::uint64_t snapshot_every = 1;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      threshold = parse_threshold_or_exit(next());
    } else if (arg == "--allocations") {
      allocations_path = next();
    } else if (arg == "--shards") {
      config.stream.shards = static_cast<std::size_t>(parse_u64_or_exit(arg, next()));
      if (config.stream.shards == 0) {
        std::cerr << "--shards must be >= 1\n";
        return 2;
      }
    } else if (arg == "--window") {
      config.stream.window_epochs = parse_u64_or_exit(arg, next());
    } else if (arg == "--extension") {
      extension = next();
    } else if (arg == "--settle") {
      settle_sec = static_cast<std::uint32_t>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--interval") {
      interval_sec = static_cast<unsigned>(parse_u64_or_exit(arg, next()));
    } else if (arg == "--max-epochs") {
      max_epochs = parse_u64_or_exit(arg, next());
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--snapshot-dir") {
      snapshot_dir = next();
    } else if (arg == "--snapshot-every") {
      snapshot_every = parse_u64_or_exit(arg, next());
      if (snapshot_every == 0) snapshot_every = 1;
    } else if (arg == "--format") {
      const auto parsed = api::parse_format(next());
      if (!parsed) {
        std::cerr << "--format must be 'text' or 'wire', got '" << argv[i] << "'\n";
        return 2;
      }
      format = *parsed;
    } else if (arg == "--watch") {
      filter.watch = util::parse_asn_list_or_exit(arg, next());
    } else if (arg == "--transition") {
      try {
        const auto spec = api::SubscriptionFilter::transition(next());
        filter.from = spec.from;
        filter.to = spec.to;
      } catch (const std::invalid_argument& e) {
        std::cerr << "--transition: " << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else if (watch_dir.empty()) {
      watch_dir = arg;
    } else {
      std::cerr << "only one WATCH_DIR expected\n";
      return usage(argv[0]);
    }
  }
  if (watch_dir.empty()) return usage(argv[0]);

  try {
    const auto reg = allocations_path.empty() ? registry::allow_all()
                                              : registry::load_allocations(allocations_path);
    config.stream.engine.thresholds = core::Thresholds::uniform(threshold);
    api::Service service(config);
    const auto codec = api::make_codec(format);
    stream::DirectoryFeed feed(watch_dir, reg, extension, settle_sec);
    if (!snapshot_dir.empty()) std::filesystem::create_directories(snapshot_dir);

    // The stdout delta feed is a plain subscription on the facade.
    (void)service.subscribe(filter, [](const api::EpochDelta& delta) {
      for (const auto& change : delta.changes) {
        std::cout << change.to_string(delta.epoch) << "\n";
      }
      std::cout.flush();
    });

    std::optional<stream::Epoch> last_published;
    const auto publish_snapshot = [&](stream::Epoch epoch) {
      const auto delta = service.publish();
      if (!snapshot_dir.empty()) {
        const auto response = service.query({.kind = api::QueryKind::kSnapshot});
        codec->write_snapshot_file(
            artifact_path(snapshot_dir, "snapshot", epoch, codec->extension()),
            *response.snapshot);
        if (format == api::Format::kWire && !delta.changes.empty()) {
          write_delta_file(artifact_path(snapshot_dir, "delta", epoch, ".wire"), delta);
        }
      }
      last_published = epoch;
    };

    std::uint64_t ingest_polls = 0;
    while (true) {
      auto poll = feed.poll();
      for (const auto& path : poll.failed) {
        std::cerr << "warning: could not read " << path
                  << (once ? "\n" : " (will retry)\n");
      }
      if (poll.empty()) {
        if (once) break;
        std::this_thread::sleep_for(std::chrono::seconds(interval_sec));
        continue;
      }
      // Every ingesting poll is one epoch; advance *before* ingesting so the
      // new tuples belong to the new epoch (advancing afterwards would evict
      // a --window 1 poll's own input before it could ever be snapshotted).
      if (ingest_polls > 0) (void)service.advance_epoch();
      ++ingest_polls;
      const auto stats = service.ingest(std::move(poll.batch));
      const auto epoch = service.epoch();
      const auto health = service.query({.kind = api::QueryKind::kStats});
      std::cerr << "epoch " << epoch << ": " << poll.files.size() << " file(s), "
                << poll.extraction.entries_total << " entries, " << stats.accepted
                << " new tuples (" << stats.refreshed << " refreshed, " << stats.duplicates
                << " dup, " << stats.rejected << " rejected), " << health.stats->live_tuples
                << " live, " << health.stats->evicted_total << " evicted total\n";
      if (ingest_polls % snapshot_every == 0) publish_snapshot(epoch);
      if (max_epochs != 0 && ingest_polls >= max_epochs) break;
      if (!once) std::this_thread::sleep_for(std::chrono::seconds(interval_sec));
    }

    // Final state for drain runs: make sure the last epoch is reflected even
    // when it fell between --snapshot-every ticks.
    if (ingest_polls > 0 && last_published != service.epoch()) {
      publish_snapshot(service.epoch());
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
