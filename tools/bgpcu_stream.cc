// bgpcu_stream — streaming front end to the inference pipeline.
//
// Tails a directory that MRT dumps (BGP4MP update files and/or TABLE_DUMP_V2
// RIBs) are dropped into, feeds each poll's new files through extraction +
// sanitation as one batch, and maintains live per-AS community-usage
// classifications in a sharded stream engine. Every poll that ingests data
// advances one epoch; snapshots are emitted periodically as inference
// databases plus a class-change delta feed on stdout:
//
//   AS 3356 changed tf->tc at epoch 12
//
// Usage:
//   bgpcu_stream [options] WATCH_DIR
//
// Options:
//   --threshold P      classification threshold in [0.5, 1.0], default 0.99
//   --allocations F    allocation table (see bgpcu_classify); default: all
//                      ASNs/prefixes treated as allocated
//   --shards N         ASN-hash shard count, default 8
//   --window W         sliding window in epochs; tuples unseen for W epochs
//                      age out; 0 (default) keeps everything forever
//   --extension .EXT   only consume files with this extension
//   --settle SEC       skip files modified within the last SEC seconds
//                      (for feeds written in place rather than renamed in);
//                      default 0 (off)
//   --interval SEC     poll interval in seconds, default 5
//   --max-epochs N     exit after N ingesting epochs (0 = run forever)
//   --once             drain the directory once and exit (implies a final
//                      snapshot even if the last poll was empty)
//   --snapshot-dir D   write snapshot-<epoch>.db databases into D
//   --snapshot-every K emit a snapshot every K epochs, default 1
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "core/database.h"
#include "registry/registry.h"
#include "stream/delta.h"
#include "stream/engine.h"
#include "stream/feed.h"

namespace {

using namespace bgpcu;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--threshold P] [--allocations F] [--shards N] [--window W]"
               " [--extension .EXT] [--settle SEC] [--interval SEC] [--max-epochs N] [--once]"
               " [--snapshot-dir D] [--snapshot-every K] WATCH_DIR\n";
  return 2;
}

std::uint64_t parse_u64(const std::string& flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const auto value = std::strtoull(text, &end, 10);
  // strtoull silently wraps "-1" to huge; reject any sign explicitly.
  if (errno != 0 || end == text || *end != '\0' || text[0] == '-' || text[0] == '+') {
    std::cerr << flag << " needs a non-negative integer, got '" << text << "'\n";
    std::exit(2);
  }
  return value;
}

std::string snapshot_path(const std::string& dir, stream::Epoch epoch) {
  char name[32];
  std::snprintf(name, sizeof name, "snapshot-%06llu.db",
                static_cast<unsigned long long>(epoch));
  return (std::filesystem::path(dir) / name).string();
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.99;
  std::string allocations_path;
  std::string watch_dir;
  std::string snapshot_dir;
  std::string extension;
  stream::StreamConfig config;
  std::uint32_t settle_sec = 0;
  unsigned interval_sec = 5;
  std::uint64_t max_epochs = 0;
  std::uint64_t snapshot_every = 1;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      threshold = std::atof(next());
      if (threshold < 0.5 || threshold > 1.0) {
        std::cerr << "--threshold must be in [0.5, 1.0]\n";
        return 2;
      }
    } else if (arg == "--allocations") {
      allocations_path = next();
    } else if (arg == "--shards") {
      config.shards = static_cast<std::size_t>(parse_u64(arg, next()));
      if (config.shards == 0) {
        std::cerr << "--shards must be >= 1\n";
        return 2;
      }
    } else if (arg == "--window") {
      config.window_epochs = parse_u64(arg, next());
    } else if (arg == "--extension") {
      extension = next();
    } else if (arg == "--settle") {
      settle_sec = static_cast<std::uint32_t>(parse_u64(arg, next()));
    } else if (arg == "--interval") {
      interval_sec = static_cast<unsigned>(parse_u64(arg, next()));
    } else if (arg == "--max-epochs") {
      max_epochs = parse_u64(arg, next());
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--snapshot-dir") {
      snapshot_dir = next();
    } else if (arg == "--snapshot-every") {
      snapshot_every = parse_u64(arg, next());
      if (snapshot_every == 0) snapshot_every = 1;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else if (watch_dir.empty()) {
      watch_dir = arg;
    } else {
      std::cerr << "only one WATCH_DIR expected\n";
      return usage(argv[0]);
    }
  }
  if (watch_dir.empty()) return usage(argv[0]);

  try {
    const auto reg = allocations_path.empty() ? registry::allow_all()
                                              : registry::load_allocations(allocations_path);
    config.engine.thresholds = core::Thresholds::uniform(threshold);
    stream::StreamEngine engine(config);
    stream::DirectoryFeed feed(watch_dir, reg, extension, settle_sec);
    if (!snapshot_dir.empty()) std::filesystem::create_directories(snapshot_dir);

    core::InferenceResult previous({}, config.engine.thresholds, 0);
    std::optional<stream::Epoch> last_emitted;
    const auto emit_snapshot = [&](stream::Epoch epoch) {
      const auto result = engine.snapshot();
      for (const auto& change : stream::diff_classifications(previous, result)) {
        std::cout << change.to_string(epoch) << "\n";
      }
      std::cout.flush();
      if (!snapshot_dir.empty()) {
        core::write_database_file(snapshot_path(snapshot_dir, epoch), result);
      }
      previous = result;
      last_emitted = epoch;
    };

    std::uint64_t ingest_polls = 0;
    while (true) {
      auto poll = feed.poll();
      for (const auto& path : poll.failed) {
        std::cerr << "warning: could not read " << path
                  << (once ? "\n" : " (will retry)\n");
      }
      if (poll.empty()) {
        if (once) break;
        std::this_thread::sleep_for(std::chrono::seconds(interval_sec));
        continue;
      }
      // Every ingesting poll is one epoch; advance *before* ingesting so the
      // new tuples belong to the new epoch (advancing afterwards would evict
      // a --window 1 poll's own input before it could ever be snapshotted).
      if (ingest_polls > 0) engine.advance_epoch();
      ++ingest_polls;
      const auto stats = engine.ingest(std::move(poll.batch));
      const auto epoch = engine.epoch();
      std::cerr << "epoch " << epoch << ": " << poll.files.size() << " file(s), "
                << poll.extraction.entries_total << " entries, " << stats.accepted
                << " new tuples (" << stats.refreshed << " refreshed, " << stats.duplicates
                << " dup, " << stats.rejected << " rejected), " << engine.live_tuples()
                << " live, " << engine.evicted_total() << " evicted total\n";
      if (ingest_polls % snapshot_every == 0) emit_snapshot(epoch);
      if (max_epochs != 0 && ingest_polls >= max_epochs) break;
      if (!once) std::this_thread::sleep_for(std::chrono::seconds(interval_sec));
    }

    // Final state for drain runs: make sure the last epoch is reflected even
    // when it fell between --snapshot-every ticks.
    if (ingest_polls > 0 && last_emitted != engine.epoch()) emit_snapshot(engine.epoch());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
