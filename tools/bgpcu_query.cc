// bgpcu_query — inspect and query the service's snapshot/delta artifacts,
// from files or live from a bgpcu_serve daemon.
//
// File mode works on both artifact formats: the versioned binary wire format
// (api/wire.h, docs/WIRE_FORMAT.md) and the v1 text inference database;
// snapshot-consuming subcommands sniff the format from the leading bytes.
// Network mode (--connect) speaks the frame protocol (docs/PROTOCOL.md)
// through net::ResilientClient: connects retry with backoff inside a
// bounded budget (--retries, --no-retry), the TCP connect itself is
// deadlined (--timeout), and `watch` survives server restarts — it
// reconnects, resumes from the last seen epoch, and reports replay-horizon
// gaps on stderr (docs/RELIABILITY.md).
//
// Usage:
//   bgpcu_query info FILE...             identify each file: format, frame
//                                        types, record counts, sizes
//   bgpcu_query dump FILE                decode a snapshot (wire or text)
//                                        and print it as a v1 text database
//   bgpcu_query asn ASN FILE             one AS's class + counters from a
//                                        snapshot
//   bgpcu_query deltas FILE...           decode delta-batch frames and print
//                                        the class-change feed as text
//   bgpcu_query convert FORMAT IN OUT    transcode a snapshot between
//                                        'text' and 'wire'
//
// Network mode (HOST:PORT from --connect; --token T when the server
// requires auth):
//   bgpcu_query dump --connect HOST:PORT        live snapshot as a text db
//   bgpcu_query asn ASN --connect HOST:PORT     one AS's swept class
//   bgpcu_query live ASN --connect HOST:PORT    real-time peer-column
//                                               evidence (no sweep)
//   bgpcu_query stats --connect HOST:PORT       service health counters
//     [--json]                                  (machine-readable JSON object)
//   bgpcu_query metrics --connect HOST:PORT     full observability scrape
//     [--json]                                  (Prometheus text, or JSON)
//   bgpcu_query history ASN --connect HOST:PORT one AS's class evolution
//                                               across retained checkpoints
//                                               (needs a --data-dir server)
//   bgpcu_query watch --connect HOST:PORT       stream the class-change feed
//     [--transition FROM->TO] [--asns A,B,...]  (filtered server-side)
//     [--replay-from E] [--max-batches N]
//
// Connection options (any network command):
//   --timeout MS   TCP connect + handshake deadline (default 5000; 0 = none)
//   --retries N    connect attempts before giving up (default 3)
//   --no-retry     single connect attempt, no backoff (same as --retries 1)
//
// Diagnostics go to stderr; stdout carries only the requested artifact
// data. Exit codes: 0 success, 1 runtime failure, 2 usage error,
// 3 connect/transport failure (server unreachable or link lost for good).
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/wire.h"
#include "core/database.h"
#include "net/client.h"
#include "net/resilient.h"
#include "net/socket.h"
#include "obs/render.h"
#include "util/cli.h"

namespace {

using namespace bgpcu;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " info FILE... | dump FILE | asn ASN FILE | deltas FILE... |"
               " convert text|wire IN OUT\n"
               "       " << argv0
            << " [--connect HOST:PORT] [--token T] [--timeout MS] [--retries N]"
               " [--no-retry] dump | asn ASN | live ASN |"
               " history ASN | stats [--json] | metrics [--json] |"
               " watch [--transition FROM->TO] [--asns A,B,...]"
               " [--replay-from E] [--max-batches N]\n";
  return 2;
}

const char* frame_type_name(api::FrameType type) {
  switch (type) {
    case api::FrameType::kSnapshot: return "snapshot";
    case api::FrameType::kDeltaBatch: return "delta-batch";
    case api::FrameType::kQueryRequest: return "query-request";
    case api::FrameType::kQueryResponse: return "query-response";
    case api::FrameType::kHello: return "hello";
    case api::FrameType::kWelcome: return "welcome";
    case api::FrameType::kError: return "error";
    case api::FrameType::kSubscribe: return "subscribe";
    case api::FrameType::kSubscribed: return "subscribed";
    case api::FrameType::kEvent: return "event";
    case api::FrameType::kRequest: return "request";
    case api::FrameType::kResponse: return "response";
    case api::FrameType::kUnsubscribe: return "unsubscribe";
    case api::FrameType::kUnsubscribed: return "unsubscribed";
    case api::FrameType::kHello2: return "hello2";
    case api::FrameType::kWelcome2: return "welcome2";
    case api::FrameType::kPing: return "ping";
    case api::FrameType::kPong: return "pong";
    case api::FrameType::kBusy: return "busy";
  }
  return "unknown";
}

/// Re-frames one frame's bytes so the single-frame decoders can be reused on
/// members of a concatenated log.
std::vector<std::uint8_t> single_frame_bytes(std::span<const std::uint8_t> data,
                                             std::size_t start, std::size_t size) {
  return {data.begin() + static_cast<std::ptrdiff_t>(start),
          data.begin() + static_cast<std::ptrdiff_t>(start + size)};
}

using util::parse_asn_or_exit;
using util::parse_u64_or_exit;

// ------------------------------------------------------------- file mode --

int cmd_info(const std::vector<std::string>& files) {
  bool failed = false;
  for (const auto& path : files) {
    try {
      // Sniff the head before deciding what (and whether) to load fully —
      // identifying a multi-GB text database must not read it all.
      const auto format = api::sniff_format(path);
      if (format == api::Format::kWire) {
        const auto bytes = api::read_file_bytes(path);
        std::cout << path << ": wire v"
                  << (bytes.size() > 4 ? int{bytes[4]} : 0)  // the file's version field
                  << ", " << bytes.size() << " bytes\n";
        api::FrameReader frames(bytes);
        std::size_t start = 0;
        while (const auto frame = frames.next()) {
          std::cout << "  frame " << frame_type_name(frame->type) << ", " << frame->size
                    << " bytes";
          const auto whole = single_frame_bytes(bytes, start, frame->size);
          if (frame->type == api::FrameType::kSnapshot) {
            const auto snapshot = api::decode_snapshot(whole);
            std::cout << ", " << snapshot.counter_map().size() << " ASes, "
                      << snapshot.columns_swept() << " columns swept";
          } else if (frame->type == api::FrameType::kDeltaBatch) {
            const auto delta = api::decode_delta_batch(whole);
            std::cout << ", epoch " << delta.epoch << ", " << delta.changes.size()
                      << " change(s)";
          }
          std::cout << "\n";
          start += frame->size;
        }
      } else if (format == api::Format::kText) {
        const auto snapshot = core::read_database_file(path);
        std::cout << path << ": text v1, " << std::filesystem::file_size(path)
                  << " bytes, " << snapshot.counter_map().size() << " ASes\n";
      } else {
        std::cerr << path << ": unrecognized format\n";
        failed = true;
      }
    } catch (const std::exception& e) {
      // Diagnose and keep going: `info` over a mixed directory should
      // identify everything it can and still fail loudly overall.
      std::cerr << path << ": " << e.what() << "\n";
      failed = true;
    }
  }
  return failed ? 1 : 0;
}

int cmd_dump(const std::string& path) {
  const auto snapshot = api::read_snapshot_any(path);
  core::write_database(std::cout, snapshot);
  return 0;
}

void print_asn_line(bgp::Asn asn, const core::UsageClass& usage,
                    const core::UsageCounters& k) {
  std::cout << "AS " << asn << " class " << usage.code() << " t " << k.t << " s " << k.s
            << " f " << k.f << " c " << k.c << "\n";
}

int cmd_asn(const std::string& asn_text, const std::string& path) {
  const auto asn = parse_asn_or_exit(asn_text);
  const auto snapshot = api::read_snapshot_any(path);
  print_asn_line(asn, snapshot.usage(asn), snapshot.counters(asn));
  return 0;
}

int cmd_deltas(const std::vector<std::string>& files) {
  for (const auto& path : files) {
    const auto bytes = api::read_file_bytes(path);
    api::FrameReader frames(bytes);
    std::size_t start = 0;
    while (const auto frame = frames.next()) {
      if (frame->type == api::FrameType::kDeltaBatch) {
        const auto delta =
            api::decode_delta_batch(single_frame_bytes(bytes, start, frame->size));
        for (const auto& change : delta.changes) {
          std::cout << change.to_string(delta.epoch) << "\n";
        }
      }
      start += frame->size;
    }
  }
  return 0;
}

int cmd_convert(const std::string& format_name, const std::string& in,
                const std::string& out) {
  const auto format = api::parse_format(format_name);
  if (!format) {
    std::cerr << "convert format must be 'text' or 'wire', got '" << format_name << "'\n";
    return 2;
  }
  const auto snapshot = api::read_snapshot_any(in);
  api::make_codec(*format)->write_snapshot_file(out, snapshot);
  return 0;
}

// ---------------------------------------------------------- network mode --

/// Everything --connect mode needs, pulled out of the argument list.
struct ConnectOptions {
  std::string host;
  std::uint16_t port = 0;
  std::string token;
  std::string transition;
  std::string asns;
  std::optional<stream::Epoch> replay_from;
  std::uint64_t max_batches = 0;  ///< 0 = stream until the server closes.
  bool json = false;              ///< stats/metrics: machine-readable output.
  std::uint64_t timeout_ms = 5000;
  std::uint64_t retries = 3;
};

net::ResilientClient connect_client(const ConnectOptions& options) {
  net::ResilientConfig config;
  config.token = options.token;
  config.backoff = {.initial_ms = 100, .cap_ms = 2000, .seed = 1};
  config.max_connect_attempts = options.retries;
  config.handshake_timeout_ms = options.timeout_ms;
  const auto host = options.host;
  const auto port = options.port;
  const auto timeout = std::chrono::milliseconds(options.timeout_ms);
  return net::ResilientClient(
      [host, port, timeout] { return net::tcp_connect(host, port, timeout); },
      std::move(config));
}

int cmd_net_dump(const ConnectOptions& options) {
  auto client = connect_client(options);
  const auto response = client.query({.kind = api::QueryKind::kSnapshot});
  if (!response.snapshot) throw std::runtime_error("server returned no snapshot");
  core::write_database(std::cout, *response.snapshot);
  return 0;
}

int cmd_net_asn(const ConnectOptions& options, const std::string& asn_text,
                api::QueryKind kind) {
  const auto asn = parse_asn_or_exit(asn_text);
  auto client = connect_client(options);
  const auto response = client.query({.kind = kind, .asn = asn});
  if (!response.asn_class) throw std::runtime_error("server returned no per-ASN answer");
  print_asn_line(response.asn_class->asn, response.asn_class->usage,
                 response.asn_class->counters);
  return 0;
}

int cmd_net_history(const ConnectOptions& options, const std::string& asn_text) {
  const auto asn = parse_asn_or_exit(asn_text);
  auto client = connect_client(options);
  const auto response = client.query({.kind = api::QueryKind::kHistory, .asn = asn});
  if (!response.history) throw std::runtime_error("server returned no history");
  for (const auto& point : *response.history) {
    std::cout << "epoch " << point.epoch << " AS " << asn << " class "
              << point.usage.code() << "\n";
  }
  return 0;
}

/// "1234567" -> "1,234,567"; values under 1000 are unchanged, so scripts
/// grepping small counters ("live_tuples 0") keep working.
std::string with_thousands(std::uint64_t value) {
  std::string digits = std::to_string(value);
  if (digits.size() <= 3) return digits;
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i >= lead && (i - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

/// A nanosecond count as "(X.XX ms)" or "(X.XX µs)" for human eyes.
std::string human_ns(std::uint64_t ns) {
  char buf[48];
  if (ns >= 1000000) {
    std::snprintf(buf, sizeof buf, "(%.2f ms)", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "(%.2f µs)", static_cast<double>(ns) / 1e3);
  }
  return buf;
}

int cmd_net_stats(const ConnectOptions& options) {
  auto client = connect_client(options);
  const auto response = client.query({.kind = api::QueryKind::kStats});
  if (!response.stats) throw std::runtime_error("server returned no stats");
  const auto& s = *response.stats;
  // Name/value pairs in one place so the plain and JSON renderings can
  // never drift apart.
  const std::pair<const char*, std::uint64_t> fields[] = {
      {"epoch", s.epoch},
      {"live_tuples", s.live_tuples},
      {"evicted_total", s.evicted_total},
      {"shards", s.shards},
      {"window_epochs", s.window_epochs},
      {"subscriptions", s.subscriptions},
      {"snapshot_sweeps", s.snapshot_sweeps},
      {"snapshot_cache_hits", s.snapshot_cache_hits},
      {"index_deltas_applied", s.index_deltas_applied},
      {"index_compactions", s.index_compactions},
      {"index_rebuilds", s.index_rebuilds},
      {"locked_ns_last", s.locked_ns_last},
      {"locked_ns_total", s.locked_ns_total},
  };
  if (options.json) {
    std::cout << "{";
    bool first = true;
    for (const auto& [name, value] : fields) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "\"" << name << "\":" << value;
    }
    std::cout << "}\n";
    return 0;
  }
  for (const auto& [name, value] : fields) {
    std::cout << name << " " << with_thousands(value);
    // The lock-time counters get a human-scale duration alongside the raw
    // nanoseconds.
    if (std::string_view(name).starts_with("locked_ns")) std::cout << " " << human_ns(value);
    std::cout << "\n";
  }
  return 0;
}

int cmd_net_metrics(const ConnectOptions& options) {
  auto client = connect_client(options);
  const auto response = client.query({.kind = api::QueryKind::kMetrics});
  if (!response.metrics) throw std::runtime_error("server returned no metrics");
  if (options.json) {
    std::cout << obs::render_json(*response.metrics, 0) << "\n";
  } else {
    std::cout << obs::render_prometheus(*response.metrics);
  }
  return 0;
}

int cmd_net_watch(const ConnectOptions& options) {
  api::SubscriptionFilter filter;
  if (!options.transition.empty()) {
    try {
      const auto spec = api::SubscriptionFilter::transition(options.transition);
      filter.from = spec.from;
      filter.to = spec.to;
    } catch (const std::invalid_argument& e) {
      std::cerr << "--transition: " << e.what() << "\n";
      return 2;
    }
  }
  if (!options.asns.empty()) {
    filter.watch = util::parse_asn_list_or_exit("--asns", options.asns);
  }

  auto client = connect_client(options);
  client.subscribe(filter, options.replay_from);
  std::uint64_t batches = 0;
  while (auto event = client.next_event()) {
    // Lifecycle events go to stderr so stdout stays a pure change feed.
    if (event->kind == net::ResilientClient::Event::Kind::kReconnected) {
      std::cerr << "reconnected (" << event->attempts << " attempt(s)), resuming from epoch "
                << (client.last_seen_epoch() ? *client.last_seen_epoch() + 1 : 0) << "\n";
      continue;
    }
    if (event->kind == net::ResilientClient::Event::Kind::kGap) {
      std::cerr << "gap: epochs [" << event->gap_from << ", " << event->gap_to
                << "] fell off the replay horizon; re-synced from a snapshot\n";
    }
    for (const auto& change : event->delta.changes) {
      std::cout << change.to_string(event->delta.epoch) << "\n";
    }
    std::cout.flush();
    if (options.max_batches != 0 && ++batches >= options.max_batches) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split options (anywhere on the line) from positional arguments.
  ConnectOptions options;
  bool connected = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      const auto hostport = next();
      const auto colon = hostport.rfind(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 == hostport.size()) {
        std::cerr << "--connect needs HOST:PORT, got '" << hostport << "'\n";
        return 2;
      }
      options.host = hostport.substr(0, colon);
      const auto port = parse_u64_or_exit("--connect port", hostport.substr(colon + 1));
      if (port == 0 || port > 0xFFFF) {
        std::cerr << "--connect port must be in [1, 65535]\n";
        return 2;
      }
      options.port = static_cast<std::uint16_t>(port);
      connected = true;
    } else if (arg == "--token") {
      options.token = next();
    } else if (arg == "--transition") {
      options.transition = next();
    } else if (arg == "--asns") {
      options.asns = next();
    } else if (arg == "--replay-from") {
      options.replay_from = parse_u64_or_exit(arg, next());
    } else if (arg == "--max-batches") {
      options.max_batches = parse_u64_or_exit(arg, next());
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--timeout") {
      options.timeout_ms = parse_u64_or_exit(arg, next());
    } else if (arg == "--retries") {
      options.retries = parse_u64_or_exit(arg, next());
      if (options.retries == 0) {
        std::cerr << "--retries must be >= 1 (use --no-retry for one attempt)\n";
        return 2;
      }
    } else if (arg == "--no-retry") {
      options.retries = 1;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return usage(argv[0]);
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage(argv[0]);
  const std::string command = args[0];
  args.erase(args.begin());

  try {
    if (connected) {
      if (command == "dump" && args.empty()) return cmd_net_dump(options);
      if (command == "asn" && args.size() == 1) {
        return cmd_net_asn(options, args[0], api::QueryKind::kClassOf);
      }
      if (command == "live" && args.size() == 1) {
        return cmd_net_asn(options, args[0], api::QueryKind::kLiveCounters);
      }
      if (command == "history" && args.size() == 1) {
        return cmd_net_history(options, args[0]);
      }
      if (command == "stats" && args.empty()) return cmd_net_stats(options);
      if (command == "metrics" && args.empty()) return cmd_net_metrics(options);
      if (command == "watch" && args.empty()) return cmd_net_watch(options);
      return usage(argv[0]);
    }
    if (command == "info" && !args.empty()) return cmd_info(args);
    if (command == "dump" && args.size() == 1) return cmd_dump(args[0]);
    if (command == "asn" && args.size() == 2) return cmd_asn(args[0], args[1]);
    if (command == "deltas" && !args.empty()) return cmd_deltas(args);
    if (command == "convert" && args.size() == 3) {
      return cmd_convert(args[0], args[1], args[2]);
    }
    return usage(argv[0]);
  } catch (const net::TransportError& e) {
    // Includes RetriesExhausted: the server was unreachable (or the link
    // died for good), as opposed to the server *answering* with an error.
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
