// bgpcu_query — inspect and query the service's snapshot/delta artifacts.
//
// Works on both artifact formats: the versioned binary wire format
// (api/wire.h, docs/WIRE_FORMAT.md) and the v1 text inference database;
// snapshot-consuming subcommands sniff the format from the leading bytes.
//
// Usage:
//   bgpcu_query info FILE...             identify each file: format, frame
//                                        types, record counts, sizes
//   bgpcu_query dump FILE                decode a snapshot (wire or text)
//                                        and print it as a v1 text database
//   bgpcu_query asn ASN FILE             one AS's class + counters from a
//                                        snapshot
//   bgpcu_query deltas FILE...           decode delta-batch frames and print
//                                        the class-change feed as text
//   bgpcu_query convert FORMAT IN OUT    transcode a snapshot between
//                                        'text' and 'wire'
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/wire.h"
#include "core/database.h"

namespace {

using namespace bgpcu;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " info FILE... | dump FILE | asn ASN FILE | deltas FILE... |"
               " convert text|wire IN OUT\n";
  return 2;
}

const char* frame_type_name(api::FrameType type) {
  switch (type) {
    case api::FrameType::kSnapshot: return "snapshot";
    case api::FrameType::kDeltaBatch: return "delta-batch";
    case api::FrameType::kQueryRequest: return "query-request";
    case api::FrameType::kQueryResponse: return "query-response";
  }
  return "unknown";
}

/// Re-frames one frame's bytes so the single-frame decoders can be reused on
/// members of a concatenated log.
std::vector<std::uint8_t> single_frame_bytes(std::span<const std::uint8_t> data,
                                             std::size_t start, std::size_t size) {
  return {data.begin() + static_cast<std::ptrdiff_t>(start),
          data.begin() + static_cast<std::ptrdiff_t>(start + size)};
}

int cmd_info(const std::vector<std::string>& files) {
  for (const auto& path : files) {
    // Sniff the head before deciding what (and whether) to load fully —
    // identifying a multi-GB text database must not read it all.
    const auto format = api::sniff_format(path);
    if (format == api::Format::kWire) {
      const auto bytes = api::read_file_bytes(path);
      std::cout << path << ": wire v"
                << (bytes.size() > 4 ? int{bytes[4]} : 0)  // the file's version field
                << ", " << bytes.size() << " bytes\n";
      api::FrameReader frames(bytes);
      std::size_t start = 0;
      while (const auto frame = frames.next()) {
        std::cout << "  frame " << frame_type_name(frame->type) << ", " << frame->size
                  << " bytes";
        const auto whole = single_frame_bytes(bytes, start, frame->size);
        if (frame->type == api::FrameType::kSnapshot) {
          const auto snapshot = api::decode_snapshot(whole);
          std::cout << ", " << snapshot.counter_map().size() << " ASes, "
                    << snapshot.columns_swept() << " columns swept";
        } else if (frame->type == api::FrameType::kDeltaBatch) {
          const auto delta = api::decode_delta_batch(whole);
          std::cout << ", epoch " << delta.epoch << ", " << delta.changes.size()
                    << " change(s)";
        }
        std::cout << "\n";
        start += frame->size;
      }
    } else if (format == api::Format::kText) {
      const auto snapshot = core::read_database_file(path);
      std::cout << path << ": text v1, " << std::filesystem::file_size(path)
                << " bytes, " << snapshot.counter_map().size() << " ASes\n";
    } else {
      std::cout << path << ": unrecognized format\n";
    }
  }
  return 0;
}

int cmd_dump(const std::string& path) {
  const auto snapshot = api::read_snapshot_any(path);
  core::write_database(std::cout, snapshot);
  return 0;
}

int cmd_asn(const std::string& asn_text, const std::string& path) {
  char* end = nullptr;
  errno = 0;
  const auto value = std::strtoull(asn_text.c_str(), &end, 10);
  if (errno != 0 || end == asn_text.c_str() || *end != '\0' || value > 0xFFFFFFFFull) {
    std::cerr << "ASN must be a 32-bit unsigned integer, got '" << asn_text << "'\n";
    return 2;
  }
  const auto asn = static_cast<bgp::Asn>(value);
  const auto snapshot = api::read_snapshot_any(path);
  const auto k = snapshot.counters(asn);
  std::cout << "AS " << asn << " class " << snapshot.usage(asn).code() << " t " << k.t
            << " s " << k.s << " f " << k.f << " c " << k.c << "\n";
  return 0;
}

int cmd_deltas(const std::vector<std::string>& files) {
  for (const auto& path : files) {
    const auto bytes = api::read_file_bytes(path);
    api::FrameReader frames(bytes);
    std::size_t start = 0;
    while (const auto frame = frames.next()) {
      if (frame->type == api::FrameType::kDeltaBatch) {
        const auto delta =
            api::decode_delta_batch(single_frame_bytes(bytes, start, frame->size));
        for (const auto& change : delta.changes) {
          std::cout << change.to_string(delta.epoch) << "\n";
        }
      }
      start += frame->size;
    }
  }
  return 0;
}

int cmd_convert(const std::string& format_name, const std::string& in,
                const std::string& out) {
  const auto format = api::parse_format(format_name);
  if (!format) {
    std::cerr << "convert format must be 'text' or 'wire', got '" << format_name << "'\n";
    return 2;
  }
  const auto snapshot = api::read_snapshot_any(in);
  api::make_codec(*format)->write_snapshot_file(out, snapshot);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  try {
    if (command == "info" && !args.empty()) return cmd_info(args);
    if (command == "dump" && args.size() == 1) return cmd_dump(args[0]);
    if (command == "asn" && args.size() == 2) return cmd_asn(args[0], args[1]);
    if (command == "deltas" && !args.empty()) return cmd_deltas(args);
    if (command == "convert" && args.size() == 3) {
      return cmd_convert(args[0], args[1], args[2]);
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
