#include "eval/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bgpcu::eval {
namespace {

TEST(Report, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(12), "12");
  EXPECT_EQ(with_commas(123456), "123,456");
}

TEST(Report, HumanCount) {
  EXPECT_EQ(human_count(532), "532");
  EXPECT_EQ(human_count(532000000), "532M");
  EXPECT_EQ(human_count(9010000000ull), "9,010M");
  EXPECT_EQ(human_count(9999999), "9,999,999");
}

TEST(Report, Ratio2) {
  EXPECT_EQ(ratio2(0.5), "0.50");
  EXPECT_EQ(ratio2(1.0), "1.00");
  EXPECT_EQ(ratio2(0.934), "0.93");
}

TEST(Report, TableAlignment) {
  TextTable t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::ostringstream os;
  t.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  // Right-aligned numeric column: "1" ends where "12345" ends.
  std::istringstream lines(text);
  std::string header, rule, row1, row2;
  std::getline(lines, header);
  std::getline(lines, rule);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
}

TEST(Report, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Report, RuleSeparatesSections) {
  TextTable t({"a"});
  t.add_row({"x"});
  t.add_rule();
  t.add_row({"y"});
  std::ostringstream os;
  t.print(os);
  // Three rules total: under header plus the explicit one.
  std::istringstream lines(os.str());
  std::string line;
  int rules = 0;
  while (std::getline(lines, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) ++rules;
  }
  EXPECT_EQ(rules, 2);
}

}  // namespace
}  // namespace bgpcu::eval
