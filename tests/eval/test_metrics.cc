// Metric-layer tests on hand-built ground truths where every confusion cell
// is predictable.
#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace bgpcu::eval {
namespace {

using topology::NodeId;

// Builds a 4-node world (asn 10,20,30,40) with fixed flags and a counter
// map we control; the engine is bypassed so the metric logic is isolated.
struct World {
  topology::GeneratedTopology topo;
  sim::GroundTruth truth;
  core::CounterMap counters;

  World() {
    for (bgp::Asn asn : {10, 20, 30, 40}) topo.graph.add_as(asn);
    topo.tier.assign(4, topology::Tier::kLeaf);
    truth.roles.assign(4, sim::Role{});
    truth.present.assign(4, true);
    truth.leaf.assign(4, false);
    truth.tagging_hidden.assign(4, false);
    truth.forwarding_hidden.assign(4, false);
  }

  core::InferenceResult result() const {
    return core::InferenceResult(counters, core::Thresholds{}, 1);
  }

  void set_counters(bgp::Asn asn, std::uint64_t t, std::uint64_t s, std::uint64_t f,
                    std::uint64_t c) {
    counters[asn] = core::UsageCounters{t, s, f, c};
  }
};

TEST(Metrics, PerfectInferenceScoresPerfectly) {
  World w;
  w.truth.roles[0] = sim::Role{true, false};   // tagger-forward
  w.truth.roles[1] = sim::Role{false, true};   // silent-cleaner
  w.truth.roles[2] = sim::Role{true, true};    // tagger-cleaner
  w.truth.roles[3] = sim::Role{false, false};  // silent-forward
  w.set_counters(10, 100, 0, 100, 0);
  w.set_counters(20, 0, 100, 0, 100);
  w.set_counters(30, 100, 0, 0, 100);
  w.set_counters(40, 0, 100, 100, 0);

  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_DOUBLE_EQ(ev.tagging_pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(ev.tagging_pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(ev.forwarding_pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(ev.forwarding_pr.recall, 1.0);
  EXPECT_EQ(ev.classes.tf, 1u);
  EXPECT_EQ(ev.classes.sc, 1u);
  EXPECT_EQ(ev.classes.tc, 1u);
  EXPECT_EQ(ev.classes.sf, 1u);
  EXPECT_EQ(ev.tagging.at(TagRow::kTagger, 0), 2u);
  EXPECT_EQ(ev.tagging.at(TagRow::kSilent, 1), 2u);
}

TEST(Metrics, MisclassificationHitsPrecision) {
  World w;
  w.truth.roles[0] = sim::Role{true, false};
  w.truth.roles[1] = sim::Role{false, false};
  w.set_counters(10, 0, 100, 0, 0);  // true tagger inferred silent
  w.set_counters(20, 0, 100, 0, 0);  // true silent inferred silent
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.tagging_pr.decided, 2u);
  EXPECT_EQ(ev.tagging_pr.decided_correct, 1u);
  EXPECT_DOUBLE_EQ(ev.tagging_pr.precision, 0.5);
  EXPECT_EQ(ev.tagging.at(TagRow::kTagger, 1), 1u) << "tagger->silent cell";
}

TEST(Metrics, NoneAndUndecidedHitRecallNotPrecision) {
  World w;
  w.truth.roles[0] = sim::Role{true, false};
  w.truth.roles[1] = sim::Role{true, false};
  w.set_counters(10, 1, 1, 0, 0);  // true tagger -> undecided
  // ASN 20: no counters -> none. ASNs 30/40: true silent, no counters -> none.
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.tagging_pr.decided, 0u) << "undecided/none never enter precision";
  EXPECT_EQ(ev.tagging_pr.eligible, 4u);
  EXPECT_EQ(ev.tagging_pr.correct, 0u) << "undecided and none are false negatives";
  EXPECT_EQ(ev.tagging.at(TagRow::kTagger, 2), 1u);
  EXPECT_EQ(ev.tagging.at(TagRow::kTagger, 3), 1u);
  EXPECT_EQ(ev.tagging.at(TagRow::kSilent, 3), 2u);
}

TEST(Metrics, HiddenAsesExcludedFromBothMetrics) {
  World w;
  w.truth.roles[0] = sim::Role{true, false};
  w.truth.tagging_hidden[0] = true;
  w.truth.forwarding_hidden[0] = true;
  w.set_counters(10, 100, 0, 100, 0);  // classified, but hidden
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.tagging_pr.decided, 0u);
  EXPECT_EQ(ev.tagging.at(TagRow::kTaggerHidden, 0), 1u);
  EXPECT_EQ(ev.forwarding.at(FwdRow::kForwardHidden, 0), 1u);
}

TEST(Metrics, SelectiveTaggerCorrectAsTaggerWrongAsSilent) {
  World w;
  w.truth.roles[0] = sim::Role{true, false, sim::Selectivity::kSkipProvider};
  w.truth.roles[1] = sim::Role{true, false, sim::Selectivity::kSkipProvider};
  w.set_counters(10, 100, 0, 0, 0);  // selective inferred tagger: correct
  w.set_counters(20, 0, 100, 0, 0);  // selective inferred silent: wrong
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.tagging_pr.decided, 2u);
  EXPECT_EQ(ev.tagging_pr.decided_correct, 1u);
  EXPECT_EQ(ev.tagging_pr.eligible, 4u) << "selective ASes stay in the recall denominator";
  EXPECT_EQ(ev.tagging_pr.correct, 1u) << "selective->tagger is the only recovered behavior";
  EXPECT_EQ(ev.tagging.at(TagRow::kSelective, 0), 1u);
  EXPECT_EQ(ev.tagging.at(TagRow::kSelective, 1), 1u);
}

TEST(Metrics, LeafForwardingOnlyInLeafRows) {
  World w;
  w.truth.leaf[0] = true;
  w.truth.roles[0] = sim::Role{false, true};  // leaf "cleaner" by role draw
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.forwarding.at(FwdRow::kCleanerLeaf, 3), 1u) << "leaf lands in (leaf, none)";
  EXPECT_EQ(ev.forwarding_pr.eligible, 3u) << "leaf excluded from recall";
}

TEST(Metrics, AbsentAsesIgnoredEntirely) {
  World w;
  w.truth.present[0] = false;
  w.set_counters(10, 100, 0, 0, 0);
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.tagging.row_total(TagRow::kTagger), 0u);
  EXPECT_EQ(ev.tagging_pr.eligible, 3u);
}

TEST(Metrics, ClassHistogramPartitions) {
  World w;  // four ASes, all silent-forward roles by default
  w.set_counters(10, 0, 100, 0, 100);  // sc
  w.set_counters(20, 0, 100, 0, 0);    // sn
  w.set_counters(30, 1, 1, 0, 100);    // tagging undecided -> u*
  w.set_counters(40, 0, 100, 1, 1);    // forwarding undecided -> *u
  const auto ev = evaluate_scenario(w.topo, w.truth, w.result());
  EXPECT_EQ(ev.classes.sc, 1u);
  EXPECT_EQ(ev.classes.sn, 1u);
  EXPECT_EQ(ev.classes.tag_u, 1u);
  EXPECT_EQ(ev.classes.fwd_u, 1u);
  EXPECT_EQ(ev.classes.nn, 0u);
  const auto total = ev.classes.tf + ev.classes.tc + ev.classes.sf + ev.classes.sc +
                     ev.classes.tn + ev.classes.sn + ev.classes.nf + ev.classes.nc +
                     ev.classes.nn + ev.classes.tag_u + ev.classes.fwd_u + ev.classes.uu;
  EXPECT_EQ(total, 4u) << "histogram partitions the present ASes";
}

TEST(Metrics, RowNames) {
  EXPECT_STREQ(to_string(TagRow::kSelectiveHidden), "selective (hidden)");
  EXPECT_STREQ(to_string(FwdRow::kCleanerLeaf), "cleaner (leaf)");
}

}  // namespace
}  // namespace bgpcu::eval
