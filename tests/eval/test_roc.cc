// ROC sweep tests on the selective scenarios (Fig. 2 semantics).
#include "eval/roc.h"

#include <gtest/gtest.h>

#include "sim/substrate.h"
#include "topology/generator.h"

namespace bgpcu::eval {
namespace {

sim::GroundTruth make_truth(sim::ScenarioKind kind, topology::GeneratedTopology& topo) {
  topology::GeneratorParams params;
  params.num_ases = 350;
  params.num_tier1 = 5;
  params.seed = 13;
  topo = topology::generate(params);
  const auto substrate =
      sim::build_substrate(topo, sim::select_collector_peers(topo, 25, 13));
  sim::ScenarioConfig config;
  config.kind = kind;
  config.seed = 13;
  return sim::build_scenario(topo, substrate, config);
}

TEST(Roc, SweepCoversRequestedThresholds) {
  topology::GeneratedTopology topo;
  const auto truth = make_truth(sim::ScenarioKind::kRandomP, topo);
  const auto points = roc_sweep(topo, truth, 50, 100, 10);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_DOUBLE_EQ(points.front().threshold, 0.5);
  EXPECT_DOUBLE_EQ(points.back().threshold, 1.0);
}

TEST(Roc, RatesAreRates) {
  topology::GeneratedTopology topo;
  const auto truth = make_truth(sim::ScenarioKind::kRandomP, topo);
  for (const auto& p : roc_sweep(topo, truth, 50, 100, 25)) {
    EXPECT_GE(p.tagging_tpr, 0.0);
    EXPECT_LE(p.tagging_tpr, 1.0);
    EXPECT_GE(p.tagging_fpr, 0.0);
    EXPECT_LE(p.tagging_fpr, 1.0);
    EXPECT_GE(p.forwarding_tpr, 0.0);
    EXPECT_LE(p.forwarding_tpr, 1.0);
    EXPECT_GE(p.forwarding_fpr, 0.0);
    EXPECT_LE(p.forwarding_fpr, 1.0);
  }
}

TEST(Roc, ConsistentScenarioHasZeroFalsePositives) {
  // Without selective tagging or noise the engine never misclassifies
  // (paper: precision 1.0 across thresholds).
  topology::GeneratedTopology topo;
  const auto truth = make_truth(sim::ScenarioKind::kRandom, topo);
  for (const auto& p : roc_sweep(topo, truth, 50, 100, 10)) {
    EXPECT_DOUBLE_EQ(p.tagging_fpr, 0.0) << "threshold " << p.threshold;
    EXPECT_DOUBLE_EQ(p.forwarding_fpr, 0.0) << "threshold " << p.threshold;
  }
}

TEST(Roc, TighteningThresholdReducesTaggingFalsePositives) {
  // Fig. 2's trend: specificity grows with the threshold. Counting is
  // re-gated per threshold (Cond1/Cond2 consult the classifier), so the
  // curve can jitter point to point; the endpoints carry the claim.
  topology::GeneratedTopology topo;
  const auto truth = make_truth(sim::ScenarioKind::kRandomP, topo);
  const auto points = roc_sweep(topo, truth, 50, 100, 10);
  EXPECT_LE(points.back().tagging_fpr, points.front().tagging_fpr);
  EXPECT_LE(points.back().forwarding_fpr, points.front().forwarding_fpr + 1e-9);
}

TEST(Roc, StricterScenarioHasLowerTruePositiveRate) {
  // random-pp restricts tagging further than random-p: at the paper's 99%
  // threshold its TPRs sit below random-p's (Fig. 2 right vs left).
  topology::GeneratedTopology topo_p;
  const auto truth_p = make_truth(sim::ScenarioKind::kRandomP, topo_p);
  topology::GeneratedTopology topo_pp;
  const auto truth_pp = make_truth(sim::ScenarioKind::kRandomPp, topo_pp);
  const auto p99 = roc_sweep(topo_p, truth_p, 99, 99, 1).at(0);
  const auto pp99 = roc_sweep(topo_pp, truth_pp, 99, 99, 1).at(0);
  EXPECT_LT(pp99.tagging_tpr, p99.tagging_tpr);
}

}  // namespace
}  // namespace bgpcu::eval
