#include "eval/stability.h"

#include <gtest/gtest.h>

namespace bgpcu::eval {
namespace {

core::InferenceResult result_with(const std::vector<std::pair<bgp::Asn, std::string>>& classes) {
  core::CounterMap counters;
  for (const auto& [asn, code] : classes) {
    core::UsageCounters k;
    if (code[0] == 't') k.t = 100;
    if (code[0] == 's') k.s = 100;
    if (code[1] == 'f') k.f = 100;
    if (code[1] == 'c') k.c = 100;
    counters[asn] = k;
  }
  return core::InferenceResult(std::move(counters), core::Thresholds{}, 1);
}

TEST(Stability, FirstDayEveryoneIsNew) {
  StabilityTracker tracker;
  tracker.add_day(result_with({{1, "tf"}, {2, "sc"}, {3, "tf"}}));
  EXPECT_EQ(tracker.series(FullClass::kTf)[0].fresh, 2u);
  EXPECT_EQ(tracker.series(FullClass::kSc)[0].fresh, 1u);
  EXPECT_EQ(tracker.series(FullClass::kTf)[0].stable, 0u);
}

TEST(Stability, ContinuousMembershipIsStable) {
  StabilityTracker tracker;
  for (int day = 0; day < 3; ++day) {
    tracker.add_day(result_with({{1, "tf"}}));
  }
  EXPECT_EQ(tracker.series(FullClass::kTf)[2].stable, 1u);
  EXPECT_EQ(tracker.series(FullClass::kTf)[2].fresh, 0u);
  EXPECT_EQ(tracker.series(FullClass::kTf)[2].recurring, 0u);
}

TEST(Stability, GapMakesRecurring) {
  StabilityTracker tracker;
  tracker.add_day(result_with({{1, "tf"}}));
  tracker.add_day(result_with({}));  // day 1: absent
  tracker.add_day(result_with({{1, "tf"}}));
  const auto& day2 = tracker.series(FullClass::kTf)[2];
  EXPECT_EQ(day2.recurring, 1u);
  EXPECT_EQ(day2.stable, 0u);
  EXPECT_EQ(day2.fresh, 0u);
}

TEST(Stability, LateJoinerNeverStable) {
  StabilityTracker tracker;
  tracker.add_day(result_with({}));
  tracker.add_day(result_with({{1, "sf"}}));  // first seen day 1
  tracker.add_day(result_with({{1, "sf"}}));
  EXPECT_EQ(tracker.series(FullClass::kSf)[1].fresh, 1u);
  EXPECT_EQ(tracker.series(FullClass::kSf)[2].stable, 0u) << "did not start at day 0";
  EXPECT_EQ(tracker.series(FullClass::kSf)[2].recurring, 1u);
}

TEST(Stability, ClassChangeIsNewInTheOtherClass) {
  StabilityTracker tracker;
  tracker.add_day(result_with({{1, "tf"}}));
  tracker.add_day(result_with({{1, "tc"}}));
  EXPECT_EQ(tracker.series(FullClass::kTc)[1].fresh, 1u);
  EXPECT_EQ(tracker.series(FullClass::kTf)[1].total(), 0u);
}

TEST(Stability, PartialClassificationsIgnored) {
  StabilityTracker tracker;
  core::CounterMap counters;
  counters[1] = core::UsageCounters{100, 0, 0, 0};  // tn: not a full class
  counters[2] = core::UsageCounters{100, 0, 1, 1};  // tu: undecided forwarding
  tracker.add_day(core::InferenceResult(std::move(counters), core::Thresholds{}, 1));
  for (const auto cls : {FullClass::kTf, FullClass::kTc, FullClass::kSf, FullClass::kSc}) {
    EXPECT_EQ(tracker.series(cls)[0].total(), 0u);
  }
}

TEST(Stability, PaperShapeMostlyStableAfterDayOne) {
  // Fig. 3: with near-identical daily inputs, 90%+ of members are stable.
  StabilityTracker tracker;
  std::vector<std::pair<bgp::Asn, std::string>> base;
  for (bgp::Asn a = 1; a <= 100; ++a) base.emplace_back(a, "sc");
  tracker.add_day(result_with(base));
  for (int day = 1; day < 5; ++day) {
    auto todays = base;
    todays.resize(97);  // a few drop out each day
    todays.emplace_back(200 + static_cast<bgp::Asn>(day), "sc");  // one new
    tracker.add_day(result_with(todays));
  }
  const auto& last = tracker.series(FullClass::kSc).back();
  EXPECT_GE(last.stable * 10, last.total() * 9);
}

TEST(Stability, FullClassNames) {
  EXPECT_STREQ(to_string(FullClass::kTf), "tagger-forward");
  EXPECT_STREQ(to_string(FullClass::kSc), "silent-cleaner");
}

}  // namespace
}  // namespace bgpcu::eval
