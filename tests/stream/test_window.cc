// Windowed-mode tests: epoch aging, refresh-extends-lifetime, and
// equivalence of a windowed snapshot with a batch run over the live subset.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "stream/engine.h"

namespace bgpcu::stream {
namespace {

core::PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<bgp::CommunityValue> comms = {}) {
  core::PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  return t;
}

TEST(StreamWindow, UnboundedWindowNeverEvicts) {
  StreamEngine engine({.shards = 2, .window_epochs = 0});
  (void)engine.ingest({tuple({1, 2})});
  for (int i = 0; i < 50; ++i) engine.advance_epoch();
  EXPECT_EQ(engine.live_tuples(), 1u);
  EXPECT_EQ(engine.evicted_total(), 0u);
}

TEST(StreamWindow, TuplesAgeOutAfterWindowEpochs) {
  StreamEngine engine({.shards = 2, .window_epochs = 3});
  (void)engine.ingest({tuple({1, 2})});  // epoch 0
  engine.advance_epoch();                // epoch 1
  (void)engine.ingest({tuple({3, 4})});
  engine.advance_epoch();  // epoch 2: epoch-0 tuple still inside (0 > 2-3)
  EXPECT_EQ(engine.live_tuples(), 2u);
  engine.advance_epoch();  // epoch 3: epoch-0 tuple falls out
  EXPECT_EQ(engine.live_tuples(), 1u);
  EXPECT_EQ(engine.evicted_total(), 1u);
  engine.advance_epoch();  // epoch 4: epoch-1 tuple falls out
  EXPECT_EQ(engine.live_tuples(), 0u);
  EXPECT_EQ(engine.evicted_total(), 2u);
}

TEST(StreamWindow, ReobservationExtendsLifetime) {
  StreamEngine engine({.shards = 2, .window_epochs = 2});
  (void)engine.ingest({tuple({1, 2})});  // epoch 0
  engine.advance_epoch();                // epoch 1
  (void)engine.ingest({tuple({1, 2})});  // refreshed at epoch 1
  engine.advance_epoch();                // epoch 2: would evict epoch-0, not epoch-1
  EXPECT_EQ(engine.live_tuples(), 1u);
  engine.advance_epoch();  // epoch 3: now out
  EXPECT_EQ(engine.live_tuples(), 0u);
}

TEST(StreamWindow, WindowedSnapshotEqualsBatchOverLiveSubset) {
  // Ingest one batch per epoch; with window W the live set is exactly the
  // last W batches' union (no overlap between batches here).
  constexpr std::uint64_t kWindow = 3;
  StreamEngine engine({.shards = 4, .window_epochs = kWindow});
  std::vector<core::Dataset> batches;
  for (int e = 0; e < 8; ++e) {
    core::Dataset batch;
    for (int i = 0; i < 20; ++i) {
      batch.push_back(tuple(
          {static_cast<bgp::Asn>(1 + (e + i) % 9), static_cast<bgp::Asn>(20 + i % 4),
           static_cast<bgp::Asn>(1000 + e * 100 + i)},
          {bgp::CommunityValue::regular(static_cast<std::uint16_t>(1 + (e + i) % 9), 1)}));
    }
    if (e > 0) engine.advance_epoch();
    batches.push_back(batch);
    (void)engine.ingest(std::move(batch));
  }

  // Batch e was ingested at epoch e; the engine now sits at epoch 7 with a
  // window covering epochs 5..7, so the live set is the last three batches.
  core::Dataset expected;
  for (std::size_t e = 8 - kWindow; e < 8; ++e) {
    expected.insert(expected.end(), batches[e].begin(), batches[e].end());
  }
  core::deduplicate(expected);
  EXPECT_EQ(engine.live_tuples(), expected.size());

  const auto snap = engine.snapshot();
  const auto batch_run = core::ColumnEngine().run(expected);
  EXPECT_EQ(snap->counter_map(), batch_run.counter_map());
}

TEST(StreamWindow, WindowOfOneKeepsOnlyCurrentEpochIngest) {
  StreamEngine engine({.shards = 2, .window_epochs = 1});
  (void)engine.ingest({tuple({1, 2}), tuple({3, 4})});
  EXPECT_EQ(engine.live_tuples(), 2u);
  engine.advance_epoch();
  EXPECT_EQ(engine.live_tuples(), 0u);
  (void)engine.ingest({tuple({5, 6})});
  EXPECT_EQ(engine.live_tuples(), 1u);
}

}  // namespace
}  // namespace bgpcu::stream
