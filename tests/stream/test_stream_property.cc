// The stream subsystem's correctness contract, checked property-style over
// randomized scenarios: at any epoch, StreamEngine::snapshot() must be
// bit-for-bit identical (same CounterMap) to a fresh ColumnEngine::run over
// the deduplicated union of the tuples currently inside the window. The
// window oracle is reimplemented independently here (a last-seen-epoch map)
// so engine and test cannot share an aging bug.
//
// Scenario space: random datasets (recurring ASNs, random communities) split
// into random per-epoch batches with re-observations, ingested into engines
// with varying shard counts, window sizes, and sweep lane counts. 25 seeds
// x 10 configurations = 250 randomized scenarios (the threads > 1 shapes pin
// the parallel kernel to the serial oracle through the snapshot path; the
// window = 1 churn shapes turn the whole population over every epoch, so the
// incremental index lives through heavy tombstoning, AS universes vanishing
// and reappearing, and whole path-length groups dying; the rebuild shape
// keeps the non-incremental fallback pinned to the same oracle; the tiny
// journal-cap shape forces overflow -> rebuild-from-shards every snapshot).
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/engine.h"
#include "stream/engine.h"
#include "topology/rng.h"

namespace bgpcu::stream {
namespace {

// Random (path, comm) dataset in the style of tests/core/test_engine_property:
// ASNs 1..40 so ASes recur in different positions, random path lengths,
// random community subsets keyed on path members plus off-path admins.
core::Dataset random_dataset(topology::Rng& rng, std::size_t tuples) {
  core::Dataset d;
  for (std::size_t i = 0; i < tuples; ++i) {
    core::PathCommTuple t;
    const std::size_t len = 1 + rng.below(6);
    while (t.path.size() < len) {
      const bgp::Asn asn = 1 + static_cast<bgp::Asn>(rng.below(40));
      if (std::find(t.path.begin(), t.path.end(), asn) == t.path.end()) t.path.push_back(asn);
    }
    for (const auto asn : t.path) {
      if (rng.chance(0.3)) {
        t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(asn),
                                                       static_cast<std::uint16_t>(rng.below(4))));
      }
    }
    if (rng.chance(0.1)) {
      t.comms.push_back(
          bgp::CommunityValue::regular(static_cast<std::uint16_t>(100 + rng.below(20)), 1));
    }
    d.push_back(std::move(t));
  }
  return d;
}

struct ScenarioShape {
  std::size_t shards;
  std::uint64_t window;  ///< 0 = unbounded.
  std::size_t epochs;
  double reobserve_prob;  ///< P(a tuple from an earlier batch repeats).
  /// Sweep lanes for the engine under test (the oracle always sweeps
  /// serially, so threads > 1 shapes also pin parallel ≡ serial end-to-end
  /// through the snapshot path). 0 = auto.
  std::size_t threads = 0;
  /// false = the non-incremental rebuild-per-snapshot fallback.
  bool incremental = true;
  /// Per-shard journal-entry cap; a tiny value forces the overflow ->
  /// rebuild-from-shard-state path on (nearly) every snapshot.
  std::size_t journal_cap = TupleShard::kJournalCap;
  /// Shrunk compaction/rebuild thresholds so churn shapes exercise lazy
  /// compaction and id reclamation at test scale, not only in production.
  bool tiny_index_thresholds = false;
};

class StreamEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, ScenarioShape>> {};

TEST_P(StreamEquivalence, SnapshotEqualsBatchRunAtEveryEpoch) {
  const auto [seed, shape] = GetParam();
  topology::Rng rng(seed * 7919 + shape.shards);

  StreamConfig config;
  config.engine.threads = shape.threads;
  config.shards = shape.shards;
  config.window_epochs = shape.window;
  config.incremental_index = shape.incremental;
  config.journal_cap = shape.journal_cap;
  if (shape.tiny_index_thresholds) {
    config.index.compact_min_dead_rows = 8;
    config.index.rebuild_min_dead_ids = 8;
  }
  StreamEngine engine(config);

  // Independent window oracle: normalized tuple -> last-seen epoch.
  std::unordered_map<core::PathCommTuple, Epoch> oracle;
  core::Dataset pool;  // earlier tuples available for re-observation

  for (std::size_t e = 0; e < shape.epochs; ++e) {
    if (e > 0) engine.advance_epoch();
    const Epoch epoch = engine.epoch();

    core::Dataset batch = random_dataset(rng, 40 + rng.below(60));
    for (const auto& old_tuple : pool) {
      if (rng.chance(shape.reobserve_prob)) batch.push_back(old_tuple);
    }
    pool.insert(pool.end(), batch.begin(), batch.end());
    if (pool.size() > 600) pool.erase(pool.begin(), pool.begin() + 300);

    // Feed the oracle a normalized copy (the engine normalizes on ingest).
    for (auto copy : batch) {
      bgp::normalize(copy.comms);
      if (copy.path.empty() || copy.path.size() > core::kMaxPathLength) continue;
      oracle[std::move(copy)] = epoch;
    }
    (void)engine.ingest(std::move(batch));

    // Age the oracle exactly per the documented window semantics.
    if (shape.window != 0) {
      for (auto it = oracle.begin(); it != oracle.end();) {
        if (epoch >= shape.window && it->second < epoch - shape.window + 1) {
          it = oracle.erase(it);
        } else {
          ++it;
        }
      }
    }

    core::Dataset live;
    live.reserve(oracle.size());
    for (const auto& [tuple, last] : oracle) live.push_back(tuple);
    core::deduplicate(live);

    ASSERT_EQ(engine.live_tuples(), live.size()) << "epoch " << epoch;
    const auto snap = engine.snapshot();
    const auto batch_run = core::ColumnEngine().run(live);
    ASSERT_EQ(snap->counter_map(), batch_run.counter_map())
        << "seed " << seed << " shards " << shape.shards << " window " << shape.window
        << " epoch " << epoch;
    EXPECT_EQ(snap->columns_swept(), batch_run.columns_swept());
  }
}

constexpr ScenarioShape kShapes[] = {
    {.shards = 1, .window = 0, .epochs = 5, .reobserve_prob = 0.0},
    {.shards = 4, .window = 0, .epochs = 5, .reobserve_prob = 0.05},
    {.shards = 7, .window = 2, .epochs = 6, .reobserve_prob = 0.10},
    {.shards = 4, .window = 3, .epochs = 7, .reobserve_prob = 0.15},
    {.shards = 16, .window = 1, .epochs = 5, .reobserve_prob = 0.05},
    {.shards = 4, .window = 0, .epochs = 5, .reobserve_prob = 0.05, .threads = 4},
    {.shards = 7, .window = 2, .epochs = 6, .reobserve_prob = 0.10, .threads = 8},
    // Churn-heavy: window 1 turns the whole population over each epoch
    // (every snapshot is mostly tombstones + fresh adds; ASes vanish and
    // reappear; whole path-length groups die), with the maintenance
    // thresholds shrunk so compactions and id-reclaiming rebuilds fire at
    // test scale — serial and multi-lane.
    {.shards = 4, .window = 1, .epochs = 9, .reobserve_prob = 0.0,
     .tiny_index_thresholds = true},
    {.shards = 7, .window = 1, .epochs = 9, .reobserve_prob = 0.10, .threads = 4,
     .tiny_index_thresholds = true},
    // The non-incremental fallback stays pinned to the same oracle.
    {.shards = 4, .window = 2, .epochs = 6, .reobserve_prob = 0.10, .incremental = false},
};

INSTANTIATE_TEST_SUITE_P(
    Scenarios, StreamEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 26), ::testing::ValuesIn(kShapes)),
    [](const auto& info) {
      const auto& shape = std::get<1>(info.param);
      return "seed" + std::to_string(std::get<0>(info.param)) + "_sh" +
             std::to_string(shape.shards) + "_w" + std::to_string(shape.window) + "_t" +
             std::to_string(shape.threads) + (shape.incremental ? "" : "_rebuild") +
             (shape.tiny_index_thresholds ? "_churn" : "");
    });

// The overflow path, end to end and randomized: a journal cap small enough
// that every epoch overflows at least some shard, so snapshots repeatedly
// rebuild the index from the shards' authoritative state and incremental
// maintenance re-anchors afterwards. One shape is enough — the interesting
// state space is inside the engine, not the shape grid.
INSTANTIATE_TEST_SUITE_P(
    JournalOverflow, StreamEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 11),
                       ::testing::Values(ScenarioShape{.shards = 3, .window = 2,
                                                       .epochs = 7, .reobserve_prob = 0.10,
                                                       .journal_cap = 5})),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_cap" +
             std::to_string(std::get<1>(info.param).journal_cap);
    });

}  // namespace
}  // namespace bgpcu::stream
