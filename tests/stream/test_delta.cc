// Class-change delta tests.
#include <gtest/gtest.h>

#include "stream/delta.h"

namespace bgpcu::stream {
namespace {

core::InferenceResult result(core::CounterMap counters) {
  return core::InferenceResult(std::move(counters), core::Thresholds{}, 1);
}

TEST(Delta, NoChangesOnIdenticalSnapshots) {
  core::CounterMap m{{10, {.t = 100, .s = 0, .f = 0, .c = 0}}};
  EXPECT_TRUE(diff_classifications(result(m), result(m)).empty());
}

TEST(Delta, CounterMotionWithoutClassChangeIsSilent) {
  core::CounterMap before{{10, {.t = 100, .s = 0, .f = 0, .c = 0}}};
  core::CounterMap after{{10, {.t = 250, .s = 1, .f = 0, .c = 0}}};  // still tagger
  EXPECT_TRUE(diff_classifications(result(before), result(after)).empty());
}

TEST(Delta, ClassFlipIsReported) {
  core::CounterMap before{{10, {.t = 100, .s = 0, .f = 100, .c = 0}}};  // tf
  core::CounterMap after{{10, {.t = 100, .s = 0, .f = 0, .c = 100}}};   // tc
  const auto changes = diff_classifications(result(before), result(after));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].asn, 10u);
  EXPECT_EQ(changes[0].before.code(), "tf");
  EXPECT_EQ(changes[0].after.code(), "tc");
  EXPECT_EQ(changes[0].to_string(12), "AS 10 changed tf->tc at epoch 12");
}

TEST(Delta, AppearanceAndDisappearanceUseNoneClass) {
  core::CounterMap before{{10, {.t = 100, .s = 0, .f = 0, .c = 0}}};
  core::CounterMap after{{20, {.t = 0, .s = 100, .f = 0, .c = 0}}};
  auto changes = diff_classifications(result(before), result(after));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].asn, 10u);
  EXPECT_EQ(changes[0].after.code(), "nn");
  EXPECT_EQ(changes[1].asn, 20u);
  EXPECT_EQ(changes[1].before.code(), "nn");
  EXPECT_EQ(changes[1].after.code(), "sn");
}

TEST(Delta, SortedByAsn) {
  core::CounterMap before;
  core::CounterMap after;
  for (const bgp::Asn asn : {300u, 7u, 90u}) {
    after.emplace(asn, core::UsageCounters{.t = 10, .s = 0, .f = 0, .c = 0});
  }
  const auto changes = diff_classifications(result(before), result(after));
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].asn, 7u);
  EXPECT_EQ(changes[1].asn, 90u);
  EXPECT_EQ(changes[2].asn, 300u);
}

}  // namespace
}  // namespace bgpcu::stream
