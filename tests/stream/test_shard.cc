// TupleShard unit tests: dedup/refresh semantics, epoch eviction, live
// peer-column counter maintenance.
#include <gtest/gtest.h>

#include "stream/shard.h"

namespace bgpcu::stream {
namespace {

core::PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<bgp::CommunityValue> comms = {}) {
  core::PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  bgp::normalize(t.comms);
  return t;
}

TEST(TupleShard, AcceptThenDuplicateThenRefresh) {
  TupleShard shard;
  EXPECT_EQ(shard.ingest(tuple({1, 2, 3}), 0), IngestOutcome::kAccepted);
  EXPECT_EQ(shard.ingest(tuple({1, 2, 3}), 0), IngestOutcome::kDuplicate);
  EXPECT_EQ(shard.ingest(tuple({1, 2, 3}), 1), IngestOutcome::kRefreshed);
  EXPECT_EQ(shard.size(), 1u);
}

TEST(TupleShard, RejectsEmptyAndOverlongPaths) {
  TupleShard shard;
  EXPECT_EQ(shard.ingest(tuple({}), 0), IngestOutcome::kRejected);
  std::vector<bgp::Asn> longpath;
  for (bgp::Asn a = 1; a <= core::kMaxPathLength + 1; ++a) longpath.push_back(a);
  EXPECT_EQ(shard.ingest(tuple(std::move(longpath)), 0), IngestOutcome::kRejected);
  EXPECT_EQ(shard.size(), 0u);
}

TEST(TupleShard, LivePeerCountersTrackIngest) {
  TupleShard shard;
  // Peer 10 tags (community with upper == 10), peer 20 stays silent.
  EXPECT_EQ(shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 0),
            IngestOutcome::kAccepted);
  EXPECT_EQ(shard.ingest(tuple({10, 3}, {bgp::CommunityValue::regular(10, 2)}), 0),
            IngestOutcome::kAccepted);
  EXPECT_EQ(shard.ingest(tuple({20, 2}), 0), IngestOutcome::kAccepted);

  const auto k10 = shard.live_counters(10);
  EXPECT_EQ(k10.t, 2u);
  EXPECT_EQ(k10.s, 0u);
  const auto k20 = shard.live_counters(20);
  EXPECT_EQ(k20.t, 0u);
  EXPECT_EQ(k20.s, 1u);
  EXPECT_EQ(shard.live_counters(999).t + shard.live_counters(999).s, 0u);
}

TEST(TupleShard, RefreshDoesNotDoubleCount) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 0);
  (void)shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 3);
  EXPECT_EQ(shard.live_counters(10).t, 1u);
}

TEST(TupleShard, EvictionRemovesTuplesAndCounters) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 0);
  (void)shard.ingest(tuple({10, 3}), 2);
  EXPECT_EQ(shard.evict_older_than(1), 1u);  // drops the epoch-0 tuple
  EXPECT_EQ(shard.size(), 1u);
  const auto k = shard.live_counters(10);
  EXPECT_EQ(k.t, 0u);
  EXPECT_EQ(k.s, 1u);
  EXPECT_EQ(shard.evict_older_than(3), 1u);
  EXPECT_EQ(shard.size(), 0u);
  EXPECT_EQ(shard.live_counters(10), core::UsageCounters{});
}

TEST(TupleShard, RefreshProtectsFromEviction) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 2}), 0);
  (void)shard.ingest(tuple({10, 2}), 5);  // refresh at epoch 5
  EXPECT_EQ(shard.evict_older_than(3), 0u);
  EXPECT_EQ(shard.size(), 1u);
}

TEST(TupleShard, VersionBumpsOnMutationOnly) {
  TupleShard shard;
  const auto v0 = shard.version();
  (void)shard.ingest(tuple({1, 2}), 0);
  const auto v1 = shard.version();
  EXPECT_GT(v1, v0);
  (void)shard.ingest(tuple({1, 2}), 0);  // duplicate: no change
  EXPECT_EQ(shard.version(), v1);
  EXPECT_EQ(shard.evict_older_than(0), 0u);  // nothing evicted: no change
  EXPECT_EQ(shard.version(), v1);
  (void)shard.evict_older_than(1);
  EXPECT_GT(shard.version(), v1);
}

TEST(TupleShard, CollectViewsCarriesPrecomputedMasks) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 20}, {bgp::CommunityValue::regular(20, 7)}), 0);
  std::vector<core::TupleView> views;
  shard.collect_views(views);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_FALSE(views[0].upper_at(0));
  EXPECT_TRUE(views[0].upper_at(1));
  EXPECT_EQ(views[0].path->size(), 2u);
}

}  // namespace
}  // namespace bgpcu::stream
