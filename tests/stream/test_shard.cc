// TupleShard unit tests: dedup/refresh semantics, epoch eviction, live
// peer-column counter maintenance.
#include <gtest/gtest.h>

#include "stream/shard.h"

namespace bgpcu::stream {
namespace {

core::PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<bgp::CommunityValue> comms = {}) {
  core::PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  bgp::normalize(t.comms);
  return t;
}

TEST(TupleShard, AcceptThenDuplicateThenRefresh) {
  TupleShard shard;
  EXPECT_EQ(shard.ingest(tuple({1, 2, 3}), 0), IngestOutcome::kAccepted);
  EXPECT_EQ(shard.ingest(tuple({1, 2, 3}), 0), IngestOutcome::kDuplicate);
  EXPECT_EQ(shard.ingest(tuple({1, 2, 3}), 1), IngestOutcome::kRefreshed);
  EXPECT_EQ(shard.size(), 1u);
}

TEST(TupleShard, RejectsEmptyAndOverlongPaths) {
  TupleShard shard;
  EXPECT_EQ(shard.ingest(tuple({}), 0), IngestOutcome::kRejected);
  std::vector<bgp::Asn> longpath;
  for (bgp::Asn a = 1; a <= core::kMaxPathLength + 1; ++a) longpath.push_back(a);
  EXPECT_EQ(shard.ingest(tuple(std::move(longpath)), 0), IngestOutcome::kRejected);
  EXPECT_EQ(shard.size(), 0u);
}

TEST(TupleShard, LivePeerCountersTrackIngest) {
  TupleShard shard;
  // Peer 10 tags (community with upper == 10), peer 20 stays silent.
  EXPECT_EQ(shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 0),
            IngestOutcome::kAccepted);
  EXPECT_EQ(shard.ingest(tuple({10, 3}, {bgp::CommunityValue::regular(10, 2)}), 0),
            IngestOutcome::kAccepted);
  EXPECT_EQ(shard.ingest(tuple({20, 2}), 0), IngestOutcome::kAccepted);

  const auto k10 = shard.live_counters(10);
  EXPECT_EQ(k10.t, 2u);
  EXPECT_EQ(k10.s, 0u);
  const auto k20 = shard.live_counters(20);
  EXPECT_EQ(k20.t, 0u);
  EXPECT_EQ(k20.s, 1u);
  EXPECT_EQ(shard.live_counters(999).t + shard.live_counters(999).s, 0u);
}

TEST(TupleShard, RefreshDoesNotDoubleCount) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 0);
  (void)shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 3);
  EXPECT_EQ(shard.live_counters(10).t, 1u);
}

TEST(TupleShard, EvictionRemovesTuplesAndCounters) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 2}, {bgp::CommunityValue::regular(10, 1)}), 0);
  (void)shard.ingest(tuple({10, 3}), 2);
  EXPECT_EQ(shard.evict_older_than(1), 1u);  // drops the epoch-0 tuple
  EXPECT_EQ(shard.size(), 1u);
  const auto k = shard.live_counters(10);
  EXPECT_EQ(k.t, 0u);
  EXPECT_EQ(k.s, 1u);
  EXPECT_EQ(shard.evict_older_than(3), 1u);
  EXPECT_EQ(shard.size(), 0u);
  EXPECT_EQ(shard.live_counters(10), core::UsageCounters{});
}

TEST(TupleShard, RefreshProtectsFromEviction) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 2}), 0);
  (void)shard.ingest(tuple({10, 2}), 5);  // refresh at epoch 5
  EXPECT_EQ(shard.evict_older_than(3), 0u);
  EXPECT_EQ(shard.size(), 1u);
}

TEST(TupleShard, VersionBumpsOnMutationOnly) {
  TupleShard shard;
  const auto v0 = shard.version();
  (void)shard.ingest(tuple({1, 2}), 0);
  const auto v1 = shard.version();
  EXPECT_GT(v1, v0);
  (void)shard.ingest(tuple({1, 2}), 0);  // duplicate: no change
  EXPECT_EQ(shard.version(), v1);
  EXPECT_EQ(shard.evict_older_than(0), 0u);  // nothing evicted: no change
  EXPECT_EQ(shard.version(), v1);
  (void)shard.evict_older_than(1);
  EXPECT_GT(shard.version(), v1);
}

TEST(TupleShard, CollectViewsCarriesPrecomputedMasks) {
  TupleShard shard;
  (void)shard.ingest(tuple({10, 20}, {bgp::CommunityValue::regular(20, 7)}), 0);
  std::vector<core::TupleView> views;
  shard.collect_views(views);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_FALSE(views[0].upper_at(0));
  EXPECT_TRUE(views[0].upper_at(1));
  EXPECT_EQ(views[0].path->size(), 2u);
}

TEST(TupleShardJournal, AddThenEvictBetweenDrainsCancels) {
  // A tuple accepted and evicted within one drain window would only make the
  // index insert and immediately tombstone a row; the journal cancels the
  // pair instead of emitting it.
  TupleShard shard;
  (void)shard.ingest(tuple({1, 2}), 0);
  (void)shard.ingest(tuple({3, 4}), 1);
  EXPECT_EQ(shard.evict_older_than(1), 1u);  // kills {1,2}

  std::vector<core::IndexDelta> deltas;
  ASSERT_TRUE(shard.drain_deltas(deltas));
  ASSERT_EQ(deltas.size(), 1u);  // only the surviving {3,4} add
  EXPECT_EQ(deltas[0].kind, core::IndexDelta::Kind::kAdd);
  EXPECT_EQ(shard.journal_dedups(), 1u);
}

TEST(TupleShardJournal, RemoveOfDrainedAddIsEmitted) {
  // Once the add has been drained the index holds the row, so a later evict
  // must emit its remove — cancellation only applies within a drain window.
  TupleShard shard;
  (void)shard.ingest(tuple({1, 2}), 0);
  std::vector<core::IndexDelta> deltas;
  ASSERT_TRUE(shard.drain_deltas(deltas));
  ASSERT_EQ(deltas.size(), 1u);
  const auto key = deltas[0].key;

  EXPECT_EQ(shard.evict_older_than(1), 1u);
  deltas.clear();
  ASSERT_TRUE(shard.drain_deltas(deltas));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, core::IndexDelta::Kind::kRemove);
  EXPECT_EQ(deltas[0].key, key);
  EXPECT_EQ(shard.journal_dedups(), 0u);
}

TEST(TupleShardJournal, CancellationPreservesSurvivorOrder) {
  TupleShard shard;
  (void)shard.ingest(tuple({1, 2}), 0);   // will cancel
  (void)shard.ingest(tuple({3, 4}), 1);   // survives
  (void)shard.ingest(tuple({5, 6}), 1);   // survives
  EXPECT_EQ(shard.evict_older_than(1), 1u);
  (void)shard.ingest(tuple({7, 8}), 1);   // survives, after the evict

  std::vector<core::IndexDelta> deltas;
  ASSERT_TRUE(shard.drain_deltas(deltas));
  ASSERT_EQ(deltas.size(), 3u);
  for (const auto& d : deltas) EXPECT_EQ(d.kind, core::IndexDelta::Kind::kAdd);
  EXPECT_LT(deltas[0].key, deltas[1].key);
  EXPECT_LT(deltas[1].key, deltas[2].key);
}

TEST(TupleShardJournal, ReingestAfterCancelledPairUsesFreshKey) {
  // Keys are never reused: re-accepting the same tuple after a cancelled
  // add+remove pair journals a brand-new add with a later key.
  TupleShard shard;
  (void)shard.ingest(tuple({1, 2}), 0);
  EXPECT_EQ(shard.evict_older_than(1), 1u);
  (void)shard.ingest(tuple({1, 2}), 1);

  std::vector<core::IndexDelta> deltas;
  ASSERT_TRUE(shard.drain_deltas(deltas));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, core::IndexDelta::Kind::kAdd);
  EXPECT_EQ(shard.journal_dedups(), 1u);
}

TEST(TupleShardJournal, OverflowClearsDedupeState) {
  // Overflow drops the buffered journal (and everything journaled until the
  // next drain); the drain reports it and the shard starts a clean window
  // with no stale cancellations or pending adds.
  TupleShard shard(0, 1, true, /*journal_cap=*/2);
  (void)shard.ingest(tuple({1, 2}), 0);
  (void)shard.ingest(tuple({3, 4}), 0);
  (void)shard.ingest(tuple({5, 6}), 0);     // third entry: over the cap
  EXPECT_EQ(shard.evict_older_than(1), 3u);  // removes dropped while overflowed

  std::vector<core::IndexDelta> deltas;
  EXPECT_FALSE(shard.drain_deltas(deltas));
  EXPECT_TRUE(deltas.empty());

  // The journal works again after the overflow drain, including dedupe.
  (void)shard.ingest(tuple({7, 8}), 1);
  EXPECT_EQ(shard.evict_older_than(2), 1u);
  ASSERT_TRUE(shard.drain_deltas(deltas));
  EXPECT_TRUE(deltas.empty());  // the add+remove pair cancelled
  EXPECT_EQ(shard.journal_dedups(), 1u);
}

}  // namespace
}  // namespace bgpcu::stream
