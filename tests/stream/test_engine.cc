// StreamEngine unit tests: ingest accounting, snapshot equivalence on
// hand-written inputs, snapshot caching, live counters, concurrent ingest.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/engine.h"
#include "stream/engine.h"

namespace bgpcu::stream {
namespace {

core::PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<bgp::CommunityValue> comms = {}) {
  core::PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  return t;
}

void expect_equal(const core::InferenceResult& stream, const core::InferenceResult& batch) {
  EXPECT_EQ(stream.counter_map().size(), batch.counter_map().size());
  for (const auto& [asn, k] : batch.counter_map()) {
    EXPECT_EQ(stream.counters(asn), k) << "AS " << asn;
  }
}

TEST(StreamEngine, IngestStatsAccounting) {
  StreamEngine engine({.shards = 4});
  core::Dataset batch;
  batch.push_back(tuple({1, 2, 3}));
  batch.push_back(tuple({1, 2, 3}));  // duplicate within batch
  batch.push_back(tuple({4, 5}));
  batch.push_back(tuple({}));  // rejected
  const auto stats = engine.ingest(std::move(batch));
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.refreshed, 0u);
  EXPECT_EQ(engine.live_tuples(), 2u);

  engine.advance_epoch();
  core::Dataset again;
  again.push_back(tuple({1, 2, 3}));
  const auto stats2 = engine.ingest(std::move(again));
  EXPECT_EQ(stats2.refreshed, 1u);
  EXPECT_EQ(engine.live_tuples(), 2u);
}

TEST(StreamEngine, SnapshotMatchesColumnEngineOnHandWrittenInput) {
  // A small scenario with actual knowledge transfer: peer 10 is a tagger,
  // which illuminates forwarding behavior at AS 20.
  core::Dataset d;
  for (int origin = 100; origin < 120; ++origin) {
    d.push_back(tuple({10, 20, static_cast<bgp::Asn>(origin)},
                      {bgp::CommunityValue::regular(10, 1),
                       bgp::CommunityValue::regular(20, 2)}));
  }
  d.push_back(tuple({30, 10, 50}, {bgp::CommunityValue::regular(10, 1)}));

  StreamEngine engine({.shards = 4});
  (void)engine.ingest(d);
  auto expected = d;
  core::deduplicate(expected);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(expected));
}

TEST(StreamEngine, SnapshotIdenticalAcrossBatchSplits) {
  core::Dataset d;
  for (int i = 0; i < 50; ++i) {
    d.push_back(tuple({static_cast<bgp::Asn>(1 + i % 7), static_cast<bgp::Asn>(10 + i % 5),
                       static_cast<bgp::Asn>(100 + i)},
                      {bgp::CommunityValue::regular(static_cast<std::uint16_t>(1 + i % 7), 1)}));
  }

  StreamEngine whole({.shards = 2});
  (void)whole.ingest(d);

  StreamEngine split({.shards = 8});
  for (std::size_t start = 0; start < d.size(); start += 7) {
    core::Dataset batch(d.begin() + static_cast<std::ptrdiff_t>(start),
                        d.begin() + static_cast<std::ptrdiff_t>(std::min(start + 7, d.size())));
    (void)split.ingest(std::move(batch));
    split.advance_epoch();
  }

  const auto a = whole.snapshot();
  const auto b = split.snapshot();
  EXPECT_EQ(a->counter_map(), b->counter_map());
}

TEST(StreamEngine, SnapshotCachedUntilMutation) {
  StreamEngine engine({.shards = 2});
  (void)engine.ingest({tuple({1, 2}), tuple({3, 4})});
  const auto first = engine.snapshot();
  const auto second = engine.snapshot();  // served from cache
  // A cache hit hands out the same immutable object — no deep copy.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->counter_map(), second->counter_map());

  (void)engine.ingest({tuple({5, 6})});
  const auto third = engine.snapshot();
  EXPECT_NE(third.get(), first.get());
  EXPECT_NE(third->counter_map(), first->counter_map());
}

TEST(StreamEngine, LiveCountersMatchSnapshotAtPeerColumn) {
  StreamEngine engine({.shards = 4});
  core::Dataset d;
  d.push_back(tuple({10, 2, 3}, {bgp::CommunityValue::regular(10, 1)}));
  d.push_back(tuple({10, 4}, {bgp::CommunityValue::regular(10, 9)}));
  d.push_back(tuple({10, 5}));
  d.push_back(tuple({20, 5}));
  (void)engine.ingest(std::move(d));

  // Column 1 has vacuous Cond1: snapshot peer-column evidence equals the
  // incrementally maintained live counters.
  EXPECT_EQ(engine.live_counters(10).t, 2u);
  EXPECT_EQ(engine.live_counters(10).s, 1u);
  EXPECT_EQ(engine.live_counters(20).s, 1u);
  const auto snap = engine.snapshot();
  EXPECT_EQ(snap->counters(10).t, engine.live_counters(10).t);
  EXPECT_EQ(snap->counters(10).s, engine.live_counters(10).s);
}

TEST(StreamEngine, ConcurrentIngestMatchesSequential) {
  // Build distinct slices and ingest them from competing threads; the final
  // snapshot must equal a batch run over the union regardless of schedule.
  constexpr int kThreads = 4;
  std::vector<core::Dataset> slices(kThreads);
  core::Dataset all;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 200; ++i) {
      auto tp = tuple({static_cast<bgp::Asn>(1 + (t * 7 + i) % 23),
                       static_cast<bgp::Asn>(30 + i % 11), static_cast<bgp::Asn>(100 + i)},
                      {bgp::CommunityValue::regular(
                          static_cast<std::uint16_t>(1 + (t * 7 + i) % 23), 1)});
      slices[t].push_back(tp);
      all.push_back(std::move(tp));
    }
  }

  StreamEngine engine({.shards = 8});
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&engine, &slices, t] { (void)engine.ingest(slices[t]); });
    }
  }
  core::deduplicate(all);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(all));
}

TEST(StreamEngine, IngestAndLiveQueriesProceedWhileSweepInFlight) {
  // Deterministic non-blocking proof: the after-collect hook runs between
  // the collection lock's release and the sweep, and it *blocks the
  // snapshot thread* until the main thread has pushed an ingest and read
  // live counters. If either operation still needed the engine lock held by
  // the sweep (the old protocol), this test would time out instead of
  // passing — no sleeps, no timing guesses.
  StreamEngine engine({.shards = 4});
  core::Dataset initial;
  for (int i = 0; i < 64; ++i) {
    initial.push_back(tuple({static_cast<bgp::Asn>(1 + i % 9),
                             static_cast<bgp::Asn>(20 + i % 5),
                             static_cast<bgp::Asn>(100 + i)},
                            {bgp::CommunityValue::regular(
                                static_cast<std::uint16_t>(1 + i % 9), 1)}));
  }
  (void)engine.ingest(initial);

  std::mutex m;
  std::condition_variable cv;
  bool collected = false;
  bool mutated_during_sweep = false;
  engine.set_after_collect_hook([&] {
    std::unique_lock lock(m);
    collected = true;
    cv.notify_all();
    // Hold the sweep until the concurrent mutations have gone through.
    cv.wait(lock, [&] { return mutated_during_sweep; });
  });

  SnapshotPtr snap;
  std::thread sweeper([&] { snap = engine.snapshot(); });
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return collected; });
  }
  // Sweep is in flight (parked in the hook, lock released): both of these
  // must complete without waiting for it.
  (void)engine.ingest({tuple({7, 8, 9})});
  EXPECT_EQ(engine.live_counters(7).s, 1u);  // the mid-sweep ingest is already queryable
  {
    const std::lock_guard lock(m);
    mutated_during_sweep = true;
  }
  cv.notify_all();
  sweeper.join();

  // The snapshot reflects its collection-time cut (without {7,8,9})...
  auto expected = initial;
  core::deduplicate(expected);
  expect_equal(*snap, core::ColumnEngine().run(expected));
  // ...and the next snapshot sees the tuple ingested mid-sweep.
  engine.set_after_collect_hook({});
  auto with_concurrent = initial;
  with_concurrent.push_back(tuple({7, 8, 9}));
  core::deduplicate(with_concurrent);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(with_concurrent));
}

TEST(StreamEngine, ConcurrentColdSnapshotsShareOneSweep) {
  // Single-flight: a snapshot that races an in-flight sweep of the same cut
  // waits for its install and resolves from the cache — both callers end up
  // holding the same immutable object, and only one sweep runs.
  StreamEngine engine({.shards = 4});
  (void)engine.ingest({tuple({1, 2, 3}, {bgp::CommunityValue::regular(1, 1)}),
                       tuple({4, 5, 6})});

  std::mutex m;
  std::condition_variable cv;
  bool collected = false;
  bool release = false;
  std::atomic<int> sweeps{0};
  engine.set_after_collect_hook([&] {
    sweeps.fetch_add(1);
    std::unique_lock lock(m);
    collected = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  SnapshotPtr a, b;
  std::thread first([&] { a = engine.snapshot(); });
  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return collected; });
  }
  // First sweep is parked in flight; a second snapshot of the same cut must
  // wait for it instead of sweeping again (the hook counter catches a
  // duplicate).
  std::thread second([&] { b = engine.snapshot(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    const std::lock_guard lock(m);
    release = true;
  }
  cv.notify_all();
  first.join();
  second.join();

  EXPECT_EQ(sweeps.load(), 1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());
}

TEST(StreamEngine, AsVanishingEntirelyAndReappearingMatchesOracle) {
  // Window 1: each epoch's snapshot covers only that epoch's tuples. AS 42
  // exists in epoch 0, vanishes entirely (all its tuples age out, leaving a
  // dense id with no live rows), then reappears — the incremental index must
  // track the from-scratch oracle through all three states.
  StreamConfig config;
  config.shards = 4;
  config.window_epochs = 1;
  StreamEngine engine(config);

  core::Dataset with_42;
  for (int origin = 100; origin < 110; ++origin) {
    with_42.push_back(tuple({42, 20, static_cast<bgp::Asn>(origin)},
                            {bgp::CommunityValue::regular(42, 1)}));
  }
  core::Dataset without_42;
  for (int origin = 200; origin < 210; ++origin) {
    without_42.push_back(tuple({30, 20, static_cast<bgp::Asn>(origin)},
                               {bgp::CommunityValue::regular(30, 1)}));
  }

  (void)engine.ingest(with_42);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(with_42));

  engine.advance_epoch();
  (void)engine.ingest(without_42);
  const auto snap = engine.snapshot();
  expect_equal(*snap, core::ColumnEngine().run(without_42));
  EXPECT_EQ(snap->counters(42), core::UsageCounters{}) << "vanished AS still counted";

  engine.advance_epoch();
  (void)engine.ingest(with_42);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(with_42));
}

TEST(StreamEngine, WindowAgingEvictsWholePathLengthGroup) {
  // Epoch 0 is all 4-hop paths, epoch 1 all 2-hop: the aging step kills the
  // length-4 group outright, so the maintained index must stop sweeping
  // columns 3 and 4 exactly like a fresh build over the 2-hop survivors
  // (columns_swept is part of the equivalence, not just the counters).
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    StreamConfig config;
    config.shards = 4;
    config.window_epochs = 1;
    config.engine.threads = threads;
    StreamEngine engine(config);

    core::Dataset long_paths;
    for (int origin = 100; origin < 115; ++origin) {
      long_paths.push_back(tuple({10, 20, 30, static_cast<bgp::Asn>(origin)},
                                 {bgp::CommunityValue::regular(10, 1),
                                  bgp::CommunityValue::regular(20, 2)}));
    }
    core::Dataset short_paths;
    for (int origin = 200; origin < 215; ++origin) {
      short_paths.push_back(tuple({10, static_cast<bgp::Asn>(origin)},
                                  {bgp::CommunityValue::regular(10, 1)}));
    }

    (void)engine.ingest(long_paths);
    auto before = engine.snapshot();
    auto oracle_before = core::ColumnEngine({.threads = 1}).run(long_paths);
    expect_equal(*before, oracle_before);
    EXPECT_EQ(before->columns_swept(), oracle_before.columns_swept());

    engine.advance_epoch();
    (void)engine.ingest(short_paths);
    auto after = engine.snapshot();
    auto oracle_after = core::ColumnEngine({.threads = 1}).run(short_paths);
    expect_equal(*after, oracle_after);
    EXPECT_EQ(after->columns_swept(), oracle_after.columns_swept());
    EXPECT_EQ(engine.evicted_total(), long_paths.size());
  }
}

TEST(StreamEngine, SnapshotStatsTrackLockedPhaseAndMaintenance) {
  StreamConfig config;
  config.shards = 2;
  config.window_epochs = 1;
  StreamEngine engine(config);
  EXPECT_EQ(engine.snapshot_stats(), SnapshotStats{});

  core::Dataset d;
  for (int i = 0; i < 20; ++i) {
    d.push_back(tuple({static_cast<bgp::Asn>(1 + i % 5), static_cast<bgp::Asn>(100 + i)}));
  }
  const auto accepted = engine.ingest(d).accepted;
  (void)engine.snapshot();
  auto stats = engine.snapshot_stats();
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.deltas_applied, accepted) << "first snapshot applies every add";
  EXPECT_GT(stats.locked_ns_last, 0u);
  EXPECT_EQ(stats.locked_ns_total, stats.locked_ns_last);

  (void)engine.snapshot();  // unchanged engine: cache hit, no locked phase
  stats = engine.snapshot_stats();
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);

  engine.advance_epoch();  // evicts everything (window 1, no new input)
  (void)engine.snapshot();
  stats = engine.snapshot_stats();
  EXPECT_EQ(stats.sweeps, 2u);
  EXPECT_EQ(stats.deltas_applied, 2 * accepted) << "evictions are deltas too";
  EXPECT_GE(stats.locked_ns_total, stats.locked_ns_last);
}

TEST(StreamEngine, JournalOverflowFallsBackToOneRebuild) {
  // A cap smaller than the batch: the journal overflows before the first
  // snapshot, which must rebuild from shard state (counted in
  // index_rebuilds), still produce the exact result, and resume incremental
  // maintenance afterwards.
  StreamConfig config;
  config.shards = 2;
  config.journal_cap = 4;
  StreamEngine engine(config);

  core::Dataset d;
  for (int i = 0; i < 30; ++i) {
    d.push_back(tuple({static_cast<bgp::Asn>(1 + i % 5), static_cast<bgp::Asn>(100 + i)},
                      {bgp::CommunityValue::regular(static_cast<std::uint16_t>(1 + i % 5), 1)}));
  }
  (void)engine.ingest(d);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(d));
  const auto stats = engine.snapshot_stats();
  EXPECT_GE(stats.index_rebuilds, 1u);

  // A small follow-up batch fits the journal: no further rebuild.
  core::Dataset more;
  more.push_back(tuple({7, 300}));
  (void)engine.ingest(more);
  auto merged = d;
  merged.push_back(tuple({7, 300}));
  core::deduplicate(merged);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(merged));
  EXPECT_EQ(engine.snapshot_stats().index_rebuilds, stats.index_rebuilds);
}

TEST(StreamEngine, NonIncrementalFallbackKeepsMaintenanceCountersAtZero) {
  StreamConfig config;
  config.shards = 2;
  config.incremental_index = false;
  StreamEngine engine(config);
  core::Dataset d;
  d.push_back(tuple({1, 2, 3}, {bgp::CommunityValue::regular(1, 1)}));
  d.push_back(tuple({4, 5}));
  (void)engine.ingest(d);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(d));
  const auto stats = engine.snapshot_stats();
  EXPECT_EQ(stats.sweeps, 1u);
  EXPECT_EQ(stats.deltas_applied, 0u);
  EXPECT_EQ(stats.index_rebuilds, 0u);
  EXPECT_GT(stats.locked_ns_last, 0u) << "the rebuild collect is still timed";
}

TEST(StreamEngine, SingleShardDegenerateStillCorrect) {
  StreamEngine engine({.shards = 1});
  core::Dataset d{tuple({1, 2, 3}, {bgp::CommunityValue::regular(1, 1)}), tuple({2, 3})};
  (void)engine.ingest(d);
  auto expected = d;
  core::deduplicate(expected);
  expect_equal(*engine.snapshot(), core::ColumnEngine().run(expected));
}

TEST(StreamEngine, ThresholdsPropagateToSnapshot) {
  StreamConfig config;
  config.engine.thresholds = core::Thresholds::uniform(0.75);
  StreamEngine engine(config);
  (void)engine.ingest({tuple({1, 2})});
  EXPECT_DOUBLE_EQ(engine.snapshot()->thresholds().tagger, 0.75);
}

}  // namespace
}  // namespace bgpcu::stream
