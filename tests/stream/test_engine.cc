// StreamEngine unit tests: ingest accounting, snapshot equivalence on
// hand-written inputs, snapshot caching, live counters, concurrent ingest.
#include <gtest/gtest.h>

#include <thread>

#include "core/engine.h"
#include "stream/engine.h"

namespace bgpcu::stream {
namespace {

core::PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<bgp::CommunityValue> comms = {}) {
  core::PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  return t;
}

void expect_equal(const core::InferenceResult& stream, const core::InferenceResult& batch) {
  EXPECT_EQ(stream.counter_map().size(), batch.counter_map().size());
  for (const auto& [asn, k] : batch.counter_map()) {
    EXPECT_EQ(stream.counters(asn), k) << "AS " << asn;
  }
}

TEST(StreamEngine, IngestStatsAccounting) {
  StreamEngine engine({.shards = 4});
  core::Dataset batch;
  batch.push_back(tuple({1, 2, 3}));
  batch.push_back(tuple({1, 2, 3}));  // duplicate within batch
  batch.push_back(tuple({4, 5}));
  batch.push_back(tuple({}));  // rejected
  const auto stats = engine.ingest(std::move(batch));
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.refreshed, 0u);
  EXPECT_EQ(engine.live_tuples(), 2u);

  engine.advance_epoch();
  core::Dataset again;
  again.push_back(tuple({1, 2, 3}));
  const auto stats2 = engine.ingest(std::move(again));
  EXPECT_EQ(stats2.refreshed, 1u);
  EXPECT_EQ(engine.live_tuples(), 2u);
}

TEST(StreamEngine, SnapshotMatchesColumnEngineOnHandWrittenInput) {
  // A small scenario with actual knowledge transfer: peer 10 is a tagger,
  // which illuminates forwarding behavior at AS 20.
  core::Dataset d;
  for (int origin = 100; origin < 120; ++origin) {
    d.push_back(tuple({10, 20, static_cast<bgp::Asn>(origin)},
                      {bgp::CommunityValue::regular(10, 1),
                       bgp::CommunityValue::regular(20, 2)}));
  }
  d.push_back(tuple({30, 10, 50}, {bgp::CommunityValue::regular(10, 1)}));

  StreamEngine engine({.shards = 4});
  (void)engine.ingest(d);
  auto expected = d;
  core::deduplicate(expected);
  expect_equal(engine.snapshot(), core::ColumnEngine().run(expected));
}

TEST(StreamEngine, SnapshotIdenticalAcrossBatchSplits) {
  core::Dataset d;
  for (int i = 0; i < 50; ++i) {
    d.push_back(tuple({static_cast<bgp::Asn>(1 + i % 7), static_cast<bgp::Asn>(10 + i % 5),
                       static_cast<bgp::Asn>(100 + i)},
                      {bgp::CommunityValue::regular(static_cast<std::uint16_t>(1 + i % 7), 1)}));
  }

  StreamEngine whole({.shards = 2});
  (void)whole.ingest(d);

  StreamEngine split({.shards = 8});
  for (std::size_t start = 0; start < d.size(); start += 7) {
    core::Dataset batch(d.begin() + static_cast<std::ptrdiff_t>(start),
                        d.begin() + static_cast<std::ptrdiff_t>(std::min(start + 7, d.size())));
    (void)split.ingest(std::move(batch));
    split.advance_epoch();
  }

  const auto a = whole.snapshot();
  const auto b = split.snapshot();
  EXPECT_EQ(a.counter_map(), b.counter_map());
}

TEST(StreamEngine, SnapshotCachedUntilMutation) {
  StreamEngine engine({.shards = 2});
  (void)engine.ingest({tuple({1, 2}), tuple({3, 4})});
  const auto first = engine.snapshot();
  const auto second = engine.snapshot();  // served from cache
  EXPECT_EQ(first.counter_map(), second.counter_map());

  (void)engine.ingest({tuple({5, 6})});
  const auto third = engine.snapshot();
  EXPECT_NE(third.counter_map(), first.counter_map());
}

TEST(StreamEngine, LiveCountersMatchSnapshotAtPeerColumn) {
  StreamEngine engine({.shards = 4});
  core::Dataset d;
  d.push_back(tuple({10, 2, 3}, {bgp::CommunityValue::regular(10, 1)}));
  d.push_back(tuple({10, 4}, {bgp::CommunityValue::regular(10, 9)}));
  d.push_back(tuple({10, 5}));
  d.push_back(tuple({20, 5}));
  (void)engine.ingest(std::move(d));

  // Column 1 has vacuous Cond1: snapshot peer-column evidence equals the
  // incrementally maintained live counters.
  EXPECT_EQ(engine.live_counters(10).t, 2u);
  EXPECT_EQ(engine.live_counters(10).s, 1u);
  EXPECT_EQ(engine.live_counters(20).s, 1u);
  const auto snap = engine.snapshot();
  EXPECT_EQ(snap.counters(10).t, engine.live_counters(10).t);
  EXPECT_EQ(snap.counters(10).s, engine.live_counters(10).s);
}

TEST(StreamEngine, ConcurrentIngestMatchesSequential) {
  // Build distinct slices and ingest them from competing threads; the final
  // snapshot must equal a batch run over the union regardless of schedule.
  constexpr int kThreads = 4;
  std::vector<core::Dataset> slices(kThreads);
  core::Dataset all;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < 200; ++i) {
      auto tp = tuple({static_cast<bgp::Asn>(1 + (t * 7 + i) % 23),
                       static_cast<bgp::Asn>(30 + i % 11), static_cast<bgp::Asn>(100 + i)},
                      {bgp::CommunityValue::regular(
                          static_cast<std::uint16_t>(1 + (t * 7 + i) % 23), 1)});
      slices[t].push_back(tp);
      all.push_back(std::move(tp));
    }
  }

  StreamEngine engine({.shards = 8});
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&engine, &slices, t] { (void)engine.ingest(slices[t]); });
    }
  }
  core::deduplicate(all);
  expect_equal(engine.snapshot(), core::ColumnEngine().run(all));
}

TEST(StreamEngine, SingleShardDegenerateStillCorrect) {
  StreamEngine engine({.shards = 1});
  core::Dataset d{tuple({1, 2, 3}, {bgp::CommunityValue::regular(1, 1)}), tuple({2, 3})};
  (void)engine.ingest(d);
  auto expected = d;
  core::deduplicate(expected);
  expect_equal(engine.snapshot(), core::ColumnEngine().run(expected));
}

TEST(StreamEngine, ThresholdsPropagateToSnapshot) {
  StreamConfig config;
  config.engine.thresholds = core::Thresholds::uniform(0.75);
  StreamEngine engine(config);
  (void)engine.ingest({tuple({1, 2})});
  EXPECT_DOUBLE_EQ(engine.snapshot().thresholds().tagger, 0.75);
}

}  // namespace
}  // namespace bgpcu::stream
