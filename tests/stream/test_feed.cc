// DirectoryFeed tests: incremental pickup of MRT update dumps written by the
// repo's own writer, extension filtering, and error behavior.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bgp/message.h"
#include "mrt/bgp4mp.h"
#include "mrt/writer.h"
#include "registry/registry.h"
#include "stream/feed.h"

namespace bgpcu::stream {
namespace {

namespace fs = std::filesystem;

class FeedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgpcu_feed_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    reg_ = registry::allow_all();
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Writes one BGP4MP update dump announcing `prefix` over `path`.
  void write_dump(const std::string& name, std::vector<bgp::Asn> path,
                  const std::string& prefix) {
    const bgp::Asn peer = path.front();
    bgp::UpdateMessage update;
    update.attributes.as_path = bgp::AsPath::from_sequence(std::move(path));
    update.attributes.communities.push_back(
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
    update.nlri = {bgp::Prefix::parse(prefix)};
    mrt::MrtWriter writer;
    writer.write_message(1621382400, mrt::Bgp4mpMessage::ipv4_session(
                                         peer, 65000, 0xC0A80001, 0xC0A80002,
                                         update.encode(true)));
    writer.flush_to_file((dir_ / name).string());
  }

  fs::path dir_;
  registry::AllocationRegistry reg_;
};

TEST_F(FeedTest, PicksUpFilesOnce) {
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  DirectoryFeed feed(dir_.string(), reg_);

  auto first = feed.poll();
  ASSERT_EQ(first.files.size(), 1u);
  EXPECT_EQ(first.batch.size(), 1u);
  EXPECT_EQ(first.batch[0].path, (std::vector<bgp::Asn>{3356, 1299, 2914}));
  EXPECT_EQ(first.extraction.update_messages, 1u);

  const auto second = feed.poll();
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(feed.files_seen(), 1u);
}

TEST_F(FeedTest, NewFilesArriveBetweenPolls) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  (void)feed.poll();

  write_dump("updates.0002.mrt", {30, 40}, "192.0.2.0/24");
  const auto poll = feed.poll();
  ASSERT_EQ(poll.files.size(), 1u);
  EXPECT_NE(poll.files[0].find("updates.0002.mrt"), std::string::npos);
  ASSERT_EQ(poll.batch.size(), 1u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{30, 40}));
}

TEST_F(FeedTest, MultipleNewFilesProcessedInNameOrder) {
  write_dump("updates.0002.mrt", {30, 40}, "192.0.2.0/24");
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  const auto poll = feed.poll();
  ASSERT_EQ(poll.files.size(), 2u);
  EXPECT_LT(poll.files[0], poll.files[1]);
  EXPECT_EQ(poll.batch.size(), 2u);
}

TEST_F(FeedTest, ExtensionFilterSkipsOtherFiles) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  std::ofstream(dir_ / "snapshot-000001.db") << "# not an MRT file\n";
  DirectoryFeed feed(dir_.string(), reg_, ".mrt");
  const auto poll = feed.poll();
  EXPECT_EQ(poll.files.size(), 1u);
  EXPECT_TRUE(feed.poll().empty());
}

TEST_F(FeedTest, SettleWindowDefersFreshFiles) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_, {}, /*settle_seconds=*/3600);
  EXPECT_TRUE(feed.poll().empty());  // just written: inside the settle window
  EXPECT_EQ(feed.files_seen(), 0u);

  DirectoryFeed eager(dir_.string(), reg_);  // settle off
  EXPECT_EQ(eager.poll().files.size(), 1u);
}

TEST_F(FeedTest, MissingDirectoryThrows) {
  DirectoryFeed feed((dir_ / "nope").string(), reg_);
  EXPECT_THROW((void)feed.poll(), std::runtime_error);
}

TEST_F(FeedTest, CorruptFileCountsDecodeErrorsWithoutThrowing) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  // A second, valid-header-but-garbage-body record set: truncated tail only,
  // the reader tolerates it.
  std::ofstream(dir_ / "updates.0002.mrt", std::ios::binary) << "\x00\x01\x02";
  DirectoryFeed feed(dir_.string(), reg_);
  const auto poll = feed.poll();
  EXPECT_EQ(poll.files.size(), 2u);
  EXPECT_EQ(poll.batch.size(), 1u);
}

}  // namespace
}  // namespace bgpcu::stream
