// DirectoryFeed tests: incremental pickup of MRT update dumps written by the
// repo's own writer, extension filtering, and error behavior.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bgp/message.h"
#include "mrt/bgp4mp.h"
#include "mrt/writer.h"
#include "registry/registry.h"
#include "stream/feed.h"

namespace bgpcu::stream {
namespace {

namespace fs = std::filesystem;

class FeedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgpcu_feed_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    reg_ = registry::allow_all();
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// One encoded BGP4MP update record announcing `prefix` over `path`.
  std::vector<std::uint8_t> encode_dump(std::vector<bgp::Asn> path,
                                        const std::string& prefix) {
    const bgp::Asn peer = path.front();
    bgp::UpdateMessage update;
    update.attributes.as_path = bgp::AsPath::from_sequence(std::move(path));
    update.attributes.communities.push_back(
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
    update.nlri = {bgp::Prefix::parse(prefix)};
    mrt::MrtWriter writer;
    writer.write_message(1621382400, mrt::Bgp4mpMessage::ipv4_session(
                                         peer, 65000, 0xC0A80001, 0xC0A80002,
                                         update.encode(true)));
    return writer.buffer();
  }

  /// Writes one BGP4MP update dump announcing `prefix` over `path`.
  void write_dump(const std::string& name, std::vector<bgp::Asn> path,
                  const std::string& prefix) {
    const auto bytes = encode_dump(std::move(path), prefix);
    std::ofstream out(dir_ / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  void append_bytes(const std::string& name, const std::vector<std::uint8_t>& bytes) {
    std::ofstream out(dir_ / name, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  registry::AllocationRegistry reg_;
};

TEST_F(FeedTest, PicksUpFilesOnce) {
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  DirectoryFeed feed(dir_.string(), reg_);

  auto first = feed.poll();
  ASSERT_EQ(first.files.size(), 1u);
  EXPECT_EQ(first.batch.size(), 1u);
  EXPECT_EQ(first.batch[0].path, (std::vector<bgp::Asn>{3356, 1299, 2914}));
  EXPECT_EQ(first.extraction.update_messages, 1u);

  const auto second = feed.poll();
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(feed.files_seen(), 1u);
}

TEST_F(FeedTest, NewFilesArriveBetweenPolls) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  (void)feed.poll();

  write_dump("updates.0002.mrt", {30, 40}, "192.0.2.0/24");
  const auto poll = feed.poll();
  ASSERT_EQ(poll.files.size(), 1u);
  EXPECT_NE(poll.files[0].find("updates.0002.mrt"), std::string::npos);
  ASSERT_EQ(poll.batch.size(), 1u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{30, 40}));
}

TEST_F(FeedTest, MultipleNewFilesProcessedInNameOrder) {
  write_dump("updates.0002.mrt", {30, 40}, "192.0.2.0/24");
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  const auto poll = feed.poll();
  ASSERT_EQ(poll.files.size(), 2u);
  EXPECT_LT(poll.files[0], poll.files[1]);
  EXPECT_EQ(poll.batch.size(), 2u);
}

TEST_F(FeedTest, ExtensionFilterSkipsOtherFiles) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  std::ofstream(dir_ / "snapshot-000001.db") << "# not an MRT file\n";
  DirectoryFeed feed(dir_.string(), reg_, ".mrt");
  const auto poll = feed.poll();
  EXPECT_EQ(poll.files.size(), 1u);
  EXPECT_TRUE(feed.poll().empty());
}

TEST_F(FeedTest, SettleWindowDefersFreshFiles) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_, {}, /*settle_seconds=*/3600);
  EXPECT_TRUE(feed.poll().empty());  // just written: inside the settle window
  EXPECT_EQ(feed.files_seen(), 0u);

  DirectoryFeed eager(dir_.string(), reg_);  // settle off
  EXPECT_EQ(eager.poll().files.size(), 1u);
}

TEST_F(FeedTest, MissingDirectoryThrows) {
  DirectoryFeed feed((dir_ / "nope").string(), reg_);
  EXPECT_THROW((void)feed.poll(), std::runtime_error);
}

TEST_F(FeedTest, GrowingFileYieldsOnlyAppendedRecords) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);
  EXPECT_TRUE(feed.poll().empty());

  // The collector appends a second update to the *same* file; only the new
  // bytes must be parsed (the first tuple would otherwise repeat).
  const auto appended = encode_dump({30, 40}, "192.0.2.0/24");
  append_bytes("updates.0001.mrt", appended);
  const auto poll = feed.poll();
  ASSERT_EQ(poll.files.size(), 1u);
  ASSERT_EQ(poll.batch.size(), 1u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{30, 40}));
  EXPECT_EQ(feed.files_seen(), 1u);
  EXPECT_TRUE(feed.poll().empty());
}

TEST_F(FeedTest, PartialAppendedRecordWaitsForCompletion) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);

  // Half a record lands: the tail must stay unconsumed, not be swallowed as
  // garbage, and parse once the writer finishes it.
  const auto record = encode_dump({30, 40}, "192.0.2.0/24");
  ASSERT_GT(record.size(), 5u);
  append_bytes("updates.0001.mrt",
               std::vector<std::uint8_t>(record.begin(), record.begin() + 5));
  // Nothing consumable yet: the poll must look empty (a data-less poll must
  // not count as an ingesting epoch upstream).
  EXPECT_TRUE(feed.poll().empty());

  append_bytes("updates.0001.mrt",
               std::vector<std::uint8_t>(record.begin() + 5, record.end()));
  const auto completed = feed.poll();
  ASSERT_EQ(completed.batch.size(), 1u);
  EXPECT_EQ(completed.batch[0].path, (std::vector<bgp::Asn>{30, 40}));
}

TEST_F(FeedTest, ShrunkFileIsReadFromScratch) {
  write_dump("updates.0001.mrt", {10, 20, 30}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);

  // Rotation reused the name with a smaller file: start over.
  write_dump("updates.0001.mrt", {50, 60}, "192.0.2.0/24");
  ASSERT_LT(fs::file_size(dir_ / "updates.0001.mrt"), 1000u);
  const auto poll = feed.poll();
  ASSERT_EQ(poll.batch.size(), 1u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{50, 60}));
}

TEST_F(FeedTest, RotationAboveConsumedOffsetIsStillDetected) {
  // Rotation reusing the name with a size between the consumed offset and
  // the last observed size (offset < new size < size_seen) must reset, not
  // be skipped or tail-read from a stale offset into unrelated content.
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);
  append_bytes("updates.0001.mrt", {0xDE, 0xAD, 0xBE, 0xEF, 0x00});  // partial tail
  EXPECT_TRUE(feed.poll().batch.empty());

  write_dump("updates.0001.mrt", {50, 60}, "192.0.2.0/24");  // same record size
  const auto poll = feed.poll();
  ASSERT_EQ(poll.batch.size(), 1u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{50, 60}));
}

TEST_F(FeedTest, RenameRotationToLargerFileIsReadFromScratch) {
  // Rotation via rename to a *larger* replacement: size checks alone cannot
  // see it (size only grew); inode identity must trigger the reset instead
  // of tail-reading the new file from the stale offset.
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);

  auto bigger = encode_dump({50, 60, 70}, "192.0.2.0/24");
  const auto more = encode_dump({80, 90}, "203.0.113.0/24");
  bigger.insert(bigger.end(), more.begin(), more.end());
  std::ofstream(dir_ / "incoming.tmp", std::ios::binary)
      .write(reinterpret_cast<const char*>(bigger.data()),
             static_cast<std::streamsize>(bigger.size()));
  fs::rename(dir_ / "incoming.tmp", dir_ / "updates.0001.mrt");

  const auto poll = feed.poll();
  ASSERT_EQ(poll.batch.size(), 2u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{50, 60, 70}));
  EXPECT_EQ(poll.batch[1].path, (std::vector<bgp::Asn>{80, 90}));
}

TEST_F(FeedTest, InPlaceRewriteWithSameSizeIsReadFromScratch) {
  // An in-place rewrite (open + truncate + write: the inode survives) whose
  // replacement lands on exactly the consumed size: the shrunk-file check
  // sees nothing (size didn't drop) and the inode check sees nothing — only
  // the first-bytes fingerprint can notice the content swap. Without it the
  // poll would skip the file as "unchanged" and the replacement's tuples
  // would be lost forever.
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  const auto first_size = fs::file_size(dir_ / "updates.0001.mrt");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);
  EXPECT_TRUE(feed.poll().empty());

  write_dump("updates.0001.mrt", {50, 60}, "192.0.2.0/24");  // same record shape
  ASSERT_EQ(fs::file_size(dir_ / "updates.0001.mrt"), first_size)
      << "test premise: the rewrite must not change the size";
  const auto poll = feed.poll();
  ASSERT_EQ(poll.batch.size(), 1u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{50, 60}));
}

TEST_F(FeedTest, InPlaceRewriteToLargerFileIsReadFromScratch) {
  // Same inode, *larger* replacement: size-only heuristics classify this as
  // growth and tail-read from the stale offset — garbage from the middle of
  // the new content. The fingerprint restarts the file instead, so both
  // replacement records parse.
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  DirectoryFeed feed(dir_.string(), reg_);
  ASSERT_EQ(feed.poll().batch.size(), 1u);

  auto bigger = encode_dump({50, 60, 70}, "192.0.2.0/24");
  const auto more = encode_dump({80, 90}, "203.0.113.0/24");
  bigger.insert(bigger.end(), more.begin(), more.end());
  std::ofstream(dir_ / "updates.0001.mrt", std::ios::binary | std::ios::trunc)
      .write(reinterpret_cast<const char*>(bigger.data()),
             static_cast<std::streamsize>(bigger.size()));

  const auto poll = feed.poll();
  ASSERT_EQ(poll.batch.size(), 2u);
  EXPECT_EQ(poll.batch[0].path, (std::vector<bgp::Asn>{50, 60, 70}));
  EXPECT_EQ(poll.batch[1].path, (std::vector<bgp::Asn>{80, 90}));
  EXPECT_TRUE(feed.poll().empty());
}

TEST_F(FeedTest, ShortGarbageFileIsHeldAsPendingWithoutThrowing) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  // Three junk bytes are indistinguishable from a record still being
  // written: the file is held back (never listed, nothing ingested) and
  // must not poison the batch or be re-read every poll.
  std::ofstream(dir_ / "updates.0002.mrt", std::ios::binary) << "\x00\x01\x02";
  DirectoryFeed feed(dir_.string(), reg_);
  const auto poll = feed.poll();
  EXPECT_EQ(poll.files.size(), 1u);
  EXPECT_EQ(poll.batch.size(), 1u);
  EXPECT_TRUE(feed.poll().empty());
}

}  // namespace
}  // namespace bgpcu::stream
