#include "topology/routing.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpcu::topology {
namespace {

// Hand-built diamond:  T1a --peer-- T1b ; mid under both; leaf under mid;
// stub under T1b only.
struct Diamond {
  AsGraph g;
  NodeId t1a, t1b, mid, leaf, stub;
  Diamond() {
    t1a = g.add_as(10);
    t1b = g.add_as(20);
    mid = g.add_as(30);
    leaf = g.add_as(40);
    stub = g.add_as(50);
    g.add_p2p(t1a, t1b);
    g.add_c2p(mid, t1a);
    g.add_c2p(mid, t1b);
    g.add_c2p(leaf, mid);
    g.add_c2p(stub, t1b);
  }
};

TEST(RouteComputer, CustomerRoutePreferred) {
  Diamond d;
  RouteComputer rc(d.g);
  rc.compute(d.leaf);
  // t1a hears leaf via customer mid (dist 2) — customer route.
  EXPECT_EQ(rc.route_class(d.t1a), RouteClass::kCustomer);
  EXPECT_EQ(rc.distance(d.t1a), 2);
  const auto path = rc.path_from(d.t1a);
  EXPECT_EQ(path, (std::vector<NodeId>{d.t1a, d.mid, d.leaf}));
}

TEST(RouteComputer, PeerRouteWhenNoCustomerRoute) {
  Diamond d;
  RouteComputer rc(d.g);
  rc.compute(d.stub);  // stub is under t1b only
  EXPECT_EQ(rc.route_class(d.t1b), RouteClass::kCustomer);
  EXPECT_EQ(rc.route_class(d.t1a), RouteClass::kPeer);  // via peer t1b
  EXPECT_EQ(rc.path_from(d.t1a), (std::vector<NodeId>{d.t1a, d.t1b, d.stub}));
}

TEST(RouteComputer, ProviderRouteCascadesDown) {
  Diamond d;
  RouteComputer rc(d.g);
  rc.compute(d.stub);
  // leaf hears stub via its provider chain mid -> t1b (customer of... mid's
  // providers) — a provider route.
  EXPECT_EQ(rc.route_class(d.leaf), RouteClass::kProvider);
  const auto path = rc.path_from(d.leaf);
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path.front(), d.leaf);
  EXPECT_EQ(path.back(), d.stub);
}

TEST(RouteComputer, ValleyFreePathsOnly) {
  // Verify the classic violation is absent: a route learned from a peer is
  // not exported to another peer. Build T1a - T1b - T1c chain of peers with
  // origins below T1a; T1c must reach them through... nothing else: no route
  // if only peer-peer-peer would work.
  AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  const auto c = g.add_as(3);
  const auto origin = g.add_as(4);
  g.add_p2p(a, b);
  g.add_p2p(b, c);
  g.add_c2p(origin, a);
  RouteComputer rc(g);
  rc.compute(origin);
  EXPECT_TRUE(rc.has_route(b)) << "one peer hop from a customer route is legal";
  EXPECT_FALSE(rc.has_route(c)) << "peer route must not be re-exported to a peer";
}

TEST(RouteComputer, OriginItself) {
  Diamond d;
  RouteComputer rc(d.g);
  rc.compute(d.leaf);
  EXPECT_EQ(rc.route_class(d.leaf), RouteClass::kSelf);
  EXPECT_EQ(rc.distance(d.leaf), 0);
  EXPECT_EQ(rc.path_from(d.leaf), (std::vector<NodeId>{d.leaf}));
}

TEST(RouteComputer, UnreachableNode) {
  AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);  // isolated
  RouteComputer rc(g);
  rc.compute(a);
  EXPECT_FALSE(rc.has_route(b));
  EXPECT_TRUE(rc.path_from(b).empty());
}

TEST(RouteComputer, DeterministicTieBreakByAsn) {
  // Two equal-length customer routes: parent with the lower ASN wins.
  AsGraph g;
  const auto top = g.add_as(100);
  const auto left = g.add_as(10);   // lower ASN
  const auto right = g.add_as(20);
  const auto origin = g.add_as(30);
  g.add_c2p(left, top);
  g.add_c2p(right, top);
  g.add_c2p(origin, left);
  g.add_c2p(origin, right);
  RouteComputer rc(g);
  rc.compute(origin);
  EXPECT_EQ(rc.path_from(top), (std::vector<NodeId>{top, left, origin}));
}

TEST(RouteComputer, ReusableAcrossOrigins) {
  Diamond d;
  RouteComputer rc(d.g);
  rc.compute(d.leaf);
  EXPECT_TRUE(rc.has_route(d.stub));
  rc.compute(d.stub);
  EXPECT_EQ(rc.route_class(d.stub), RouteClass::kSelf);
  EXPECT_TRUE(rc.has_route(d.leaf));
}

// Generated-topology property: all produced paths are valley-free.
class RoutingValleyFree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingValleyFree, AllPathsValleyFree) {
  GeneratorParams params;
  params.num_ases = 400;
  params.num_tier1 = 5;
  params.seed = GetParam();
  const auto topo = generate(params);
  RouteComputer rc(topo.graph);

  for (NodeId origin = 0; origin < topo.graph.node_count(); origin += 17) {
    rc.compute(origin);
    for (NodeId observer = 0; observer < topo.graph.node_count(); observer += 29) {
      if (!rc.has_route(observer)) continue;
      const auto path = rc.path_from(observer);
      ASSERT_LE(path.size(), 12u) << "suspiciously long path";
      // Announcement direction is path.back() -> path.front(). Legal shape:
      // uphill (c2p) steps, at most one peer step, then downhill (p2c).
      int phase = 0;  // 0 = uphill, 1 = after peer step, 2 = downhill
      for (std::size_t i = path.size(); i >= 2; --i) {
        const auto from = path[i - 1];
        const auto to = path[i - 2];
        const auto rel = topo.graph.relationship(from, to);
        ASSERT_TRUE(rel.has_value());
        // `to` is what `from` exports to; rel = what `to` is w.r.t. `from`.
        if (*rel == Relationship::kProvider) {
          ASSERT_EQ(phase, 0) << "uphill after peer/downhill";
        } else if (*rel == Relationship::kPeer) {
          ASSERT_EQ(phase, 0) << "second peer step";
          phase = 1;
        } else {
          phase = 2;  // downhill can continue indefinitely
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingValleyFree, ::testing::Values(1, 7, 42));

}  // namespace
}  // namespace bgpcu::topology
