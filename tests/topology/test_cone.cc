#include "topology/cone.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpcu::topology {
namespace {

TEST(CustomerCone, LeafHasConeOfOne) {
  AsGraph g;
  const auto top = g.add_as(1);
  const auto leaf = g.add_as(2);
  g.add_c2p(leaf, top);
  EXPECT_EQ(customer_cone_size(g, leaf), 1u);
  EXPECT_EQ(customer_cone_size(g, top), 2u);
}

TEST(CustomerCone, SharedCustomerCountedOnce) {
  // top has two customers which share one sub-customer (multihoming).
  AsGraph g;
  const auto top = g.add_as(1);
  const auto a = g.add_as(2);
  const auto b = g.add_as(3);
  const auto shared = g.add_as(4);
  g.add_c2p(a, top);
  g.add_c2p(b, top);
  g.add_c2p(shared, a);
  g.add_c2p(shared, b);
  EXPECT_EQ(customer_cone_size(g, top), 4u);
  EXPECT_EQ(customer_cone_size(g, a), 2u);
}

TEST(CustomerCone, PeersNotInCone) {
  AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  const auto cust = g.add_as(3);
  g.add_p2p(a, b);
  g.add_c2p(cust, a);
  EXPECT_EQ(customer_cone_size(g, a), 2u);
  EXPECT_EQ(customer_cone_size(g, b), 1u);
}

TEST(CustomerCone, BulkMatchesSingle) {
  GeneratorParams params;
  params.num_ases = 300;
  params.num_tier1 = 5;
  const auto topo = generate(params);
  const auto sizes = customer_cone_sizes(topo.graph);
  ASSERT_EQ(sizes.size(), topo.graph.node_count());
  for (NodeId n = 0; n < topo.graph.node_count(); n += 13) {
    EXPECT_EQ(sizes[n], customer_cone_size(topo.graph, n));
  }
}

TEST(CustomerCone, Tier1DominatesLeafCones) {
  GeneratorParams params;
  params.num_ases = 500;
  params.num_tier1 = 5;
  const auto topo = generate(params);
  const auto sizes = customer_cone_sizes(topo.graph);
  std::uint64_t tier1_min = UINT64_MAX;
  for (const auto t1 : topo.tier1) tier1_min = std::min<std::uint64_t>(tier1_min, sizes[t1]);
  std::size_t leaf_ones = 0, leaf_total = 0;
  for (NodeId n = 0; n < topo.graph.node_count(); ++n) {
    if (topo.tier_of(n) == Tier::kLeaf) {
      ++leaf_total;
      if (sizes[n] == 1) ++leaf_ones;
    }
  }
  EXPECT_GT(tier1_min, 10u);
  EXPECT_EQ(leaf_ones, leaf_total) << "leaves have no customers by construction";
}

}  // namespace
}  // namespace bgpcu::topology
