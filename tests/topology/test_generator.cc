#include "topology/generator.h"

#include <gtest/gtest.h>

namespace bgpcu::topology {
namespace {

GeneratorParams small_params(std::uint64_t seed = 7) {
  GeneratorParams p;
  p.num_ases = 600;
  p.num_tier1 = 6;
  p.seed = seed;
  return p;
}

TEST(Generator, ProducesRequestedSize) {
  const auto topo = generate(small_params());
  EXPECT_EQ(topo.graph.node_count(), 600u);
  EXPECT_EQ(topo.tier1.size(), 6u);
  EXPECT_EQ(topo.tier.size(), 600u);
  EXPECT_EQ(topo.prefixes.size(), 600u);
}

TEST(Generator, DeterministicPerSeed) {
  const auto a = generate(small_params(3));
  const auto b = generate(small_params(3));
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  EXPECT_EQ(a.graph.asns(), b.graph.asns());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  const auto c = generate(small_params(4));
  EXPECT_NE(a.graph.asns(), c.graph.asns());
}

TEST(Generator, Tier1FormsClique) {
  const auto topo = generate(small_params());
  for (const auto a : topo.tier1) {
    for (const auto b : topo.tier1) {
      if (a == b) continue;
      EXPECT_EQ(topo.graph.relationship(a, b), Relationship::kPeer);
    }
  }
}

TEST(Generator, EveryNonTier1HasAProvider) {
  const auto topo = generate(small_params());
  for (NodeId n = 0; n < topo.graph.node_count(); ++n) {
    if (topo.tier_of(n) == Tier::kTier1) {
      EXPECT_TRUE(topo.graph.providers(n).empty()) << "tier-1 " << n << " has a provider";
    } else {
      EXPECT_FALSE(topo.graph.providers(n).empty()) << "node " << n << " is disconnected";
    }
  }
}

TEST(Generator, LeafMajorityLikeThePaper) {
  const auto topo = generate(small_params());
  std::size_t leaves = 0;
  for (NodeId n = 0; n < topo.graph.node_count(); ++n) {
    if (topo.tier_of(n) == Tier::kLeaf) ++leaves;
  }
  const double share = static_cast<double>(leaves) / static_cast<double>(topo.graph.node_count());
  EXPECT_GT(share, 0.70);  // paper: ~60k of 73k (~83%)
  EXPECT_LT(share, 0.95);
}

TEST(Generator, AsnAllocationRegistered) {
  const auto topo = generate(small_params());
  for (const auto asn : topo.graph.asns()) {
    EXPECT_TRUE(topo.registry.is_public_allocated(asn)) << asn;
    EXPECT_FALSE(bgp::is_special_purpose_asn(asn)) << asn;
  }
}

TEST(Generator, ThirtyTwoBitShareApproximatelyMet) {
  auto params = small_params();
  params.num_ases = 2000;
  const auto topo = generate(params);
  std::size_t wide = 0;
  for (const auto asn : topo.graph.asns()) {
    if (bgp::is_32bit_asn(asn)) ++wide;
  }
  const double share = static_cast<double>(wide) / 2000.0;
  EXPECT_NEAR(share, params.frac_32bit_asn, 0.05);
}

TEST(Generator, PrefixesAllocatedAndDisjointlyOwned) {
  const auto topo = generate(small_params());
  for (NodeId n = 0; n < topo.graph.node_count(); ++n) {
    ASSERT_FALSE(topo.prefixes[n].empty());
    for (const auto& p : topo.prefixes[n]) {
      EXPECT_TRUE(topo.registry.prefix_allocated(p));
    }
  }
  // Blocks are carved sequentially: no two nodes share a block.
  for (NodeId a = 0; a + 1 < topo.graph.node_count(); ++a) {
    EXPECT_FALSE(topo.prefixes[a][0].contains(topo.prefixes[a + 1][0]));
  }
}

TEST(Generator, RejectsTinyTopology) {
  GeneratorParams p;
  p.num_ases = 10;
  p.num_tier1 = 12;
  EXPECT_THROW((void)generate(p), std::invalid_argument);
}

// Property sweep over seeds: structural invariants hold for any seed.
class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, ConnectedToCore) {
  const auto topo = generate(small_params(GetParam()));
  // Walking providers upward from any node must reach a tier-1 within the
  // node count (no provider cycles by construction).
  for (NodeId n = 0; n < topo.graph.node_count(); ++n) {
    NodeId cur = n;
    std::size_t hops = 0;
    while (topo.tier_of(cur) != Tier::kTier1 && hops <= topo.graph.node_count()) {
      ASSERT_FALSE(topo.graph.providers(cur).empty());
      cur = topo.graph.providers(cur)[0];
      ++hops;
    }
    EXPECT_EQ(topo.tier_of(cur), Tier::kTier1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace bgpcu::topology
