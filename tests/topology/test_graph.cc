#include "topology/graph.h"

#include <gtest/gtest.h>

namespace bgpcu::topology {
namespace {

TEST(AsGraph, AddAndLookup) {
  AsGraph g;
  const auto a = g.add_as(100);
  const auto b = g.add_as(4200000);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.asn_of(a), 100u);
  EXPECT_EQ(g.node_of(4200000), b);
  EXPECT_FALSE(g.node_of(999).has_value());
}

TEST(AsGraph, DuplicateAsnRejected) {
  AsGraph g;
  g.add_as(100);
  EXPECT_THROW(g.add_as(100), std::invalid_argument);
}

TEST(AsGraph, C2pEdgeAndRelationship) {
  AsGraph g;
  const auto cust = g.add_as(1);
  const auto prov = g.add_as(2);
  g.add_c2p(cust, prov);
  EXPECT_EQ(g.relationship(cust, prov), Relationship::kProvider);
  EXPECT_EQ(g.relationship(prov, cust), Relationship::kCustomer);
  ASSERT_EQ(g.providers(cust).size(), 1u);
  EXPECT_EQ(g.providers(cust)[0], prov);
  ASSERT_EQ(g.customers(prov).size(), 1u);
  EXPECT_TRUE(g.peers(cust).empty());
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AsGraph, P2pEdgeSymmetric) {
  AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  g.add_p2p(a, b);
  EXPECT_EQ(g.relationship(a, b), Relationship::kPeer);
  EXPECT_EQ(g.relationship(b, a), Relationship::kPeer);
}

TEST(AsGraph, DuplicateEdgeIgnored) {
  AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  g.add_c2p(a, b);
  g.add_c2p(a, b);
  g.add_p2p(a, b);  // conflicting relationship also ignored: first wins
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.relationship(a, b), Relationship::kProvider);
}

TEST(AsGraph, SelfEdgeRejected) {
  AsGraph g;
  const auto a = g.add_as(1);
  EXPECT_THROW(g.add_c2p(a, a), std::invalid_argument);
  EXPECT_THROW(g.add_p2p(a, a), std::invalid_argument);
}

TEST(AsGraph, LeafDetectionAndDegree) {
  AsGraph g;
  const auto leaf = g.add_as(1);
  const auto transit = g.add_as(2);
  const auto peer = g.add_as(3);
  g.add_c2p(leaf, transit);
  g.add_p2p(transit, peer);
  EXPECT_TRUE(g.is_leaf(leaf));
  EXPECT_FALSE(g.is_leaf(transit));
  EXPECT_EQ(g.degree(transit), 2u);
  EXPECT_EQ(g.degree(leaf), 1u);
}

TEST(AsGraph, UnrelatedNodes) {
  AsGraph g;
  const auto a = g.add_as(1);
  const auto b = g.add_as(2);
  EXPECT_FALSE(g.relationship(a, b).has_value());
}

}  // namespace
}  // namespace bgpcu::topology
