// CLI contract tests for the real tool binaries (paths injected by CMake as
// BGPCU_STREAM_BIN / BGPCU_QUERY_BIN): argument validation must fail fast
// with a one-line error and exit code 2, and the happy path must produce
// readable artifacts end to end through the Service facade and both codecs.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "bgp/message.h"
#include "mrt/bgp4mp.h"
#include "mrt/writer.h"

namespace bgpcu {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved.
};

RunResult run(const std::string& command) {
  // ctest runs each test case as its own process concurrently: the capture
  // path must be unique per process, not just per call.
  static int counter = 0;
  const auto capture =
      fs::temp_directory_path() / ("bgpcu_cli_out_" + std::to_string(::getpid()) + "_" +
                                   std::to_string(++counter));
  const auto full = command + " > '" + capture.string() + "' 2>&1";
  const int status = std::system(full.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(capture);
  std::stringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  fs::remove(capture);
  return result;
}

std::string stream_bin() { return BGPCU_STREAM_BIN; }
std::string query_bin() { return BGPCU_QUERY_BIN; }

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgpcu_cli_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Writes one BGP4MP update dump announcing `prefix` over `path`.
  void write_dump(const std::string& name, std::vector<bgp::Asn> path,
                  const std::string& prefix) {
    const bgp::Asn peer = path.front();
    bgp::UpdateMessage update;
    update.attributes.as_path = bgp::AsPath::from_sequence(std::move(path));
    update.attributes.communities.push_back(
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
    update.nlri = {bgp::Prefix::parse(prefix)};
    mrt::MrtWriter writer;
    writer.write_message(1621382400, mrt::Bgp4mpMessage::ipv4_session(
                                         peer, 65000, 0xC0A80001, 0xC0A80002,
                                         update.encode(true)));
    writer.flush_to_file((dir_ / name).string());
  }

  fs::path dir_;
};

TEST_F(CliTest, RejectsZeroShards) {
  const auto r = run(stream_bin() + " --shards 0 '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--shards must be >= 1"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsNonNumericWindow) {
  const auto r = run(stream_bin() + " --window abc '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("needs a non-negative integer"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsNegativeWindow) {
  const auto r = run(stream_bin() + " --window -1 '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliTest, RejectsUnknownFlag) {
  const auto r = run(stream_bin() + " --frobnicate '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option: --frobnicate"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsMalformedThreshold) {
  for (const char* bad : {"high", "nan", "inf", "0.2", "1.5"}) {
    const auto r = run(stream_bin() + " --threshold " + bad + " '" + dir_.string() + "'");
    EXPECT_EQ(r.exit_code, 2) << bad;
    EXPECT_NE(r.output.find("--threshold"), std::string::npos) << r.output;
  }
}

TEST_F(CliTest, RejectsUnknownFormat) {
  const auto r = run(stream_bin() + " --format json '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--format"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsBadTransitionSpec) {
  const auto r = run(stream_bin() + " --transition sideways '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--transition"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsMissingWatchDir) {
  const auto r = run(stream_bin() + " --once");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsMissingFlagValue) {
  const auto r = run(stream_bin() + " --shards");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("needs a value"), std::string::npos) << r.output;
}

TEST_F(CliTest, DrainEmitsDeltaFeedAndWireArtifactsReadableByQuery) {
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  const auto snapshots = dir_ / "snaps";

  const auto r = run(stream_bin() + " --once --format wire --snapshot-dir '" +
                     snapshots.string() + "' --extension .mrt '" + dir_.string() + "'");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("AS 3356 changed nn->tn at epoch 0"), std::string::npos)
      << r.output;

  const auto snapshot_file = snapshots / "snapshot-000000.wire";
  const auto delta_file = snapshots / "delta-000000.wire";
  ASSERT_TRUE(fs::exists(snapshot_file));
  ASSERT_TRUE(fs::exists(delta_file));

  const auto dump = run(query_bin() + " dump '" + snapshot_file.string() + "'");
  EXPECT_EQ(dump.exit_code, 0);
  EXPECT_NE(dump.output.find("# bgpcu-inference-db v1"), std::string::npos) << dump.output;
  EXPECT_NE(dump.output.find("3356 tn 1 0 0 0"), std::string::npos) << dump.output;

  const auto asn = run(query_bin() + " asn 3356 '" + snapshot_file.string() + "'");
  EXPECT_EQ(asn.exit_code, 0);
  EXPECT_NE(asn.output.find("AS 3356 class tn t 1 s 0 f 0 c 0"), std::string::npos)
      << asn.output;

  const auto deltas = run(query_bin() + " deltas '" + delta_file.string() + "'");
  EXPECT_EQ(deltas.exit_code, 0);
  EXPECT_NE(deltas.output.find("AS 3356 changed nn->tn at epoch 0"), std::string::npos)
      << deltas.output;

  const auto info = run(query_bin() + " info '" + snapshot_file.string() + "' '" +
                        delta_file.string() + "'");
  EXPECT_EQ(info.exit_code, 0);
  EXPECT_NE(info.output.find("wire v1"), std::string::npos) << info.output;
  EXPECT_NE(info.output.find("frame snapshot"), std::string::npos) << info.output;
  EXPECT_NE(info.output.find("frame delta-batch"), std::string::npos) << info.output;
}

TEST_F(CliTest, TextAndWireSnapshotsAgreeAfterConvert) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  const auto text_dir = dir_ / "text";
  const auto wire_dir = dir_ / "wire";
  ASSERT_EQ(run(stream_bin() + " --once --snapshot-dir '" + text_dir.string() +
                "' --extension .mrt '" + dir_.string() + "'")
                .exit_code,
            0);
  ASSERT_EQ(run(stream_bin() + " --once --format wire --snapshot-dir '" +
                wire_dir.string() + "' --extension .mrt '" + dir_.string() + "'")
                .exit_code,
            0);

  const auto converted = dir_ / "converted.db";
  ASSERT_EQ(run(query_bin() + " convert text '" + (wire_dir / "snapshot-000000.wire").string() +
                "' '" + converted.string() + "'")
                .exit_code,
            0);

  std::ifstream a(text_dir / "snapshot-000000.db");
  std::ifstream b(converted);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST_F(CliTest, QueryRejectsBadInputs) {
  EXPECT_EQ(run(query_bin()).exit_code, 2);
  EXPECT_EQ(run(query_bin() + " frob x").exit_code, 2);
  const auto bad_asn = run(query_bin() + " asn notanumber somefile");
  EXPECT_EQ(bad_asn.exit_code, 2);
  EXPECT_NE(bad_asn.output.find("ASN must be"), std::string::npos) << bad_asn.output;

  std::ofstream(dir_ / "junk.bin", std::ios::binary) << "garbage";
  const auto junk = run(query_bin() + " dump '" + (dir_ / "junk.bin").string() + "'");
  EXPECT_EQ(junk.exit_code, 1);
  EXPECT_NE(junk.output.find("unrecognized snapshot format"), std::string::npos)
      << junk.output;
}

}  // namespace
}  // namespace bgpcu
