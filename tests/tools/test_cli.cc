// CLI contract tests for the real tool binaries (paths injected by CMake as
// BGPCU_STREAM_BIN / BGPCU_QUERY_BIN): argument validation must fail fast
// with a one-line error and exit code 2, and the happy path must produce
// readable artifacts end to end through the Service facade and both codecs.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "bgp/message.h"
#include "mrt/bgp4mp.h"
#include "mrt/writer.h"

namespace bgpcu {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved.
};

/// Like RunResult but with the two streams kept apart, for the tests that
/// pin *where* diagnostics go.
struct SplitRunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Unique capture-file stem: ctest runs each test case as its own process
/// concurrently, so paths must be unique per process, not just per call.
fs::path capture_stem() {
  static int counter = 0;
  return fs::temp_directory_path() / ("bgpcu_cli_out_" + std::to_string(::getpid()) + "_" +
                                      std::to_string(++counter));
}

RunResult run(const std::string& command) {
  const auto capture = capture_stem();
  const auto full = command + " > '" + capture.string() + "' 2>&1";
  const int status = std::system(full.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.output = slurp(capture);
  fs::remove(capture);
  return result;
}

SplitRunResult run_split(const std::string& command) {
  const auto out_path = capture_stem();
  const auto err_path = capture_stem();
  const auto full =
      command + " > '" + out_path.string() + "' 2> '" + err_path.string() + "'";
  const int status = std::system(full.c_str());
  SplitRunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  result.out = slurp(out_path);
  result.err = slurp(err_path);
  fs::remove(out_path);
  fs::remove(err_path);
  return result;
}

std::string stream_bin() { return BGPCU_STREAM_BIN; }
std::string query_bin() { return BGPCU_QUERY_BIN; }
std::string serve_bin() { return BGPCU_SERVE_BIN; }
std::string store_bin() { return BGPCU_STORE_BIN; }

/// Polls `log_file` until `needle` appears (10 s budget).
bool wait_in_log(const fs::path& log_file, const std::string& needle) {
  for (int i = 0; i < 100; ++i) {
    if (slurp(log_file).find(needle) != std::string::npos) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

/// SIGTERMs the daemon behind `pid_file` and waits for its clean-shutdown
/// log line. (The daemon is a zombie child of system()'s exited shell, so
/// the log line — not kill -0 — is the reliable termination signal.)
::testing::AssertionResult shut_down_cleanly(const fs::path& pid_file,
                                             const fs::path& log_file) {
  std::string pid;
  std::stringstream(slurp(pid_file)) >> pid;
  if (pid.empty()) return ::testing::AssertionFailure() << "no pid recorded";
  if (std::system(("kill -TERM " + pid).c_str()) != 0) {
    return ::testing::AssertionFailure() << "kill -TERM " << pid << " failed";
  }
  if (!wait_in_log(log_file, "shut down cleanly")) {
    return ::testing::AssertionFailure()
           << "daemon did not shut down on SIGTERM; log: " << slurp(log_file);
  }
  return ::testing::AssertionSuccess();
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bgpcu_cli_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Writes one BGP4MP update dump announcing `prefix` over `path`.
  void write_dump(const std::string& name, std::vector<bgp::Asn> path,
                  const std::string& prefix) {
    const bgp::Asn peer = path.front();
    bgp::UpdateMessage update;
    update.attributes.as_path = bgp::AsPath::from_sequence(std::move(path));
    update.attributes.communities.push_back(
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
    update.nlri = {bgp::Prefix::parse(prefix)};
    mrt::MrtWriter writer;
    writer.write_message(1621382400, mrt::Bgp4mpMessage::ipv4_session(
                                         peer, 65000, 0xC0A80001, 0xC0A80002,
                                         update.encode(true)));
    writer.flush_to_file((dir_ / name).string());
  }

  fs::path dir_;
};

TEST_F(CliTest, RejectsZeroShards) {
  const auto r = run(stream_bin() + " --shards 0 '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--shards must be >= 1"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsNonNumericWindow) {
  const auto r = run(stream_bin() + " --window abc '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("needs a non-negative integer"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsNegativeWindow) {
  const auto r = run(stream_bin() + " --window -1 '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliTest, RejectsNonPlainDecimalIntegerFlags) {
  // strtoull on its own waves all of these through (leading whitespace and
  // '+' are consumed silently); the tools must insist on a plain decimal
  // digit string. Shell-quoted so the whitespace reaches argv intact.
  const char* bad[] = {" 80",  "+80",   "80 ",  "8 0", "0x10", "1e3",
                       "80\t", "\t80", "++1",  "8-",  "",     " "};
  for (const auto* value : bad) {
    const auto shards = run(stream_bin() + " --shards '" + value + "' '" + dir_.string() + "'");
    EXPECT_EQ(shards.exit_code, 2) << "--shards accepted '" << value << "'";
    EXPECT_NE(shards.output.find("needs a non-negative integer"), std::string::npos)
        << "--shards '" << value << "': " << shards.output;

    const auto port = run(serve_bin() + " --port '" + std::string(value) + "'");
    EXPECT_EQ(port.exit_code, 2) << "--port accepted '" << value << "'";
  }
  // Overflow past uint64 is rejected too, not silently saturated.
  const auto huge = run(stream_bin() + " --window 99999999999999999999999999 '" +
                        dir_.string() + "'");
  EXPECT_EQ(huge.exit_code, 2);
  EXPECT_NE(huge.output.find("needs a non-negative integer"), std::string::npos)
      << huge.output;
  // The plain spellings still parse (regression guard for the gate).
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  const auto ok = run(stream_bin() + " --once --shards 4 --window 2 --extension .mrt '" +
                      dir_.string() + "'");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
}

TEST_F(CliTest, RejectsNonPlainAsnAndThresholdSpellings) {
  // "-1" is absent: a leading dash is consumed by option parsing (unknown
  // option, still exit 2) before ASN validation ever sees it.
  for (const char* value : {" 3356", "+3356", "3356 "}) {
    const auto r = run(query_bin() + " asn '" + std::string(value) + "' somefile");
    EXPECT_EQ(r.exit_code, 2) << "asn accepted '" << value << "'";
    EXPECT_NE(r.output.find("ASN must be"), std::string::npos) << r.output;
  }
  for (const char* value : {" 0.99", "+0.99", "0.99 ", " .99", "0x1p-1", "infinity"}) {
    const auto r =
        run(stream_bin() + " --threshold '" + std::string(value) + "' '" + dir_.string() + "'");
    EXPECT_EQ(r.exit_code, 2) << "--threshold accepted '" << value << "'";
    EXPECT_NE(r.output.find("--threshold"), std::string::npos) << r.output;
  }
}

TEST_F(CliTest, RejectsUnknownFlag) {
  const auto r = run(stream_bin() + " --frobnicate '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown option: --frobnicate"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsMalformedThreshold) {
  for (const char* bad : {"high", "nan", "inf", "0.2", "1.5"}) {
    const auto r = run(stream_bin() + " --threshold " + bad + " '" + dir_.string() + "'");
    EXPECT_EQ(r.exit_code, 2) << bad;
    EXPECT_NE(r.output.find("--threshold"), std::string::npos) << r.output;
  }
}

TEST_F(CliTest, RejectsUnknownFormat) {
  const auto r = run(stream_bin() + " --format json '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--format"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsBadTransitionSpec) {
  const auto r = run(stream_bin() + " --transition sideways '" + dir_.string() + "'");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--transition"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsMissingWatchDir) {
  const auto r = run(stream_bin() + " --once");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST_F(CliTest, RejectsMissingFlagValue) {
  const auto r = run(stream_bin() + " --shards");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("needs a value"), std::string::npos) << r.output;
}

TEST_F(CliTest, DrainEmitsDeltaFeedAndWireArtifactsReadableByQuery) {
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  const auto snapshots = dir_ / "snaps";

  const auto r = run(stream_bin() + " --once --format wire --snapshot-dir '" +
                     snapshots.string() + "' --extension .mrt '" + dir_.string() + "'");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("AS 3356 changed nn->tn at epoch 0"), std::string::npos)
      << r.output;

  const auto snapshot_file = snapshots / "snapshot-000000.wire";
  const auto delta_file = snapshots / "delta-000000.wire";
  ASSERT_TRUE(fs::exists(snapshot_file));
  ASSERT_TRUE(fs::exists(delta_file));

  const auto dump = run(query_bin() + " dump '" + snapshot_file.string() + "'");
  EXPECT_EQ(dump.exit_code, 0);
  EXPECT_NE(dump.output.find("# bgpcu-inference-db v1"), std::string::npos) << dump.output;
  EXPECT_NE(dump.output.find("3356 tn 1 0 0 0"), std::string::npos) << dump.output;

  const auto asn = run(query_bin() + " asn 3356 '" + snapshot_file.string() + "'");
  EXPECT_EQ(asn.exit_code, 0);
  EXPECT_NE(asn.output.find("AS 3356 class tn t 1 s 0 f 0 c 0"), std::string::npos)
      << asn.output;

  const auto deltas = run(query_bin() + " deltas '" + delta_file.string() + "'");
  EXPECT_EQ(deltas.exit_code, 0);
  EXPECT_NE(deltas.output.find("AS 3356 changed nn->tn at epoch 0"), std::string::npos)
      << deltas.output;

  const auto info = run(query_bin() + " info '" + snapshot_file.string() + "' '" +
                        delta_file.string() + "'");
  EXPECT_EQ(info.exit_code, 0);
  EXPECT_NE(info.output.find("wire v1"), std::string::npos) << info.output;
  EXPECT_NE(info.output.find("frame snapshot"), std::string::npos) << info.output;
  EXPECT_NE(info.output.find("frame delta-batch"), std::string::npos) << info.output;
}

TEST_F(CliTest, TextAndWireSnapshotsAgreeAfterConvert) {
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  const auto text_dir = dir_ / "text";
  const auto wire_dir = dir_ / "wire";
  ASSERT_EQ(run(stream_bin() + " --once --snapshot-dir '" + text_dir.string() +
                "' --extension .mrt '" + dir_.string() + "'")
                .exit_code,
            0);
  ASSERT_EQ(run(stream_bin() + " --once --format wire --snapshot-dir '" +
                wire_dir.string() + "' --extension .mrt '" + dir_.string() + "'")
                .exit_code,
            0);

  const auto converted = dir_ / "converted.db";
  ASSERT_EQ(run(query_bin() + " convert text '" + (wire_dir / "snapshot-000000.wire").string() +
                "' '" + converted.string() + "'")
                .exit_code,
            0);

  std::ifstream a(text_dir / "snapshot-000000.db");
  std::ifstream b(converted);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_FALSE(sa.str().empty());
}

TEST_F(CliTest, QueryRejectsBadInputs) {
  EXPECT_EQ(run(query_bin()).exit_code, 2);
  EXPECT_EQ(run(query_bin() + " frob x").exit_code, 2);
  const auto bad_asn = run(query_bin() + " asn notanumber somefile");
  EXPECT_EQ(bad_asn.exit_code, 2);
  EXPECT_NE(bad_asn.output.find("ASN must be"), std::string::npos) << bad_asn.output;

  std::ofstream(dir_ / "junk.bin", std::ios::binary) << "garbage";
  const auto junk = run(query_bin() + " dump '" + (dir_ / "junk.bin").string() + "'");
  EXPECT_EQ(junk.exit_code, 1);
  EXPECT_NE(junk.output.find("unrecognized snapshot format"), std::string::npos)
      << junk.output;
}

TEST_F(CliTest, QueryDiagnosticsGoToStderrNotStdout) {
  // Build one valid snapshot and one junk file; `info` over both must put
  // artifact data on stdout, the diagnostic on stderr, and exit nonzero.
  write_dump("updates.0001.mrt", {10, 20}, "198.51.100.0/24");
  const auto snaps = dir_ / "snaps";
  ASSERT_EQ(run(stream_bin() + " --once --snapshot-dir '" + snaps.string() +
                "' --extension .mrt '" + dir_.string() + "'")
                .exit_code,
            0);
  const auto good = (snaps / "snapshot-000000.db").string();
  const auto junk = (dir_ / "junk.bin").string();
  std::ofstream(junk, std::ios::binary) << "garbage";

  const auto info = run_split(query_bin() + " info '" + good + "' '" + junk + "'");
  EXPECT_EQ(info.exit_code, 1);
  EXPECT_NE(info.out.find("text v1"), std::string::npos) << info.out;
  EXPECT_EQ(info.out.find("unrecognized format"), std::string::npos)
      << "diagnostic leaked to stdout: " << info.out;
  EXPECT_NE(info.err.find("unrecognized format"), std::string::npos) << info.err;

  // A missing file: diagnosed on stderr, other files still identified.
  const auto missing =
      run_split(query_bin() + " info '" + (dir_ / "nope.wire").string() + "' '" + good + "'");
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_NE(missing.out.find("text v1"), std::string::npos) << missing.out;
  EXPECT_NE(missing.err.find("nope.wire"), std::string::npos) << missing.err;

  // Usage and runtime errors keep stdout silent too.
  const auto bad_asn = run_split(query_bin() + " asn notanumber somefile");
  EXPECT_EQ(bad_asn.exit_code, 2);
  EXPECT_TRUE(bad_asn.out.empty()) << bad_asn.out;
  EXPECT_NE(bad_asn.err.find("ASN must be"), std::string::npos) << bad_asn.err;

  const auto dump_junk = run_split(query_bin() + " dump '" + junk + "'");
  EXPECT_EQ(dump_junk.exit_code, 1);
  EXPECT_TRUE(dump_junk.out.empty()) << dump_junk.out;
  EXPECT_NE(dump_junk.err.find("unrecognized snapshot format"), std::string::npos)
      << dump_junk.err;
}

TEST_F(CliTest, QueryConnectRejectsBadEndpointSpecs) {
  for (const char* bad : {"nohost", ":4711", "host:", "host:0", "host:70000", "host:abc"}) {
    const auto r = run_split(query_bin() + " stats --connect '" + std::string(bad) + "'");
    EXPECT_EQ(r.exit_code, 2) << bad;
    EXPECT_TRUE(r.out.empty()) << bad << ": " << r.out;
    EXPECT_FALSE(r.err.empty()) << bad;
  }
  // Network subcommands without --connect are usage errors, not crashes.
  EXPECT_EQ(run(query_bin() + " stats").exit_code, 2);
  EXPECT_EQ(run(query_bin() + " watch").exit_code, 2);
}

TEST_F(CliTest, QueryDistinguishesUnreachableServerFromProtocolErrors) {
  // Connect failures are operational, not protocol: they get their own exit
  // code (3) so scripts can retry/alert differently from a data error (1).
  // Port 1 on loopback is reliably closed; --no-retry keeps this instant.
  const auto dead = run_split(query_bin() +
                              " stats --connect 127.0.0.1:1 --no-retry --timeout 500");
  EXPECT_EQ(dead.exit_code, 3) << dead.err;
  EXPECT_TRUE(dead.out.empty()) << dead.out;
  EXPECT_NE(dead.err.find("error"), std::string::npos) << dead.err;

  // The retry budget is validated up front: 0 attempts is a usage error.
  EXPECT_EQ(run(query_bin() + " stats --connect 127.0.0.1:1 --retries 0").exit_code, 2);
  EXPECT_EQ(run(query_bin() + " stats --connect 127.0.0.1:1 --retries x").exit_code, 2);
  EXPECT_EQ(run(query_bin() + " stats --connect 127.0.0.1:1 --timeout x").exit_code, 2);
}

TEST_F(CliTest, ServeResilienceFlagsSmokeEndToEnd) {
  // The overload-protection surface wired through the CLI: a daemon started
  // with keepalive, admission control, and a connection cap still answers a
  // well-behaved client, and rejects malformed flag values up front.
  EXPECT_EQ(run(serve_bin() + " --max-rps x").exit_code, 2);
  EXPECT_EQ(run(serve_bin() + " --keepalive x").exit_code, 2);
  EXPECT_EQ(run(serve_bin() + " --retry-after x").exit_code, 2);
  EXPECT_EQ(run(serve_bin() + " --max-conns 0").exit_code, 2);

  const auto port_file = dir_ / "port";
  const auto log_file = dir_ / "serve.log";
  const auto pid_file = dir_ / "pid";
  const auto launch = "'" + serve_bin() + "' --port 0 --port-file '" + port_file.string() +
                      "' --max-conns 8 --timeout 2000 --keepalive 50 --max-rps 100" +
                      " --retry-after 123 --interval 1 > '" + log_file.string() +
                      "' 2>&1 & echo $! > '" + pid_file.string() + "'";
  ASSERT_EQ(std::system(launch.c_str()), 0);
  std::string port;
  for (int i = 0; i < 100 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::stringstream text(slurp(port_file));
    text >> port;
  }
  ASSERT_FALSE(port.empty()) << "daemon never wrote its port; log: " << slurp(log_file);

  const auto stats = run_split(query_bin() + " stats --connect 127.0.0.1:" + port);
  EXPECT_EQ(stats.exit_code, 0) << stats.err;
  EXPECT_NE(stats.out.find("epoch"), std::string::npos) << stats.out;

  ASSERT_TRUE(shut_down_cleanly(pid_file, log_file));
}

TEST_F(CliTest, ServePortFileIsNeverObservedPartiallyWritten) {
  // Readers poll --port-file to learn the ephemeral port; the daemon must
  // publish it atomically (write a temp file, rename into place), so every
  // observation of the path is a complete "PORT\n" — never an empty or
  // half-written file. Poll aggressively from before the daemon starts.
  const auto port_file = dir_ / "port";
  const auto log_file = dir_ / "serve.log";
  const auto pid_file = dir_ / "pid";
  const auto launch = "'" + serve_bin() + "' --port 0 --port-file '" + port_file.string() +
                      "' --interval 1 > '" + log_file.string() + "' 2>&1 & echo $! > '" +
                      pid_file.string() + "'";
  ASSERT_EQ(std::system(launch.c_str()), 0);

  std::string seen;
  bool observed = false;
  for (int i = 0; i < 2000 && !observed; ++i) {
    if (fs::exists(port_file)) {
      seen = slurp(port_file);
      // Atomic publication: existence implies complete content.
      ASSERT_FALSE(seen.empty()) << "observed an empty port file";
      observed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(observed) << "daemon never wrote its port; log: " << slurp(log_file);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back(), '\n') << "port file truncated: '" << seen << "'";
  seen.pop_back();
  ASSERT_FALSE(seen.empty());
  for (const char c : seen) {
    EXPECT_TRUE(c >= '0' && c <= '9') << "non-numeric port file: '" << seen << "'";
  }
  const auto port = std::stoul(seen);
  EXPECT_GE(port, 1u);
  EXPECT_LE(port, 65535u);
  EXPECT_FALSE(fs::exists(port_file.string() + ".tmp"))
      << "temp port file left behind";

  std::string pid;
  std::stringstream(slurp(pid_file)) >> pid;
  ASSERT_FALSE(pid.empty());
  EXPECT_EQ(std::system(("kill -TERM " + pid).c_str()), 0);
  bool clean = false;
  for (int i = 0; i < 100 && !clean; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    clean = slurp(log_file).find("shut down cleanly") != std::string::npos;
  }
  EXPECT_TRUE(clean) << "daemon did not shut down on SIGTERM; log: " << slurp(log_file);
}

TEST_F(CliTest, ServeTelemetrySurfaceEndToEnd) {
  // The observability flags together: --metrics-port publishes its bound
  // port atomically via --metrics-port-file, --metrics-dump appends JSONL
  // scrapes, and --log-level debug emits structured key=value lines — while
  // "shut down cleanly" stays greppable for scripts.
  const auto metrics_port_file = dir_ / "mport";
  const auto dump_file = dir_ / "metrics.jsonl";
  const auto log_file = dir_ / "serve.log";
  const auto pid_file = dir_ / "pid";
  const auto launch = "'" + serve_bin() + "' --port 0 --metrics-port 0 --metrics-port-file '" +
                      metrics_port_file.string() + "' --metrics-dump '" + dump_file.string() +
                      ",1' --log-level debug --interval 1 > '" + log_file.string() +
                      "' 2>&1 & echo $! > '" + pid_file.string() + "'";
  ASSERT_EQ(std::system(launch.c_str()), 0);

  // The metrics port publishes atomically, same as the serving port.
  std::string seen;
  for (int i = 0; i < 2000 && seen.empty(); ++i) {
    if (fs::exists(metrics_port_file)) seen = slurp(metrics_port_file);
    if (seen.empty()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(seen.empty()) << "daemon never wrote its metrics port; log: " << slurp(log_file);
  const auto metrics_port = std::stoul(seen);
  EXPECT_GE(metrics_port, 1u);
  EXPECT_LE(metrics_port, 65535u);

  // The JSONL dump accumulates complete scrape lines.
  bool dumped = false;
  for (int i = 0; i < 100 && !dumped; ++i) {
    dumped = fs::exists(dump_file) &&
             slurp(dump_file).find("\"bgpcu_stream_live_tuples\":") != std::string::npos;
    if (!dumped) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_TRUE(dumped) << "no metrics dump line appeared; log: " << slurp(log_file);

  std::string pid;
  std::stringstream(slurp(pid_file)) >> pid;
  ASSERT_FALSE(pid.empty());
  EXPECT_EQ(std::system(("kill -TERM " + pid).c_str()), 0);
  bool clean = false;
  for (int i = 0; i < 100 && !clean; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    clean = slurp(log_file).find("shut down cleanly") != std::string::npos;
  }
  EXPECT_TRUE(clean) << "daemon did not shut down on SIGTERM; log: " << slurp(log_file);

  // Structured breadcrumbs: startup, metrics surface, and shutdown events.
  const auto log = slurp(log_file);
  EXPECT_NE(log.find("level=info event=listening addr="), std::string::npos) << log;
  EXPECT_NE(log.find("level=info event=metrics_listening"), std::string::npos) << log;
  EXPECT_NE(log.find("level=info event=shutdown"), std::string::npos) << log;
}

TEST_F(CliTest, ServeDaemonAnswersQueryConnectEndToEnd) {
  // The real-socket end-to-end: bgpcu_serve on an ephemeral port ingests a
  // dump; bgpcu_query --connect reads stats, per-ASN class, and the full
  // snapshot over TCP.
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  const auto port_file = dir_ / "port";
  const auto log_file = dir_ / "serve.log";
  const auto pid_file = dir_ / "pid";
  const auto launch = "'" + serve_bin() + "' --port 0 --port-file '" + port_file.string() +
                      "' --token sesame --interval 1 --extension .mrt '" + dir_.string() +
                      "' > '" + log_file.string() + "' 2>&1 & echo $! > '" +
                      pid_file.string() + "'";
  ASSERT_EQ(std::system(launch.c_str()), 0);

  // Wait for the daemon to announce its port and finish the first ingest.
  std::string port;
  for (int i = 0; i < 100 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::stringstream text(slurp(port_file));
    text >> port;
  }
  ASSERT_FALSE(port.empty()) << "daemon never wrote its port; log: " << slurp(log_file);
  const auto connect = " --connect 127.0.0.1:" + port + " --token sesame";

  // The first poll may still be in flight: retry until the tuples landed.
  SplitRunResult stats;
  for (int i = 0; i < 100; ++i) {
    stats = run_split(query_bin() + " stats" + connect);
    if (stats.exit_code == 0 && stats.out.find("live_tuples") != std::string::npos &&
        stats.out.find("live_tuples 0") == std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(stats.exit_code, 0) << stats.err;
  EXPECT_NE(stats.out.find("epoch 0"), std::string::npos) << stats.out;
  EXPECT_EQ(stats.out.find("live_tuples 0\n"), std::string::npos) << stats.out;

  const auto asn = run_split(query_bin() + " asn 3356" + connect);
  EXPECT_EQ(asn.exit_code, 0) << asn.err;
  EXPECT_NE(asn.out.find("AS 3356 class tn t 1 s 0 f 0 c 0"), std::string::npos) << asn.out;

  const auto dump = run_split(query_bin() + " dump" + connect);
  EXPECT_EQ(dump.exit_code, 0) << dump.err;
  EXPECT_NE(dump.out.find("# bgpcu-inference-db v1"), std::string::npos) << dump.out;
  EXPECT_NE(dump.out.find("3356 tn 1 0 0 0"), std::string::npos) << dump.out;

  // stats --json: one machine-readable object carrying the same counters.
  const auto stats_json = run_split(query_bin() + " stats --json" + connect);
  EXPECT_EQ(stats_json.exit_code, 0) << stats_json.err;
  EXPECT_EQ(stats_json.out.rfind('{', 0), 0u) << stats_json.out;
  EXPECT_NE(stats_json.out.find("\"epoch\":0"), std::string::npos) << stats_json.out;
  EXPECT_NE(stats_json.out.find("\"live_tuples\":"), std::string::npos) << stats_json.out;

  // metrics over the wire: the full registry scrape as Prometheus text.
  const auto metrics = run_split(query_bin() + " metrics" + connect);
  EXPECT_EQ(metrics.exit_code, 0) << metrics.err;
  EXPECT_NE(metrics.out.find("# TYPE bgpcu_api_queries_total counter"), std::string::npos)
      << metrics.out.substr(0, 500);
  EXPECT_NE(metrics.out.find("bgpcu_net_frames_received_total"), std::string::npos);
  EXPECT_NE(metrics.out.find("bgpcu_stream_live_tuples"), std::string::npos);

  const auto metrics_json = run_split(query_bin() + " metrics --json" + connect);
  EXPECT_EQ(metrics_json.exit_code, 0) << metrics_json.err;
  EXPECT_NE(metrics_json.out.find("\"bgpcu_stream_live_tuples\":"), std::string::npos)
      << metrics_json.out.substr(0, 500);

  // Wrong token is refused at the handshake.
  const auto denied = run_split(query_bin() + " stats --connect 127.0.0.1:" + port +
                                " --token wrong");
  EXPECT_EQ(denied.exit_code, 1);
  EXPECT_NE(denied.err.find("error"), std::string::npos) << denied.err;

  // SIGTERM shuts the daemon down cleanly. (Liveness polling via kill -0 is
  // unreliable here — the daemon is a zombie child of system()'s exited
  // shell — so the clean-shutdown log line is the termination signal.)
  std::string pid;
  std::stringstream(slurp(pid_file)) >> pid;
  ASSERT_FALSE(pid.empty());
  EXPECT_EQ(std::system(("kill -TERM " + pid).c_str()), 0);
  bool clean = false;
  for (int i = 0; i < 100 && !clean; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    clean = slurp(log_file).find("shut down cleanly") != std::string::npos;
  }
  EXPECT_TRUE(clean) << "daemon did not shut down on SIGTERM; log: " << slurp(log_file);
}

TEST_F(CliTest, ServeRejectsBadStoreFlags) {
  const auto sync = run(serve_bin() + " --store-sync fast");
  EXPECT_EQ(sync.exit_code, 2);
  EXPECT_NE(sync.output.find("--store-sync"), std::string::npos) << sync.output;
  EXPECT_EQ(run(serve_bin() + " --checkpoint-every abc").exit_code, 2);
  EXPECT_EQ(run(serve_bin() + " --data-dir").exit_code, 2);
}

TEST_F(CliTest, ServeDataDirSurvivesRestartWithEpochContinuity) {
  // Round 1: the daemon ingests one dump into a durable --data-dir,
  // checkpoints on SIGTERM, and shuts down cleanly. Round 2 reopens the same
  // directory: the epoch counter must CONTINUE (a restart is invisible to
  // consumers), the feed must resume at the recorded offsets instead of
  // re-reading round 1's file, and `history` must reach back across the
  // restart boundary.
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  const auto data_dir = dir_ / "durable";
  const auto pid_file = dir_ / "pid";

  const auto launch = [&](const std::string& tag) {
    const auto port_file = dir_ / ("port." + tag);
    const auto log_file = dir_ / ("serve." + tag + ".log");
    const auto cmd = "'" + serve_bin() + "' --port 0 --port-file '" + port_file.string() +
                     "' --data-dir '" + data_dir.string() +
                     "' --checkpoint-every 1 --interval 1 --extension .mrt '" +
                     dir_.string() + "' > '" + log_file.string() + "' 2>&1 & echo $! > '" +
                     pid_file.string() + "'";
    EXPECT_EQ(std::system(cmd.c_str()), 0);
    std::string port;
    for (int i = 0; i < 100 && port.empty(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      std::stringstream text(slurp(port_file));
      text >> port;
    }
    EXPECT_FALSE(port.empty()) << "round " << tag
                               << " never wrote its port; log: " << slurp(log_file);
    return std::pair<std::string, fs::path>{port, log_file};
  };

  const auto [port1, log1] = launch("1");
  const auto connect1 = " --connect 127.0.0.1:" + port1;
  SplitRunResult stats;
  for (int i = 0; i < 100; ++i) {
    stats = run_split(query_bin() + " stats" + connect1);
    if (stats.exit_code == 0 && stats.out.find("live_tuples") != std::string::npos &&
        stats.out.find("live_tuples 0\n") == std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_EQ(stats.exit_code, 0) << stats.err;
  EXPECT_NE(stats.out.find("epoch 0"), std::string::npos) << stats.out;
  ASSERT_TRUE(shut_down_cleanly(pid_file, log1));
  EXPECT_TRUE(fs::exists(data_dir / "MANIFEST")) << "no durable manifest written";

  // A different dump arrives while the daemon is down.
  write_dump("updates.0002.mrt", {10, 20}, "198.51.100.0/24");
  const auto [port2, log2] = launch("2");
  EXPECT_TRUE(wait_in_log(log2, "recovered epoch 0 from")) << slurp(log2);
  const auto connect2 = " --connect 127.0.0.1:" + port2;

  // Epoch continuity: the new dump lands at epoch 1, never a reset epoch 0.
  for (int i = 0; i < 100; ++i) {
    stats = run_split(query_bin() + " stats" + connect2);
    if (stats.exit_code == 0 && stats.out.find("epoch 1") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_EQ(stats.exit_code, 0) << stats.err;
  ASSERT_NE(stats.out.find("epoch 1"), std::string::npos)
      << "epoch counter reset across restart: " << stats.out;

  // Both the recovered state and the fresh ingest are served — and round 1's
  // counters did not double (the feed resumed past updates.0001.mrt).
  const auto old_asn = run_split(query_bin() + " asn 3356" + connect2);
  EXPECT_EQ(old_asn.exit_code, 0) << old_asn.err;
  EXPECT_NE(old_asn.out.find("AS 3356 class tn t 1 s 0 f 0 c 0"), std::string::npos)
      << old_asn.out;
  const auto new_asn = run_split(query_bin() + " asn 10" + connect2);
  EXPECT_EQ(new_asn.exit_code, 0) << new_asn.err;
  EXPECT_NE(new_asn.out.find("AS 10 class tn"), std::string::npos) << new_asn.out;

  // Longitudinal history served over the wire spans the restart.
  const auto history = run_split(query_bin() + " history 3356" + connect2);
  EXPECT_EQ(history.exit_code, 0) << history.err;
  EXPECT_NE(history.out.find("epoch 0 AS 3356 class tn"), std::string::npos)
      << history.out;

  ASSERT_TRUE(shut_down_cleanly(pid_file, log2));
}

TEST_F(CliTest, StoreCliInspectVerifyCompactAndCorruptionExitCodes) {
  // Populate a store directory with a short daemon run, then drive the
  // offline admin tool over it: inspect and verify succeed on the healthy
  // directory, compact folds the WAL into a fresh checkpoint, and one
  // flipped byte in a checkpoint file turns `verify` into exit code 1.
  write_dump("updates.0001.mrt", {3356, 1299, 2914}, "203.0.113.0/24");
  const auto data_dir = dir_ / "durable";
  const auto port_file = dir_ / "port";
  const auto log_file = dir_ / "serve.log";
  const auto pid_file = dir_ / "pid";
  const auto launch = "'" + serve_bin() + "' --port 0 --port-file '" + port_file.string() +
                      "' --data-dir '" + data_dir.string() +
                      "' --interval 1 --extension .mrt '" + dir_.string() + "' > '" +
                      log_file.string() + "' 2>&1 & echo $! > '" + pid_file.string() + "'";
  ASSERT_EQ(std::system(launch.c_str()), 0);
  std::string port;
  for (int i = 0; i < 100 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::stringstream text(slurp(port_file));
    text >> port;
  }
  ASSERT_FALSE(port.empty()) << slurp(log_file);
  // Wait for the ingest so the shutdown checkpoint has real state in it.
  for (int i = 0; i < 100; ++i) {
    const auto stats = run_split(query_bin() + " stats --connect 127.0.0.1:" + port);
    if (stats.exit_code == 0 && stats.out.find("live_tuples") != std::string::npos &&
        stats.out.find("live_tuples 0\n") == std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(shut_down_cleanly(pid_file, log_file));

  // Usage errors are exit 2 with a one-line usage message.
  EXPECT_EQ(run(store_bin()).exit_code, 2);
  EXPECT_EQ(run(store_bin() + " inspect").exit_code, 2);
  EXPECT_EQ(run(store_bin() + " frobnicate '" + data_dir.string() + "'").exit_code, 2);

  const auto inspect = run_split(store_bin() + " inspect '" + data_dir.string() + "'");
  EXPECT_EQ(inspect.exit_code, 0) << inspect.err;
  EXPECT_NE(inspect.out.find("manifest ok"), std::string::npos) << inspect.out;
  EXPECT_NE(inspect.out.find("checkpoint epoch 0"), std::string::npos) << inspect.out;
  EXPECT_NE(inspect.out.find("recoverable epochs 0..0"), std::string::npos) << inspect.out;

  const auto verify = run_split(store_bin() + " verify '" + data_dir.string() + "'");
  EXPECT_EQ(verify.exit_code, 0) << verify.out << verify.err;
  EXPECT_NE(verify.out.find("verification ok"), std::string::npos) << verify.out;

  const auto history = run(store_bin() + " history 3356 '" + data_dir.string() + "'");
  EXPECT_EQ(history.exit_code, 0) << history.output;
  EXPECT_NE(history.output.find("epoch 0 AS 3356 class tn"), std::string::npos)
      << history.output;

  const auto compact = run_split(store_bin() + " compact '" + data_dir.string() + "'");
  EXPECT_EQ(compact.exit_code, 0) << compact.err;
  EXPECT_NE(compact.out.find("compacted to checkpoint epoch 0"), std::string::npos)
      << compact.out;
  EXPECT_EQ(run(store_bin() + " verify '" + data_dir.string() + "'").exit_code, 0);

  // One flipped byte in the checkpoint state file: verify must fail loudly.
  fs::path victim;
  for (const auto& entry : fs::directory_iterator(data_dir)) {
    if (entry.path().extension() == ".state") victim = entry.path();
  }
  ASSERT_FALSE(victim.empty()) << "no .state checkpoint file found";
  {
    std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(file.tellg());
    ASSERT_GT(size, 8);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }
  const auto corrupt = run_split(store_bin() + " verify '" + data_dir.string() + "'");
  EXPECT_EQ(corrupt.exit_code, 1) << corrupt.out << corrupt.err;
  EXPECT_NE(corrupt.err.find("CORRUPT"), std::string::npos) << corrupt.err;
  EXPECT_NE(corrupt.err.find("verification FAILED"), std::string::npos) << corrupt.err;
}

}  // namespace
}  // namespace bgpcu
