#include "sim/substrate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/generator.h"

namespace bgpcu::sim {
namespace {

using topology::NodeId;

topology::GeneratedTopology small_topo(std::uint64_t seed = 9) {
  topology::GeneratorParams params;
  params.num_ases = 250;
  params.num_tier1 = 5;
  params.seed = seed;
  return topology::generate(params);
}

TEST(Substrate, PeersSelectedAreDistinctAndBiasedLarge) {
  const auto topo = small_topo();
  const auto peers = select_collector_peers(topo, 25, 1);
  EXPECT_GT(peers.size(), 10u);
  EXPECT_TRUE(std::is_sorted(peers.begin(), peers.end()));
  EXPECT_EQ(std::adjacent_find(peers.begin(), peers.end()), peers.end());
  std::size_t transit = 0;
  for (const auto p : peers) {
    if (topo.tier_of(p) != topology::Tier::kLeaf) ++transit;
  }
  EXPECT_GT(transit * 2, peers.size()) << "peer mix should lean transit";
}

TEST(Substrate, PathsStartAtPeerAndAreUnique) {
  const auto topo = small_topo();
  auto substrate = build_substrate(topo, select_collector_peers(topo, 20, 1));
  ASSERT_FALSE(substrate.paths.empty());
  for (const auto& path : substrate.paths) {
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(std::find(substrate.peers.begin(), substrate.peers.end(), path.front()) !=
                substrate.peers.end());
  }
  auto copy = substrate.paths;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(std::adjacent_find(copy.begin(), copy.end()), copy.end());
}

TEST(Substrate, EveryOriginReachesSomePeer) {
  const auto topo = small_topo();
  const auto substrate = build_substrate(topo, select_collector_peers(topo, 20, 1));
  std::vector<bool> seen(topo.graph.node_count(), false);
  for (const auto& path : substrate.paths) seen[path.back()] = true;
  const auto covered = static_cast<std::size_t>(std::count(seen.begin(), seen.end(), true));
  EXPECT_EQ(covered, topo.graph.node_count()) << "connected topology: all origins visible";
}

TEST(Substrate, OriginStrideSubsamples) {
  const auto topo = small_topo();
  const auto peers = select_collector_peers(topo, 20, 1);
  const auto full = build_substrate(topo, peers, 1);
  const auto half = build_substrate(topo, peers, 2);
  EXPECT_LT(half.paths.size(), full.paths.size());
  EXPECT_GT(half.paths.size(), full.paths.size() / 4);
}

TEST(Substrate, PresentAndLeafFlags) {
  const auto topo = small_topo();
  const auto substrate = build_substrate(topo, select_collector_peers(topo, 20, 1));
  const auto present = substrate.present_flags(topo.graph.node_count());
  const auto leaf = substrate.leaf_flags(topo.graph.node_count());
  EXPECT_EQ(std::count(present.begin(), present.end(), true),
            static_cast<std::ptrdiff_t>(topo.graph.node_count()));
  // Topology stubs (no customers, no peers) can never transit announcements
  // — unless they are collector peers themselves: a peer forwards to the
  // collector and thus appears at a non-origin position (§3.1).
  for (NodeId n = 0; n < topo.graph.node_count(); ++n) {
    const bool is_peer = std::find(substrate.peers.begin(), substrate.peers.end(), n) !=
                         substrate.peers.end();
    if (topo.graph.is_leaf(n) && topo.graph.peers(n).empty() && !is_peer) {
      EXPECT_TRUE(leaf[n]) << "stub AS " << n << " observed in transit position";
    }
  }
}

TEST(Substrate, NoDuplicateAsnsWithinAPath) {
  const auto topo = small_topo();
  const auto substrate = build_substrate(topo, select_collector_peers(topo, 20, 1));
  for (const auto& path : substrate.paths) {
    auto sorted = path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "routing loop in path";
  }
}

}  // namespace
}  // namespace bgpcu::sim
