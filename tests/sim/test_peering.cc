// PEERING-testbed simulation tests (§7.4 semantics).
#include "sim/peering.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/generator.h"

namespace bgpcu::sim {
namespace {

struct Fixture {
  topology::GeneratedTopology topo;
  PathSubstrate substrate;
  RoleVector roles;
  Fixture() {
    topology::GeneratorParams params;
    params.num_ases = 400;
    params.num_tier1 = 5;
    params.seed = 21;
    topo = topology::generate(params);
    substrate = build_substrate(topo, select_collector_peers(topo, 25, 21));
    WildParams wild;
    wild.seed = 21;
    roles = assign_wild_roles(topo, wild);
  }
};

TEST(Peering, ObservationReachesPeers) {
  Fixture f;
  PeeringConfig config;
  config.seed = 1;
  const auto obs = run_peering_experiment(f.topo, f.substrate.peers, f.roles, config);
  EXPECT_FALSE(obs.tuples.empty());
  EXPECT_EQ(obs.pop_asns.size(), config.num_pops);
  for (const auto& tuple : obs.tuples) {
    EXPECT_GE(tuple.path.size(), 2u);
    EXPECT_EQ(tuple.path.back(), 47065u) << "origin is the testbed ASN";
  }
}

TEST(Peering, CommunitiesPresentIffNoTrueCleanerUpstream) {
  Fixture f;
  PeeringConfig config;
  config.seed = 2;
  const auto obs = run_peering_experiment(f.topo, f.substrate.peers, f.roles, config);
  for (const auto& tuple : obs.tuples) {
    bool cleaner = false;
    for (std::size_t i = 0; i + 1 < tuple.path.size(); ++i) {
      const auto node = f.topo.graph.node_of(tuple.path[i]);
      ASSERT_TRUE(node.has_value());
      cleaner |= f.roles[*node].cleaner;
    }
    EXPECT_EQ(bgp::contains_upper(tuple.comms, 47065), !cleaner) << tuple.to_string();
  }
}

TEST(Peering, PopCommunityPairIsUnique) {
  Fixture f;
  PeeringConfig config;
  config.seed = 3;
  const auto obs = run_peering_experiment(f.topo, f.substrate.peers, f.roles, config);
  // Tuples carrying our communities must carry exactly the pair of their PoP.
  for (const auto& tuple : obs.tuples) {
    std::vector<std::uint32_t> ours;
    for (const auto& c : tuple.comms) {
      if (c.upper == 47065) ours.push_back(c.low1);
    }
    if (ours.empty()) continue;
    ASSERT_EQ(ours.size(), 2u);
    EXPECT_EQ(ours[0] / 2, ours[1] / 2) << "values form one PoP pair";
  }
}

TEST(Peering, ValidationConsistentWithPerfectInference) {
  // Feed the validator an inference that matches the ground truth exactly:
  // no contradictions can remain.
  Fixture f;
  PeeringConfig config;
  config.seed = 4;
  const auto obs = run_peering_experiment(f.topo, f.substrate.peers, f.roles, config);

  core::CounterMap counters;
  for (topology::NodeId n = 0; n < f.topo.graph.node_count(); ++n) {
    auto& k = counters[f.topo.graph.asn_of(n)];
    if (f.roles[n].cleaner) {
      k.c = 100;
    } else {
      k.f = 100;
    }
    k.t = 100;
  }
  const core::InferenceResult oracle(std::move(counters), core::Thresholds{}, 1);

  const auto v = validate_observation(obs, oracle, 47065);
  EXPECT_EQ(v.with_comms_cleaner, 0u) << "no cleaner on paths that delivered our communities";
  EXPECT_EQ(v.without_comms_cleaner, v.without_comms)
      << "every community-less path contains the responsible cleaner";
  EXPECT_EQ(v.with_comms + v.without_comms, obs.tuples.size());
}

TEST(Peering, AsnCollisionAvoided) {
  Fixture f;
  // Force a collision: add 47065 to the topology, then run.
  topology::GeneratedTopology topo2 = f.topo;
  topo2.graph.add_as(47065);
  topo2.tier.push_back(topology::Tier::kLeaf);
  topo2.prefixes.emplace_back();
  RoleVector roles2 = f.roles;
  roles2.push_back(Role{});
  PeeringConfig config;
  const auto obs = run_peering_experiment(topo2, f.substrate.peers, roles2, config);
  for (const auto& tuple : obs.tuples) {
    EXPECT_EQ(tuple.path.back(), 47066u) << "testbed dodged the collision";
  }
}

}  // namespace
}  // namespace bgpcu::sim
