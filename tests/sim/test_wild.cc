// Wild role-model tests: the §7-calibrated role distribution.
#include "sim/wild.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpcu::sim {
namespace {

topology::GeneratedTopology make_topo(std::uint64_t seed = 5) {
  topology::GeneratorParams params;
  params.num_ases = 3000;
  params.num_tier1 = 8;
  params.seed = seed;
  return topology::generate(params);
}

TEST(WildRoles, Deterministic) {
  const auto topo = make_topo();
  WildParams params;
  params.seed = 9;
  const auto a = assign_wild_roles(topo, params);
  const auto b = assign_wild_roles(topo, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tagger, b[i].tagger);
    EXPECT_EQ(a[i].cleaner, b[i].cleaner);
    EXPECT_EQ(a[i].selectivity, b[i].selectivity);
  }
}

TEST(WildRoles, TaggerShareFollowsTierProbabilities) {
  const auto topo = make_topo();
  WildParams params;
  const auto roles = assign_wild_roles(topo, params);

  std::array<std::size_t, 4> taggers{}, totals{};
  for (std::size_t n = 0; n < roles.size(); ++n) {
    const auto tier = static_cast<std::size_t>(topo.tier_of(static_cast<topology::NodeId>(n)));
    ++totals[tier];
    taggers[tier] += roles[n].tagger;
  }
  for (std::size_t tier = 0; tier < 4; ++tier) {
    if (totals[tier] < 30) continue;  // too small to bound tightly
    const double share = static_cast<double>(taggers[tier]) / static_cast<double>(totals[tier]);
    EXPECT_NEAR(share, params.p_tagger[tier], 0.12) << "tier " << tier;
  }
  // §7.3: the edge barely tags, the core does.
  const double leaf_share = static_cast<double>(taggers[3]) / static_cast<double>(totals[3]);
  const double core_share = static_cast<double>(taggers[1]) / static_cast<double>(totals[1]);
  EXPECT_LT(leaf_share, 0.05);
  EXPECT_GT(core_share, 0.1);
}

TEST(WildRoles, SelectiveOnlyAmongTaggers) {
  const auto topo = make_topo();
  WildParams params;
  const auto roles = assign_wild_roles(topo, params);
  std::size_t taggers = 0, selective = 0;
  for (const auto& role : roles) {
    if (!role.tagger) {
      EXPECT_EQ(role.selectivity, Selectivity::kNone);
      continue;
    }
    ++taggers;
    selective += role.is_selective();
  }
  ASSERT_GT(taggers, 50u);
  const double share = static_cast<double>(selective) / static_cast<double>(taggers);
  EXPECT_NEAR(share, params.selective_share, 0.12);
}

TEST(WildRoles, AllSelectivityModesOccur) {
  const auto topo = make_topo();
  WildParams params;
  const auto roles = assign_wild_roles(topo, params);
  std::array<std::size_t, 4> modes{};
  for (const auto& role : roles) ++modes[static_cast<std::size_t>(role.selectivity)];
  EXPECT_GT(modes[static_cast<std::size_t>(Selectivity::kSkipProvider)], 0u);
  EXPECT_GT(modes[static_cast<std::size_t>(Selectivity::kSkipProviderPeer)], 0u);
  EXPECT_GT(modes[static_cast<std::size_t>(Selectivity::kCollectorOnly)], 0u);
}

TEST(WildRoles, RoleCodes) {
  Role tf{true, false, Selectivity::kNone};
  Role sc{false, true, Selectivity::kNone};
  EXPECT_EQ(tf.code(), "tf");
  EXPECT_EQ(sc.code(), "sc");
  EXPECT_FALSE(sc.is_selective());
}

}  // namespace
}  // namespace bgpcu::sim
