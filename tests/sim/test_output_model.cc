// Output-model tests: the formal model of §3.3.2 — output(A) = tagging(A) ∪
// forwarding(A, input(A)) — plus selectivity and noise mechanics.
#include "sim/output_model.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpcu::sim {
namespace {

using topology::NodeId;

// Minimal topology: chain leaf -> mid -> top (c2p), top is "peer".
struct Chain {
  topology::GeneratedTopology topo;
  NodeId top, mid, leaf;
  std::vector<NodeId> path;  // [top, mid, leaf]: top = collector peer
  Chain() {
    top = topo.graph.add_as(10);
    mid = topo.graph.add_as(20);
    leaf = topo.graph.add_as(30);
    topo.tier = {topology::Tier::kTier1, topology::Tier::kSmallTransit, topology::Tier::kLeaf};
    topo.graph.add_c2p(mid, top);
    topo.graph.add_c2p(leaf, mid);
    path = {top, mid, leaf};
  }
};

bgp::CommunitySet run(const Chain& chain, const RoleVector& roles,
                      const OutputConfig& config = {}) {
  topology::Rng rng(1);
  const std::vector<bool> noisy(chain.topo.graph.node_count(),
                                config.noise.enabled);  // all noisy when enabled
  return compute_output(chain.topo, chain.path, roles, noisy, config, rng);
}

TEST(OutputModel, AllSilentForwardYieldsEmpty) {
  Chain chain;
  const RoleVector roles(3, Role{false, false, Selectivity::kNone});
  EXPECT_TRUE(run(chain, roles).empty());
}

TEST(OutputModel, TaggerContributesOwnUpperField) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.leaf] = Role{true, false, Selectivity::kNone};
  const auto out = run(chain, roles);
  EXPECT_TRUE(bgp::contains_upper(out, 30));
  EXPECT_FALSE(bgp::contains_upper(out, 10));
  EXPECT_FALSE(bgp::contains_upper(out, 20));
}

TEST(OutputModel, CleanerRemovesDownstreamTags) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.leaf] = Role{true, false, Selectivity::kNone};
  roles[chain.mid] = Role{false, true, Selectivity::kNone};  // cleaner
  EXPECT_TRUE(run(chain, roles).empty());
}

TEST(OutputModel, TaggerCleanerKeepsOwnDropsOthers) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.leaf] = Role{true, false, Selectivity::kNone};
  roles[chain.mid] = Role{true, true, Selectivity::kNone};  // tc
  const auto out = run(chain, roles);
  EXPECT_TRUE(bgp::contains_upper(out, 20));
  EXPECT_FALSE(bgp::contains_upper(out, 30));
}

TEST(OutputModel, CleanerAtPeerRemovesEverythingButOwn) {
  Chain chain;
  RoleVector roles(3, Role{true, false, Selectivity::kNone});  // everyone tags
  roles[chain.top] = Role{false, true, Selectivity::kNone};    // peer cleans, silent
  EXPECT_TRUE(run(chain, roles).empty());
}

TEST(OutputModel, SkipProviderSuppressesUphillTags) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  // mid tags, but exports to `top` which is mid's provider -> suppressed.
  roles[chain.mid] = Role{true, false, Selectivity::kSkipProvider};
  const auto out = run(chain, roles);
  EXPECT_FALSE(bgp::contains_upper(out, 20));
}

TEST(OutputModel, SkipProviderStillTagsTowardCollector) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.top] = Role{true, false, Selectivity::kSkipProvider};  // peer position
  const auto out = run(chain, roles);
  EXPECT_TRUE(bgp::contains_upper(out, 10)) << "collector session is always tagged";
}

TEST(OutputModel, SkipProviderPeerTagsOnlyCustomers) {
  // Path where the receiver is a customer: build peer-to-peer then downhill.
  topology::GeneratedTopology topo;
  const auto peerA = topo.graph.add_as(10);   // collector peer
  const auto transit = topo.graph.add_as(20); // tags selectively
  const auto origin = topo.graph.add_as(30);
  topo.tier = {topology::Tier::kSmallTransit, topology::Tier::kSmallTransit,
               topology::Tier::kLeaf};
  // peerA is a CUSTOMER of transit: transit exports downhill to peerA.
  topo.graph.add_c2p(peerA, transit);
  topo.graph.add_c2p(origin, transit);
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[transit] = Role{true, false, Selectivity::kSkipProviderPeer};
  topology::Rng rng(1);
  const std::vector<bool> noisy;
  const auto out =
      compute_output(topo, {peerA, transit, origin}, roles, noisy, OutputConfig{}, rng);
  EXPECT_TRUE(bgp::contains_upper(out, 20)) << "receiver is a customer: tag applies";
}

TEST(OutputModel, CollectorOnlySuppressesNonCollectorSessions) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.mid] = Role{true, false, Selectivity::kCollectorOnly};
  roles[chain.top] = Role{true, false, Selectivity::kCollectorOnly};
  const auto out = run(chain, roles);
  EXPECT_FALSE(bgp::contains_upper(out, 20)) << "mid does not face the collector";
  EXPECT_TRUE(bgp::contains_upper(out, 10)) << "top faces the collector";
}

TEST(OutputModel, OriginOverrideReplacesVocabulary) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.leaf] = Role{true, false, Selectivity::kNone};
  const bgp::CommunitySet pop = {bgp::CommunityValue::regular(47065, 1000)};
  topology::Rng rng(1);
  const std::vector<bool> noisy;
  const auto out =
      compute_output(chain.topo, chain.path, roles, noisy, OutputConfig{}, rng, &pop);
  EXPECT_TRUE(bgp::contains_upper(out, 47065));
  EXPECT_FALSE(bgp::contains_upper(out, 30)) << "override suppresses own vocabulary";
}

TEST(OutputModel, VocabularyStablePerAsnAndIngress) {
  const auto a = tagger_vocabulary(3356, 10);
  const auto b = tagger_vocabulary(3356, 10);
  EXPECT_EQ(a, b);
  for (const auto& c : a) EXPECT_EQ(c.upper, 3356u);
}

TEST(OutputModel, ThirtyTwoBitTaggersUseLargeCommunities) {
  const auto vocab = tagger_vocabulary(4200000, 10);
  for (const auto& c : vocab) {
    EXPECT_EQ(c.kind, bgp::CommunityKind::kLarge);
    EXPECT_EQ(c.upper, 4200000u);
  }
}

TEST(OutputModel, NoiseAppendsOriginCommunityEventually) {
  Chain chain;
  const RoleVector roles(3, Role{false, false, Selectivity::kNone});
  OutputConfig config;
  config.noise.enabled = true;
  config.noise.origin_prob = 1.0;  // force
  config.noise.action_prob = 0.0;
  const auto out = run(chain, roles, config);
  EXPECT_TRUE(bgp::contains_upper(out, 30)) << "origin-ASN noise community appended";
}

TEST(OutputModel, ActionNoiseUsesUpstreamNeighborAsn) {
  Chain chain;
  const RoleVector roles(3, Role{false, false, Selectivity::kNone});
  OutputConfig config;
  config.noise.enabled = true;
  config.noise.origin_prob = 0.0;
  config.noise.action_prob = 1.0;  // force on every hop
  const auto out = run(chain, roles, config);
  // leaf attaches mid's ASN, mid attaches top's ASN; top has no upstream.
  EXPECT_TRUE(bgp::contains_upper(out, 20));
  EXPECT_TRUE(bgp::contains_upper(out, 10));
}

TEST(OutputModel, ActionNoiseIsCleanedUpstream) {
  Chain chain;
  RoleVector roles(3, Role{false, false, Selectivity::kNone});
  roles[chain.mid] = Role{false, true, Selectivity::kNone};  // cleaner at mid
  OutputConfig config;
  config.noise.enabled = true;
  config.noise.origin_prob = 0.0;
  config.noise.action_prob = 1.0;
  const auto out = run(chain, roles, config);
  // The leaf's action community (upper = mid) is cleaned by mid itself; the
  // only survivor is mid's own action community naming top.
  EXPECT_FALSE(bgp::contains_upper(out, 20));
  EXPECT_TRUE(bgp::contains_upper(out, 10));
}

TEST(OutputModel, PrivatePollutionUsesPrivateAdmins) {
  Chain chain;
  const RoleVector roles(3, Role{false, false, Selectivity::kNone});
  OutputConfig config;
  config.pollution.private_prob = 1.0;
  const auto out = run(chain, roles, config);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) EXPECT_TRUE(bgp::is_private_asn(c.upper));
}

TEST(OutputModel, StrayPollutionAdminOffPath) {
  Chain chain;
  // Add off-path ASes so the stray draw has candidates.
  for (bgp::Asn asn = 100; asn < 110; ++asn) {
    chain.topo.graph.add_as(asn);
    chain.topo.tier.push_back(topology::Tier::kLeaf);
  }
  RoleVector roles(chain.topo.graph.node_count(), Role{false, false, Selectivity::kNone});
  OutputConfig config;
  config.pollution.stray_prob = 1.0;
  topology::Rng rng(1);
  const std::vector<bool> noisy;
  const auto out = compute_output(chain.topo, chain.path, roles, noisy, config, rng);
  ASSERT_FALSE(out.empty());
  for (const auto& c : out) {
    EXPECT_GE(c.upper, 100u);
    EXPECT_LT(c.upper, 110u);
  }
}

TEST(OutputModel, MarkNoisyRespectsFractionAndDeterminism) {
  NoiseConfig noise;
  noise.enabled = true;
  noise.noisy_as_fraction = 0.5;
  const auto a = mark_noisy(10000, noise, 42);
  const auto b = mark_noisy(10000, noise, 42);
  EXPECT_EQ(a, b);
  const auto count = static_cast<double>(std::count(a.begin(), a.end(), true));
  EXPECT_NEAR(count / 10000.0, 0.5, 0.03);
  const auto off = mark_noisy(100, NoiseConfig{}, 42);
  EXPECT_EQ(std::count(off.begin(), off.end(), true), 0);
}

}  // namespace
}  // namespace bgpcu::sim
