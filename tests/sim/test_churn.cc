#include "sim/churn.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bgpcu::sim {
namespace {

core::Dataset base_dataset() {
  core::Dataset d;
  for (bgp::Asn origin = 100; origin < 150; ++origin) {
    for (bgp::Asn peer = 1; peer <= 5; ++peer) {
      core::PathCommTuple t;
      t.path = {peer, 50, origin};
      d.push_back(std::move(t));
    }
  }
  core::deduplicate(d);
  return d;
}

TEST(Churn, DayDatasetIsSubset) {
  const auto base = base_dataset();
  ChurnConfig config;
  const auto day = day_dataset(base, config, 1);
  EXPECT_LT(day.size(), base.size());
  EXPECT_GT(day.size(), base.size() / 2);
  for (const auto& tuple : day) {
    EXPECT_NE(std::find(base.begin(), base.end(), tuple), base.end());
  }
}

TEST(Churn, DeterministicPerDaySeed) {
  const auto base = base_dataset();
  ChurnConfig config;
  EXPECT_EQ(day_dataset(base, config, 2), day_dataset(base, config, 2));
  EXPECT_NE(day_dataset(base, config, 2), day_dataset(base, config, 3));
}

TEST(Churn, OutageRemovesWholeOrigin) {
  const auto base = base_dataset();
  ChurnConfig config;
  config.outage_prob = 0.3;
  config.daily_visibility = 1.0;
  const auto day = day_dataset(base, config, 1);
  // Partition origins into fully-present and fully-absent.
  std::unordered_set<bgp::Asn> present;
  for (const auto& t : day) present.insert(t.origin());
  for (bgp::Asn origin = 100; origin < 150; ++origin) {
    const auto count = std::count_if(day.begin(), day.end(), [origin](const auto& t) {
      return t.origin() == origin;
    });
    if (present.contains(origin)) {
      EXPECT_EQ(count, 5) << "origin " << origin << " partially out";
    } else {
      EXPECT_EQ(count, 0);
    }
  }
  EXPECT_LT(present.size(), 50u);
}

TEST(Churn, FullVisibilityNoOutageIsIdentity) {
  const auto base = base_dataset();
  ChurnConfig config;
  config.daily_visibility = 1.0;
  config.outage_prob = 0.0;
  EXPECT_EQ(day_dataset(base, config, 1), base);
}

TEST(Churn, MergeDeduplicates) {
  const auto base = base_dataset();
  ChurnConfig config;
  const auto day1 = day_dataset(base, config, 1);
  const auto day2 = day_dataset(base, config, 2);
  const auto merged = merge_datasets(day1, day2);
  EXPECT_LE(merged.size(), base.size());
  EXPECT_GE(merged.size(), std::max(day1.size(), day2.size()));
  auto copy = merged;
  EXPECT_EQ(core::deduplicate(copy), 0u);
}

}  // namespace
}  // namespace bgpcu::sim
