// Scenario construction tests: role assignment, visibility flags, and the
// ground-truth dataset generation of §6.
#include "sim/scenario.h"

#include <gtest/gtest.h>

#include "sim/substrate.h"
#include "topology/generator.h"

namespace bgpcu::sim {
namespace {

using topology::NodeId;

struct Fixture {
  topology::GeneratedTopology topo;
  PathSubstrate substrate;
  Fixture() {
    topology::GeneratorParams params;
    params.num_ases = 300;
    params.num_tier1 = 5;
    params.seed = 11;
    topo = topology::generate(params);
    substrate = build_substrate(topo, select_collector_peers(topo, 20, 11));
  }
};

TEST(Scenario, AllTfAssignsEveryoneTaggerForward) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kAllTf;
  const auto roles = assign_roles(f.topo, config);
  for (const auto& role : roles) {
    EXPECT_TRUE(role.tagger);
    EXPECT_FALSE(role.cleaner);
  }
}

TEST(Scenario, AllTcAssignsEveryoneTaggerCleaner) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kAllTc;
  const auto roles = assign_roles(f.topo, config);
  for (const auto& role : roles) {
    EXPECT_TRUE(role.tagger);
    EXPECT_TRUE(role.cleaner);
  }
}

TEST(Scenario, RandomRolesRoughlyUniform) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kRandom;
  config.seed = 5;
  const auto roles = assign_roles(f.topo, config);
  std::size_t taggers = 0, cleaners = 0;
  for (const auto& role : roles) {
    taggers += role.tagger;
    cleaners += role.cleaner;
  }
  const double n = static_cast<double>(roles.size());
  EXPECT_NEAR(static_cast<double>(taggers) / n, 0.5, 0.1);
  EXPECT_NEAR(static_cast<double>(cleaners) / n, 0.5, 0.1);
}

TEST(Scenario, RandomPKeepsBaseRolesAndAddsSelectivity) {
  Fixture f;
  ScenarioConfig base;
  base.kind = ScenarioKind::kRandom;
  base.seed = 5;
  ScenarioConfig sel = base;
  sel.kind = ScenarioKind::kRandomP;
  const auto roles_base = assign_roles(f.topo, base);
  const auto roles_sel = assign_roles(f.topo, sel);
  std::size_t selective = 0;
  for (std::size_t i = 0; i < roles_base.size(); ++i) {
    EXPECT_EQ(roles_base[i].tagger, roles_sel[i].tagger) << "same seed, same base roles";
    EXPECT_EQ(roles_base[i].cleaner, roles_sel[i].cleaner);
    if (roles_sel[i].is_selective()) {
      ++selective;
      EXPECT_EQ(roles_sel[i].selectivity, Selectivity::kSkipProvider);
    }
  }
  EXPECT_GT(selective, 0u);
}

TEST(Scenario, RandomPpUsesStricterSelectivity) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kRandomPp;
  const auto roles = assign_roles(f.topo, config);
  bool found = false;
  for (const auto& role : roles) {
    if (role.is_selective()) {
      EXPECT_EQ(role.selectivity, Selectivity::kSkipProviderPeer);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Scenario, GroundTruthDatasetNonEmptyAndDeduplicated) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kRandom;
  auto truth = build_scenario(f.topo, f.substrate, config);
  EXPECT_FALSE(truth.dataset.empty());
  const auto before = truth.dataset.size();
  EXPECT_EQ(core::deduplicate(truth.dataset), 0u);
  EXPECT_EQ(truth.dataset.size(), before);
}

TEST(Scenario, AllTfNothingHidden) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kAllTf;
  const auto truth = build_scenario(f.topo, f.substrate, config);
  for (NodeId n = 0; n < f.topo.graph.node_count(); ++n) {
    EXPECT_FALSE(truth.tagging_hidden[n]);
    if (truth.present[n] && !truth.leaf[n]) {
      EXPECT_FALSE(truth.forwarding_hidden[n]) << "downstream taggers everywhere";
    }
  }
}

TEST(Scenario, AllTcEverythingBehindPeersHidden) {
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kAllTc;
  const auto truth = build_scenario(f.topo, f.substrate, config);
  std::size_t hidden = 0, visible = 0;
  for (NodeId n = 0; n < f.topo.graph.node_count(); ++n) {
    if (!truth.present[n]) continue;
    if (truth.tagging_hidden[n]) {
      ++hidden;
    } else {
      ++visible;
    }
  }
  // Only ASes that appear as collector peers (index 1) are visible.
  EXPECT_EQ(visible, f.substrate.peers.size());
  EXPECT_GT(hidden, visible);
}

TEST(Scenario, LeafFlagsMatchSubstrateDefinition) {
  Fixture f;
  const auto leaf = f.substrate.leaf_flags(f.topo.graph.node_count());
  const auto present = f.substrate.present_flags(f.topo.graph.node_count());
  for (const auto& path : f.substrate.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_FALSE(leaf[path[i]]) << "transit position implies non-leaf";
    }
  }
  for (NodeId n = 0; n < f.topo.graph.node_count(); ++n) {
    if (!present[n]) EXPECT_FALSE(leaf[n]);
  }
}

TEST(Scenario, DatasetCommunitiesRespectCleaners) {
  // In a consistent scenario the observed tuples must never carry an upper
  // field of an AS that sits strictly below a cleaner on that path.
  Fixture f;
  ScenarioConfig config;
  config.kind = ScenarioKind::kRandom;
  config.seed = 3;
  const auto truth = build_scenario(f.topo, f.substrate, config);
  for (const auto& tuple : truth.dataset) {
    bool clean_so_far = true;  // no cleaner seen at positions < i
    for (std::size_t i = 0; i < tuple.path.size(); ++i) {
      const auto node = f.topo.graph.node_of(tuple.path[i]);
      ASSERT_TRUE(node.has_value());
      if (!clean_so_far) {
        EXPECT_FALSE(bgp::contains_upper(tuple.comms, tuple.path[i]))
            << "community visible through a cleaner: " << tuple.to_string();
      }
      if (truth.roles[*node].cleaner) clean_so_far = false;
    }
  }
}

TEST(Scenario, ScenarioNames) {
  EXPECT_STREQ(to_string(ScenarioKind::kAllTf), "alltf");
  EXPECT_STREQ(to_string(ScenarioKind::kAllTc), "alltc");
  EXPECT_STREQ(to_string(ScenarioKind::kRandom), "random");
  EXPECT_STREQ(to_string(ScenarioKind::kRandomNoise), "random+noise");
  EXPECT_STREQ(to_string(ScenarioKind::kRandomP), "random-p");
  EXPECT_STREQ(to_string(ScenarioKind::kRandomPp), "random-pp");
}

}  // namespace
}  // namespace bgpcu::sim
