#include "bgp/community.h"

#include <gtest/gtest.h>

#include "bgp/asn.h"

namespace bgpcu::bgp {
namespace {

TEST(Community, RegularPackUnpack) {
  const auto c = CommunityValue::regular(64500, 666);
  EXPECT_EQ(c.packed_regular(), (64500u << 16) | 666u);
  EXPECT_EQ(CommunityValue::from_packed_regular(c.packed_regular()), c);
}

TEST(Community, ParseRegular) {
  const auto c = CommunityValue::parse("3356:123");
  EXPECT_EQ(c.kind, CommunityKind::kRegular);
  EXPECT_EQ(c.upper, 3356u);
  EXPECT_EQ(c.low1, 123u);
  EXPECT_EQ(c.to_string(), "3356:123");
}

TEST(Community, ParseLarge) {
  const auto c = CommunityValue::parse("4200000001:7:9");
  EXPECT_EQ(c.kind, CommunityKind::kLarge);
  EXPECT_EQ(c.upper, 4200000001u);
  EXPECT_EQ(c.low1, 7u);
  EXPECT_EQ(c.low2, 9u);
  EXPECT_EQ(c.to_string(), "4200000001:7:9");
}

TEST(Community, ParseErrors) {
  EXPECT_THROW(CommunityValue::parse("3356"), WireError);
  EXPECT_THROW(CommunityValue::parse("65536:1"), WireError);  // regular admin > 16 bit
  EXPECT_THROW(CommunityValue::parse("1:65536"), WireError);  // regular value > 16 bit
  EXPECT_THROW(CommunityValue::parse("a:b"), WireError);
  EXPECT_THROW(CommunityValue::parse(":1"), WireError);
  EXPECT_THROW(CommunityValue::parse("4294967296:1:1"), WireError);  // large admin > 32 bit
}

TEST(Community, WellKnownDetection) {
  EXPECT_TRUE(CommunityValue::from_packed_regular(kNoExport).is_well_known());
  EXPECT_TRUE(CommunityValue::from_packed_regular(kNoAdvertise).is_well_known());
  EXPECT_FALSE(CommunityValue::regular(3356, 1).is_well_known());
}

TEST(Community, NormalizeSortsAndDeduplicates) {
  CommunitySet set = {
      CommunityValue::regular(20, 2),
      CommunityValue::regular(10, 1),
      CommunityValue::regular(20, 2),
      CommunityValue::large(10, 1, 1),
  };
  normalize(set);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
}

TEST(Community, ContainsUpperChecksAdministratorOnly) {
  const CommunitySet set = {CommunityValue::regular(10, 1), CommunityValue::large(4200000, 5, 5)};
  EXPECT_TRUE(contains_upper(set, 10));
  EXPECT_TRUE(contains_upper(set, 4200000));
  EXPECT_FALSE(contains_upper(set, 1));
  EXPECT_FALSE(contains_upper(set, 5));
}

TEST(Community, RegularAndLargeWithSameAdminAreDistinctValues) {
  const auto r = CommunityValue::regular(100, 1);
  const auto l = CommunityValue::large(100, 1, 0);
  EXPECT_NE(r, l);
  EXPECT_NE(std::hash<CommunityValue>{}(r), std::hash<CommunityValue>{}(l));
}

TEST(Asn, WidthPredicates) {
  EXPECT_TRUE(is_16bit_asn(65535));
  EXPECT_FALSE(is_16bit_asn(65536));
  EXPECT_TRUE(is_32bit_asn(4200000000u));
}

TEST(Asn, SpecialPurposeRanges) {
  EXPECT_TRUE(is_private_asn(64512));
  EXPECT_TRUE(is_private_asn(65534));
  EXPECT_FALSE(is_private_asn(65535));  // reserved, not private
  EXPECT_TRUE(is_reserved_asn(65535));
  EXPECT_TRUE(is_private_asn(4200000000u));
  EXPECT_TRUE(is_private_asn(4294967294u));
  EXPECT_TRUE(is_reserved_asn(4294967295u));
  EXPECT_TRUE(is_reserved_asn(0));
  EXPECT_TRUE(is_reserved_asn(kAsTrans));
  EXPECT_TRUE(is_documentation_asn(64496));
  EXPECT_TRUE(is_documentation_asn(65551));
  EXPECT_FALSE(is_special_purpose_asn(3356));
  EXPECT_TRUE(is_special_purpose_asn(64512));
}

}  // namespace
}  // namespace bgpcu::bgp
