// RFC 4760 multiprotocol attribute tests (IPv6 announcements/withdrawals).
#include <gtest/gtest.h>

#include "bgp/message.h"
#include "bgp/path_attribute.h"

namespace bgpcu::bgp {
namespace {

PathAttributes round_trip(const PathAttributes& attrs) {
  ByteWriter w;
  attrs.encode(w, true);
  return PathAttributes::decode(ByteReader(w.buffer()), true);
}

MpReach sample_reach() {
  MpReach mp;
  mp.afi = Afi::kIpv6;
  mp.next_hop.assign(16, 0);
  mp.next_hop[0] = 0x2A;
  mp.nlri = {Prefix::parse("2a00:1:2::/48"), Prefix::parse("2a00:3::/32")};
  return mp;
}

TEST(MpReach, RoundTrip) {
  PathAttributes attrs;
  attrs.as_path = AsPath::from_sequence({10, 20});
  attrs.mp_reach = sample_reach();
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(MpReach, Ipv4AfiRoundTrip) {
  PathAttributes attrs;
  MpReach mp;
  mp.afi = Afi::kIpv4;
  mp.next_hop = {192, 0, 2, 1};
  mp.nlri = {Prefix::parse("203.0.113.0/24")};
  attrs.mp_reach = mp;
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(MpUnreach, RoundTrip) {
  PathAttributes attrs;
  MpUnreach mp;
  mp.afi = Afi::kIpv6;
  mp.withdrawn = {Prefix::parse("2a00:1::/32")};
  attrs.mp_unreach = mp;
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(MpReach, CoexistsWithClassicAttributes) {
  PathAttributes attrs;
  attrs.origin = Origin::kIgp;
  attrs.as_path = AsPath::from_sequence({10});
  attrs.next_hop = 0xC0000201;
  attrs.communities = {CommunityValue::regular(10, 1)};
  attrs.mp_reach = sample_reach();
  EXPECT_EQ(round_trip(attrs), attrs);
}

TEST(MpReach, BadAfiRejected) {
  ByteWriter w;
  w.u8(0x80);
  w.u8(14);  // MP_REACH_NLRI
  w.u8(4);
  w.u16(9);  // bogus AFI
  w.u8(1);
  w.u8(0);
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

TEST(MpReach, UnsupportedSafiRejected) {
  ByteWriter w;
  w.u8(0x80);
  w.u8(14);
  w.u8(4);
  w.u16(2);
  w.u8(128);  // MPLS VPN SAFI: unsupported
  w.u8(0);
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

TEST(MpReach, TruncatedNextHopRejected) {
  ByteWriter w;
  w.u8(0x80);
  w.u8(14);
  w.u8(5);
  w.u16(2);
  w.u8(1);
  w.u8(16);  // claims 16 next-hop bytes, provides one
  w.u8(0);
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

TEST(MpReach, RidesInsideUpdateMessage) {
  UpdateMessage update;
  update.attributes.as_path = AsPath::from_sequence({10, 20});
  update.attributes.mp_reach = sample_reach();
  const auto wire = update.encode(true);
  const auto decoded = UpdateMessage::decode(wire, true);
  ASSERT_TRUE(decoded.attributes.mp_reach.has_value());
  EXPECT_EQ(decoded.attributes.mp_reach->nlri, sample_reach().nlri);
  EXPECT_TRUE(decoded.nlri.empty()) << "v6 routes do not appear as classic NLRI";
}

}  // namespace
}  // namespace bgpcu::bgp
