#include "bgp/message.h"

#include <gtest/gtest.h>

namespace bgpcu::bgp {
namespace {

UpdateMessage sample_update() {
  UpdateMessage u;
  u.attributes.origin = Origin::kIgp;
  u.attributes.as_path = AsPath::from_sequence({10, 20, 30});
  u.attributes.next_hop = 0xC0000201;
  u.attributes.communities = {CommunityValue::regular(10, 1)};
  u.nlri = {Prefix::parse("203.0.113.0/24"), Prefix::parse("198.51.100.0/25")};
  return u;
}

TEST(UpdateMessage, RoundTrip) {
  const auto u = sample_update();
  const auto wire = u.encode(true);
  EXPECT_EQ(UpdateMessage::decode(wire, true), u);
}

TEST(UpdateMessage, RoundTripWithWithdrawals) {
  UpdateMessage u;
  u.withdrawn = {Prefix::parse("192.0.2.0/24")};
  const auto wire = u.encode(true);
  const auto decoded = UpdateMessage::decode(wire, true);
  EXPECT_EQ(decoded.withdrawn, u.withdrawn);
  EXPECT_TRUE(decoded.nlri.empty());
}

TEST(UpdateMessage, HeaderMarkerAndLength) {
  const auto wire = sample_update().encode(true);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(wire[static_cast<std::size_t>(i)], 0xFF);
  const auto header = peek_header(wire);
  EXPECT_EQ(header.type, MessageType::kUpdate);
  EXPECT_EQ(header.length, wire.size());
}

TEST(UpdateMessage, CorruptMarkerRejected) {
  auto wire = sample_update().encode(true);
  wire[3] = 0x00;
  EXPECT_THROW((void)UpdateMessage::decode(wire, true), WireError);
}

TEST(UpdateMessage, LengthMismatchRejected) {
  auto wire = sample_update().encode(true);
  wire.push_back(0);  // trailing garbage conflicts with header length
  EXPECT_THROW((void)UpdateMessage::decode(wire, true), WireError);
}

TEST(UpdateMessage, TruncatedBodyRejected) {
  auto wire = sample_update().encode(true);
  wire.resize(wire.size() - 3);
  EXPECT_THROW((void)UpdateMessage::decode(wire, true), WireError);
}

TEST(UpdateMessage, WrongTypeRejected) {
  const auto keepalive = encode_keepalive();
  EXPECT_THROW((void)UpdateMessage::decode(keepalive, true), WireError);
}

TEST(UpdateMessage, TwoVsFourByteEncodingDiffer) {
  UpdateMessage u;
  u.attributes.as_path = AsPath::from_sequence({10, 4200000000u});
  const auto wire2 = u.encode(false);
  const auto wire4 = u.encode(true);
  EXPECT_NE(wire2, wire4);
  const auto decoded2 = UpdateMessage::decode(wire2, false);
  EXPECT_EQ(decoded2.attributes.as_path->sequence_asns(), (std::vector<Asn>{10, kAsTrans}));
}

TEST(OpenMessage, RoundTrip) {
  OpenMessage open;
  open.my_asn = 64999;
  open.hold_time = 90;
  open.bgp_id = 0x0A000001;
  EXPECT_EQ(OpenMessage::decode(open.encode()), open);
}

TEST(Keepalive, HeaderOnly) {
  const auto wire = encode_keepalive();
  EXPECT_EQ(wire.size(), 19u);
  EXPECT_EQ(peek_header(wire).type, MessageType::kKeepalive);
}

TEST(PeekHeader, RejectsShortBuffer) {
  const std::vector<std::uint8_t> tiny(5, 0xFF);
  EXPECT_THROW((void)peek_header(tiny), WireError);
}

TEST(PeekHeader, RejectsUnknownType) {
  std::vector<std::uint8_t> wire(19, 0xFF);
  wire[16] = 0;
  wire[17] = 19;
  wire[18] = 9;  // bogus type
  EXPECT_THROW((void)peek_header(wire), WireError);
}

}  // namespace
}  // namespace bgpcu::bgp
