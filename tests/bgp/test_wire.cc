#include "bgp/wire.h"

#include <gtest/gtest.h>

namespace bgpcu::bgp {
namespace {

TEST(ByteWriter, BigEndianEncoding) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0Full);
  const auto& buf = w.buffer();
  ASSERT_EQ(buf.size(), 15u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
  EXPECT_EQ(buf[2], 0x03);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(buf[6], 0x07);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(buf[14], 0x0F);
}

TEST(ByteReaderWriter, RoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x12345678);
  w.u64(0xFEDCBA9876543210ull);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_EQ(r.u64(), 0xFEDCBA9876543210ull);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteReader, UnderrunThrows) {
  const std::uint8_t data[] = {1, 2};
  ByteReader r(data);
  EXPECT_THROW((void)r.u32(), WireError);
  EXPECT_EQ(r.remaining(), 2u) << "failed read must not consume";
  (void)r.u16();
  EXPECT_THROW((void)r.u8(), WireError);
}

TEST(ByteReader, SubReaderIsBounded) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5};
  ByteReader r(data);
  ByteReader sub = r.sub(2);
  EXPECT_EQ(sub.u8(), 1);
  EXPECT_EQ(sub.u8(), 2);
  EXPECT_THROW((void)sub.u8(), WireError);
  EXPECT_EQ(r.u8(), 3) << "outer reader resumes after the sub-span";
}

TEST(ByteReader, SkipAndPosition) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  ByteReader r(data);
  r.skip(3);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_THROW(r.skip(2), WireError);
}

TEST(ByteWriter, PlaceholderPatching) {
  ByteWriter w;
  const auto off16 = w.placeholder(2);
  w.u8(0x42);
  const auto off32 = w.placeholder(4);
  w.patch_u16(off16, 0xBEEF);
  w.patch_u32(off32, 0xCAFEBABE);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u8(), 0x42);
  EXPECT_EQ(r.u32(), 0xCAFEBABEu);
}

TEST(ByteReader, BytesView) {
  const std::uint8_t data[] = {9, 8, 7};
  ByteReader r(data);
  const auto view = r.bytes(2);
  EXPECT_EQ(view[0], 9);
  EXPECT_EQ(view[1], 8);
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace bgpcu::bgp
