#include "bgp/path_attribute.h"

#include <gtest/gtest.h>

namespace bgpcu::bgp {
namespace {

PathAttributes round_trip(const PathAttributes& attrs, bool four_byte) {
  ByteWriter w;
  attrs.encode(w, four_byte);
  return PathAttributes::decode(ByteReader(w.buffer()), four_byte);
}

TEST(AsPath, SequenceHelpers) {
  auto p = AsPath::from_sequence({10, 20, 30});
  EXPECT_FALSE(p.has_as_set());
  EXPECT_EQ(p.sequence_asns(), (std::vector<Asn>{10, 20, 30}));
  EXPECT_EQ(p.first_asn(), 10u);
  p.prepend(5);
  EXPECT_EQ(p.first_asn(), 5u);
  EXPECT_EQ(p.to_string(), "5 10 20 30");
}

TEST(AsPath, AsSetHandling) {
  AsPath p({{SegmentType::kAsSequence, {10, 20}}, {SegmentType::kAsSet, {30, 40}}});
  EXPECT_TRUE(p.has_as_set());
  EXPECT_EQ(p.sequence_asns(), (std::vector<Asn>{10, 20})) << "sets dropped from flattening";
  EXPECT_EQ(p.to_string(), "10 20 {30,40}");
}

TEST(AsPath, FourByteRoundTrip) {
  const auto p = AsPath::from_sequence({10, 4200000000u, 30});
  ByteWriter w;
  p.encode(w, /*four_byte=*/true);
  EXPECT_EQ(AsPath::decode(ByteReader(w.buffer()), true), p);
}

TEST(AsPath, TwoByteEncodingSubstitutesAsTrans) {
  const auto p = AsPath::from_sequence({10, 4200000000u});
  ByteWriter w;
  p.encode(w, /*four_byte=*/false);
  const auto decoded = AsPath::decode(ByteReader(w.buffer()), false);
  EXPECT_EQ(decoded.sequence_asns(), (std::vector<Asn>{10, kAsTrans}));
}

TEST(AsPath, DecodeRejectsUnknownSegmentType) {
  const std::uint8_t bogus[] = {9, 1, 0, 10};
  EXPECT_THROW((void)AsPath::decode(ByteReader(bogus), false), WireError);
}

TEST(AsPath, DecodeRejectsTruncatedSegment) {
  const std::uint8_t bogus[] = {2, 3, 0, 10};  // claims 3 ASNs, has half of one
  EXPECT_THROW((void)AsPath::decode(ByteReader(bogus), true), WireError);
}

TEST(PathAttributes, FullRoundTrip) {
  PathAttributes attrs;
  attrs.origin = Origin::kIgp;
  attrs.as_path = AsPath::from_sequence({10, 20, 4200000000u});
  attrs.next_hop = 0xC0000201;
  attrs.med = 50;
  attrs.local_pref = 100;
  attrs.atomic_aggregate = true;
  attrs.aggregator = {20, 0x0A000001};
  attrs.communities = {CommunityValue::regular(10, 1), CommunityValue::regular(20, 2)};
  attrs.large_communities = {CommunityValue::large(4200000000u, 1, 2)};
  EXPECT_EQ(round_trip(attrs, true), attrs);
}

TEST(PathAttributes, MinimalRoundTrip) {
  PathAttributes attrs;
  attrs.as_path = AsPath::from_sequence({10});
  EXPECT_EQ(round_trip(attrs, true), attrs);
  EXPECT_EQ(round_trip(attrs, false), attrs);
}

TEST(PathAttributes, UnknownAttributePreserved) {
  PathAttributes attrs;
  attrs.unknown.push_back(UnknownAttribute{0xC0, 99, {1, 2, 3}});
  const auto decoded = round_trip(attrs, true);
  ASSERT_EQ(decoded.unknown.size(), 1u);
  EXPECT_EQ(decoded.unknown[0].type, 99);
  EXPECT_EQ(decoded.unknown[0].body, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(PathAttributes, ExtendedLengthForLargeBodies) {
  PathAttributes attrs;
  for (std::uint16_t i = 0; i < 200; ++i) {
    attrs.communities.push_back(CommunityValue::regular(100, i));  // 800 bytes > 255
  }
  EXPECT_EQ(round_trip(attrs, true), attrs);
}

TEST(PathAttributes, AllCommunitiesMergesBothVariants) {
  PathAttributes attrs;
  attrs.communities = {CommunityValue::regular(10, 1)};
  attrs.large_communities = {CommunityValue::large(20, 2, 3)};
  const auto all = attrs.all_communities();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(contains_upper(all, 10));
  EXPECT_TRUE(contains_upper(all, 20));
}

TEST(PathAttributes, DecodeRejectsMisalignedCommunities) {
  ByteWriter w;
  w.u8(0xC0);  // optional transitive
  w.u8(8);     // COMMUNITIES
  w.u8(3);     // not a multiple of 4
  w.u8(1);
  w.u8(2);
  w.u8(3);
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

TEST(PathAttributes, DecodeRejectsMisalignedLargeCommunities) {
  ByteWriter w;
  w.u8(0xC0);
  w.u8(32);  // LARGE_COMMUNITIES
  w.u8(8);   // not a multiple of 12
  for (int i = 0; i < 8; ++i) w.u8(0);
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

TEST(PathAttributes, DecodeRejectsBadOrigin) {
  ByteWriter w;
  w.u8(0x40);
  w.u8(1);  // ORIGIN
  w.u8(1);
  w.u8(9);  // invalid value
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

TEST(PathAttributes, InnerLengthCannotEscapeAttributeBody) {
  // A COMMUNITIES attribute whose declared length exceeds remaining bytes.
  ByteWriter w;
  w.u8(0xC0);
  w.u8(8);
  w.u8(8);  // claims 8 bytes
  w.u32(0x000A0001);  // provides only 4
  EXPECT_THROW((void)PathAttributes::decode(ByteReader(w.buffer()), true), WireError);
}

}  // namespace
}  // namespace bgpcu::bgp
