#include "bgp/prefix.h"

#include <gtest/gtest.h>

namespace bgpcu::bgp {
namespace {

TEST(Prefix, ParseAndFormatIpv4) {
  const auto p = Prefix::parse("192.0.2.0/24");
  EXPECT_EQ(p.afi(), Afi::kIpv4);
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
  EXPECT_EQ(p.ipv4_addr(), 0xC0000200u);
}

TEST(Prefix, NormalizationClearsHostBits) {
  const auto p = Prefix::ipv4(0xC0000207u, 24);  // 192.0.2.7/24
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
  EXPECT_EQ(p, Prefix::parse("192.0.2.0/24"));
}

TEST(Prefix, PartialOctetMasking) {
  const auto p = Prefix::ipv4(0xC00002FFu, 28);  // low 4 bits cleared
  EXPECT_EQ(p.ipv4_addr(), 0xC00002F0u);
}

TEST(Prefix, ContainsHierarchy) {
  const auto block = Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(block.contains(Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(block.contains(block));
  EXPECT_FALSE(block.contains(Prefix::parse("11.0.0.0/16")));
  EXPECT_FALSE(Prefix::parse("10.1.0.0/16").contains(block)) << "less specific not contained";
}

TEST(Prefix, ContainsRespectsAfi) {
  const auto v4 = Prefix::parse("10.0.0.0/8");
  const auto v6 = Prefix::parse("2001:db8::/32");
  EXPECT_FALSE(v4.contains(v6));
  EXPECT_FALSE(v6.contains(v4));
}

TEST(Prefix, ParseIpv6Compressed) {
  const auto p = Prefix::parse("2001:db8::/32");
  EXPECT_EQ(p.afi(), Afi::kIpv6);
  EXPECT_EQ(p.length(), 32);
  EXPECT_EQ(p.bytes()[0], 0x20);
  EXPECT_EQ(p.bytes()[1], 0x01);
  EXPECT_EQ(p.bytes()[2], 0x0d);
  EXPECT_EQ(p.bytes()[3], 0xb8);
}

TEST(Prefix, ParseIpv6Full) {
  const auto p = Prefix::parse("2001:db8:0:0:0:0:0:1/128");
  EXPECT_EQ(p.length(), 128);
  EXPECT_EQ(p.bytes()[15], 0x01);
}

TEST(Prefix, ParseErrors) {
  EXPECT_THROW(Prefix::parse("10.0.0.0"), WireError);        // no length
  EXPECT_THROW(Prefix::parse("10.0.0/8"), WireError);        // short quad
  EXPECT_THROW(Prefix::parse("10.0.0.256/8"), WireError);    // octet range
  EXPECT_THROW(Prefix::parse("10.0.0.0/33"), WireError);     // length range
  EXPECT_THROW(Prefix::parse("2001:db8::/129"), WireError);  // v6 length range
  EXPECT_THROW(Prefix::parse("g::/32"), WireError);          // bad hex
}

TEST(Prefix, NlriRoundTripUsesMinimalOctets) {
  const auto p = Prefix::parse("203.0.113.0/25");
  ByteWriter w;
  p.encode_nlri(w);
  EXPECT_EQ(w.size(), 1u + 4u);  // 25 bits -> 4 octets
  ByteReader r(w.buffer());
  EXPECT_EQ(Prefix::decode_nlri(r, Afi::kIpv4), p);

  const auto slash8 = Prefix::parse("10.0.0.0/8");
  ByteWriter w8;
  slash8.encode_nlri(w8);
  EXPECT_EQ(w8.size(), 2u);  // 1 length + 1 address octet
}

TEST(Prefix, NlriDefaultRoute) {
  const auto p = Prefix::ipv4(0, 0);
  ByteWriter w;
  p.encode_nlri(w);
  EXPECT_EQ(w.size(), 1u);
  ByteReader r(w.buffer());
  EXPECT_EQ(Prefix::decode_nlri(r, Afi::kIpv4), p);
}

TEST(Prefix, NlriRejectsOversizedLength) {
  const std::uint8_t bogus[] = {33, 0x0A, 0x00, 0x00, 0x00, 0x00};
  ByteReader r(bogus);
  EXPECT_THROW((void)Prefix::decode_nlri(r, Afi::kIpv4), WireError);
}

TEST(Prefix, OrderingAndHash) {
  const auto a = Prefix::parse("10.0.0.0/8");
  const auto b = Prefix::parse("10.0.0.0/9");
  EXPECT_NE(a, b);
  EXPECT_NE(std::hash<Prefix>{}(a), std::hash<Prefix>{}(b));
}

}  // namespace
}  // namespace bgpcu::bgp
