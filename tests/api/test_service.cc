// Service facade unit tests: typed queries, the filtered subscription feed,
// the event-log ring buffer, and replay for late subscribers.
#include "api/service.h"

#include <gtest/gtest.h>

#include "stream/delta.h"

namespace bgpcu::api {
namespace {

/// One observation: `peer` -> 20, tagging its own community iff `tags`.
core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

TEST(ServiceQuery, StatsReflectEngineState) {
  Service service({.stream = {.shards = 4, .window_epochs = 2}});
  auto response = service.query({.kind = QueryKind::kStats});
  ASSERT_TRUE(response.stats.has_value());
  EXPECT_EQ(response.stats->epoch, 0u);
  EXPECT_EQ(response.stats->live_tuples, 0u);
  EXPECT_EQ(response.stats->shards, 4u);
  EXPECT_EQ(response.stats->window_epochs, 2u);
  EXPECT_EQ(response.stats->subscriptions, 0u);

  (void)service.ingest({tuple(10, 20, true), tuple(11, 20, false)});
  (void)service.advance_epoch();
  (void)service.subscribe({}, [](const EpochDelta&) {});
  response = service.query({.kind = QueryKind::kStats});
  EXPECT_EQ(response.stats->epoch, 1u);
  EXPECT_EQ(response.stats->live_tuples, 2u);
  EXPECT_EQ(response.stats->subscriptions, 1u);
}

TEST(ServiceQuery, ClassOfMatchesSnapshot) {
  Service service;
  (void)service.ingest({tuple(10, 20, true), tuple(11, 20, false)});

  const auto snapshot = service.query({.kind = QueryKind::kSnapshot});
  ASSERT_TRUE(snapshot.snapshot != nullptr);
  const auto one = service.query({.kind = QueryKind::kClassOf, .asn = 10});
  ASSERT_TRUE(one.asn_class.has_value());
  EXPECT_EQ(one.asn_class->asn, 10u);
  EXPECT_EQ(one.asn_class->usage, snapshot.snapshot->usage(10));
  EXPECT_EQ(one.asn_class->counters, snapshot.snapshot->counters(10));

  // An AS the engine never saw: zero counters, none/none class.
  const auto unseen = service.query({.kind = QueryKind::kClassOf, .asn = 999});
  EXPECT_EQ(unseen.asn_class->usage.code(), "nn");
  EXPECT_EQ(unseen.asn_class->counters, core::UsageCounters{});
}

TEST(ServiceQuery, LiveCountersSeePeerColumnEvidenceWithoutSweep) {
  Service service;
  (void)service.ingest({tuple(10, 20, true), tuple(10, 21, true), tuple(11, 20, false)});

  const auto tagging = service.query({.kind = QueryKind::kLiveCounters, .asn = 10});
  ASSERT_TRUE(tagging.asn_class.has_value());
  EXPECT_EQ(tagging.asn_class->counters.t, 2u);
  EXPECT_EQ(tagging.asn_class->counters.s, 0u);
  EXPECT_EQ(tagging.asn_class->usage.tagging, core::TaggingClass::kTagger);

  const auto silent = service.query({.kind = QueryKind::kLiveCounters, .asn = 11});
  EXPECT_EQ(silent.asn_class->counters.s, 1u);
  EXPECT_EQ(silent.asn_class->usage.tagging, core::TaggingClass::kSilent);
}

/// Flips AS 10 from tagger to silent across two window-1 epochs.
class ServiceFeedTest : public ::testing::Test {
 protected:
  ServiceFeedTest() : service_({.stream = {.window_epochs = 1}}) {}

  void flip_epochs() {
    (void)service_.ingest({tuple(10, 20, true)});  // AS 10: tn
    (void)service_.publish();
    (void)service_.advance_epoch();
    (void)service_.ingest({tuple(10, 20, false)});  // AS 10: sn (old tuple aged out)
    (void)service_.publish();
  }

  Service service_;
};

TEST_F(ServiceFeedTest, SubscriberReceivesEpochBatchedChanges) {
  std::vector<EpochDelta> received;
  (void)service_.subscribe({}, [&](const EpochDelta& d) { received.push_back(d); });
  flip_epochs();

  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].epoch, 0u);
  ASSERT_EQ(received[0].changes.size(), 1u);
  EXPECT_EQ(received[0].changes[0].before.code(), "nn");
  EXPECT_EQ(received[0].changes[0].after.code(), "tn");
  EXPECT_EQ(received[1].epoch, 1u);
  ASSERT_EQ(received[1].changes.size(), 1u);
  EXPECT_EQ(received[1].changes[0].before.code(), "tn");
  EXPECT_EQ(received[1].changes[0].after.code(), "sn");
}

TEST_F(ServiceFeedTest, TransitionFilterSelectsMatchingChangesOnly) {
  std::vector<EpochDelta> received;
  (void)service_.subscribe(SubscriptionFilter::transition("tn->sn"),
                           [&](const EpochDelta& d) { received.push_back(d); });
  flip_epochs();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].epoch, 1u);
  ASSERT_EQ(received[0].changes.size(), 1u);
  EXPECT_EQ(received[0].changes[0].asn, 10u);
}

TEST_F(ServiceFeedTest, WatchlistFilterIgnoresOtherAses) {
  std::vector<EpochDelta> hits;
  std::vector<EpochDelta> misses;
  SubscriptionFilter watching;
  watching.watch = {10};
  SubscriptionFilter elsewhere;
  elsewhere.watch = {777};
  (void)service_.subscribe(watching, [&](const EpochDelta& d) { hits.push_back(d); });
  (void)service_.subscribe(elsewhere, [&](const EpochDelta& d) { misses.push_back(d); });
  flip_epochs();

  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(misses.empty());  // never called with an empty batch
}

TEST_F(ServiceFeedTest, PublishWithoutChangeIsEmptyAndUnlogged) {
  flip_epochs();
  const auto before = service_.replay(0).size();
  const auto delta = service_.publish();  // nothing changed since last publish
  EXPECT_TRUE(delta.changes.empty());
  EXPECT_EQ(service_.replay(0).size(), before);
}

TEST_F(ServiceFeedTest, UnsubscribeStopsDelivery) {
  std::vector<EpochDelta> received;
  const auto id = service_.subscribe({}, [&](const EpochDelta& d) { received.push_back(d); });
  (void)service_.ingest({tuple(10, 20, true)});
  (void)service_.publish();
  ASSERT_EQ(received.size(), 1u);

  EXPECT_TRUE(service_.unsubscribe(id));
  EXPECT_FALSE(service_.unsubscribe(id));
  (void)service_.advance_epoch();
  (void)service_.ingest({tuple(10, 20, false)});
  (void)service_.publish();
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(ServiceFeedTest, CallbackMayUnsubscribeReentrantly) {
  SubscriptionId id = 0;
  int calls = 0;
  id = service_.subscribe({}, [&](const EpochDelta&) {
    ++calls;
    EXPECT_TRUE(service_.unsubscribe(id));
  });
  flip_epochs();
  EXPECT_EQ(calls, 1);
}

TEST_F(ServiceFeedTest, LateSubscriberReplaysFromEventLog) {
  flip_epochs();

  std::vector<EpochDelta> replayed;
  (void)service_.subscribe({}, [&](const EpochDelta& d) { replayed.push_back(d); },
                           /*replay_from=*/0);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].epoch, 0u);
  EXPECT_EQ(replayed[1].epoch, 1u);

  std::vector<EpochDelta> partial;
  (void)service_.subscribe(SubscriptionFilter{}, [&](const EpochDelta& d) { partial.push_back(d); },
                           /*replay_from=*/1);
  ASSERT_EQ(partial.size(), 1u);
  EXPECT_EQ(partial[0].epoch, 1u);

  EXPECT_EQ(service_.replay_horizon(), std::optional<stream::Epoch>(0));
}

TEST(EventLog, RingBufferEvictsOldestAndFiltersByEpoch) {
  EventLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  EXPECT_EQ(log.oldest_epoch(), std::nullopt);
  for (stream::Epoch e = 1; e <= 5; ++e) {
    log.push({e, {stream::ClassChange{static_cast<bgp::Asn>(e), {}, {}}}});
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.oldest_epoch(), std::optional<stream::Epoch>(3));
  const auto tail = log.since(4);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].epoch, 4u);
  EXPECT_EQ(tail[1].epoch, 5u);
  EXPECT_TRUE(log.since(6).empty());
}

TEST(EventLog, ServiceHonorsConfiguredCapacity) {
  Service service({.stream = {.window_epochs = 1}, .event_log_capacity = 1});
  (void)service.ingest({tuple(10, 20, true)});
  (void)service.publish();
  (void)service.advance_epoch();
  (void)service.ingest({tuple(10, 20, false)});
  (void)service.publish();
  const auto retained = service.replay(0);
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].epoch, 1u);
  EXPECT_EQ(service.replay_horizon(), std::optional<stream::Epoch>(1));
}

// --- Ring-buffer wraparound edges: the log has evicted batches, and
// --- subscribers arrive exactly at, before, or past the retention boundary.

/// Publishes epochs 0..n-1, each flipping AS 10's class so every epoch
/// produces a logged batch (window 1: tags alternate -> tn/sn alternate).
void publish_epochs(Service& service, stream::Epoch n) {
  for (stream::Epoch e = 0; e < n; ++e) {
    if (e > 0) (void)service.advance_epoch();
    (void)service.ingest({tuple(10, 20, e % 2 == 0)});
    (void)service.publish();
  }
}

TEST(EventLogWraparound, SubscriberJoiningExactlyAtEvictionBoundaryGetsFullTail) {
  Service service({.stream = {.window_epochs = 1}, .event_log_capacity = 3});
  publish_epochs(service, 5);  // epochs 0,1 evicted; 2,3,4 retained

  ASSERT_EQ(service.replay_horizon(), std::optional<stream::Epoch>(2));
  std::vector<EpochDelta> replayed;
  (void)service.subscribe({}, [&](const EpochDelta& d) { replayed.push_back(d); },
                          /*replay_from=*/*service.replay_horizon());
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed.front().epoch, 2u);
  EXPECT_EQ(replayed.back().epoch, 4u);
}

TEST(EventLogWraparound, ReplayFromBeforeHorizonIsLossyAndDetectable) {
  Service service({.stream = {.window_epochs = 1}, .event_log_capacity = 2});
  publish_epochs(service, 5);  // only epochs 3,4 retained

  std::vector<EpochDelta> replayed;
  (void)service.subscribe({}, [&](const EpochDelta& d) { replayed.push_back(d); },
                          /*replay_from=*/0);
  // The evicted epochs are silently gone from the delivery...
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].epoch, 3u);
  // ...but the caller can detect the gap: the horizon is past its request.
  EXPECT_GT(*service.replay_horizon(), 0u);
}

TEST(EventLogWraparound, ReplayFromFutureEpochDeliversNothingButSubscribes) {
  Service service({.stream = {.window_epochs = 1}, .event_log_capacity = 4});
  publish_epochs(service, 3);

  std::vector<EpochDelta> received;
  (void)service.subscribe({}, [&](const EpochDelta& d) { received.push_back(d); },
                          /*replay_from=*/100);  // beyond every retained epoch
  EXPECT_TRUE(received.empty());

  // The subscription is live: the next published epoch arrives normally.
  (void)service.advance_epoch();
  (void)service.ingest({tuple(10, 20, false)});
  (void)service.publish();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].epoch, 3u);
}

TEST(EventLogWraparound, CapacityOneRingHoldsExactlyTheNewestBatch) {
  EventLog log(1);
  for (stream::Epoch e = 0; e < 10; ++e) {
    log.push({e, {stream::ClassChange{static_cast<bgp::Asn>(e + 1), {}, {}}}});
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.oldest_epoch(), std::optional<stream::Epoch>(e));
    // since() straddling the boundary: exactly-at keeps it, one-past drops it.
    EXPECT_EQ(log.since(e).size(), 1u);
    EXPECT_TRUE(log.since(e + 1).empty());
  }
}

TEST(EventLogWraparound, UnloggedEmptyPublishesDoNotOccupyRingSlots) {
  Service service({.stream = {.window_epochs = 1}, .event_log_capacity = 2});
  publish_epochs(service, 2);
  // Re-publishing without changes must not push empty batches that would
  // evict real history from a full ring.
  (void)service.publish();
  (void)service.publish();
  const auto retained = service.replay(0);
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0].epoch, 0u);
  EXPECT_EQ(retained[1].epoch, 1u);
  EXPECT_FALSE(retained[0].changes.empty());
}

TEST(SubscriptionFilterSpec, TransitionParsingAndMatching) {
  const auto filter = SubscriptionFilter::transition("*->tc");
  EXPECT_EQ(filter.from, "*");
  EXPECT_EQ(filter.to, "tc");
  stream::ClassChange change;
  change.asn = 1;
  change.before = {core::TaggingClass::kTagger, core::ForwardingClass::kForward};
  change.after = {core::TaggingClass::kTagger, core::ForwardingClass::kCleaner};
  EXPECT_TRUE(filter.matches(change));
  change.after = {core::TaggingClass::kTagger, core::ForwardingClass::kForward};
  EXPECT_FALSE(filter.matches(change));

  EXPECT_THROW((void)SubscriptionFilter::transition("tf"), std::invalid_argument);
  EXPECT_THROW((void)SubscriptionFilter::transition("xx->tc"), std::invalid_argument);
  EXPECT_THROW((void)SubscriptionFilter::transition("tf->"), std::invalid_argument);
}

}  // namespace
}  // namespace bgpcu::api
