// Wire-format tests: randomized round-trip properties (encode -> decode is
// bit-identical, including the re-encoded bytes and the text-DB
// serialization of the decoded result), golden binary fixtures checked into
// tests/data/ (which pin the v1 byte layout — regenerate only on a
// deliberate format bump via BGPCU_REGEN_GOLDEN=1), and corrupted-input
// behavior: truncation at every prefix, bad magic, future versions, and
// byte flips must throw WireFormatError (or decode cleanly), never crash.
#include "api/wire.h"

#include <gtest/gtest.h>

#include <memory>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <sstream>
#include <string_view>

#include "core/database.h"
#include "obs/metrics.h"
#include "topology/rng.h"

namespace bgpcu::api {
namespace {

namespace fs = std::filesystem;

fs::path data_dir() { return fs::path(BGPCU_TEST_DATA_DIR); }

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << "missing fixture " << path;
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  return bytes;
}

core::InferenceResult random_result(topology::Rng& rng) {
  core::CounterMap counters;
  const std::size_t count = rng.below(200);
  for (std::size_t i = 0; i < count; ++i) {
    // Mix of dense low ASNs and 32-bit ones; counter magnitudes spanning the
    // varint length classes up to multi-byte 64-bit values.
    const bgp::Asn asn = rng.chance(0.2)
                             ? 0xF0000000u + static_cast<bgp::Asn>(rng.below(1 << 16))
                             : static_cast<bgp::Asn>(rng.below(100000));
    core::UsageCounters k;
    k.t = rng.chance(0.8) ? rng.below(1u << 14) : 0;
    k.s = rng.chance(0.3) ? (1ull << 40) + rng.below(1 << 20) : rng.below(128);
    k.f = rng.below(1u << 10);
    k.c = rng.below(2) == 0 ? 0 : rng.below(1u << 30);
    counters[asn] = k;
  }
  const auto th = core::Thresholds{0.5 + rng.below(50) / 100.0, 0.5 + rng.below(50) / 100.0,
                                   0.5 + rng.below(50) / 100.0, 0.5 + rng.below(50) / 100.0};
  return core::InferenceResult(std::move(counters), th, rng.below(8));
}

core::UsageClass class_of(unsigned tagging, unsigned forwarding) {
  return {static_cast<core::TaggingClass>(tagging),
          static_cast<core::ForwardingClass>(forwarding)};
}

EpochDelta random_delta(topology::Rng& rng) {
  EpochDelta delta;
  delta.epoch = rng.below(1u << 20);
  const std::size_t count = rng.below(100);
  std::uint64_t asn = 0;
  for (std::size_t i = 0; i < count; ++i) {
    asn += 1 + rng.below(1 << 20);  // strictly ascending, as diff emits them
    if (asn > 0xFFFFFFFFull) break;
    stream::ClassChange change;
    change.asn = static_cast<bgp::Asn>(asn);
    change.before = class_of(rng.below(4), rng.below(4));
    change.after = class_of(rng.below(4), rng.below(4));
    delta.changes.push_back(change);
  }
  return delta;
}

std::string text_db(const core::InferenceResult& result) {
  std::stringstream out;
  core::write_database(out, result);
  return out.str();
}

// ------------------------------------------------------------ round trips --

TEST(WireRoundTrip, RandomSnapshotsSurviveBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    topology::Rng rng(seed);
    const auto original = random_result(rng);
    const auto frame = encode_snapshot(original);
    const auto decoded = decode_snapshot(frame);

    EXPECT_EQ(decoded.counter_map(), original.counter_map()) << "seed " << seed;
    EXPECT_EQ(decoded.columns_swept(), original.columns_swept());
    EXPECT_EQ(decoded.thresholds().tagger, original.thresholds().tagger);
    EXPECT_EQ(decoded.thresholds().cleaner, original.thresholds().cleaner);
    // Bit-identical: re-encoding the decoded result reproduces the frame.
    EXPECT_EQ(encode_snapshot(decoded), frame) << "seed " << seed;
    // Acceptance contract: the decoded result's text-DB serialization is
    // byte-identical to the original's.
    EXPECT_EQ(text_db(decoded), text_db(original)) << "seed " << seed;
  }
}

TEST(WireRoundTrip, RandomDeltaBatchesSurviveBitIdentically) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    topology::Rng rng(seed * 31 + 7);
    const auto original = random_delta(rng);
    const auto frame = encode_delta_batch(original);
    const auto decoded = decode_delta_batch(frame);
    EXPECT_EQ(decoded, original) << "seed " << seed;
    EXPECT_EQ(encode_delta_batch(decoded), frame) << "seed " << seed;
  }
}

TEST(WireRoundTrip, EmptySnapshotAndDelta) {
  const core::InferenceResult empty({}, core::Thresholds{}, 0);
  const auto decoded = decode_snapshot(encode_snapshot(empty));
  EXPECT_TRUE(decoded.counter_map().empty());
  EXPECT_EQ(text_db(decoded), text_db(empty));

  const EpochDelta none{7, {}};
  EXPECT_EQ(decode_delta_batch(encode_delta_batch(none)), none);
}

TEST(WireRoundTrip, QueryRequests) {
  for (const auto kind : {QueryKind::kClassOf, QueryKind::kSnapshot,
                          QueryKind::kLiveCounters, QueryKind::kStats,
                          QueryKind::kMetrics}) {
    QueryRequest request{kind, 4200000001u};
    const auto decoded = decode_query_request(encode_query_request(request));
    EXPECT_EQ(decoded.kind, kind);
    if (kind == QueryKind::kClassOf || kind == QueryKind::kLiveCounters) {
      EXPECT_EQ(decoded.asn, 4200000001u);
    }
  }
}

TEST(WireRoundTrip, QueryResponses) {
  QueryResponse per_asn;
  per_asn.kind = QueryKind::kClassOf;
  per_asn.asn_class = AsnClass{3356, class_of(1, 1), {1042, 3, 977, 0}};
  auto decoded = decode_query_response(encode_query_response(per_asn));
  EXPECT_EQ(decoded.asn_class, per_asn.asn_class);

  QueryResponse stats;
  stats.kind = QueryKind::kStats;
  // All thirteen fields nonzero, so a dropped/reordered varint cannot
  // round-trip clean (the snapshot-path fields rode in after PR 4).
  stats.stats = ServiceStats{12,  168000, 42,  8,      3,       2,      57,
                             900, 12345,  6,   1,      271828,  3141592};
  decoded = decode_query_response(encode_query_response(stats));
  EXPECT_EQ(decoded.stats, stats.stats);

  topology::Rng rng(99);
  QueryResponse snap;
  snap.kind = QueryKind::kSnapshot;
  snap.snapshot = std::make_shared<const core::InferenceResult>(random_result(rng));
  decoded = decode_query_response(encode_query_response(snap));
  ASSERT_TRUE(decoded.snapshot != nullptr);
  EXPECT_EQ(decoded.snapshot->counter_map(), snap.snapshot->counter_map());
}

TEST(WireRoundTrip, FrameReaderSplitsConcatenatedFrames) {
  topology::Rng rng(5);
  const auto snapshot = random_result(rng);
  const auto delta = random_delta(rng);
  auto log = encode_snapshot(snapshot);
  const auto delta_frame = encode_delta_batch(delta);
  log.insert(log.end(), delta_frame.begin(), delta_frame.end());

  FrameReader frames(log);
  const auto first = frames.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, FrameType::kSnapshot);
  const auto second = frames.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, FrameType::kDeltaBatch);
  EXPECT_FALSE(frames.next().has_value());
  EXPECT_EQ(first->size + second->size, log.size());
}

// ---------------------------------------------------------------- goldens --

/// The pinned v1 sample artifacts. Changing the wire layout breaks these
/// fixtures on purpose: bump kWireVersion and regenerate deliberately.
core::InferenceResult golden_snapshot() {
  core::CounterMap counters;
  counters[1299] = {0, 500, 0, 120};
  counters[3356] = {1042, 3, 977, 0};
  counters[13335] = {10, 1, 0, 0};
  counters[4200000001u] = {7, 0, 0, 0};
  return core::InferenceResult(std::move(counters),
                               core::Thresholds{0.99, 0.98, 0.97, 0.96}, 5);
}

EpochDelta golden_delta() {
  EpochDelta delta;
  delta.epoch = 42;
  delta.changes.push_back({3356, class_of(1, 1), class_of(1, 2)});         // tf->tc
  delta.changes.push_back({65000, class_of(0, 0), class_of(1, 1)});        // nn->tf
  delta.changes.push_back({4200000001u, class_of(3, 0), class_of(0, 0)});  // un->nn
  return delta;
}

/// The pinned metrics scrape: one family of every metric type, labeled and
/// unlabeled series, a fractional gauge (collector output), a histogram with
/// empty buckets.
obs::Snapshot golden_metrics() {
  obs::Snapshot snapshot;
  obs::Family queries;
  queries.name = "bgpcu_api_queries_total";
  queries.help = "Service queries answered by kind";
  queries.type = obs::MetricType::kCounter;
  queries.series.push_back({"kind=\"snapshot\"", 3, std::nullopt});
  queries.series.push_back({"kind=\"stats\"", 12, std::nullopt});
  snapshot.push_back(std::move(queries));

  obs::Family live;
  live.name = "bgpcu_stream_live_tuples";
  live.help = "Live unique tuples across shards";
  live.type = obs::MetricType::kGauge;
  live.series.push_back({"", 168036.5, std::nullopt});
  snapshot.push_back(std::move(live));

  obs::Family locked;
  locked.name = "bgpcu_snapshot_locked_ns";
  locked.help = "Locked-phase time per sweep";
  locked.type = obs::MetricType::kHistogram;
  obs::HistogramData hist;
  hist.buckets = {0, 1, 2, 0, 5};
  hist.count = 8;
  hist.sum = 31415;
  locked.series.push_back({"", 0, std::move(hist)});
  snapshot.push_back(std::move(locked));
  return snapshot;
}

std::vector<std::uint8_t> encode_golden_metrics_response() {
  QueryResponse response;
  response.kind = QueryKind::kMetrics;
  response.metrics = golden_metrics();
  return encode_query_response(response);
}

TEST(WireRoundTrip, MetricsResponseSurvives) {
  const auto decoded = decode_query_response(encode_golden_metrics_response());
  EXPECT_EQ(decoded.kind, QueryKind::kMetrics);
  ASSERT_TRUE(decoded.metrics.has_value());
  EXPECT_EQ(*decoded.metrics, golden_metrics());
}

TEST(WireRoundTrip, EmptyMetricsResponseSurvives) {
  QueryResponse response;
  response.kind = QueryKind::kMetrics;
  response.metrics = obs::Snapshot{};
  const auto decoded = decode_query_response(encode_query_response(response));
  ASSERT_TRUE(decoded.metrics.has_value());
  EXPECT_TRUE(decoded.metrics->empty());
}

void write_bytes(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << "cannot write fixture " << path;
}

TEST(WireGolden, SnapshotFixtureIsStable) {
  const auto path = data_dir() / "golden_snapshot_v1.wire";
  const auto expected = encode_snapshot(golden_snapshot());
  if (std::getenv("BGPCU_REGEN_GOLDEN")) write_bytes(path, expected);
  const auto fixture = read_bytes(path);
  EXPECT_EQ(fixture, expected) << "v1 snapshot encoding drifted from the checked-in bytes";
  const auto decoded = decode_snapshot(fixture);
  EXPECT_EQ(decoded.counter_map(), golden_snapshot().counter_map());
  EXPECT_EQ(decoded.columns_swept(), 5u);
  EXPECT_EQ(decoded.thresholds().silent, 0.98);
}

TEST(WireGolden, DeltaFixtureIsStable) {
  const auto path = data_dir() / "golden_delta_v1.wire";
  const auto expected = encode_delta_batch(golden_delta());
  if (std::getenv("BGPCU_REGEN_GOLDEN")) write_bytes(path, expected);
  const auto fixture = read_bytes(path);
  EXPECT_EQ(fixture, expected) << "v1 delta encoding drifted from the checked-in bytes";
  EXPECT_EQ(decode_delta_batch(fixture), golden_delta());
}

TEST(WireGolden, MetricsFixtureIsStable) {
  const auto path = data_dir() / "golden_metrics_v1.wire";
  const auto expected = encode_golden_metrics_response();
  if (std::getenv("BGPCU_REGEN_GOLDEN")) write_bytes(path, expected);
  const auto fixture = read_bytes(path);
  EXPECT_EQ(fixture, expected) << "v1 metrics encoding drifted from the checked-in bytes";
  const auto decoded = decode_query_response(fixture);
  ASSERT_TRUE(decoded.metrics.has_value());
  EXPECT_EQ(*decoded.metrics, golden_metrics());
}

// ------------------------------------------------------------- corruption --

TEST(WireCorruption, EveryTruncationThrows) {
  const auto frame = encode_snapshot(golden_snapshot());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(frame.begin(),
                                        frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_snapshot(cut), WireFormatError) << "prefix " << len;
  }
  const auto delta_frame = encode_delta_batch(golden_delta());
  for (std::size_t len = 0; len < delta_frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(
        delta_frame.begin(), delta_frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_delta_batch(cut), WireFormatError) << "prefix " << len;
  }
  const auto metrics_frame = encode_golden_metrics_response();
  for (std::size_t len = 0; len < metrics_frame.size(); ++len) {
    const std::vector<std::uint8_t> cut(
        metrics_frame.begin(), metrics_frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_query_response(cut), WireFormatError) << "prefix " << len;
  }
}

TEST(WireCorruption, BadMagicThrows) {
  auto frame = encode_snapshot(golden_snapshot());
  frame[0] = 'X';
  EXPECT_THROW((void)decode_snapshot(frame), WireFormatError);
  const std::vector<std::uint8_t> text = {'#', ' ', 'b', 'g', 'p', 'c', 'u'};
  EXPECT_THROW((void)decode_snapshot(text), WireFormatError);
}

TEST(WireCorruption, FutureVersionThrows) {
  auto frame = encode_snapshot(golden_snapshot());
  frame[4] = kWireVersion + 1;
  try {
    (void)decode_snapshot(frame);
    FAIL() << "future version accepted";
  } catch (const WireFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported wire version"), std::string::npos);
  }
  frame[4] = 0;
  EXPECT_THROW((void)decode_snapshot(frame), WireFormatError);
}

TEST(WireCorruption, WrongTypeAndTrailingGarbageThrow) {
  const auto snapshot_frame = encode_snapshot(golden_snapshot());
  EXPECT_THROW((void)decode_delta_batch(snapshot_frame), WireFormatError);

  auto padded = snapshot_frame;
  padded.push_back(0);
  EXPECT_THROW((void)decode_snapshot(padded), WireFormatError);

  auto bad_type = snapshot_frame;
  bad_type[5] = 9;
  EXPECT_THROW((void)decode_snapshot(bad_type), WireFormatError);
}

TEST(WireCorruption, ByteFlipsNeverCrash) {
  const auto frame = encode_snapshot(golden_snapshot());
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (const std::uint8_t flip : {0xFFu, 0x80u, 0x01u}) {
      auto mutated = frame;
      mutated[pos] ^= flip;
      try {
        (void)decode_snapshot(mutated);  // either outcome is fine; no UB
      } catch (const WireFormatError&) {
      }
    }
  }
  const auto delta_frame = encode_delta_batch(golden_delta());
  for (std::size_t pos = 0; pos < delta_frame.size(); ++pos) {
    auto mutated = delta_frame;
    mutated[pos] ^= 0xFF;
    try {
      (void)decode_delta_batch(mutated);
    } catch (const WireFormatError&) {
    }
  }
  const auto metrics_frame = encode_golden_metrics_response();
  for (std::size_t pos = 0; pos < metrics_frame.size(); ++pos) {
    for (const std::uint8_t flip : {0xFFu, 0x80u, 0x01u}) {
      auto mutated = metrics_frame;
      mutated[pos] ^= flip;
      try {
        (void)decode_query_response(mutated);
      } catch (const WireFormatError&) {
      }
    }
  }
}

TEST(WireRoundTrip, EncodingUnsortedDeltaFailsFast) {
  // Misuse must fail at encode time, not poison a log that every later
  // decode rejects.
  EpochDelta dup{1, {{10, {}, {}}, {10, {}, {}}}};
  EXPECT_THROW((void)encode_delta_batch(dup), WireFormatError);
  EpochDelta unsorted{1, {{20, {}, {}}, {10, {}, {}}}};
  EXPECT_THROW((void)encode_delta_batch(unsorted), WireFormatError);
}

TEST(WireCorruption, OversizedVarintAndBadClassByteThrow) {
  // A frame whose payload length varint never terminates.
  std::vector<std::uint8_t> frame(kWireMagic.begin(), kWireMagic.end());
  frame.push_back(kWireVersion);
  frame.push_back(1);  // snapshot
  for (int i = 0; i < 11; ++i) frame.push_back(0xFF);
  EXPECT_THROW((void)decode_snapshot(frame), WireFormatError);

  // Delta change with an out-of-range class nibble.
  auto delta = golden_delta();
  auto good = encode_delta_batch(delta);
  // The first change's class bytes are the last two bytes of its record;
  // corrupt via a high nibble > 3 at the known 'before' byte position.
  bool threw = false;
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    auto mutated = good;
    mutated[pos] = 0x77;  // tagging=7, forwarding=7: invalid on any class byte
    try {
      const auto decoded = decode_delta_batch(mutated);
      (void)decoded;
    } catch (const WireFormatError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

// -------------------------------------------------- protocol frame codecs --

TEST(WireProtocolFrames, HelloWelcomeErrorRoundTrip) {
  const HelloFrame hello{kWireVersion, "s3cr3t-token"};
  EXPECT_EQ(decode_hello(encode_hello(hello)), hello);
  const HelloFrame anonymous{kWireVersion, ""};
  EXPECT_EQ(decode_hello(encode_hello(anonymous)), anonymous);

  const WelcomeFrame welcome{kWireVersion, 918273};
  EXPECT_EQ(decode_welcome(encode_welcome(welcome)), welcome);

  const ErrorFrame error{42, ErrorCode::kAuthFailed, "bad token"};
  EXPECT_EQ(decode_error(encode_error(error)), error);
}

TEST(WireProtocolFrames, SubscribeRoundTripCoversFilterShapes) {
  SubscribeFrame plain{7, {}, std::nullopt};
  EXPECT_EQ(decode_subscribe(encode_subscribe(plain)), plain);

  SubscribeFrame full;
  full.request_id = 8;
  full.filter.watch = {3356, 1299, 13335};  // order is semantic; preserved
  full.filter.from = "tf";
  full.filter.to = "*";
  full.replay_from = 12;
  EXPECT_EQ(decode_subscribe(encode_subscribe(full)), full);
}

TEST(WireProtocolFrames, SubscribeRejectsBadCodeSpecs) {
  SubscribeFrame bad;
  bad.filter.from = "xx";
  EXPECT_THROW((void)encode_subscribe(bad), WireFormatError);

  auto frame = encode_subscribe({1, {}, std::nullopt});
  // The from-code tag byte follows request id (1) + watch count (1) in the
  // payload; find it by decoding at every mutated position instead of
  // hard-coding the offset.
  bool rejected_some_mutation = false;
  for (std::size_t pos = 6; pos < frame.size(); ++pos) {
    auto mutated = frame;
    mutated[pos] = 0x2A;
    try {
      (void)decode_subscribe(mutated);
    } catch (const WireFormatError&) {
      rejected_some_mutation = true;
    }
  }
  EXPECT_TRUE(rejected_some_mutation);
}

TEST(WireProtocolFrames, WatchlistCapIsEnforcedBothWays) {
  SubscribeFrame huge;
  huge.filter.watch.assign(kMaxSubscriptionWatch + 1, 1);
  EXPECT_THROW((void)encode_subscribe(huge), WireFormatError);

  // A well-formed frame *claiming* a ~268M-entry watchlist must be rejected
  // by the count check itself, before any allocation proportional to the
  // claim (and before the missing entries would read as truncation).
  const std::vector<std::uint8_t> payload = {
      0x01,                    // request id varint
      0xFF, 0xFF, 0xFF, 0x7F,  // watch count varint: 268435455
  };
  std::vector<std::uint8_t> crafted(kWireMagic.begin(), kWireMagic.end());
  crafted.push_back(kWireVersion);
  crafted.push_back(static_cast<std::uint8_t>(FrameType::kSubscribe));
  crafted.push_back(static_cast<std::uint8_t>(payload.size()));
  crafted.insert(crafted.end(), payload.begin(), payload.end());
  try {
    (void)decode_subscribe(crafted);
    FAIL() << "inflated watchlist claim accepted";
  } catch (const WireFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("watchlist"), std::string::npos) << e.what();
  }
}

TEST(WireProtocolFrames, SubscriptionLifecycleFramesRoundTrip) {
  const SubscribedFrame ack{5, 77};
  EXPECT_EQ(decode_subscribed(encode_subscribed(ack)), ack);
  EXPECT_EQ(decode_subscribed(encode_subscribed(ack, FrameType::kUnsubscribed),
                              FrameType::kUnsubscribed),
            ack);
  // Ack frames of the wrong flavor don't cross-decode.
  EXPECT_THROW((void)decode_subscribed(encode_subscribed(ack, FrameType::kUnsubscribed)),
               WireFormatError);

  const UnsubscribeFrame unsubscribe{6, 77};
  EXPECT_EQ(decode_unsubscribe(encode_unsubscribe(unsubscribe)), unsubscribe);
}

TEST(WireProtocolFrames, EventRequestResponseRoundTrip) {
  topology::Rng rng(11);
  const EventFrame event{31, random_delta(rng)};
  EXPECT_EQ(decode_event(encode_event(event)), event);

  const RequestFrame request{9, {QueryKind::kClassOf, 3356}};
  const auto decoded_request = decode_request(encode_request(request));
  EXPECT_EQ(decoded_request.request_id, 9u);
  EXPECT_EQ(decoded_request.request, request.request);

  ResponseFrame response;
  response.request_id = 9;
  response.response.kind = QueryKind::kClassOf;
  response.response.asn_class = AsnClass{3356, class_of(1, 2), {10, 2, 8, 0}};
  const auto decoded_response = decode_response(encode_response(response));
  EXPECT_EQ(decoded_response.request_id, 9u);
  EXPECT_EQ(decoded_response.response.asn_class, response.response.asn_class);

  ResponseFrame snap;
  snap.request_id = 10;
  snap.response.kind = QueryKind::kSnapshot;
  snap.response.snapshot = std::make_shared<const core::InferenceResult>(random_result(rng));
  const auto decoded_snap = decode_response(encode_response(snap));
  ASSERT_TRUE(decoded_snap.response.snapshot != nullptr);
  EXPECT_EQ(decoded_snap.response.snapshot->counter_map(),
            snap.response.snapshot->counter_map());
}

TEST(WireProtocolFrames, ReliabilityHandshakeFramesRoundTrip) {
  const Hello2Frame hello{kProtocolVersion, "s3cr3t-token", kAllFeatures};
  EXPECT_EQ(decode_hello2(encode_hello2(hello)), hello);
  // Unknown future bits survive the trip verbatim: the server masks them
  // against kAllFeatures, the codec must not.
  const Hello2Frame future{kProtocolVersion, "", kFeatureKeepalive | (1ull << 40)};
  EXPECT_EQ(decode_hello2(encode_hello2(future)), future);

  Welcome2Frame welcome;
  welcome.epoch = 918273;
  welcome.features = kFeatureKeepalive | kFeatureResume;
  welcome.replay_horizon = 918270;
  EXPECT_EQ(decode_welcome2(encode_welcome2(welcome)), welcome);
  // A server that never published advertises no horizon; the nullopt must
  // be distinguishable from horizon 0.
  Welcome2Frame fresh;
  EXPECT_EQ(decode_welcome2(encode_welcome2(fresh)), fresh);
  Welcome2Frame zero;
  zero.replay_horizon = 0;
  EXPECT_EQ(decode_welcome2(encode_welcome2(zero)), zero);
  EXPECT_NE(decode_welcome2(encode_welcome2(zero)).replay_horizon,
            decode_welcome2(encode_welcome2(fresh)).replay_horizon);
}

TEST(WireProtocolFrames, KeepaliveAndBusyFramesRoundTrip) {
  const PingFrame probe{0xDEADBEEFCAFEull};
  EXPECT_EQ(decode_ping(encode_ping(probe)), probe);
  EXPECT_EQ(decode_ping(encode_ping(probe, FrameType::kPong), FrameType::kPong), probe);
  // Probe and reply don't cross-decode, like the subscribe ack flavors.
  EXPECT_THROW((void)decode_ping(encode_ping(probe, FrameType::kPong)), WireFormatError);

  const BusyFrame shed{42, 250, "request rate limit exceeded"};
  EXPECT_EQ(decode_busy(encode_busy(shed)), shed);
  const BusyFrame connection_level{0, 1000, "connection limit reached"};
  EXPECT_EQ(decode_busy(encode_busy(connection_level)), connection_level);
}

TEST(WireProtocolFrames, SubscribeAckCoverageByteIsAdditive) {
  // The three ack shapes are distinct on the wire and each survives a trip:
  // legacy (no byte), covered, and horizon-missed.
  const SubscribedFrame legacy{5, 77, std::nullopt};
  const SubscribedFrame covered{5, 77, true};
  const SubscribedFrame missed{5, 77, false};
  for (const auto& ack : {legacy, covered, missed}) {
    EXPECT_EQ(decode_subscribed(encode_subscribed(ack)), ack);
  }
  EXPECT_NE(encode_subscribed(legacy), encode_subscribed(covered));
  EXPECT_NE(encode_subscribed(covered), encode_subscribed(missed));
  // The coverage flag costs exactly one trailing payload byte; the fixed
  // fields in front of it are untouched, which is what keeps the ack additive.
  const auto with_byte = encode_subscribed(covered);
  const auto without = encode_subscribed(legacy);
  EXPECT_EQ(with_byte.size(), without.size() + 1);
  const auto reparsed = decode_subscribed(with_byte);
  EXPECT_EQ(reparsed.request_id, legacy.request_id);
  EXPECT_EQ(reparsed.subscription_id, legacy.subscription_id);
}

// ------------------------------------------------------------- fuzz sweep --

/// Structured fuzz over every frame codec: seed-driven random mutations of
/// valid frames (byte flips, truncations at every boundary, length-field
/// inflation, splices) must either decode cleanly or throw WireFormatError —
/// never crash, never over-read (ASan holds that half of the contract).
namespace fuzz {

using DecodeFn = void (*)(std::span<const std::uint8_t>);

struct Corpus {
  const char* name;
  std::vector<std::uint8_t> frame;
  DecodeFn decode;
};

std::vector<Corpus> build_corpus(topology::Rng& rng) {
  std::vector<Corpus> corpus;
  corpus.push_back({"snapshot", encode_snapshot(random_result(rng)),
                    +[](std::span<const std::uint8_t> b) { (void)decode_snapshot(b); }});
  corpus.push_back({"delta", encode_delta_batch(random_delta(rng)),
                    +[](std::span<const std::uint8_t> b) { (void)decode_delta_batch(b); }});
  corpus.push_back({"query-request", encode_query_request({QueryKind::kClassOf, 65550}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_query_request(b); }});
  QueryResponse stats_response;
  stats_response.kind = QueryKind::kStats;
  stats_response.stats = ServiceStats{3, 1000, 5, 8, 2, 1};
  corpus.push_back({"query-response", encode_query_response(stats_response),
                    +[](std::span<const std::uint8_t> b) { (void)decode_query_response(b); }});
  corpus.push_back({"query-response-metrics", encode_golden_metrics_response(),
                    +[](std::span<const std::uint8_t> b) { (void)decode_query_response(b); }});
  corpus.push_back({"hello", encode_hello({kWireVersion, "fuzz-token"}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_hello(b); }});
  corpus.push_back({"welcome", encode_welcome({kWireVersion, 99}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_welcome(b); }});
  corpus.push_back({"error", encode_error({1, ErrorCode::kBadRequest, "nope"}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_error(b); }});
  SubscribeFrame subscribe{2, {}, 5};
  subscribe.filter.watch = {15169, 8075};
  subscribe.filter.from = "tn";
  corpus.push_back({"subscribe", encode_subscribe(subscribe),
                    +[](std::span<const std::uint8_t> b) { (void)decode_subscribe(b); }});
  corpus.push_back({"subscribed", encode_subscribed({2, 4}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_subscribed(b); }});
  corpus.push_back({"unsubscribe", encode_unsubscribe({3, 4}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_unsubscribe(b); }});
  topology::Rng delta_rng(rng.below(1u << 30) + 1);
  corpus.push_back({"event", encode_event({6, random_delta(delta_rng)}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_event(b); }});
  corpus.push_back({"request", encode_request({7, {QueryKind::kLiveCounters, 64512}}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_request(b); }});
  ResponseFrame tagged;
  tagged.request_id = 8;
  tagged.response.kind = QueryKind::kStats;
  tagged.response.stats = ServiceStats{};
  corpus.push_back({"response", encode_response(tagged),
                    +[](std::span<const std::uint8_t> b) { (void)decode_response(b); }});
  corpus.push_back({"hello2", encode_hello2({kProtocolVersion, "fuzz-token", kAllFeatures}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_hello2(b); }});
  Welcome2Frame welcome2;
  welcome2.epoch = 99;
  welcome2.features = kAllFeatures;
  welcome2.replay_horizon = 42;
  corpus.push_back({"welcome2", encode_welcome2(welcome2),
                    +[](std::span<const std::uint8_t> b) { (void)decode_welcome2(b); }});
  corpus.push_back({"ping", encode_ping({0x1234567890ABCDEFull}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_ping(b); }});
  corpus.push_back({"pong", encode_ping({7}, FrameType::kPong),
                    +[](std::span<const std::uint8_t> b) {
                      (void)decode_ping(b, FrameType::kPong);
                    }});
  corpus.push_back({"busy", encode_busy({9, 500, "overloaded"}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_busy(b); }});
  corpus.push_back({"subscribed-resume", encode_subscribed({2, 4, false}),
                    +[](std::span<const std::uint8_t> b) { (void)decode_subscribed(b); }});
  return corpus;
}

/// Applies one seed-selected mutation; returns the mutated frame.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& frame, topology::Rng& rng) {
  auto mutated = frame;
  switch (rng.below(5)) {
    case 0: {  // random byte flips, 1..8 of them
      const auto flips = 1 + rng.below(8);
      for (std::uint64_t i = 0; i < flips && !mutated.empty(); ++i) {
        mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      break;
    }
    case 1:  // truncate at a random boundary
      mutated.resize(rng.below(mutated.size() + 1));
      break;
    case 2: {  // inflate the payload-length varint region
      if (mutated.size() > 6) {
        mutated[6] |= 0x80;  // claims more length bytes / larger payload
        mutated.insert(mutated.begin() + 7, static_cast<std::uint8_t>(1 + rng.below(127)));
      }
      break;
    }
    case 3: {  // splice a random chunk out of the middle
      if (mutated.size() > 8) {
        const auto start = 1 + rng.below(mutated.size() - 2);
        const auto len = 1 + rng.below(mutated.size() - start);
        mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                      mutated.begin() + static_cast<std::ptrdiff_t>(start + len));
      }
      break;
    }
    default: {  // duplicate a chunk in place (grows counts/values)
      const auto start = rng.below(mutated.size());
      const auto len = 1 + rng.below(std::min<std::size_t>(16, mutated.size() - start));
      std::vector<std::uint8_t> chunk(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                                      mutated.begin() +
                                          static_cast<std::ptrdiff_t>(start + len));
      mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(start), chunk.begin(),
                     chunk.end());
      break;
    }
  }
  return mutated;
}

}  // namespace fuzz

TEST(WireFuzz, MutatedFramesAlwaysDecodeCleanlyOrThrow) {
  topology::Rng corpus_rng(1234);
  const auto corpus = fuzz::build_corpus(corpus_rng);
  for (const auto& entry : corpus) {
    // Sanity: the unmutated frame decodes.
    entry.decode(entry.frame);
    topology::Rng rng(std::hash<std::string_view>{}(entry.name));
    for (int round = 0; round < 400; ++round) {
      const auto mutated = fuzz::mutate(entry.frame, rng);
      try {
        entry.decode(mutated);
      } catch (const WireFormatError&) {
        // The only failure currency decoders are allowed.
      }
    }
  }
}

TEST(WireFuzz, TruncationAtEveryBoundaryThrowsForEveryFrameType) {
  topology::Rng corpus_rng(77);
  const auto corpus = fuzz::build_corpus(corpus_rng);
  for (const auto& entry : corpus) {
    for (std::size_t len = 0; len < entry.frame.size(); ++len) {
      const std::vector<std::uint8_t> cut(
          entry.frame.begin(), entry.frame.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW(entry.decode(cut), WireFormatError)
          << entry.name << " prefix " << len;
    }
  }
}

TEST(WireFuzz, LengthFieldInflationNeverOverreads) {
  topology::Rng corpus_rng(99);
  const auto corpus = fuzz::build_corpus(corpus_rng);
  for (const auto& entry : corpus) {
    // Rewrite the payload-length varint to claim 1..+4096 extra bytes: the
    // decoder must diagnose truncation, not walk past the buffer (ASan
    // enforces the "never" half).
    for (const std::uint64_t extra : {1u, 2u, 127u, 128u, 4096u}) {
      auto inflated = std::vector<std::uint8_t>(entry.frame.begin(), entry.frame.begin() + 6);
      // Re-encode header + inflated length + original payload bytes.
      const auto parsed = try_parse_frame(entry.frame);
      ASSERT_TRUE(parsed.has_value());
      auto length = parsed->payload.size() + extra;
      while (length >= 0x80) {
        inflated.push_back(static_cast<std::uint8_t>(length) | 0x80);
        length >>= 7;
      }
      inflated.push_back(static_cast<std::uint8_t>(length));
      inflated.insert(inflated.end(), parsed->payload.begin(), parsed->payload.end());
      EXPECT_THROW(entry.decode(inflated), WireFormatError) << entry.name << " +" << extra;
    }
  }
}

TEST(WireFuzz, MutatedConcatenatedStreamsNeverCrashFrameReader) {
  topology::Rng corpus_rng(31337);
  const auto corpus = fuzz::build_corpus(corpus_rng);
  std::vector<std::uint8_t> log;
  for (const auto& entry : corpus) {
    log.insert(log.end(), entry.frame.begin(), entry.frame.end());
  }
  topology::Rng rng(5150);
  for (int round = 0; round < 200; ++round) {
    const auto mutated = fuzz::mutate(log, rng);
    try {
      FrameReader frames(mutated);
      while (frames.next().has_value()) {
      }
    } catch (const WireFormatError&) {
    }
  }
}

// ------------------------------------------------------------ file codecs --

TEST(WireCodecs, TextAndWireCodecsRoundTripFiles) {
  const auto dir = fs::temp_directory_path() / "bgpcu_wire_codec_test";
  fs::create_directories(dir);
  const auto result = golden_snapshot();

  for (const auto format : {Format::kText, Format::kWire}) {
    const auto codec = make_codec(format);
    const auto path = (dir / ("snap" + codec->extension())).string();
    codec->write_snapshot_file(path, result);
    EXPECT_EQ(sniff_format(path), format);
    const auto loaded = codec->read_snapshot_file(path);
    EXPECT_EQ(loaded.counter_map(), result.counter_map()) << codec->name();
    const auto sniffed = read_snapshot_any(path);
    EXPECT_EQ(sniffed.counter_map(), result.counter_map()) << codec->name();
  }
  fs::remove_all(dir);
}

TEST(WireCodecs, ParseFormatNames) {
  EXPECT_EQ(parse_format("text"), Format::kText);
  EXPECT_EQ(parse_format("wire"), Format::kWire);
  EXPECT_EQ(parse_format("json"), std::nullopt);
}

TEST(WireCodecs, ReadSnapshotAnyRejectsGarbage) {
  const auto dir = fs::temp_directory_path() / "bgpcu_wire_codec_test2";
  fs::create_directories(dir);
  const auto path = (dir / "junk.bin").string();
  std::ofstream(path, std::ios::binary) << "neither format";
  EXPECT_THROW((void)read_snapshot_any(path), std::runtime_error);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace bgpcu::api
