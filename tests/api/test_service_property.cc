// The facade's correctness contracts, property-tested over randomized
// churn scenarios (same scenario space as tests/stream/test_stream_property):
//
//  1. The subscription feed delivers exactly the same ClassChange sequence
//     as stream::diff_classifications over successive published snapshots —
//     an unfiltered subscriber's accumulated batches equal the independently
//     recomputed diffs, and a filtered subscriber receives exactly the
//     filter-applied subset.
//  2. Every published snapshot survives the wire codec: decode(encode(s))
//     re-encodes to the same bytes and text-serializes byte-identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "api/service.h"
#include "api/wire.h"
#include "core/database.h"
#include "stream/delta.h"
#include "topology/rng.h"

namespace bgpcu::api {
namespace {

/// Random dataset in the style of tests/stream/test_stream_property: small
/// recurring ASNs, random path lengths, communities keyed on path members.
core::Dataset random_dataset(topology::Rng& rng, std::size_t tuples) {
  core::Dataset d;
  for (std::size_t i = 0; i < tuples; ++i) {
    core::PathCommTuple t;
    const std::size_t len = 1 + rng.below(6);
    while (t.path.size() < len) {
      const bgp::Asn asn = 1 + static_cast<bgp::Asn>(rng.below(40));
      if (std::find(t.path.begin(), t.path.end(), asn) == t.path.end()) t.path.push_back(asn);
    }
    for (const auto asn : t.path) {
      if (rng.chance(0.3)) {
        t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(asn),
                                                       static_cast<std::uint16_t>(rng.below(4))));
      }
    }
    d.push_back(std::move(t));
  }
  return d;
}

std::string text_db(const core::InferenceResult& result) {
  std::stringstream out;
  core::write_database(out, result);
  return out.str();
}

class ServiceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServiceProperty, FeedEqualsDiffOfSuccessiveSnapshotsAndWireRoundTrips) {
  const auto seed = GetParam();
  topology::Rng rng(seed * 6151 + 3);

  const std::uint64_t window = rng.below(3);  // 0 = unbounded
  Service service({.stream = {.shards = 1 + rng.below(6), .window_epochs = window}});

  std::vector<EpochDelta> feed;       // unfiltered subscriber
  std::vector<EpochDelta> filtered;   // transition-filtered subscriber
  const auto filter = SubscriptionFilter::transition("*->tn");
  (void)service.subscribe({}, [&](const EpochDelta& d) { feed.push_back(d); });
  (void)service.subscribe(filter, [&](const EpochDelta& d) { filtered.push_back(d); });

  core::InferenceResult previous({}, service.config().stream.engine.thresholds, 0);
  std::vector<EpochDelta> oracle;          // diff_classifications per epoch
  std::vector<EpochDelta> oracle_filtered;

  const std::size_t epochs = 4 + rng.below(4);
  for (std::size_t e = 0; e < epochs; ++e) {
    if (e > 0) (void)service.advance_epoch();
    (void)service.ingest(random_dataset(rng, 30 + rng.below(50)));

    // Independent oracle: successive snapshots through the query API,
    // diffed with the stream primitive directly.
    const auto snapshot = *service.query({.kind = QueryKind::kSnapshot}).snapshot;
    auto changes = stream::diff_classifications(previous, snapshot);
    const auto published = service.publish();
    ASSERT_EQ(published.epoch, service.epoch());
    ASSERT_EQ(published.changes, changes) << "seed " << seed << " epoch " << e;
    if (!changes.empty()) {
      oracle.push_back({published.epoch, changes});
      EpochDelta want{published.epoch, {}};
      for (const auto& c : changes) {
        if (filter.matches(c)) want.changes.push_back(c);
      }
      if (!want.changes.empty()) oracle_filtered.push_back(std::move(want));
    }
    previous = snapshot;

    // Wire round trip of this epoch's published snapshot.
    const auto frame = encode_snapshot(snapshot);
    const auto decoded = decode_snapshot(frame);
    ASSERT_EQ(decoded.counter_map(), snapshot.counter_map()) << "seed " << seed;
    ASSERT_EQ(encode_snapshot(decoded), frame) << "seed " << seed;
    ASSERT_EQ(text_db(decoded), text_db(snapshot)) << "seed " << seed;
  }

  EXPECT_EQ(feed, oracle) << "seed " << seed;
  EXPECT_EQ(filtered, oracle_filtered) << "seed " << seed;

  // The event log retains the same sequence (tail within capacity).
  const auto retained = service.replay(0);
  ASSERT_LE(retained.size(), oracle.size());
  EXPECT_TRUE(std::equal(retained.begin(), retained.end(),
                         oracle.end() - static_cast<std::ptrdiff_t>(retained.size())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceProperty, ::testing::Range<std::uint64_t>(1, 21),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace bgpcu::api
