// FrameBuffer / try_parse_frame: incremental reassembly must produce exactly
// the frames that were written no matter how the byte stream is sliced, and
// must reject a poisoned stream at the earliest byte that proves it.
#include "net/framer.h"

#include <gtest/gtest.h>

#include "api/wire.h"

namespace bgpcu::net {
namespace {

std::vector<std::uint8_t> stats_request_frame(std::uint64_t id) {
  return api::encode_request({id, {.kind = api::QueryKind::kStats}});
}

TEST(TryParseFrame, IncompletePrefixesWantMoreBytes) {
  const auto frame = api::encode_hello({api::kProtocolVersion, "tok"});
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto prefix = std::span(frame).first(len);
    EXPECT_EQ(api::try_parse_frame(prefix), std::nullopt) << "prefix " << len;
  }
  const auto whole = api::try_parse_frame(frame);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->type, api::FrameType::kHello);
  EXPECT_EQ(whole->size, frame.size());
}

TEST(TryParseFrame, BadMagicThrowsImmediately) {
  const std::vector<std::uint8_t> one_bad_byte = {'X'};
  EXPECT_THROW((void)api::try_parse_frame(one_bad_byte), api::WireFormatError);
  std::vector<std::uint8_t> bad = {0x89, 'B', 'C', 'V'};
  EXPECT_THROW((void)api::try_parse_frame(bad), api::WireFormatError);
}

TEST(TryParseFrame, FutureVersionAndUnknownTypeThrow) {
  auto frame = stats_request_frame(1);
  frame[4] = api::kWireVersion + 1;
  EXPECT_THROW((void)api::try_parse_frame(std::span(frame).first(5)), api::WireFormatError);
  frame[4] = api::kWireVersion;
  frame[5] = api::kMaxFrameType + 1;
  EXPECT_THROW((void)api::try_parse_frame(std::span(frame).first(6)), api::WireFormatError);
}

TEST(TryParseFrame, InflatedLengthFieldIsRejectedNotBuffered) {
  // Header claiming a 1 GiB payload: must throw at the length varint, not
  // return nullopt and make the transport buffer forever.
  std::vector<std::uint8_t> frame(api::kWireMagic.begin(), api::kWireMagic.end());
  frame.push_back(api::kWireVersion);
  frame.push_back(static_cast<std::uint8_t>(api::FrameType::kHello));
  for (const std::uint8_t byte : {0x80, 0x80, 0x80, 0x80, 0x04}) frame.push_back(byte);
  EXPECT_THROW((void)api::try_parse_frame(frame, /*max_payload=*/1 << 20),
               api::WireFormatError);
}

TEST(TryParseFrame, TrailingBytesBelongToTheNextFrame) {
  auto bytes = stats_request_frame(7);
  const auto first_size = bytes.size();
  const auto second = stats_request_frame(8);
  bytes.insert(bytes.end(), second.begin(), second.end());
  const auto frame = api::try_parse_frame(bytes);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size, first_size);
}

TEST(FrameBuffer, ReassemblesByteByByte) {
  std::vector<std::uint8_t> stream;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto frame = stats_request_frame(id);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameBuffer buffer;
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto byte : stream) {
    buffer.append(std::span(&byte, 1));
    for (auto frame = buffer.extract(); !frame.empty(); frame = buffer.extract()) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(api::decode_request(frames[id - 1]).request_id, id);
  }
  EXPECT_EQ(buffer.pending(), 0u);
}

TEST(FrameBuffer, ArbitrarySplitPointsYieldIdenticalFrames) {
  const auto a = api::encode_hello({api::kProtocolVersion, "secret"});
  const auto b = stats_request_frame(42);
  std::vector<std::uint8_t> stream(a);
  stream.insert(stream.end(), b.begin(), b.end());

  for (std::size_t split = 1; split < stream.size(); ++split) {
    FrameBuffer buffer;
    buffer.append(std::span(stream).first(split));
    std::vector<std::vector<std::uint8_t>> frames;
    for (auto f = buffer.extract(); !f.empty(); f = buffer.extract()) frames.push_back(f);
    buffer.append(std::span(stream).subspan(split));
    for (auto f = buffer.extract(); !f.empty(); f = buffer.extract()) frames.push_back(f);
    ASSERT_EQ(frames.size(), 2u) << "split " << split;
    EXPECT_EQ(frames[0], a) << "split " << split;
    EXPECT_EQ(frames[1], b) << "split " << split;
  }
}

TEST(FrameBuffer, PoisonedStreamThrowsOnExtract) {
  FrameBuffer buffer;
  const std::vector<std::uint8_t> garbage = {'g', 'a', 'r', 'b', 'a', 'g', 'e'};
  buffer.append(garbage);
  EXPECT_THROW((void)buffer.extract(), api::WireFormatError);
}

}  // namespace
}  // namespace bgpcu::net
