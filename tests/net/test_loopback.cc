// Loopback transport semantics: duplex byte flow, EOF on half-close after
// draining, real blocking backpressure at the capacity bound, and the
// listener's connect/accept pairing. These are the properties the protocol
// suite leans on, so they get pinned here first.
#include "net/loopback.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace bgpcu::net {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return {text.begin(), text.end()};
}

std::string read_all(Connection& conn) {
  std::string out;
  std::vector<std::uint8_t> chunk(64);
  while (const auto n = conn.read_some(chunk)) {
    out.append(reinterpret_cast<const char*>(chunk.data()), n);
  }
  return out;
}

TEST(Loopback, DuplexRoundTrip) {
  auto [a, b] = make_loopback_pair();
  ASSERT_TRUE(a->write_all(bytes_of("ping")));
  ASSERT_TRUE(b->write_all(bytes_of("pong")));
  std::vector<std::uint8_t> buf(16);
  EXPECT_EQ(b->read_some(buf), 4u);
  EXPECT_EQ(std::string(buf.begin(), buf.begin() + 4), "ping");
  EXPECT_EQ(a->read_some(buf), 4u);
  EXPECT_EQ(std::string(buf.begin(), buf.begin() + 4), "pong");
}

TEST(Loopback, HalfCloseDeliversBufferedBytesThenEof) {
  auto [a, b] = make_loopback_pair();
  ASSERT_TRUE(a->write_all(bytes_of("tail")));
  a->shutdown_write();
  EXPECT_EQ(read_all(*b), "tail");  // data first, EOF after
  // The other direction still works after a's half-close.
  ASSERT_TRUE(b->write_all(bytes_of("back")));
  std::vector<std::uint8_t> buf(16);
  EXPECT_EQ(a->read_some(buf), 4u);
}

TEST(Loopback, WriteBlocksAtCapacityUntilReaderDrains) {
  auto [a, b] = make_loopback_pair(/*capacity=*/8);
  const std::vector<std::uint8_t> payload(32, 0xAB);
  std::atomic<bool> write_done{false};
  std::thread writer([&] {
    EXPECT_TRUE(a->write_all(payload));
    write_done.store(true);
  });
  // The writer cannot finish while only 8 bytes fit.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(write_done.load());
  // Draining the reader side releases it.
  std::vector<std::uint8_t> got;
  std::vector<std::uint8_t> chunk(8);
  while (got.size() < payload.size()) {
    const auto n = b->read_some(chunk);
    ASSERT_GT(n, 0u);
    got.insert(got.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
  writer.join();
  EXPECT_TRUE(write_done.load());
  EXPECT_EQ(got, payload);
}

TEST(Loopback, CloseFailsPeerWritesAndUnblocksReads) {
  auto [a, b] = make_loopback_pair(/*capacity=*/8);
  std::atomic<bool> read_returned{false};
  std::thread reader([&] {
    std::vector<std::uint8_t> chunk(8);
    EXPECT_EQ(a->read_some(chunk), 0u);  // EOF once b closes
    read_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b->close();
  reader.join();
  EXPECT_TRUE(read_returned.load());
  EXPECT_FALSE(b->write_all(bytes_of("after close")));
}

TEST(LoopbackListener, PairsConnectWithAccept) {
  LoopbackListener listener;
  auto client = listener.connect();
  auto server = listener.accept();
  ASSERT_TRUE(server != nullptr);
  ASSERT_TRUE(client->write_all(bytes_of("hi")));
  std::vector<std::uint8_t> buf(8);
  EXPECT_EQ(server->read_some(buf), 2u);
}

TEST(LoopbackListener, CloseWakesBlockedAcceptAndRejectsConnect) {
  LoopbackListener listener;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.close();
  });
  EXPECT_EQ(listener.accept(), nullptr);
  closer.join();
  EXPECT_THROW((void)listener.connect(), TransportError);
}

}  // namespace
}  // namespace bgpcu::net
