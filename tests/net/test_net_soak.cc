// Concurrency soak over the full serving stack (label: soak — excluded by
// the 'fast' ctest preset, run by CI's full matrix): N client threads
// hammer queries through the loopback transport while a driver thread
// churns ingest + epoch advances + publishes. The after-collect hook widens
// the snapshot-sweep window (sweeps run with no engine lock held), so
// queries genuinely overlap sweeps in flight. Every response must be
// internally consistent: per-connection stats epochs never regress, frames
// are never torn (a torn frame cannot decode), per-ASN answers always equal
// reclassifying their own counters, and a subscriber sees strictly
// ascending epochs with sorted change lists.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "api/service.h"
#include "core/classifier.h"
#include "net/client.h"
#include "net/loopback.h"
#include "net/server.h"
#include "topology/rng.h"

namespace bgpcu::net {
namespace {

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

TEST(NetSoak, ConcurrentClientsSeeConsistentResponsesUnderChurn) {
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 80;
  constexpr stream::Epoch kEpochs = 40;
  constexpr bgp::Asn kAsnSpace = 64;

  api::Service service({.stream = {.shards = 4, .window_epochs = 2}});
  const auto thresholds = service.config().stream.engine.thresholds;

  // Hold every sweep open briefly: snapshot queries from other threads now
  // reliably overlap in-flight sweeps instead of racing past them.
  std::atomic<std::uint64_t> sweeps_started{0};
  service.set_after_collect_hook([&] {
    sweeps_started.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });

  auto listener = std::make_shared<LoopbackListener>();
  Server server(service, listener, {.write_queue_limit = 4096});
  server.start();

  std::atomic<bool> driver_done{false};
  std::atomic<int> failures{0};

  // Driver: churn tuples whose tagging flips by epoch parity, so classes
  // keep changing and every publish carries real deltas.
  std::thread driver([&] {
    topology::Rng rng(4242);
    for (stream::Epoch e = 0; e < kEpochs; ++e) {
      if (e > 0) (void)service.advance_epoch();
      core::Dataset batch;
      for (int i = 0; i < 24; ++i) {
        const auto peer = static_cast<bgp::Asn>(1 + rng.below(kAsnSpace));
        const auto origin = static_cast<bgp::Asn>(1000 + rng.below(kAsnSpace));
        batch.push_back(tuple(peer, origin, (e + peer) % 2 == 0));
      }
      (void)service.ingest(std::move(batch));
      (void)service.publish();
      std::this_thread::yield();
    }
    driver_done.store(true);
  });

  // One subscriber connection: epochs strictly ascend, changes stay sorted.
  std::thread subscriber([&] {
    try {
      Client client(listener->connect());
      (void)client.subscribe({});
      std::optional<stream::Epoch> last_epoch;
      while (!driver_done.load()) {
        // next_event blocks; the driver keeps publishing until done, so
        // poll via the event stream itself.
        const auto event = client.next_event();
        if (!event) break;
        if (last_epoch && event->delta.epoch <= *last_epoch) {
          ADD_FAILURE() << "subscription epoch regressed: " << *last_epoch << " -> "
                        << event->delta.epoch;
          failures.fetch_add(1);
          break;
        }
        last_epoch = event->delta.epoch;
        for (std::size_t i = 1; i < event->delta.changes.size(); ++i) {
          if (event->delta.changes[i - 1].asn >= event->delta.changes[i].asn) {
            ADD_FAILURE() << "delta changes not strictly ascending";
            failures.fetch_add(1);
          }
        }
      }
      client.close();
    } catch (const TransportError&) {
      // Server shutdown racing the last read is fine.
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client(listener->connect());
        topology::Rng rng(100 + static_cast<std::uint64_t>(c));
        stream::Epoch last_epoch = 0;
        for (int i = 0; i < kQueriesPerClient; ++i) {
          // Stats: the service epoch a single connection observes must
          // never run backwards (responses are answered in order).
          const auto stats = client.query({.kind = api::QueryKind::kStats});
          if (!stats.stats || stats.stats->epoch < last_epoch) {
            ADD_FAILURE() << "stats epoch regressed on client " << c;
            failures.fetch_add(1);
            break;
          }
          last_epoch = stats.stats->epoch;

          const auto asn = static_cast<bgp::Asn>(1 + rng.below(kAsnSpace));
          if (i % 4 == 0) {
            // Snapshot: a torn or interleaved frame would fail to decode
            // long before this assert.
            const auto snapshot = client.query({.kind = api::QueryKind::kSnapshot});
            if (!snapshot.snapshot) {
              ADD_FAILURE() << "snapshot response missing body";
              failures.fetch_add(1);
              break;
            }
            const auto usage = snapshot.snapshot->usage(asn);
            if (usage != core::classify(snapshot.snapshot->counters(asn),
                                        snapshot.snapshot->thresholds())) {
              ADD_FAILURE() << "snapshot internally inconsistent for AS " << asn;
              failures.fetch_add(1);
            }
          } else {
            const auto answer = client.query({.kind = api::QueryKind::kClassOf, .asn = asn});
            if (!answer.asn_class ||
                answer.asn_class->usage != core::classify(answer.asn_class->counters,
                                                          thresholds)) {
              ADD_FAILURE() << "per-ASN answer inconsistent for AS " << asn;
              failures.fetch_add(1);
            }
          }
        }
        client.close();
      } catch (const std::exception& e) {
        ADD_FAILURE() << "client " << c << " died: " << e.what();
        failures.fetch_add(1);
      }
    });
  }

  driver.join();
  for (auto& t : clients) t.join();
  // Unblock the subscriber's final next_event (it may be waiting for an
  // event that will never come now that the driver stopped).
  server.stop();
  subscriber.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(sweeps_started.load(), 0u) << "hook never fired: no sweep overlapped the soak";
  EXPECT_EQ(server.stats().slow_disconnects, 0u);
}

}  // namespace
}  // namespace bgpcu::net
