// Protocol conformance suite, run entirely over the in-process loopback
// transport — no ports, fully deterministic. Covers the acceptance list:
// handshake + auth rejection, query request/response for every kind,
// pipelining, framing splits across reads, malformed frames, subscription
// lifecycle (replay, unsubscribe, disconnect mid-subscription),
// slow-subscriber backpressure, half-close, and the connection limit.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "api/service.h"
#include "api/wire.h"
#include "net/client.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/server.h"

namespace bgpcu::net {
namespace {

using namespace std::chrono_literals;

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

/// Polls `condition` for up to ~2 s; the concurrent assertions in this suite
/// are all "eventually true" statements about server-side cleanup.
bool eventually(const std::function<bool()>& condition) {
  for (int i = 0; i < 400; ++i) {
    if (condition()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return condition();
}

/// A Service + Server wired over one LoopbackListener.
struct Harness {
  explicit Harness(ServerConfig config = {}, std::size_t pipe_capacity = std::size_t{1} << 16)
      : service({.stream = {.window_epochs = 1}}),
        listener(std::make_shared<LoopbackListener>(pipe_capacity)),
        server(service, listener, std::move(config)) {
    server.start();
  }

  ~Harness() { server.stop(); }

  [[nodiscard]] Client client(Client::Options options = {}) {
    return Client(listener->connect(), std::move(options));
  }

  /// Flips AS 10 tagger -> silent across two window-1 epochs, publishing both.
  void flip_epochs() {
    (void)service.ingest({tuple(10, 20, true)});
    (void)service.publish();
    (void)service.advance_epoch();
    (void)service.ingest({tuple(10, 20, false)});
    (void)service.publish();
  }

  api::Service service;
  std::shared_ptr<LoopbackListener> listener;
  Server server;
};

/// Reads whole frames off a raw connection (for the low-level tests that
/// bypass Client on purpose). Empty on EOF.
std::vector<std::uint8_t> next_frame(Connection& conn, FrameBuffer& frames) {
  std::vector<std::uint8_t> chunk(4096);
  for (;;) {
    auto frame = frames.extract();
    if (!frame.empty()) return frame;
    const auto n = conn.read_some(chunk);
    if (n == 0) return {};
    frames.append(std::span(chunk.data(), n));
  }
}

// -------------------------------------------------------------- handshake --

TEST(NetProtocol, HandshakeReportsProtocolAndEpoch) {
  Harness harness;
  (void)harness.service.advance_epoch();
  (void)harness.service.advance_epoch();
  auto client = harness.client();
  EXPECT_EQ(client.welcome().protocol, api::kProtocolVersion);
  EXPECT_EQ(client.welcome().epoch, 2u);
}

TEST(NetProtocol, StaleProtocolVersionIsRefusedAtHandshake) {
  // A peer speaking an older (or bogus) protocol version must be refused
  // by name at the hello — it would misdecode grown payloads (the v2 stats
  // fields) as trailing garbage otherwise. Exact match, both directions.
  Harness harness;
  for (const std::uint8_t stale :
       {static_cast<std::uint8_t>(api::kProtocolVersion - 1), static_cast<std::uint8_t>(0),
        static_cast<std::uint8_t>(api::kProtocolVersion + 1)}) {
    auto conn = harness.listener->connect();
    ASSERT_TRUE(conn->write_all(api::encode_hello({stale, ""})));
    FrameBuffer frames;
    const auto frame = next_frame(*conn, frames);
    ASSERT_FALSE(frame.empty()) << "version " << int(stale);
    const auto error = api::decode_error(frame);
    EXPECT_EQ(error.code, api::ErrorCode::kBadRequest) << "version " << int(stale);
    EXPECT_NE(error.message.find("unsupported protocol version"), std::string::npos)
        << error.message;
    EXPECT_TRUE(next_frame(*conn, frames).empty());
  }
  // The current version still gets through.
  auto ok = harness.client();
  EXPECT_EQ(ok.welcome().protocol, api::kProtocolVersion);
}

TEST(NetProtocol, WrongAuthTokenIsRejected) {
  Harness harness({.auth_token = "sesame"});
  try {
    auto client = harness.client({.token = "wrong"});
    FAIL() << "handshake with a bad token must throw";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.error().code, api::ErrorCode::kAuthFailed);
    EXPECT_EQ(e.error().request_id, 0u);
  }
  EXPECT_EQ(harness.server.stats().auth_failures, 1u);

  // The right token still gets through afterwards.
  auto ok = harness.client({.token = "sesame"});
  EXPECT_EQ(ok.welcome().protocol, api::kProtocolVersion);
}

TEST(NetProtocol, MissingTokenIsRejectedWhenServerRequiresOne) {
  Harness harness({.auth_token = "sesame"});
  EXPECT_THROW((void)harness.client(), ProtocolError);
}

TEST(NetProtocol, FirstFrameMustBeHello) {
  Harness harness;
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_request({1, {.kind = api::QueryKind::kStats}})));
  FrameBuffer frames;
  const auto frame = next_frame(*conn, frames);
  ASSERT_FALSE(frame.empty());
  const auto error = api::decode_error(frame);
  EXPECT_EQ(error.code, api::ErrorCode::kBadRequest);
  EXPECT_TRUE(next_frame(*conn, frames).empty());  // then the server hangs up
}

// ---------------------------------------------------------------- queries --

TEST(NetProtocol, EveryQueryKindMatchesDirectServiceAnswers) {
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true), tuple(11, 20, false)});
  auto client = harness.client();

  const auto class_of = client.query({.kind = api::QueryKind::kClassOf, .asn = 10});
  const auto direct = harness.service.query({.kind = api::QueryKind::kClassOf, .asn = 10});
  EXPECT_EQ(class_of.asn_class, direct.asn_class);

  const auto live = client.query({.kind = api::QueryKind::kLiveCounters, .asn = 11});
  EXPECT_EQ(live.asn_class,
            harness.service.query({.kind = api::QueryKind::kLiveCounters, .asn = 11}).asn_class);

  const auto snapshot = client.query({.kind = api::QueryKind::kSnapshot});
  ASSERT_TRUE(snapshot.snapshot != nullptr);
  EXPECT_EQ(snapshot.snapshot->counter_map(),
            harness.service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map());

  const auto stats = client.query({.kind = api::QueryKind::kStats});
  ASSERT_TRUE(stats.stats.has_value());
  EXPECT_EQ(stats.stats->live_tuples, 2u);
}

TEST(NetProtocol, MetricsQueryReturnsTheFullRegistryScrape) {
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto client = harness.client();
  const auto response = client.query({.kind = api::QueryKind::kMetrics});
  ASSERT_TRUE(response.metrics.has_value());

  // The wire scrape covers every instrumented layer and counts itself.
  bool net = false, stream = false, api_fam = false, snap = false;
  double metrics_queries = -1;
  for (const auto& family : *response.metrics) {
    net = net || family.name.starts_with("bgpcu_net_");
    stream = stream || family.name.starts_with("bgpcu_stream_");
    api_fam = api_fam || family.name.starts_with("bgpcu_api_");
    snap = snap || family.name.starts_with("bgpcu_snapshot_");
    if (family.name == "bgpcu_api_queries_total") {
      for (const auto& series : family.series) {
        if (series.labels == "kind=\"metrics\"") metrics_queries = series.value;
      }
    }
  }
  EXPECT_TRUE(net);
  EXPECT_TRUE(stream);
  EXPECT_TRUE(api_fam);
  EXPECT_TRUE(snap);
  EXPECT_GE(metrics_queries, 1.0) << "the scrape must include its own query";
}

TEST(NetProtocol, MetricsKindIsAdditiveForV2Clients) {
  // kMetrics rode into protocol v2 without a version bump — a client that
  // never requests it must see exactly the pre-metrics surface: the same
  // handshake version and no metrics payload on any other query kind.
  EXPECT_EQ(api::kProtocolVersion, 2u);
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto client = harness.client();
  EXPECT_EQ(client.welcome().protocol, 2u);
  for (const auto kind : {api::QueryKind::kClassOf, api::QueryKind::kSnapshot,
                          api::QueryKind::kLiveCounters, api::QueryKind::kStats}) {
    const auto response = client.query({.kind = kind, .asn = 10});
    EXPECT_EQ(response.kind, kind);
    EXPECT_FALSE(response.metrics.has_value())
        << "non-metrics kind carried a metrics payload";
  }
}

TEST(NetProtocol, HistoryQueryRoundTripsRetainedPlusLivePoints) {
  // kHistory over the wire: the installed provider's retained points arrive
  // exactly as the Service's direct answer — sanitized, epoch-ascending, and
  // closed by the live class.
  Harness harness;
  harness.flip_epochs();  // AS 10: tagger at epoch 0, silent at epoch 1
  harness.service.set_history_provider([](bgp::Asn asn) {
    std::vector<api::HistoryPoint> points;
    if (asn == 10) {
      points.push_back({0, {core::TaggingClass::kTagger, core::ForwardingClass::kNone}});
    }
    return points;
  });

  auto client = harness.client();
  const auto over_wire = client.query({.kind = api::QueryKind::kHistory, .asn = 10});
  const auto direct = harness.service.query({.kind = api::QueryKind::kHistory, .asn = 10});
  ASSERT_TRUE(over_wire.history.has_value());
  ASSERT_TRUE(direct.history.has_value());
  EXPECT_EQ(*over_wire.history, *direct.history);
  ASSERT_GE(over_wire.history->size(), 2u);
  EXPECT_EQ(over_wire.history->front().epoch, 0u);
  EXPECT_EQ(over_wire.history->front().usage.code(), "tn");
  EXPECT_EQ(over_wire.history->back().usage.code(), "sn");

  // Without a provider the series still closes at the live class: one point.
  harness.service.set_history_provider({});
  const auto bare = client.query({.kind = api::QueryKind::kHistory, .asn = 10});
  ASSERT_TRUE(bare.history.has_value());
  EXPECT_EQ(bare.history->size(), 1u);
}

TEST(NetProtocol, HistoryKindIsAdditiveForV2Clients) {
  // kHistory rode into protocol v2 without a version bump, like kMetrics —
  // a client that never asks for it sees the exact pre-history surface.
  EXPECT_EQ(api::kProtocolVersion, 2u);
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto client = harness.client();
  EXPECT_EQ(client.welcome().protocol, 2u);
  for (const auto kind : {api::QueryKind::kClassOf, api::QueryKind::kSnapshot,
                          api::QueryKind::kLiveCounters, api::QueryKind::kStats,
                          api::QueryKind::kMetrics}) {
    const auto response = client.query({.kind = kind, .asn = 10});
    EXPECT_EQ(response.kind, kind);
    EXPECT_FALSE(response.history.has_value())
        << "non-history kind carried a history payload";
  }
}

TEST(NetProtocol, PipelinedRequestsAreAnsweredInOrder) {
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto conn = harness.listener->connect();

  // Hello plus five requests written as one burst, no reads in between.
  std::vector<std::uint8_t> burst = api::encode_hello({api::kProtocolVersion, ""});
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto frame =
        id % 2 ? api::encode_request({id, {.kind = api::QueryKind::kStats}})
               : api::encode_request({id, {.kind = api::QueryKind::kClassOf, .asn = 10}});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(conn->write_all(burst));

  FrameBuffer frames;
  const auto welcome = next_frame(*conn, frames);
  ASSERT_FALSE(welcome.empty());
  EXPECT_EQ(api::peek_frame_type(welcome), api::FrameType::kWelcome);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const auto frame = next_frame(*conn, frames);
    ASSERT_FALSE(frame.empty()) << "response " << id;
    const auto response = api::decode_response(frame);
    EXPECT_EQ(response.request_id, id) << "pipelined responses must keep request order";
  }
}

TEST(NetProtocol, FramesSplitAcrossReadsAreReassembled) {
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto conn = harness.listener->connect();

  std::vector<std::uint8_t> burst = api::encode_hello({api::kProtocolVersion, ""});
  const auto request = api::encode_request({9, {.kind = api::QueryKind::kClassOf, .asn = 10}});
  burst.insert(burst.end(), request.begin(), request.end());
  // One byte at a time: the server-side FrameBuffer must reassemble.
  for (const auto byte : burst) {
    ASSERT_TRUE(conn->write_all(std::span(&byte, 1)));
  }

  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);
  const auto response = api::decode_response(next_frame(*conn, frames));
  EXPECT_EQ(response.request_id, 9u);
  ASSERT_TRUE(response.response.asn_class.has_value());
  EXPECT_EQ(response.response.asn_class->asn, 10u);
}

TEST(NetProtocol, MalformedBytesGetErrorFrameThenClose) {
  Harness harness;
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);

  const std::vector<std::uint8_t> garbage = {'n', 'o', 't', ' ', 'w', 'i', 'r', 'e'};
  ASSERT_TRUE(conn->write_all(garbage));
  const auto frame = next_frame(*conn, frames);
  ASSERT_FALSE(frame.empty());
  const auto error = api::decode_error(frame);
  EXPECT_EQ(error.code, api::ErrorCode::kBadRequest);
  EXPECT_EQ(error.request_id, 0u);
  EXPECT_TRUE(next_frame(*conn, frames).empty());
  EXPECT_GE(harness.server.stats().protocol_errors, 1u);
}

TEST(NetProtocol, ArtifactFrameTypesAreRejectedAsClientInput) {
  Harness harness;
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);

  // A structurally valid frame of a type clients must not send.
  ASSERT_TRUE(conn->write_all(api::encode_delta_batch({0, {}})));
  const auto error = api::decode_error(next_frame(*conn, frames));
  EXPECT_EQ(error.code, api::ErrorCode::kBadRequest);
  EXPECT_TRUE(next_frame(*conn, frames).empty());
}

TEST(NetProtocol, HalfCloseFlushesAllPendingResponses) {
  Harness harness;
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto conn = harness.listener->connect();

  std::vector<std::uint8_t> burst = api::encode_hello({api::kProtocolVersion, ""});
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto frame = api::encode_request({id, {.kind = api::QueryKind::kStats}});
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(conn->write_all(burst));
  conn->shutdown_write();  // requests done; answers must still arrive

  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto frame = next_frame(*conn, frames);
    ASSERT_FALSE(frame.empty()) << "response " << id << " lost at half-close";
    EXPECT_EQ(api::decode_response(frame).request_id, id);
  }
  EXPECT_TRUE(next_frame(*conn, frames).empty());  // clean EOF after the tail
}

// ---------------------------------------------------------- subscriptions --

TEST(NetProtocol, SubscriptionStreamsFilteredEvents) {
  Harness harness;
  auto client = harness.client();
  const auto sub_id = client.subscribe(api::SubscriptionFilter::transition("tn->sn"));
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));

  harness.flip_epochs();
  const auto event = client.next_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->subscription_id, sub_id);
  EXPECT_EQ(event->delta.epoch, 1u);
  ASSERT_EQ(event->delta.changes.size(), 1u);
  EXPECT_EQ(event->delta.changes[0].asn, 10u);
  EXPECT_EQ(event->delta.changes[0].before.code(), "tn");
  EXPECT_EQ(event->delta.changes[0].after.code(), "sn");
}

TEST(NetProtocol, ReplayFromDeliversRetainedHistoryBeforeLiveEvents) {
  Harness harness;
  harness.flip_epochs();  // epochs 0 and 1 now sit in the event log

  auto client = harness.client();
  (void)client.subscribe({}, /*replay_from=*/0);
  const auto first = client.next_event();
  const auto second = client.next_event();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->delta.epoch, 0u);
  EXPECT_EQ(second->delta.epoch, 1u);

  // Live events keep flowing after the replayed tail.
  (void)harness.service.advance_epoch();
  (void)harness.service.ingest({tuple(10, 20, true)});
  (void)harness.service.publish();
  const auto live = client.next_event();
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->delta.epoch, 2u);
}

TEST(NetProtocol, UnsubscribeStopsTheStream) {
  Harness harness;
  auto client = harness.client();
  const auto sub_id = client.subscribe({});
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));

  client.unsubscribe(sub_id);
  EXPECT_EQ(harness.service.subscription_count(), 0u);

  try {
    client.unsubscribe(999);
    FAIL() << "unknown subscription id must be an error";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.error().code, api::ErrorCode::kUnknownSubscription);
  }
}

TEST(NetProtocol, PerConnectionSubscriptionLimitIsEnforced) {
  Harness harness({.max_subscriptions_per_connection = 2});
  auto client = harness.client();
  const auto first = client.subscribe({});
  (void)client.subscribe(api::SubscriptionFilter::transition("*->tc"));
  try {
    (void)client.subscribe({});
    FAIL() << "third subscription must be rejected";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.error().code, api::ErrorCode::kBadRequest);
  }
  // Non-fatal: the connection keeps working, and unsubscribing frees a slot.
  EXPECT_EQ(harness.service.subscription_count(), 2u);
  client.unsubscribe(first);
  (void)client.subscribe({});
  EXPECT_EQ(harness.service.subscription_count(), 2u);
}

TEST(NetProtocol, DisconnectMidSubscriptionCleansUpServerSide) {
  Harness harness;
  {
    auto client = harness.client();
    (void)client.subscribe({});
    EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));
    client.close();
  }
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 0; }));
  EXPECT_TRUE(eventually([&] { return harness.server.connection_count() == 0; }));
  // Publishing after the disconnect reaches nobody and blocks nothing.
  harness.flip_epochs();
}

TEST(NetProtocol, SlowSubscriberIsDisconnectedWithoutStallingPublish) {
  // Tiny pipes + a 4-frame queue: a subscriber that never reads overflows
  // almost immediately. The publisher must never block on it, and a
  // well-behaved subscriber on another connection must see every event.
  Harness harness({.write_queue_limit = 4}, /*pipe_capacity=*/64);

  auto slow = harness.listener->connect();  // raw: we control (don't do) reads
  ASSERT_TRUE(slow->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  const auto subscribe_frame = api::encode_subscribe({1, {}, std::nullopt});
  ASSERT_TRUE(slow->write_all(subscribe_frame));

  auto good = harness.client();
  (void)good.subscribe({});
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 2; }));

  // Each published epoch changes AS (100+e)'s class; the slow side's queue
  // fills while the good side drains. publish() must return promptly every
  // time — it enqueues, it never writes.
  for (stream::Epoch e = 0; e < 12; ++e) {
    if (e > 0) (void)harness.service.advance_epoch();
    (void)harness.service.ingest({tuple(100 + static_cast<bgp::Asn>(e), 20, true)});
    (void)harness.service.publish();
    const auto event = good.next_event();
    ASSERT_TRUE(event.has_value()) << "well-behaved subscriber starved at epoch " << e;
    EXPECT_EQ(event->delta.epoch, e);
  }

  EXPECT_TRUE(eventually([&] { return harness.server.stats().slow_disconnects == 1; }));
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));
}

TEST(NetProtocol, ByteBoundCatchesSlowSubscriberThatFrameCountMisses) {
  // Regression: the write queue was originally bounded only by frame COUNT,
  // so a handful of multi-KB event frames sat under the limit while pinning
  // unbounded memory. The byte bound must fire even when the frame count
  // stays far below its (deliberately huge here) limit.
  Harness harness({.write_queue_limit = 1024, .write_queue_bytes_limit = 2048},
                  /*pipe_capacity=*/64);

  auto slow = harness.listener->connect();  // raw: we control (don't do) reads
  ASSERT_TRUE(slow->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  ASSERT_TRUE(slow->write_all(api::encode_subscribe({1, {}, std::nullopt})));

  auto good = harness.client();
  (void)good.subscribe({});
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 2; }));

  // Each epoch flips hundreds of ASNs, so every event frame is large; a few
  // of them queued unread cross the byte bound long before 1024 frames.
  for (stream::Epoch e = 0; e < 12; ++e) {
    if (e > 0) (void)harness.service.advance_epoch();
    core::Dataset batch;
    for (bgp::Asn peer = 1; peer <= 300; ++peer) {
      batch.push_back(tuple(peer, 20, (e + peer) % 2 == 0));
    }
    (void)harness.service.ingest(std::move(batch));
    (void)harness.service.publish();
    const auto event = good.next_event();
    ASSERT_TRUE(event.has_value()) << "well-behaved subscriber starved at epoch " << e;
    EXPECT_EQ(event->delta.epoch, e);
  }

  EXPECT_TRUE(eventually([&] { return harness.server.stats().slow_disconnects == 1; }));
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));
}

TEST(NetProtocol, OneFrameLargerThanTheByteLimitStillGoesOut) {
  // The byte check is on bytes ALREADY queued: a single response larger
  // than write_queue_bytes_limit on an otherwise-empty queue is delivered,
  // not treated as an overflow — the bound is backpressure, not a frame
  // size cap (max_request_payload caps the other direction).
  Harness harness({.write_queue_bytes_limit = 512});
  core::Dataset batch;
  for (bgp::Asn peer = 1; peer <= 400; ++peer) {
    batch.push_back(tuple(peer, 20, true));
  }
  (void)harness.service.ingest(std::move(batch));
  (void)harness.service.publish();

  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  ASSERT_TRUE(conn->write_all(api::encode_request({1, {.kind = api::QueryKind::kSnapshot}})));
  FrameBuffer frames;
  (void)next_frame(*conn, frames);  // welcome
  const auto frame = next_frame(*conn, frames);
  ASSERT_GT(frame.size(), 512u) << "snapshot too small to exercise the oversized path";
  const auto response = api::decode_response(frame);
  ASSERT_TRUE(response.response.snapshot != nullptr);
  EXPECT_EQ(harness.server.stats().slow_disconnects, 0u);
}

// ---------------------------------------------------------------- limits --

TEST(NetProtocol, SilentConnectionIsDroppedAtTheHelloDeadline) {
  // A connect that never speaks must not pin its threads and conns_ slot
  // forever — the handshake runs against a deadline.
  Harness harness({.hello_timeout_ms = 100});
  auto conn = harness.listener->connect();
  EXPECT_TRUE(eventually([&] { return harness.server.connection_count() == 0; }));
  // The server hung up on us; our next read sees end-of-stream.
  FrameBuffer frames;
  EXPECT_TRUE(next_frame(*conn, frames).empty());

  // A client that does speak is unaffected by the deadline, before and
  // after it would have elapsed.
  auto client = harness.client();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(client.query({.kind = api::QueryKind::kStats}).stats->epoch, 0u);
}

TEST(NetProtocol, ConnectionLimitTurnsExtraClientsAway) {
  Harness harness({.max_connections = 1});
  auto first = harness.client();
  EXPECT_EQ(first.welcome().protocol, api::kProtocolVersion);
  try {
    auto second = harness.client();
    FAIL() << "second connection must be rejected";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.error().code, api::ErrorCode::kServerBusy);
  }
  EXPECT_EQ(harness.server.stats().connections_rejected, 1u);

  // Closing the first connection frees the slot.
  first.close();
  EXPECT_TRUE(eventually([&] {
    try {
      auto retry = harness.client();
      return true;
    } catch (const ProtocolError&) {
      return false;
    }
  }));
}

TEST(NetProtocol, ServerStopEndsOpenConnections) {
  auto harness = std::make_unique<Harness>();
  auto client = harness->client();
  harness->server.stop();
  EXPECT_TRUE(eventually([&] {
    try {
      (void)client.query({.kind = api::QueryKind::kStats});
      return false;
    } catch (const std::exception&) {
      return true;  // TransportError (EOF) or a late error frame
    }
  }));
}

// --------------------------------------------- v2 feature negotiation --

/// Completes a kHello2 handshake on a raw connection, requesting `features`.
api::Welcome2Frame hello2(Connection& conn, FrameBuffer& frames,
                          std::uint64_t features = api::kAllFeatures) {
  EXPECT_TRUE(conn.write_all(api::encode_hello2({api::kProtocolVersion, "", features})));
  return api::decode_welcome2(next_frame(conn, frames));
}

TEST(NetProtocol, Hello2GrantsTheIntersectionOfRequestedAndKnownFeatures) {
  Harness harness;
  harness.flip_epochs();
  auto conn = harness.listener->connect();
  FrameBuffer frames;
  // Request keepalive plus a bit this server has never heard of: the grant
  // must be the intersection — future clients degrade instead of failing.
  const auto welcome =
      hello2(*conn, frames, api::kFeatureKeepalive | (std::uint64_t{1} << 40));
  EXPECT_EQ(welcome.protocol, api::kProtocolVersion);
  EXPECT_EQ(welcome.epoch, 1u);
  EXPECT_EQ(welcome.features, api::kFeatureKeepalive);
  // Two epochs published, default retention: the advisory horizon is 0.
  ASSERT_TRUE(welcome.replay_horizon.has_value());
  EXPECT_EQ(*welcome.replay_horizon, 0u);
}

TEST(NetProtocol, Hello2BeforeAnyPublishReportsNoReplayHorizon) {
  Harness harness;
  auto conn = harness.listener->connect();
  FrameBuffer frames;
  EXPECT_FALSE(hello2(*conn, frames).replay_horizon.has_value());
}

TEST(NetProtocol, Hello2WithStaleProtocolVersionIsRefusedByName) {
  // The version gate must bite before feature negotiation — same exact-match
  // rule, same error message, as the legacy hello.
  Harness harness;
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello2(
      {static_cast<std::uint8_t>(api::kProtocolVersion + 1), "", api::kAllFeatures})));
  FrameBuffer frames;
  const auto error = api::decode_error(next_frame(*conn, frames));
  EXPECT_EQ(error.code, api::ErrorCode::kBadRequest);
  EXPECT_NE(error.message.find("unsupported protocol version"), std::string::npos);
  EXPECT_TRUE(next_frame(*conn, frames).empty());
}

TEST(NetProtocol, PingIsAnsweredWithPongEchoingTheNonce) {
  Harness harness;
  auto conn = harness.listener->connect();
  FrameBuffer frames;
  (void)hello2(*conn, frames);
  ASSERT_TRUE(conn->write_all(api::encode_ping({0xDEADBEEF})));
  const auto reply = next_frame(*conn, frames);
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(api::peek_frame_type(reply), api::FrameType::kPong);
  EXPECT_EQ(api::decode_ping(reply, api::FrameType::kPong).nonce, 0xDEADBEEFu);
  EXPECT_EQ(harness.server.stats().pings_received, 1u);
}

TEST(NetProtocol, PingFromALegacyConnectionIsRejectedLikeAnyReservedType) {
  // A legacy hello never negotiated the keepalive frames, so a kPing from it
  // is exactly as unexpected as a server-only artifact type: error + close.
  Harness harness;
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);
  ASSERT_TRUE(conn->write_all(api::encode_ping({7})));
  const auto error = api::decode_error(next_frame(*conn, frames));
  EXPECT_EQ(error.code, api::ErrorCode::kBadRequest);
  EXPECT_NE(error.message.find("unexpected frame type"), std::string::npos);
  EXPECT_TRUE(next_frame(*conn, frames).empty());
}

// ------------------------------------------------- overload shedding --

TEST(NetProtocol, RateLimitedRequestIsShedAsBusyWithARetryHint) {
  Harness harness(
      {.max_requests_per_sec = 1, .request_burst = 1, .busy_retry_after_ms = 250});
  (void)harness.service.ingest({tuple(10, 20, true)});
  auto conn = harness.listener->connect();
  FrameBuffer frames;
  (void)hello2(*conn, frames);

  // The bucket holds exactly one token: the first request is answered, the
  // immediate second is shed — structurally, with the retry-after hint and
  // the request id so the client can fail just that call.
  ASSERT_TRUE(conn->write_all(api::encode_request({1, {.kind = api::QueryKind::kStats}})));
  ASSERT_TRUE(conn->write_all(api::encode_request({2, {.kind = api::QueryKind::kStats}})));
  EXPECT_EQ(api::decode_response(next_frame(*conn, frames)).request_id, 1u);
  const auto busy_frame = next_frame(*conn, frames);
  ASSERT_FALSE(busy_frame.empty());
  ASSERT_EQ(api::peek_frame_type(busy_frame), api::FrameType::kBusy);
  const auto busy = api::decode_busy(busy_frame);
  EXPECT_EQ(busy.request_id, 2u);
  EXPECT_EQ(busy.retry_after_ms, 250u);
  EXPECT_EQ(harness.server.stats().requests_shed, 1u);

  // The shed is request-scoped: the connection still answers pings.
  ASSERT_TRUE(conn->write_all(api::encode_ping({3})));
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kPong);
}

TEST(NetProtocol, RateLimitedRequestIsShedAsServerBusyForLegacyPeers) {
  Harness harness({.max_requests_per_sec = 1, .request_burst = 1});
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);

  ASSERT_TRUE(conn->write_all(api::encode_request({1, {.kind = api::QueryKind::kStats}})));
  ASSERT_TRUE(conn->write_all(api::encode_request({2, {.kind = api::QueryKind::kStats}})));
  EXPECT_EQ(api::decode_response(next_frame(*conn, frames)).request_id, 1u);
  const auto error = api::decode_error(next_frame(*conn, frames));
  EXPECT_EQ(error.code, api::ErrorCode::kServerBusy);
  EXPECT_EQ(error.request_id, 2u);

  // Still request-scoped: a third over-budget request gets another error
  // frame back, not EOF — the connection was never closed.
  ASSERT_TRUE(conn->write_all(api::encode_request({3, {.kind = api::QueryKind::kStats}})));
  EXPECT_EQ(api::decode_error(next_frame(*conn, frames)).request_id, 3u);
}

TEST(NetProtocol, ConnectionLimitTurnsHello2OpenersAwayWithBusy) {
  Harness harness({.max_connections = 1, .busy_retry_after_ms = 400});
  auto first = harness.client();
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(
      api::encode_hello2({api::kProtocolVersion, "", api::kAllFeatures})));
  FrameBuffer frames;
  const auto frame = next_frame(*conn, frames);
  ASSERT_FALSE(frame.empty());
  ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kBusy);
  const auto busy = api::decode_busy(frame);
  EXPECT_EQ(busy.request_id, 0u) << "admission rejects are connection-level";
  EXPECT_EQ(busy.retry_after_ms, 400u);
  EXPECT_TRUE(next_frame(*conn, frames).empty());
  EXPECT_EQ(harness.server.stats().busy_rejections, 1u);
}

// ---------------------------------------------------- resume coverage --

TEST(NetProtocol, ResumeAckConfirmsCoverageWhenTheLogStillHoldsTheEpoch) {
  Harness harness;
  harness.flip_epochs();  // epochs 0 and 1 retained
  auto conn = harness.listener->connect();
  FrameBuffer frames;
  (void)hello2(*conn, frames);
  ASSERT_TRUE(conn->write_all(api::encode_subscribe({1, {}, 0})));

  // Replayed events are enqueued ahead of the ack (see the server's
  // subscribe path); both epochs arrive, then the ack confirms coverage.
  for (stream::Epoch e = 0; e <= 1; ++e) {
    const auto frame = next_frame(*conn, frames);
    ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kEvent);
    EXPECT_EQ(api::decode_event(frame).delta.epoch, e);
  }
  const auto ack = api::decode_subscribed(next_frame(*conn, frames));
  EXPECT_EQ(ack.request_id, 1u);
  ASSERT_TRUE(ack.replay_complete.has_value());
  EXPECT_TRUE(*ack.replay_complete);
}

TEST(NetProtocol, ResumeAckFlagsAMissedHorizonAtomicallyWithTheReplay) {
  // Tiny retention: four published epochs against a two-batch log. A resume
  // from epoch 0 can only replay the surviving tail, and the ack must say so
  // — computed under the same lock as the replay, so no publish can race.
  api::Service service({.stream = {.window_epochs = 1}, .event_log_capacity = 2});
  auto listener = std::make_shared<LoopbackListener>();
  Server server(service, listener, {});
  server.start();

  for (stream::Epoch e = 0; e < 4; ++e) {
    if (e > 0) (void)service.advance_epoch();
    (void)service.ingest({tuple(100 + static_cast<bgp::Asn>(e), 20, true)});
    (void)service.publish();
  }

  auto conn = listener->connect();
  FrameBuffer frames;
  const auto welcome = hello2(*conn, frames);
  ASSERT_TRUE(welcome.replay_horizon.has_value());
  EXPECT_EQ(*welcome.replay_horizon, 2u);

  ASSERT_TRUE(conn->write_all(api::encode_subscribe({1, {}, 0})));
  for (stream::Epoch e = 2; e <= 3; ++e) {
    const auto frame = next_frame(*conn, frames);
    ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kEvent);
    EXPECT_EQ(api::decode_event(frame).delta.epoch, e) << "lossy tail starts at the horizon";
  }
  const auto ack = api::decode_subscribed(next_frame(*conn, frames));
  ASSERT_TRUE(ack.replay_complete.has_value());
  EXPECT_FALSE(*ack.replay_complete) << "the log no longer covered epoch 0";
  server.stop();
}

TEST(NetProtocol, LegacyResumeAckCarriesNoCoverageByte) {
  // Additivity both ways: a legacy subscriber's ack must decode to exactly
  // the pre-v2 layout — no trailing replay_complete byte at all.
  Harness harness;
  harness.flip_epochs();
  auto conn = harness.listener->connect();
  ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
  FrameBuffer frames;
  EXPECT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);
  ASSERT_TRUE(conn->write_all(api::encode_subscribe({1, {}, 0})));
  for (stream::Epoch e = 0; e <= 1; ++e) {
    EXPECT_EQ(api::decode_event(next_frame(*conn, frames)).delta.epoch, e);
  }
  const auto ack = api::decode_subscribed(next_frame(*conn, frames));
  EXPECT_EQ(ack.subscription_id, 1u);
  EXPECT_FALSE(ack.replay_complete.has_value());
}

}  // namespace
}  // namespace bgpcu::net
