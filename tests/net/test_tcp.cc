// Real-socket smoke test: the same protocol stack over an actual TCP
// listener on an ephemeral 127.0.0.1 port. The deterministic conformance
// suite lives in test_protocol.cc over loopback; this only proves the
// socket transport carries it end to end.
#include <gtest/gtest.h>

#include <memory>

#include "api/service.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"

namespace bgpcu::net {
namespace {

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

TEST(NetTcp, QueriesAndSubscriptionsOverARealSocket) {
  api::Service service({.stream = {.window_epochs = 1}});
  (void)service.ingest({tuple(10, 20, true), tuple(11, 20, false)});

  auto listener = std::make_shared<TcpListener>("127.0.0.1", 0);
  ASSERT_NE(listener->port(), 0) << "ephemeral bind must resolve to a real port";
  Server server(service, listener, {.auth_token = "hunter2"});
  server.start();

  Client client(tcp_connect("127.0.0.1", listener->port()), {.token = "hunter2"});
  EXPECT_EQ(client.welcome().protocol, api::kProtocolVersion);

  const auto stats = client.query({.kind = api::QueryKind::kStats});
  ASSERT_TRUE(stats.stats.has_value());
  EXPECT_EQ(stats.stats->live_tuples, 2u);

  const auto class_of = client.query({.kind = api::QueryKind::kClassOf, .asn = 10});
  ASSERT_TRUE(class_of.asn_class.has_value());
  EXPECT_EQ(class_of.asn_class->usage.code(),
            service.query({.kind = api::QueryKind::kClassOf, .asn = 10})
                .asn_class->usage.code());

  (void)client.subscribe({});
  (void)service.publish();  // first publish: everything changes from nn
  const auto event = client.next_event();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->delta.epoch, 0u);
  EXPECT_FALSE(event->delta.changes.empty());

  const auto wrong_token = [&] {
    try {
      Client bad(tcp_connect("127.0.0.1", listener->port()), {.token = "nope"});
      return false;
    } catch (const ProtocolError& e) {
      return e.error().code == api::ErrorCode::kAuthFailed;
    }
  }();
  EXPECT_TRUE(wrong_token);

  server.stop();
}

}  // namespace
}  // namespace bgpcu::net
