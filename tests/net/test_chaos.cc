// Chaos conformance suite (ctest label: chaos): the protocol stack under
// deterministic fault-injection schedules. Cuts swept across every byte
// offset of the handshake and query exchange, stalled writers and slow
// readers, and the tentpole acceptance property — a ResilientClient driven
// through dozens of injected disconnects (including horizon-miss snapshot
// re-syncs) must deliver the exact epoch -> class-delta sequence an
// uninterrupted subscriber would see, reproducibly across fault-plan seeds.
//
// Excluded from the 'fast' test preset; run with ctest -L chaos or 'full'.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/resilient.h"
#include "net/server.h"

namespace bgpcu::net {
namespace {

using namespace std::chrono_literals;

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

bool eventually(const std::function<bool()>& condition) {
  for (int i = 0; i < 800; ++i) {
    if (condition()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return condition();
}

/// Folds deltas the way a subscriber materializes state: none/none removes.
void fold(std::map<bgp::Asn, core::UsageClass>& state, const api::EpochDelta& delta) {
  for (const auto& change : delta.changes) {
    if (change.after == core::UsageClass{}) {
      state.erase(change.asn);
    } else {
      state[change.asn] = change.after;
    }
  }
}

/// Service + Server whose accepted connections run under `planner`'s fault
/// plans. Clients dial the inner loopback listener directly (their end of
/// the pipe is healthy; the server's end misbehaves).
struct ChaosHarness {
  ChaosHarness(api::ServiceConfig service_config, FaultyListener::Planner planner,
               ServerConfig server_config = {})
      : service(std::move(service_config)),
        inner(std::make_shared<LoopbackListener>()),
        listener(std::make_shared<FaultyListener>(inner, std::move(planner))),
        server(service, listener, std::move(server_config)) {
    server.start();
  }

  ~ChaosHarness() { server.stop(); }

  /// Epoch e flips AS (100 + e) to tagger; window 1 drops the previous one.
  api::EpochDelta publish_next() {
    if (published > 0) (void)service.advance_epoch();
    (void)service.ingest({tuple(100 + static_cast<bgp::Asn>(published), 20, true)});
    ++published;
    return service.publish();
  }

  [[nodiscard]] ResilientClient resilient_client() {
    ResilientConfig config;
    config.sleep_fn = [](std::chrono::milliseconds) {};  // no wall-clock waits
    return ResilientClient([this] { return inner->connect(); }, std::move(config));
  }

  api::Service service;
  std::shared_ptr<LoopbackListener> inner;
  std::shared_ptr<FaultyListener> listener;
  Server server;
  stream::Epoch published = 0;
};

/// Drives `client` until `want` kDelta events arrived (skipping
/// kReconnected/kGap bookkeeping events into the out-params), with a hard
/// iteration guard so a regression can never wedge the suite.
std::vector<api::EpochDelta> consume_deltas(ResilientClient& client, std::size_t want,
                                            std::uint64_t* reconnects = nullptr,
                                            std::vector<ResilientClient::Event>* gaps = nullptr) {
  std::vector<api::EpochDelta> got;
  for (int guard = 0; got.size() < want && guard < 200000; ++guard) {
    auto event = client.next_event();
    if (!event.has_value()) break;
    switch (event->kind) {
      case ResilientClient::Event::Kind::kReconnected:
        if (reconnects != nullptr) ++*reconnects;
        break;
      case ResilientClient::Event::Kind::kGap:
        if (gaps != nullptr) gaps->push_back(*event);
        break;
      case ResilientClient::Event::Kind::kDelta:
        got.push_back(std::move(event->delta));
        break;
    }
  }
  return got;
}

// ------------------------------------------------- boundary cut sweep --

TEST(Chaos, CutsAtEveryOffsetAcrossTheExchangeLeakNoServerState) {
  // 60 connections, each severed at a different byte offset (both
  // directions, 0..87 in steps of 3) somewhere inside the handshake, the
  // subscribe, or the query exchange — frame boundaries and mid-frame alike.
  // None may wedge a handler thread, leak a connection slot, or strand a
  // subscription.
  constexpr std::size_t kSweep = 60;
  ChaosHarness harness({.stream = {.window_epochs = 1}}, [](std::size_t i) -> FaultPlan {
    if (i >= kSweep) return {};
    const std::uint64_t offset = (i / 2) * 3;
    return i % 2 == 0 ? FaultPlan::cut_write_at(offset) : FaultPlan::cut_read_at(offset);
  });
  (void)harness.publish_next();

  for (std::size_t i = 0; i < kSweep; ++i) {
    auto conn = harness.inner->connect();
    std::vector<std::uint8_t> burst =
        api::encode_hello2({api::kProtocolVersion, "", api::kAllFeatures});
    const auto subscribe = api::encode_subscribe({1, {}, 0});
    const auto request = api::encode_request({2, {.kind = api::QueryKind::kStats}});
    burst.insert(burst.end(), subscribe.begin(), subscribe.end());
    burst.insert(burst.end(), request.begin(), request.end());
    (void)conn->write_all(burst);  // may tear mid-frame; that is the point
    conn->shutdown_write();
    // Drain until EOF: either the cut fires (link severed) or the server
    // answers everything and closes after our half-close. Both must
    // terminate — a hang here is the deadlock this sweep exists to catch.
    std::vector<std::uint8_t> sink(4096);
    while (conn->read_some(sink) != 0) {
    }
  }

  EXPECT_TRUE(eventually([&] { return harness.server.connection_count() == 0; }))
      << "a cut connection leaked its server slot";
  EXPECT_TRUE(eventually([&] { return harness.service.subscription_count() == 0; }))
      << "a cut connection stranded its subscription";

  // The 61st connection is healthy, and the server is fully functional.
  Client client(harness.inner->connect());
  EXPECT_EQ(client.welcome().protocol, api::kProtocolVersion);
  EXPECT_TRUE(client.query({.kind = api::QueryKind::kStats}).stats.has_value());
}

// --------------------------------------------- stalls and slow readers --

TEST(Chaos, StalledServerWriterDeliversEveryEventWithoutBlockingPublish) {
  // The first accepted connection's writes stall 150 ms crossing byte 40 —
  // right inside the subscription stream. publish() must stay prompt (it
  // only enqueues) and every event must still arrive, in order.
  ChaosHarness harness({.stream = {.window_epochs = 1}}, [](std::size_t i) {
    return i == 0 ? FaultPlan::stall_write_at(40, 150ms) : FaultPlan{};
  });
  Client client(harness.inner->connect());
  (void)client.subscribe({});
  ASSERT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));

  const auto start = std::chrono::steady_clock::now();
  std::vector<api::EpochDelta> reference;
  for (int e = 0; e < 6; ++e) reference.push_back(harness.publish_next());
  const auto publish_time = std::chrono::steady_clock::now() - start;
  EXPECT_LT(publish_time, 5s) << "publish must never wait on a stalled writer";

  for (stream::Epoch e = 0; e < 6; ++e) {
    const auto event = client.next_event();
    ASSERT_TRUE(event.has_value()) << "event " << e << " lost behind the stall";
    EXPECT_EQ(event->delta.epoch, e);
    EXPECT_EQ(event->delta.changes, reference[e].changes);
  }
}

TEST(Chaos, SlowReaderStillReassemblesEveryFrameIntact) {
  // The client's own reads stall once and its writes are chopped to 3-byte
  // transport chunks: torn frames at every boundary, reassembled by the
  // framer on both sides without corruption.
  ChaosHarness harness({.stream = {.window_epochs = 1}},
                       [](std::size_t) { return FaultPlan{}; });
  FaultPlan plan = FaultPlan::short_writes(3);
  plan.faults.push_back(
      {Fault::Kind::kStall, Fault::Dir::kRead, 30, 100ms, 0});
  Client client(wrap_with_faults(harness.inner->connect(), std::move(plan)));
  (void)client.subscribe({});
  ASSERT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));

  std::vector<api::EpochDelta> reference;
  for (int e = 0; e < 4; ++e) reference.push_back(harness.publish_next());
  for (stream::Epoch e = 0; e < 4; ++e) {
    const auto event = client.next_event();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->delta.epoch, e);
    EXPECT_EQ(event->delta.changes, reference[e].changes);
  }
  const auto stats = client.query({.kind = api::QueryKind::kStats});
  ASSERT_TRUE(stats.stats.has_value());
}

// ------------------------------------- resilient resume: the tentpole --

TEST(Chaos, TwentyInjectedDisconnectsYieldTheExactReplaySequence) {
  // The first 20 server-side connections die at growing (but always
  // pre-ack) byte offsets, so every one of them is a real observed
  // disconnect; connection 21+ is healthy. The resulting delta stream must
  // be bit-identical to what an uninterrupted replay-from-0 subscriber
  // gets, with zero gap re-syncs (retention covers everything).
  constexpr std::size_t kFaulty = 20;
  constexpr stream::Epoch kEpochs = 30;
  ChaosHarness harness({.stream = {.window_epochs = 1}, .event_log_capacity = 64},
                       [](std::size_t i) {
                         if (i >= kFaulty) return FaultPlan{};
                         return FaultPlan::cut_write_at(8 + 2 * static_cast<std::uint64_t>(i));
                       });
  std::vector<api::EpochDelta> reference;
  for (stream::Epoch e = 0; e < kEpochs; ++e) reference.push_back(harness.publish_next());

  auto client = harness.resilient_client();
  client.subscribe({}, /*replay_from=*/0);
  std::uint64_t reconnects = 0;
  std::vector<ResilientClient::Event> gaps;
  const auto got = consume_deltas(client, kEpochs, &reconnects, &gaps);

  ASSERT_EQ(got.size(), kEpochs);
  for (stream::Epoch e = 0; e < kEpochs; ++e) {
    EXPECT_EQ(got[e].epoch, e);
    EXPECT_EQ(got[e].changes, reference[e].changes) << "epoch " << e;
  }
  EXPECT_TRUE(gaps.empty()) << "retention covered the whole stream";
  EXPECT_EQ(client.stats().gap_resyncs, 0u);
  EXPECT_GE(client.stats().connect_attempts, kFaulty)
      << "every faulty accept must have been burned through";

  std::map<bgp::Asn, core::UsageClass> expected;
  for (const auto& delta : reference) fold(expected, delta);
  EXPECT_EQ(client.class_state(), expected);
}

TEST(Chaos, KillingTheLinkEveryFewEpochsResumesWithoutLossOrDuplicates) {
  // The "soak" shape from the issue: a live subscriber whose link is killed
  // every K epochs. Resume-from-last-seen must hand the consumer the exact
  // continuation — no duplicate epochs, no holes — across 7 kills.
  constexpr int kRounds = 8;
  constexpr int kPerRound = 3;
  api::ServiceConfig service_config{.stream = {.window_epochs = 1}};
  service_config.event_log_capacity = 64;
  ChaosHarness harness(std::move(service_config), [](std::size_t) { return FaultPlan{}; });

  Connection* live = nullptr;
  ResilientConfig config;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client(
      [&] {
        auto conn = harness.inner->connect();
        live = conn.get();
        return conn;
      },
      std::move(config));
  client.subscribe({});
  ASSERT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));

  std::vector<api::EpochDelta> reference;
  std::uint64_t reconnects = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPerRound; ++i) reference.push_back(harness.publish_next());
    const auto got = consume_deltas(client, kPerRound, &reconnects);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kPerRound)) << "round " << round;
    for (const auto& delta : got) {
      const auto e = delta.epoch;
      EXPECT_EQ(delta.changes, reference.at(e).changes) << "epoch " << e;
    }
    if (round + 1 < kRounds) live->close();  // kill the link between rounds
  }

  EXPECT_EQ(client.stats().reconnects, static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_EQ(reconnects, static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_EQ(client.stats().gap_resyncs, 0u);
  EXPECT_EQ(client.last_seen_epoch(), static_cast<stream::Epoch>(kRounds * kPerRound - 1));
  std::map<bgp::Asn, core::UsageClass> expected;
  for (const auto& delta : reference) fold(expected, delta);
  EXPECT_EQ(client.class_state(), expected);
}

TEST(Chaos, RepeatedHorizonMissesResyncToTheExactMaterializedState) {
  // Tiny retention (2 batches) against 6 epochs published behind every
  // kill: each resume finds its epoch fallen off the log, re-syncs from a
  // snapshot, and reports the gap honestly. The materialized view must end
  // up exactly where an uninterrupted subscriber's fold would.
  constexpr int kRounds = 8;
  constexpr int kPerRound = 6;
  api::ServiceConfig service_config{.stream = {.window_epochs = 1}};
  service_config.event_log_capacity = 2;
  ChaosHarness harness(std::move(service_config), [](std::size_t) { return FaultPlan{}; });

  Connection* live = nullptr;
  ResilientConfig config;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client(
      [&] {
        auto conn = harness.inner->connect();
        live = conn.get();
        return conn;
      },
      std::move(config));
  client.subscribe({});
  ASSERT_TRUE(eventually([&] { return harness.service.subscription_count() == 1; }));

  std::vector<api::EpochDelta> reference;
  // Round 0 is consumed live; every later round is published entirely while
  // the link is down, so its resume *must* gap.
  for (int i = 0; i < kPerRound; ++i) reference.push_back(harness.publish_next());
  std::uint64_t reconnects = 0;
  std::vector<ResilientClient::Event> gaps;
  ASSERT_EQ(consume_deltas(client, kPerRound, &reconnects, &gaps).size(),
            static_cast<std::size_t>(kPerRound));
  ASSERT_TRUE(gaps.empty());

  stream::Epoch prev_seen = kPerRound - 1;
  for (int round = 1; round < kRounds; ++round) {
    live->close();
    for (int i = 0; i < kPerRound; ++i) reference.push_back(harness.publish_next());
    // The whole round is covered by one gap event; no deltas survive the
    // lossy replayed tail.
    gaps.clear();
    while (gaps.empty()) {
      auto event = client.next_event();
      ASSERT_TRUE(event.has_value());
      ASSERT_NE(event->kind, ResilientClient::Event::Kind::kDelta)
          << "the lossy replayed tail must not leak through as deltas";
      if (event->kind == ResilientClient::Event::Kind::kGap) gaps.push_back(*event);
    }
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].gap_from, prev_seen + 1) << "round " << round;
    EXPECT_GT(gaps[0].gap_to, prev_seen) << "gaps must advance monotonically";
    prev_seen = gaps[0].gap_to;
  }

  EXPECT_EQ(client.stats().gap_resyncs, static_cast<std::uint64_t>(kRounds - 1));
  EXPECT_EQ(client.last_seen_epoch(),
            static_cast<stream::Epoch>(kRounds * kPerRound - 1));
  std::map<bgp::Asn, core::UsageClass> expected;
  for (const auto& delta : reference) fold(expected, delta);
  EXPECT_EQ(client.class_state(), expected);
}

TEST(Chaos, SeededRandomCutSchedulesAreBitIdenticalAcrossTheBoard) {
  // Property over fault-plan seeds: whatever schedule random_cut draws for
  // the first 12 connections (read or write direction, offsets 8..600,
  // sometimes stalled first), the delivered sequence equals the reference.
  // A failure names the seed, which replays the exact schedule.
  constexpr stream::Epoch kEpochs = 16;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ChaosHarness harness({.stream = {.window_epochs = 1}, .event_log_capacity = 64},
                         [seed](std::size_t i) {
                           if (i >= 12) return FaultPlan{};
                           return FaultPlan::random_cut(seed * 100 + i, 8, 600);
                         });
    std::vector<api::EpochDelta> reference;
    for (stream::Epoch e = 0; e < kEpochs; ++e) reference.push_back(harness.publish_next());

    auto client = harness.resilient_client();
    client.subscribe({}, /*replay_from=*/0);
    const auto got = consume_deltas(client, kEpochs);
    ASSERT_EQ(got.size(), kEpochs) << "seed " << seed;
    for (stream::Epoch e = 0; e < kEpochs; ++e) {
      ASSERT_EQ(got[e].epoch, e) << "seed " << seed;
      ASSERT_EQ(got[e].changes, reference[e].changes) << "seed " << seed << " epoch " << e;
    }
    std::map<bgp::Asn, core::UsageClass> expected;
    for (const auto& delta : reference) fold(expected, delta);
    EXPECT_EQ(client.class_state(), expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bgpcu::net
