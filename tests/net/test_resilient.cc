// net::ResilientClient unit suite: backoff determinism, reconnect with a
// bounded attempt budget, retry-across-disconnect queries, busy-shed
// deferral, the sticky legacy-handshake downgrade, resume-from-epoch after a
// dropped link, the horizon-miss snapshot re-sync, and client-side
// keepalive. Everything runs over the in-process loopback transport with
// injected sleep hooks — no ports, no wall-clock backoff waits.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "net/fault.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/resilient.h"
#include "net/server.h"

namespace bgpcu::net {
namespace {

using namespace std::chrono_literals;

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

/// Folds deltas the way ResilientClient::apply_changes does: a none/none
/// "after" removes the AS from the view.
void fold(std::map<bgp::Asn, core::UsageClass>& state, const api::EpochDelta& delta) {
  for (const auto& change : delta.changes) {
    if (change.after == core::UsageClass{}) {
      state.erase(change.asn);
    } else {
      state[change.asn] = change.after;
    }
  }
}

std::vector<std::uint8_t> next_frame(Connection& conn, FrameBuffer& frames) {
  std::vector<std::uint8_t> chunk(4096);
  for (;;) {
    auto frame = frames.extract();
    if (!frame.empty()) return frame;
    const auto n = conn.read_some(chunk);
    if (n == 0) return {};
    frames.append(std::span(chunk.data(), n));
  }
}

/// Service + Server over a loopback listener, with an epoch-publishing
/// helper: epoch e flips AS (100 + e) to tagger (window 1, so the previous
/// epoch's AS falls back out on the next publish).
struct Harness {
  explicit Harness(api::ServiceConfig service_config = {.stream = {.window_epochs = 1}},
                   ServerConfig server_config = {})
      : service(std::move(service_config)),
        listener(std::make_shared<LoopbackListener>()),
        server(service, listener, std::move(server_config)) {
    server.start();
  }

  ~Harness() { server.stop(); }

  [[nodiscard]] ResilientClient client(ResilientConfig config = {}) {
    if (!config.sleep_fn) {
      config.sleep_fn = [](std::chrono::milliseconds) {};  // no real waits
    }
    return ResilientClient([this] { return listener->connect(); }, std::move(config));
  }

  api::EpochDelta publish_next() {
    if (published > 0) (void)service.advance_epoch();
    (void)service.ingest({tuple(100 + static_cast<bgp::Asn>(published), 20, true)});
    ++published;
    return service.publish();
  }

  api::Service service;
  std::shared_ptr<LoopbackListener> listener;
  Server server;
  stream::Epoch published = 0;
};

// ----------------------------------------------------------- backoff --

TEST(Backoff, IsDeterministicForAFixedSeedAndStaysInRange) {
  const BackoffPolicy policy;
  std::mt19937_64 a(7), b(7);
  std::uint64_t prev_a = 0, prev_b = 0;
  for (int i = 0; i < 200; ++i) {
    prev_a = decorrelated_backoff(prev_a, policy, a);
    prev_b = decorrelated_backoff(prev_b, policy, b);
    ASSERT_EQ(prev_a, prev_b) << "same seed, same schedule";
    EXPECT_GE(prev_a, policy.initial_ms);
    EXPECT_LE(prev_a, policy.cap_ms);
  }
}

TEST(Backoff, FirstDelayStartsNearInitialAndTheCapIsAHardCeiling) {
  const BackoffPolicy policy{.initial_ms = 100, .cap_ms = 700, .seed = 3};
  std::mt19937_64 rng(3);
  const auto first = decorrelated_backoff(0, policy, rng);
  EXPECT_GE(first, 100u);
  EXPECT_LE(first, 101u) << "with prev 0 the draw window is [initial, initial+1]";
  std::uint64_t prev = first;
  bool hit_cap = false;
  for (int i = 0; i < 100; ++i) {
    prev = decorrelated_backoff(prev, policy, rng);
    EXPECT_LE(prev, 700u);
    hit_cap = hit_cap || prev == 700u;
  }
  EXPECT_TRUE(hit_cap) << "exponential growth must reach (and stick to) the cap";
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  const BackoffPolicy policy{.initial_ms = 100, .cap_ms = 10'000, .seed = 1};
  std::mt19937_64 a(1), b(2);
  std::uint64_t prev_a = 0, prev_b = 0;
  bool differs = false;
  for (int i = 0; i < 32 && !differs; ++i) {
    prev_a = decorrelated_backoff(prev_a, policy, a);
    prev_b = decorrelated_backoff(prev_b, policy, b);
    differs = prev_a != prev_b;
  }
  EXPECT_TRUE(differs) << "two clients must not thunder in lockstep";
}

// ----------------------------------------------------------- connect --

TEST(ResilientClient, RefusedDialsBackOffUntilTheListenerAnswers) {
  Harness harness;
  (void)harness.publish_next();
  int failures_left = 2;
  std::vector<std::chrono::milliseconds> sleeps;
  ResilientConfig config;
  config.max_connect_attempts = 10;
  config.sleep_fn = [&](std::chrono::milliseconds d) { sleeps.push_back(d); };
  ResilientClient client(
      [&]() -> std::unique_ptr<Connection> {
        if (failures_left > 0) {
          --failures_left;
          throw TransportError("connection refused");
        }
        return harness.listener->connect();
      },
      std::move(config));

  const auto response = client.query({.kind = api::QueryKind::kStats});
  ASSERT_TRUE(response.stats.has_value());
  EXPECT_EQ(client.stats().connect_attempts, 3u);
  EXPECT_EQ(client.stats().connects, 1u);
  EXPECT_EQ(client.stats().reconnects, 0u);
  ASSERT_EQ(sleeps.size(), 2u) << "one backoff sleep per failed dial";
  for (const auto d : sleeps) EXPECT_GE(d, 100ms);
  // The v2 handshake negotiated every feature against our own server.
  EXPECT_EQ(client.welcome().features, api::kAllFeatures);
}

TEST(ResilientClient, AttemptBudgetExhaustionThrowsRetriesExhausted) {
  ResilientConfig config;
  config.max_connect_attempts = 3;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client(
      []() -> std::unique_ptr<Connection> { throw TransportError("connection refused"); },
      std::move(config));
  EXPECT_THROW((void)client.query({.kind = api::QueryKind::kStats}), RetriesExhausted);
  EXPECT_EQ(client.stats().connect_attempts, 3u);
  EXPECT_EQ(client.stats().connects, 0u);
}

TEST(ResilientClient, QueryRetriesOnAFreshConnectionWhenTheLinkDiesMidRequest) {
  Harness harness;
  (void)harness.publish_next();
  // The first connection survives exactly the handshake plus 4 bytes: the
  // query request is torn mid-frame and the link drops, like a TCP session
  // dying under a client.
  const auto hello_bytes =
      api::encode_hello2({api::kProtocolVersion, "", api::kAllFeatures}).size();
  std::size_t dials = 0;
  ResilientConfig config;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client(
      [&] {
        auto conn = harness.listener->connect();
        if (dials++ == 0) {
          return wrap_with_faults(std::move(conn), FaultPlan::cut_write_at(hello_bytes + 4));
        }
        return conn;
      },
      std::move(config));

  const auto response = client.query({.kind = api::QueryKind::kClassOf, .asn = 100});
  ASSERT_TRUE(response.asn_class.has_value());
  EXPECT_EQ(response.asn_class->asn, 100u);
  EXPECT_EQ(dials, 2u);
  EXPECT_EQ(client.stats().connects, 2u);
  EXPECT_EQ(client.stats().reconnects, 1u);
}

TEST(ResilientClient, BusyShedsAreDeferredUntilTheTokenBucketRefills) {
  Harness harness({.stream = {.window_epochs = 1}},
                  {.max_requests_per_sec = 20, .request_burst = 1, .busy_retry_after_ms = 10});
  auto client = harness.client();
  // The bucket holds one token: the first query drains it, the second is
  // shed at least once (kBusy with the hint) and must still come back with
  // an answer once the bucket refills (~50 ms at 20/s).
  ASSERT_TRUE(client.query({.kind = api::QueryKind::kStats}).stats.has_value());
  ASSERT_TRUE(client.query({.kind = api::QueryKind::kStats}).stats.has_value());
  EXPECT_GE(client.stats().busy_deferrals, 1u);
}

TEST(ResilientClient, CloseMakesTheClientInert) {
  Harness harness;
  auto client = harness.client();
  ASSERT_TRUE(client.query({.kind = api::QueryKind::kStats}).stats.has_value());
  client.close();
  EXPECT_FALSE(client.next_event().has_value());
  EXPECT_THROW((void)client.query({.kind = api::QueryKind::kStats}), TransportError);
}

// --------------------------------------------------- legacy downgrade --

TEST(ResilientClient, DowngradesStickilyWhenThePeerRejectsHello2) {
  // Scripted v1 server: it rejects the unknown kHello2 frame type outright
  // (kBadRequest, *not* a version complaint), then welcomes the legacy
  // hello the client falls back to.
  auto listener = std::make_shared<LoopbackListener>();
  std::thread old_server([&] {
    FrameBuffer frames;
    auto first = listener->accept();
    ASSERT_NE(first, nullptr);
    (void)next_frame(*first, frames);
    (void)first->write_all(api::encode_error(
        {0, api::ErrorCode::kBadRequest, "unexpected frame type 15 from client"}));
    first->close();

    frames = FrameBuffer();
    auto second = listener->accept();
    ASSERT_NE(second, nullptr);
    const auto hello = next_frame(*second, frames);
    ASSERT_FALSE(hello.empty());
    EXPECT_EQ(api::peek_frame_type(hello), api::FrameType::kHello)
        << "the retry must use the legacy handshake";
    (void)second->write_all(api::encode_welcome({api::kProtocolVersion, 0}));
    const auto subscribe = api::decode_subscribe(next_frame(*second, frames));
    (void)second->write_all(api::encode_subscribed({subscribe.request_id, 1}));
    (void)next_frame(*second, frames);  // hold the link until the client closes
  });

  ResilientConfig config;
  config.max_connect_attempts = 5;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client([&] { return listener->connect(); }, std::move(config));
  client.subscribe({});
  EXPECT_EQ(client.stats().legacy_downgrades, 1u);
  EXPECT_EQ(client.stats().connects, 1u) << "the downgrade redial is not a reconnect";
  EXPECT_EQ(client.welcome().features, 0u);
  EXPECT_FALSE(client.welcome().replay_horizon.has_value());
  client.close();
  old_server.join();
}

// ------------------------------------------------------------ resume --

TEST(ResilientClient, ResumesFromTheLastSeenEpochAfterADrop) {
  Harness harness;
  std::vector<api::EpochDelta> reference;
  reference.push_back(harness.publish_next());  // epoch 0
  reference.push_back(harness.publish_next());  // epoch 1

  Connection* live = nullptr;
  ResilientConfig config;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client(
      [&] {
        auto conn = harness.listener->connect();
        live = conn.get();
        return conn;
      },
      std::move(config));
  client.subscribe({}, /*replay_from=*/0);
  for (stream::Epoch e = 0; e <= 1; ++e) {
    const auto event = client.next_event();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->kind, ResilientClient::Event::Kind::kDelta);
    EXPECT_EQ(event->delta.epoch, e);
    EXPECT_EQ(event->delta.changes, reference[e].changes);
  }

  // Kill the link, publish one more epoch, and keep consuming: the client
  // reconnects lazily and resumes from epoch 2 — no duplicates, no holes.
  live->close();
  reference.push_back(harness.publish_next());  // epoch 2

  auto event = client.next_event();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->kind, ResilientClient::Event::Kind::kReconnected);
  EXPECT_GE(event->attempts, 1u);

  event = client.next_event();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->kind, ResilientClient::Event::Kind::kDelta);
  EXPECT_EQ(event->delta.epoch, 2u);
  EXPECT_EQ(event->delta.changes, reference[2].changes);

  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_EQ(client.stats().gap_resyncs, 0u) << "the log still covered the resume epoch";
  EXPECT_EQ(client.last_seen_epoch(), 2u);
}

TEST(ResilientClient, HorizonMissResyncsFromASnapshotWithOneGapEvent) {
  // Two-batch retention against five published epochs: after the drop the
  // resume epoch (2) has fallen off the log, so the ack flags the miss and
  // the client rebuilds its view from a snapshot instead of trusting the
  // lossy replayed tail.
  Harness harness({.stream = {.window_epochs = 1}, .event_log_capacity = 2});
  std::vector<api::EpochDelta> reference;
  reference.push_back(harness.publish_next());  // epoch 0
  reference.push_back(harness.publish_next());  // epoch 1

  Connection* live = nullptr;
  ResilientConfig config;
  config.sleep_fn = [](std::chrono::milliseconds) {};
  ResilientClient client(
      [&] {
        auto conn = harness.listener->connect();
        live = conn.get();
        return conn;
      },
      std::move(config));
  client.subscribe({}, /*replay_from=*/0);
  (void)client.next_event();
  (void)client.next_event();

  live->close();
  for (int i = 0; i < 3; ++i) reference.push_back(harness.publish_next());  // 2, 3, 4

  auto event = client.next_event();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->kind, ResilientClient::Event::Kind::kReconnected)
      << "reconnect is announced before the gap";

  event = client.next_event();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->kind, ResilientClient::Event::Kind::kGap);
  EXPECT_EQ(event->gap_from, 2u) << "the gap starts at the resume epoch";
  EXPECT_EQ(event->gap_to, 4u);
  EXPECT_EQ(event->delta.epoch, 4u);
  EXPECT_FALSE(event->delta.changes.empty());

  // The synthesized catch-up lands the client on exactly the state an
  // uninterrupted subscriber would have folded from every delta.
  std::map<bgp::Asn, core::UsageClass> expected;
  for (const auto& delta : reference) fold(expected, delta);
  EXPECT_EQ(client.class_state(), expected);
  EXPECT_EQ(client.last_seen_epoch(), 4u);
  EXPECT_EQ(client.stats().gap_resyncs, 1u);

  // The lossy replayed tail (epochs 3-4, already covered by the snapshot)
  // was dropped: a fresh publish is the next thing the stream yields.
  reference.push_back(harness.publish_next());  // epoch 5
  event = client.next_event();
  ASSERT_TRUE(event.has_value());
  ASSERT_EQ(event->kind, ResilientClient::Event::Kind::kDelta);
  EXPECT_EQ(event->delta.epoch, 5u);
}

// --------------------------------------------------------- keepalive --

TEST(ResilientClient, KeepaliveProbesAnIdleStreamInsteadOfBlockingForever) {
  Harness harness;
  ResilientConfig config;
  config.keepalive_interval_ms = 40;
  config.keepalive_timeout_ms = 1000;
  auto client = harness.client(std::move(config));
  client.subscribe({});

  std::thread publisher([&] {
    std::this_thread::sleep_for(250ms);
    (void)harness.publish_next();
  });
  const auto event = client.next_event();
  publisher.join();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, ResilientClient::Event::Kind::kDelta);
  // ~250 ms of idle at a 40 ms interval: several ping/pong round trips.
  EXPECT_GE(client.stats().pings_sent, 1u);
  EXPECT_GE(harness.server.stats().pings_received, 1u);
}

}  // namespace
}  // namespace bgpcu::net
