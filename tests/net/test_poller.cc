// Unit coverage for the readiness multiplexer underneath the event-driven
// server, run against BOTH backends (epoll and the poll(2) fallback) via a
// parameterized suite — the conformance guarantee is that no observable
// behavior differs between them.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <thread>

#include "net/poller.h"

namespace bgpcu::net {
namespace {

using namespace std::chrono_literals;

/// A nonblocking pipe that closes itself; read end [0], write end [1].
struct Pipe {
  Pipe() {
    std::array<int, 2> fds{-1, -1};
    EXPECT_EQ(pipe2(fds.data(), O_NONBLOCK | O_CLOEXEC), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
  void close_write() {
    ::close(write_fd);
    write_fd = -1;
  }
  int read_fd;
  int write_fd;
};

bool has_token(const std::vector<PollerEvent>& events, std::uint64_t token) {
  for (const auto& event : events) {
    if (event.token == token) return true;
  }
  return false;
}

const PollerEvent* find_token(const std::vector<PollerEvent>& events,
                              std::uint64_t token) {
  for (const auto& event : events) {
    if (event.token == token) return &event;
  }
  return nullptr;
}

class PollerTest : public ::testing::TestWithParam<PollerBackend> {
 protected:
  std::unique_ptr<Poller> poller_ = Poller::create(GetParam());
  std::vector<PollerEvent> events_;
};

TEST_P(PollerTest, IdlePipeReportsNothing) {
  Pipe pipe;
  poller_->set(pipe.read_fd, 7, /*want_read=*/true, /*want_write=*/false);
  EXPECT_EQ(poller_->wait(events_, 0), 0u);
  EXPECT_TRUE(events_.empty());
}

TEST_P(PollerTest, DataMakesReadEndReadable) {
  Pipe pipe;
  poller_->set(pipe.read_fd, 7, true, false);
  ASSERT_EQ(::write(pipe.write_fd, "x", 1), 1);
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  const auto* event = find_token(events_, 7);
  ASSERT_NE(event, nullptr);
  EXPECT_TRUE(event->readable);
  EXPECT_FALSE(event->writable);
}

TEST_P(PollerTest, EmptyPipeWriteEndIsWritable) {
  Pipe pipe;
  poller_->set(pipe.write_fd, 9, false, true);
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  const auto* event = find_token(events_, 9);
  ASSERT_NE(event, nullptr);
  EXPECT_TRUE(event->writable);
}

TEST_P(PollerTest, PeerCloseReportsHangupOrReadable) {
  // Closing the write end must surface on the read end so the owner's next
  // read observes EOF — either as a hangup flag or plain readability.
  Pipe pipe;
  poller_->set(pipe.read_fd, 3, true, false);
  pipe.close_write();
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  const auto* event = find_token(events_, 3);
  ASSERT_NE(event, nullptr);
  EXPECT_TRUE(event->readable || event->hangup);
}

TEST_P(PollerTest, TokensDistinguishFds) {
  Pipe a;
  Pipe b;
  poller_->set(a.read_fd, 1, true, false);
  poller_->set(b.read_fd, 2, true, false);
  ASSERT_EQ(::write(b.write_fd, "y", 1), 1);
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  EXPECT_FALSE(has_token(events_, 1));
  EXPECT_TRUE(has_token(events_, 2));
}

TEST_P(PollerTest, RemoveDropsTheFd) {
  Pipe pipe;
  poller_->set(pipe.read_fd, 5, true, false);
  ASSERT_EQ(::write(pipe.write_fd, "x", 1), 1);
  poller_->remove(pipe.read_fd);
  EXPECT_EQ(poller_->wait(events_, 0), 0u);
  poller_->remove(pipe.read_fd);  // unknown fds are ignored
}

TEST_P(PollerTest, NoInterestMeansRemoval) {
  Pipe pipe;
  poller_->set(pipe.read_fd, 5, true, false);
  ASSERT_EQ(::write(pipe.write_fd, "x", 1), 1);
  poller_->set(pipe.read_fd, 5, false, false);
  EXPECT_EQ(poller_->wait(events_, 0), 0u);
}

TEST_P(PollerTest, InterestUpdateSwitchesDirection) {
  Pipe pipe;
  // Watch the write end for readability first (never fires), then flip the
  // same registration to writability — the update must take effect.
  poller_->set(pipe.write_fd, 11, true, false);
  EXPECT_EQ(poller_->wait(events_, 0), 0u);
  poller_->set(pipe.write_fd, 11, false, true);
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  EXPECT_TRUE(has_token(events_, 11));
}

TEST_P(PollerTest, LevelTriggeredUntilDrained) {
  // The server relies on level semantics: unconsumed bytes re-report on the
  // next wait (its read budget may leave data behind).
  Pipe pipe;
  poller_->set(pipe.read_fd, 4, true, false);
  ASSERT_EQ(::write(pipe.write_fd, "xy", 2), 2);
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  ASSERT_GE(poller_->wait(events_, 1000), 1u);
  EXPECT_TRUE(has_token(events_, 4));
  char buffer[8];
  ASSERT_EQ(::read(pipe.read_fd, buffer, sizeof(buffer)), 2);
  EXPECT_EQ(poller_->wait(events_, 0), 0u);
}

TEST_P(PollerTest, WakeUnblocksAConcurrentWait) {
  const auto started = std::chrono::steady_clock::now();
  std::thread waker([this] {
    std::this_thread::sleep_for(50ms);
    poller_->wake();
  });
  // No fds registered: only the wake can end this wait before the timeout.
  (void)poller_->wait(events_, 10000);
  waker.join();
  EXPECT_LT(std::chrono::steady_clock::now() - started, 5s);
  // The wake token never leaks into results.
  for (const auto& event : events_) {
    EXPECT_NE(event.token, ~std::uint64_t{0});
  }
}

TEST_P(PollerTest, WakeBeforeWaitIsNotLost) {
  poller_->wake();
  const auto started = std::chrono::steady_clock::now();
  (void)poller_->wait(events_, 10000);
  EXPECT_LT(std::chrono::steady_clock::now() - started, 5s);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest,
                         ::testing::Values(PollerBackend::kEpoll, PollerBackend::kPoll),
                         [](const auto& info) {
                           return info.param == PollerBackend::kEpoll ? "epoll" : "poll";
                         });

TEST(PollerBackendSelection, EnvironmentOverridesDefault) {
  ASSERT_EQ(setenv("BGPCU_NET_POLLER", "poll", 1), 0);
  EXPECT_EQ(default_poller_backend(), PollerBackend::kPoll);
  ASSERT_EQ(unsetenv("BGPCU_NET_POLLER"), 0);
  EXPECT_EQ(default_poller_backend(), PollerBackend::kEpoll);
}

TEST(PollerBackendSelection, NamesIdentifyBackends) {
  EXPECT_EQ(Poller::create(PollerBackend::kEpoll)->name(), "epoll");
  EXPECT_EQ(Poller::create(PollerBackend::kPoll)->name(), "poll");
}

}  // namespace
}  // namespace bgpcu::net
