// Fan-out under injected faults (ctest label: chaos — excluded by the
// 'fast' preset): healthy poller-driven subscribers, fault-wrapped peers
// whose links are cut mid-stream (these run on the threaded fallback, since
// a FaultyConnection is non-pollable), and deliberately lazy peers that
// never drain, all against one event-driven server. The survivors must
// receive exactly the published sequence, gap-free and in order, while the
// cut peers die quietly and the lazy peers are shed by byte backpressure —
// losing a slow or broken subscriber must never cost a healthy one a
// single event.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "net/fault.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/poller.h"
#include "net/server.h"

namespace bgpcu::net {
namespace {

using namespace std::chrono_literals;

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

std::vector<std::uint8_t> next_frame(Connection& conn, FrameBuffer& frames) {
  std::vector<std::uint8_t> chunk(4096);
  for (;;) {
    auto frame = frames.extract();
    if (!frame.empty()) return frame;
    const auto n = conn.read_some(chunk);
    if (n == 0) return {};
    frames.append(std::span(chunk.data(), n));
  }
}

bool eventually(const std::function<bool()>& condition) {
  for (int i = 0; i < 800; ++i) {
    if (condition()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return condition();
}

struct Sub {
  std::unique_ptr<Connection> conn;
  FrameBuffer frames;
  api::SubscriptionFilter filter;
  std::vector<api::EpochDelta> deltas;
  bool eof = false;
};

TEST(FanoutChaos, SurvivorsStayGapFreeWhileCutAndLazyPeersAreShed) {
  constexpr std::size_t kSubs = 48;   // every 4th one gets its link cut
  constexpr std::size_t kLazy = 4;    // subscribed, then never read again
  // 60 epochs publish ~18 KiB of events per match-all subscription — more
  // than twice the 8 KiB byte bound plus the 1 KiB pipe, so a peer that
  // never reads must overflow, while a continuously drained one would have
  // to lag ~30 epochs to come anywhere near the bound.
  constexpr stream::Epoch kEpochs = 60;
  constexpr bgp::Asn kAsnSpace = 96;
  const auto is_faulty = [](std::size_t i) { return i % 4 == 3; };

  // window_epochs = 1: the driver flips tagging parity every epoch, so a
  // longer window would union consecutive epochs and publish no changes.
  api::Service service({.stream = {.shards = 4, .window_epochs = 1}});
  // Tiny pipes + a small byte bound: a peer that stops draining backs up
  // almost immediately, while a continuously drained one never comes close.
  auto inner = std::make_shared<LoopbackListener>(/*capacity=*/1024);
  auto listener = std::make_shared<FaultyListener>(
      inner, [&](std::size_t i) -> FaultPlan {
        if (i < kSubs && is_faulty(i)) {
          // Past the handshake and subscribe ack, inside the event stream.
          return FaultPlan::cut_write_at(400 + 37 * static_cast<std::uint64_t>(i));
        }
        return {};
      });
  Server server(service, listener,
                {.max_connections = kSubs + kLazy + 4,
                 .write_queue_bytes_limit = 8 * 1024,
                 .io_threads = 2,
                 .worker_threads = 2});
  server.start();

  std::vector<Sub> subs(kSubs);
  for (std::size_t i = 0; i < kSubs; ++i) {
    auto& sub = subs[i];
    if (i % 2 == 0) {
      for (std::size_t k = 0; k < 4; ++k) {
        sub.filter.watch.push_back(
            static_cast<bgp::Asn>(1 + (i * 11 + k * 23) % kAsnSpace));
      }
    }  // odd indices keep the match-all filter
    sub.conn = inner->connect();
    ASSERT_TRUE(sub.conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
    auto frame = next_frame(*sub.conn, sub.frames);
    ASSERT_FALSE(frame.empty()) << "subscriber " << i;
    ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kWelcome);
    ASSERT_TRUE(sub.conn->write_all(api::encode_subscribe({1, sub.filter, std::nullopt})));
    frame = next_frame(*sub.conn, sub.frames);
    ASSERT_FALSE(frame.empty()) << "subscriber " << i;
    ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kSubscribed);
  }

  // The lazy peers: full handshake and subscription, then total silence.
  std::vector<std::unique_ptr<Connection>> lazy;
  for (std::size_t i = 0; i < kLazy; ++i) {
    auto conn = inner->connect();
    FrameBuffer frames;
    ASSERT_TRUE(conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
    ASSERT_EQ(api::peek_frame_type(next_frame(*conn, frames)), api::FrameType::kWelcome);
    ASSERT_TRUE(conn->write_all(api::encode_subscribe({1, {}, std::nullopt})));
    ASSERT_EQ(api::peek_frame_type(next_frame(*conn, frames)),
              api::FrameType::kSubscribed);
    lazy.push_back(std::move(conn));
  }
  ASSERT_EQ(service.subscription_count(), kSubs + kLazy);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> survivor_events{0};
  std::thread drainer([&] {
    auto poller = Poller::create(default_poller_backend());
    for (std::size_t i = 0; i < kSubs; ++i) {
      poller->set(subs[i].conn->poll_info().read_fd, i, /*want_read=*/true,
                  /*want_write=*/false);
    }
    std::vector<PollerEvent> ready;
    std::vector<std::uint8_t> chunk(16384);
    while (!stop.load()) {
      (void)poller->wait(ready, 50);
      for (const auto& event : ready) {
        auto& sub = subs[event.token];
        if (sub.eof) continue;
        for (;;) {
          std::size_t n = 0;
          const auto status = sub.conn->try_read(chunk, n);
          if (status == IoStatus::kOk) {
            sub.frames.append(std::span(chunk.data(), n));
            continue;
          }
          if (status == IoStatus::kEof) {
            sub.eof = true;
            poller->remove(sub.conn->poll_info().read_fd);
          }
          break;
        }
        for (;;) {
          const auto frame = sub.frames.extract();
          if (frame.empty()) break;
          if (api::peek_frame_type(frame) != api::FrameType::kEvent) continue;
          sub.deltas.push_back(api::decode_event(frame).delta);
          if (!is_faulty(event.token)) survivor_events.fetch_add(1);
        }
      }
    }
  });

  // Paced publishes (the drainer shares one core with everything else);
  // lazy peers still back up within a few epochs because they never read.
  std::vector<api::EpochDelta> published;
  for (stream::Epoch e = 0; e < kEpochs; ++e) {
    if (e > 0) (void)service.advance_epoch();
    core::Dataset batch;
    for (bgp::Asn a = 1; a <= kAsnSpace; ++a) {
      batch.push_back(tuple(a, 1000 + a, (e + a) % 2 == 0));
    }
    (void)service.ingest(std::move(batch));
    published.push_back(service.publish());
    std::this_thread::sleep_for(5ms);
  }

  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kSubs; ++i) {
    if (is_faulty(i)) continue;
    for (const auto& delta : published) {
      if (!subs[i].filter.apply(delta).empty()) ++expected;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (survivor_events.load() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  stop.store(true);
  drainer.join();
  ASSERT_EQ(survivor_events.load(), expected)
      << "a healthy subscriber lost events to someone else's fault";

  // Survivors: exactly the filtered published sequence, gap-free.
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < kSubs; ++i) {
    if (is_faulty(i)) continue;
    ++survivors;
    std::size_t at = 0;
    for (const auto& delta : published) {
      const auto want = subs[i].filter.apply(delta);
      if (want.empty()) continue;
      ASSERT_LT(at, subs[i].deltas.size()) << "subscriber " << i << " missing epochs";
      EXPECT_EQ(subs[i].deltas[at].epoch, delta.epoch) << "subscriber " << i;
      EXPECT_EQ(subs[i].deltas[at].changes, want) << "subscriber " << i;
      ++at;
    }
    EXPECT_EQ(at, subs[i].deltas.size()) << "subscriber " << i << " got extra events";
    EXPECT_FALSE(subs[i].eof) << "healthy subscriber " << i << " was disconnected";
  }

  // The lazy peers were shed by the byte bound, the cut peers died on their
  // faults, and neither leaked a slot or a subscription.
  EXPECT_EQ(server.stats().slow_disconnects, kLazy);
  EXPECT_TRUE(eventually([&] { return service.subscription_count() == survivors; }))
      << "a dead peer stranded its subscription";
  EXPECT_TRUE(eventually([&] { return server.connection_count() == survivors; }))
      << "a dead peer leaked its connection slot";

  server.stop();
}

}  // namespace
}  // namespace bgpcu::net
