// Unit tests for the deterministic fault-injection layer (net/fault.h):
// cut/stall/short-write semantics over real loopback pipes, byte-offset
// accounting, seeded-plan reproducibility, and the per-accept planner.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault.h"
#include "net/loopback.h"

namespace bgpcu::net {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t fill = 0xAB) {
  return std::vector<std::uint8_t>(n, fill);
}

/// Drains everything readable from `conn` (until EOF) and returns it.
std::vector<std::uint8_t> drain(Connection& conn) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> chunk(256);
  for (;;) {
    const auto n = conn.read_some(chunk);
    if (n == 0) return out;
    out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
}

TEST(FaultPlan, CutWriteDeliversExactlyTheBudgetThenSevers) {
  auto [client, server] = make_loopback_pair();
  auto faulty = wrap_with_faults(std::move(client), FaultPlan::cut_write_at(7));

  // 10 bytes against a 7-byte budget: the write reports peer-gone...
  EXPECT_FALSE(faulty->write_all(bytes(10)));
  auto* wrapped = dynamic_cast<FaultyConnection*>(faulty.get());
  ASSERT_NE(wrapped, nullptr);
  EXPECT_TRUE(wrapped->severed());
  EXPECT_EQ(wrapped->bytes_written(), 7u);

  // ...and the peer sees exactly the 7 bytes that made it, then EOF — a
  // partial frame, exactly what a dropped TCP session leaves behind.
  EXPECT_EQ(drain(*server).size(), 7u);

  // Every later operation on the severed link reports peer-gone too.
  EXPECT_FALSE(faulty->write_all(bytes(1)));
  std::vector<std::uint8_t> buf(4);
  EXPECT_EQ(faulty->read_some(buf), 0u);
}

TEST(FaultPlan, CutAtZeroSeversBeforeAnyByte) {
  auto [client, server] = make_loopback_pair();
  auto faulty = wrap_with_faults(std::move(client), FaultPlan::cut_write_at(0));
  EXPECT_FALSE(faulty->write_all(bytes(1)));
  EXPECT_TRUE(drain(*server).empty());
}

TEST(FaultPlan, CutReadStopsDeliveryAtTheBoundary) {
  auto [client, server] = make_loopback_pair();
  ASSERT_TRUE(server->write_all(bytes(32)));
  auto faulty = wrap_with_faults(std::move(client), FaultPlan::cut_read_at(5));

  std::vector<std::uint8_t> buf(64);
  std::size_t total = 0;
  for (;;) {
    const auto n = faulty->read_some(buf);
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(total, 5u) << "reads past the cut budget must see EOF";
  auto* wrapped = dynamic_cast<FaultyConnection*>(faulty.get());
  ASSERT_NE(wrapped, nullptr);
  EXPECT_TRUE(wrapped->severed());
}

TEST(FaultPlan, CutSeversBothDirectionsLikeADroppedSession) {
  auto [client, server] = make_loopback_pair();
  ASSERT_TRUE(server->write_all(bytes(16)));
  auto faulty = wrap_with_faults(std::move(client), FaultPlan::cut_write_at(4));
  EXPECT_FALSE(faulty->write_all(bytes(8)));

  // The read side is gone too, even though 16 bytes sat in the pipe.
  std::vector<std::uint8_t> buf(64);
  EXPECT_EQ(faulty->read_some(buf), 0u);
}

TEST(FaultPlan, ShortWritesChunkTheStreamWithoutLosingBytes) {
  auto [client, server] = make_loopback_pair();
  auto faulty = wrap_with_faults(std::move(client), FaultPlan::short_writes(3));
  ASSERT_TRUE(faulty->write_all(bytes(10, 0x5A)));
  faulty->shutdown_write();
  const auto got = drain(*server);
  EXPECT_EQ(got, bytes(10, 0x5A)) << "chunking must be invisible to the byte stream";
}

TEST(FaultPlan, StallDelaysOnceAtTheThreshold) {
  auto [client, server] = make_loopback_pair();
  auto faulty = wrap_with_faults(std::move(client), FaultPlan::stall_write_at(4, 50ms));

  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(faulty->write_all(bytes(8)));
  const auto first = std::chrono::steady_clock::now() - start;
  EXPECT_GE(first, 45ms) << "the write crossing byte 4 must pause";

  // The stall fires exactly once; later writes run at full speed.
  const auto again = std::chrono::steady_clock::now();
  ASSERT_TRUE(faulty->write_all(bytes(64)));
  EXPECT_LT(std::chrono::steady_clock::now() - again, 45ms);
  faulty->shutdown_write();
  EXPECT_EQ(drain(*server).size(), 72u);
}

TEST(FaultPlan, RandomCutIsReproducibleFromItsSeed) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const auto a = FaultPlan::random_cut(seed, 10, 500);
    const auto b = FaultPlan::random_cut(seed, 10, 500);
    ASSERT_EQ(a.faults.size(), b.faults.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.faults.size(); ++i) {
      EXPECT_EQ(a.faults[i].kind, b.faults[i].kind) << "seed " << seed;
      EXPECT_EQ(a.faults[i].dir, b.faults[i].dir) << "seed " << seed;
      EXPECT_EQ(a.faults[i].at_bytes, b.faults[i].at_bytes) << "seed " << seed;
      EXPECT_EQ(a.faults[i].delay, b.faults[i].delay) << "seed " << seed;
    }
    // The cut offset honors the requested window.
    for (const auto& fault : a.faults) {
      if (fault.kind == Fault::Kind::kCut) {
        EXPECT_GE(fault.at_bytes, 10u);
        EXPECT_LT(fault.at_bytes, 500u);
      }
    }
  }
  // Different seeds must not all collapse onto one plan.
  const auto one = FaultPlan::random_cut(1, 10, 500);
  bool distinct = false;
  for (std::uint64_t seed = 2; seed <= 16 && !distinct; ++seed) {
    const auto other = FaultPlan::random_cut(seed, 10, 500);
    for (std::size_t i = 0; i < one.faults.size() && i < other.faults.size(); ++i) {
      distinct = distinct || one.faults[i].at_bytes != other.faults[i].at_bytes ||
                 one.faults[i].dir != other.faults[i].dir;
    }
  }
  EXPECT_TRUE(distinct);
}

TEST(FaultPlan, EmptyPlanPassesBytesThroughUntouched) {
  auto [client, server] = make_loopback_pair();
  auto faulty = wrap_with_faults(std::move(client), FaultPlan{});
  ASSERT_TRUE(faulty->write_all(bytes(100, 0x11)));
  faulty->shutdown_write();
  EXPECT_EQ(drain(*server), bytes(100, 0x11));
}

TEST(FaultyListener, PlannerAssignsAPlanPerAcceptIndex) {
  auto inner = std::make_shared<LoopbackListener>();
  FaultyListener listener(inner, [](std::size_t index) {
    // Connection 0 dies after 4 bytes; connection 1 is healthy.
    return index == 0 ? FaultPlan::cut_write_at(4) : FaultPlan{};
  });

  auto client0 = inner->connect();
  auto server0 = listener.accept();  // wrapped with the cut plan
  ASSERT_NE(server0, nullptr);
  EXPECT_FALSE(server0->write_all(bytes(16)));
  EXPECT_EQ(drain(*client0).size(), 4u);

  auto client1 = inner->connect();
  auto server1 = listener.accept();
  ASSERT_NE(server1, nullptr);
  ASSERT_TRUE(server1->write_all(bytes(16)));
  server1->shutdown_write();
  EXPECT_EQ(drain(*client1).size(), 16u);
}

}  // namespace
}  // namespace bgpcu::net
