// Fan-out soak (ctest label: soak — excluded by the 'fast' preset): one
// thousand concurrent loopback subscribers with mixed filters (match-all,
// ASN watch lists, transition specs) drained by a poller-driven reader
// while the service publishes churn. Every subscriber must receive exactly
// the sequence its filter admits — same epochs, same changes, same order —
// and each per-ASN stream must chain gap-free (every change's `before`
// equals the previous change's `after`). This is the serialize-once
// broadcast path under real concurrency: all match-all subscribers share
// one encoded buffer per epoch, so a torn or cross-wired buffer would
// surface here as a mismatched or misordered delta.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/wire.h"
#include "net/framer.h"
#include "net/loopback.h"
#include "net/poller.h"
#include "net/server.h"

namespace bgpcu::net {
namespace {

core::PathCommTuple tuple(bgp::Asn peer, bgp::Asn origin, bool tags) {
  core::PathCommTuple t;
  t.path = {peer, origin};
  if (tags) {
    t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(peer), 1));
  }
  return t;
}

/// Reads whole frames off a raw connection, blocking. Empty on EOF.
std::vector<std::uint8_t> next_frame(Connection& conn, FrameBuffer& frames) {
  std::vector<std::uint8_t> chunk(4096);
  for (;;) {
    auto frame = frames.extract();
    if (!frame.empty()) return frame;
    const auto n = conn.read_some(chunk);
    if (n == 0) return {};
    frames.append(std::span(chunk.data(), n));
  }
}

/// One raw subscriber: its connection, reassembly buffer, filter, and the
/// event deltas received so far. `deltas` is written by the drainer thread
/// only and read by the main thread only after the drainer joined.
struct Sub {
  std::unique_ptr<Connection> conn;
  FrameBuffer frames;
  api::SubscriptionFilter filter;
  std::vector<api::EpochDelta> deltas;
  bool eof = false;
};

TEST(FanoutSoak, ThousandMixedFilterSubscribersSeeExactGapFreeStreams) {
  constexpr std::size_t kSubs = 1000;
  constexpr stream::Epoch kEpochs = 20;
  constexpr bgp::Asn kAsnSpace = 96;

  // window_epochs = 1: the driver flips each AS's tagging parity every
  // epoch, so a longer window would union consecutive epochs and keep every
  // AS permanently tagged — no class changes, nothing to fan out.
  api::Service service({.stream = {.shards = 4, .window_epochs = 1}});
  auto listener = std::make_shared<LoopbackListener>();
  Server server(service, listener,
                {.max_connections = kSubs + 8, .io_threads = 2, .worker_threads = 2});
  server.start();

  // Handshake + subscribe each connection up front (serially, blocking) so
  // every subscriber observes every published epoch.
  std::vector<Sub> subs(kSubs);
  for (std::size_t i = 0; i < kSubs; ++i) {
    auto& sub = subs[i];
    switch (i % 3) {
      case 0:
        break;  // match-all: the shared-broadcast-buffer population
      case 1:
        // Small watch lists, deterministically spread over the ASN space;
        // many repeat, exercising both shared and distinct filter groups.
        for (std::size_t k = 0; k < 3; ++k) {
          sub.filter.watch.push_back(
              static_cast<bgp::Asn>(1 + (i * 7 + k * 31) % kAsnSpace));
        }
        break;
      default:
        sub.filter = api::SubscriptionFilter::transition("*->tn");
        break;
    }
    sub.conn = listener->connect();
    ASSERT_TRUE(sub.conn->write_all(api::encode_hello({api::kProtocolVersion, ""})));
    auto frame = next_frame(*sub.conn, sub.frames);
    ASSERT_FALSE(frame.empty()) << "subscriber " << i << " lost its welcome";
    ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kWelcome);
    ASSERT_TRUE(sub.conn->write_all(api::encode_subscribe({1, sub.filter, std::nullopt})));
    frame = next_frame(*sub.conn, sub.frames);
    ASSERT_FALSE(frame.empty()) << "subscriber " << i << " lost its subscribe ack";
    ASSERT_EQ(api::peek_frame_type(frame), api::FrameType::kSubscribed);
  }
  ASSERT_EQ(service.subscription_count(), kSubs);

  // Drainer: one poller multiplexing all 1000 client-side connections, so
  // every queue keeps moving while the driver publishes.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> received{0};
  std::thread drainer([&] {
    auto poller = Poller::create(default_poller_backend());
    for (std::size_t i = 0; i < kSubs; ++i) {
      poller->set(subs[i].conn->poll_info().read_fd, i, /*want_read=*/true,
                  /*want_write=*/false);
    }
    std::vector<PollerEvent> ready;
    std::vector<std::uint8_t> chunk(16384);
    while (!stop.load()) {
      (void)poller->wait(ready, 50);
      for (const auto& event : ready) {
        auto& sub = subs[event.token];
        if (sub.eof) continue;
        for (;;) {
          std::size_t n = 0;
          const auto status = sub.conn->try_read(chunk, n);
          if (status == IoStatus::kOk) {
            sub.frames.append(std::span(chunk.data(), n));
            continue;
          }
          if (status == IoStatus::kEof) {
            sub.eof = true;
            poller->remove(sub.conn->poll_info().read_fd);
          }
          break;
        }
        for (;;) {
          const auto frame = sub.frames.extract();
          if (frame.empty()) break;
          if (api::peek_frame_type(frame) != api::FrameType::kEvent) continue;
          sub.deltas.push_back(api::decode_event(frame).delta);
          received.fetch_add(1);
        }
      }
    }
  });

  // Driver: every epoch flips each AS's tagging parity, so every publish
  // carries changes for most of the space.
  std::vector<api::EpochDelta> published;
  for (stream::Epoch e = 0; e < kEpochs; ++e) {
    if (e > 0) (void)service.advance_epoch();
    core::Dataset batch;
    for (bgp::Asn a = 1; a <= kAsnSpace; ++a) {
      batch.push_back(tuple(a, 1000 + a, (e + a) % 2 == 0));
    }
    (void)service.ingest(std::move(batch));
    published.push_back(service.publish());
  }

  // Expected deliveries are fully determined by the published deltas.
  std::uint64_t expected = 0;
  for (const auto& sub : subs) {
    for (const auto& delta : published) {
      if (!sub.filter.apply(delta).empty()) ++expected;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (received.load() < expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  drainer.join();
  // Asserted only after the drainer joined: an ASSERT with a live thread
  // would terminate() instead of reporting the failure.
  ASSERT_GT(expected, kSubs * (kEpochs / 2)) << "churn generated too few events";
  ASSERT_EQ(received.load(), expected) << "fan-out lost or duplicated events";

  // Exactness: each subscriber's stream is precisely the filtered published
  // sequence — no gaps, no reorders, no cross-wired buffers.
  for (std::size_t i = 0; i < kSubs; ++i) {
    const auto& sub = subs[i];
    std::size_t at = 0;
    for (const auto& delta : published) {
      const auto want = sub.filter.apply(delta);
      if (want.empty()) continue;
      ASSERT_LT(at, sub.deltas.size()) << "subscriber " << i << " is missing epochs";
      EXPECT_EQ(sub.deltas[at].epoch, delta.epoch) << "subscriber " << i;
      EXPECT_EQ(sub.deltas[at].changes, want) << "subscriber " << i;
      ++at;
    }
    EXPECT_EQ(at, sub.deltas.size()) << "subscriber " << i << " got extra events";
  }

  // Gap-free per-ASN chaining on the match-all population: each change must
  // continue exactly where the previous one for that AS left off.
  for (std::size_t i = 0; i < kSubs; i += 3) {
    std::map<bgp::Asn, core::UsageClass> last;
    for (const auto& delta : subs[i].deltas) {
      for (const auto& change : delta.changes) {
        const auto it = last.find(change.asn);
        if (it != last.end()) {
          ASSERT_EQ(change.before, it->second)
              << "subscriber " << i << " AS " << change.asn << " stream has a gap";
        }
        last[change.asn] = change.after;
      }
    }
  }

  EXPECT_EQ(server.stats().slow_disconnects, 0u)
      << "a continuously drained subscriber must never be shed";
  server.stop();
}

}  // namespace
}  // namespace bgpcu::net
