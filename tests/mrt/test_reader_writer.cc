#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "mrt/reader.h"
#include "mrt/writer.h"

namespace bgpcu::mrt {
namespace {

RawRecord sample_record(std::uint32_t ts = 1621382400) {
  RawRecord rec;
  rec.timestamp = ts;
  rec.type = static_cast<std::uint16_t>(MrtType::kBgp4mp);
  rec.subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4);
  rec.body = {1, 2, 3, 4, 5};
  return rec;
}

TEST(MrtWriterReader, RoundTripMultipleRecords) {
  MrtWriter writer;
  writer.write(sample_record(1));
  writer.write(sample_record(2));
  writer.write(sample_record(3));
  EXPECT_EQ(writer.records_written(), 3u);

  MrtReader reader(writer.buffer());
  for (std::uint32_t ts = 1; ts <= 3; ++ts) {
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->timestamp, ts);
    EXPECT_EQ(rec->body, sample_record().body);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.stats().records, 3u);
}

TEST(MrtReader, EmptyBuffer) {
  MrtReader reader({});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.stats().records, 0u);
}

TEST(MrtReader, TruncatedHeaderCountedNotThrown) {
  MrtWriter writer;
  writer.write(sample_record());
  auto buf = writer.take();
  buf.resize(buf.size() + 5, 0);  // 5 stray bytes: less than a header
  MrtReader reader(buf);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.stats().truncated_tail, 5u);
}

TEST(MrtReader, TruncatedFinalBodyCountedNotThrown) {
  MrtWriter writer;
  writer.write(sample_record());
  writer.write(sample_record());
  auto buf = writer.take();
  buf.resize(buf.size() - 2);  // cut into the last record's body
  MrtReader reader(buf);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_GT(reader.stats().truncated_tail, 0u);
}

TEST(MrtWriter, TypedHelpersSetTypeAndSubtype) {
  MrtWriter writer;
  PeerIndexTable table;
  table.view_name = "x";
  writer.write_peer_index(7, table);
  MrtReader reader(writer.buffer());
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->mrt_type(), MrtType::kTableDumpV2);
  EXPECT_EQ(rec->subtype, static_cast<std::uint16_t>(TableDumpV2Subtype::kPeerIndexTable));
  EXPECT_EQ(PeerIndexTable::decode(rec->body), table);
}

TEST(MrtFileReader, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "bgpcu_test_dump.mrt";
  MrtWriter writer;
  writer.write(sample_record(11));
  writer.write(sample_record(22));
  writer.flush_to_file(path.string());

  MrtFileReader reader(path.string());
  ASSERT_EQ(reader.records().size(), 2u);
  EXPECT_EQ(reader.records()[0].timestamp, 11u);
  EXPECT_EQ(reader.records()[1].timestamp, 22u);
  std::filesystem::remove(path);
}

TEST(MrtFileReader, MissingFileThrows) {
  EXPECT_THROW(MrtFileReader("/nonexistent/path/to.mrt"), bgp::WireError);
}

}  // namespace
}  // namespace bgpcu::mrt
