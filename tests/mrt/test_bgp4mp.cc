#include "mrt/bgp4mp.h"

#include <gtest/gtest.h>

#include "bgp/message.h"

namespace bgpcu::mrt {
namespace {

Bgp4mpMessage sample_message(bool as4 = true) {
  bgp::UpdateMessage update;
  update.attributes.as_path = bgp::AsPath::from_sequence({3356, 1299});
  update.nlri = {bgp::Prefix::parse("203.0.113.0/24")};
  return Bgp4mpMessage::ipv4_session(3356, 12654, 0xC0A80001, 0xC0A80002, update.encode(as4),
                                     as4);
}

TEST(Bgp4mpMessage, RoundTripAs4) {
  const auto m = sample_message();
  EXPECT_EQ(m.subtype(), Bgp4mpSubtype::kMessageAs4);
  EXPECT_EQ(Bgp4mpMessage::decode(m.encode(), m.subtype()), m);
}

TEST(Bgp4mpMessage, RoundTripTwoByte) {
  const auto m = sample_message(false);
  EXPECT_EQ(m.subtype(), Bgp4mpSubtype::kMessage);
  EXPECT_EQ(Bgp4mpMessage::decode(m.encode(), m.subtype()), m);
}

TEST(Bgp4mpMessage, TwoByteEncodeRejects32BitAsn) {
  auto m = sample_message(false);
  m.peer_asn = 4200000001u;
  EXPECT_THROW((void)m.encode(), bgp::WireError);
}

TEST(Bgp4mpMessage, InnerBgpMessageDecodes) {
  const auto m = sample_message();
  const auto decoded = Bgp4mpMessage::decode(m.encode(), m.subtype());
  const auto update = bgp::UpdateMessage::decode(decoded.bgp_message, decoded.as4);
  EXPECT_EQ(update.nlri.size(), 1u);
  EXPECT_EQ(update.attributes.as_path->first_asn(), 3356u);
}

TEST(Bgp4mpMessage, BadAddressFamilyRejected) {
  auto body = sample_message().encode();
  // AFI lives after peer(4) + local(4) + ifindex(2) = offset 10..11.
  body[10] = 0;
  body[11] = 9;
  EXPECT_THROW((void)Bgp4mpMessage::decode(body, Bgp4mpSubtype::kMessageAs4), bgp::WireError);
}

TEST(Bgp4mpMessage, WrongSubtypeRejected) {
  const auto m = sample_message();
  EXPECT_THROW((void)Bgp4mpMessage::decode(m.encode(), Bgp4mpSubtype::kStateChange),
               bgp::WireError);
}

TEST(Bgp4mpStateChange, RoundTrip) {
  Bgp4mpStateChange change;
  change.peer_asn = 3356;
  change.local_asn = 12654;
  change.old_state = BgpState::kOpenConfirm;
  change.new_state = BgpState::kEstablished;
  EXPECT_EQ(Bgp4mpStateChange::decode(change.encode(), change.subtype()), change);
}

TEST(Bgp4mpStateChange, OutOfRangeStateRejected) {
  Bgp4mpStateChange change;
  auto body = change.encode();
  body[body.size() - 1] = 9;
  EXPECT_THROW((void)Bgp4mpStateChange::decode(body, change.subtype()), bgp::WireError);
}

}  // namespace
}  // namespace bgpcu::mrt
