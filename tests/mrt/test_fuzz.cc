// Corruption robustness: random byte flips over a valid MRT dump must never
// crash the reader or the extraction pipeline — malformed records are
// counted and skipped (the property a tool parsing terabytes of third-party
// archives lives or dies by).
#include <gtest/gtest.h>

#include "bgp/message.h"
#include "collector/extract.h"
#include "mrt/reader.h"
#include "mrt/writer.h"
#include "topology/rng.h"

namespace bgpcu::mrt {
namespace {

std::vector<std::uint8_t> valid_dump() {
  MrtWriter writer;
  PeerIndexTable table;
  table.collector_bgp_id = 1;
  table.view_name = "fuzz";
  table.peers.push_back(PeerEntry::ipv4_peer(1, 0xC0A80001, 65001));
  writer.write_peer_index(100, table);
  for (std::uint32_t i = 0; i < 50; ++i) {
    RibRecord rib;
    rib.sequence = i;
    rib.prefix = bgp::Prefix::ipv4(0x0B000000 + (i << 8), 24);
    RibEntry entry;
    entry.peer_index = 0;
    entry.originated_time = 100;
    entry.attributes.origin = bgp::Origin::kIgp;
    entry.attributes.as_path = bgp::AsPath::from_sequence({65001, 65002 + i % 5});
    entry.attributes.communities = {bgp::CommunityValue::regular(65001, static_cast<std::uint16_t>(i))};
    rib.entries.push_back(std::move(entry));
    writer.write_rib(100, rib);

    bgp::UpdateMessage update;
    update.attributes = rib.entries[0].attributes;
    update.nlri = {rib.prefix};
    writer.write_message(200 + i, Bgp4mpMessage::ipv4_session(65001, 12654, 0xC0A80001,
                                                              0xC0A80002, update.encode(true)));
  }
  return writer.take();
}

class MrtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MrtFuzz, RandomByteFlipsNeverCrashTheReader) {
  auto dump = valid_dump();
  topology::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    auto corrupted = dump;
    const auto flips = 1 + rng.below(8);
    for (std::uint64_t i = 0; i < flips; ++i) {
      corrupted[rng.below(corrupted.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    MrtReader reader(corrupted);
    std::size_t records = 0;
    while (auto rec = reader.next()) ++records;
    // No assertion on counts — only that we got here without UB/throw from
    // the framing layer (body corruption surfaces later, in typed decoding).
    EXPECT_LE(records, 1000u);
  }
}

TEST_P(MrtFuzz, RandomByteFlipsNeverCrashExtraction) {
  auto dump = valid_dump();
  registry::AllocationRegistry reg;
  reg.allocate_asn_range(1, 4294967293u);
  reg.allocate_prefix(bgp::Prefix::ipv4(0, 0));
  topology::Rng rng(GetParam() ^ 0xF00Dull);
  for (int round = 0; round < 50; ++round) {
    auto corrupted = dump;
    const auto flips = 1 + rng.below(12);
    for (std::uint64_t i = 0; i < flips; ++i) {
      corrupted[rng.below(corrupted.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    collector::DatasetBuilder builder(reg);
    builder.add_dump(corrupted);  // must not throw or crash
    const auto bundle = builder.finish();
    EXPECT_LE(bundle.dataset.size(), 200u);
  }
}

TEST_P(MrtFuzz, TruncationAtEveryBoundaryIsHandled) {
  const auto dump = valid_dump();
  registry::AllocationRegistry reg;
  reg.allocate_asn_range(1, 4294967293u);
  reg.allocate_prefix(bgp::Prefix::ipv4(0, 0));
  topology::Rng rng(GetParam() ^ 0x7123ull);
  for (int round = 0; round < 30; ++round) {
    const auto cut = rng.below(dump.size());
    std::vector<std::uint8_t> truncated(dump.begin(), dump.begin() + static_cast<long>(cut));
    collector::DatasetBuilder builder(reg);
    builder.add_dump(truncated);
    (void)builder.finish();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace bgpcu::mrt
