#include "mrt/table_dump_v2.h"

#include <gtest/gtest.h>

namespace bgpcu::mrt {
namespace {

PeerIndexTable sample_table() {
  PeerIndexTable t;
  t.collector_bgp_id = 0xC6000001;
  t.view_name = "rrc-test";
  t.peers.push_back(PeerEntry::ipv4_peer(0x0A000001, 0xC0A80001, 3356));
  t.peers.push_back(PeerEntry::ipv4_peer(0x0A000002, 0xC0A80002, 4200000001u));
  return t;
}

TEST(PeerIndexTable, RoundTrip) {
  const auto t = sample_table();
  EXPECT_EQ(PeerIndexTable::decode(t.encode()), t);
}

TEST(PeerIndexTable, Ipv6PeerRoundTrip) {
  PeerIndexTable t;
  PeerEntry peer;
  peer.ipv6 = true;
  peer.ip = {0x20, 0x01, 0x0d, 0xb8};
  peer.asn = 65000;
  peer.as4 = true;
  peer.bgp_id = 7;
  t.peers.push_back(peer);
  EXPECT_EQ(PeerIndexTable::decode(t.encode()), t);
}

TEST(PeerIndexTable, TwoByteAsnPeer) {
  PeerIndexTable t;
  PeerEntry peer = PeerEntry::ipv4_peer(1, 2, 3356);
  peer.as4 = false;
  t.peers.push_back(peer);
  EXPECT_EQ(PeerIndexTable::decode(t.encode()), t);
}

TEST(PeerIndexTable, TwoByteEntryRejects32BitAsn) {
  PeerIndexTable t;
  PeerEntry peer = PeerEntry::ipv4_peer(1, 2, 4200000001u);
  peer.as4 = false;
  t.peers.push_back(peer);
  EXPECT_THROW((void)t.encode(), bgp::WireError);
}

TEST(PeerIndexTable, TrailingBytesRejected) {
  auto body = sample_table().encode();
  body.push_back(0);
  EXPECT_THROW((void)PeerIndexTable::decode(body), bgp::WireError);
}

RibRecord sample_rib() {
  RibRecord rib;
  rib.sequence = 42;
  rib.prefix = bgp::Prefix::parse("203.0.113.0/24");
  RibEntry e;
  e.peer_index = 1;
  e.originated_time = 1621382400;
  e.attributes.origin = bgp::Origin::kIgp;
  e.attributes.as_path = bgp::AsPath::from_sequence({3356, 1299, 64496});
  e.attributes.communities = {bgp::CommunityValue::regular(3356, 100)};
  e.attributes.large_communities = {bgp::CommunityValue::large(4200000001u, 1, 2)};
  rib.entries.push_back(std::move(e));
  return rib;
}

TEST(RibRecord, RoundTrip) {
  const auto rib = sample_rib();
  EXPECT_EQ(RibRecord::decode(rib.encode(), rib.subtype()), rib);
}

TEST(RibRecord, SubtypeFollowsAfi) {
  RibRecord v4;
  v4.prefix = bgp::Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(v4.subtype(), TableDumpV2Subtype::kRibIpv4Unicast);
  RibRecord v6;
  v6.prefix = bgp::Prefix::parse("2001:db8::/32");
  EXPECT_EQ(v6.subtype(), TableDumpV2Subtype::kRibIpv6Unicast);
  EXPECT_EQ(RibRecord::decode(v6.encode(), v6.subtype()).prefix, v6.prefix);
}

TEST(RibRecord, MultipleEntriesRoundTrip) {
  auto rib = sample_rib();
  RibEntry e2;
  e2.peer_index = 0;
  e2.originated_time = 100;
  e2.attributes.as_path = bgp::AsPath::from_sequence({1299});
  rib.entries.push_back(e2);
  EXPECT_EQ(RibRecord::decode(rib.encode(), rib.subtype()), rib);
}

TEST(RibRecord, TruncatedBodyRejected) {
  auto body = sample_rib().encode();
  body.resize(body.size() - 2);
  EXPECT_THROW((void)RibRecord::decode(body, TableDumpV2Subtype::kRibIpv4Unicast),
               bgp::WireError);
}

TEST(RibRecord, TrailingBytesRejected) {
  auto body = sample_rib().encode();
  body.push_back(0xAA);
  EXPECT_THROW((void)RibRecord::decode(body, TableDumpV2Subtype::kRibIpv4Unicast),
               bgp::WireError);
}

}  // namespace
}  // namespace bgpcu::mrt
