// Round-trip tests through the full collector pipeline: synthetic routes →
// MRT emission → extraction → sanitation → dataset, with Table-1 statistics.
#include <gtest/gtest.h>

#include "collector/emit.h"
#include "collector/extract.h"
#include "collector/spec.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/generator.h"

namespace bgpcu::collector {
namespace {

struct Pipeline {
  topology::GeneratedTopology topo;
  std::vector<ProjectSpec> projects;
  sim::PathSubstrate substrate;
  core::Dataset truth_tuples;

  explicit Pipeline(std::uint64_t seed = 77, double rs_share = 0.1) {
    topology::GeneratorParams params;
    params.num_ases = 350;
    params.num_tier1 = 5;
    params.seed = seed;
    topo = topology::generate(params);
    ProjectLayoutParams layout;
    layout.total_peers = 40;
    layout.rs_session_share = rs_share;
    layout.seed = seed;
    projects = default_projects(topo, layout);
    substrate = sim::build_substrate(topo, all_peers(projects));
    sim::WildParams wild;
    wild.seed = seed;
    const auto roles = sim::assign_wild_roles(topo, wild);
    truth_tuples = sim::generate_dataset(topo, substrate, roles, sim::OutputConfig{}, seed);
  }

  DatasetBundle run_project(std::size_t index, const EmissionConfig& config) const {
    const PathOutputs outputs(truth_tuples);
    DatasetBuilder builder(topo.registry);
    for (const auto& emitted : emit_project(topo, substrate, outputs, projects[index], config)) {
      builder.add_dump(emitted.rib_dump);
      builder.add_dump(emitted.update_dump);
    }
    return builder.finish();
  }
};

EmissionConfig clean_emission() {
  EmissionConfig config;
  config.prepend_prob = 0.0;
  config.as_set_prob = 0.0;
  config.bogus_asn_prob = 0.0;
  config.bogus_prefix_prob = 0.0;
  return config;
}

TEST(CollectorPipeline, RibOnlyCleanEmissionRecoversTruthTuples) {
  Pipeline p(101, /*rs_share=*/0.0);
  const auto bundle = p.run_project(0, clean_emission());  // RIPE

  EXPECT_GT(bundle.extraction.entries_total, 0u);
  EXPECT_GT(bundle.extraction.rib_entries, 0u);
  EXPECT_EQ(bundle.extraction.decode_errors, 0u);
  EXPECT_EQ(bundle.sanitation.dropped_unallocated_asn, 0u);
  EXPECT_EQ(bundle.sanitation.dropped_unallocated_prefix, 0u);

  // Every extracted tuple must be one of the ground-truth tuples (projected
  // to this project's peers).
  const PathOutputs outputs(p.truth_tuples);
  for (const auto& tuple : bundle.dataset) {
    EXPECT_EQ(outputs.lookup(tuple.path), tuple.comms) << tuple.to_string();
  }
}

TEST(CollectorPipeline, UpdateOnlyProjectHasNoRibEntries) {
  Pipeline p(102);
  const auto bundle = p.run_project(3, clean_emission());  // PCH
  EXPECT_EQ(bundle.extraction.rib_entries, 0u);
  EXPECT_GT(bundle.extraction.update_messages, 0u);
  EXPECT_GT(bundle.dataset.size(), 0u);
}

TEST(CollectorPipeline, MessyEmissionIsSanitizedAway) {
  Pipeline p(103, /*rs_share=*/0.3);
  EmissionConfig config;  // default: prepending, AS_SETs, bogus resources on
  config.prepend_prob = 0.3;
  config.as_set_prob = 0.2;
  config.bogus_asn_prob = 0.05;
  config.bogus_prefix_prob = 0.05;
  const auto bundle = p.run_project(0, config);

  EXPECT_GT(bundle.sanitation.prepending_collapsed, 0u);
  EXPECT_GT(bundle.sanitation.as_sets_removed, 0u);
  EXPECT_GT(bundle.sanitation.dropped_unallocated_asn, 0u);
  EXPECT_GT(bundle.sanitation.dropped_unallocated_prefix, 0u);
  EXPECT_GT(bundle.sanitation.peer_prepended, 0u);

  // After sanitation no private/unallocated ASN survives in any path, and no
  // prepending remains.
  for (const auto& tuple : bundle.dataset) {
    for (std::size_t i = 0; i < tuple.path.size(); ++i) {
      EXPECT_TRUE(p.topo.registry.is_public_allocated(tuple.path[i]));
      if (i > 0) EXPECT_NE(tuple.path[i], tuple.path[i - 1]);
    }
  }
}

TEST(CollectorPipeline, RouteServerPathsGetPeerPrepended) {
  Pipeline p(104, /*rs_share=*/1.0);  // all sessions through route servers
  const auto bundle = p.run_project(2, clean_emission());  // Isolario
  EXPECT_EQ(bundle.sanitation.peer_prepended, bundle.sanitation.output)
      << "every surviving entry came via an RS session";
  for (const auto& tuple : bundle.dataset) {
    EXPECT_GE(tuple.path.front(), 59000u) << "path starts at the RS ASN";
  }
}

TEST(CollectorPipeline, StatsMatchPaperShape) {
  Pipeline p(105);
  const auto bundle = p.run_project(0, clean_emission());
  const auto stats = compute_stats(bundle, p.topo.registry);

  EXPECT_EQ(stats.entries_total, bundle.extraction.entries_total);
  EXPECT_GT(stats.rib_entries, stats.entries_total / 3) << "RIBs dominate like the paper";
  EXPECT_GT(stats.unique_tuples, 0u);
  EXPECT_LE(stats.unique_tuples, stats.entries_total);
  EXPECT_LE(stats.asns_clean, stats.asns_raw);
  EXPECT_GT(stats.leaf_ases, stats.asns_clean / 2) << "leaf majority";
  EXPECT_GT(stats.asns_32bit, 0u);
  EXPECT_GT(stats.communities_total, 0u);
  EXPECT_GT(stats.unique_communities, 0u);
  EXPECT_GE(stats.uniq_upper_both, stats.uniq_upper_wo_private);
  EXPECT_GE(stats.uniq_upper_wo_private, stats.uniq_upper_wo_stray);
  EXPECT_GT(stats.uniq_upper_wo_stray, 0u);
}

TEST(CollectorPipeline, BundleMergeAggregates) {
  Pipeline p(106);
  auto a = p.run_project(0, clean_emission());
  auto b = p.run_project(1, clean_emission());
  const auto total_entries = a.extraction.entries_total + b.extraction.entries_total;
  const auto size_a = a.dataset.size();
  a.merge(std::move(b));
  EXPECT_EQ(a.extraction.entries_total, total_entries);
  EXPECT_GE(a.dataset.size(), size_a);
  auto copy = a.dataset;
  EXPECT_EQ(core::deduplicate(copy), 0u) << "merge leaves the dataset deduplicated";
}

TEST(CollectorPipeline, CorruptDumpCountsErrorsAndContinues) {
  Pipeline p(107);
  const PathOutputs outputs(p.truth_tuples);
  auto emitted = emit_project(p.topo, p.substrate, outputs, p.projects[2], clean_emission());
  ASSERT_FALSE(emitted.empty());
  auto& dump = emitted[0].rib_dump;
  ASSERT_GT(dump.size(), 40u);
  // Corrupt one record body (past the 12-byte header) without touching the
  // framing: extraction must skip it and keep going.
  for (std::size_t i = 16; i < 36 && i < dump.size(); ++i) dump[i] ^= 0xFF;
  DatasetBuilder builder(p.topo.registry);
  builder.add_dump(dump);
  const auto bundle = builder.finish();
  EXPECT_GT(bundle.extraction.decode_errors, 0u);
}

}  // namespace
}  // namespace bgpcu::collector
