#include "collector/spec.h"

#include <gtest/gtest.h>

#include "topology/generator.h"

namespace bgpcu::collector {
namespace {

topology::GeneratedTopology make_topo() {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.num_tier1 = 5;
  params.seed = 31;
  return topology::generate(params);
}

TEST(ProjectSpec, FourProjectsWithPaperNames) {
  auto topo = make_topo();
  ProjectLayoutParams layout;
  layout.total_peers = 60;
  const auto projects = default_projects(topo, layout);
  ASSERT_EQ(projects.size(), 4u);
  EXPECT_EQ(projects[0].name, "RIPE");
  EXPECT_EQ(projects[1].name, "RouteViews");
  EXPECT_EQ(projects[2].name, "Isolario");
  EXPECT_EQ(projects[3].name, "PCH");
}

TEST(ProjectSpec, PchIsUpdateOnly) {
  auto topo = make_topo();
  const auto projects = default_projects(topo, {});
  EXPECT_TRUE(projects[0].emit_ribs);
  EXPECT_FALSE(projects[3].emit_ribs) << "PCH RIBs lack communities (§4)";
}

TEST(ProjectSpec, PeerProportionsFollowThePaper) {
  auto topo = make_topo();
  ProjectLayoutParams layout;
  layout.total_peers = 100;
  const auto projects = default_projects(topo, layout);
  const auto ripe = projects[0].distinct_peers().size();
  const auto rv = projects[1].distinct_peers().size();
  const auto iso = projects[2].distinct_peers().size();
  const auto pch = projects[3].distinct_peers().size();
  EXPECT_GT(ripe, rv);
  EXPECT_GT(rv, iso);
  EXPECT_GT(pch, ripe) << "PCH has the most peers (Table 1)";
}

TEST(ProjectSpec, PeersCanAppearInMultipleProjects) {
  auto topo = make_topo();
  ProjectLayoutParams layout;
  layout.total_peers = 40;
  const auto projects = default_projects(topo, layout);
  const auto global = all_peers(projects);
  std::size_t sum = 0;
  for (const auto& p : projects) sum += p.distinct_peers().size();
  EXPECT_LT(global.size(), sum) << "overlap expected across projects";
}

TEST(ProjectSpec, RouteServerSessionsGetAllocatedAsns) {
  auto topo = make_topo();
  ProjectLayoutParams layout;
  layout.total_peers = 60;
  layout.rs_session_share = 0.5;
  const auto projects = default_projects(topo, layout);
  std::size_t rs_sessions = 0;
  for (const auto& project : projects) {
    for (const auto& coll : project.collectors) {
      for (const auto& session : coll.sessions) {
        if (session.route_server) {
          ++rs_sessions;
          EXPECT_GE(session.rs_asn, 59000u);
          EXPECT_TRUE(topo.registry.is_public_allocated(session.rs_asn))
              << "RS ASN must survive the allocation filter";
          EXPECT_FALSE(topo.graph.node_of(session.rs_asn).has_value())
              << "RS ASN must not collide with a topology AS";
        }
      }
    }
  }
  EXPECT_GT(rs_sessions, 0u);
}

TEST(ProjectSpec, SessionsDistributedAcrossCollectors) {
  auto topo = make_topo();
  ProjectLayoutParams layout;
  layout.total_peers = 80;
  const auto projects = default_projects(topo, layout);
  for (const auto& project : projects) {
    std::size_t with_sessions = 0;
    for (const auto& coll : project.collectors) {
      if (!coll.sessions.empty()) ++with_sessions;
    }
    EXPECT_GT(with_sessions, 1u) << project.name << " concentrates sessions on one collector";
  }
}

TEST(ProjectSpec, Deterministic) {
  auto topo1 = make_topo();
  auto topo2 = make_topo();
  ProjectLayoutParams layout;
  layout.seed = 5;
  const auto a = default_projects(topo1, layout);
  const auto b = default_projects(topo2, layout);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].distinct_peers(), b[i].distinct_peers());
  }
}

}  // namespace
}  // namespace bgpcu::collector
