// §4.1 sanitation pipeline tests, step by step and end to end.
#include "collector/sanitize.h"

#include <gtest/gtest.h>

namespace bgpcu::collector {
namespace {

registry::AllocationRegistry test_registry() {
  registry::AllocationRegistry reg;
  reg.allocate_asn_range(1, 10000);
  reg.allocate_prefix(bgp::Prefix::parse("10.0.0.0/8"));
  return reg;
}

RawEntry valid_entry() {
  RawEntry e;
  e.prefix = bgp::Prefix::parse("10.1.0.0/16");
  e.session_peer_asn = 10;
  e.as_path = bgp::AsPath::from_sequence({10, 20, 30});
  e.comms = {bgp::CommunityValue::regular(20, 5)};
  return e;
}

TEST(Sanitizer, CleanEntryPassesUnchanged) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  const auto out = s.process(valid_entry());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->path, (std::vector<bgp::Asn>{10, 20, 30}));
  EXPECT_EQ(out->comms.size(), 1u);
  EXPECT_EQ(s.stats().output, 1u);
  EXPECT_EQ(s.stats().peer_prepended, 0u);
}

TEST(Sanitizer, DropsUnallocatedPrefix) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.prefix = bgp::Prefix::parse("240.0.0.0/24");
  EXPECT_FALSE(s.process(e).has_value());
  EXPECT_EQ(s.stats().dropped_unallocated_prefix, 1u);
}

TEST(Sanitizer, DropsUnallocatedAsn) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.as_path = bgp::AsPath::from_sequence({10, 50000, 30});  // 50000 not delegated
  EXPECT_FALSE(s.process(e).has_value());
  EXPECT_EQ(s.stats().dropped_unallocated_asn, 1u);
}

TEST(Sanitizer, DropsPrivateAsnInPath) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.as_path = bgp::AsPath::from_sequence({10, 64512, 30});
  EXPECT_FALSE(s.process(e).has_value());
  EXPECT_EQ(s.stats().dropped_unallocated_asn, 1u);
}

TEST(Sanitizer, RemovesAsSetSegmentsKeepsSequence) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.as_path = bgp::AsPath({{bgp::SegmentType::kAsSequence, {10, 20}},
                           {bgp::SegmentType::kAsSet, {30, 40}}});
  const auto out = s.process(e);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->path, (std::vector<bgp::Asn>{10, 20}));
  EXPECT_EQ(s.stats().as_sets_removed, 1u);
}

TEST(Sanitizer, AsSetAsnsStillAllocationChecked) {
  // Step 1 (allocation) runs before step 2 (AS_SET removal): bogus ASNs
  // inside a set still drop the entry, as in the paper's ordering.
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.as_path = bgp::AsPath({{bgp::SegmentType::kAsSequence, {10, 20}},
                           {bgp::SegmentType::kAsSet, {50000}}});
  EXPECT_FALSE(s.process(e).has_value());
}

TEST(Sanitizer, PrependsPeerAsnForRouteServerSessions) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.session_peer_asn = 99;  // RS ASN, absent from path
  const auto out = s.process(e);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->path.front(), 99u);
  EXPECT_EQ(out->path.size(), 4u);
  EXPECT_EQ(s.stats().peer_prepended, 1u);
}

TEST(Sanitizer, CollapsesPathPrepending) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.as_path = bgp::AsPath::from_sequence({10, 20, 20, 20, 30, 30});
  const auto out = s.process(e);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->path, (std::vector<bgp::Asn>{10, 20, 30}));
  EXPECT_EQ(s.stats().prepending_collapsed, 1u);
}

TEST(Sanitizer, DropsEmptyPath) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.as_path = bgp::AsPath({{bgp::SegmentType::kAsSet, {20, 30}}});  // set only
  EXPECT_FALSE(s.process(e).has_value());
  EXPECT_EQ(s.stats().dropped_empty_path, 1u);
}

TEST(Sanitizer, NormalizesCommunities) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  auto e = valid_entry();
  e.comms = {bgp::CommunityValue::regular(20, 5), bgp::CommunityValue::regular(20, 5),
             bgp::CommunityValue::regular(10, 1)};
  const auto out = s.process(e);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->comms.size(), 2u);
  EXPECT_TRUE(std::is_sorted(out->comms.begin(), out->comms.end()));
}

TEST(Sanitizer, StatsAccumulateAcrossEntries) {
  const auto reg = test_registry();
  Sanitizer s(reg);
  (void)s.process(valid_entry());
  auto bad = valid_entry();
  bad.prefix = bgp::Prefix::parse("240.0.0.0/24");
  (void)s.process(bad);
  EXPECT_EQ(s.stats().input, 2u);
  EXPECT_EQ(s.stats().output, 1u);
}

TEST(SanitationStats, Accumulation) {
  SanitationStats a, b;
  a.input = 5;
  a.output = 4;
  b.input = 3;
  b.output = 2;
  b.peer_prepended = 1;
  a += b;
  EXPECT_EQ(a.input, 8u);
  EXPECT_EQ(a.output, 6u);
  EXPECT_EQ(a.peer_prepended, 1u);
}

}  // namespace
}  // namespace bgpcu::collector
