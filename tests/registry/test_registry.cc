#include "registry/registry.h"

#include <gtest/gtest.h>

namespace bgpcu::registry {
namespace {

TEST(Registry, UnallocatedByDefault) {
  AllocationRegistry reg;
  EXPECT_EQ(reg.asn_status(3356), AsnStatus::kUnallocated);
  EXPECT_FALSE(reg.is_public_allocated(3356));
}

TEST(Registry, AllocationMakesPublic) {
  AllocationRegistry reg;
  reg.allocate_asn(3356);
  EXPECT_EQ(reg.asn_status(3356), AsnStatus::kAllocated);
  EXPECT_TRUE(reg.is_public_allocated(3356));
  EXPECT_FALSE(reg.is_public_allocated(3357));
}

TEST(Registry, SpecialPurposeBeatsAllocation) {
  AllocationRegistry reg;
  reg.allocate_asn_range(64000, 65000);  // overlaps private space
  EXPECT_EQ(reg.asn_status(64511), AsnStatus::kSpecialPurpose);  // documentation
  EXPECT_EQ(reg.asn_status(64512), AsnStatus::kSpecialPurpose);  // private
  EXPECT_EQ(reg.asn_status(64000), AsnStatus::kAllocated);
}

TEST(Registry, RangeMergingCountsOnce) {
  AllocationRegistry reg;
  reg.allocate_asn_range(10, 20);
  reg.allocate_asn_range(15, 30);  // overlap
  reg.allocate_asn_range(31, 40);  // adjacent
  EXPECT_EQ(reg.allocated_asn_count(), 31u);  // 10..40
  EXPECT_TRUE(reg.is_public_allocated(40));
  EXPECT_FALSE(reg.is_public_allocated(41));
}

TEST(Registry, DisjointRanges) {
  AllocationRegistry reg;
  reg.allocate_asn_range(100, 110);
  reg.allocate_asn_range(200, 210);
  EXPECT_TRUE(reg.is_public_allocated(105));
  EXPECT_FALSE(reg.is_public_allocated(150));
  EXPECT_TRUE(reg.is_public_allocated(205));
  EXPECT_EQ(reg.allocated_asn_count(), 22u);
}

TEST(Registry, ReversedRangeNormalized) {
  AllocationRegistry reg;
  reg.allocate_asn_range(50, 40);
  EXPECT_TRUE(reg.is_public_allocated(45));
}

TEST(Registry, PrefixContainment) {
  AllocationRegistry reg;
  reg.allocate_prefix(bgp::Prefix::parse("10.0.0.0/8"));
  EXPECT_TRUE(reg.prefix_allocated(bgp::Prefix::parse("10.1.2.0/24")));
  EXPECT_TRUE(reg.prefix_allocated(bgp::Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(reg.prefix_allocated(bgp::Prefix::parse("11.0.0.0/24")));
  EXPECT_FALSE(reg.prefix_allocated(bgp::Prefix::parse("10.0.0.0/7"))) << "covering supernet";
}

TEST(Registry, AdjacentV4BlocksMerge) {
  AllocationRegistry reg;
  reg.allocate_prefix(bgp::Prefix::parse("10.0.0.0/9"));
  reg.allocate_prefix(bgp::Prefix::parse("10.128.0.0/9"));
  EXPECT_TRUE(reg.prefix_allocated(bgp::Prefix::parse("10.0.0.0/8")))
      << "merged adjacent halves cover the /8";
}

TEST(Registry, HostRoute) {
  AllocationRegistry reg;
  reg.allocate_prefix(bgp::Prefix::parse("192.0.2.1/32"));
  EXPECT_TRUE(reg.prefix_allocated(bgp::Prefix::parse("192.0.2.1/32")));
  EXPECT_FALSE(reg.prefix_allocated(bgp::Prefix::parse("192.0.2.2/32")));
}

TEST(Registry, Ipv6Blocks) {
  AllocationRegistry reg;
  reg.allocate_prefix(bgp::Prefix::parse("2001:db8::/32"));
  EXPECT_TRUE(reg.prefix_allocated(bgp::Prefix::parse("2001:db8:1::/48")));
  EXPECT_FALSE(reg.prefix_allocated(bgp::Prefix::parse("2001:db9::/48")));
}

TEST(Registry, ThirtyTwoBitAsns) {
  AllocationRegistry reg;
  reg.allocate_asn_range(4200000, 4300000);
  EXPECT_TRUE(reg.is_public_allocated(4250000));
  EXPECT_EQ(reg.asn_status(4200000000u), AsnStatus::kSpecialPurpose);
}

}  // namespace
}  // namespace bgpcu::registry
