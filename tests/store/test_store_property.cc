// The store's correctness contract, property-style: abandon a live
// service + store at an ARBITRARY point in the epoch loop (between any two
// store/engine operations — the in-process analogue of kill -9 at a step
// boundary), recover into a fresh service, finish the remaining epochs, and
// the final snapshot must be bit-identical to an uninterrupted oracle run of
// the same scenario. Swept across seeds, shard counts, window sizes, sync
// policies, and checkpoint cadences; every seed also varies WHERE the crash
// lands, so cut points fall before the first append, mid-epoch between
// batch-log and ingest, between publish and delta-log, and right after a
// checkpoint.
//
// The crash-matrix suite (test_crash_matrix.cc) covers the other half —
// SIGKILL inside a physical write — via fork + the io hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/service.h"
#include "store/store.h"
#include "store_test_util.h"
#include "topology/rng.h"

namespace bgpcu::store {
namespace {

struct Scenario {
  std::size_t shards;
  std::uint64_t window;
  std::uint64_t checkpoint_every;
  SyncPolicy sync;
};

class KillAnywhere
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Scenario>> {};

TEST_P(KillAnywhere, RestartIsBitIdenticalToUninterruptedRun) {
  const auto [seed, scenario] = GetParam();
  topology::Rng scenario_rng(seed * 6151 + scenario.shards);
  const std::size_t epochs = 5 + scenario_rng.below(4);

  // Deterministic per-epoch batches, shared by oracle and victim.
  std::vector<core::Dataset> batches;
  {
    topology::Rng data_rng = scenario_rng.fork(1);
    for (std::size_t e = 0; e < epochs; ++e) {
      batches.push_back(testutil::random_dataset(data_rng, 30 + data_rng.below(40)));
    }
  }
  const auto config = testutil::test_service_config(scenario.shards, scenario.window);

  // Uninterrupted oracle.
  core::CounterMap oracle_map;
  stream::Epoch oracle_epoch = 0;
  {
    api::Service oracle(config);
    for (std::size_t e = 0; e < epochs; ++e) {
      if (e > 0) oracle.advance_epoch();
      oracle.ingest(batches[e]);
      oracle.publish();
    }
    oracle_map = oracle.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map();
    oracle_epoch = oracle.epoch();
  }

  // The victim run: 4 interruptible sub-steps per epoch. `cut` is the number
  // of sub-steps that complete before the "crash" (0 = crash before anything
  // durable happens at all).
  constexpr std::size_t kPhases = 4;
  const std::size_t cut = scenario_rng.below(epochs * kPhases + 1);
  testutil::TempDir dir("prop_kill");
  const StoreConfig store_config{.dir = dir.str(),
                                 .sync = scenario.sync,
                                 .checkpoint_every_epochs = scenario.checkpoint_every};
  {
    api::Service victim(config);
    Store store(store_config);
    std::size_t steps = 0;
    const auto crashed = [&] { return steps == cut; };
    for (std::size_t e = 0; e < epochs && !crashed(); ++e) {
      if (e > 0) victim.advance_epoch();
      store.append_epoch_batch(victim.epoch(), batches[e], testutil::marks_at(e));
      if (++steps == cut) break;
      victim.ingest(batches[e]);
      if (++steps == cut) break;
      store.append_epoch_delta(victim.publish());
      if (++steps == cut) break;
      store.maybe_checkpoint(victim);
      ++steps;
    }
    // Scope exit without a final checkpoint: whatever the WAL and any
    // cadence-triggered checkpoints made durable is all recovery gets.
  }

  // Recover into a fresh pair and finish the scenario.
  api::Service revived(config);
  Store store(store_config);
  const auto rec = store.recover(revived);

  // Every completed append_epoch_batch is durable, so the resume epoch is
  // exactly the last epoch whose first sub-step ran.
  const std::size_t epochs_logged = cut / kPhases + (cut % kPhases != 0 ? 1 : 0);
  if (epochs_logged == 0) {
    EXPECT_FALSE(rec.recovered);
  } else {
    EXPECT_TRUE(rec.recovered);
    EXPECT_EQ(rec.resume_epoch, epochs_logged - 1);
  }

  for (std::size_t e = epochs_logged; e < epochs; ++e) {
    if (e > 0) revived.advance_epoch();
    store.append_epoch_batch(revived.epoch(), batches[e], testutil::marks_at(e));
    revived.ingest(batches[e]);
    store.append_epoch_delta(revived.publish());
    store.maybe_checkpoint(revived);
  }

  EXPECT_EQ(revived.epoch(), oracle_epoch);
  EXPECT_EQ(revived.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map(),
            oracle_map)
      << "cut at sub-step " << cut << " of " << epochs * kPhases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, KillAnywhere,
    ::testing::Combine(
        ::testing::Range<std::uint64_t>(0, 25),
        ::testing::Values(
            Scenario{1, 0, 2, SyncPolicy::kNone},
            Scenario{4, 0, 3, SyncPolicy::kEpoch},
            Scenario{4, 2, 2, SyncPolicy::kNone},
            Scenario{8, 3, 0, SyncPolicy::kAlways})));

}  // namespace
}  // namespace bgpcu::store
