// Recovery-path tests: a fresh Service + Store pair recovering a data
// directory must reproduce the uninterrupted run exactly — engine counter
// map, epoch, feed marks, event-log contents — whether the directory holds
// WAL only, checkpoint only, or checkpoint + tail. Degraded inputs (corrupt
// manifest, corrupt newest checkpoint) recover what survives and warn.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "api/service.h"
#include "store/io.h"
#include "store/store.h"
#include "store_test_util.h"
#include "topology/rng.h"

namespace bgpcu::store {
namespace {

namespace fs = std::filesystem;
using testutil::TempDir;

/// Runs `epochs` live epochs through service + store in the daemon's order,
/// returning the per-epoch batches so a second run can be compared.
std::vector<core::Dataset> run_live(api::Service& service, Store& store,
                                    std::size_t epochs, std::uint64_t seed,
                                    std::optional<std::size_t> checkpoint_at = {}) {
  topology::Rng rng(seed);
  std::vector<core::Dataset> batches;
  for (std::size_t e = 0; e < epochs; ++e) {
    if (e > 0) service.advance_epoch();
    batches.push_back(testutil::random_dataset(rng, 30 + rng.below(30)));
    store.append_epoch_batch(service.epoch(), batches.back(), testutil::marks_at(e));
    service.ingest(batches.back());
    store.append_epoch_delta(service.publish());
    if (checkpoint_at && e == *checkpoint_at) {
      EXPECT_TRUE(store.checkpoint(service));
    }
  }
  return batches;
}

core::CounterMap snapshot_map(const api::Service& service) {
  return service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map();
}

void corrupt_file(const std::string& path) {
  auto bytes = io::read_file(path);
  bytes[bytes.size() / 2] ^= 0x20;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(Recovery, EmptyDirectoryRecoversNothing) {
  TempDir dir("rec_empty");
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str()});
  const auto rec = store.recover(service);
  EXPECT_FALSE(rec.recovered);
  EXPECT_FALSE(rec.checkpoint_epoch.has_value());
  EXPECT_EQ(rec.resume_epoch, 0u);
  EXPECT_EQ(rec.batches_replayed, 0u);
  EXPECT_TRUE(rec.warnings.empty());
  EXPECT_TRUE(snapshot_map(service).empty());
}

TEST(Recovery, WalOnlyReplayMatchesLiveRun) {
  TempDir dir("rec_wal_only");
  core::CounterMap live_map;
  stream::Epoch live_epoch = 0;
  std::vector<api::EpochDelta> live_replay;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 5, 1001);
    live_map = snapshot_map(service);
    live_epoch = service.epoch();
    live_replay = service.replay(0);
  }

  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  EXPECT_FALSE(rec.checkpoint_epoch.has_value()) << "no checkpoint was written";
  EXPECT_EQ(rec.resume_epoch, live_epoch);
  EXPECT_EQ(rec.batches_replayed, 5u);
  EXPECT_EQ(rec.truncated_records, 0u);
  EXPECT_EQ(rec.feed_marks, testutil::marks_at(4)) << "newest durable marks win";
  EXPECT_EQ(snapshot_map(service), live_map) << "replay is bit-identical";
  EXPECT_EQ(service.replay(0), live_replay) << "event log survives the restart";

  // rebaseline(): the replayed history must not be re-announced.
  EXPECT_TRUE(service.publish().changes.empty());
}

TEST(Recovery, CheckpointPlusTailReplayMatchesLiveRun) {
  TempDir dir("rec_ckpt_tail");
  core::CounterMap live_map;
  stream::Epoch live_epoch = 0;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 8, 1002, /*checkpoint_at=*/4);
    live_map = snapshot_map(service);
    live_epoch = service.epoch();
  }

  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  ASSERT_TRUE(rec.checkpoint_epoch.has_value());
  EXPECT_EQ(*rec.checkpoint_epoch, 4u);
  EXPECT_EQ(rec.resume_epoch, live_epoch);
  // Only the post-checkpoint tail replays: epochs 5..7 (the checkpoint's own
  // epoch was rotated into a dead, GC'd segment).
  EXPECT_EQ(rec.batches_replayed, 3u);
  EXPECT_EQ(snapshot_map(service), live_map);

  const auto stats = service.query({.kind = api::QueryKind::kStats}).stats;
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->epoch, live_epoch) << "epoch continuity through kStats";
}

TEST(Recovery, IndexImageRestoresWithoutRebuild) {
  TempDir dir("rec_index_image");
  core::CounterMap live_map;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 4, 1003, /*checkpoint_at=*/3);
    live_map = snapshot_map(service);
  }
  ASSERT_TRUE(fs::exists(checkpoint_path(dir.str(), 3, ".index")));

  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.index_image_loaded) << "dense-id arrays came back from the .index file";
  EXPECT_EQ(snapshot_map(service), live_map);
}

TEST(Recovery, CorruptIndexImageFallsBackToRebuild) {
  TempDir dir("rec_index_corrupt");
  core::CounterMap live_map;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 4, 1004, /*checkpoint_at=*/3);
    live_map = snapshot_map(service);
  }
  corrupt_file(checkpoint_path(dir.str(), 3, ".index"));

  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  EXPECT_FALSE(rec.index_image_loaded);
  EXPECT_FALSE(rec.warnings.empty());
  EXPECT_EQ(snapshot_map(service), live_map)
      << "a bad index image costs a rebuild, never correctness";
}

TEST(Recovery, ManifestLossRebuildsByDirectoryScan) {
  TempDir dir("rec_manifest_loss");
  core::CounterMap live_map;
  stream::Epoch live_epoch = 0;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 6, 1005, /*checkpoint_at=*/3);
    live_map = snapshot_map(service);
    live_epoch = service.epoch();
  }
  corrupt_file(manifest_path(dir.str()));

  // The scan rediscovers the checkpoint; with the WAL start unknown, replay
  // covers every surviving segment and drops records below the checkpoint.
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  ASSERT_TRUE(rec.checkpoint_epoch.has_value());
  EXPECT_EQ(*rec.checkpoint_epoch, 3u);
  EXPECT_EQ(rec.resume_epoch, live_epoch);
  EXPECT_EQ(snapshot_map(service), live_map);
}

TEST(Recovery, CorruptNewestCheckpointFallsBackToOlderOne) {
  TempDir dir("rec_ckpt_fallback");
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    topology::Rng rng(1006);
    for (std::size_t e = 0; e < 6; ++e) {
      if (e > 0) service.advance_epoch();
      const auto batch = testutil::random_dataset(rng, 25);
      store.append_epoch_batch(service.epoch(), batch, testutil::marks_at(e));
      service.ingest(batch);
      store.append_epoch_delta(service.publish());
      if (e == 2 || e == 5) EXPECT_TRUE(store.checkpoint(service));
    }
  }
  corrupt_file(checkpoint_path(dir.str(), 5, ".state"));

  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  ASSERT_TRUE(rec.checkpoint_epoch.has_value());
  EXPECT_EQ(*rec.checkpoint_epoch, 2u) << "older retained checkpoint is the fallback";
  EXPECT_FALSE(rec.warnings.empty());
  // Best-effort state: epochs between the fallback and the corrupt cut may be
  // gone (their segments were GC'd), but recovery must stay coherent and the
  // service must serve.
  EXPECT_NO_THROW((void)snapshot_map(service));
}

TEST(Recovery, TornWalTailLosesAtMostTheLastRecord) {
  TempDir dir("rec_torn_tail");
  core::CounterMap map_before_last;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    topology::Rng rng(1007);
    for (std::size_t e = 0; e < 4; ++e) {
      if (e > 0) service.advance_epoch();
      const auto batch = testutil::random_dataset(rng, 25);
      store.append_epoch_batch(service.epoch(), batch, testutil::marks_at(e));
      service.ingest(batch);
      if (e == 2) map_before_last = snapshot_map(service);
      // No delta records: the final batch record is the file's last record.
    }
  }
  const auto segments = list_segments(dir.str(), 0);
  ASSERT_EQ(segments.size(), 1u);
  fs::resize_file(segments[0].second, fs::file_size(segments[0].second) - 2);

  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.truncated_records, 1u);
  EXPECT_EQ(rec.batches_replayed, 3u);
  EXPECT_EQ(rec.resume_epoch, 2u);
  EXPECT_FALSE(rec.warnings.empty());
  EXPECT_EQ(snapshot_map(service), map_before_last)
      << "state rolls back exactly one record, no further";
}

TEST(Recovery, WindowedEngineReplaysEvictionsIdentically) {
  TempDir dir("rec_windowed");
  core::CounterMap live_map;
  std::uint64_t live_evicted = 0;
  {
    api::Service service(testutil::test_service_config(4, /*window=*/2));
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 7, 1008);
    live_map = snapshot_map(service);
    live_evicted = service.query({.kind = api::QueryKind::kStats}).stats->evicted_total;
  }
  EXPECT_GT(live_evicted, 0u) << "the scenario must actually age tuples out";

  api::Service service(testutil::test_service_config(4, /*window=*/2));
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  store.recover(service);
  EXPECT_EQ(snapshot_map(service), live_map)
      << "epoch-by-epoch replay reproduces window evictions";
  EXPECT_EQ(service.query({.kind = api::QueryKind::kStats}).stats->evicted_total,
            live_evicted);
}

TEST(Recovery, OfflineConfigFingerprintRebuildsMatchingService) {
  TempDir dir("rec_fingerprint");
  {
    api::Service service(testutil::test_service_config(8, /*window=*/5));
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    run_live(service, store, 3, 1009, /*checkpoint_at=*/2);
  }
  const auto state = load_newest_state(dir.str());
  ASSERT_TRUE(state.has_value());
  const auto config = service_config_from(*state);
  EXPECT_EQ(config.stream.shards, 8u);
  EXPECT_EQ(config.stream.window_epochs, 5u);
  EXPECT_TRUE(config.stream.incremental_index);
}

}  // namespace
}  // namespace bgpcu::store
