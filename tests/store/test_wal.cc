// WAL layer unit tests: record framing round-trips, lazy segment creation,
// size-cap and explicit rotation, the torn-tail-tolerant reader, and the
// filename parsers. The reader contract under corruption (truncate at the
// first invalid record, warn, keep later segments) is the recovery
// subsystem's foundation, so it is pinned here in isolation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "store/format.h"
#include "store/io.h"
#include "store/wal.h"
#include "store_test_util.h"
#include "topology/rng.h"

namespace bgpcu::store {
namespace {

namespace fs = std::filesystem;
using testutil::TempDir;

WalRecord batch_record(stream::Epoch epoch, topology::Rng& rng) {
  WalRecord record;
  record.kind = RecordKind::kEpochBatch;
  record.epoch = epoch;
  record.batch = testutil::random_dataset(rng, 5 + rng.below(10));
  record.marks = testutil::marks_at(epoch);
  return record;
}

WalRecord delta_record(stream::Epoch epoch) {
  WalRecord record;
  record.kind = RecordKind::kEpochDelta;
  record.epoch = epoch;
  record.delta_frame = {0xDE, 0xAD, 0xBE, 0xEF, static_cast<std::uint8_t>(epoch)};
  return record;
}

void append_raw(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void expect_records_equal(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.batch, b.batch);
  EXPECT_EQ(a.marks, b.marks);
  EXPECT_EQ(a.delta_frame, b.delta_frame);
}

TEST(WalFormat, RecordRoundTripsBothKinds) {
  topology::Rng rng(42);
  const auto batch = batch_record(7, rng);
  const auto delta = delta_record(7);

  std::vector<std::uint8_t> bytes;
  encode_record(bytes, batch);
  encode_record(bytes, delta);

  Cursor cursor{bytes};
  expect_records_equal(decode_record(cursor), batch);
  expect_records_equal(decode_record(cursor), delta);
  EXPECT_TRUE(cursor.done());
}

TEST(WalFormat, RecordRejectsFlippedPayloadByte) {
  topology::Rng rng(43);
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, batch_record(1, rng));
  bytes[bytes.size() / 2] ^= 0x01;
  Cursor cursor{bytes};
  EXPECT_THROW((void)decode_record(cursor), StoreError);
}

TEST(WalFormat, RecordRejectsEveryTruncation) {
  topology::Rng rng(44);
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, batch_record(1, rng));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Cursor cursor{std::span(bytes.data(), len)};
    EXPECT_THROW((void)decode_record(cursor), StoreError) << "prefix " << len;
  }
}

TEST(WalFormat, RecordRejectsInsaneLength) {
  std::vector<std::uint8_t> bytes;
  put_u32le(bytes, 0xFFFFFFFF);  // length far past kMaxRecordPayload
  put_u32le(bytes, 0);
  Cursor cursor{bytes};
  EXPECT_THROW((void)decode_record(cursor), StoreError);
}

TEST(WalWriter, LazyUntilFirstAppendThenRoundTrips) {
  TempDir dir("wal_lazy");
  topology::Rng rng(1);
  WalWriter writer(dir.str(), SyncPolicy::kNone, 16 << 20, 0);
  EXPECT_TRUE(list_segments(dir.str(), 0).empty()) << "no append, no file";

  std::vector<WalRecord> written;
  for (stream::Epoch e = 0; e < 5; ++e) {
    written.push_back(batch_record(e, rng));
    writer.append(written.back());
    written.push_back(delta_record(e));
    writer.append(written.back());
    writer.sync();
  }
  EXPECT_EQ(writer.appended_records(), 10u);

  const auto result = read_wal(dir.str(), 0);
  EXPECT_EQ(result.segments_read, 1u);
  EXPECT_EQ(result.truncated_records, 0u);
  EXPECT_TRUE(result.warnings.empty());
  ASSERT_EQ(result.records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    expect_records_equal(result.records[i], written[i]);
  }
}

TEST(WalWriter, SizeCapRotatesSegments) {
  TempDir dir("wal_rotate_cap");
  topology::Rng rng(2);
  // A 1-byte cap forces a fresh segment for every append after the first.
  WalWriter writer(dir.str(), SyncPolicy::kNone, 1, 0);
  for (stream::Epoch e = 0; e < 4; ++e) writer.append(delta_record(e));

  const auto segments = list_segments(dir.str(), 0);
  ASSERT_EQ(segments.size(), 4u);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].first, i) << "sequence numbers are dense from 0";
  }
  const auto result = read_wal(dir.str(), 0);
  EXPECT_EQ(result.segments_read, 4u);
  ASSERT_EQ(result.records.size(), 4u);
  for (stream::Epoch e = 0; e < 4; ++e) EXPECT_EQ(result.records[e].epoch, e);
}

TEST(WalWriter, ExplicitRotateStartsFreshSegment) {
  TempDir dir("wal_rotate_explicit");
  WalWriter writer(dir.str(), SyncPolicy::kAlways, 16 << 20, 0);
  writer.append(delta_record(0));
  const auto next = writer.rotate();
  EXPECT_EQ(next, 1u);
  EXPECT_EQ(writer.next_seq(), 1u);
  writer.append(delta_record(1));

  const auto segments = list_segments(dir.str(), 0);
  ASSERT_EQ(segments.size(), 2u);
  // Reading only from the post-rotation sequence skips the first record —
  // exactly how checkpointed recovery skips dead segments.
  const auto tail = read_wal(dir.str(), next);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].epoch, 1u);
}

TEST(WalWriter, SyncWithNothingOpenIsANoOp) {
  TempDir dir("wal_sync_noop");
  WalWriter writer(dir.str(), SyncPolicy::kEpoch, 16 << 20, 0);
  EXPECT_NO_THROW(writer.sync());
}

TEST(WalReader, TornTailTruncatesAndWarns) {
  TempDir dir("wal_torn");
  topology::Rng rng(3);
  std::vector<WalRecord> written;
  {
    WalWriter writer(dir.str(), SyncPolicy::kNone, 16 << 20, 0);
    for (stream::Epoch e = 0; e < 3; ++e) {
      written.push_back(batch_record(e, rng));
      writer.append(written.back());
    }
  }
  const auto path = segment_path(dir.str(), 0);
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 3);  // cut into the last record

  const auto result = read_segment_file(path);
  ASSERT_EQ(result.records.size(), 2u);
  expect_records_equal(result.records[0], written[0]);
  expect_records_equal(result.records[1], written[1]);
  EXPECT_EQ(result.truncated_records, 1u);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("truncated"), std::string::npos);
}

TEST(WalReader, MidSegmentCorruptionDropsTheRestOfThatSegmentOnly) {
  TempDir dir("wal_corrupt_mid");
  topology::Rng rng(4);
  {
    // Two records in segment 0, one in segment 1 (explicit rotation).
    WalWriter writer(dir.str(), SyncPolicy::kNone, 16 << 20, 0);
    writer.append(batch_record(0, rng));
    writer.append(batch_record(1, rng));
    writer.rotate();
    writer.append(batch_record(2, rng));
  }
  // Flip a byte inside the FIRST record of segment 0: the whole segment after
  // the corruption is dropped, but segment 1 still contributes its record.
  auto bytes = io::read_file(segment_path(dir.str(), 0));
  bytes[5 + 10] ^= 0x40;  // past the 5-byte header, inside record 0
  fs::remove(segment_path(dir.str(), 0));
  append_raw(segment_path(dir.str(), 0), bytes);

  const auto result = read_wal(dir.str(), 0);
  EXPECT_EQ(result.segments_read, 2u);
  EXPECT_EQ(result.truncated_records, 1u);
  EXPECT_FALSE(result.warnings.empty());
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].epoch, 2u) << "later segments survive earlier corruption";
}

TEST(WalReader, BadHeaderYieldsZeroRecordsPlusWarning) {
  TempDir dir("wal_bad_header");
  const auto garbage_path = segment_path(dir.str(), 0);
  const std::vector<std::uint8_t> garbage = {'n', 'o', 't', 'a', 'w', 'a', 'l'};
  append_raw(garbage_path, garbage);

  const auto result = read_segment_file(garbage_path);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.segments_read, 0u);
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("magic"), std::string::npos);

  // An unreadable path warns instead of throwing, too.
  const auto missing = read_segment_file(dir.str() + "/wal-000000000099.log");
  EXPECT_TRUE(missing.records.empty());
  EXPECT_EQ(missing.warnings.size(), 1u);
}

TEST(WalReader, UnsupportedVersionWarns) {
  TempDir dir("wal_bad_version");
  std::vector<std::uint8_t> bytes(kSegmentMagic.begin(), kSegmentMagic.end());
  bytes.push_back(kStoreVersion + 1);
  append_raw(segment_path(dir.str(), 0), bytes);

  const auto result = read_segment_file(segment_path(dir.str(), 0));
  EXPECT_TRUE(result.records.empty());
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("version"), std::string::npos);
}

TEST(WalReader, ListSegmentsFiltersAndSorts) {
  TempDir dir("wal_list");
  for (const auto seq : {3u, 0u, 7u}) {
    std::vector<std::uint8_t> header(kSegmentMagic.begin(), kSegmentMagic.end());
    header.push_back(kStoreVersion);
    append_raw(segment_path(dir.str(), seq), header);
  }
  // Non-segment names are ignored.
  append_raw(dir.str() + "/MANIFEST", std::vector<std::uint8_t>{1});
  append_raw(dir.str() + "/wal-junk.log", std::vector<std::uint8_t>{1});

  const auto all = list_segments(dir.str(), 0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first, 0u);
  EXPECT_EQ(all[1].first, 3u);
  EXPECT_EQ(all[2].first, 7u);

  const auto tail = list_segments(dir.str(), 4);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].first, 7u);
}

TEST(WalNames, ParsersAcceptOnlyCanonicalNames) {
  std::uint64_t seq = 0;
  EXPECT_TRUE(parse_segment_name("wal-000000000042.log", seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(parse_segment_name("wal-42.log", seq));
  EXPECT_FALSE(parse_segment_name("wal-00000000004x.log", seq));
  EXPECT_FALSE(parse_segment_name("wal-000000000042.tmp", seq));

  stream::Epoch epoch = 0;
  EXPECT_TRUE(parse_checkpoint_name("ckpt-000000000007.state", ".state", epoch));
  EXPECT_EQ(epoch, 7u);
  EXPECT_FALSE(parse_checkpoint_name("ckpt-000000000007.state", ".snap", epoch));
  EXPECT_FALSE(parse_checkpoint_name("ckpt-7.state", ".state", epoch));
}

}  // namespace
}  // namespace bgpcu::store
