// Seed-driven structured fuzz over the store's on-disk decoders, in the
// style of tests/api/test_wire.cc's wire fuzz: take valid bytes for every
// file kind (WAL segment, manifest, state file, index envelope), apply
// random byte flips, truncations, length inflation, splices, and chunk
// duplication, and hold the decode contracts:
//
//   - read_segment_file NEVER throws: corruption is truncate-and-warn.
//   - decode_manifest / decode_state_file / index_file_payload either
//     succeed or throw StoreError — nothing else, no crash, no over-read
//     (ASan enforces the over-read half in CI).
//   - A whole Store opening + recovering a mutated directory never throws.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/service.h"
#include "store/io.h"
#include "store/store.h"
#include "store_test_util.h"
#include "topology/rng.h"

namespace bgpcu::store {
namespace {

namespace fs = std::filesystem;
using testutil::TempDir;

void write_raw(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// One seed-selected mutation (the wire-fuzz set, minus the frame-header
/// special case: store files have no fixed-offset length field).
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& bytes,
                                 topology::Rng& rng) {
  auto mutated = bytes;
  if (mutated.empty()) return mutated;
  switch (rng.below(5)) {
    case 0: {  // random byte flips, 1..8 of them
      const auto flips = 1 + rng.below(8);
      for (std::uint64_t i = 0; i < flips; ++i) {
        mutated[rng.below(mutated.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
      break;
    }
    case 1:  // truncate at a random boundary
      mutated.resize(rng.below(mutated.size() + 1));
      break;
    case 2: {  // inflate a varint-looking region (set continuation bits)
      const auto start = rng.below(mutated.size());
      const auto len = 1 + rng.below(std::min<std::size_t>(4, mutated.size() - start));
      for (std::size_t i = start; i < start + len; ++i) mutated[i] |= 0x80;
      break;
    }
    case 3: {  // splice a random chunk out of the middle
      if (mutated.size() > 2) {
        const auto start = 1 + rng.below(mutated.size() - 2);
        const auto len = 1 + rng.below(mutated.size() - start);
        mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(start),
                      mutated.begin() + static_cast<std::ptrdiff_t>(start + len));
      }
      break;
    }
    default: {  // duplicate a chunk in place (grows counts/lengths)
      const auto start = rng.below(mutated.size());
      const auto len = 1 + rng.below(std::min<std::size_t>(16, mutated.size() - start));
      const std::vector<std::uint8_t> chunk(
          mutated.begin() + static_cast<std::ptrdiff_t>(start),
          mutated.begin() + static_cast<std::ptrdiff_t>(start + len));
      mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(start), chunk.begin(),
                     chunk.end());
      break;
    }
  }
  return mutated;
}

/// A populated store directory: a few live epochs, one checkpoint, a WAL
/// tail — every file kind the fuzzers need, with realistic contents.
void populate(const std::string& dir, std::uint64_t seed) {
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir, .checkpoint_every_epochs = 0});
  topology::Rng rng(seed);
  for (std::size_t e = 0; e < 5; ++e) {
    if (e > 0) service.advance_epoch();
    const auto batch = testutil::random_dataset(rng, 25);
    store.append_epoch_batch(service.epoch(), batch, testutil::marks_at(e));
    service.ingest(batch);
    store.append_epoch_delta(service.publish());
    if (e == 2) ASSERT_TRUE(store.checkpoint(service));
  }
}

TEST(StoreFuzz, MutatedSegmentsNeverMakeTheReaderThrow) {
  TempDir dir("fuzz_segment");
  populate(dir.str(), 81);
  const auto segments = list_segments(dir.str(), 0);
  ASSERT_FALSE(segments.empty());
  const auto pristine = io::read_file(segments[0].second);
  const auto baseline = read_segment_file(segments[0].second);
  ASSERT_GT(baseline.records.size(), 0u);

  const auto scratch = dir.str() + "/scratch.seg";
  topology::Rng rng(std::hash<std::string_view>{}("segment"));
  for (int round = 0; round < 400; ++round) {
    write_raw(scratch, mutate(pristine, rng));
    WalReadResult result;
    EXPECT_NO_THROW(result = read_segment_file(scratch)) << "round " << round;
    EXPECT_LE(result.records.size(), baseline.records.size() + 16)
        << "mutations cannot mint a flood of phantom records";
  }
}

TEST(StoreFuzz, MutatedManifestAndCheckpointFilesDecodeCleanlyOrThrowStoreError) {
  TempDir dir("fuzz_files");
  populate(dir.str(), 82);

  struct Corpus {
    const char* name;
    std::vector<std::uint8_t> bytes;
    std::function<void(std::span<const std::uint8_t>)> decode;
  };
  const std::vector<Corpus> corpus = {
      {"manifest", io::read_file(manifest_path(dir.str())),
       [](std::span<const std::uint8_t> b) { (void)decode_manifest(b); }},
      {"state", io::read_file(checkpoint_path(dir.str(), 2, ".state")),
       [](std::span<const std::uint8_t> b) { (void)decode_state_file(b); }},
      {"index", io::read_file(checkpoint_path(dir.str(), 2, ".index")),
       [](std::span<const std::uint8_t> b) { (void)index_file_payload(b); }},
  };
  for (const auto& entry : corpus) {
    entry.decode(entry.bytes);  // sanity: unmutated bytes decode
    topology::Rng rng(std::hash<std::string_view>{}(entry.name));
    for (int round = 0; round < 400; ++round) {
      const auto mutated = mutate(entry.bytes, rng);
      try {
        entry.decode(mutated);
      } catch (const StoreError&) {
        // The only failure currency store decoders are allowed.
      }
    }
  }
}

TEST(StoreFuzz, TruncationAtEveryBoundaryThrowsForSealedFiles) {
  TempDir dir("fuzz_truncate");
  populate(dir.str(), 83);
  const auto manifest = io::read_file(manifest_path(dir.str()));
  const auto state = io::read_file(checkpoint_path(dir.str(), 2, ".state"));
  for (std::size_t len = 0; len < manifest.size(); ++len) {
    EXPECT_THROW((void)decode_manifest(std::span(manifest.data(), len)), StoreError)
        << "manifest prefix " << len;
  }
  for (std::size_t len = 0; len < state.size(); ++len) {
    EXPECT_THROW((void)decode_state_file(std::span(state.data(), len)), StoreError)
        << "state prefix " << len;
  }
}

TEST(StoreFuzz, SplicedRecordStreamsSurviveTheSegmentWalk) {
  TempDir dir("fuzz_splice");
  populate(dir.str(), 84);
  const auto segments = list_segments(dir.str(), 0);
  ASSERT_FALSE(segments.empty());
  const auto pristine = io::read_file(segments.back().second);

  // Splice copies of the file's own tail into the middle at random cuts:
  // record envelopes land at wrong offsets, lengths point into CRC fields,
  // CRCs cover the wrong bytes. The reader must classify each as
  // truncate-and-stop, never crash.
  const auto scratch = dir.str() + "/spliced.seg";
  topology::Rng rng(1999);
  for (int round = 0; round < 200; ++round) {
    auto spliced = pristine;
    const auto cut = rng.below(spliced.size());
    const auto from = rng.below(pristine.size());
    spliced.insert(spliced.begin() + static_cast<std::ptrdiff_t>(cut),
                   pristine.begin() + static_cast<std::ptrdiff_t>(from), pristine.end());
    write_raw(scratch, spliced);
    EXPECT_NO_THROW((void)read_segment_file(scratch)) << "round " << round;
  }
}

TEST(StoreFuzz, RecoveryOverMutatedDirectoriesNeverThrows) {
  TempDir pristine_dir("fuzz_dir_pristine");
  populate(pristine_dir.str(), 85);

  // Collect the pristine files once, then each round rebuild a directory
  // with one file mutated and run the full open + recover path over it.
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> files;
  for (const auto& entry : fs::directory_iterator(pristine_dir.str())) {
    files.emplace_back(entry.path().filename().string(),
                       io::read_file(entry.path().string()));
  }
  ASSERT_GE(files.size(), 4u) << "manifest + checkpoint files + wal expected";

  topology::Rng rng(2026);
  for (int round = 0; round < 40; ++round) {
    TempDir dir("fuzz_dir_round");
    const auto victim = rng.below(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto& [name, bytes] = files[i];
      write_raw(dir.str() + "/" + name, i == victim ? mutate(bytes, rng) : bytes);
    }
    api::Service service(testutil::test_service_config());
    RecoveryStats rec;
    EXPECT_NO_THROW({
      Store store({.dir = dir.str()});
      rec = store.recover(service);
    }) << "round " << round << " mutated " << files[victim].first;
    EXPECT_NO_THROW(
        (void)service.query({.kind = api::QueryKind::kStats}))
        << "the service must stay serveable after degraded recovery";
  }
}

}  // namespace
}  // namespace bgpcu::store
