// Shared scaffolding for the store suite: scratch directories, the
// random-dataset generator in the stream-property style (small recurring ASN
// universe so classes actually flip between epochs), and the deterministic
// single-threaded service config every replay test runs under.
#ifndef BGPCU_TESTS_STORE_STORE_TEST_UTIL_H
#define BGPCU_TESTS_STORE_STORE_TEST_UTIL_H

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "api/service.h"
#include "core/types.h"
#include "store/store.h"
#include "topology/rng.h"

namespace bgpcu::store::testutil {

/// A fresh empty directory under the system temp root, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    namespace fs = std::filesystem;
    path_ = (fs::temp_directory_path() /
             ("bgpcu_store_" + tag + "_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter_++)))
                .string();
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::string& str() const noexcept { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// Random (path, comm) dataset: ASNs 1..40 recur in different positions so
/// the same AS accumulates evidence across epochs and changes class.
inline core::Dataset random_dataset(topology::Rng& rng, std::size_t tuples) {
  core::Dataset d;
  for (std::size_t i = 0; i < tuples; ++i) {
    core::PathCommTuple t;
    const std::size_t len = 1 + rng.below(6);
    while (t.path.size() < len) {
      const bgp::Asn asn = 1 + static_cast<bgp::Asn>(rng.below(40));
      if (std::find(t.path.begin(), t.path.end(), asn) == t.path.end()) {
        t.path.push_back(asn);
      }
    }
    for (const auto asn : t.path) {
      if (rng.chance(0.3)) {
        t.comms.push_back(bgp::CommunityValue::regular(
            static_cast<std::uint16_t>(asn), static_cast<std::uint16_t>(rng.below(4))));
      }
    }
    if (rng.chance(0.1)) {
      t.comms.push_back(
          bgp::CommunityValue::regular(static_cast<std::uint16_t>(100 + rng.below(20)), 1));
    }
    d.push_back(std::move(t));
  }
  return d;
}

/// Single-lane service config: replay determinism must not depend on sweep
/// parallelism, and the crash-matrix tests fork (worker threads would not
/// survive into the child).
inline api::ServiceConfig test_service_config(std::size_t shards = 4,
                                              std::uint64_t window = 0) {
  api::ServiceConfig config;
  config.stream.engine.threads = 1;
  config.stream.shards = shards;
  config.stream.window_epochs = window;
  return config;
}

/// Synthetic feed offsets for epoch `e` (what a DirectoryFeed would export).
inline stream::FeedMarks marks_at(stream::Epoch e) {
  return {{"updates.0001.mrt", 1000 + 64 * e}, {"updates.0002.mrt", 500 + 32 * e}};
}

}  // namespace bgpcu::store::testutil

#endif  // BGPCU_TESTS_STORE_STORE_TEST_UTIL_H
