// The kill -9 crash matrix: a forked child runs the real daemon epoch loop
// against a store directory with an IO hook that SIGKILLs the process at the
// Nth physical operation (write / fsync / rename). Kill points sampled
// across the whole run land mid-WAL-append, mid-checkpoint (inside the
// tmp-file writes, between rename and manifest, during the manifest's own
// rename), and mid-segment-rotation. The parent then recovers the directory
// in-process and requires the recovered snapshot to be bit-identical to the
// uninterrupted oracle AT THE RECOVERED EPOCH — durability may lose the tail
// the crash interrupted, but never corrupt or invent state.
//
// A second set runs the disk-full matrix in-process: the hook starts
// failing (as ENOSPC) at the Nth op, the store must degrade — not throw —
// while the service keeps serving, and the directory must still recover to
// a valid prefix afterwards.
//
// Everything runs with engine.threads = 1: worker threads would not survive
// fork, and replay determinism is the whole point.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/service.h"
#include "store/io.h"
#include "store/store.h"
#include "store_test_util.h"
#include "topology/rng.h"

namespace bgpcu::store {
namespace {

using testutil::TempDir;

constexpr std::uint64_t kSeed = 20210519;  // the paper's collection day
constexpr std::size_t kEpochs = 8;

struct HookGuard {
  ~HookGuard() { io::set_write_hook({}); }
};

std::vector<core::Dataset> scenario_batches() {
  topology::Rng rng(kSeed);
  std::vector<core::Dataset> batches;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    batches.push_back(testutil::random_dataset(rng, 30 + rng.below(30)));
  }
  return batches;
}

StoreConfig store_config(const std::string& dir) {
  StoreConfig config;
  config.dir = dir;
  config.sync = SyncPolicy::kEpoch;
  config.checkpoint_every_epochs = 3;  // several checkpoints inside the run
  return config;
}

/// The daemon epoch loop the whole matrix exercises.
void drive(api::Service& service, Store& store,
           const std::vector<core::Dataset>& batches) {
  for (std::size_t e = 0; e < batches.size(); ++e) {
    if (e > 0) service.advance_epoch();
    store.append_epoch_batch(service.epoch(), batches[e], testutil::marks_at(e));
    service.ingest(batches[e]);
    store.append_epoch_delta(service.publish());
    store.maybe_checkpoint(service);
  }
}

/// Oracle counter maps per epoch: oracle[e] is the state after ingesting
/// batches 0..e. Recovery at resume epoch R must equal oracle[R] exactly.
std::vector<core::CounterMap> oracle_maps(const std::vector<core::Dataset>& batches) {
  std::vector<core::CounterMap> maps;
  api::Service oracle(testutil::test_service_config());
  for (std::size_t e = 0; e < batches.size(); ++e) {
    if (e > 0) oracle.advance_epoch();
    oracle.ingest(batches[e]);
    maps.push_back(
        oracle.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map());
  }
  return maps;
}

/// Counts the physical ops of one uninterrupted run (in a scratch dir), so
/// kill points can be sampled across the whole op range.
std::uint64_t count_total_ops(const std::vector<core::Dataset>& batches) {
  TempDir scratch("matrix_count");
  std::uint64_t ops = 0;
  HookGuard guard;
  io::set_write_hook([&ops](const char*) {
    ++ops;
    return true;
  });
  api::Service service(testutil::test_service_config());
  Store store(store_config(scratch.str()));
  drive(service, store, batches);
  return ops;
}

/// Forks a child that SIGKILLs itself at physical op `kill_at`; returns true
/// when the child died by SIGKILL, false when it finished the run first.
bool run_victim(const std::string& dir, const std::vector<core::Dataset>& batches,
                std::uint64_t kill_at) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: no gtest machinery, no exceptions escaping, _exit only.
    std::uint64_t ops = 0;
    io::set_write_hook([&ops, kill_at](const char*) {
      if (++ops == kill_at) raise(SIGKILL);
      return true;
    });
    api::Service service(testutil::test_service_config());
    Store store(store_config(dir));
    drive(service, store, batches);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    return true;
  }
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  return false;
}

TEST(CrashMatrix, SigkillAtSampledOpsRecoversToAnExactPrefix) {
  const auto batches = scenario_batches();
  const auto total_ops = count_total_ops(batches);
  ASSERT_GT(total_ops, 20u) << "the run must span enough ops to sample";
  const auto oracle = oracle_maps(batches);

  // ~16 kill points spread over the op range (plus the very first and very
  // last op) cover WAL appends, epoch fsyncs, checkpoint tmp writes, and
  // the manifest rename, wherever they happen to fall.
  std::vector<std::uint64_t> kill_points = {1, total_ops};
  for (std::uint64_t k = total_ops / 16; k < total_ops; k += std::max<std::uint64_t>(
           1, total_ops / 16)) {
    kill_points.push_back(k);
  }

  for (const auto kill_at : kill_points) {
    TempDir dir("matrix_kill");
    const bool killed = run_victim(dir.str(), batches, kill_at);
    EXPECT_TRUE(killed || kill_at >= total_ops) << "kill op " << kill_at;

    api::Service service(testutil::test_service_config());
    Store store(store_config(dir.str()));
    RecoveryStats rec;
    ASSERT_NO_THROW(rec = store.recover(service)) << "kill op " << kill_at;
    if (!rec.recovered) {
      // Died before anything became durable — only possible at the earliest
      // kill points.
      EXPECT_LE(kill_at, 4u) << "kill op " << kill_at;
      continue;
    }
    ASSERT_LT(rec.resume_epoch, kEpochs) << "kill op " << kill_at;
    const auto recovered =
        service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map();
    EXPECT_EQ(recovered, oracle[rec.resume_epoch])
        << "kill op " << kill_at << ": recovered state must be bit-identical to the "
        << "uninterrupted run at epoch " << rec.resume_epoch;
  }
}

TEST(CrashMatrix, DiskFullMidRunDegradesAndTheDirectoryStaysRecoverable) {
  const auto batches = scenario_batches();
  const auto total_ops = count_total_ops(batches);
  const auto oracle = oracle_maps(batches);

  for (const auto fail_from : {std::uint64_t{1}, total_ops / 3, total_ops / 2}) {
    TempDir dir("matrix_enospc");
    {
      HookGuard guard;
      std::uint64_t ops = 0;
      io::set_write_hook([&ops, fail_from](const char*) { return ++ops < fail_from; });
      api::Service service(testutil::test_service_config());
      Store store(store_config(dir.str()));
      ASSERT_NO_THROW(drive(service, store, batches)) << "fail from op " << fail_from;
      EXPECT_TRUE(store.degraded());
      // The service itself kept ingesting in memory through the full run.
      EXPECT_EQ(service.epoch(), kEpochs - 1);
      EXPECT_EQ(service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map(),
                oracle.back());
    }

    // The disk "comes back": whatever landed before the failure must still
    // recover to an exact prefix of the run.
    api::Service service(testutil::test_service_config());
    Store store(store_config(dir.str()));
    RecoveryStats rec;
    ASSERT_NO_THROW(rec = store.recover(service)) << "fail from op " << fail_from;
    if (rec.recovered) {
      ASSERT_LT(rec.resume_epoch, kEpochs);
      EXPECT_EQ(service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map(),
                oracle[rec.resume_epoch])
          << "fail from op " << fail_from;
    }
  }
}

TEST(CrashMatrix, FsyncOnlyFailureLosesNoAcknowledgedData) {
  const auto batches = scenario_batches();
  const auto oracle = oracle_maps(batches);
  TempDir dir("matrix_fsync");
  {
    HookGuard guard;
    // Let the first segment's creation (header write + directory fsync)
    // through, then fail every later fsync: appends keep succeeding, the
    // per-epoch durability point and every checkpoint commit fail.
    std::uint64_t ops = 0;
    io::set_write_hook([&ops](const char* op) {
      ++ops;
      return std::string_view(op) != "fsync" || ops <= 2;
    });
    api::Service service(testutil::test_service_config());
    Store store(store_config(dir.str()));
    drive(service, store, batches);
    EXPECT_TRUE(store.degraded()) << "kEpoch sync policy must notice fsync failures";
  }
  // Without a real power cut, every written byte is still in the page cache:
  // recovery sees the full run even though fsync never succeeded.
  api::Service service(testutil::test_service_config());
  Store store(store_config(dir.str()));
  const auto rec = store.recover(service);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(service.query({.kind = api::QueryKind::kSnapshot}).snapshot->counter_map(),
            oracle[rec.resume_epoch]);
}

}  // namespace
}  // namespace bgpcu::store
