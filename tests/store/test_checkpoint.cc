// Checkpoint-layer tests: the three checkpoint file codecs (state, manifest,
// index envelope) round-trip and reject corruption, and the Store's
// checkpoint lifecycle holds — manifest-last commit, WAL rotation, retention
// trimming, GC of dead segments and expired checkpoint files, cadence of
// maybe_checkpoint, degraded mode under injected disk-full, and history
// assembly from retained snapshots plus the delta tail.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <span>
#include <string_view>
#include <thread>

#include "api/service.h"
#include "store/io.h"
#include "store/store.h"
#include "store_test_util.h"
#include "topology/rng.h"

namespace bgpcu::store {
namespace {

namespace fs = std::filesystem;
using testutil::TempDir;

/// Clears the process-wide IO hook even when a test fails mid-way.
struct HookGuard {
  ~HookGuard() { io::set_write_hook({}); }
};

StateFile sample_state(topology::Rng& rng) {
  StateFile state;
  state.shards = 4;
  state.window_epochs = 12;
  state.incremental_index = true;
  state.thresholds.tagger = 0.25;
  state.thresholds.silent = 0.5;
  state.thresholds.forward = 0.75;
  state.thresholds.cleaner = 0.1;
  state.max_columns = 123;
  state.early_stop = false;
  state.engine.epoch = 9;
  state.engine.evicted_total = 77;
  state.marks = testutil::marks_at(9);
  state.engine.shards.resize(2);
  std::uint64_t key = 1;
  for (auto& shard : state.engine.shards) {
    shard.next_key = 100 + key;
    for (const auto& tuple : testutil::random_dataset(rng, 6)) {
      stream::StoredTuple stored;
      stored.last_seen = rng.below(10);
      stored.key = key++;
      stored.tuple = tuple;
      shard.tuples.push_back(std::move(stored));
    }
  }
  return state;
}

/// One live epoch against service + store, the daemon loop's order: log the
/// batch first, apply it, publish, log the delta.
api::EpochDelta run_epoch(api::Service& service, Store& store, const core::Dataset& batch) {
  const auto epoch = service.epoch();
  store.append_epoch_batch(epoch, batch, testutil::marks_at(epoch));
  service.ingest(batch);
  auto delta = service.publish();
  store.append_epoch_delta(delta);
  return delta;
}

TEST(CheckpointFormat, StateFileRoundTrips) {
  topology::Rng rng(11);
  const auto state = sample_state(rng);
  const auto decoded = decode_state_file(encode_state_file(state));

  EXPECT_EQ(decoded.shards, state.shards);
  EXPECT_EQ(decoded.window_epochs, state.window_epochs);
  EXPECT_EQ(decoded.incremental_index, state.incremental_index);
  EXPECT_EQ(decoded.thresholds.tagger, state.thresholds.tagger);
  EXPECT_EQ(decoded.thresholds.silent, state.thresholds.silent);
  EXPECT_EQ(decoded.thresholds.forward, state.thresholds.forward);
  EXPECT_EQ(decoded.thresholds.cleaner, state.thresholds.cleaner);
  EXPECT_EQ(decoded.max_columns, state.max_columns);
  EXPECT_EQ(decoded.early_stop, state.early_stop);
  EXPECT_EQ(decoded.marks, state.marks);
  EXPECT_EQ(decoded.engine.epoch, state.engine.epoch);
  EXPECT_EQ(decoded.engine.evicted_total, state.engine.evicted_total);
  ASSERT_EQ(decoded.engine.shards.size(), state.engine.shards.size());
  for (std::size_t s = 0; s < state.engine.shards.size(); ++s) {
    EXPECT_EQ(decoded.engine.shards[s].next_key, state.engine.shards[s].next_key);
    ASSERT_EQ(decoded.engine.shards[s].tuples.size(), state.engine.shards[s].tuples.size());
    for (std::size_t t = 0; t < state.engine.shards[s].tuples.size(); ++t) {
      EXPECT_EQ(decoded.engine.shards[s].tuples[t].last_seen,
                state.engine.shards[s].tuples[t].last_seen);
      EXPECT_EQ(decoded.engine.shards[s].tuples[t].key,
                state.engine.shards[s].tuples[t].key);
      EXPECT_EQ(decoded.engine.shards[s].tuples[t].tuple,
                state.engine.shards[s].tuples[t].tuple);
    }
  }
}

TEST(CheckpointFormat, StateFileRejectsCorruptionAndTruncation) {
  topology::Rng rng(12);
  const auto bytes = encode_state_file(sample_state(rng));
  auto flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x08;
  EXPECT_THROW((void)decode_state_file(flipped), StoreError);
  for (const std::size_t len : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                                bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)decode_state_file(std::span(bytes.data(), len)), StoreError)
        << "prefix " << len;
  }
}

TEST(CheckpointFormat, ManifestRoundTripsAndEnforcesAscent) {
  Manifest manifest;
  manifest.checkpoints = {3, 7, 20};
  manifest.wal_start_seq = 5;
  const auto decoded = decode_manifest(encode_manifest(manifest));
  EXPECT_EQ(decoded.checkpoints, manifest.checkpoints);
  EXPECT_EQ(decoded.wal_start_seq, 5u);
  EXPECT_TRUE(decoded.has_checkpoint(7));
  EXPECT_FALSE(decoded.has_checkpoint(8));

  Manifest unsorted;
  unsorted.checkpoints = {7, 3};
  EXPECT_THROW((void)encode_manifest(unsorted), StoreError);

  auto flipped = encode_manifest(manifest);
  flipped[6] ^= 0x01;
  EXPECT_THROW((void)decode_manifest(flipped), StoreError);
}

TEST(CheckpointFormat, IndexEnvelopeRoundTripsAndValidates) {
  const std::vector<std::uint8_t> image = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto sealed = encode_index_file(image);
  const auto payload = index_file_payload(sealed);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), image.begin(), image.end()));

  auto corrupt = sealed;
  corrupt[6] ^= 0x10;
  EXPECT_THROW((void)index_file_payload(corrupt), StoreError);
  EXPECT_THROW((void)index_file_payload(std::span(sealed.data(), 8)), StoreError);
}

TEST(StoreCheckpoint, WritesFilesRotatesWalAndGcsDeadSegments) {
  TempDir dir("ckpt_basic");
  topology::Rng rng(21);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});

  for (int e = 0; e < 3; ++e) {
    if (e > 0) service.advance_epoch();
    run_epoch(service, store, testutil::random_dataset(rng, 30));
  }
  EXPECT_FALSE(list_segments(dir.str(), 0).empty());

  ASSERT_TRUE(store.checkpoint(service));
  const auto manifest = store.manifest();
  ASSERT_EQ(manifest.checkpoints.size(), 1u);
  EXPECT_EQ(manifest.checkpoints[0], 2u);
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.str(), 2, ".state")));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.str(), 2, ".snap")));
  EXPECT_TRUE(fs::exists(manifest_path(dir.str())));
  // Every pre-checkpoint record lived in a now-dead segment; GC removed them
  // and the rotated writer has not minted a new one yet.
  EXPECT_TRUE(list_segments(dir.str(), 0).empty());

  // Post-checkpoint appends land in fresh segments at/after wal_start_seq.
  service.advance_epoch();
  run_epoch(service, store, testutil::random_dataset(rng, 10));
  const auto segments = list_segments(dir.str(), 0);
  ASSERT_FALSE(segments.empty());
  EXPECT_GE(segments.front().first, manifest.wal_start_seq);
}

TEST(StoreCheckpoint, SameEpochCheckpointIsIdempotent) {
  TempDir dir("ckpt_idempotent");
  topology::Rng rng(22);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  run_epoch(service, store, testutil::random_dataset(rng, 20));

  ASSERT_TRUE(store.checkpoint(service));
  const auto first = store.manifest();
  ASSERT_TRUE(store.checkpoint(service)) << "re-checkpointing the same epoch is benign";
  const auto second = store.manifest();
  EXPECT_EQ(second.checkpoints, first.checkpoints);
  EXPECT_EQ(second.wal_start_seq, first.wal_start_seq);
}

TEST(StoreCheckpoint, RetentionTrimsOldCheckpointFiles) {
  TempDir dir("ckpt_retain");
  topology::Rng rng(23);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0, .retain_checkpoints = 2});

  for (int e = 0; e < 4; ++e) {
    if (e > 0) service.advance_epoch();
    run_epoch(service, store, testutil::random_dataset(rng, 25));
    ASSERT_TRUE(store.checkpoint(service));
  }
  const auto manifest = store.manifest();
  EXPECT_EQ(manifest.checkpoints, (std::vector<stream::Epoch>{2, 3}));
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.str(), 0, ".state")))
      << "expired checkpoint files are GC'd";
  EXPECT_FALSE(fs::exists(checkpoint_path(dir.str(), 1, ".snap")));
  EXPECT_TRUE(fs::exists(checkpoint_path(dir.str(), 3, ".state")));
}

TEST(StoreCheckpoint, MaybeCheckpointFollowsCadence) {
  TempDir dir("ckpt_cadence");
  topology::Rng rng(24);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 4});

  std::vector<stream::Epoch> written;
  for (int e = 0; e < 9; ++e) {
    if (e > 0) service.advance_epoch();
    run_epoch(service, store, testutil::random_dataset(rng, 15));
    if (store.maybe_checkpoint(service)) written.push_back(service.epoch());
  }
  EXPECT_EQ(written, (std::vector<stream::Epoch>{4, 8}));

  Store disabled({.dir = dir.str() + "/sub", .checkpoint_every_epochs = 0});
  EXPECT_FALSE(disabled.maybe_checkpoint(service)) << "0 disables the cadence";
}

TEST(StoreCheckpoint, TimeCadenceCheckpointsAQuietFeed) {
  // Regression for the quiet-feed gap: a feed trickling along under
  // checkpoint_every_epochs never checkpointed, so the WAL tail (and
  // crash-replay time) grew without bound. The time cadence fires on wall
  // clock instead — here with ZERO epoch advances since the last durable
  // state — and refuses to rewrite when the current epoch is already
  // covered (a second elapsed interval with nothing new is a no-op).
  TempDir dir("ckpt_time_cadence");
  topology::Rng rng(26);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(),
               .checkpoint_every_epochs = 100,  // epoch cadence never fires here
               .checkpoint_interval_sec = 1});

  run_epoch(service, store, testutil::random_dataset(rng, 15));
  EXPECT_FALSE(store.maybe_checkpoint(service)) << "interval has not elapsed yet";

  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  EXPECT_TRUE(store.maybe_checkpoint(service)) << "time cadence must fire";
  ASSERT_EQ(store.manifest().checkpoints.size(), 1u);
  EXPECT_EQ(store.manifest().checkpoints[0], service.epoch());

  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  EXPECT_FALSE(store.maybe_checkpoint(service))
      << "current epoch already checkpointed: nothing new to write";
  EXPECT_EQ(store.manifest().checkpoints.size(), 1u);
}

TEST(StoreCheckpoint, DiskFullDegradesInsteadOfThrowing) {
  TempDir dir("ckpt_degraded");
  topology::Rng rng(25);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
  run_epoch(service, store, testutil::random_dataset(rng, 20));
  EXPECT_FALSE(store.degraded());

  HookGuard guard;
  io::set_write_hook([](const char*) { return false; });
  service.advance_epoch();
  EXPECT_FALSE(
      store.append_epoch_batch(service.epoch(), testutil::random_dataset(rng, 5), {}));
  EXPECT_TRUE(store.degraded());
  EXPECT_FALSE(store.checkpoint(service)) << "checkpoint also degrades, never throws";
  io::set_write_hook({});

  // The service itself is unharmed: in-memory serving continues.
  const auto stats = service.query({.kind = api::QueryKind::kStats}).stats;
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->live_tuples, 0u);
}

TEST(StoreCheckpoint, FsyncFailureUnderEpochPolicyDegrades) {
  TempDir dir("ckpt_fsync_fail");
  topology::Rng rng(26);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .sync = SyncPolicy::kEpoch, .checkpoint_every_epochs = 0});

  HookGuard guard;
  io::set_write_hook([](const char* op) { return std::string_view(op) != "fsync"; });
  service.ingest(testutil::random_dataset(rng, 20));
  store.append_epoch_batch(0, testutil::random_dataset(rng, 5), {});
  const auto delta = service.publish();
  ASSERT_FALSE(delta.changes.empty());
  EXPECT_FALSE(store.append_epoch_delta(delta)) << "the epoch fsync point failed";
  EXPECT_TRUE(store.degraded());
}

TEST(StoreHistory, MatchesRetainedSnapshotsPlusDeltaTail) {
  TempDir dir("ckpt_history");
  topology::Rng rng(27);
  api::Service service(testutil::test_service_config());
  Store store({.dir = dir.str(), .checkpoint_every_epochs = 0, .retain_checkpoints = 16});

  // Checkpoint epochs 0..5, then two live epochs that stay WAL-only: their
  // published deltas form the history tail.
  std::map<stream::Epoch, stream::SnapshotPtr> snapshots;
  std::vector<api::EpochDelta> tail;
  for (int e = 0; e < 8; ++e) {
    if (e > 0) service.advance_epoch();
    const auto delta = run_epoch(service, store, testutil::random_dataset(rng, 40));
    if (e <= 5) {
      ASSERT_TRUE(store.checkpoint(service));
      snapshots[service.epoch()] = service.query({.kind = api::QueryKind::kSnapshot}).snapshot;
    } else if (!delta.changes.empty()) {
      tail.push_back(delta);
    }
  }

  // Independent oracle over the same evidence the store retained.
  for (bgp::Asn asn = 1; asn <= 40; ++asn) {
    std::vector<api::HistoryPoint> expected;
    for (const auto& [epoch, snapshot] : snapshots) {
      const auto usage = snapshot->usage(asn);
      if (expected.empty() || !(expected.back().usage == usage)) {
        expected.push_back({epoch, usage});
      }
    }
    for (const auto& delta : tail) {
      for (const auto& change : delta.changes) {
        if (change.asn != asn) continue;
        if (!expected.empty() && delta.epoch <= expected.back().epoch) continue;
        if (expected.empty() || !(expected.back().usage == change.after)) {
          expected.push_back({delta.epoch, change.after});
        }
      }
    }
    EXPECT_EQ(store.history(asn), expected) << "AS " << asn;
  }
}

TEST(StoreHistory, SurvivesColdCacheByRereadingSnapFiles) {
  TempDir dir("ckpt_history_cold");
  topology::Rng rng(28);
  std::vector<api::HistoryPoint> live_history;
  {
    api::Service service(testutil::test_service_config());
    Store store({.dir = dir.str(), .checkpoint_every_epochs = 0});
    for (int e = 0; e < 4; ++e) {
      if (e > 0) service.advance_epoch();
      run_epoch(service, store, testutil::random_dataset(rng, 40));
      ASSERT_TRUE(store.checkpoint(service));
    }
    live_history = store.history(17);
  }
  // A brand-new Store has an empty snapshot cache: history decodes the
  // retained .snap files from disk and must agree with the live view.
  const Store reopened({.dir = dir.str()});
  EXPECT_EQ(reopened.history(17), live_history);
  EXPECT_FALSE(live_history.empty());
}

}  // namespace
}  // namespace bgpcu::store
