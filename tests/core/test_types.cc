#include "core/types.h"

#include <gtest/gtest.h>

namespace bgpcu::core {
namespace {

using bgp::CommunityValue;

TEST(PathCommTuple, Accessors) {
  PathCommTuple t;
  t.path = {10, 20, 30};
  EXPECT_EQ(t.peer(), 10u);
  EXPECT_EQ(t.origin(), 30u);
  EXPECT_FALSE(t.empty());
}

TEST(PathCommTuple, ToStringShowsPathAndComms) {
  PathCommTuple t;
  t.path = {10, 20};
  t.comms = {CommunityValue::regular(10, 5)};
  EXPECT_EQ(t.to_string(), "10 20 | 10:5");
}

TEST(Deduplicate, RemovesExactDuplicates) {
  Dataset d;
  PathCommTuple a;
  a.path = {1, 2};
  a.comms = {CommunityValue::regular(1, 1)};
  d.push_back(a);
  d.push_back(a);
  const auto removed = deduplicate(d);
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(d.size(), 1u);
}

TEST(Deduplicate, NormalizesCommunityOrderBeforeComparing) {
  PathCommTuple a, b;
  a.path = b.path = {1, 2};
  a.comms = {CommunityValue::regular(1, 1), CommunityValue::regular(2, 2)};
  b.comms = {CommunityValue::regular(2, 2), CommunityValue::regular(1, 1)};
  Dataset d = {a, b};
  deduplicate(d);
  EXPECT_EQ(d.size(), 1u);
}

TEST(Deduplicate, KeepsDistinctCommSetsForSamePath) {
  PathCommTuple a, b;
  a.path = b.path = {1, 2};
  a.comms = {CommunityValue::regular(1, 1)};
  b.comms = {};
  Dataset d = {a, b};
  deduplicate(d);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DistinctAsns, SortedAndUnique) {
  Dataset d;
  PathCommTuple a;
  a.path = {30, 10, 20};
  PathCommTuple b;
  b.path = {20, 40};
  d = {a, b};
  EXPECT_EQ(distinct_asns(d), (std::vector<bgp::Asn>{10, 20, 30, 40}));
}

TEST(TupleHash, DiffersForDifferentComms) {
  PathCommTuple a, b;
  a.path = b.path = {1, 2};
  a.comms = {CommunityValue::regular(1, 1)};
  const auto ha = std::hash<PathCommTuple>{}(a);
  const auto hb = std::hash<PathCommTuple>{}(b);
  EXPECT_NE(ha, hb);
}

}  // namespace
}  // namespace bgpcu::core
