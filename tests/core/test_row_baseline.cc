// Row-based baseline (Listing 2): verifies its unconditional counting and
// the precision gap against the column engine that motivates §5.7.
#include "core/row_baseline.h"

#include <gtest/gtest.h>

#include "core/engine.h"

namespace bgpcu::core {
namespace {

using bgp::CommunityValue;

PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<CommunityValue> comms) {
  PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  bgp::normalize(t.comms);
  return t;
}

CommunityValue c(std::uint16_t admin) { return CommunityValue::regular(admin, 1); }

TEST(RowEngine, CountsTaggingAtEveryPosition) {
  const Dataset d = {tuple({10, 20, 30}, {c(20)})};
  const auto r = RowEngine().run(d);
  EXPECT_EQ(r.counters(10).s, 1u);
  EXPECT_EQ(r.counters(20).t, 1u);
  EXPECT_EQ(r.counters(30).s, 1u);
}

TEST(RowEngine, ForwardCreditPropagatesUpstreamOfVisibleTag) {
  // A2's community visible -> both A1 gets forward credit (Listing 2 line 14).
  const Dataset d = {tuple({10, 20, 30}, {c(30)})};
  const auto r = RowEngine().run(d);
  // Position walk: x=2 (A3=30 tagged): f for A1, A2; x=1 (A2=20 untagged): c for A1.
  EXPECT_EQ(r.counters(10).f, 1u);
  EXPECT_EQ(r.counters(20).f, 1u);
  EXPECT_EQ(r.counters(10).c, 1u);
}

TEST(RowEngine, CountsThroughCleanersUnlikeColumnEngine) {
  // The paper's §5.7 argument: the row approach counts Z silent behind a
  // cleaner; the column engine refuses.
  const Dataset d = {
      tuple({40}, {c(40)}),   // T tagger peer
      tuple({10, 40}, {}),    // X cleans -> column classifies cleaner
      tuple({10, 50}, {}),    // Z hidden behind X
  };
  const auto row = RowEngine().run(d);
  const auto col = ColumnEngine().run(d);
  EXPECT_EQ(row.counters(50).s, 1u);  // row counts hidden Z as silent
  EXPECT_EQ(col.counters(50).s, 0u);  // column does not
  EXPECT_EQ(row.tagging(50), TaggingClass::kSilent);
  EXPECT_EQ(col.tagging(50), TaggingClass::kNone);
}

TEST(RowEngine, MisclassifiesHiddenTaggerAsSilent) {
  // Z is really a tagger whose tag a cleaner removes; the row baseline
  // counts it silent — a false classification the column engine avoids.
  const Dataset d = {
      tuple({40}, {c(40)}),       // T tagger peer (for symmetry)
      tuple({10, 40}, {}),        // X cleaner evidence
      tuple({10, 50}, {}),        // Z tagged, X cleaned: observation is empty
  };
  const auto row = RowEngine().run(d);
  EXPECT_EQ(row.tagging(50), TaggingClass::kSilent);  // wrong by construction
}

TEST(RowEngine, SinglePeerPathsMatchColumnEngineTagging) {
  const Dataset d = {tuple({10}, {c(10)}), tuple({20}, {})};
  const auto row = RowEngine().run(d);
  const auto col = ColumnEngine().run(d);
  EXPECT_EQ(row.tagging(10), col.tagging(10));
  EXPECT_EQ(row.tagging(20), col.tagging(20));
}

TEST(RowEngine, EmptyDataset) {
  const auto r = RowEngine().run({});
  EXPECT_TRUE(r.counter_map().empty());
}

}  // namespace
}  // namespace bgpcu::core
