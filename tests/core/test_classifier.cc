// Threshold classifier tests (§5.3 predicates, §5.5 get_class).
#include "core/classifier.h"

#include <gtest/gtest.h>

namespace bgpcu::core {
namespace {

TEST(Classifier, NoneWhenNoEvidence) {
  const UsageCounters k{};
  EXPECT_EQ(classify_tagging(k, {}), TaggingClass::kNone);
  EXPECT_EQ(classify_forwarding(k, {}), ForwardingClass::kNone);
  EXPECT_EQ(classify(k, {}).code(), "nn");
}

TEST(Classifier, PureCountersClassifyAtDefaultThreshold) {
  UsageCounters k;
  k.t = 100;
  EXPECT_EQ(classify_tagging(k, {}), TaggingClass::kTagger);
  k = {};
  k.s = 1;
  EXPECT_EQ(classify_tagging(k, {}), TaggingClass::kSilent);
  k = {};
  k.f = 3;
  EXPECT_EQ(classify_forwarding(k, {}), ForwardingClass::kForward);
  k = {};
  k.c = 7;
  EXPECT_EQ(classify_forwarding(k, {}), ForwardingClass::kCleaner);
}

TEST(Classifier, The99PercentDefaultAllowsRareExceptions) {
  UsageCounters k;
  k.t = 199;
  k.s = 1;  // 99.5% tagger share
  EXPECT_EQ(classify_tagging(k, {}), TaggingClass::kTagger);
  k.t = 98;
  k.s = 2;  // 98% < 99% -> undecided
  EXPECT_EQ(classify_tagging(k, {}), TaggingClass::kUndecided);
}

TEST(Classifier, MixedEvidenceIsUndecided) {
  UsageCounters k;
  k.t = 1;
  k.s = 1;
  EXPECT_EQ(classify_tagging(k, {}), TaggingClass::kUndecided);
  k = {};
  k.f = 5;
  k.c = 5;
  EXPECT_EQ(classify_forwarding(k, {}), ForwardingClass::kUndecided);
}

TEST(Classifier, LooseThresholdsCanDecideMixedEvidence) {
  UsageCounters k;
  k.t = 6;
  k.s = 4;
  const auto th = Thresholds::uniform(0.5);
  EXPECT_EQ(classify_tagging(k, th), TaggingClass::kTagger);
  k.t = 4;
  k.s = 6;
  EXPECT_EQ(classify_tagging(k, th), TaggingClass::kSilent);
}

TEST(Classifier, TaggerPrecedesSilentWhenBothSatisfied) {
  // At threshold 0.5 with a perfect tie both predicates hold; get_tagging
  // checks is_tagger first (§5.5 order).
  UsageCounters k;
  k.t = 5;
  k.s = 5;
  EXPECT_EQ(classify_tagging(k, Thresholds::uniform(0.5)), TaggingClass::kTagger);
}

TEST(Classifier, CodeStringsMatchPaperNotation) {
  UsageCounters k;
  k.t = 10;
  k.f = 10;
  EXPECT_EQ(classify(k, {}).code(), "tf");
  k = {};
  k.s = 10;
  k.c = 10;
  EXPECT_EQ(classify(k, {}).code(), "sc");
  k = {};
  k.t = 1;
  k.s = 1;
  EXPECT_EQ(classify(k, {}).code(), "un");
}

TEST(Classifier, FullRequiresBothDecided) {
  UsageCounters k;
  k.t = 10;
  k.f = 10;
  EXPECT_TRUE(classify(k, {}).full());
  k.f = 0;
  EXPECT_FALSE(classify(k, {}).full());
  k.f = 1;
  k.c = 1;
  EXPECT_FALSE(classify(k, {}).full());  // forwarding undecided
}

TEST(Classifier, CharCodes) {
  EXPECT_EQ(to_char(TaggingClass::kTagger), 't');
  EXPECT_EQ(to_char(TaggingClass::kSilent), 's');
  EXPECT_EQ(to_char(TaggingClass::kUndecided), 'u');
  EXPECT_EQ(to_char(TaggingClass::kNone), 'n');
  EXPECT_EQ(to_char(ForwardingClass::kForward), 'f');
  EXPECT_EQ(to_char(ForwardingClass::kCleaner), 'c');
}

// Threshold boundary sweep: is_tagger must hold exactly when share >= th.
class ThresholdBoundary : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdBoundary, PredicateMatchesShareComparison) {
  const double th = GetParam() / 100.0;
  const Thresholds thresholds = Thresholds::uniform(th);
  for (std::uint64_t t = 0; t <= 20; ++t) {
    for (std::uint64_t s = 0; s <= 20; ++s) {
      if (t + s == 0) continue;
      UsageCounters k;
      k.t = t;
      k.s = s;
      const bool expected =
          static_cast<double>(t) >= th * static_cast<double>(t + s);
      EXPECT_EQ(is_tagger(k, thresholds), expected) << "t=" << t << " s=" << s << " th=" << th;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThresholdBoundary, ::testing::Values(50, 66, 75, 90, 99, 100));

}  // namespace
}  // namespace bgpcu::core
