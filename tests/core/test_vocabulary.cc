// Vocabulary inference tests (§8 future work): attributing community values
// to classified taggers and grading informational vs signaling usage.
#include "core/vocabulary.h"

#include <gtest/gtest.h>

#include "core/engine.h"

namespace bgpcu::core {
namespace {

using bgp::CommunityValue;

PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<CommunityValue> comms) {
  PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  bgp::normalize(t.comms);
  return t;
}

CommunityValue c(std::uint16_t admin, std::uint16_t value) {
  return CommunityValue::regular(admin, value);
}

// A tagger peer (AS 10) that carries value 10:1 on every announcement and
// 10:666 on exactly one — informational vs signaling.
Dataset tagger_dataset() {
  Dataset d;
  for (std::uint16_t origin = 100; origin < 120; ++origin) {
    std::vector<CommunityValue> comms{c(10, 1)};
    if (origin == 100) comms.push_back(c(10, 666));
    d.push_back(tuple({10, 50, origin}, comms));
  }
  d.push_back(tuple({10}, {c(10, 1)}));
  deduplicate(d);
  return d;
}

TEST(Vocabulary, AttributesValuesToTaggers) {
  const auto d = tagger_dataset();
  const auto result = ColumnEngine().run(d);
  ASSERT_EQ(result.tagging(10), TaggingClass::kTagger);

  const auto vocab = infer_vocabulary(d, result);
  ASSERT_TRUE(vocab.contains(10));
  const auto& entries = vocab.at(10);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].value, c(10, 1)) << "sorted by occurrences";
  EXPECT_EQ(entries[1].value, c(10, 666));
}

TEST(Vocabulary, GradesInformationalVsSignaling) {
  const auto d = tagger_dataset();
  const auto result = ColumnEngine().run(d);
  const auto vocab = infer_vocabulary(d, result);
  const auto& entries = vocab.at(10);
  EXPECT_EQ(entries[0].kind, ValueKind::kInformational);
  EXPECT_GT(entries[0].coverage, 0.9);
  EXPECT_EQ(entries[1].kind, ValueKind::kSignaling);
  EXPECT_LT(entries[1].coverage, 0.1);
}

TEST(Vocabulary, NonTaggersGetNoVocabulary) {
  const auto d = tagger_dataset();
  const auto result = ColumnEngine().run(d);
  const auto vocab = infer_vocabulary(d, result);
  EXPECT_FALSE(vocab.contains(50)) << "AS 50 is silent";
  for (std::uint16_t origin = 100; origin < 120; ++origin) {
    EXPECT_FALSE(vocab.contains(origin));
  }
}

TEST(Vocabulary, StopsAttributionBehindNonForwarders) {
  // A tagger whose only appearances sit behind a cleaner must not accumulate
  // appearance counts from those hidden positions.
  Dataset d;
  d.push_back(tuple({40}, {c(40, 9)}));        // tagger peer evidence
  d.push_back(tuple({20, 40}, {}));            // 20 cleans -> cleaner
  for (std::uint16_t origin = 200; origin < 210; ++origin) {
    d.push_back(tuple({20, 40, origin}, {}));  // 40 behind cleaner 20
  }
  deduplicate(d);
  const auto result = ColumnEngine().run(d);
  ASSERT_EQ(result.tagging(40), TaggingClass::kTagger);
  ASSERT_EQ(result.forwarding(20), ForwardingClass::kCleaner);

  const auto vocab = infer_vocabulary(d, result);
  ASSERT_TRUE(vocab.contains(40));
  // Only the direct peer appearance counts; everything behind AS 20 is
  // invisible.
  EXPECT_EQ(vocab.at(40)[0].appearances, 1u);
  EXPECT_DOUBLE_EQ(vocab.at(40)[0].coverage, 1.0);
}

TEST(Vocabulary, MinAppearancesGate) {
  Dataset d;
  d.push_back(tuple({10}, {c(10, 1)}));
  deduplicate(d);
  const auto result = ColumnEngine().run(d);
  VocabularyConfig config;
  config.min_appearances = 5;
  const auto vocab = infer_vocabulary(d, result, config);
  ASSERT_TRUE(vocab.contains(10));
  EXPECT_EQ(vocab.at(10)[0].kind, ValueKind::kUnclassified) << "too few appearances to grade";
}

TEST(Vocabulary, LargeCommunityValuesAttributed) {
  Dataset d;
  const bgp::Asn big = 4200000;
  for (std::uint16_t origin = 100; origin < 110; ++origin) {
    d.push_back(tuple({big, origin}, {CommunityValue::large(big, 7, 7)}));
  }
  deduplicate(d);
  const auto result = ColumnEngine().run(d);
  const auto vocab = infer_vocabulary(d, result);
  ASSERT_TRUE(vocab.contains(big));
  EXPECT_EQ(vocab.at(big)[0].value, CommunityValue::large(big, 7, 7));
  EXPECT_EQ(vocab.at(big)[0].kind, ValueKind::kInformational);
}

TEST(Vocabulary, KindNames) {
  EXPECT_STREQ(to_string(ValueKind::kInformational), "informational");
  EXPECT_STREQ(to_string(ValueKind::kSignaling), "signaling");
  EXPECT_STREQ(to_string(ValueKind::kUnclassified), "unclassified");
}

}  // namespace
}  // namespace bgpcu::core
