#include "core/database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace bgpcu::core {
namespace {

InferenceResult sample_result() {
  CounterMap counters;
  counters[3356] = UsageCounters{1042, 3, 977, 0};
  counters[1299] = UsageCounters{0, 500, 0, 120};
  counters[4200000001u] = UsageCounters{7, 0, 0, 0};
  return InferenceResult(std::move(counters), Thresholds::uniform(0.95), 4);
}

TEST(Database, RoundTripPreservesCountersAndThresholds) {
  const auto original = sample_result();
  std::stringstream buffer;
  write_database(buffer, original);
  const auto loaded = read_database(buffer);

  ASSERT_EQ(loaded.counter_map().size(), original.counter_map().size());
  for (const auto& [asn, k] : original.counter_map()) {
    EXPECT_EQ(loaded.counters(asn), k) << "ASN " << asn;
    EXPECT_EQ(loaded.usage(asn), original.usage(asn));
  }
  EXPECT_DOUBLE_EQ(loaded.thresholds().tagger, 0.95);
  EXPECT_DOUBLE_EQ(loaded.thresholds().cleaner, 0.95);
}

TEST(Database, OutputIsSortedByAsn) {
  std::stringstream buffer;
  write_database(buffer, sample_result());
  std::string line;
  std::uint64_t prev = 0;
  bool seen_row = false;
  while (std::getline(buffer, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto asn = std::stoull(line.substr(0, line.find(' ')));
    if (seen_row) EXPECT_GT(asn, prev);
    prev = asn;
    seen_row = true;
  }
  EXPECT_TRUE(seen_row);
}

TEST(Database, RowsCarryClassCodes) {
  std::stringstream buffer;
  write_database(buffer, sample_result());
  const auto text = buffer.str();
  EXPECT_NE(text.find("3356 tf 1042 3 977 0"), std::string::npos) << text;
  EXPECT_NE(text.find("1299 sc 0 500 0 120"), std::string::npos);
}

TEST(Database, ReadsCrlfLineEndings) {
  std::stringstream unix_buffer;
  write_database(unix_buffer, sample_result());
  std::string crlf;
  for (const char c : unix_buffer.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream buffer(crlf);
  const auto loaded = read_database(buffer);
  ASSERT_EQ(loaded.counter_map().size(), 3u);
  EXPECT_EQ(loaded.counters(3356), (UsageCounters{1042, 3, 977, 0}));
  EXPECT_DOUBLE_EQ(loaded.thresholds().tagger, 0.95);
}

TEST(Database, MalformedRowErrorCarriesLineNumber) {
  std::stringstream buffer(
      "# bgpcu-inference-db v1\n# thresholds tagger=0.99\n# asn class t s f c\n"
      "3356 tf 1042 3 977 0\n1299 sc zero 0 0 0\n");
  try {
    (void)read_database(buffer);
    FAIL() << "malformed row accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos) << e.what();
  }
}

TEST(Database, MalformedThresholdErrorCarriesLineNumber) {
  std::stringstream buffer("# bgpcu-inference-db v1\n# thresholds tagger=bogus\n");
  try {
    (void)read_database(buffer);
    FAIL() << "malformed threshold accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Database, RejectsBadMagic) {
  std::stringstream buffer("not a database\n1 tf 1 0 0 0\n");
  EXPECT_THROW((void)read_database(buffer), std::runtime_error);
}

TEST(Database, RejectsMalformedRow) {
  std::stringstream buffer("# bgpcu-inference-db v1\n3356 tf x y z w\n");
  EXPECT_THROW((void)read_database(buffer), std::runtime_error);
}

TEST(Database, RejectsOverflowingAsn) {
  std::stringstream buffer("# bgpcu-inference-db v1\n99999999999 tf 1 0 0 0\n");
  EXPECT_THROW((void)read_database(buffer), std::runtime_error);
}

TEST(Database, EmptyDatabaseRoundTrips) {
  const InferenceResult empty(CounterMap{}, Thresholds{}, 0);
  std::stringstream buffer;
  write_database(buffer, empty);
  const auto loaded = read_database(buffer);
  EXPECT_TRUE(loaded.counter_map().empty());
}

TEST(Database, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "bgpcu_test_db.txt";
  write_database_file(path.string(), sample_result());
  const auto loaded = read_database_file(path.string());
  EXPECT_EQ(loaded.counters(3356).t, 1042u);
  std::filesystem::remove(path);
}

TEST(Database, MissingFileThrows) {
  EXPECT_THROW((void)read_database_file("/nonexistent/db.txt"), std::runtime_error);
}

}  // namespace
}  // namespace bgpcu::core
