// The parallel sweep kernel's determinism contract, property-style: for any
// dataset and any lane count, sweep_columns must be bit-identical to the
// serial kernel (threads=1) — same counter map, same columns_swept — because
// lanes count into partial arrays merged by addition after each phase
// barrier. Covers early_stop on/off, max_columns caps, the IndexedDataset
// overload vs. the view-span overload, and degenerate inputs. The thread
// counts deliberately exceed the host's parallelism (lanes queue on the
// shared TaskPool), so the parallel path is exercised even on 1-core CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/engine.h"
#include "topology/rng.h"
#include "util/task_pool.h"

namespace bgpcu::core {
namespace {

// Random (path, comm) dataset in the style of test_engine_property: ASNs
// 1..40 so ASes recur in different positions, random path lengths, random
// community subsets keyed on path members plus off-path admins.
Dataset random_dataset(std::uint64_t seed, std::size_t tuples) {
  topology::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < tuples; ++i) {
    PathCommTuple t;
    const std::size_t len = 1 + rng.below(6);
    while (t.path.size() < len) {
      const bgp::Asn asn = 1 + static_cast<bgp::Asn>(rng.below(40));
      if (std::find(t.path.begin(), t.path.end(), asn) == t.path.end()) t.path.push_back(asn);
    }
    for (const auto asn : t.path) {
      if (rng.chance(0.3)) {
        t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(asn),
                                                       static_cast<std::uint16_t>(rng.below(4))));
      }
    }
    if (rng.chance(0.1)) {
      t.comms.push_back(bgp::CommunityValue::regular(
          static_cast<std::uint16_t>(100 + rng.below(20)), 1));
    }
    d.push_back(std::move(t));
  }
  deduplicate(d);
  return d;
}

std::vector<TupleView> prepare_views(const Dataset& d) {
  std::vector<TupleView> views;
  views.reserve(d.size());
  for (const auto& t : d) {
    if (auto view = TupleView::prepare(t)) views.push_back(*view);
  }
  return views;
}

void expect_identical(const InferenceResult& a, const InferenceResult& b,
                      const std::string& label) {
  ASSERT_EQ(a.counter_map(), b.counter_map()) << label;
  EXPECT_EQ(a.columns_swept(), b.columns_swept()) << label;
}

class ParallelSweepEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelSweepEquivalence, LaneCountNeverChangesOutput) {
  const auto d = random_dataset(GetParam(), 300 + (GetParam() % 7) * 40);
  const auto views = prepare_views(d);

  EngineConfig serial;
  serial.threads = 1;
  const auto reference = sweep_columns(views, serial);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    EngineConfig parallel = serial;
    parallel.threads = threads;
    expect_identical(sweep_columns(views, parallel), reference,
                     "threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelSweepEquivalence, EarlyStopDisabledStillIdentical) {
  const auto d = random_dataset(GetParam() * 31 + 7, 250);
  const auto views = prepare_views(d);

  EngineConfig serial;
  serial.threads = 1;
  serial.early_stop = false;
  const auto reference = sweep_columns(views, serial);
  EXPECT_EQ(reference.columns_swept(), IndexedDataset(views).max_len());

  for (const std::size_t threads : {2u, 4u, 8u}) {
    EngineConfig parallel = serial;
    parallel.threads = threads;
    expect_identical(sweep_columns(views, parallel), reference,
                     "early_stop=off threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelSweepEquivalence, MaxColumnsCapRespectedInEveryLaneCount) {
  const auto d = random_dataset(GetParam() * 101 + 3, 250);
  const auto views = prepare_views(d);

  for (const std::size_t cap : {1u, 2u, 3u}) {
    EngineConfig serial;
    serial.threads = 1;
    serial.max_columns = cap;
    const auto reference = sweep_columns(views, serial);
    EXPECT_LE(reference.columns_swept(), cap);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      EngineConfig parallel = serial;
      parallel.threads = threads;
      expect_identical(sweep_columns(views, parallel), reference,
                       "cap=" + std::to_string(cap) + " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSweepEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(ParallelSweep, EmptyDatasetAllLaneCounts) {
  const std::vector<TupleView> none;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    EngineConfig config;
    config.threads = threads;
    const auto result = sweep_columns(none, config);
    EXPECT_TRUE(result.counter_map().empty());
    EXPECT_EQ(result.columns_swept(), 0u);
  }
}

TEST(ParallelSweep, SingleTupleMoreLanesThanTuples) {
  Dataset d;
  PathCommTuple t;
  t.path = {1, 2, 3};
  t.comms = {bgp::CommunityValue::regular(1, 1)};
  d.push_back(t);
  const auto views = prepare_views(d);

  EngineConfig serial;
  serial.threads = 1;
  EngineConfig parallel;
  parallel.threads = 8;
  expect_identical(sweep_columns(views, parallel), sweep_columns(views, serial),
                   "1 tuple, 8 lanes");
}

TEST(ParallelSweep, IndexedOverloadMatchesViewOverload) {
  const auto d = random_dataset(99, 400);
  const auto views = prepare_views(d);
  const IndexedDataset indexed(views);
  EXPECT_EQ(indexed.tuple_count(), views.size());

  // Single-pass construction must agree with a direct max-length scan.
  std::size_t max_len = 0;
  for (const auto& v : views) max_len = std::max(max_len, v.path->size());
  EXPECT_EQ(indexed.max_len(), max_len);

  for (const std::size_t threads : {1u, 4u}) {
    EngineConfig config;
    config.threads = threads;
    expect_identical(sweep_columns(indexed, config), sweep_columns(views, config),
                     "indexed vs views, threads=" + std::to_string(threads));
  }
}

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  util::TaskPool pool(3);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskPool, ZeroWorkersDegradesToSerial) {
  util::TaskPool pool(0);
  EXPECT_EQ(pool.parallelism(), 1u);
  std::size_t sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });  // caller-thread only: no race
  EXPECT_EQ(sum, 45u);
}

TEST(TaskPool, PropagatesFirstException) {
  util::TaskPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i % 7 == 0) throw std::runtime_error("lane failure");
                        }),
      std::runtime_error);
  // The pool survives a throwing job and stays usable.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace bgpcu::core
