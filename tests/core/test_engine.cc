// Column-engine tests. The scenarios here are transcriptions of the paper's
// worked examples in §5.1 (noise, hidden behavior, AS-level periphery),
// §5.2.1 (race conditions) and §5.4 (selective behavior).
#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/types.h"

namespace bgpcu::core {
namespace {

using bgp::CommunityValue;

PathCommTuple tuple(std::vector<bgp::Asn> path, std::vector<CommunityValue> comms) {
  PathCommTuple t;
  t.path = std::move(path);
  t.comms = std::move(comms);
  bgp::normalize(t.comms);
  return t;
}

CommunityValue c(std::uint16_t admin, std::uint16_t value = 1) {
  return CommunityValue::regular(admin, value);
}

InferenceResult run(const Dataset& d) { return ColumnEngine().run(d); }

// --- §5.1: peer tagging is trivially observable ---------------------------

TEST(ColumnEngine, PeerTaggerAndSilentAreDirectlyObservable) {
  //   C <-X:*- X      C <-()- Y
  const Dataset d = {tuple({10}, {c(10)}), tuple({20}, {})};
  const auto r = run(d);
  EXPECT_EQ(r.tagging(10), TaggingClass::kTagger);
  EXPECT_EQ(r.tagging(20), TaggingClass::kSilent);
  // No downstream taggers exist, so forwarding stays none.
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kNone);
  EXPECT_EQ(r.forwarding(20), ForwardingClass::kNone);
}

// --- §5.1.2: a visible downstream tagger illuminates forwarding -----------

TEST(ColumnEngine, DownstreamTaggerIlluminatesForwardBehavior) {
  //   C <-Z:*- Z          (Z also peers with the collector)
  //   C <-Z:*- X <- Z     (X forwards Z's tag)
  const Dataset d = {tuple({30}, {c(30)}), tuple({10, 30}, {c(30)})};
  const auto r = run(d);
  EXPECT_EQ(r.tagging(30), TaggingClass::kTagger);
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kForward);
  EXPECT_EQ(r.tagging(10), TaggingClass::kSilent);
  // Z is the origin everywhere: nothing can illuminate its forwarding.
  EXPECT_EQ(r.forwarding(30), ForwardingClass::kNone);
}

TEST(ColumnEngine, MissingTaggerCommunityMakesCleaner) {
  //   C <-Z:*- Z          (Z is a known tagger)
  //   C <-()-- Y <- Z     (Y removed Z's tag)
  const Dataset d = {tuple({30}, {c(30)}), tuple({20, 30}, {})};
  const auto r = run(d);
  EXPECT_EQ(r.forwarding(20), ForwardingClass::kCleaner);
}

TEST(ColumnEngine, CleanerHidesEverythingBehindIt) {
  //   C <-T:*- T          (T tagger peer)
  //   C <-()-- X <- T     (X cleans: classified cleaner)
  //   C <-()-- X <- Z     (Z is hidden behind X: must stay none, not silent)
  const Dataset d = {tuple({40}, {c(40)}), tuple({10, 40}, {}), tuple({10, 50}, {})};
  const auto r = run(d);
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kCleaner);
  EXPECT_EQ(r.tagging(50), TaggingClass::kNone);
  EXPECT_EQ(r.forwarding(50), ForwardingClass::kNone);
  // T's tagging was counted at index 1 only; the hidden appearance behind X
  // must not add silent evidence.
  EXPECT_EQ(r.counters(40).t, 1u);
  EXPECT_EQ(r.counters(40).s, 0u);
}

// --- §5.2.1: race condition ------------------------------------------------

TEST(ColumnEngine, RaceConditionLeavesAsesUnclassified) {
  //   C <-?- X <-?- Y with X, Y appearing nowhere else: X's forwarding needs
  //   Y as a visible tagger, Y's tagging needs X to be forward.
  const Dataset d = {tuple({10, 20}, {})};
  const auto r = run(d);
  EXPECT_EQ(r.tagging(10), TaggingClass::kSilent);  // peer tagging is trivial
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kNone);
  EXPECT_EQ(r.tagging(20), TaggingClass::kNone);
  EXPECT_EQ(r.forwarding(20), ForwardingClass::kNone);
}

// --- §5.4: selective behavior → undecided ----------------------------------

TEST(ColumnEngine, SelectiveTaggerBecomesUndecided) {
  // Z tags via X but not via Y; both X and Y are established forwarders via
  // the downstream tagger W (and W peers with the collector).
  const Dataset d = {
      tuple({70}, {c(70)}),            // W peer: tagger
      tuple({10, 70}, {c(70)}),        // X forwards W's tag
      tuple({20, 70}, {c(70)}),        // Y forwards W's tag
      tuple({10, 80}, {c(80)}),        // Z tags toward X
      tuple({20, 80}, {}),             // Z silent toward Y
  };
  const auto r = run(d);
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kForward);
  EXPECT_EQ(r.forwarding(20), ForwardingClass::kForward);
  EXPECT_EQ(r.counters(80).t, 1u);
  EXPECT_EQ(r.counters(80).s, 1u);
  EXPECT_EQ(r.tagging(80), TaggingClass::kUndecided);
}

TEST(ColumnEngine, CollectorOnlyTaggerCausesCleanerMisclassification) {
  // §5.4's worst case: Z tags only toward the collector. X (a true forward
  // AS) is then classified cleaner because Z's tag never crosses X.
  const Dataset d = {
      tuple({80}, {c(80)}),   // Z peers with collector and tags
      tuple({10, 80}, {}),    // X forwards, but Z did not tag here
  };
  const auto r = run(d);
  EXPECT_EQ(r.tagging(80), TaggingClass::kTagger);
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kCleaner);
}

// --- Cond2 uses the nearest qualifying tagger ------------------------------

TEST(ColumnEngine, Cond2StopsAtNonForwardIntermediate) {
  // Path C <- A <- B <- T with T a known tagger but B a known cleaner:
  // A's forwarding must not be counted via T (B breaks the chain).
  const Dataset d = {
      tuple({90}, {c(90)}),        // T tagger peer
      tuple({20, 90}, {}),         // B cleans T's tag -> cleaner
      tuple({10, 20, 90}, {}),     // A: B is not forward, no count
  };
  const auto r = run(d);
  EXPECT_EQ(r.forwarding(20), ForwardingClass::kCleaner);
  const auto k = r.counters(10);
  EXPECT_EQ(k.f + k.c, 0u);
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kNone);
}

TEST(ColumnEngine, NearestTaggerWins) {
  // C <- A <- T1 <- T2, both taggers visible: A's evidence comes from T1.
  const Dataset d = {
      tuple({91}, {c(91)}),
      tuple({92}, {c(92)}),
      // A forwards T1's tag but T2's was cleaned by T1 — nearest tagger T1
      // is present, so A still counts as forward.
      tuple({10, 91, 92}, {c(91)}),
  };
  const auto r = run(d);
  EXPECT_EQ(r.forwarding(10), ForwardingClass::kForward);
}

// --- 32-bit ASNs via large communities --------------------------------------

TEST(ColumnEngine, LargeCommunityUpperFieldCountsForTagging) {
  const bgp::Asn big = 4200000;  // 32-bit ASN
  const Dataset d = {tuple({big}, {CommunityValue::large(big, 7, 7)})};
  const auto r = run(d);
  EXPECT_EQ(r.tagging(big), TaggingClass::kTagger);
}

// --- Determinism and early stop ---------------------------------------------

TEST(ColumnEngine, EarlyStopMatchesFullSweep) {
  Dataset d;
  for (bgp::Asn peer = 100; peer < 140; ++peer) {
    d.push_back(tuple({peer}, {c(static_cast<std::uint16_t>(peer))}));
    d.push_back(tuple({peer, 500, 600}, {c(static_cast<std::uint16_t>(peer)), c(600)}));
    d.push_back(tuple({peer, 600}, {}));
  }
  EngineConfig with_stop;
  with_stop.early_stop = true;
  EngineConfig without_stop;
  without_stop.early_stop = false;
  const auto a = ColumnEngine(with_stop).run(d);
  const auto b = ColumnEngine(without_stop).run(d);
  ASSERT_EQ(a.counter_map().size(), b.counter_map().size());
  for (const auto& [asn, k] : a.counter_map()) {
    EXPECT_EQ(k, b.counters(asn)) << "ASN " << asn;
  }
}

TEST(ColumnEngine, ResultIndependentOfTupleOrder) {
  Dataset d = {
      tuple({30}, {c(30)}),
      tuple({10, 30}, {c(30)}),
      tuple({20, 30}, {}),
      tuple({10, 40, 30}, {c(30)}),
  };
  const auto a = run(d);
  std::reverse(d.begin(), d.end());
  const auto b = run(d);
  for (const auto& [asn, k] : a.counter_map()) {
    EXPECT_EQ(k, b.counters(asn)) << "ASN " << asn;
  }
}

TEST(ColumnEngine, IgnoresPathsBeyondMaxLength) {
  std::vector<bgp::Asn> longpath(40);
  for (std::size_t i = 0; i < longpath.size(); ++i) longpath[i] = 1000 + static_cast<bgp::Asn>(i);
  const Dataset d = {tuple(longpath, {}), tuple({10}, {c(10)})};
  const auto r = run(d);
  EXPECT_EQ(r.tagging(1000), TaggingClass::kNone);
  EXPECT_EQ(r.tagging(10), TaggingClass::kTagger);
}

TEST(ColumnEngine, MaxColumnsCapsTheSweep) {
  EngineConfig config;
  config.max_columns = 1;
  const Dataset d = {tuple({30}, {c(30)}), tuple({10, 30}, {c(30)})};
  const auto r = ColumnEngine(config).run(d);
  // Column 2 never runs: Z's tagging at index 2 is not counted.
  EXPECT_EQ(r.counters(30).t, 1u);
}

TEST(ColumnEngine, EmptyDatasetYieldsEmptyResult) {
  const auto r = run({});
  EXPECT_TRUE(r.counter_map().empty());
  EXPECT_EQ(r.tagging(1), TaggingClass::kNone);
}

}  // namespace
}  // namespace bgpcu::core
