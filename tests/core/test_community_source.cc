// Community source-group tests (§3.2: peer / foreign / stray / private).
#include "core/community_source.h"

#include <gtest/gtest.h>

namespace bgpcu::core {
namespace {

using bgp::CommunityValue;

class CommunitySourceTest : public ::testing::Test {
 protected:
  CommunitySourceTest() {
    reg_.allocate_asn_range(1, 1000);
    tuple_.path = {10, 20, 30};
  }
  registry::AllocationRegistry reg_;
  PathCommTuple tuple_;
};

TEST_F(CommunitySourceTest, PeerWhenUpperIsFirstHop) {
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(10, 1), reg_), SourceGroup::kPeer);
}

TEST_F(CommunitySourceTest, ForeignWhenUpperIsLaterHop) {
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(20, 1), reg_), SourceGroup::kForeign);
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(30, 1), reg_), SourceGroup::kForeign);
}

TEST_F(CommunitySourceTest, StrayWhenPublicButOffPath) {
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(999, 1), reg_), SourceGroup::kStray);
}

TEST_F(CommunitySourceTest, PrivateWhenSpecialPurposeUpper) {
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(64512, 666), reg_),
            SourceGroup::kPrivate);
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(65535, 1), reg_),
            SourceGroup::kPrivate);
}

TEST_F(CommunitySourceTest, PrivateWhenUnallocatedUpper) {
  // 2000 is public-format but not delegated in this registry.
  EXPECT_EQ(classify_source(tuple_, CommunityValue::regular(2000, 1), reg_),
            SourceGroup::kPrivate);
}

TEST_F(CommunitySourceTest, LargeCommunityGroupedByUpperToo) {
  EXPECT_EQ(classify_source(tuple_, CommunityValue::large(20, 1, 2), reg_),
            SourceGroup::kForeign);
}

TEST_F(CommunitySourceTest, SameValueCanBePeerInOnePathForeignInAnother) {
  // The paper notes a peer community in path p1 can be foreign in p2.
  PathCommTuple other;
  other.path = {20, 10};
  const auto c = CommunityValue::regular(10, 1);
  EXPECT_EQ(classify_source(tuple_, c, reg_), SourceGroup::kPeer);
  EXPECT_EQ(classify_source(other, c, reg_), SourceGroup::kForeign);
}

TEST_F(CommunitySourceTest, CountSourcesTallies) {
  tuple_.comms = {
      CommunityValue::regular(10, 1),    // peer
      CommunityValue::regular(30, 2),    // foreign
      CommunityValue::regular(999, 3),   // stray
      CommunityValue::regular(64513, 4), // private
      CommunityValue::regular(10, 5),    // peer again
  };
  const auto counts = count_sources(tuple_, reg_);
  EXPECT_EQ(counts.of(SourceGroup::kPeer), 2u);
  EXPECT_EQ(counts.of(SourceGroup::kForeign), 1u);
  EXPECT_EQ(counts.of(SourceGroup::kStray), 1u);
  EXPECT_EQ(counts.of(SourceGroup::kPrivate), 1u);
  EXPECT_EQ(counts.total(), 5u);
}

TEST_F(CommunitySourceTest, CountsAccumulate) {
  SourceGroupCounts a, b;
  a.counts = {1, 2, 3, 4};
  b.counts = {10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.of(SourceGroup::kPeer), 11u);
  EXPECT_EQ(a.of(SourceGroup::kPrivate), 44u);
}

TEST_F(CommunitySourceTest, GroupNames) {
  EXPECT_STREQ(to_string(SourceGroup::kPeer), "peer");
  EXPECT_STREQ(to_string(SourceGroup::kForeign), "foreign");
  EXPECT_STREQ(to_string(SourceGroup::kStray), "stray");
  EXPECT_STREQ(to_string(SourceGroup::kPrivate), "private");
}

}  // namespace
}  // namespace bgpcu::core
