// Randomized engine property sweeps: structural invariants of the counting
// rules that must hold on any input, checked over generated datasets.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/row_baseline.h"
#include "topology/rng.h"

namespace bgpcu::core {
namespace {

// Random (path, comm) dataset: ASNs 1..40 (small so ASes recur in different
// positions), random path lengths, random community subsets keyed on path
// members plus occasional off-path admins.
Dataset random_dataset(std::uint64_t seed, std::size_t tuples) {
  topology::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < tuples; ++i) {
    PathCommTuple t;
    const std::size_t len = 1 + rng.below(6);
    while (t.path.size() < len) {
      const bgp::Asn asn = 1 + static_cast<bgp::Asn>(rng.below(40));
      if (std::find(t.path.begin(), t.path.end(), asn) == t.path.end()) t.path.push_back(asn);
    }
    for (const auto asn : t.path) {
      if (rng.chance(0.3)) {
        t.comms.push_back(bgp::CommunityValue::regular(static_cast<std::uint16_t>(asn),
                                                       static_cast<std::uint16_t>(rng.below(4))));
      }
    }
    if (rng.chance(0.1)) {
      t.comms.push_back(bgp::CommunityValue::regular(
          static_cast<std::uint16_t>(100 + rng.below(20)), 1));
    }
    d.push_back(std::move(t));
  }
  deduplicate(d);
  return d;
}

class EngineProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperties, DeterministicAcrossRuns) {
  const auto d = random_dataset(GetParam(), 400);
  const auto a = ColumnEngine().run(d);
  const auto b = ColumnEngine().run(d);
  ASSERT_EQ(a.counter_map().size(), b.counter_map().size());
  for (const auto& [asn, k] : a.counter_map()) EXPECT_EQ(k, b.counters(asn));
}

TEST_P(EngineProperties, PeerPositionsAlwaysCounted) {
  // Cond1 is vacuous at index 1: every tuple contributes exactly one tagging
  // count at its peer, so sum over peers of (t+s) >= number of... equals the
  // per-peer tuple counts.
  const auto d = random_dataset(GetParam(), 400);
  const auto result = ColumnEngine().run(d);
  std::unordered_map<bgp::Asn, std::uint64_t> tuples_per_peer;
  for (const auto& t : d) ++tuples_per_peer[t.peer()];
  for (const auto& [peer, expected] : tuples_per_peer) {
    const auto k = result.counters(peer);
    EXPECT_GE(k.t + k.s, expected) << "peer " << peer;
  }
}

TEST_P(EngineProperties, CountsNeverExceedAppearances) {
  const auto d = random_dataset(GetParam(), 400);
  const auto result = ColumnEngine().run(d);
  std::unordered_map<bgp::Asn, std::uint64_t> appearances;
  for (const auto& t : d) {
    for (const auto asn : t.path) ++appearances[asn];
  }
  for (const auto& [asn, k] : result.counter_map()) {
    EXPECT_LE(k.t + k.s, appearances[asn]) << asn;
    EXPECT_LE(k.f + k.c, appearances[asn]) << asn;
  }
}

TEST_P(EngineProperties, ColumnCountsAreSubsetOfRowCounts) {
  // The row baseline counts tagging unconditionally; the column engine only
  // under Cond1 — so per AS, column tagging evidence can never exceed row's.
  const auto d = random_dataset(GetParam(), 400);
  const auto col = ColumnEngine().run(d);
  const auto row = RowEngine().run(d);
  for (const auto& [asn, k] : col.counter_map()) {
    const auto r = row.counters(asn);
    EXPECT_LE(k.t + k.s, r.t + r.s) << asn;
  }
}

TEST_P(EngineProperties, ForwardingEvidenceRequiresTaggingEvidenceSomewhere) {
  // f/c counting needs a classified downstream tagger, which needs tagging
  // counters — so a dataset with no tagging evidence at all yields no
  // forwarding evidence either.
  auto d = random_dataset(GetParam(), 400);
  for (auto& t : d) t.comms.clear();  // strip all communities
  deduplicate(d);
  const auto result = ColumnEngine().run(d);
  for (const auto& [asn, k] : result.counter_map()) {
    EXPECT_EQ(k.t, 0u);
    EXPECT_EQ(k.f + k.c, 0u) << "no tagger can illuminate forwarding";
  }
}

TEST_P(EngineProperties, OriginsNeverGetForwardingEvidenceFromTheirOwnPath) {
  // The origin has no downstream; single-path ASNs appearing only as origin
  // must have zero forwarding counters.
  const auto d = random_dataset(GetParam(), 400);
  std::unordered_map<bgp::Asn, bool> only_origin;
  for (const auto& t : d) {
    for (std::size_t i = 0; i < t.path.size(); ++i) {
      const bool origin = i + 1 == t.path.size();
      auto [it, inserted] = only_origin.try_emplace(t.path[i], origin);
      if (!origin) it->second = false;
    }
  }
  const auto result = ColumnEngine().run(d);
  for (const auto& [asn, is_only_origin] : only_origin) {
    if (!is_only_origin) continue;
    const auto k = result.counters(asn);
    EXPECT_EQ(k.f + k.c, 0u) << asn;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace bgpcu::core
