// core::IncrementalIndex contract: an index patched by any legal add/remove
// delta sequence sweeps bit-identically to a from-scratch IndexedDataset
// built over the same live tuple set — through tombstones, lazy group
// compaction, and threshold-triggered full rebuilds. These tests drive the
// triggers deterministically (shrunk thresholds) and randomly (churn
// scripts); the stream equivalence scenarios cover the same contract
// end-to-end through StreamEngine::snapshot().
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/incremental.h"
#include "topology/rng.h"

namespace bgpcu::core {
namespace {

/// A tuple the tests own: path + the communities that give it `tagged`
/// upper-field hits at the flagged positions.
PathCommTuple make_tuple(std::vector<bgp::Asn> path, std::uint32_t tag_mask) {
  PathCommTuple t;
  t.path = std::move(path);
  for (std::size_t i = 0; i < t.path.size(); ++i) {
    if ((tag_mask >> i) & 1u) {
      t.comms.push_back(
          bgp::CommunityValue::regular(static_cast<std::uint16_t>(t.path[i]), 1));
    }
  }
  bgp::normalize(t.comms);
  return t;
}

IndexDelta add_delta(std::uint64_t key, const PathCommTuple& tuple) {
  const auto view = TupleView::prepare(tuple);
  EXPECT_TRUE(view.has_value());
  return {IndexDelta::Kind::kAdd, key, view ? view->upper_mask : 0, tuple.path};
}

IndexDelta remove_delta(std::uint64_t key) {
  return {IndexDelta::Kind::kRemove, key, 0, {}};
}

/// Sweeps both the incrementally maintained dataset and a from-scratch build
/// over `live`, asserting bit-identical results (counters and columns).
void expect_sweep_equivalence(const IncrementalIndex& index,
                              const std::vector<PathCommTuple>& live,
                              const EngineConfig& config = {}) {
  std::vector<TupleView> views;
  views.reserve(live.size());
  for (const auto& tuple : live) {
    if (auto view = TupleView::prepare(tuple)) views.push_back(*view);
  }
  const IndexedDataset scratch(views);
  ASSERT_EQ(index.dataset().tuple_count(), scratch.tuple_count());
  EXPECT_EQ(index.dataset().max_len(), scratch.max_len());
  const auto incremental = sweep_columns(index.dataset(), config);
  const auto reference = sweep_columns(scratch, config);
  EXPECT_EQ(incremental.counter_map(), reference.counter_map());
  EXPECT_EQ(incremental.columns_swept(), reference.columns_swept());
}

TEST(IncrementalIndex, EmptyIndexSweepsEmpty) {
  IncrementalIndex index;
  EXPECT_EQ(index.live_tuples(), 0u);
  EXPECT_EQ(index.dataset().max_len(), 0u);
  const auto result = sweep_columns(index.dataset(), {});
  EXPECT_TRUE(result.counter_map().empty());
  EXPECT_EQ(result.columns_swept(), 0u);
}

TEST(IncrementalIndex, PureAddsMatchFromScratchBuild) {
  IncrementalIndex index;
  std::vector<PathCommTuple> live = {
      make_tuple({10, 20, 30}, 0b001), make_tuple({10, 20, 30}, 0b011),
      make_tuple({20, 30}, 0b10),      make_tuple({40}, 0b1),
      make_tuple({30, 10, 40, 20}, 0b0101),
  };
  std::vector<IndexDelta> deltas;
  for (std::size_t i = 0; i < live.size(); ++i) deltas.push_back(add_delta(i, live[i]));
  index.apply(std::move(deltas));
  EXPECT_EQ(index.stats().adds_applied, live.size());
  expect_sweep_equivalence(index, live);
}

TEST(IncrementalIndex, TombstonedRowsAreInvisibleToTheSweep) {
  IncrementalIndex index;
  std::vector<PathCommTuple> tuples;
  std::vector<IndexDelta> deltas;
  for (std::uint64_t i = 0; i < 10; ++i) {
    tuples.push_back(make_tuple({static_cast<bgp::Asn>(1 + i % 4), 50, 60}, 0b001));
    tuples.back().comms.push_back(
        bgp::CommunityValue::regular(static_cast<std::uint16_t>(100 + i), 1));
    bgp::normalize(tuples.back().comms);
    deltas.push_back(add_delta(i, tuples[i]));
  }
  index.apply(std::move(deltas));

  // Remove three of them; the group keeps its rows (thresholds unreached)
  // but the sweep must not see the dead ones.
  index.apply({remove_delta(1), remove_delta(4), remove_delta(7)});
  EXPECT_EQ(index.stats().group_compactions, 0u);
  std::vector<PathCommTuple> live;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (i != 1 && i != 4 && i != 7) live.push_back(tuples[i]);
  }
  expect_sweep_equivalence(index, live);
}

TEST(IncrementalIndex, MaxLenShrinksWhenTheLongestGroupDies) {
  IncrementalIndex index;
  const auto long_tuple = make_tuple({10, 20, 30, 40, 50}, 0b00001);
  const auto short_tuple = make_tuple({10, 20}, 0b01);
  index.apply({add_delta(0, long_tuple), add_delta(1, short_tuple)});
  EXPECT_EQ(index.dataset().max_len(), 5u);

  index.apply({remove_delta(0)});
  EXPECT_EQ(index.dataset().max_len(), 2u);
  expect_sweep_equivalence(index, {short_tuple});

  // And it grows back when long paths return.
  index.apply({add_delta(2, long_tuple)});
  EXPECT_EQ(index.dataset().max_len(), 5u);
  expect_sweep_equivalence(index, {short_tuple, long_tuple});
}

TEST(IncrementalIndex, VanishedAsReappearsWithTheSameResult) {
  IncrementalIndex index;
  const auto with_42 = make_tuple({42, 10, 20}, 0b001);
  const auto without_42 = make_tuple({10, 20}, 0b01);
  index.apply({add_delta(0, with_42), add_delta(1, without_42)});
  expect_sweep_equivalence(index, {with_42, without_42});

  // AS 42 vanishes entirely: its dense id stays behind with zero live
  // references, which must be invisible in the swept result.
  index.apply({remove_delta(0)});
  expect_sweep_equivalence(index, {without_42});

  index.apply({add_delta(2, with_42)});
  expect_sweep_equivalence(index, {with_42, without_42});
}

TEST(IncrementalIndex, GroupCompactionTriggersAtThresholdAndPreservesResults) {
  IncrementalIndexConfig config;
  config.compact_min_dead_rows = 4;
  IncrementalIndex index(config);

  std::vector<PathCommTuple> tuples;
  std::vector<IndexDelta> deltas;
  for (std::uint64_t i = 0; i < 8; ++i) {
    tuples.push_back(make_tuple({static_cast<bgp::Asn>(1 + i), 90, 91}, 0b001));
    deltas.push_back(add_delta(i, tuples[i]));
  }
  index.apply(std::move(deltas));

  // Three removals: under both gates (dead < 4), no compaction yet.
  index.apply({remove_delta(0), remove_delta(1), remove_delta(2)});
  EXPECT_EQ(index.stats().group_compactions, 0u);
  // The fourth reaches min_dead_rows with dead (4) >= half of rows (8).
  index.apply({remove_delta(3)});
  EXPECT_EQ(index.stats().group_compactions, 1u);

  const std::vector<PathCommTuple> live(tuples.begin() + 4, tuples.end());
  expect_sweep_equivalence(index, live);

  // The compacted group's flat arrays are dense again: no alive bitmap.
  for (const auto& group : index.dataset().groups()) {
    if (group.len == 3) {
      EXPECT_TRUE(group.alive.empty());
      EXPECT_EQ(group.count(), live.size());
    }
  }
}

TEST(IncrementalIndex, FullRebuildReclaimsDeadIdsAndPreservesResults) {
  IncrementalIndexConfig config;
  config.rebuild_min_dead_ids = 4;
  IncrementalIndex index(config);

  // Six tuples over disjoint ASN pairs: removing four tuples kills eight of
  // the twelve ids — past both rebuild gates (>= 4 dead, >= half).
  std::vector<PathCommTuple> tuples;
  std::vector<IndexDelta> deltas;
  for (std::uint64_t i = 0; i < 6; ++i) {
    tuples.push_back(make_tuple(
        {static_cast<bgp::Asn>(100 + 2 * i), static_cast<bgp::Asn>(101 + 2 * i)}, 0b01));
    deltas.push_back(add_delta(i, tuples[i]));
  }
  index.apply(std::move(deltas));
  EXPECT_EQ(index.dataset().asn_count(), 12u);
  EXPECT_EQ(index.stats().full_rebuilds, 0u);

  index.apply({remove_delta(0), remove_delta(1), remove_delta(2), remove_delta(3)});
  EXPECT_EQ(index.stats().full_rebuilds, 1u);
  // Ids were reassigned over live rows only; dead ASes are gone.
  EXPECT_EQ(index.dataset().asn_count(), 4u);
  for (const auto& group : index.dataset().groups()) EXPECT_TRUE(group.alive.empty());

  const std::vector<PathCommTuple> live(tuples.begin() + 4, tuples.end());
  expect_sweep_equivalence(index, live);

  // The rebuilt index keeps accepting deltas against the remapped ids.
  const auto extra = make_tuple({100, 108}, 0b10);  // one dead AS returns
  index.apply({add_delta(40, extra)});
  expect_sweep_equivalence(index, {tuples[4], tuples[5], extra});
}

TEST(IncrementalIndex, CorruptDeltaSequencesThrow) {
  IncrementalIndex index;
  index.apply({add_delta(7, make_tuple({10, 20}, 0b01))});
  EXPECT_THROW(index.apply({remove_delta(8)}), std::invalid_argument);
  EXPECT_THROW(index.apply({add_delta(7, make_tuple({30}, 0b1))}), std::invalid_argument);
  // A removed key is gone for good: removing it twice is corrupt too.
  index.apply({remove_delta(7)});
  EXPECT_THROW(index.apply({remove_delta(7)}), std::invalid_argument);
}

TEST(IncrementalIndex, ResetDropsTuplesButKeepsLifetimeStats) {
  IncrementalIndex index;
  index.apply({add_delta(0, make_tuple({10, 20}, 0b01))});
  const auto adds_before = index.stats().adds_applied;
  index.reset();
  EXPECT_EQ(index.live_tuples(), 0u);
  EXPECT_EQ(index.dataset().asn_count(), 0u);
  EXPECT_EQ(index.stats().adds_applied, adds_before);
  // Keys are reusable after a reset (the engine re-exports live tuples under
  // their original keys after an overflow).
  index.apply({add_delta(0, make_tuple({10, 20}, 0b01))});
  expect_sweep_equivalence(index, {make_tuple({10, 20}, 0b01)});
}

// Randomized churn script: every epoch adds fresh tuples and removes a
// random live subset, checking sweep equivalence (serial and multi-lane)
// after each batch. Shrunk thresholds keep compactions and rebuilds firing
// throughout instead of only at scale.
TEST(IncrementalIndex, RandomChurnStaysEquivalentThroughCompactionAndRebuild) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    topology::Rng rng(seed * 7477);
    IncrementalIndexConfig config;
    config.compact_min_dead_rows = 8;
    config.rebuild_min_dead_ids = 8;
    IncrementalIndex index(config);

    std::unordered_map<std::uint64_t, PathCommTuple> live;
    std::uint64_t next_key = 0;
    for (int epoch = 0; epoch < 12; ++epoch) {
      std::vector<IndexDelta> deltas;
      const std::size_t adds = 10 + rng.below(30);
      for (std::size_t i = 0; i < adds; ++i) {
        std::vector<bgp::Asn> path;
        const std::size_t len = 1 + rng.below(6);
        while (path.size() < len) {
          const bgp::Asn asn = 1 + static_cast<bgp::Asn>(rng.below(40));
          if (std::find(path.begin(), path.end(), asn) == path.end()) path.push_back(asn);
        }
        auto tuple = make_tuple(std::move(path), static_cast<std::uint32_t>(rng.below(64)));
        // Distinct serial community so duplicates cannot collide.
        tuple.comms.push_back(bgp::CommunityValue::regular(
            static_cast<std::uint16_t>(1000 + next_key), 2));
        bgp::normalize(tuple.comms);
        deltas.push_back(add_delta(next_key, tuple));
        live.emplace(next_key, std::move(tuple));
        ++next_key;
      }
      std::vector<std::uint64_t> keys;
      keys.reserve(live.size());
      for (const auto& [key, tuple] : live) keys.push_back(key);
      std::sort(keys.begin(), keys.end());
      for (const auto key : keys) {
        if (rng.chance(0.35)) {
          deltas.push_back(remove_delta(key));
          live.erase(key);
        }
      }
      index.apply(std::move(deltas));

      std::vector<PathCommTuple> remaining;
      remaining.reserve(live.size());
      for (const auto& [key, tuple] : live) remaining.push_back(tuple);
      expect_sweep_equivalence(index, remaining);
      EngineConfig lanes;
      lanes.threads = 4;
      expect_sweep_equivalence(index, remaining, lanes);
    }
    // The shrunk thresholds must actually fire for this test to mean much.
    EXPECT_GT(index.stats().group_compactions + index.stats().full_rebuilds, 0u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace bgpcu::core
