// Full-pipeline integration: synthetic Internet → wild roles → MRT emission
// (all four collector projects) → extraction → sanitation → column engine →
// per-AS classes, with the cross-checks the paper's §7 analyses rely on.
#include <gtest/gtest.h>

#include "collector/emit.h"
#include "collector/extract.h"
#include "collector/spec.h"
#include "core/community_source.h"
#include "core/engine.h"
#include "sim/peering.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/cone.h"
#include "topology/generator.h"

namespace bgpcu {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State(55);
  }
  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  struct State {
    topology::GeneratedTopology topo;
    std::vector<collector::ProjectSpec> projects;
    sim::PathSubstrate substrate;
    sim::RoleVector roles;
    core::Dataset truth_tuples;
    collector::DatasetBundle aggregate;  // RIPE + RouteViews + Isolario
    core::InferenceResult inference{core::CounterMap{}, core::Thresholds{}, 0};

    explicit State(std::uint64_t seed) {
      topology::GeneratorParams params;
      params.num_ases = 500;
      params.num_tier1 = 6;
      params.seed = seed;
      topo = topology::generate(params);

      collector::ProjectLayoutParams layout;
      layout.total_peers = 50;
      layout.seed = seed;
      projects = collector::default_projects(topo, layout);
      substrate = sim::build_substrate(topo, collector::all_peers(projects));

      sim::WildParams wild;
      wild.seed = seed;
      roles = sim::assign_wild_roles(topo, wild);
      sim::OutputConfig output;
      output.pollution = wild.pollution;
      truth_tuples = sim::generate_dataset(topo, substrate, roles, output, seed);

      const collector::PathOutputs outputs(truth_tuples);
      collector::EmissionConfig emission;
      emission.seed = seed;
      for (std::size_t i = 0; i < 3; ++i) {  // the paper's d aggregate
        collector::DatasetBuilder builder(topo.registry);
        for (const auto& emitted :
             collector::emit_project(topo, substrate, outputs, projects[i], emission)) {
          builder.add_dump(emitted.rib_dump);
          builder.add_dump(emitted.update_dump);
        }
        aggregate.merge(builder.finish());
      }
      inference = core::ColumnEngine().run(aggregate.dataset);
    }
  };

  static State* state_;
};

EndToEnd::State* EndToEnd::state_ = nullptr;

TEST_F(EndToEnd, PipelineProducesData) {
  EXPECT_GT(state_->aggregate.extraction.entries_total, 1000u);
  EXPECT_GT(state_->aggregate.dataset.size(), 100u);
  EXPECT_FALSE(state_->inference.counter_map().empty());
}

TEST_F(EndToEnd, PeerTaggingMatchesGroundTruthRoles) {
  // Collector peers' tagging behavior is directly observable; with wild
  // (possibly selective) roles, a consistent tagger peer must never be
  // classified silent, and a silent peer never tagger.
  std::size_t checked = 0;
  for (const auto peer : state_->substrate.peers) {
    const auto asn = state_->topo.graph.asn_of(peer);
    const auto cls = state_->inference.tagging(asn);
    if (cls == core::TaggingClass::kNone) continue;
    const auto& role = state_->roles[peer];
    if (role.tagger && !role.is_selective()) {
      EXPECT_NE(cls, core::TaggingClass::kSilent) << "peer " << asn;
    }
    if (!role.tagger) {
      EXPECT_NE(cls, core::TaggingClass::kTagger) << "peer " << asn;
    }
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST_F(EndToEnd, InferredTaggersAreMostlyLargeAses) {
  // §7.3 / Fig. 6: taggers have large customer cones; silent ASes sit at the
  // edge. Compare median cones.
  const auto cones = topology::customer_cone_sizes(state_->topo.graph);
  std::vector<std::uint32_t> tagger_cones, silent_cones;
  for (topology::NodeId n = 0; n < state_->topo.graph.node_count(); ++n) {
    const auto asn = state_->topo.graph.asn_of(n);
    switch (state_->inference.tagging(asn)) {
      case core::TaggingClass::kTagger:
        tagger_cones.push_back(cones[n]);
        break;
      case core::TaggingClass::kSilent:
        silent_cones.push_back(cones[n]);
        break;
      default:
        break;
    }
  }
  ASSERT_GT(tagger_cones.size(), 3u);
  ASSERT_GT(silent_cones.size(), 20u);
  const auto median = [](std::vector<std::uint32_t>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  EXPECT_GT(median(tagger_cones), median(silent_cones));
}

TEST_F(EndToEnd, PeerCommunityTypesAlignWithClasses) {
  // §7.2 / Fig. 5: fully-classified *cleaner* peers show (almost) no foreign
  // communities; forward peers connected to taggers do.
  std::uint64_t cleaner_foreign = 0, cleaner_total = 0;
  std::uint64_t forward_foreign = 0, forward_total = 0;
  for (const auto& tuple : state_->aggregate.dataset) {
    const auto fwd = state_->inference.forwarding(tuple.peer());
    if (fwd != core::ForwardingClass::kCleaner && fwd != core::ForwardingClass::kForward) {
      continue;
    }
    const auto counts = core::count_sources(tuple, state_->topo.registry);
    if (fwd == core::ForwardingClass::kCleaner) {
      cleaner_foreign += counts.of(core::SourceGroup::kForeign);
      cleaner_total += counts.total();
    } else {
      forward_foreign += counts.of(core::SourceGroup::kForeign);
      forward_total += counts.total();
    }
  }
  if (forward_total > 0 && cleaner_total > 0) {
    const double forward_share =
        static_cast<double>(forward_foreign) / static_cast<double>(forward_total);
    const double cleaner_share =
        static_cast<double>(cleaner_foreign) / static_cast<double>(cleaner_total);
    EXPECT_GT(forward_share, cleaner_share);
  }
}

TEST_F(EndToEnd, PeeringValidationMostlyConsistent) {
  // §7.4 / Table 4: validate the wild inference with injected announcements.
  sim::PeeringConfig config;
  config.seed = 9;
  const auto obs = sim::run_peering_experiment(state_->topo, state_->substrate.peers,
                                               state_->roles, config);
  ASSERT_GT(obs.tuples.size(), 10u);
  const auto v = sim::validate_observation(obs, state_->inference, 47065);
  // Contradictions (a cleaner on a path that delivered our communities) must
  // be rare: the paper sees 0-3%.
  if (v.with_comms > 0) {
    EXPECT_LT(static_cast<double>(v.with_comms_cleaner),
              0.15 * static_cast<double>(v.with_comms));
  }
}

TEST_F(EndToEnd, SourceGroupsAllObserved) {
  // Wild pollution must exercise all four §3.2 groups at the collectors.
  core::SourceGroupCounts totals;
  for (const auto& tuple : state_->aggregate.dataset) {
    totals += core::count_sources(tuple, state_->topo.registry);
  }
  EXPECT_GT(totals.of(core::SourceGroup::kPeer), 0u);
  EXPECT_GT(totals.of(core::SourceGroup::kForeign), 0u);
  EXPECT_GT(totals.of(core::SourceGroup::kStray), 0u);
  EXPECT_GT(totals.of(core::SourceGroup::kPrivate), 0u);
}

TEST_F(EndToEnd, Table1StatsInternallyConsistent) {
  const auto stats = collector::compute_stats(state_->aggregate, state_->topo.registry);
  EXPECT_LE(stats.unique_tuples, stats.entries_total);
  EXPECT_LE(stats.asns_clean, stats.asns_raw);
  EXPECT_LE(stats.leaf_ases, stats.asns_clean);
  EXPECT_LE(stats.asns_32bit, stats.asns_clean);
  EXPECT_LE(stats.unique_large_communities, stats.unique_communities);
  EXPECT_LE(stats.large_communities_total, stats.communities_total);
  EXPECT_LE(stats.uniq_upper_wo_stray, stats.uniq_upper_wo_private);
  EXPECT_LE(stats.uniq_upper_wo_private, stats.uniq_upper_both);
  EXPECT_LE(stats.uniq_upper_both, stats.uniq_upper_regular + stats.uniq_upper_large);
}

}  // namespace
}  // namespace bgpcu
