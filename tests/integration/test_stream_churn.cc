// Churn-driven streaming integration: a synthetic Internet's daily
// observation batches (sim/churn) flow through the stream engine the way a
// live collector feed would — one epoch per day, a sliding window for
// Fig.-4-style longitudinal tracking — and every daily snapshot must match
// the batch pipeline run over the same window, with deltas consistent
// between consecutive snapshots.
#include <gtest/gtest.h>

#include <memory>

#include "core/engine.h"
#include "sim/churn.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "stream/delta.h"
#include "stream/engine.h"
#include "topology/generator.h"

namespace bgpcu {
namespace {

core::Dataset wild_dataset(std::uint64_t seed, topology::GeneratedTopology& topo_out) {
  topology::GeneratorParams params;
  params.num_ases = 300;
  params.num_tier1 = 5;
  params.seed = seed;
  topo_out = topology::generate(params);
  const auto substrate =
      sim::build_substrate(topo_out, sim::select_collector_peers(topo_out, 30, seed));
  sim::WildParams wild;
  wild.seed = seed;
  const auto roles = sim::assign_wild_roles(topo_out, wild);
  return sim::generate_dataset(topo_out, substrate, roles, sim::OutputConfig{}, seed);
}

TEST(StreamChurnIntegration, DailySnapshotsMatchBatchPipelineOverWindow) {
  topology::GeneratedTopology topo;
  const auto base = wild_dataset(4242, topo);
  ASSERT_GT(base.size(), 100u);

  sim::ChurnConfig churn;
  churn.seed = 9;
  constexpr std::uint32_t kDays = 6;
  constexpr std::uint64_t kWindow = 3;
  const auto batches = sim::day_batches(base, churn, kDays);

  stream::StreamEngine engine({.shards = 4, .window_epochs = kWindow});
  auto previous = std::make_shared<const core::InferenceResult>(
      core::CounterMap{}, core::Thresholds{}, 0);

  for (std::uint32_t day = 0; day < kDays; ++day) {
    if (day > 0) engine.advance_epoch();
    (void)engine.ingest(batches[day]);

    // Batch-pipeline reference: union of the days inside the window.
    core::Dataset window_union;
    const std::uint32_t first = day + 1 >= kWindow ? day + 1 - static_cast<std::uint32_t>(kWindow) : 0;
    for (std::uint32_t d = first; d <= day; ++d) {
      window_union.insert(window_union.end(), batches[d].begin(), batches[d].end());
    }
    core::deduplicate(window_union);

    const auto snap = engine.snapshot();
    const auto reference = core::ColumnEngine().run(window_union);
    ASSERT_EQ(snap->counter_map(), reference.counter_map()) << "day " << day;

    // Delta consistency: every reported change really differs, and every
    // AS whose class differs is reported.
    const auto changes = stream::diff_classifications(*previous, *snap);
    for (const auto& change : changes) {
      EXPECT_NE(change.before, change.after);
      EXPECT_EQ(change.after, snap->usage(change.asn));
      EXPECT_EQ(change.before, previous->usage(change.asn));
    }
    for (const auto& [asn, k] : snap->counter_map()) {
      if (previous->usage(asn) != snap->usage(asn)) {
        EXPECT_TRUE(std::any_of(changes.begin(), changes.end(),
                                [asn = asn](const stream::ClassChange& c) { return c.asn == asn; }))
            << "missing delta for AS " << asn;
      }
    }
    previous = snap;
  }

  // Longitudinal churn happened: the engine evicted something over the run.
  EXPECT_GT(engine.evicted_total(), 0u);
}

TEST(StreamChurnIntegration, CumulativeModeMatchesMergedDatasets) {
  // Unbounded window: after k days the live set is the cumulative union —
  // exactly the paper's Fig. 3 incremental-input experiment.
  topology::GeneratedTopology topo;
  const auto base = wild_dataset(777, topo);
  sim::ChurnConfig churn;
  churn.seed = 3;

  stream::StreamEngine engine({.shards = 4, .window_epochs = 0});
  core::Dataset cumulative;
  for (std::uint32_t day = 0; day < 4; ++day) {
    if (day > 0) engine.advance_epoch();
    const auto batch = sim::day_dataset(base, churn, day);
    cumulative = sim::merge_datasets(std::move(cumulative), batch);
    (void)engine.ingest(batch);
    EXPECT_EQ(engine.live_tuples(), cumulative.size());
  }
  const auto snap = engine.snapshot();
  const auto reference = core::ColumnEngine().run(cumulative);
  EXPECT_EQ(snap->counter_map(), reference.counter_map());
}

}  // namespace
}  // namespace bgpcu
