// Paper-shape property sweeps (§6): invariants that must hold for any seed.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "eval/metrics.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "topology/generator.h"

namespace bgpcu {
namespace {

struct Env {
  topology::GeneratedTopology topo;
  sim::PathSubstrate substrate;

  explicit Env(std::uint64_t seed) {
    topology::GeneratorParams params;
    params.num_ases = 400;
    params.num_tier1 = 5;
    params.seed = seed;
    topo = topology::generate(params);
    substrate = sim::build_substrate(topo, sim::select_collector_peers(topo, 30, seed));
  }

  eval::ScenarioEvaluation run(sim::ScenarioKind kind, std::uint64_t seed,
                               std::uint32_t observations = 3) {
    sim::ScenarioConfig config;
    config.kind = kind;
    config.seed = seed;
    // The paper observes each AS through vastly more tuples than a unit-test
    // topology provides; several observations per path (RIB + update churn)
    // keep the per-AS noise-hit expectation in the paper's regime while the
    // per-tuple probabilities stay at the paper's 5%.
    config.observations_per_path = observations;
    truth = sim::build_scenario(topo, substrate, config);
    const auto result = core::ColumnEngine().run(truth.dataset);
    return eval::evaluate_scenario(topo, truth, result);
  }

  sim::GroundTruth truth;
};

class ScenarioSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// The paper's headline claim: on consistent behavior the algorithm never
// misclassifies — precision 1.0 in every consistent scenario (Table 2).
TEST_P(ScenarioSeeds, ConsistentScenariosHavePerfectPrecision) {
  Env env(GetParam());
  for (const auto kind :
       {sim::ScenarioKind::kAllTf, sim::ScenarioKind::kAllTc, sim::ScenarioKind::kRandom}) {
    const auto ev = env.run(kind, GetParam());
    if (ev.tagging_pr.decided > 0) {
      EXPECT_DOUBLE_EQ(ev.tagging_pr.precision, 1.0) << sim::to_string(kind);
    }
    if (ev.forwarding_pr.decided > 0) {
      EXPECT_DOUBLE_EQ(ev.forwarding_pr.precision, 1.0) << sim::to_string(kind);
    }
  }
}

// §6.4 / Tables 5-6: ASes whose behavior is hidden behind a cleaner must not
// be classified in noise-free scenarios.
TEST_P(ScenarioSeeds, HiddenAsesNeverClassifiedWithoutNoise) {
  Env env(GetParam());
  for (const auto kind : {sim::ScenarioKind::kRandom, sim::ScenarioKind::kAllTc}) {
    const auto ev = env.run(kind, GetParam());
    for (std::size_t col = 0; col < 3; ++col) {  // tagger, silent, undecided columns
      EXPECT_EQ(ev.tagging.at(eval::TagRow::kTaggerHidden, col), 0u) << sim::to_string(kind);
      EXPECT_EQ(ev.tagging.at(eval::TagRow::kSilentHidden, col), 0u) << sim::to_string(kind);
    }
    for (std::size_t col = 0; col < 3; ++col) {
      EXPECT_EQ(ev.forwarding.at(eval::FwdRow::kForwardHidden, col), 0u) << sim::to_string(kind);
      EXPECT_EQ(ev.forwarding.at(eval::FwdRow::kCleanerHidden, col), 0u) << sim::to_string(kind);
    }
  }
}

// §5.1.3: leaf ASes have no forwarding behavior to observe — ever.
TEST_P(ScenarioSeeds, LeafAsesNeverGetForwardingClass) {
  Env env(GetParam());
  const auto ev = env.run(sim::ScenarioKind::kRandom, GetParam());
  for (std::size_t col = 0; col < 3; ++col) {
    EXPECT_EQ(ev.forwarding.at(eval::FwdRow::kForwardLeaf, col), 0u);
    EXPECT_EQ(ev.forwarding.at(eval::FwdRow::kCleanerLeaf, col), 0u);
  }
}

// Table 2 ordering: visibility is best in alltf, worst in alltc; random and
// the selective variants land in between (measured by `nn`).
TEST_P(ScenarioSeeds, CoverageOrderingAcrossScenarios) {
  Env env(GetParam());
  const auto tf = env.run(sim::ScenarioKind::kAllTf, GetParam());
  const auto rnd = env.run(sim::ScenarioKind::kRandom, GetParam());
  const auto tc = env.run(sim::ScenarioKind::kAllTc, GetParam());
  EXPECT_LT(tf.classes.nn, rnd.classes.nn);
  EXPECT_LT(rnd.classes.nn, tc.classes.nn);
}

// §6.3: selective tagging depresses recall relative to the plain random
// scenario, and random-pp is worse than random-p.
TEST_P(ScenarioSeeds, SelectiveScenariosDepressRecall) {
  Env env(GetParam());
  const auto rnd = env.run(sim::ScenarioKind::kRandom, GetParam());
  const auto p = env.run(sim::ScenarioKind::kRandomP, GetParam());
  const auto pp = env.run(sim::ScenarioKind::kRandomPp, GetParam());
  EXPECT_GT(rnd.tagging_pr.recall, p.tagging_pr.recall);
  EXPECT_GE(p.tagging_pr.recall, pp.tagging_pr.recall)
      << "-pp restricts tagging at least as much as -p";
  EXPECT_GT(rnd.tagging_pr.recall, pp.tagging_pr.recall);
}

// §6.4 random+noise: noise pushes silent/cleaner ASes into undecided while
// taggers are mostly unaffected, and hidden ASes stay (almost) unclassified
// (paper: <0.5%).
TEST_P(ScenarioSeeds, NoiseCreatesUndecidedNotMisclassification) {
  Env env(GetParam());
  const auto noise = env.run(sim::ScenarioKind::kRandomNoise, GetParam(), /*observations=*/16);
  const auto undecided_silent = noise.tagging.at(eval::TagRow::kSilent, 2);
  const auto silent_total = noise.tagging.row_total(eval::TagRow::kSilent);
  // §6.4: noise pushes a large share of the counted silent ASes into
  // undecided (the paper's 73k-AS run flips >80%; unit-test sample sizes
  // leave a remainder of thinly-observed ASes, so require a strong effect
  // rather than strict dominance).
  EXPECT_GT(undecided_silent * 2, noise.tagging.at(eval::TagRow::kSilent, 1));
  EXPECT_GT(undecided_silent, 0u);
  EXPECT_GT(silent_total, 0u);

  // Misclassified silent (inferred tagger) stays a small fraction.
  EXPECT_LT(noise.tagging.at(eval::TagRow::kSilent, 0) * 10, silent_total);

  // Hidden ASes classified at all stay a small fraction (paper: <0.5%; the
  // bound is relaxed for unit-test sample sizes).
  std::uint64_t hidden_classified = 0, hidden_total = 0;
  for (const auto row : {eval::TagRow::kTaggerHidden, eval::TagRow::kSilentHidden}) {
    hidden_total += noise.tagging.row_total(row);
    for (std::size_t col = 0; col < 3; ++col) hidden_classified += noise.tagging.at(row, col);
  }
  if (hidden_total > 0) {
    EXPECT_LT(static_cast<double>(hidden_classified), 0.03 * static_cast<double>(hidden_total));
  }
}

// Undecided ASes only appear when selective tagging or noise is in play.
TEST_P(ScenarioSeeds, NoUndecidedInConsistentScenarios) {
  Env env(GetParam());
  const auto ev = env.run(sim::ScenarioKind::kRandom, GetParam());
  EXPECT_EQ(ev.classes.tag_u, 0u);
  EXPECT_EQ(ev.classes.fwd_u, 0u);
  EXPECT_EQ(ev.classes.uu, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioSeeds, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace bgpcu
