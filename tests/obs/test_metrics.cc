// The metrics registry and its renderers: instrument semantics (lane-striped
// counters, gauge high-water marks, log-bucket histograms), the global
// enabled gate, registry interning and type conflicts, callback collectors,
// and the three renderings of one scrape (Prometheus text, flat JSON,
// plain listing).
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/render.h"
#include "obs/trace.h"
#include "obs/wellknown.h"

namespace bgpcu::obs {
namespace {

// --------------------------------------------------------- instruments --

TEST(CounterTest, SumsAcrossExplicitLanes) {
  Counter c;
  for (std::size_t lane = 0; lane < Counter::kLanes; ++lane) c.add(10, lane);
  c.add(5);  // thread-hash lane
  EXPECT_EQ(c.value(), 10 * Counter::kLanes + 5);
}

TEST(CounterTest, LaneIndexWrapsModuloLanes) {
  Counter c;
  c.add(1, Counter::kLanes + 3);  // same stripe as lane 3
  c.add(1, 3);
  EXPECT_EQ(c.value(), 2);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&c] {
        for (int i = 0; i < kPerThread; ++i) c.add(1);
      });
    }
  }
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddAndHighWaterMark) {
  Gauge g;
  g.set(7);
  g.add(3);
  EXPECT_EQ(g.value(), 10);
  g.max_of(8);  // below: no change
  EXPECT_EQ(g.value(), 10);
  g.max_of(25);
  EXPECT_EQ(g.value(), 25);
  g.add(-5);
  EXPECT_EQ(g.value(), 20);
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket i counts observations in (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(5), 3u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Histogram::bucket_of(1025), 11u);
  // Far beyond the finite range: clamped to the +Inf bucket.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_bound(10), 1024u);
}

TEST(HistogramTest, ObserveTracksSumCountAndBuckets) {
  Histogram h;
  h.observe(1);
  h.observe(3);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 <= 1024
}

TEST(EnabledGateTest, DisabledDropsHotPathUpdates) {
  Counter c;
  Gauge g;
  Histogram h;
  set_enabled(false);
  c.add(5);
  g.add(5);
  g.max_of(5);
  h.observe(5);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  // set() is not gated: it records state, not an event.
  set_enabled(false);
  g.set(9);
  set_enabled(true);
  EXPECT_EQ(g.value(), 9);
}

TEST(StageTimerTest, RecordsExactlyOnce) {
  Histogram h;
  {
    StageTimer t(h);
    EXPECT_GT(t.stop() + 1, 0u);  // returns the elapsed ns
    EXPECT_EQ(t.stop(), 0u);      // second stop records nothing
  }  // destructor after stop(): still nothing
  EXPECT_EQ(h.count(), 1u);
}

// ------------------------------------------------------------ registry --

TEST(RegistryTest, InterningReturnsTheSameInstrument) {
  Registry r;
  Counter& a = r.counter("bgpcu_test_total", "help", "kind=\"x\"");
  Counter& b = r.counter("bgpcu_test_total", "help", "kind=\"x\"");
  EXPECT_EQ(&a, &b);
  Counter& other = r.counter("bgpcu_test_total", "help", "kind=\"y\"");
  EXPECT_NE(&a, &other);
}

TEST(RegistryTest, TypeConflictThrows) {
  Registry r;
  (void)r.counter("bgpcu_test_total", "help");
  EXPECT_THROW((void)r.gauge("bgpcu_test_total", "help"), std::logic_error);
  EXPECT_THROW((void)r.histogram("bgpcu_test_total", "help"), std::logic_error);
}

TEST(RegistryTest, CollectSortsFamiliesAndSeries) {
  Registry r;
  r.counter("bgpcu_zz_total", "z").add(1);
  r.counter("bgpcu_aa_total", "a", "k=\"2\"").add(2);
  r.counter("bgpcu_aa_total", "a", "k=\"1\"").add(1);
  const auto snapshot = r.collect();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "bgpcu_aa_total");
  EXPECT_EQ(snapshot[1].name, "bgpcu_zz_total");
  ASSERT_EQ(snapshot[0].series.size(), 2u);
  EXPECT_EQ(snapshot[0].series[0].labels, "k=\"1\"");
  EXPECT_EQ(snapshot[0].series[1].labels, "k=\"2\"");
}

TEST(RegistryTest, CollectorsWithSameIdentitySumAndUnregisterOnReset) {
  Registry r;
  auto c1 = r.add_collector("bgpcu_live", "live things", "", [] { return 3.0; });
  auto c2 = r.add_collector("bgpcu_live", "live things", "", [] { return 4.0; });
  auto snapshot = r.collect();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].type, MetricType::kGauge);
  ASSERT_EQ(snapshot[0].series.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].series[0].value, 7.0);

  c2.reset();
  snapshot = r.collect();
  ASSERT_EQ(snapshot[0].series.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].series[0].value, 3.0);

  c1.reset();
  EXPECT_TRUE(r.collect().empty());
}

TEST(RegistryTest, CollectorHandleSurvivesMove) {
  Registry r;
  ScopedCollector held;
  {
    auto inner = r.add_collector("bgpcu_live", "live", "", [] { return 1.0; });
    held = std::move(inner);
  }  // the moved-from handle must not unregister
  EXPECT_EQ(r.collect().size(), 1u);
  held.reset();
  EXPECT_TRUE(r.collect().empty());
}

TEST(RegistryTest, GlobalCatalogHasEveryFamilyGroup) {
  // The well-known catalog (obs/wellknown.h) must cover every instrumented
  // layer — this is what the acceptance scrape checks over HTTP.
  (void)metrics();  // force catalog interning
  const auto snapshot = Registry::global().collect();
  bool feed = false, stream = false, snap = false, index = false, api = false, net = false;
  for (const auto& family : snapshot) {
    feed = feed || family.name.starts_with("bgpcu_feed_");
    stream = stream || family.name.starts_with("bgpcu_stream_");
    snap = snap || family.name.starts_with("bgpcu_snapshot_");
    index = index || family.name.starts_with("bgpcu_index_");
    api = api || family.name.starts_with("bgpcu_api_");
    net = net || family.name.starts_with("bgpcu_net_");
  }
  EXPECT_TRUE(feed);
  EXPECT_TRUE(stream);
  EXPECT_TRUE(snap);
  EXPECT_TRUE(index);
  EXPECT_TRUE(api);
  EXPECT_TRUE(net);
}

// ----------------------------------------------------------- rendering --

TEST(RenderTest, FormatValueIsIntegralWhenPossible) {
  EXPECT_EQ(format_value(5), "5");
  EXPECT_EQ(format_value(0), "0");
  EXPECT_EQ(format_value(-3), "-3");
  EXPECT_NE(format_value(2.5).find('.'), std::string::npos);
}

TEST(RenderTest, PrometheusExpositionShape) {
  Registry r;
  r.counter("bgpcu_things_total", "Things that happened", "kind=\"a\"").add(3);
  r.gauge("bgpcu_depth", "Queue depth").set(2);
  auto& h = r.histogram("bgpcu_wait_ns", "Wait time");
  h.observe(1);
  h.observe(3);
  const auto text = render_prometheus(r.collect());

  EXPECT_NE(text.find("# HELP bgpcu_things_total Things that happened\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bgpcu_things_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("bgpcu_things_total{kind=\"a\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bgpcu_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("bgpcu_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bgpcu_wait_ns histogram\n"), std::string::npos);
  // Buckets are cumulative: le="1" holds 1 observation, le="4" both.
  EXPECT_NE(text.find("bgpcu_wait_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("bgpcu_wait_ns_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("bgpcu_wait_ns_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("bgpcu_wait_ns_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("bgpcu_wait_ns_count 2\n"), std::string::npos);
  // Empty raw buckets between observations are skipped (le="2" saw nothing),
  // keeping the exposition compact.
  EXPECT_EQ(text.find("bgpcu_wait_ns_bucket{le=\"2\"}"), std::string::npos);
}

TEST(RenderTest, JsonCarriesTimestampAndEscapes) {
  Registry r;
  r.counter("bgpcu_things_total", "things", "kind=\"a\"").add(3);
  const auto snapshot = r.collect();

  const auto with_ts = render_json(snapshot, 1700000000);
  EXPECT_NE(with_ts.find("\"ts\":1700000000"), std::string::npos);
  // The label's quotes are escaped inside the JSON key.
  EXPECT_NE(with_ts.find("\"bgpcu_things_total{kind=\\\"a\\\"}\":3"), std::string::npos);

  const auto without_ts = render_json(snapshot, 0);
  EXPECT_EQ(without_ts.find("\"ts\""), std::string::npos);
}

TEST(RenderTest, PlainListingHasNoComments) {
  Registry r;
  r.counter("bgpcu_things_total", "things").add(3);
  const auto text = render_plain(r.collect());
  EXPECT_EQ(text.find('#'), std::string::npos);
  EXPECT_NE(text.find("bgpcu_things_total 3\n"), std::string::npos);
}

}  // namespace
}  // namespace bgpcu::obs
