// The built-in metrics HTTP endpoint, driven over a real ephemeral-port
// socket: route handling (/metrics, /metrics.json, /healthz, 404, 405), the
// Prometheus content type, and clean shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "net/socket.h"
#include "obs/http.h"
#include "obs/metrics.h"

namespace bgpcu::obs {
namespace {

/// One HTTP exchange: connect, send `request`, read to connection close.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  auto conn = net::tcp_connect("127.0.0.1", port);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(request.data());
  EXPECT_TRUE(conn->write_all({bytes, request.size()}));
  conn->shutdown_write();
  std::string response;
  std::uint8_t buf[4096];
  while (true) {
    const auto n = conn->read_some(buf);
    if (n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), n);
  }
  return response;
}

class MetricsHttpTest : public ::testing::Test {
 protected:
  MetricsHttpTest() : server_("127.0.0.1", 0, registry_) {
    registry_.counter("bgpcu_test_requests_total", "Test counter").add(42);
  }

  Registry registry_;
  MetricsHttpServer server_;
};

TEST_F(MetricsHttpTest, EphemeralPortResolves) { EXPECT_GT(server_.port(), 0); }

TEST_F(MetricsHttpTest, MetricsRouteServesPrometheusText) {
  const auto response =
      http_exchange(server_.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos) << response;
  EXPECT_NE(response.find("# TYPE bgpcu_test_requests_total counter"), std::string::npos);
  EXPECT_NE(response.find("bgpcu_test_requests_total 42"), std::string::npos);
}

TEST_F(MetricsHttpTest, RootAliasesMetrics) {
  const auto response = http_exchange(server_.port(), "GET / HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("bgpcu_test_requests_total 42"), std::string::npos);
}

TEST_F(MetricsHttpTest, JsonRouteServesFlatJson) {
  const auto response =
      http_exchange(server_.port(), "GET /metrics.json HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos) << response;
  EXPECT_NE(response.find("\"bgpcu_test_requests_total\":42"), std::string::npos);
  EXPECT_NE(response.find("\"ts\":"), std::string::npos);
}

TEST_F(MetricsHttpTest, HealthzAnswersOk) {
  const auto response =
      http_exchange(server_.port(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("ok\n"), std::string::npos);
}

TEST_F(MetricsHttpTest, UnknownPathIs404) {
  const auto response =
      http_exchange(server_.port(), "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
}

TEST_F(MetricsHttpTest, NonGetIs405) {
  const auto response =
      http_exchange(server_.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
}

TEST_F(MetricsHttpTest, ServesSequentialConnections) {
  for (int i = 0; i < 3; ++i) {
    const auto response =
        http_exchange(server_.port(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_NE(response.find("200 OK"), std::string::npos) << "request " << i;
  }
}

TEST_F(MetricsHttpTest, StalledScraperDoesNotBlockHealthz) {
  // Regression: the old accept-loop served one connection at a time, so a
  // scraper that connected and went silent held the whole endpoint hostage
  // for its read timeout. With every client multiplexed on the poller, a
  // stalled peer must not delay anyone: open two stalled connections (one
  // totally silent, one with a half-sent request line) and demand that a
  // live /healthz round-trips while they are still stalled.
  auto silent = net::tcp_connect("127.0.0.1", server_.port());
  auto partial = net::tcp_connect("127.0.0.1", server_.port());
  const std::string half = "GET /metr";  // no terminator, never finished
  ASSERT_TRUE(partial->write_all(
      {reinterpret_cast<const std::uint8_t*>(half.data()), half.size()}));

  const auto started = std::chrono::steady_clock::now();
  const auto response =
      http_exchange(server_.port(), "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - started;

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  // Well under the 2 s stall deadline — the healthy client was never queued
  // behind the stalled ones.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1500));

  // The stalled peers are eventually shed by the phase deadline: their
  // sockets read EOF once the server drops them.
  std::uint8_t buf[256];
  silent->set_read_timeout(std::chrono::milliseconds(5000));
  EXPECT_EQ(silent->read_some(buf), 0u);
  partial->set_read_timeout(std::chrono::milliseconds(5000));
  while (partial->read_some(buf) != 0) {
  }
}

TEST(MetricsHttpShutdownTest, StopIsIdempotent) {
  Registry registry;
  MetricsHttpServer server("127.0.0.1", 0, registry);
  server.stop();
  server.stop();  // second stop (and the destructor after) must be harmless
}

}  // namespace
}  // namespace bgpcu::obs
