#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (version 0.0.4) scrape.

Used by CI to fail the bench-release job if bgpcu_serve's /metrics output
goes malformed. Checks, per family:

  * every family has a ``# HELP`` line immediately followed by ``# TYPE``
  * the TYPE is one of counter/gauge/histogram
  * every sample line parses as  name[{labels}] value  with a finite value
    (counters additionally must be non-negative)
  * sample names belong to the most recently declared family (histogram
    samples may use the _bucket/_sum/_count suffixes)
  * histogram buckets are cumulative: counts are monotone over increasing
    ``le``, the ``+Inf`` bucket is present and equals ``_count``

Usage:  check_exposition.py [FILE]          (reads stdin when FILE is absent)
        check_exposition.py --require-family PREFIX ... [FILE]

``--require-family`` asserts at least one family starts with PREFIX; the CI
job uses it to prove the scrape actually covers the feed/stream/index/api/net
instrument groups rather than being an empty-but-well-formed page.

Exits 0 when valid, 1 with a line-numbered complaint otherwise.
"""

import math
import re
import sys

VALID_TYPES = {"counter", "gauge", "histogram"}
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def fail(lineno, msg):
    print(f"check_exposition: line {lineno}: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(raw, lineno):
    try:
        value = float(raw)
    except ValueError:
        fail(lineno, f"unparseable sample value {raw!r}")
    if math.isnan(value):
        fail(lineno, "NaN sample value")
    return value


def le_key(labels):
    """Extract the ``le`` bound and the identity of the remaining labels."""
    bound = None
    rest = []
    for part in split_labels(labels):
        if part.startswith('le="'):
            bound = part[4:-1]
        else:
            rest.append(part)
    return bound, ",".join(sorted(rest))


def split_labels(labels):
    if not labels:
        return []
    parts = []
    depth_quote = False
    current = ""
    i = 0
    while i < len(labels):
        ch = labels[i]
        if ch == "\\" and depth_quote:
            current += labels[i : i + 2]
            i += 2
            continue
        if ch == '"':
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
        i += 1
    if current:
        parts.append(current)
    return parts


def check(text, required_prefixes):
    families = {}  # name -> type
    current = None  # (name, type)
    help_seen = None  # family name from the last # HELP, awaiting # TYPE
    # histogram state: {series_key: [(le_float, count)]}, plus _sum/_count
    hist_buckets = {}
    hist_counts = {}

    lines = text.splitlines()
    if not lines:
        fail(0, "empty exposition")

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                fail(lineno, f"malformed HELP line: {line!r}")
            help_seen = parts[2]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                fail(lineno, f"malformed TYPE line: {line!r}")
            name, kind = parts[2], parts[3]
            if kind not in VALID_TYPES:
                fail(lineno, f"unknown metric type {kind!r}")
            if help_seen != name:
                fail(lineno, f"TYPE for {name} not preceded by its HELP line")
            if name in families:
                fail(lineno, f"family {name} declared twice")
            families[name] = kind
            current = (name, kind)
            help_seen = None
            continue
        if line.startswith("#"):
            continue  # comments are legal anywhere

        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, f"unparseable sample line: {line!r}")
        name, labels, raw = m.group("name"), m.group("labels"), m.group("value")
        for part in split_labels(labels or ""):
            if not LABEL_RE.match(part):
                fail(lineno, f"malformed label pair {part!r}")
        value = parse_value(raw, lineno)

        if current is None:
            fail(lineno, f"sample {name} before any TYPE declaration")
        fam, kind = current
        if kind == "histogram":
            if name not in (fam + "_bucket", fam + "_sum", fam + "_count"):
                fail(lineno, f"sample {name} does not belong to histogram {fam}")
            if name == fam + "_bucket":
                bound, rest = le_key(labels or "")
                if bound is None:
                    fail(lineno, f"histogram bucket without le label: {line!r}")
                bound_f = math.inf if bound == "+Inf" else parse_value(bound, lineno)
                hist_buckets.setdefault((fam, rest), []).append(
                    (bound_f, value, lineno)
                )
            elif name == fam + "_count":
                _, rest = le_key(labels or "")
                hist_counts[(fam, rest)] = (value, lineno)
        else:
            if name != fam:
                fail(lineno, f"sample {name} under family {fam}")
            if kind == "counter" and value < 0:
                fail(lineno, f"negative counter sample: {line!r}")

    for (fam, rest), buckets in hist_buckets.items():
        bounds = [b for b, _, _ in buckets]
        if bounds != sorted(bounds):
            fail(buckets[0][2], f"histogram {fam} buckets out of le order")
        counts = [c for _, c, _ in buckets]
        if counts != sorted(counts):
            fail(buckets[0][2], f"histogram {fam} bucket counts not cumulative")
        if buckets[-1][0] != math.inf:
            fail(buckets[-1][2], f"histogram {fam} missing +Inf bucket")
        total = hist_counts.get((fam, rest))
        if total is None:
            fail(buckets[-1][2], f"histogram {fam} missing _count sample")
        if total[0] != buckets[-1][1]:
            fail(total[1], f"histogram {fam} +Inf bucket != _count")

    for prefix in required_prefixes:
        if not any(f.startswith(prefix) for f in families):
            fail(len(lines), f"no metric family starts with {prefix!r}")

    print(
        f"check_exposition: OK — {len(families)} families "
        f"({sum(1 for k in families.values() if k == 'histogram')} histograms)"
    )


def main(argv):
    required = []
    paths = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require-family":
            i += 1
            if i >= len(argv):
                print("check_exposition: --require-family needs a value", file=sys.stderr)
                return 2
            required.append(argv[i])
        else:
            paths.append(argv[i])
        i += 1
    if len(paths) > 1:
        print("check_exposition: at most one input file", file=sys.stderr)
        return 2
    text = open(paths[0]).read() if paths else sys.stdin.read()
    check(text, required)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
