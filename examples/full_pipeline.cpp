// Full measurement pipeline on a synthetic Internet, end to end:
//
//   topology -> valley-free routes -> community outputs -> MRT dumps on disk
//   -> parse -> sanitize (§4.1) -> unique tuples -> column engine (§5.6)
//   -> per-AS classification summary.
//
// This mirrors what a researcher does with real RIPE/RouteViews dumps; swap
// the synthetic MRT files for downloaded ones and the rest is identical.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "collector/emit.h"
#include "collector/extract.h"
#include "collector/spec.h"
#include "core/engine.h"
#include "mrt/reader.h"
#include "mrt/writer.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/generator.h"

int main() {
  using namespace bgpcu;

  // 1. A small Internet: 1,500 ASes, hierarchical, with allocations.
  topology::GeneratorParams gen;
  gen.num_ases = 1500;
  gen.seed = 2026;
  auto topo = topology::generate(gen);
  std::cout << "generated " << topo.graph.node_count() << " ASes, "
            << topo.graph.edge_count() << " relationships\n";

  // 2. Collector projects and the routes their peers observe.
  collector::ProjectLayoutParams layout;
  layout.total_peers = 40;
  layout.seed = gen.seed;
  const auto projects = collector::default_projects(topo, layout);
  const auto substrate = sim::build_substrate(topo, collector::all_peers(projects));

  // 3. Ground-truth community behavior (unknown to the inference).
  sim::WildParams wild;
  wild.seed = gen.seed;
  const auto roles = sim::assign_wild_roles(topo, wild);
  sim::OutputConfig output;
  output.pollution = wild.pollution;
  const auto truth = sim::generate_dataset(topo, substrate, roles, output, gen.seed);

  // 4. Emit MRT to disk, like a collector archive.
  const auto dir = std::filesystem::temp_directory_path() / "bgpcu_example";
  std::filesystem::create_directories(dir);
  const collector::PathOutputs outputs(truth);
  collector::EmissionConfig emission;
  emission.seed = gen.seed;
  std::vector<std::filesystem::path> files;
  for (const auto& project : projects) {
    for (const auto& emitted :
         collector::emit_project(topo, substrate, outputs, project, emission)) {
      mrt::MrtWriter writer;
      {
        mrt::MrtReader rib(emitted.rib_dump);
        while (auto rec = rib.next()) writer.write(*rec);
        mrt::MrtReader upd(emitted.update_dump);
        while (auto rec = upd.next()) writer.write(*rec);
      }
      const auto path = dir / (emitted.name + ".mrt");
      writer.flush_to_file(path.string());
      files.push_back(path);
    }
  }
  std::cout << "wrote " << files.size() << " MRT files under " << dir << "\n";

  // 5. Read the files back and build the sanitized unique-tuple dataset.
  collector::DatasetBuilder builder(topo.registry);
  for (const auto& file : files) {
    const mrt::MrtFileReader reader(file.string());
    mrt::MrtWriter buffer;
    for (const auto& rec : reader.records()) buffer.write(rec);
    builder.add_dump(buffer.buffer());
  }
  const auto bundle = builder.finish();
  std::printf("entries: %llu (RIB %llu), sanitized tuples: %zu, dropped bogus: %llu\n",
              static_cast<unsigned long long>(bundle.extraction.entries_total),
              static_cast<unsigned long long>(bundle.extraction.rib_entries),
              bundle.dataset.size(),
              static_cast<unsigned long long>(bundle.sanitation.dropped_unallocated_asn +
                                              bundle.sanitation.dropped_unallocated_prefix));

  // 6. Infer community usage and summarize.
  const auto result = core::ColumnEngine().run(bundle.dataset);
  std::size_t tagger = 0, silent = 0, forward = 0, cleaner = 0, full = 0;
  for (const auto& [asn, counters] : result.counter_map()) {
    const auto usage = core::classify(counters, result.thresholds());
    tagger += usage.tagging == core::TaggingClass::kTagger;
    silent += usage.tagging == core::TaggingClass::kSilent;
    forward += usage.forwarding == core::ForwardingClass::kForward;
    cleaner += usage.forwarding == core::ForwardingClass::kCleaner;
    full += usage.full();
  }
  std::cout << "classified: " << tagger << " tagger, " << silent << " silent, " << forward
            << " forward, " << cleaner << " cleaner (" << full << " fully classified)\n";

  std::filesystem::remove_all(dir);
  return 0;
}
