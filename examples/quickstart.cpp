// Quickstart: classify community usage from a handful of hand-written
// (AS path, community set) observations — the library's core loop in ~40
// lines. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/engine.h"

int main() {
  using namespace bgpcu;
  using bgp::CommunityValue;

  // Observations as a collector sees them: path[0] peers with the collector,
  // path.back() originated the prefix. Communities are "admin:value".
  core::Dataset observations;
  const auto add = [&observations](std::vector<bgp::Asn> path,
                                   std::vector<std::string> comms) {
    core::PathCommTuple tuple;
    tuple.path = std::move(path);
    for (const auto& text : comms) tuple.comms.push_back(CommunityValue::parse(text));
    observations.push_back(std::move(tuple));
  };

  // AS 3356 peers with the collector and tags its routes.
  add({3356}, {"3356:100"});
  // AS 1299 forwards 3356's communities upstream: 1299 is a forwarder and,
  // since it adds nothing of its own, silent.
  add({1299, 3356}, {"3356:100"});
  // AS 6939 exports routes learned from 3356 without the tag: a cleaner.
  add({6939, 3356}, {});
  // AS 2914 shows both behaviors across sessions: undecided.
  add({2914, 3356}, {"3356:100"});
  add({2914, 6453, 3356}, {});

  core::deduplicate(observations);
  const auto result = core::ColumnEngine().run(observations);

  std::cout << "ASN    class  (t,s,f,c)\n";
  for (const bgp::Asn asn : core::distinct_asns(observations)) {
    const auto k = result.counters(asn);
    std::cout << asn << "  ->  " << result.usage(asn).code() << "   (" << k.t << "," << k.s
              << "," << k.f << "," << k.c << ")\n";
  }
  std::cout << "\nclass codes: tagging {t,s,u,n} x forwarding {f,c,u,n}; see §5.5.\n";
  return 0;
}
