// Operator-style community audit (§7.2): for each collector peer, break the
// observed communities into source groups (peer / foreign / stray / private)
// and cross-check them against the peer's inferred class — foreign
// communities at an inferred cleaner contradict the inference, stray and
// private communities are unattributable noise worth filtering.
#include <algorithm>
#include <iostream>

#include "core/community_source.h"
#include "core/engine.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/generator.h"

int main() {
  using namespace bgpcu;

  topology::GeneratorParams gen;
  gen.num_ases = 2000;
  gen.seed = 11;
  const auto topo = topology::generate(gen);
  const auto peers = sim::select_collector_peers(topo, 40, gen.seed);
  const auto substrate = sim::build_substrate(topo, peers);

  sim::WildParams wild;
  wild.seed = gen.seed;
  const auto roles = sim::assign_wild_roles(topo, wild);
  sim::OutputConfig output;
  output.pollution = wild.pollution;  // include stray/private noise
  const auto dataset = sim::generate_dataset(topo, substrate, roles, output, gen.seed);
  const auto inference = core::ColumnEngine().run(dataset);

  struct Audit {
    std::string cls;
    core::SourceGroupCounts counts;
    std::uint64_t tuples = 0;
  };
  std::unordered_map<bgp::Asn, Audit> audits;
  for (const auto& tuple : dataset) {
    auto& audit = audits[tuple.peer()];
    audit.cls = inference.usage(tuple.peer()).code();
    audit.counts += core::count_sources(tuple, topo.registry);
    ++audit.tuples;
  }

  std::vector<std::pair<bgp::Asn, Audit>> rows(audits.begin(), audits.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.counts.total() > b.second.counts.total();
  });

  std::cout << "peer AS   class   tuples   peer  foreign  stray  private   notes\n";
  for (const auto& [asn, audit] : rows) {
    std::string notes;
    const bool cleaner = audit.cls[1] == 'c';
    if (cleaner && audit.counts.of(core::SourceGroup::kForeign) > 0) {
      notes = "foreign comms at a cleaner: investigate";
    } else if (audit.counts.of(core::SourceGroup::kStray) +
                   audit.counts.of(core::SourceGroup::kPrivate) >
               audit.counts.total() / 2) {
      notes = "mostly unattributable communities";
    }
    std::printf("%-9u %-7s %-8llu %-5llu %-8llu %-6llu %-9llu %s\n", asn, audit.cls.c_str(),
                static_cast<unsigned long long>(audit.tuples),
                static_cast<unsigned long long>(audit.counts.of(core::SourceGroup::kPeer)),
                static_cast<unsigned long long>(audit.counts.of(core::SourceGroup::kForeign)),
                static_cast<unsigned long long>(audit.counts.of(core::SourceGroup::kStray)),
                static_cast<unsigned long long>(audit.counts.of(core::SourceGroup::kPrivate)),
                notes.c_str());
  }
  std::cout << "\nexpectation (§7.2): t* classes show peer communities, *f classes show\n"
               "foreign communities; stray/private appear everywhere and are ignored\n"
               "by the inference.\n";
  return 0;
}
