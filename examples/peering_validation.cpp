// Active-measurement validation (§7.4): infer community usage passively,
// then inject a /24 announcement with per-PoP communities from a testbed AS
// and check the inferences against what actually arrives at the collectors.
#include <iostream>

#include "core/engine.h"
#include "sim/peering.h"
#include "sim/scenario.h"
#include "sim/substrate.h"
#include "sim/wild.h"
#include "topology/generator.h"

int main() {
  using namespace bgpcu;

  topology::GeneratorParams gen;
  gen.num_ases = 2000;
  gen.seed = 7;
  const auto topo = topology::generate(gen);
  const auto peers = sim::select_collector_peers(topo, 50, gen.seed);
  const auto substrate = sim::build_substrate(topo, peers);

  sim::WildParams wild;
  wild.seed = gen.seed;
  const auto roles = sim::assign_wild_roles(topo, wild);
  const auto dataset =
      sim::generate_dataset(topo, substrate, roles, sim::OutputConfig{}, gen.seed);
  const auto inference = core::ColumnEngine().run(dataset);
  std::cout << "passive inference over " << dataset.size() << " tuples done\n";

  sim::PeeringConfig config;
  config.seed = 42;
  const auto obs = sim::run_peering_experiment(topo, peers, roles, config);
  std::cout << "announced /24 via " << obs.pop_asns.size() << " PoPs; observed "
            << obs.tuples.size() << " unique (path, comm) tuples\n";

  const auto v = sim::validate_observation(obs, inference, 47065);
  std::cout << "\npaths delivering our communities:   " << v.with_comms << "\n"
            << "  ...with an inferred cleaner:      " << v.with_comms_cleaner
            << "  <- contradictions\n"
            << "  ...with undecided ASes only:      " << v.with_comms_undecided << "\n"
            << "paths missing our communities:      " << v.without_comms << "\n"
            << "  ...with an inferred cleaner:      " << v.without_comms_cleaner
            << "  <- explained\n"
            << "  ...with undecided ASes only:      " << v.without_comms_undecided << "\n";

  // Contradictions are inferences proven wrong (a "cleaner" forwarded our
  // tags). Paths whose responsible cleaner was classified neither cleaner
  // nor undecided are coverage gaps (`none`), not wrong inferences — the
  // paper's >90% agreement statement concerns the ASes it classified.
  const auto contradictions = v.with_comms_cleaner;
  const auto gaps = v.without_comms - v.without_comms_cleaner - v.without_comms_undecided;
  const auto total = v.with_comms + v.without_comms;
  std::cout << "\n" << total - contradictions - gaps << "/" << total
            << " observations agree with the inferences, " << gaps
            << " fall outside inference coverage, " << contradictions
            << " contradict them (paper: >90% agreement among classified ASes)\n";
  return 0;
}
