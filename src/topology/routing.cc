#include "topology/routing.h"

#include <algorithm>
#include <limits>

namespace bgpcu::topology {

namespace {
constexpr std::uint16_t kInf = std::numeric_limits<std::uint16_t>::max();
}

RouteComputer::RouteComputer(const AsGraph& graph)
    : graph_(graph),
      cls_(graph.node_count(), RouteClass::kNone),
      dist_(graph.node_count(), kInf),
      parent_(graph.node_count(), 0) {}

void RouteComputer::compute(NodeId origin) {
  std::fill(cls_.begin(), cls_.end(), RouteClass::kNone);
  std::fill(dist_.begin(), dist_.end(), kInf);

  cls_[origin] = RouteClass::kSelf;
  dist_[origin] = 0;
  parent_[origin] = origin;

  // Stage A — customer routes propagate up the provider hierarchy, layered
  // BFS. Ties at equal distance resolve to the lowest-ASN exporting
  // neighbor; candidates for layer d+1 are gathered from the entire layer d
  // before assignment, so tuple/edge order cannot influence the result.
  std::vector<NodeId> frontier{origin};
  std::vector<NodeId> cand;  // candidate nodes of the next layer
  while (!frontier.empty()) {
    cand.clear();
    for (const NodeId u : frontier) {
      for (const NodeId p : graph_.providers(u)) {
        if (cls_[p] == RouteClass::kNone) {
          cls_[p] = RouteClass::kCustomer;
          dist_[p] = static_cast<std::uint16_t>(dist_[u] + 1);
          parent_[p] = u;
          cand.push_back(p);
        } else if (cls_[p] == RouteClass::kCustomer &&
                   dist_[p] == static_cast<std::uint16_t>(dist_[u] + 1) &&
                   graph_.asn_of(u) < graph_.asn_of(parent_[p])) {
          parent_[p] = u;  // deterministic tie-break within the layer
        }
      }
    }
    frontier.swap(cand);
  }

  // Stage B — peer routes: every node holding a self/customer route exports
  // to its peers; peers without a customer route take the best offer.
  struct PeerOffer {
    NodeId node;
    std::uint16_t dist;
    NodeId parent;
  };
  std::vector<PeerOffer> offers;
  for (NodeId u = 0; u < graph_.node_count(); ++u) {
    if (cls_[u] != RouteClass::kSelf && cls_[u] != RouteClass::kCustomer) continue;
    for (const NodeId v : graph_.peers(u)) {
      if (cls_[v] == RouteClass::kSelf || cls_[v] == RouteClass::kCustomer) continue;
      offers.push_back({v, static_cast<std::uint16_t>(dist_[u] + 1), u});
    }
  }
  for (const auto& offer : offers) {
    if (cls_[offer.node] == RouteClass::kNone || offer.dist < dist_[offer.node] ||
        (offer.dist == dist_[offer.node] &&
         graph_.asn_of(offer.parent) < graph_.asn_of(parent_[offer.node]))) {
      cls_[offer.node] = RouteClass::kPeer;
      dist_[offer.node] = offer.dist;
      parent_[offer.node] = offer.parent;
    }
  }

  // Stage C — provider routes cascade down to customers, processed in
  // distance order (bucket BFS with multi-distance sources) so each node is
  // final before it exports.
  const std::size_t n = graph_.node_count();
  std::vector<std::vector<NodeId>> buckets;
  const auto push_bucket = [&buckets](std::uint16_t d, NodeId node) {
    if (buckets.size() <= d) buckets.resize(static_cast<std::size_t>(d) + 1);
    buckets[d].push_back(node);
  };
  for (NodeId u = 0; u < n; ++u) {
    if (cls_[u] != RouteClass::kNone) push_bucket(dist_[u], u);
  }
  for (std::uint16_t d = 0; d < buckets.size(); ++d) {
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const NodeId u = buckets[d][i];
      if (dist_[u] != d) continue;  // stale entry (improved meanwhile)
      for (const NodeId v : graph_.customers(u)) {
        const auto nd = static_cast<std::uint16_t>(d + 1);
        if (cls_[v] == RouteClass::kNone ||
            (cls_[v] == RouteClass::kProvider &&
             (nd < dist_[v] || (nd == dist_[v] && graph_.asn_of(u) < graph_.asn_of(parent_[v]))))) {
          const bool fresh = cls_[v] == RouteClass::kNone || nd < dist_[v];
          cls_[v] = RouteClass::kProvider;
          dist_[v] = nd;
          parent_[v] = u;
          if (fresh) push_bucket(nd, v);
        }
      }
    }
  }
}

std::vector<NodeId> RouteComputer::path_from(NodeId node) const {
  std::vector<NodeId> path;
  if (cls_[node] == RouteClass::kNone) return path;
  NodeId cur = node;
  path.push_back(cur);
  while (cls_[cur] != RouteClass::kSelf && path.size() <= graph_.node_count()) {
    cur = parent_[cur];
    path.push_back(cur);
  }
  return path;
}

}  // namespace bgpcu::topology
