// Valley-free route computation (Gao-Rexford model): for a given origin,
// computes each AS's best route under the standard export policy —
//   * routes learned from customers are exported to everyone,
//   * routes learned from peers/providers are exported to customers only —
// and the standard preference order customer > peer > provider, then
// shortest AS path, then lowest-ASN neighbor for determinism. This yields
// the AS path each (simulated) collector peer announces to its collector.
#ifndef BGPCU_TOPOLOGY_ROUTING_H
#define BGPCU_TOPOLOGY_ROUTING_H

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace bgpcu::topology {

/// Route preference class, in preference order.
enum class RouteClass : std::uint8_t {
  kSelf = 0,      ///< The origin itself.
  kCustomer = 1,  ///< Learned from a customer.
  kPeer = 2,      ///< Learned from a peer.
  kProvider = 3,  ///< Learned from a provider.
  kNone = 255,
};

/// Computes best routes from every AS toward one origin at a time. Buffers
/// are reused across `compute` calls; one instance per thread.
class RouteComputer {
 public:
  explicit RouteComputer(const AsGraph& graph);

  /// Computes routes toward `origin` for all nodes, replacing prior state.
  void compute(NodeId origin);

  /// True if `node` has any route to the current origin.
  [[nodiscard]] bool has_route(NodeId node) const {
    return cls_[node] != RouteClass::kNone;
  }

  [[nodiscard]] RouteClass route_class(NodeId node) const { return cls_[node]; }

  /// AS-level hops to the origin (0 for the origin itself).
  [[nodiscard]] std::uint16_t distance(NodeId node) const { return dist_[node]; }

  /// The best path `node .. origin` (inclusive). Empty if unreachable.
  [[nodiscard]] std::vector<NodeId> path_from(NodeId node) const;

 private:
  const AsGraph& graph_;
  std::vector<RouteClass> cls_;
  std::vector<std::uint16_t> dist_;
  std::vector<NodeId> parent_;
};

}  // namespace bgpcu::topology

#endif  // BGPCU_TOPOLOGY_ROUTING_H
