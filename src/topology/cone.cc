#include "topology/cone.h"

namespace bgpcu::topology {

namespace {

// Iterative downward BFS with an epoch-stamped visited array (no clearing
// between nodes).
class ConeWalker {
 public:
  explicit ConeWalker(const AsGraph& graph)
      : graph_(graph), stamp_(graph.node_count(), 0) {}

  std::uint32_t size_of(NodeId start) {
    ++epoch_;
    std::uint32_t count = 0;
    stack_.clear();
    stack_.push_back(start);
    stamp_[start] = epoch_;
    while (!stack_.empty()) {
      const NodeId u = stack_.back();
      stack_.pop_back();
      ++count;
      for (const NodeId c : graph_.customers(u)) {
        if (stamp_[c] != epoch_) {
          stamp_[c] = epoch_;
          stack_.push_back(c);
        }
      }
    }
    return count;
  }

 private:
  const AsGraph& graph_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> stack_;
};

}  // namespace

std::vector<std::uint32_t> customer_cone_sizes(const AsGraph& graph) {
  ConeWalker walker(graph);
  std::vector<std::uint32_t> sizes(graph.node_count());
  for (NodeId node = 0; node < graph.node_count(); ++node) {
    sizes[node] = walker.size_of(node);
  }
  return sizes;
}

std::uint32_t customer_cone_size(const AsGraph& graph, NodeId node) {
  ConeWalker walker(graph);
  return walker.size_of(node);
}

}  // namespace bgpcu::topology
