// Customer cone computation. The customer cone of an AS is itself plus every
// AS reachable by walking only provider→customer edges downward (CAIDA's
// definition); cone size serves as the AS-size indicator for Fig. 6 and the
// wild-scenario role model.
#ifndef BGPCU_TOPOLOGY_CONE_H
#define BGPCU_TOPOLOGY_CONE_H

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace bgpcu::topology {

/// Exact customer-cone sizes for every node (leafs have size 1). Cost is
/// bounded by the sum of cone sizes (small except for the core).
[[nodiscard]] std::vector<std::uint32_t> customer_cone_sizes(const AsGraph& graph);

/// Exact cone size for one node.
[[nodiscard]] std::uint32_t customer_cone_size(const AsGraph& graph, NodeId node);

}  // namespace bgpcu::topology

#endif  // BGPCU_TOPOLOGY_CONE_H
