// Synthetic Internet generator: a hierarchical AS topology with a tier-1
// clique, two transit tiers, a leaf majority (~83%, matching the paper's
// ~60k of 73k), IXP-style peering meshes, 16-/32-bit ASN population and
// per-AS IPv4 address blocks registered in an AllocationRegistry.
#ifndef BGPCU_TOPOLOGY_GENERATOR_H
#define BGPCU_TOPOLOGY_GENERATOR_H

#include <cstdint>
#include <vector>

#include "bgp/prefix.h"
#include "registry/registry.h"
#include "topology/graph.h"

namespace bgpcu::topology {

/// Coarse size tier of an AS; drives provider selection, peering and the
/// wild-scenario role probabilities.
enum class Tier : std::uint8_t {
  kTier1 = 0,         ///< Clique core, no providers.
  kLargeTransit = 1,  ///< Regional/continental transit.
  kSmallTransit = 2,  ///< Local transit / access aggregators.
  kLeaf = 3,          ///< Stub: originates only.
};

/// Generator knobs. Defaults yield paper-like proportions at any scale.
struct GeneratorParams {
  std::uint32_t num_ases = 10000;
  std::uint32_t num_tier1 = 12;
  double large_transit_share = 0.025;  ///< Fraction of ASes in tier 1.5.
  double small_transit_share = 0.145;  ///< Together with tier-1: ~17% transit.
  double frac_32bit_asn = 0.43;        ///< Paper: ~31k of 73k ASes are 32-bit.
  std::uint32_t ixp_count = 6;         ///< Peering meshes.
  double ixp_mesh_prob = 0.25;         ///< Pairwise peering prob within an IXP.
  std::uint64_t seed = 1;
};

/// Generator output: the graph plus per-node metadata and the registry
/// pre-loaded with every allocated ASN and address block.
struct GeneratedTopology {
  AsGraph graph;
  std::vector<Tier> tier;                          ///< Indexed by NodeId.
  std::vector<std::vector<bgp::Prefix>> prefixes;  ///< Originated blocks per node.
  registry::AllocationRegistry registry;
  std::vector<NodeId> tier1;

  [[nodiscard]] Tier tier_of(NodeId node) const { return tier.at(node); }
};

/// Generates a topology. Deterministic for a given `params` (including seed).
[[nodiscard]] GeneratedTopology generate(const GeneratorParams& params);

}  // namespace bgpcu::topology

#endif  // BGPCU_TOPOLOGY_GENERATOR_H
