#include "topology/graph.h"

#include <stdexcept>

namespace bgpcu::topology {

NodeId AsGraph::add_as(bgp::Asn asn) {
  const auto node = static_cast<NodeId>(asns_.size());
  if (!by_asn_.emplace(asn, node).second) {
    throw std::invalid_argument("duplicate ASN " + std::to_string(asn));
  }
  asns_.push_back(asn);
  providers_.emplace_back();
  customers_.emplace_back();
  peers_.emplace_back();
  return node;
}

void AsGraph::add_c2p(NodeId customer, NodeId provider) {
  if (customer == provider) throw std::invalid_argument("self edge");
  if (rel_.contains(edge_key(customer, provider))) return;  // keep first relationship
  providers_.at(customer).push_back(provider);
  customers_.at(provider).push_back(customer);
  rel_.emplace(edge_key(customer, provider), Relationship::kProvider);
  rel_.emplace(edge_key(provider, customer), Relationship::kCustomer);
  ++edges_;
}

void AsGraph::add_p2p(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("self edge");
  if (rel_.contains(edge_key(a, b))) return;
  peers_.at(a).push_back(b);
  peers_.at(b).push_back(a);
  rel_.emplace(edge_key(a, b), Relationship::kPeer);
  rel_.emplace(edge_key(b, a), Relationship::kPeer);
  ++edges_;
}

std::optional<NodeId> AsGraph::node_of(bgp::Asn asn) const {
  const auto it = by_asn_.find(asn);
  if (it == by_asn_.end()) return std::nullopt;
  return it->second;
}

std::optional<Relationship> AsGraph::relationship(NodeId a, NodeId b) const {
  const auto it = rel_.find(edge_key(a, b));
  if (it == rel_.end()) return std::nullopt;
  return it->second;
}

}  // namespace bgpcu::topology
