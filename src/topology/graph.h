// AS-level topology with Gao-Rexford business relationships: directed
// customer→provider edges and undirected peer-peer edges (§3.1). This is the
// substrate the collector simulation and the ground-truth scenarios run on;
// it stands in for the real Internet + CAIDA's relationship inferences.
#ifndef BGPCU_TOPOLOGY_GRAPH_H
#define BGPCU_TOPOLOGY_GRAPH_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/asn.h"

namespace bgpcu::topology {

/// Dense node handle (index into the graph's arrays).
using NodeId = std::uint32_t;

/// Relationship of neighbor B from A's point of view.
enum class Relationship : std::uint8_t {
  kProvider,  ///< B is A's provider (A pays B).
  kCustomer,  ///< B is A's customer.
  kPeer,      ///< Settlement-free peer.
};

/// AS-level graph. Nodes are added once per ASN; edges are typed. Adjacency
/// is exposed as per-kind neighbor lists, which is the access pattern of the
/// valley-free route computation.
class AsGraph {
 public:
  /// Adds an AS and returns its node id. Throws std::invalid_argument on a
  /// duplicate ASN.
  NodeId add_as(bgp::Asn asn);

  /// Adds a customer→provider edge.
  void add_c2p(NodeId customer, NodeId provider);

  /// Adds a peer-peer edge.
  void add_p2p(NodeId a, NodeId b);

  [[nodiscard]] std::size_t node_count() const noexcept { return asns_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  [[nodiscard]] bgp::Asn asn_of(NodeId node) const { return asns_.at(node); }
  [[nodiscard]] std::optional<NodeId> node_of(bgp::Asn asn) const;

  [[nodiscard]] const std::vector<NodeId>& providers(NodeId node) const {
    return providers_.at(node);
  }
  [[nodiscard]] const std::vector<NodeId>& customers(NodeId node) const {
    return customers_.at(node);
  }
  [[nodiscard]] const std::vector<NodeId>& peers(NodeId node) const { return peers_.at(node); }

  /// A leaf (stub) AS has no customers: it originates but never transits.
  [[nodiscard]] bool is_leaf(NodeId node) const { return customers_.at(node).empty(); }

  /// Relationship of `b` from `a`'s point of view, if adjacent.
  [[nodiscard]] std::optional<Relationship> relationship(NodeId a, NodeId b) const;

  /// Degree (number of neighbors of any kind).
  [[nodiscard]] std::size_t degree(NodeId node) const {
    return providers_.at(node).size() + customers_.at(node).size() + peers_.at(node).size();
  }

  /// All ASNs in node order.
  [[nodiscard]] const std::vector<bgp::Asn>& asns() const noexcept { return asns_; }

 private:
  [[nodiscard]] static std::uint64_t edge_key(NodeId a, NodeId b) noexcept {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  std::vector<bgp::Asn> asns_;
  std::unordered_map<bgp::Asn, NodeId> by_asn_;
  std::vector<std::vector<NodeId>> providers_;
  std::vector<std::vector<NodeId>> customers_;
  std::vector<std::vector<NodeId>> peers_;
  std::unordered_map<std::uint64_t, Relationship> rel_;  ///< (a,b) -> rel of b w.r.t. a
  std::size_t edges_ = 0;
};

}  // namespace bgpcu::topology

#endif  // BGPCU_TOPOLOGY_GRAPH_H
