// Small deterministic PRNG (SplitMix64) with the handful of draw helpers the
// generators need. Used instead of <random> distributions so that generated
// topologies and scenarios are reproducible byte-for-byte across standard
// library implementations.
#ifndef BGPCU_TOPOLOGY_RNG_H
#define BGPCU_TOPOLOGY_RNG_H

#include <cstdint>

namespace bgpcu::topology {

/// SplitMix64: tiny, fast, well-distributed; sufficient for workload
/// synthesis (not cryptographic).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw.
  bool chance(double p) noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Geometric-ish small count: number of successes of repeated `p` trials,
  /// capped at `max`. Used for multihoming degree draws.
  std::uint32_t geometric(double p, std::uint32_t max) noexcept {
    std::uint32_t n = 0;
    while (n < max && chance(p)) ++n;
    return n;
  }

  /// Derives an independent stream (for per-subsystem determinism).
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    return Rng(next() ^ (salt * 0xD1B54A32D192ED03ull));
  }

 private:
  std::uint64_t state_;
};

}  // namespace bgpcu::topology

#endif  // BGPCU_TOPOLOGY_RNG_H
