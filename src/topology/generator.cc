#include "topology/generator.h"

#include <algorithm>
#include <stdexcept>

#include "topology/rng.h"

namespace bgpcu::topology {

namespace {

// Picks `count` distinct elements of `pool` (count <= pool size), biased
// toward the front of the pool (earlier = larger AS) by squaring the draw.
std::vector<NodeId> pick_biased(const std::vector<NodeId>& pool, std::size_t count, Rng& rng) {
  std::vector<NodeId> out;
  out.reserve(count);
  std::size_t guard = 0;
  while (out.size() < count && guard++ < count * 64 + 16) {
    const double u = rng.uniform();
    const auto idx = static_cast<std::size_t>(u * u * static_cast<double>(pool.size()));
    const NodeId candidate = pool[std::min(idx, pool.size() - 1)];
    if (std::find(out.begin(), out.end(), candidate) == out.end()) out.push_back(candidate);
  }
  return out;
}

}  // namespace

GeneratedTopology generate(const GeneratorParams& params) {
  if (params.num_ases < params.num_tier1 + 8) {
    throw std::invalid_argument("topology too small for requested tier-1 clique");
  }
  GeneratedTopology out;
  Rng rng(params.seed);

  const std::uint32_t n = params.num_ases;
  const auto n_t1 = params.num_tier1;
  const auto n_large = static_cast<std::uint32_t>(static_cast<double>(n) * params.large_transit_share);
  const auto n_small = static_cast<std::uint32_t>(static_cast<double>(n) * params.small_transit_share);

  // --- ASN assignment -----------------------------------------------------
  // 16-bit ASNs are drawn ascending from 3; 32-bit ASNs from 131072 (the
  // first allocatable 4-byte value past the 16-bit space and documentation
  // range). Tier-1/large-transit networks are old, established networks and
  // always get 16-bit ASNs; the 32-bit share is carried by the rest, like
  // the real Internet's allocation history.
  bgp::Asn next16 = 3;
  bgp::Asn next32 = 131072;
  std::vector<Tier> tiers;
  tiers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (i < n_t1) {
      tiers.push_back(Tier::kTier1);
    } else if (i < n_t1 + n_large) {
      tiers.push_back(Tier::kLargeTransit);
    } else if (i < n_t1 + n_large + n_small) {
      tiers.push_back(Tier::kSmallTransit);
    } else {
      tiers.push_back(Tier::kLeaf);
    }
  }

  // Number of non-transit-core ASes that must take 32-bit ASNs to meet the
  // requested fraction.
  const auto want32 = static_cast<std::uint32_t>(static_cast<double>(n) * params.frac_32bit_asn);
  std::uint32_t assigned32 = 0;

  for (std::uint32_t i = 0; i < n; ++i) {
    const bool core = tiers[i] == Tier::kTier1 || tiers[i] == Tier::kLargeTransit;
    bgp::Asn asn;
    const std::uint32_t remaining = n - i;
    const std::uint32_t need32 = want32 > assigned32 ? want32 - assigned32 : 0;
    const bool force32 = !core && need32 >= remaining;
    const bool take32 = force32 || (!core && assigned32 < want32 &&
                                    rng.chance(static_cast<double>(need32) /
                                               static_cast<double>(remaining)));
    if (take32) {
      asn = next32;
      next32 += 1 + static_cast<bgp::Asn>(rng.below(3));  // leave unallocated gaps
      ++assigned32;
    } else {
      asn = next16;
      next16 += 1 + static_cast<bgp::Asn>(rng.below(2));
      if (next16 >= 64000) {  // stay clear of private space
        asn = next32;
        next32 += 1 + static_cast<bgp::Asn>(rng.below(3));
      }
    }
    const NodeId node = out.graph.add_as(asn);
    (void)node;
    out.registry.allocate_asn(asn);
  }
  out.tier = std::move(tiers);

  // --- Address blocks ------------------------------------------------------
  // Sequential carve-out of the unicast space; transits get shorter (larger)
  // blocks. Gaps between blocks stay unallocated for the sanitizer to catch.
  std::uint32_t next_block = 0x0B000000;  // start at 11.0.0.0
  std::uint32_t next_v6_site = 1;
  out.prefixes.resize(n);
  for (NodeId node = 0; node < n; ++node) {
    const Tier tier = out.tier[node];
    const std::uint8_t len = tier == Tier::kTier1          ? 14
                             : tier == Tier::kLargeTransit ? 16
                             : tier == Tier::kSmallTransit ? 19
                                                           : 22;
    const std::uint32_t span = 1u << (32 - len);
    const auto block = bgp::Prefix::ipv4(next_block, len);
    out.registry.allocate_prefix(block);
    out.prefixes[node].push_back(block);
    // Skip the block plus an unallocated guard gap.
    next_block += span + (rng.chance(0.25) ? span : 0);

    // Transit networks are dual-stacked: each also originates an IPv6 /32
    // (carved sequentially from a 2a00::/12-style provider space).
    if (tier != Tier::kLeaf) {
      std::array<std::uint8_t, 16> v6{};
      v6[0] = 0x2A;
      v6[1] = static_cast<std::uint8_t>(next_v6_site >> 16);
      v6[2] = static_cast<std::uint8_t>(next_v6_site >> 8);
      v6[3] = static_cast<std::uint8_t>(next_v6_site);
      ++next_v6_site;
      const auto v6_block = bgp::Prefix::ipv6(v6, 32);
      out.registry.allocate_prefix(v6_block);
      out.prefixes[node].push_back(v6_block);
    }
  }

  // --- Tier-1 clique --------------------------------------------------------
  out.tier1.reserve(n_t1);
  for (NodeId a = 0; a < n_t1; ++a) {
    out.tier1.push_back(a);
    for (NodeId b = a + 1; b < n_t1; ++b) out.graph.add_p2p(a, b);
  }

  // Pools for provider selection, front-biased toward bigger networks.
  std::vector<NodeId> t1_pool = out.tier1;
  std::vector<NodeId> large_pool, small_pool;
  for (NodeId node = n_t1; node < n; ++node) {
    if (out.tier[node] == Tier::kLargeTransit) large_pool.push_back(node);
    if (out.tier[node] == Tier::kSmallTransit) small_pool.push_back(node);
  }

  // --- Provider edges -------------------------------------------------------
  for (NodeId node = n_t1; node < n; ++node) {
    switch (out.tier[node]) {
      case Tier::kLargeTransit: {
        const auto count = 1 + rng.geometric(0.55, 2);
        for (const NodeId p : pick_biased(t1_pool, count, rng)) out.graph.add_c2p(node, p);
        break;
      }
      case Tier::kSmallTransit: {
        const auto count = 1 + rng.geometric(0.5, 2);
        // Mostly large transits, sometimes direct tier-1.
        for (std::uint32_t k = 0; k < count; ++k) {
          const auto& pool = (rng.chance(0.2) || large_pool.empty()) ? t1_pool : large_pool;
          const auto picks = pick_biased(pool, 1, rng);
          if (!picks.empty()) out.graph.add_c2p(node, picks[0]);
        }
        break;
      }
      case Tier::kLeaf: {
        const auto count = 1 + rng.geometric(0.35, 2);
        for (std::uint32_t k = 0; k < count; ++k) {
          const double u = rng.uniform();
          const auto& pool = (u < 0.70 && !small_pool.empty())   ? small_pool
                             : (u < 0.94 && !large_pool.empty()) ? large_pool
                                                                 : t1_pool;
          const auto picks = pick_biased(pool, 1, rng);
          if (!picks.empty()) out.graph.add_c2p(node, picks[0]);
        }
        break;
      }
      case Tier::kTier1:
        break;
    }
  }

  // --- Peering ---------------------------------------------------------------
  // Large transits peer densely with each other (settlement-free backbone).
  for (std::size_t i = 0; i < large_pool.size(); ++i) {
    for (std::size_t j = i + 1; j < large_pool.size(); ++j) {
      if (rng.chance(0.18)) out.graph.add_p2p(large_pool[i], large_pool[j]);
    }
  }
  // IXP meshes: members sampled from small transits plus some leaves.
  for (std::uint32_t ixp = 0; ixp < params.ixp_count; ++ixp) {
    std::vector<NodeId> members;
    const std::size_t member_count = 8 + rng.below(24);
    for (std::size_t k = 0; k < member_count; ++k) {
      if (!small_pool.empty() && rng.chance(0.75)) {
        members.push_back(small_pool[rng.below(small_pool.size())]);
      } else {
        members.push_back(static_cast<NodeId>(n_t1 + rng.below(n - n_t1)));
      }
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (rng.chance(params.ixp_mesh_prob)) out.graph.add_p2p(members[i], members[j]);
      }
    }
  }

  return out;
}

}  // namespace bgpcu::topology
