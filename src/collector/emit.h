// MRT emission: turns the synthetic Internet's routes + community outputs
// into the byte-exact MRT dumps a real collector would archive — TABLE_DUMP_V2
// RIB snapshots and BGP4MP_MESSAGE_AS4 update streams — including the messy
// parts the paper's sanitation handles: route-server sessions whose peer ASN
// is absent from the path, origin-side path prepending, aggregation AS_SETs,
// and announcements referencing unallocated resources.
#ifndef BGPCU_COLLECTOR_EMIT_H
#define BGPCU_COLLECTOR_EMIT_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "collector/spec.h"
#include "core/types.h"
#include "sim/substrate.h"
#include "topology/generator.h"

namespace bgpcu::collector {

/// Emission realism knobs.
struct EmissionConfig {
  std::uint32_t base_timestamp = 1621382400;  ///< 2021-05-19 00:00:00 UTC.
  std::uint32_t day_seconds = 86400;
  /// Share of routes re-announced in updates during the day (RIB-carrying
  /// projects see every route regardless; update-only projects see only
  /// this churn slice of their — already partial — feeds).
  double update_share = 0.35;
  double update_dup_prob = 0.45;   ///< Chance of an extra duplicate update.
  double withdraw_prob = 0.03;     ///< Updates preceded by a withdrawal.
  double prepend_prob = 0.06;      ///< Origin-side AS-path prepending.
  double as_set_prob = 0.008;      ///< Aggregated routes carrying an AS_SET.
  double bogus_asn_prob = 0.004;   ///< Unallocated ASN spliced into the path.
  double bogus_prefix_prob = 0.004;///< Unallocated prefix announced.
  std::uint64_t seed = 1;
};

/// The MRT image of one collector for one day.
struct EmittedCollector {
  std::string name;
  std::vector<std::uint8_t> rib_dump;     ///< Empty for update-only projects.
  std::vector<std::uint8_t> update_dump;
};

/// Maps a path (ASN sequence, peer first) to the community set output(A1)
/// computed by the output model, so that every collector observing the same
/// path reports the same communities.
class PathOutputs {
 public:
  /// Indexes `dataset` (one tuple per path, as produced by
  /// sim::generate_dataset before any churn).
  explicit PathOutputs(const core::Dataset& dataset);

  /// Returns the community set for `path_asns`, or an empty set if unknown.
  [[nodiscard]] const bgp::CommunitySet& lookup(const std::vector<bgp::Asn>& path_asns) const;

 private:
  struct VecHash {
    std::size_t operator()(const std::vector<bgp::Asn>& v) const noexcept {
      std::size_t h = 14695981039346656037ull;
      for (const auto a : v) h = (h ^ a) * 1099511628211ull;
      return h;
    }
  };
  std::unordered_map<std::vector<bgp::Asn>, bgp::CommunitySet, VecHash> by_path_;
  bgp::CommunitySet empty_;
};

/// Emits a full project (all collectors). Paths come from `substrate`
/// (peer-keyed best routes), communities from `outputs`, prefixes from the
/// topology's per-origin allocations.
[[nodiscard]] std::vector<EmittedCollector> emit_project(
    const topology::GeneratedTopology& topo, const sim::PathSubstrate& substrate,
    const PathOutputs& outputs, const ProjectSpec& project, const EmissionConfig& config);

}  // namespace bgpcu::collector

#endif  // BGPCU_COLLECTOR_EMIT_H
