#include "collector/emit.h"

#include <algorithm>

#include "bgp/message.h"
#include "mrt/writer.h"
#include "topology/rng.h"

namespace bgpcu::collector {

namespace {

using topology::NodeId;

// Splits a merged community set into the two wire attributes.
void split_communities(const bgp::CommunitySet& all, bgp::PathAttributes& attrs) {
  for (const auto& c : all) {
    if (c.kind == bgp::CommunityKind::kRegular) {
      attrs.communities.push_back(c);
    } else {
      attrs.large_communities.push_back(c);
    }
  }
}

// Applies origin-side realism to a clean ASN path: prepending, aggregation
// AS_SETs, and (rarely) a bogus unallocated ASN. Returns the wire AsPath.
bgp::AsPath messy_path(const std::vector<bgp::Asn>& asns, const EmissionConfig& config,
                       const registry::AllocationRegistry& reg, topology::Rng& rng) {
  std::vector<bgp::Asn> seq = asns;
  if (!seq.empty() && rng.chance(config.prepend_prob)) {
    const auto copies = 1 + rng.below(2);
    for (std::uint64_t i = 0; i < copies; ++i) seq.push_back(seq.back());
  }
  if (rng.chance(config.bogus_asn_prob)) {
    // Splice in an unallocated ASN (the generator leaves gaps above 4.1e9
    // which are public-format but never delegated).
    bgp::Asn bogus = 4100000000u + static_cast<bgp::Asn>(rng.below(1000000));
    while (reg.is_public_allocated(bogus)) ++bogus;
    seq.insert(seq.begin() + static_cast<std::ptrdiff_t>(rng.below(seq.size() + 1)), bogus);
  }
  bgp::AsPath path = bgp::AsPath::from_sequence(std::move(seq));
  if (rng.chance(config.as_set_prob)) {
    // Aggregated route: an AS_SET of sibling origins trails the sequence.
    auto segments = path.segments();
    bgp::AsPathSegment set;
    set.type = bgp::SegmentType::kAsSet;
    set.asns = {asns.back(), asns.back() == 3 ? 4 : asns.back() - 1};
    segments.push_back(std::move(set));
    path = bgp::AsPath(std::move(segments));
  }
  return path;
}

bgp::PathAttributes make_attributes(const bgp::AsPath& path, const bgp::CommunitySet& comms,
                                    std::uint32_t next_hop) {
  bgp::PathAttributes attrs;
  attrs.origin = bgp::Origin::kIgp;
  attrs.as_path = path;
  attrs.next_hop = next_hop;
  split_communities(comms, attrs);
  return attrs;
}

std::uint32_t peer_ip_of(NodeId node) { return 0xC0A80000u + node; }

}  // namespace

PathOutputs::PathOutputs(const core::Dataset& dataset) {
  by_path_.reserve(dataset.size());
  for (const auto& tuple : dataset) {
    by_path_.emplace(tuple.path, tuple.comms);
  }
}

const bgp::CommunitySet& PathOutputs::lookup(const std::vector<bgp::Asn>& path_asns) const {
  const auto it = by_path_.find(path_asns);
  return it == by_path_.end() ? empty_ : it->second;
}

std::vector<EmittedCollector> emit_project(const topology::GeneratedTopology& topo,
                                           const sim::PathSubstrate& substrate,
                                           const PathOutputs& outputs, const ProjectSpec& project,
                                           const EmissionConfig& config) {
  topology::Rng rng(config.seed ^ std::hash<std::string>{}(project.name));

  // Group substrate paths by their collector peer.
  std::unordered_map<NodeId, std::vector<const std::vector<NodeId>*>> by_peer;
  for (const auto& path : substrate.paths) {
    by_peer[path.front()].push_back(&path);
  }

  std::vector<EmittedCollector> out;
  out.reserve(project.collectors.size());

  for (const auto& coll : project.collectors) {
    EmittedCollector emitted;
    emitted.name = coll.name;

    mrt::MrtWriter rib_writer;
    mrt::MrtWriter upd_writer;

    // PEER_INDEX_TABLE: one entry per session; route-server sessions appear
    // under the RS's ASN (the member's ASN shows only in the path).
    mrt::PeerIndexTable table;
    table.collector_bgp_id = coll.bgp_id;
    table.view_name = coll.name;
    for (const auto& session : coll.sessions) {
      const bgp::Asn session_asn =
          session.route_server ? session.rs_asn : topo.graph.asn_of(session.peer);
      table.peers.push_back(mrt::PeerEntry::ipv4_peer(
          0x0A000000u + session.peer, peer_ip_of(session.peer), session_asn));
    }
    if (project.emit_ribs) rib_writer.write_peer_index(config.base_timestamp, table);

    std::uint32_t sequence = 0;
    for (std::size_t s = 0; s < coll.sessions.size(); ++s) {
      const auto& session = coll.sessions[s];
      const auto it = by_peer.find(session.peer);
      if (it == by_peer.end()) continue;
      const bgp::Asn session_asn =
          session.route_server ? session.rs_asn : topo.graph.asn_of(session.peer);

      for (const auto* path_nodes : it->second) {
        // Partial feeds: IXP-style peers export only a slice of their table.
        if (project.feed_fraction < 1.0 && !rng.chance(project.feed_fraction)) continue;
        // Resolve the path to ASNs and its community output.
        std::vector<bgp::Asn> asns;
        asns.reserve(path_nodes->size());
        for (const NodeId node : *path_nodes) asns.push_back(topo.graph.asn_of(node));
        const auto& comms = outputs.lookup(asns);
        const NodeId origin = path_nodes->back();

        const auto wire_path = messy_path(asns, config, topo.registry, rng);
        const auto attrs = make_attributes(wire_path, comms, peer_ip_of(session.peer));

        // Announced prefixes: the origin's allocated blocks, occasionally an
        // unallocated one (exercises the §4.1 filter).
        std::vector<bgp::Prefix> prefixes = topo.prefixes[origin];
        if (rng.chance(config.bogus_prefix_prob)) {
          prefixes.push_back(
              bgp::Prefix::ipv4(0xF0000000u + (static_cast<std::uint32_t>(rng.below(0xFFFF)) << 8),
                                24));
        }

        if (project.emit_ribs) {
          for (const auto& prefix : prefixes) {
            mrt::RibRecord rib;
            rib.sequence = sequence++;
            rib.prefix = prefix;
            mrt::RibEntry entry;
            entry.peer_index = static_cast<std::uint16_t>(s);
            entry.originated_time =
                config.base_timestamp - static_cast<std::uint32_t>(rng.below(7 * 86400));
            entry.attributes = attrs;
            rib.entries.push_back(std::move(entry));
            rib_writer.write_rib(config.base_timestamp, rib);
          }
        }

        // Update stream: a sampled share of routes re-announces during the
        // day; duplicates and occasional withdraw+re-announce model churn.
        if (rng.chance(config.update_share)) {
          const std::uint32_t count = 1 + (rng.chance(config.update_dup_prob) ? 1 : 0);
          for (std::uint32_t rep = 0; rep < count; ++rep) {
            const std::uint32_t when =
                config.base_timestamp + static_cast<std::uint32_t>(rng.below(config.day_seconds));
            bgp::UpdateMessage update;
            if (rng.chance(config.withdraw_prob) && !prefixes.empty()) {
              bgp::UpdateMessage withdraw;
              withdraw.withdrawn.push_back(prefixes.front());
              upd_writer.write_message(
                  when, mrt::Bgp4mpMessage::ipv4_session(session_asn, 12654,
                                                         peer_ip_of(session.peer), 0xC0A80001u,
                                                         withdraw.encode(true)));
            }
            // IPv4 prefixes travel as classic NLRI; IPv6 via MP_REACH_NLRI.
            update.attributes = attrs;
            for (const auto& prefix : prefixes) {
              if (prefix.afi() == bgp::Afi::kIpv4) {
                update.nlri.push_back(prefix);
              } else {
                if (!update.attributes.mp_reach) {
                  bgp::MpReach mp;
                  mp.afi = bgp::Afi::kIpv6;
                  mp.next_hop.assign(16, 0);
                  mp.next_hop[0] = 0x2A;
                  mp.next_hop[15] = static_cast<std::uint8_t>(session.peer);
                  update.attributes.mp_reach = std::move(mp);
                }
                update.attributes.mp_reach->nlri.push_back(prefix);
              }
            }
            upd_writer.write_message(
                when + 1, mrt::Bgp4mpMessage::ipv4_session(session_asn, 12654,
                                                           peer_ip_of(session.peer), 0xC0A80001u,
                                                           update.encode(true)));
          }
        }
      }
    }

    emitted.rib_dump = rib_writer.take();
    emitted.update_dump = upd_writer.take();
    out.push_back(std::move(emitted));
  }
  return out;
}

}  // namespace bgpcu::collector
