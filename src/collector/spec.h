// Route-collector project specifications. Models the four projects the paper
// ingests — RIPE RIS, RouteViews, Isolario and PCH — scaled to the synthetic
// Internet: each project runs several collectors, each collector has a set
// of peer sessions (some through IXP route servers), and PCH contributes
// updates only because its RIBs lack the community attribute (§4).
#ifndef BGPCU_COLLECTOR_SPEC_H
#define BGPCU_COLLECTOR_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "topology/generator.h"

namespace bgpcu::collector {

/// One BGP session a collector maintains.
struct PeerSession {
  topology::NodeId peer = 0;  ///< The AS whose routes this session exports.
  bool route_server = false;  ///< MRT peer ASN is the RS's, path starts at member.
  bgp::Asn rs_asn = 0;        ///< Route-server ASN when route_server is true.
};

/// One collector box.
struct CollectorSpec {
  std::string name;
  std::uint32_t bgp_id = 0;
  std::vector<PeerSession> sessions;
};

/// One collector project.
struct ProjectSpec {
  std::string name;
  std::vector<CollectorSpec> collectors;
  bool emit_ribs = true;  ///< PCH: updates only (its RIBs carry no communities).
  /// Fraction of each peer's routes visible to this project. PCH peers sit
  /// at IXPs and export partial feeds (own + customer routes), which is why
  /// PCH contributes 1M unique tuples against RIPE's 46M (Table 1) and
  /// yields the fewest inferences despite having the most peers.
  double feed_fraction = 1.0;

  /// Distinct peer ASes across all collectors of the project.
  [[nodiscard]] std::vector<topology::NodeId> distinct_peers() const;
};

/// Scaling knobs for the default four-project layout.
struct ProjectLayoutParams {
  std::size_t total_peers = 150;  ///< Distinct peer ASes across all projects.
  double rs_session_share = 0.10; ///< Sessions that run through an IXP RS.
  std::uint64_t seed = 1;
};

/// Builds RIPE / RouteViews / Isolario / PCH specs with the paper's relative
/// peer-count proportions (525 : 291 : 108 : 1304) over a shared peer pool;
/// a peer AS can appear at multiple projects, like in the real feeds.
/// Mutates `topo.registry` to allocate the route servers' ASNs (they are
/// real, delegated ASNs and must survive the §4.1 allocation filter).
[[nodiscard]] std::vector<ProjectSpec> default_projects(topology::GeneratedTopology& topo,
                                                        const ProjectLayoutParams& params);

/// Union of all projects' distinct peers (for substrate construction).
[[nodiscard]] std::vector<topology::NodeId> all_peers(const std::vector<ProjectSpec>& projects);

}  // namespace bgpcu::collector

#endif  // BGPCU_COLLECTOR_SPEC_H
