// The §4.1 sanitation pipeline, applied to every raw route entry before
// inference, in the paper's order:
//   1. drop entries referencing unallocated prefixes or ASNs,
//   2. remove AS_SET segments from AS paths (aggregated routes),
//   3. prepend the MRT Peer AS Number when A1 differs from it (route-server
//      sessions: the RS can modify communities yet hides from the path),
//   4. collapse path prepending (identical ASNs in succession).
#ifndef BGPCU_COLLECTOR_SANITIZE_H
#define BGPCU_COLLECTOR_SANITIZE_H

#include <cstdint>
#include <optional>

#include "bgp/path_attribute.h"
#include "bgp/prefix.h"
#include "core/types.h"
#include "registry/registry.h"

namespace bgpcu::collector {

/// One raw route observation as decoded from MRT, before sanitation.
struct RawEntry {
  bgp::Prefix prefix;
  bgp::Asn session_peer_asn = 0;  ///< MRT peer ASN (the RS's on RS sessions).
  bgp::AsPath as_path;
  bgp::CommunitySet comms;  ///< Merged regular + large communities.
  bool from_rib = false;
};

/// Per-step drop/repair counters.
struct SanitationStats {
  std::uint64_t input = 0;
  std::uint64_t dropped_unallocated_prefix = 0;
  std::uint64_t dropped_unallocated_asn = 0;
  std::uint64_t as_sets_removed = 0;   ///< Entries whose path had AS_SETs removed.
  std::uint64_t peer_prepended = 0;    ///< Entries with A1 != MRT peer ASN.
  std::uint64_t prepending_collapsed = 0;
  std::uint64_t dropped_empty_path = 0;
  std::uint64_t output = 0;

  SanitationStats& operator+=(const SanitationStats& other) noexcept;
};

/// Stateless per-entry sanitizer.
class Sanitizer {
 public:
  explicit Sanitizer(const registry::AllocationRegistry& reg) : registry_(&reg) {}

  /// Applies the full pipeline; returns the cleaned tuple or nullopt when
  /// the entry is dropped. Thread-compatible (stats are per-instance).
  std::optional<core::PathCommTuple> process(const RawEntry& entry);

  [[nodiscard]] const SanitationStats& stats() const noexcept { return stats_; }

 private:
  const registry::AllocationRegistry* registry_;
  SanitationStats stats_;
};

}  // namespace bgpcu::collector

#endif  // BGPCU_COLLECTOR_SANITIZE_H
