#include "collector/sanitize.h"

namespace bgpcu::collector {

SanitationStats& SanitationStats::operator+=(const SanitationStats& other) noexcept {
  input += other.input;
  dropped_unallocated_prefix += other.dropped_unallocated_prefix;
  dropped_unallocated_asn += other.dropped_unallocated_asn;
  as_sets_removed += other.as_sets_removed;
  peer_prepended += other.peer_prepended;
  prepending_collapsed += other.prepending_collapsed;
  dropped_empty_path += other.dropped_empty_path;
  output += other.output;
  return *this;
}

std::optional<core::PathCommTuple> Sanitizer::process(const RawEntry& entry) {
  ++stats_.input;

  // Step 1 — allocation filter.
  if (!registry_->prefix_allocated(entry.prefix)) {
    ++stats_.dropped_unallocated_prefix;
    return std::nullopt;
  }
  for (const auto& segment : entry.as_path.segments()) {
    for (const bgp::Asn asn : segment.asns) {
      if (!registry_->is_public_allocated(asn)) {
        ++stats_.dropped_unallocated_asn;
        return std::nullopt;
      }
    }
  }

  // Step 2 — AS_SET removal (keep the sequence segments).
  if (entry.as_path.has_as_set()) ++stats_.as_sets_removed;
  std::vector<bgp::Asn> path = entry.as_path.sequence_asns();
  if (path.empty()) {
    ++stats_.dropped_empty_path;
    return std::nullopt;
  }

  // Step 3 — peer-ASN prepend (route-server sessions).
  if (path.front() != entry.session_peer_asn) {
    path.insert(path.begin(), entry.session_peer_asn);
    ++stats_.peer_prepended;
  }

  // Step 4 — prepending collapse.
  bool collapsed = false;
  std::vector<bgp::Asn> clean;
  clean.reserve(path.size());
  for (const bgp::Asn asn : path) {
    if (!clean.empty() && clean.back() == asn) {
      collapsed = true;
      continue;
    }
    clean.push_back(asn);
  }
  if (collapsed) ++stats_.prepending_collapsed;

  core::PathCommTuple tuple;
  tuple.path = std::move(clean);
  tuple.comms = entry.comms;
  bgp::normalize(tuple.comms);
  ++stats_.output;
  return tuple;
}

}  // namespace bgpcu::collector
