#include "collector/extract.h"

#include <algorithm>

#include "bgp/message.h"
#include "mrt/bgp4mp.h"
#include "mrt/reader.h"
#include "mrt/table_dump_v2.h"

namespace bgpcu::collector {

ExtractionStats& ExtractionStats::operator+=(const ExtractionStats& other) noexcept {
  entries_total += other.entries_total;
  rib_entries += other.rib_entries;
  update_messages += other.update_messages;
  withdrawals += other.withdrawals;
  decode_errors += other.decode_errors;
  communities_total += other.communities_total;
  large_communities_total += other.large_communities_total;
  return *this;
}

void DatasetBundle::merge(DatasetBundle&& other) {
  dataset.reserve(dataset.size() + other.dataset.size());
  dataset.insert(dataset.end(), std::make_move_iterator(other.dataset.begin()),
                 std::make_move_iterator(other.dataset.end()));
  core::deduplicate(dataset);
  extraction += other.extraction;
  sanitation += other.sanitation;
  raw_asns.merge(other.raw_asns);
  unique_comms.merge(other.unique_comms);
  session_peers.merge(other.session_peers);
}

void DatasetBuilder::ingest(const RawEntry& entry) {
  ++bundle_.extraction.entries_total;
  if (entry.from_rib) ++bundle_.extraction.rib_entries;
  bundle_.session_peers.insert(entry.session_peer_asn);
  for (const auto& segment : entry.as_path.segments()) {
    for (const bgp::Asn asn : segment.asns) bundle_.raw_asns.insert(asn);
  }
  for (const auto& c : entry.comms) {
    ++bundle_.extraction.communities_total;
    if (c.kind == bgp::CommunityKind::kLarge) ++bundle_.extraction.large_communities_total;
    bundle_.unique_comms.insert(c);
  }
  if (auto tuple = sanitizer_.process(entry)) {
    bundle_.dataset.push_back(std::move(*tuple));
  }
}

void DatasetBuilder::add_dump(std::span<const std::uint8_t> dump) {
  mrt::MrtReader reader(dump);
  std::optional<mrt::PeerIndexTable> peer_table;

  while (auto rec = reader.next()) {
    try {
      switch (rec->mrt_type()) {
        case mrt::MrtType::kTableDumpV2: {
          const auto subtype = static_cast<mrt::TableDumpV2Subtype>(rec->subtype);
          if (subtype == mrt::TableDumpV2Subtype::kPeerIndexTable) {
            peer_table = mrt::PeerIndexTable::decode(rec->body);
            break;
          }
          auto rib = mrt::RibRecord::decode(rec->body, subtype);
          for (auto& entry : rib.entries) {
            if (!peer_table || entry.peer_index >= peer_table->peers.size()) {
              ++bundle_.extraction.decode_errors;
              continue;
            }
            RawEntry raw;
            raw.prefix = rib.prefix;
            raw.session_peer_asn = peer_table->peers[entry.peer_index].asn;
            // Each RIB entry is consumed exactly once: steal its path
            // instead of deep-copying the ASN vectors.
            if (entry.attributes.as_path) raw.as_path = std::move(*entry.attributes.as_path);
            raw.comms = entry.attributes.all_communities();
            raw.from_rib = true;
            ingest(raw);
          }
          break;
        }
        case mrt::MrtType::kBgp4mp:
        case mrt::MrtType::kBgp4mpEt: {
          const auto subtype = static_cast<mrt::Bgp4mpSubtype>(rec->subtype);
          if (subtype != mrt::Bgp4mpSubtype::kMessage &&
              subtype != mrt::Bgp4mpSubtype::kMessageAs4) {
            break;  // state changes carry no routes
          }
          const auto msg = mrt::Bgp4mpMessage::decode(rec->body, subtype);
          const auto header = bgp::peek_header(msg.bgp_message);
          if (header.type != bgp::MessageType::kUpdate) break;
          ++bundle_.extraction.update_messages;
          auto update = bgp::UpdateMessage::decode(msg.bgp_message, msg.as4);
          bundle_.extraction.withdrawals += update.withdrawn.size();
          if (update.attributes.mp_unreach) {
            bundle_.extraction.withdrawals += update.attributes.mp_unreach->withdrawn.size();
          }
          // All announced prefixes share one attribute block: build the
          // entry once (moving the path and merged communities in) and only
          // swap the prefix per NLRI, instead of re-copying path +
          // communities for every prefix.
          RawEntry raw;
          raw.session_peer_asn = msg.peer_asn;
          raw.comms = update.attributes.all_communities();
          if (update.attributes.as_path) raw.as_path = std::move(*update.attributes.as_path);
          raw.from_rib = false;
          const auto ingest_prefix = [&](const bgp::Prefix& prefix) {
            raw.prefix = prefix;
            ingest(raw);
          };
          for (const auto& prefix : update.nlri) ingest_prefix(prefix);
          if (update.attributes.mp_reach) {
            for (const auto& prefix : update.attributes.mp_reach->nlri) ingest_prefix(prefix);
          }
          break;
        }
        default:
          break;
      }
    } catch (const bgp::WireError&) {
      ++bundle_.extraction.decode_errors;
    }
  }
}

DatasetBundle DatasetBuilder::finish() {
  bundle_.sanitation = sanitizer_.stats();
  core::deduplicate(bundle_.dataset);
  return std::move(bundle_);
}

DatasetStats compute_stats(const DatasetBundle& bundle, const registry::AllocationRegistry& reg) {
  DatasetStats s;
  s.entries_total = bundle.extraction.entries_total;
  s.rib_entries = bundle.extraction.rib_entries;
  s.unique_tuples = bundle.dataset.size();
  s.asns_raw = bundle.raw_asns.size();
  s.communities_total = bundle.extraction.communities_total;
  s.large_communities_total = bundle.extraction.large_communities_total;
  s.collector_peers = bundle.session_peers.size();

  // Post-cleaning AS statistics.
  const auto asns = core::distinct_asns(bundle.dataset);
  s.asns_clean = asns.size();
  s.asns_32bit = static_cast<std::uint64_t>(
      std::count_if(asns.begin(), asns.end(), [](bgp::Asn a) { return bgp::is_32bit_asn(a); }));

  std::unordered_set<bgp::Asn> transit;
  std::unordered_set<bgp::Asn> uppers_on_path;  // "w/o stray" survivors
  for (const auto& tuple : bundle.dataset) {
    for (std::size_t i = 0; i + 1 < tuple.path.size(); ++i) transit.insert(tuple.path[i]);
    for (const auto& c : tuple.comms) {
      if (std::find(tuple.path.begin(), tuple.path.end(), c.upper) != tuple.path.end()) {
        uppers_on_path.insert(c.upper);
      }
    }
  }
  std::uint64_t leafs = 0;
  for (const auto asn : asns) {
    if (!transit.contains(asn)) ++leafs;
  }
  s.leaf_ases = leafs;

  // Unique community / upper-field statistics over the raw value universe.
  std::unordered_set<bgp::Asn> uppers_regular, uppers_large, uppers_all, uppers_public;
  for (const auto& c : bundle.unique_comms) {
    if (c.kind == bgp::CommunityKind::kLarge) {
      ++s.unique_large_communities;
      uppers_large.insert(c.upper);
    } else {
      uppers_regular.insert(c.upper);
    }
    ++s.unique_communities;
    uppers_all.insert(c.upper);
    if (reg.is_public_allocated(c.upper)) uppers_public.insert(c.upper);
  }
  s.uniq_upper_regular = uppers_regular.size();
  s.uniq_upper_large = uppers_large.size();
  s.uniq_upper_both = uppers_all.size();
  s.uniq_upper_wo_private = uppers_public.size();
  s.uniq_upper_wo_stray = static_cast<std::uint64_t>(
      std::count_if(uppers_public.begin(), uppers_public.end(),
                    [&uppers_on_path](bgp::Asn a) { return uppers_on_path.contains(a); }));
  return s;
}

}  // namespace bgpcu::collector
