// MRT extraction: walks dump buffers, decodes RIB and update records into
// raw route entries, pipes them through the sanitizer, and accumulates the
// dataset + the statistics behind the paper's Table 1.
#ifndef BGPCU_COLLECTOR_EXTRACT_H
#define BGPCU_COLLECTOR_EXTRACT_H

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "collector/sanitize.h"
#include "core/types.h"
#include "registry/registry.h"

namespace bgpcu::collector {

/// Raw-input counters (pre-sanitation).
struct ExtractionStats {
  std::uint64_t entries_total = 0;  ///< RIB entries + announced NLRI.
  std::uint64_t rib_entries = 0;
  std::uint64_t update_messages = 0;
  std::uint64_t withdrawals = 0;
  std::uint64_t decode_errors = 0;  ///< Records skipped due to body corruption.
  std::uint64_t communities_total = 0;       ///< Community occurrences.
  std::uint64_t large_communities_total = 0;

  ExtractionStats& operator+=(const ExtractionStats& other) noexcept;
};

/// A dataset with everything needed to print a Table-1 column.
struct DatasetBundle {
  core::Dataset dataset;  ///< Sanitized, deduplicated tuples.
  ExtractionStats extraction;
  SanitationStats sanitation;
  std::unordered_set<bgp::Asn> raw_asns;       ///< Distinct ASNs pre-cleaning.
  std::unordered_set<bgp::CommunityValue> unique_comms;
  std::unordered_set<bgp::Asn> session_peers;  ///< Distinct MRT peer ASNs.

  /// Merges another bundle (for the RIPE+RouteViews+Isolario aggregate).
  void merge(DatasetBundle&& other);
};

/// Streaming builder: feed MRT dump buffers, then `finish()`.
class DatasetBuilder {
 public:
  explicit DatasetBuilder(const registry::AllocationRegistry& reg) : sanitizer_(reg) {}

  /// Extracts one dump (RIB or update file image). Decode errors are counted
  /// per record and do not abort the dump.
  void add_dump(std::span<const std::uint8_t> dump);

  /// Deduplicates and returns the bundle; the builder is spent afterwards.
  [[nodiscard]] DatasetBundle finish();

 private:
  void ingest(const RawEntry& entry);

  Sanitizer sanitizer_;
  DatasetBundle bundle_;
};

/// The derived Table-1 row values for one dataset.
struct DatasetStats {
  std::uint64_t entries_total = 0;
  std::uint64_t rib_entries = 0;
  std::uint64_t unique_tuples = 0;
  std::uint64_t asns_raw = 0;
  std::uint64_t asns_clean = 0;
  std::uint64_t leaf_ases = 0;
  std::uint64_t asns_32bit = 0;
  std::uint64_t collector_peers = 0;
  std::uint64_t communities_total = 0;
  std::uint64_t large_communities_total = 0;
  std::uint64_t unique_communities = 0;
  std::uint64_t unique_large_communities = 0;
  std::uint64_t uniq_upper_regular = 0;
  std::uint64_t uniq_upper_large = 0;
  std::uint64_t uniq_upper_both = 0;
  std::uint64_t uniq_upper_wo_private = 0;
  std::uint64_t uniq_upper_wo_stray = 0;
};

/// Computes the Table-1 values from a bundle (unique uppers, leaf/32-bit AS
/// counts, stray/private reductions per §3.2/§4.2).
[[nodiscard]] DatasetStats compute_stats(const DatasetBundle& bundle,
                                         const registry::AllocationRegistry& reg);

}  // namespace bgpcu::collector

#endif  // BGPCU_COLLECTOR_EXTRACT_H
