#include "collector/spec.h"

#include <algorithm>

#include "sim/substrate.h"
#include "topology/rng.h"

namespace bgpcu::collector {

std::vector<topology::NodeId> ProjectSpec::distinct_peers() const {
  std::vector<topology::NodeId> out;
  for (const auto& c : collectors) {
    for (const auto& s : c.sessions) out.push_back(s.peer);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ProjectSpec> default_projects(topology::GeneratedTopology& topo,
                                          const ProjectLayoutParams& params) {
  topology::Rng rng(params.seed ^ 0x70C7ull);
  const auto pool = sim::select_collector_peers(topo, params.total_peers, params.seed);

  // Paper peer counts: RIPE 525, RouteViews 291, Isolario 108, PCH 1,304
  // (Table 1) — we keep the proportions over the shared pool.
  struct Layout {
    const char* name;
    std::size_t collectors;
    double peer_share;  // relative to pool size (can exceed 1 across projects)
    bool emit_ribs;
    double feed_fraction;
  };
  const Layout layouts[] = {
      {"RIPE", 5, 0.40, true, 1.0},
      {"RouteViews", 6, 0.24, true, 1.0},
      {"Isolario", 3, 0.12, true, 1.0},
      {"PCH", 10, 0.95, false, 0.02},
  };

  // Route servers get their own ASNs, allocated past the generated space so
  // they never collide with topology ASes.
  bgp::Asn next_rs_asn = 59000;

  std::vector<ProjectSpec> projects;
  for (const auto& layout : layouts) {
    ProjectSpec project;
    project.name = layout.name;
    project.emit_ribs = layout.emit_ribs;
    project.feed_fraction = layout.feed_fraction;
    const auto want =
        std::max<std::size_t>(2, static_cast<std::size_t>(layout.peer_share *
                                                          static_cast<double>(pool.size())));
    // Sample the project's peers from the pool without replacement.
    std::vector<topology::NodeId> shuffled = pool;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    }
    shuffled.resize(std::min(want, shuffled.size()));

    project.collectors.resize(layout.collectors);
    for (std::size_t c = 0; c < layout.collectors; ++c) {
      project.collectors[c].name = project.name + "-" + std::to_string(c);
      project.collectors[c].bgp_id = 0xC6000000u + static_cast<std::uint32_t>(
                                                       projects.size() * 64 + c);
    }
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      PeerSession session;
      session.peer = shuffled[i];
      if (rng.chance(params.rs_session_share)) {
        session.route_server = true;
        session.rs_asn = next_rs_asn++;
        topo.registry.allocate_asn(session.rs_asn);
      }
      project.collectors[i % layout.collectors].sessions.push_back(session);
    }
    projects.push_back(std::move(project));
  }
  return projects;
}

std::vector<topology::NodeId> all_peers(const std::vector<ProjectSpec>& projects) {
  std::vector<topology::NodeId> out;
  for (const auto& p : projects) {
    const auto peers = p.distinct_peers();
    out.insert(out.end(), peers.begin(), peers.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace bgpcu::collector
