// The write-ahead log: numbered segment files of CRC-framed records. A
// writer opens a fresh segment per process lifetime (and per rotation), so
// recovery never appends to a file that might end in a torn record. The
// reader is torn-tail tolerant: it stops a segment at the first record that
// fails length/CRC/decode validation, warns, and keeps going with the next
// segment — a crash mid-append loses at most the record being written.
#ifndef BGPCU_STORE_WAL_H
#define BGPCU_STORE_WAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "store/format.h"
#include "store/io.h"

namespace bgpcu::store {

/// When the WAL fsyncs (StoreConfig::sync).
enum class SyncPolicy : std::uint8_t {
  kNone = 0,   ///< Never explicitly; the OS flushes when it likes.
  kEpoch = 1,  ///< Once per epoch, after the epoch's records are appended.
  kAlways = 2, ///< After every record append.
};

/// Appends records to numbered segments with size-cap rotation. Not
/// thread-safe (the Store serializes access).
class WalWriter {
 public:
  /// Lazy: no file is created until the first append (read-only store opens
  /// must not mint empty segments).
  WalWriter(std::string dir, SyncPolicy sync, std::uint64_t segment_max_bytes,
            std::uint64_t next_seq);

  /// Appends one record, creating/rotating segments as needed. Throws
  /// StoreError on IO failure; the current segment is then poisoned and the
  /// next append starts a fresh one (the reader skips the torn bytes).
  void append(const WalRecord& record);

  /// Appends already-encoded record bytes (an encode_record/
  /// encode_batch_record envelope). Same rotation, poisoning, and sync
  /// semantics as append(); the hot path uses this to skip the WalRecord
  /// deep copy.
  void append_encoded(const std::vector<std::uint8_t>& bytes);

  /// fsyncs the open segment (the per-epoch durability point). No-op when
  /// nothing is open. Throws StoreError.
  void sync();

  /// Forces the next append into a fresh segment; returns the sequence that
  /// segment will use. Checkpoints call this so every pre-checkpoint record
  /// sits in a GC-able segment.
  std::uint64_t rotate();

  /// The sequence number the next created segment will use (== the open
  /// segment's sequence + 1 when one is open).
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

  [[nodiscard]] std::uint64_t appended_records() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t appended_bytes() const noexcept { return bytes_; }

 private:
  void open_fresh_segment();

  std::string dir_;
  SyncPolicy sync_;
  std::uint64_t segment_max_bytes_;
  std::uint64_t next_seq_;
  io::AppendFile file_;
  bool poisoned_ = false;  ///< Last append failed; segment may end torn.
  std::uint64_t appended_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Result of scanning WAL segments.
struct WalReadResult {
  std::vector<WalRecord> records;    ///< Valid records, segment/offset order.
  std::uint64_t segments_read = 0;
  std::uint64_t truncated_records = 0;  ///< Invalid/torn records dropped.
  std::vector<std::string> warnings;
};

/// Sorted (seq, path) for every parseable segment name in `dir` with
/// seq >= from_seq. Throws StoreError when the directory cannot be scanned.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir, std::uint64_t from_seq);

/// Decodes one segment file (header + records), truncating at the first
/// invalid record. Unreadable files or bad headers yield zero records plus a
/// warning — never a throw.
[[nodiscard]] WalReadResult read_segment_file(const std::string& path);

/// Reads every segment with seq >= from_seq in order, concatenating their
/// surviving records. Throws only when the directory itself is unscannable.
[[nodiscard]] WalReadResult read_wal(const std::string& dir, std::uint64_t from_seq);

}  // namespace bgpcu::store

#endif  // BGPCU_STORE_WAL_H
