// Physical file IO for the durable store: append-only segment writing,
// atomic whole-file replacement (tmp + rename + directory fsync), and a
// read-only mmap wrapper for checkpoint files. Every failure surfaces as
// StoreError so the store can degrade instead of crashing.
//
// Fault injection: a process-wide hook observes every physical operation
// (write, fsync, rename) before it runs. Crash-matrix tests use it to
// simulate a full disk (return false -> the op fails like ENOSPC) or to
// SIGKILL the process at an exact op count (kill-anywhere recovery testing).
#ifndef BGPCU_STORE_IO_H
#define BGPCU_STORE_IO_H

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace bgpcu::store::io {

/// Called with the operation name ("write", "fsync", "rename") before each
/// physical op. Return false to fail the op as if the disk were full. Not
/// synchronized: install before the store starts doing IO, clear after.
using WriteHook = std::function<bool(const char* op)>;
void set_write_hook(WriteHook hook);

/// Invokes the hook (tests only); true when no hook is installed.
[[nodiscard]] bool write_allowed(const char* op);

/// Reads an entire file; throws StoreError when it cannot be opened or read.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// Writes `bytes` to `path` atomically: tmp file in the same directory,
/// fsync, rename over the target, fsync the directory. The target is either
/// fully the old content or fully the new — never a torn mix.
void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes);

/// fsyncs a directory so a just-created/renamed entry survives power loss.
void fsync_dir(const std::string& dir);

/// An append-only file descriptor (one WAL segment). Not thread-safe.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  /// Creates `path` (must not exist) for appending. Throws StoreError.
  void create(const std::string& path);

  /// Appends all of `bytes`; throws StoreError on short/failed writes. After
  /// a failure the file may hold a torn record — the caller must rotate to a
  /// fresh segment before appending again.
  void append(std::span<const std::uint8_t> bytes);

  void sync();
  void close() noexcept;
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
};

/// A read-only memory mapping (checkpoint index images load through this so
/// the dense arrays come back without a read-into-buffer pass). Falls back
/// to a heap read when mmap is unavailable for the file.
class Mapping {
 public:
  Mapping() = default;
  explicit Mapping(const std::string& path);  // throws StoreError
  ~Mapping();
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  Mapping(Mapping&& other) noexcept;
  Mapping& operator=(Mapping&& other) noexcept;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept;

 private:
  void reset() noexcept;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;               ///< true: munmap on destroy.
  std::vector<std::uint8_t> fallback_;  ///< heap copy when mmap failed.
};

}  // namespace bgpcu::store::io

#endif  // BGPCU_STORE_IO_H
