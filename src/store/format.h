// On-disk byte formats for the durable store (docs/PERSISTENCE.md). Three
// file kinds live in a data directory, all CRC-framed so recovery can tell
// torn or corrupted bytes from real data:
//
//   wal-<seq>.log        segment header + CRC-framed WAL records
//   ckpt-<epoch>.state   engine state (config fingerprint, shards, feed marks)
//   ckpt-<epoch>.snap    the published snapshot as a standard wire frame
//   ckpt-<epoch>.index   core::IncrementalIndex dense-array image
//   MANIFEST             retained checkpoint epochs + first live WAL segment
//
// The store shares the repo's varint/LEB128 idiom with src/api/wire.cc but
// owns its primitives: wire.cc's helpers are file-private by design, and the
// store's failure currency is StoreError, not WireFormatError.
#ifndef BGPCU_STORE_FORMAT_H
#define BGPCU_STORE_FORMAT_H

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/types.h"
#include "stream/engine.h"
#include "stream/feed.h"

namespace bgpcu::store {

/// The store's sole decode/IO failure currency. Decode-side throws mean "this
/// byte range is not a valid record" — recovery truncates or skips and warns,
/// it never crashes. Write-side throws mean the disk rejected an operation
/// (ENOSPC, EIO); the store degrades to in-memory-only serving.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// ---------------------------------------------------------------- framing --

inline constexpr std::array<std::uint8_t, 4> kSegmentMagic = {0x89, 'B', 'C', 'W'};
inline constexpr std::array<std::uint8_t, 4> kManifestMagic = {0x89, 'B', 'C', 'M'};
inline constexpr std::array<std::uint8_t, 4> kStateMagic = {0x89, 'B', 'C', 'T'};
inline constexpr std::array<std::uint8_t, 4> kIndexMagic = {0x89, 'B', 'C', 'X'};
inline constexpr std::uint8_t kStoreVersion = 1;

/// Upper bound on one WAL record's payload; anything larger is corruption.
inline constexpr std::uint64_t kMaxRecordPayload = 64ull * 1024 * 1024;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_f64(std::vector<std::uint8_t>& out, double value);
void put_string(std::vector<std::uint8_t>& out, const std::string& value);

/// Bounds-checked reader over store bytes; every primitive throws StoreError
/// on truncation or malformed data.
struct Cursor {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const noexcept { return pos >= data.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data.size() - pos; }
  void require(std::size_t n, const char* what) const;
  std::uint8_t u8(const char* what);
  std::uint32_t u32le(const char* what);
  std::uint64_t varint(const char* what);
  double f64(const char* what);
  std::string string(const char* what);
  std::span<const std::uint8_t> bytes(std::size_t n, const char* what);
};

// ------------------------------------------------------------ WAL records --

/// What one WAL record carries.
enum class RecordKind : std::uint8_t {
  /// The epoch's raw ingest batch (sanitized tuples straight from the feed)
  /// plus the feed's post-poll read offsets. Written *before* the batch is
  /// applied to the engine, so replaying [checkpoint, tail] reproduces the
  /// uninterrupted engine exactly without re-parsing MRT bytes.
  kEpochBatch = 1,
  /// The epoch's published class-change delta as a standard wire frame
  /// (api::encode_delta_batch). Replay seeds the event-log ring and the
  /// history tail; it is never applied to the engine.
  kEpochDelta = 2,
};

/// One decoded WAL record.
struct WalRecord {
  RecordKind kind = RecordKind::kEpochBatch;
  stream::Epoch epoch = 0;
  core::Dataset batch;             ///< kEpochBatch
  stream::FeedMarks marks;         ///< kEpochBatch
  std::vector<std::uint8_t> delta_frame;  ///< kEpochDelta (wire frame bytes)
};

/// Encodes one record with its `[u32le len][u32le crc32][payload]` envelope.
void encode_record(std::vector<std::uint8_t>& out, const WalRecord& record);

/// Encodes a kEpochBatch record straight from the caller's batch — the hot
/// per-epoch append path, which must not deep-copy the Dataset into a
/// WalRecord first (each tuple carries two heap vectors; the copy dominates
/// the whole append at realistic batch sizes).
void encode_batch_record(std::vector<std::uint8_t>& out, stream::Epoch epoch,
                         const stream::FeedMarks& marks, const core::Dataset& batch);

/// Decodes the record at `cursor`, advancing past it. Throws StoreError on a
/// torn or corrupt record (cursor position is then unspecified).
[[nodiscard]] WalRecord decode_record(Cursor& cursor);

// ------------------------------------------------------- checkpoint state --

/// The engine-state checkpoint file: the stream engine's durable state plus
/// the configuration fingerprint it was taken under. Recovery refuses state
/// whose fingerprint disagrees with the running config in ways that change
/// semantics (thresholds, window) and adapts where it can (shard count).
struct StateFile {
  std::uint64_t shards = 0;
  std::uint64_t window_epochs = 0;
  bool incremental_index = true;
  core::Thresholds thresholds;
  std::uint64_t max_columns = 0;
  bool early_stop = true;
  stream::EngineState engine;
  stream::FeedMarks marks;
};

[[nodiscard]] std::vector<std::uint8_t> encode_state_file(const StateFile& state);
[[nodiscard]] StateFile decode_state_file(std::span<const std::uint8_t> bytes);

// ---------------------------------------------------------------- manifest --

/// Names the store's durable contents: which checkpoint epochs are retained
/// (ascending; the last is the recovery base) and the first WAL segment that
/// is still live. Written last in a checkpoint, atomically — the manifest is
/// the commit point.
struct Manifest {
  std::vector<stream::Epoch> checkpoints;
  std::uint64_t wal_start_seq = 0;

  [[nodiscard]] bool has_checkpoint(stream::Epoch epoch) const noexcept;
};

[[nodiscard]] std::vector<std::uint8_t> encode_manifest(const Manifest& manifest);
[[nodiscard]] Manifest decode_manifest(std::span<const std::uint8_t> bytes);

// ------------------------------------------------------------- index file --

/// Wraps a core index image in the store's magic+CRC envelope.
[[nodiscard]] std::vector<std::uint8_t> encode_index_file(
    std::span<const std::uint8_t> image);

/// Validates the envelope and returns the image payload as a view into
/// `bytes` (zero-copy: the caller keeps the backing file mapped/alive).
[[nodiscard]] std::span<const std::uint8_t> index_file_payload(
    std::span<const std::uint8_t> bytes);

// ------------------------------------------------------------- file names --

[[nodiscard]] std::string segment_path(const std::string& dir, std::uint64_t seq);
[[nodiscard]] std::string manifest_path(const std::string& dir);
[[nodiscard]] std::string checkpoint_path(const std::string& dir, stream::Epoch epoch,
                                          const char* suffix);

/// Parses "<dir>/wal-<seq>.log"; returns false when `name` is not a segment.
[[nodiscard]] bool parse_segment_name(const std::string& name, std::uint64_t& seq);

/// Parses "ckpt-<epoch><suffix>"; returns false on mismatch.
[[nodiscard]] bool parse_checkpoint_name(const std::string& name, const char* suffix,
                                         stream::Epoch& epoch);

}  // namespace bgpcu::store

#endif  // BGPCU_STORE_FORMAT_H
