#include "store/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "store/format.h"

namespace bgpcu::store::io {

namespace {

WriteHook g_write_hook;

[[noreturn]] void throw_errno(const std::string& what) {
  throw StoreError("store: " + what + ": " + std::strerror(errno));
}

void write_all(int fd, std::span<const std::uint8_t> bytes, const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    if (!write_allowed("write")) {
      errno = ENOSPC;
      throw_errno("write " + path);
    }
    const auto n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write " + path);
    }
    written += static_cast<std::size_t>(n);
  }
}

void fsync_fd(int fd, const std::string& path) {
  if (!write_allowed("fsync")) {
    errno = ENOSPC;
    throw_errno("fsync " + path);
  }
  if (::fsync(fd) != 0) throw_errno("fsync " + path);
}

}  // namespace

void set_write_hook(WriteHook hook) { g_write_hook = std::move(hook); }

bool write_allowed(const char* op) { return !g_write_hook || g_write_hook(op); }

std::vector<std::uint8_t> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + path);
  std::vector<std::uint8_t> bytes;
  struct ::stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    bytes.reserve(static_cast<std::size_t>(st.st_size));
  }
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const auto n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("read " + path);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  ::close(fd);
  return bytes;
}

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  try {
    write_all(fd, bytes, tmp);
    fsync_fd(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (!write_allowed("rename")) {
    ::unlink(tmp.c_str());
    errno = ENOSPC;
    throw_errno("rename " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    throw_errno("rename " + tmp);
  }
  const auto slash = path.find_last_of('/');
  fsync_dir(slash == std::string::npos ? "." : path.substr(0, slash));
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + dir);
  try {
    fsync_fd(fd, dir);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

void AppendFile::create(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("create " + path);
  fd_ = fd;
  size_ = 0;
  path_ = path;
}

void AppendFile::append(std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) throw StoreError("store: append on closed segment");
  write_all(fd_, bytes, path_);
  size_ += bytes.size();
}

void AppendFile::sync() {
  if (fd_ < 0) return;
  fsync_fd(fd_, path_);
}

void AppendFile::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Mapping::Mapping(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open " + path);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;
  }
  void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr != MAP_FAILED) {
    data_ = static_cast<const std::uint8_t*>(addr);
    mapped_ = true;
    ::close(fd);
    return;
  }
  ::close(fd);
  fallback_ = read_file(path);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

Mapping::~Mapping() { reset(); }

Mapping::Mapping(Mapping&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {}

Mapping& Mapping::operator=(Mapping&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

void Mapping::reset() noexcept {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

std::span<const std::uint8_t> Mapping::bytes() const noexcept {
  return {data_, size_};
}

}  // namespace bgpcu::store::io
