#include "store/store.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

#include "api/wire.h"
#include "obs/log.h"
#include "obs/wellknown.h"

namespace bgpcu::store {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - since).count());
}

/// The per-class history points hidden in one snapshot: the class of `asn`
/// as that snapshot published it.
core::UsageClass usage_at(const stream::SnapshotPtr& snapshot, bgp::Asn asn) {
  return snapshot->usage(asn);
}

}  // namespace

Store::Store(StoreConfig config)
    : config_(std::move(config)), last_checkpoint_time_(Clock::now()) {
  config_.retain_checkpoints = std::max<std::uint64_t>(1, config_.retain_checkpoints);
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    throw StoreError("store: cannot create " + config_.dir + ": " + ec.message());
  }
  std::vector<std::string> warnings;
  manifest_ = load_or_rebuild_manifest(warnings);
  for (const auto& warning : warnings) {
    obs::log_warn("store_open", {{"warning", warning}});
  }
  // The writer starts past every existing segment so no file that might end
  // in a torn record is ever appended to. Lazy: read-only opens (inspect,
  // verify, history tools) must not mint empty segments.
  std::uint64_t next_seq = manifest_.wal_start_seq;
  for (const auto& [seq, path] : list_segments(config_.dir, 0)) next_seq = seq + 1;
  wal_ = std::make_unique<WalWriter>(config_.dir, config_.sync, config_.segment_max_bytes,
                                     next_seq);
}

Manifest Store::load_or_rebuild_manifest(std::vector<std::string>& warnings) const {
  try {
    return decode_manifest(io::read_file(manifest_path(config_.dir)));
  } catch (const StoreError& error) {
    std::error_code probe;
    if (fs::exists(manifest_path(config_.dir), probe)) {
      warnings.push_back(std::string("manifest unreadable, rebuilding by scan: ") +
                         error.what());
    }
  }
  // Fallback: any decodable .state file names a usable checkpoint. With no
  // manifest the WAL start is unknown; replay from segment 0 — stale records
  // below the checkpoint epoch are filtered during recovery anyway.
  Manifest manifest;
  std::error_code ec;
  fs::directory_iterator it(config_.dir, ec);
  if (ec) return manifest;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    stream::Epoch epoch = 0;
    if (!parse_checkpoint_name(it->path().filename().string(), ".state", epoch)) continue;
    try {
      (void)decode_state_file(io::read_file(it->path().string()));
    } catch (const StoreError&) {
      continue;
    }
    manifest.checkpoints.push_back(epoch);
  }
  std::sort(manifest.checkpoints.begin(), manifest.checkpoints.end());
  manifest.checkpoints.erase(
      std::unique(manifest.checkpoints.begin(), manifest.checkpoints.end()),
      manifest.checkpoints.end());
  return manifest;
}

bool Store::guard_io(const char* what, const std::function<void()>& op) {
  try {
    op();
    return true;
  } catch (const StoreError& error) {
    degraded_ = true;
    obs::metrics().store_io_errors.add(1);
    obs::log_error("store_io_error", {{"op", what}, {"error", error.what()}});
    return false;
  }
}

RecoveryStats Store::recover(api::Service& service) {
  const std::lock_guard lock(mutex_);
  const auto started = Clock::now();
  RecoveryStats rec;

  // 1. Newest valid checkpoint wins; older retained ones are fallbacks.
  StateFile state;
  bool have_state = false;
  io::Mapping index_map;
  std::span<const std::uint8_t> index_image;
  for (auto it = manifest_.checkpoints.rbegin(); it != manifest_.checkpoints.rend(); ++it) {
    try {
      state = decode_state_file(io::read_file(checkpoint_path(config_.dir, *it, ".state")));
    } catch (const StoreError& error) {
      rec.warnings.push_back("checkpoint " + std::to_string(*it) +
                             " unusable: " + error.what());
      continue;
    }
    rec.checkpoint_epoch = *it;
    have_state = true;
    if (state.incremental_index) {
      try {
        index_map = io::Mapping(checkpoint_path(config_.dir, *it, ".index"));
        index_image = index_file_payload(index_map.bytes());
      } catch (const StoreError& error) {
        rec.warnings.push_back("checkpoint " + std::to_string(*it) +
                               " index image unusable: " + error.what());
        index_image = {};
      }
    }
    break;
  }

  stream::FeedMarks marks;
  if (have_state) {
    const auto& config = service.config().stream;
    if (state.shards != config.shards) {
      rec.warnings.push_back("checkpoint taken under shards=" + std::to_string(state.shards) +
                             ", redistributing for shards=" + std::to_string(config.shards));
    }
    if (state.window_epochs != config.window_epochs) {
      rec.warnings.push_back("checkpoint window_epochs=" + std::to_string(state.window_epochs) +
                             " differs from running config; aging may shift");
    }
    marks = state.marks;
    const std::size_t restored = [&] {
      std::size_t total = 0;
      for (const auto& shard : state.engine.shards) total += shard.tuples.size();
      return total;
    }();
    service.restore_engine(std::move(state.engine), index_image);
    rec.index_image_loaded = !index_image.empty() && service.config().stream.incremental_index &&
                             state.shards == config.shards;
    obs::log_info("store_checkpoint_loaded",
                  {{"epoch", std::to_string(*rec.checkpoint_epoch)},
                   {"tuples", std::to_string(restored)}});
  }
  const stream::Epoch base_epoch = rec.checkpoint_epoch.value_or(0);

  // 2. Replay the WAL tail. Batch records re-ingest exactly what the live
  // run ingested (the feed's sanitized output was logged before apply), and
  // the epoch advances in between reproduce the same window evictions.
  auto wal = read_wal(config_.dir, manifest_.wal_start_seq);
  rec.truncated_records = wal.truncated_records;
  for (auto& warning : wal.warnings) rec.warnings.push_back(std::move(warning));
  std::vector<api::EpochDelta> deltas;
  for (auto& record : wal.records) {
    if (record.epoch < base_epoch) continue;  // already inside the checkpoint
    while (service.epoch() < record.epoch) service.advance_epoch();
    switch (record.kind) {
      case RecordKind::kEpochBatch:
        service.ingest(std::move(record.batch));
        if (!record.marks.empty()) marks = std::move(record.marks);
        ++rec.batches_replayed;
        break;
      case RecordKind::kEpochDelta: {
        try {
          auto delta = api::decode_delta_batch(record.delta_frame);
          deltas.push_back(std::move(delta));
          ++rec.deltas_replayed;
        } catch (const std::exception& error) {
          rec.warnings.push_back(std::string("undecodable delta record at epoch ") +
                                 std::to_string(record.epoch) + ": " + error.what());
        }
        break;
      }
    }
  }
  rec.recovered = have_state || !wal.records.empty();
  rec.resume_epoch = service.epoch();
  rec.feed_marks = marks;
  last_marks_ = std::move(marks);

  // 3. Seed the facade: event-log ring for replay subscribers, the delta
  // tail for history queries, and the publish baseline so replayed history
  // is not re-announced.
  recent_deltas_.clear();
  for (const auto& delta : deltas) {
    if (delta.epoch > base_epoch || (!have_state && delta.epoch == base_epoch)) {
      recent_deltas_.push_back(delta);
    }
  }
  service.preload_events(std::move(deltas));
  service.rebaseline();

  const auto ns = elapsed_ns(started);
  rec.duration_ms = ns / 1'000'000;
  auto& m = obs::metrics();
  m.store_recoveries.add(1);
  m.store_recovery_ns.observe(ns);
  if (const auto n = rec.batches_replayed + rec.deltas_replayed) {
    m.store_replayed_records.add(n);
  }
  for (const auto& warning : rec.warnings) {
    obs::log_warn("store_recovery", {{"warning", warning}});
  }
  obs::log_info("store_recovered",
                {{"resume_epoch", std::to_string(rec.resume_epoch)},
                 {"batches", std::to_string(rec.batches_replayed)},
                 {"deltas", std::to_string(rec.deltas_replayed)},
                 {"ms", std::to_string(rec.duration_ms)}});
  return rec;
}

bool Store::append_epoch_batch(stream::Epoch epoch, const core::Dataset& batch,
                               stream::FeedMarks marks) {
  const std::lock_guard lock(mutex_);
  // Encode straight from the caller's batch — no WalRecord deep copy; the
  // caller still needs the batch for ingest.
  std::vector<std::uint8_t> bytes;
  encode_batch_record(bytes, epoch, marks, batch);
  last_marks_ = std::move(marks);
  return guard_io("wal_append_batch", [&] { wal_->append_encoded(bytes); });
}

bool Store::append_epoch_delta(const api::EpochDelta& delta) {
  const std::lock_guard lock(mutex_);
  bool ok = true;
  if (!delta.changes.empty()) {
    WalRecord record;
    record.kind = RecordKind::kEpochDelta;
    record.epoch = delta.epoch;
    record.delta_frame = api::encode_delta_batch(delta);
    ok = guard_io("wal_append_delta", [&] { wal_->append(record); });
    if (ok) recent_deltas_.push_back(delta);
  }
  if (ok && config_.sync == SyncPolicy::kEpoch) {
    ok = guard_io("wal_sync", [&] { wal_->sync(); });
  }
  return ok;
}

bool Store::maybe_checkpoint(api::Service& service) {
  {
    const std::lock_guard lock(mutex_);
    const auto epoch = service.epoch();
    const stream::Epoch newest =
        manifest_.checkpoints.empty() ? 0 : manifest_.checkpoints.back();
    bool due = config_.checkpoint_every_epochs != 0 &&
               epoch >= newest + config_.checkpoint_every_epochs;
    // Time cadence: catches quiet feeds whose epoch trickle never reaches
    // the epoch cadence, so the WAL tail (and crash-replay time) stays
    // bounded by wall clock too. Only fires when the current epoch would
    // actually yield a new checkpoint — checkpoint_locked no-ops on an
    // epoch already covered, and a pointless cycle would still churn IO.
    if (!due && config_.checkpoint_interval_sec != 0 &&
        !manifest_.has_checkpoint(epoch)) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
                               Clock::now() - last_checkpoint_time_)
                               .count();
      due = elapsed >= static_cast<std::int64_t>(config_.checkpoint_interval_sec);
    }
    if (!due) return false;
  }
  return checkpoint(service);
}

bool Store::checkpoint(api::Service& service) {
  const std::lock_guard lock(mutex_);
  return guard_io("checkpoint", [&] { checkpoint_locked(service); });
}

void Store::checkpoint_locked(api::Service& service) {
  const auto started = Clock::now();
  // Snapshot before exporting state: the sweep warms the engine cache, so
  // the subsequent export's journal drain is a no-op, and the .snap file is
  // exactly the published view at this cut.
  const auto snapshot = service.query({.kind = api::QueryKind::kSnapshot}).snapshot;
  auto cut = service.checkpoint_state();
  const auto epoch = cut.state.epoch;
  if (manifest_.has_checkpoint(epoch)) return;  // nothing new this epoch

  StateFile state;
  const auto& stream_config = service.config().stream;
  state.shards = stream_config.shards;
  state.window_epochs = stream_config.window_epochs;
  state.incremental_index = stream_config.incremental_index;
  state.thresholds = stream_config.engine.thresholds;
  state.max_columns = stream_config.engine.max_columns;
  state.early_stop = stream_config.engine.early_stop;
  state.engine = std::move(cut.state);
  state.marks = last_marks_;

  std::uint64_t bytes_written = 0;
  const auto snap_bytes = api::encode_snapshot(*snapshot);
  io::write_file_atomic(checkpoint_path(config_.dir, epoch, ".snap"), snap_bytes);
  bytes_written += snap_bytes.size();
  const auto state_bytes = encode_state_file(state);
  io::write_file_atomic(checkpoint_path(config_.dir, epoch, ".state"), state_bytes);
  bytes_written += state_bytes.size();
  if (!cut.index_image.empty()) {
    const auto index_bytes = encode_index_file(cut.index_image);
    io::write_file_atomic(checkpoint_path(config_.dir, epoch, ".index"), index_bytes);
    bytes_written += index_bytes.size();
  }

  // Rotate so every record logged before this cut lives in a dead segment;
  // the manifest (written last, atomically) is the commit point.
  Manifest next = manifest_;
  next.checkpoints.push_back(epoch);
  while (next.checkpoints.size() > config_.retain_checkpoints) {
    next.checkpoints.erase(next.checkpoints.begin());
  }
  next.wal_start_seq = wal_->rotate();
  const auto manifest_bytes = encode_manifest(next);
  io::write_file_atomic(manifest_path(config_.dir), manifest_bytes);
  bytes_written += manifest_bytes.size();
  manifest_ = std::move(next);

  // Only state strictly newer than this checkpoint stays in the history
  // tail; the checkpoint's own snapshot now covers everything up to it.
  recent_deltas_.erase(
      std::remove_if(recent_deltas_.begin(), recent_deltas_.end(),
                     [epoch](const api::EpochDelta& d) { return d.epoch <= epoch; }),
      recent_deltas_.end());
  snapshot_cache_.emplace(epoch, snapshot);
  gc_locked();

  last_checkpoint_time_ = Clock::now();
  const auto ns = elapsed_ns(started);
  auto& m = obs::metrics();
  m.store_checkpoints.add(1);
  m.store_checkpoint_bytes.add(bytes_written);
  m.store_checkpoint_ns.observe(ns);
  obs::log_info("store_checkpoint",
                {{"epoch", std::to_string(epoch)},
                 {"bytes", std::to_string(bytes_written)},
                 {"ms", std::to_string(ns / 1'000'000)}});
}

void Store::gc_locked() {
  std::error_code ec;
  fs::directory_iterator it(config_.dir, ec);
  if (ec) return;
  std::uint64_t removed_segments = 0;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    const auto name = it->path().filename().string();
    std::uint64_t seq = 0;
    stream::Epoch epoch = 0;
    bool doomed = false;
    if (parse_segment_name(name, seq)) {
      doomed = seq < manifest_.wal_start_seq;
      if (doomed) ++removed_segments;
    } else if (parse_checkpoint_name(name, ".snap", epoch) ||
               parse_checkpoint_name(name, ".state", epoch) ||
               parse_checkpoint_name(name, ".index", epoch)) {
      // Expired retained history, plus orphans from checkpoints that crashed
      // before their manifest landed.
      doomed = !manifest_.has_checkpoint(epoch);
    }
    if (doomed) fs::remove(it->path(), ec);
  }
  for (auto cached = snapshot_cache_.begin(); cached != snapshot_cache_.end();) {
    if (!manifest_.has_checkpoint(cached->first)) {
      cached = snapshot_cache_.erase(cached);
    } else {
      ++cached;
    }
  }
  if (removed_segments != 0) obs::metrics().store_gc_segments.add(removed_segments);
}

std::vector<api::HistoryPoint> Store::history(bgp::Asn asn) const {
  const std::lock_guard lock(mutex_);
  std::vector<api::HistoryPoint> points;
  for (const auto epoch : manifest_.checkpoints) {
    stream::SnapshotPtr snapshot;
    const auto cached = snapshot_cache_.find(epoch);
    if (cached != snapshot_cache_.end()) {
      snapshot = cached->second;
    } else {
      try {
        snapshot = std::make_shared<const core::InferenceResult>(api::decode_snapshot(
            io::read_file(checkpoint_path(config_.dir, epoch, ".snap"))));
      } catch (const std::exception&) {
        continue;  // unreadable retained snapshot: skip the point
      }
      snapshot_cache_.emplace(epoch, snapshot);
    }
    const auto usage = usage_at(snapshot, asn);
    if (points.empty() || !(points.back().usage == usage)) {
      points.push_back({epoch, usage});
    }
  }
  // The delta tail refines the evolution past the newest checkpoint.
  for (const auto& delta : recent_deltas_) {
    for (const auto& change : delta.changes) {
      if (change.asn != asn) continue;
      if (!points.empty() && delta.epoch <= points.back().epoch) continue;
      if (points.empty() || !(points.back().usage == change.after)) {
        points.push_back({delta.epoch, change.after});
      }
    }
  }
  return points;
}

bool Store::degraded() const {
  const std::lock_guard lock(mutex_);
  return degraded_;
}

Manifest Store::manifest() const {
  const std::lock_guard lock(mutex_);
  return manifest_;
}

std::optional<StateFile> load_newest_state(const std::string& dir) {
  std::vector<stream::Epoch> epochs;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return std::nullopt;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    stream::Epoch epoch = 0;
    if (parse_checkpoint_name(it->path().filename().string(), ".state", epoch)) {
      epochs.push_back(epoch);
    }
  }
  std::sort(epochs.begin(), epochs.end());
  for (auto rit = epochs.rbegin(); rit != epochs.rend(); ++rit) {
    try {
      return decode_state_file(io::read_file(checkpoint_path(dir, *rit, ".state")));
    } catch (const StoreError&) {
      continue;
    }
  }
  return std::nullopt;
}

api::ServiceConfig service_config_from(const StateFile& state) {
  api::ServiceConfig config;
  config.stream.shards = static_cast<std::size_t>(state.shards);
  config.stream.window_epochs = state.window_epochs;
  config.stream.incremental_index = state.incremental_index;
  config.stream.engine.thresholds = state.thresholds;
  config.stream.engine.max_columns = static_cast<std::size_t>(state.max_columns);
  config.stream.engine.early_stop = state.early_stop;
  return config;
}

}  // namespace bgpcu::store
