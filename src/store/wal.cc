#include "store/wal.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/wellknown.h"

namespace bgpcu::store {

namespace fs = std::filesystem;

WalWriter::WalWriter(std::string dir, SyncPolicy sync, std::uint64_t segment_max_bytes,
                     std::uint64_t next_seq)
    : dir_(std::move(dir)),
      sync_(sync),
      segment_max_bytes_(std::max<std::uint64_t>(1, segment_max_bytes)),
      next_seq_(next_seq) {}

void WalWriter::open_fresh_segment() {
  file_.close();
  poisoned_ = false;
  // Segment numbers are minted once and never reused; a leftover file with
  // this number (crashed before any record landed) is replaced.
  const auto path = segment_path(dir_, next_seq_);
  ::remove(path.c_str());
  file_.create(path);
  ++next_seq_;
  std::vector<std::uint8_t> header(kSegmentMagic.begin(), kSegmentMagic.end());
  header.push_back(kStoreVersion);
  file_.append(header);
  // Make the directory entry durable before any record relies on it.
  io::fsync_dir(dir_);
  obs::metrics().store_segments_opened.add(1);
}

void WalWriter::append(const WalRecord& record) {
  std::vector<std::uint8_t> bytes;
  encode_record(bytes, record);
  append_encoded(bytes);
}

void WalWriter::append_encoded(const std::vector<std::uint8_t>& bytes) {
  if (!file_.is_open() || poisoned_ || file_.size() >= segment_max_bytes_) {
    open_fresh_segment();
  }
  try {
    file_.append(bytes);
  } catch (...) {
    // The segment may now end in a torn record; never append after it.
    poisoned_ = true;
    throw;
  }
  ++appended_;
  bytes_ += bytes.size();
  auto& m = obs::metrics();
  m.store_wal_appends.add(1);
  m.store_wal_bytes.add(bytes.size());
  if (sync_ == SyncPolicy::kAlways) sync();
}

void WalWriter::sync() {
  if (!file_.is_open() || poisoned_) return;
  file_.sync();
  obs::metrics().store_wal_syncs.add(1);
}

std::uint64_t WalWriter::rotate() {
  file_.close();
  poisoned_ = false;
  return next_seq_;
}

std::vector<std::pair<std::uint64_t, std::string>> list_segments(const std::string& dir,
                                                                 std::uint64_t from_seq) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) throw StoreError("store: cannot scan " + dir + ": " + ec.message());
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || ec) continue;
    std::uint64_t seq = 0;
    if (!parse_segment_name(it->path().filename().string(), seq)) continue;
    if (seq < from_seq) continue;
    segments.emplace_back(seq, it->path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

WalReadResult read_segment_file(const std::string& path) {
  WalReadResult result;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = io::read_file(path);
  } catch (const StoreError& error) {
    result.warnings.push_back(error.what());
    return result;
  }
  Cursor cursor{bytes};
  try {
    cursor.require(5, "segment header");
    if (!std::equal(kSegmentMagic.begin(), kSegmentMagic.end(), bytes.begin())) {
      throw StoreError("store: bad segment magic in " + path);
    }
    cursor.pos = 4;
    if (cursor.u8("segment version") != kStoreVersion) {
      throw StoreError("store: unsupported segment version in " + path);
    }
  } catch (const StoreError& error) {
    result.warnings.push_back(error.what());
    return result;
  }
  ++result.segments_read;
  while (!cursor.done()) {
    const auto record_start = cursor.pos;
    try {
      result.records.push_back(decode_record(cursor));
    } catch (const StoreError& error) {
      // Torn tail (crash mid-append) or corruption: keep what decoded,
      // count one drop for the rest of this segment, and warn.
      ++result.truncated_records;
      result.warnings.push_back(path + " truncated at byte " +
                                std::to_string(record_start) + ": " + error.what());
      break;
    }
  }
  return result;
}

WalReadResult read_wal(const std::string& dir, std::uint64_t from_seq) {
  WalReadResult result;
  for (const auto& [seq, path] : list_segments(dir, from_seq)) {
    auto segment = read_segment_file(path);
    result.segments_read += segment.segments_read;
    result.truncated_records += segment.truncated_records;
    for (auto& warning : segment.warnings) result.warnings.push_back(std::move(warning));
    for (auto& record : segment.records) result.records.push_back(std::move(record));
  }
  if (result.truncated_records != 0) {
    obs::metrics().store_truncated_records.add(result.truncated_records);
  }
  return result;
}

}  // namespace bgpcu::store
