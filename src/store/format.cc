#include "store/format.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"

namespace bgpcu::store {

namespace {

/// Decode-side caps: generous bounds that real data never approaches, so a
/// corrupt length varint cannot drive a multi-gigabyte allocation before the
/// payload bytes run out.
constexpr std::uint64_t kMaxPathLen = 1024;
constexpr std::uint64_t kMaxComms = 1u << 16;
constexpr std::uint64_t kMaxMarkPath = 1u << 12;
constexpr std::uint64_t kMaxListReserve = 1u << 20;

template <typename T>
void reserve_capped(std::vector<T>& v, std::uint64_t count) {
  v.reserve(static_cast<std::size_t>(std::min(count, kMaxListReserve)));
}

void put_tuple(std::vector<std::uint8_t>& out, const core::PathCommTuple& tuple) {
  put_varint(out, tuple.path.size());
  for (const auto asn : tuple.path) put_varint(out, asn);
  put_varint(out, tuple.comms.size());
  for (const auto& comm : tuple.comms) {
    out.push_back(static_cast<std::uint8_t>(comm.kind));
    put_varint(out, comm.upper);
    put_varint(out, comm.low1);
    put_varint(out, comm.low2);
  }
}

core::PathCommTuple get_tuple(Cursor& cursor) {
  core::PathCommTuple tuple;
  const auto path_len = cursor.varint("tuple path length");
  if (path_len == 0 || path_len > kMaxPathLen) {
    throw StoreError("store: tuple path length out of range");
  }
  tuple.path.reserve(static_cast<std::size_t>(path_len));
  for (std::uint64_t i = 0; i < path_len; ++i) {
    tuple.path.push_back(static_cast<bgp::Asn>(cursor.varint("path ASN")));
  }
  const auto comm_count = cursor.varint("community count");
  if (comm_count > kMaxComms) throw StoreError("store: community count out of range");
  tuple.comms.reserve(static_cast<std::size_t>(comm_count));
  for (std::uint64_t i = 0; i < comm_count; ++i) {
    bgp::CommunityValue comm;
    const auto kind = cursor.u8("community kind");
    if (kind > static_cast<std::uint8_t>(bgp::CommunityKind::kLarge)) {
      throw StoreError("store: unknown community kind");
    }
    comm.kind = static_cast<bgp::CommunityKind>(kind);
    comm.upper = static_cast<bgp::Asn>(cursor.varint("community upper"));
    comm.low1 = static_cast<std::uint32_t>(cursor.varint("community low1"));
    comm.low2 = static_cast<std::uint32_t>(cursor.varint("community low2"));
    tuple.comms.push_back(comm);
  }
  return tuple;
}

void put_marks(std::vector<std::uint8_t>& out, const stream::FeedMarks& marks) {
  put_varint(out, marks.size());
  for (const auto& mark : marks) {
    put_string(out, mark.path);
    put_varint(out, mark.offset);
  }
}

stream::FeedMarks get_marks(Cursor& cursor) {
  stream::FeedMarks marks;
  const auto count = cursor.varint("feed mark count");
  reserve_capped(marks, count);
  for (std::uint64_t i = 0; i < count; ++i) {
    stream::FeedMark mark;
    mark.path = cursor.string("feed mark path");
    if (mark.path.size() > kMaxMarkPath) {
      throw StoreError("store: feed mark path too long");
    }
    mark.offset = cursor.varint("feed mark offset");
    marks.push_back(std::move(mark));
  }
  return marks;
}

/// Wraps `payload` in `[magic][version][payload][u32le crc32(payload)]`.
std::vector<std::uint8_t> seal_file(const std::array<std::uint8_t, 4>& magic,
                                    std::vector<std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 9);
  out.insert(out.end(), magic.begin(), magic.end());
  out.push_back(kStoreVersion);
  out.insert(out.end(), payload.begin(), payload.end());
  put_u32le(out, util::crc32(payload));
  return out;
}

/// Validates the envelope and returns the payload view.
std::span<const std::uint8_t> open_file(const std::array<std::uint8_t, 4>& magic,
                                        std::span<const std::uint8_t> bytes,
                                        const char* what) {
  if (bytes.size() < 9 || !std::equal(magic.begin(), magic.end(), bytes.begin())) {
    throw StoreError(std::string("store: bad ") + what + " magic");
  }
  if (bytes[4] != kStoreVersion) {
    throw StoreError(std::string("store: unsupported ") + what + " version");
  }
  const auto payload = bytes.subspan(5, bytes.size() - 9);
  const auto trailer = bytes.subspan(bytes.size() - 4);
  const std::uint32_t expected = static_cast<std::uint32_t>(trailer[0]) |
                                 (static_cast<std::uint32_t>(trailer[1]) << 8) |
                                 (static_cast<std::uint32_t>(trailer[2]) << 16) |
                                 (static_cast<std::uint32_t>(trailer[3]) << 24);
  if (util::crc32(payload) != expected) {
    throw StoreError(std::string("store: ") + what + " checksum mismatch");
  }
  return payload;
}

}  // namespace

// --------------------------------------------------------------- primitives

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

void put_f64(std::vector<std::uint8_t>& out, double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

void put_string(std::vector<std::uint8_t>& out, const std::string& value) {
  put_varint(out, value.size());
  out.insert(out.end(), value.begin(), value.end());
}

void Cursor::require(std::size_t n, const char* what) const {
  if (data.size() - pos < n) {
    throw StoreError(std::string("store: truncated ") + what);
  }
}

std::uint8_t Cursor::u8(const char* what) {
  require(1, what);
  return data[pos++];
}

std::uint32_t Cursor::u32le(const char* what) {
  require(4, what);
  const std::uint8_t* b = data.data() + pos;
  pos += 4;
  return static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) | (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t Cursor::varint(const char* what) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const auto byte = u8(what);
    if (shift == 63 && byte > 1) {
      throw StoreError(std::string("store: varint overflow in ") + what);
    }
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) throw StoreError(std::string("store: varint overflow in ") + what);
  }
}

double Cursor::f64(const char* what) {
  require(8, what);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits = (bits << 8) | data[pos++];
  return std::bit_cast<double>(bits);
}

std::string Cursor::string(const char* what) {
  const auto size = varint(what);
  require(static_cast<std::size_t>(size), what);
  std::string value(reinterpret_cast<const char*>(data.data() + pos),
                    static_cast<std::size_t>(size));
  pos += static_cast<std::size_t>(size);
  return value;
}

std::span<const std::uint8_t> Cursor::bytes(std::size_t n, const char* what) {
  require(n, what);
  const auto view = data.subspan(pos, n);
  pos += n;
  return view;
}

// -------------------------------------------------------------- WAL records

namespace {

/// Wraps a finished payload in the `[u32le len][u32le crc32][payload]`
/// record envelope.
void seal_record(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& payload) {
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, util::crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

void encode_record(std::vector<std::uint8_t>& out, const WalRecord& record) {
  if (record.kind == RecordKind::kEpochBatch) {
    encode_batch_record(out, record.epoch, record.marks, record.batch);
    return;
  }
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(record.kind));
  put_varint(payload, record.epoch);
  put_varint(payload, record.delta_frame.size());
  payload.insert(payload.end(), record.delta_frame.begin(), record.delta_frame.end());
  seal_record(out, payload);
}

void encode_batch_record(std::vector<std::uint8_t>& out, stream::Epoch epoch,
                         const stream::FeedMarks& marks, const core::Dataset& batch) {
  std::vector<std::uint8_t> payload;
  // Rough per-tuple estimate (short path + one community) so the payload
  // grows without repeated reallocation on big epochs.
  payload.reserve(batch.size() * 16 + 64);
  payload.push_back(static_cast<std::uint8_t>(RecordKind::kEpochBatch));
  put_varint(payload, epoch);
  put_marks(payload, marks);
  put_varint(payload, batch.size());
  for (const auto& tuple : batch) put_tuple(payload, tuple);
  seal_record(out, payload);
}

WalRecord decode_record(Cursor& cursor) {
  const auto length = cursor.u32le("record length");
  if (length > kMaxRecordPayload) throw StoreError("store: record length out of range");
  const auto expected_crc = cursor.u32le("record checksum");
  const auto payload = cursor.bytes(length, "record payload");
  if (util::crc32(payload) != expected_crc) {
    throw StoreError("store: record checksum mismatch");
  }

  Cursor body{payload};
  WalRecord record;
  const auto kind = body.u8("record kind");
  switch (kind) {
    case static_cast<std::uint8_t>(RecordKind::kEpochBatch): {
      record.kind = RecordKind::kEpochBatch;
      record.epoch = body.varint("record epoch");
      record.marks = get_marks(body);
      const auto count = body.varint("batch tuple count");
      reserve_capped(record.batch, count);
      for (std::uint64_t i = 0; i < count; ++i) record.batch.push_back(get_tuple(body));
      break;
    }
    case static_cast<std::uint8_t>(RecordKind::kEpochDelta): {
      record.kind = RecordKind::kEpochDelta;
      record.epoch = body.varint("record epoch");
      const auto size = body.varint("delta frame size");
      const auto frame = body.bytes(static_cast<std::size_t>(size), "delta frame");
      record.delta_frame.assign(frame.begin(), frame.end());
      break;
    }
    default:
      throw StoreError("store: unknown record kind");
  }
  if (!body.done()) throw StoreError("store: trailing bytes in record payload");
  return record;
}

// --------------------------------------------------------- checkpoint state

std::vector<std::uint8_t> encode_state_file(const StateFile& state) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, state.shards);
  put_varint(payload, state.window_epochs);
  payload.push_back(state.incremental_index ? 1 : 0);
  put_f64(payload, state.thresholds.tagger);
  put_f64(payload, state.thresholds.silent);
  put_f64(payload, state.thresholds.forward);
  put_f64(payload, state.thresholds.cleaner);
  put_varint(payload, state.max_columns);
  payload.push_back(state.early_stop ? 1 : 0);

  put_varint(payload, state.engine.epoch);
  put_varint(payload, state.engine.evicted_total);
  put_marks(payload, state.marks);
  put_varint(payload, state.engine.shards.size());
  for (const auto& shard : state.engine.shards) {
    put_varint(payload, shard.next_key);
    put_varint(payload, shard.tuples.size());
    for (const auto& stored : shard.tuples) {
      put_varint(payload, stored.last_seen);
      put_varint(payload, stored.key);
      put_tuple(payload, stored.tuple);
    }
  }
  return seal_file(kStateMagic, std::move(payload));
}

StateFile decode_state_file(std::span<const std::uint8_t> bytes) {
  Cursor cursor{open_file(kStateMagic, bytes, "state file")};
  StateFile state;
  state.shards = cursor.varint("shard config");
  state.window_epochs = cursor.varint("window config");
  state.incremental_index = cursor.u8("incremental flag") != 0;
  state.thresholds.tagger = cursor.f64("tagger threshold");
  state.thresholds.silent = cursor.f64("silent threshold");
  state.thresholds.forward = cursor.f64("forward threshold");
  state.thresholds.cleaner = cursor.f64("cleaner threshold");
  state.max_columns = cursor.varint("max columns");
  state.early_stop = cursor.u8("early stop flag") != 0;

  state.engine.epoch = cursor.varint("engine epoch");
  state.engine.evicted_total = cursor.varint("evicted total");
  state.marks = get_marks(cursor);
  const auto shard_count = cursor.varint("shard count");
  if (shard_count > (1u << 16)) throw StoreError("store: shard count out of range");
  state.engine.shards.resize(static_cast<std::size_t>(shard_count));
  for (auto& shard : state.engine.shards) {
    shard.next_key = cursor.varint("shard next key");
    const auto tuples = cursor.varint("shard tuple count");
    reserve_capped(shard.tuples, tuples);
    for (std::uint64_t i = 0; i < tuples; ++i) {
      stream::StoredTuple stored;
      stored.last_seen = cursor.varint("tuple last seen");
      stored.key = cursor.varint("tuple key");
      stored.tuple = get_tuple(cursor);
      shard.tuples.push_back(std::move(stored));
    }
  }
  if (!cursor.done()) throw StoreError("store: trailing bytes in state file");
  return state;
}

// ------------------------------------------------------------------ manifest

bool Manifest::has_checkpoint(stream::Epoch epoch) const noexcept {
  return std::find(checkpoints.begin(), checkpoints.end(), epoch) != checkpoints.end();
}

std::vector<std::uint8_t> encode_manifest(const Manifest& manifest) {
  std::vector<std::uint8_t> payload;
  put_varint(payload, manifest.checkpoints.size());
  stream::Epoch prev = 0;
  bool first = true;
  for (const auto epoch : manifest.checkpoints) {
    if (!first && epoch <= prev) {
      throw StoreError("store: manifest checkpoints must ascend");
    }
    put_varint(payload, first ? epoch : epoch - prev);
    prev = epoch;
    first = false;
  }
  put_varint(payload, manifest.wal_start_seq);
  return seal_file(kManifestMagic, std::move(payload));
}

Manifest decode_manifest(std::span<const std::uint8_t> bytes) {
  Cursor cursor{open_file(kManifestMagic, bytes, "manifest")};
  Manifest manifest;
  const auto count = cursor.varint("checkpoint count");
  reserve_capped(manifest.checkpoints, count);
  stream::Epoch prev = 0;
  bool first = true;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto delta = cursor.varint("checkpoint epoch");
    if (!first && delta == 0) throw StoreError("store: manifest checkpoints must ascend");
    const auto epoch = first ? delta : prev + delta;
    manifest.checkpoints.push_back(epoch);
    prev = epoch;
    first = false;
  }
  manifest.wal_start_seq = cursor.varint("wal start seq");
  if (!cursor.done()) throw StoreError("store: trailing bytes in manifest");
  return manifest;
}

// ---------------------------------------------------------------- index file

std::vector<std::uint8_t> encode_index_file(std::span<const std::uint8_t> image) {
  return seal_file(kIndexMagic, std::vector<std::uint8_t>(image.begin(), image.end()));
}

std::span<const std::uint8_t> index_file_payload(std::span<const std::uint8_t> bytes) {
  return open_file(kIndexMagic, bytes, "index file");
}

// ---------------------------------------------------------------- file names

std::string segment_path(const std::string& dir, std::uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%012llu.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

std::string manifest_path(const std::string& dir) { return dir + "/MANIFEST"; }

std::string checkpoint_path(const std::string& dir, stream::Epoch epoch,
                            const char* suffix) {
  char name[48];
  std::snprintf(name, sizeof(name), "ckpt-%012llu%s",
                static_cast<unsigned long long>(epoch), suffix);
  return dir + "/" + name;
}

bool parse_segment_name(const std::string& name, std::uint64_t& seq) {
  if (name.size() != 4 + 12 + 4 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(16, 4, ".log") != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 4; i < 16; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  seq = value;
  return true;
}

bool parse_checkpoint_name(const std::string& name, const char* suffix,
                           stream::Epoch& epoch) {
  const std::string tail(suffix);
  if (name.size() != 5 + 12 + tail.size() || name.compare(0, 5, "ckpt-") != 0 ||
      name.compare(17, tail.size(), tail) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  for (std::size_t i = 5; i < 17; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  epoch = value;
  return true;
}

}  // namespace bgpcu::store
