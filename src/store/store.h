// The durable store orchestrator: owns a data directory holding WAL
// segments, wire-format checkpoints, and the manifest, and wires them to an
// api::Service. The Service itself stays storage-agnostic — the serving
// daemon drives the store explicitly:
//
//   store::Store store({.dir = data_dir});
//   auto recovery = store.recover(service);      // before serving traffic
//   feed.restore_marks(recovery.feed_marks);
//   service.set_history_provider([&](bgp::Asn a) { return store.history(a); });
//   loop:
//     store.append_epoch_batch(epoch, poll.batch, feed.export_marks());
//     service.ingest(...); service.publish() -> delta;
//     store.append_epoch_delta(delta);           // also the epoch fsync point
//     store.maybe_checkpoint(service);
//   shutdown: store.checkpoint(service);
//
// Failure model: append/checkpoint IO errors (disk full, EIO) degrade the
// store — the error is logged and counted, degraded() flips true, and the
// service keeps running in-memory-only. Recovery treats every unreadable or
// corrupt byte range as absent (truncate-and-warn), never as fatal.
#ifndef BGPCU_STORE_STORE_H
#define BGPCU_STORE_STORE_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/service.h"
#include "store/format.h"
#include "store/wal.h"
#include "stream/feed.h"

namespace bgpcu::store {

struct StoreConfig {
  std::string dir;
  SyncPolicy sync = SyncPolicy::kEpoch;
  std::uint64_t segment_max_bytes = 16ull * 1024 * 1024;
  /// Checkpoint cadence for maybe_checkpoint(): a checkpoint is written when
  /// the current epoch is at least this far past the newest one. 0 disables
  /// automatic checkpoints (explicit checkpoint() still works).
  std::uint64_t checkpoint_every_epochs = 16;
  /// Time-based cadence, in seconds: maybe_checkpoint() also fires once this
  /// long has passed since the last checkpoint AND the current epoch has
  /// durable state no checkpoint covers yet. Whichever cadence (epoch or
  /// time) fires first wins. Protects quiet feeds: a trickle of epochs can
  /// sit under checkpoint_every_epochs forever, leaving an ever-growing WAL
  /// tail to replay after a crash. 0 disables the time cadence.
  std::uint64_t checkpoint_interval_sec = 0;
  /// Retained checkpoint history depth (the kHistory substrate). Clamped >= 1.
  std::uint64_t retain_checkpoints = 8;
};

/// What recovery found and did.
struct RecoveryStats {
  bool recovered = false;             ///< Any checkpoint loaded or record replayed.
  std::optional<stream::Epoch> checkpoint_epoch;  ///< Base checkpoint, if any.
  bool index_image_loaded = false;    ///< Dense arrays came back without rebuild.
  stream::Epoch resume_epoch = 0;     ///< Engine epoch after replay.
  std::uint64_t batches_replayed = 0;
  std::uint64_t deltas_replayed = 0;
  std::uint64_t truncated_records = 0;
  stream::FeedMarks feed_marks;       ///< Newest durable feed offsets.
  std::vector<std::string> warnings;
  std::uint64_t duration_ms = 0;
};

class Store {
 public:
  /// Opens (creating if needed) the data directory and loads the manifest.
  /// A corrupt or missing manifest falls back to scanning the directory for
  /// decodable checkpoints. Throws StoreError only when the directory cannot
  /// be created/scanned at all.
  explicit Store(StoreConfig config);

  /// Loads the newest valid checkpoint into `service`, replays the WAL tail
  /// (advancing epochs and re-ingesting recorded batches — deterministic,
  /// idempotent at the boundary epoch), seeds the event log with recovered
  /// deltas, and re-anchors the publish baseline. Call once, before serving.
  RecoveryStats recover(api::Service& service);

  /// Logs one epoch's ingest batch + post-poll feed offsets, *before* the
  /// batch is applied to the engine. Degrades on IO failure (returns false).
  bool append_epoch_batch(stream::Epoch epoch, const core::Dataset& batch,
                          stream::FeedMarks marks);

  /// Logs one published epoch delta (skipped when empty) and, under
  /// SyncPolicy::kEpoch, fsyncs the segment — the epoch's durability point.
  /// Degrades on IO failure (returns false).
  bool append_epoch_delta(const api::EpochDelta& delta);

  /// Writes a checkpoint when the cadence says so. Returns true if one was
  /// written. Degrades on IO failure.
  bool maybe_checkpoint(api::Service& service);

  /// Writes a checkpoint now: snapshot + engine state (+ index image) each
  /// tmp+renamed, then the manifest (the commit point), then GC of dead WAL
  /// segments and expired checkpoints. Returns false (degraded) on IO
  /// failure — recovery then uses the previous checkpoint.
  bool checkpoint(api::Service& service);

  /// Class-evolution points for `asn` across the retained checkpoints plus
  /// the WAL delta tail, strictly ascending, class changes only. Safe to
  /// call from query threads.
  [[nodiscard]] std::vector<api::HistoryPoint> history(bgp::Asn asn) const;

  /// True after any append/checkpoint IO failure (in-memory-only mode).
  [[nodiscard]] bool degraded() const;

  [[nodiscard]] Manifest manifest() const;
  [[nodiscard]] const StoreConfig& config() const noexcept { return config_; }

 private:
  bool guard_io(const char* what, const std::function<void()>& op);
  void checkpoint_locked(api::Service& service);
  void gc_locked();
  [[nodiscard]] Manifest load_or_rebuild_manifest(std::vector<std::string>& warnings) const;

  StoreConfig config_;
  mutable std::mutex mutex_;
  /// Base of the time cadence: construction, then each written checkpoint.
  std::chrono::steady_clock::time_point last_checkpoint_time_;
  Manifest manifest_;
  std::unique_ptr<WalWriter> wal_;
  bool degraded_ = false;
  stream::FeedMarks last_marks_;  ///< Newest marks passed to append_epoch_batch.
  /// Delta tail newer than the newest checkpoint, for history queries (so a
  /// kHistory never re-reads WAL segments). Pruned at each checkpoint.
  std::vector<api::EpochDelta> recent_deltas_;
  /// Decoded snapshot cache for history assembly, keyed by checkpoint epoch.
  mutable std::map<stream::Epoch, stream::SnapshotPtr> snapshot_cache_;
};

/// Reads the newest decodable checkpoint state in `dir` without a Store:
/// offline tools (bgpcu_store compact/history) use the embedded config
/// fingerprint to construct a matching Service. nullopt when none decodes.
[[nodiscard]] std::optional<StateFile> load_newest_state(const std::string& dir);

/// Builds a ServiceConfig from a state file's fingerprint.
[[nodiscard]] api::ServiceConfig service_config_from(const StateFile& state);

}  // namespace bgpcu::store

#endif  // BGPCU_STORE_STORE_H
