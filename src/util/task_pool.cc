#include "util/task_pool.h"

namespace bgpcu::util {

TaskPool::TaskPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void TaskPool::drain(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.count) return;
    try {
      (*job.body)(i);
    } catch (...) {
      const std::lock_guard lock(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    job.remaining.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void TaskPool::worker_loop() {
  std::uint64_t last_seq = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_seq_ != last_seq); });
      if (stop_) return;
      job = job_;
      last_seq = job_seq_;
      ++job->active;
    }
    drain(*job);
    // The active count is the lifetime guard: the submitter frees the Job
    // (stack storage) only once active drops to zero, and both the drop and
    // the submitter's check happen under mutex_, so this is a worker's last
    // touch of the job.
    {
      const std::lock_guard lock(mutex_);
      --job->active;
      done_cv_.notify_all();
    }
  }
}

void TaskPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Job job;
  job.body = &body;
  job.count = count;
  job.remaining.store(count, std::memory_order_relaxed);

  const std::lock_guard submit(submit_mutex_);
  {
    const std::lock_guard lock(mutex_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();

  drain(job);  // The caller is always one of the lanes.

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 && job.active == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

TaskPool& TaskPool::shared() {
  static TaskPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
  }());
  return pool;
}

}  // namespace bgpcu::util
