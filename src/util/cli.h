// Shared flag-parsing helpers for the tool binaries. Every tool validates
// numeric flags the same way (strtoull/strtod + errno, explicit sign
// rejection because strtoull silently wraps "-1", one-line diagnostic on
// stderr, exit code 2); keeping the logic here stops the tools from
// drifting apart one fix at a time.
#ifndef BGPCU_UTIL_CLI_H
#define BGPCU_UTIL_CLI_H

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bgp/asn.h"

namespace bgpcu::util {

/// Parses a non-negative integer flag value; prints `flag needs a
/// non-negative integer` and exits 2 on anything else.
inline std::uint64_t parse_u64_or_exit(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const auto value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || text.empty() || text[0] == '-' ||
      text[0] == '+') {
    std::cerr << flag << " needs a non-negative integer, got '" << text << "'\n";
    std::exit(2);
  }
  return value;
}

/// Parses a 32-bit ASN; exits 2 with `ASN must be ...` otherwise.
inline bgp::Asn parse_asn_or_exit(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const auto value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value > 0xFFFFFFFFull) {
    std::cerr << "ASN must be a 32-bit unsigned integer, got '" << text << "'\n";
    std::exit(2);
  }
  return static_cast<bgp::Asn>(value);
}

/// Parses a classification threshold in [0.5, 1.0]; exits 2 otherwise.
inline double parse_threshold_or_exit(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  // The negated in-range form also rejects NaN, which compares false both ways.
  if (errno != 0 || end == text.c_str() || *end != '\0' || !(value >= 0.5 && value <= 1.0)) {
    std::cerr << "--threshold must be a number in [0.5, 1.0], got '" << text << "'\n";
    std::exit(2);
  }
  return value;
}

/// Parses a comma-separated ASN list ("3356,1299"); exits 2 (with the flag
/// named) on an empty token, a non-number, or an out-of-range ASN.
inline std::vector<bgp::Asn> parse_asn_list_or_exit(const std::string& flag,
                                                    const std::string& text) {
  std::vector<bgp::Asn> asns;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const auto token = text.substr(start, comma - start);
    const auto value = parse_u64_or_exit(flag, token);
    if (value > 0xFFFFFFFFull) {
      std::cerr << flag << " ASN out of 32-bit range: " << token << "\n";
      std::exit(2);
    }
    asns.push_back(static_cast<bgp::Asn>(value));
    start = comma + 1;
  }
  return asns;
}

}  // namespace bgpcu::util

#endif  // BGPCU_UTIL_CLI_H
