// Shared flag-parsing helpers for the tool binaries. Every tool validates
// numeric flags the same way (an explicit plain-digit-string gate in front
// of strtoull/strtod, because the C parsers silently accept leading
// whitespace and sign characters and silently wrap "-1"; one-line
// diagnostic on stderr, exit code 2); keeping the logic here stops the
// tools from drifting apart one fix at a time.
#ifndef BGPCU_UTIL_CLI_H
#define BGPCU_UTIL_CLI_H

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bgp/asn.h"

namespace bgpcu::util {

/// True iff `text` is one or more ASCII decimal digits and nothing else —
/// the only integer spelling the tools accept. Notably rejects everything
/// strtoull waves through on its own: leading whitespace ("\t80"), sign
/// characters ("+80", "-1"), and any trailing junk ("80 ", "8_0").
[[nodiscard]] inline bool is_plain_decimal(const std::string& text) noexcept {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

/// Parses a non-negative integer flag value; prints `flag needs a
/// non-negative integer` and exits 2 on anything else.
inline std::uint64_t parse_u64_or_exit(const std::string& flag, const std::string& text) {
  const bool plain = is_plain_decimal(text);
  errno = 0;
  const auto value = plain ? std::strtoull(text.c_str(), nullptr, 10) : 0;
  if (!plain || errno != 0) {
    std::cerr << flag << " needs a non-negative integer, got '" << text << "'\n";
    std::exit(2);
  }
  return value;
}

/// Parses a 32-bit ASN; exits 2 with `ASN must be ...` otherwise.
inline bgp::Asn parse_asn_or_exit(const std::string& text) {
  const bool plain = is_plain_decimal(text);
  errno = 0;
  const auto value = plain ? std::strtoull(text.c_str(), nullptr, 10) : 0;
  if (!plain || errno != 0 || value > 0xFFFFFFFFull) {
    std::cerr << "ASN must be a 32-bit unsigned integer, got '" << text << "'\n";
    std::exit(2);
  }
  return static_cast<bgp::Asn>(value);
}

/// Parses a classification threshold in [0.5, 1.0]; exits 2 otherwise. Only
/// plain decimal spellings (digits and '.') reach strtod: its tolerance for
/// leading whitespace, signs, hex floats, and "inf"/"nan" is rejected up
/// front, and strtod itself rejects malformed dot arrangements ("..5").
inline double parse_threshold_or_exit(const std::string& text) {
  bool plain = !text.empty();
  for (const char c : text) {
    if (!((c >= '0' && c <= '9') || c == '.')) plain = false;
  }
  char* end = nullptr;
  errno = 0;
  const double value = plain ? std::strtod(text.c_str(), &end) : 0.0;
  // The negated in-range form also rejects NaN, which compares false both ways.
  if (!plain || errno != 0 || end == text.c_str() || *end != '\0' ||
      !(value >= 0.5 && value <= 1.0)) {
    std::cerr << "--threshold must be a number in [0.5, 1.0], got '" << text << "'\n";
    std::exit(2);
  }
  return value;
}

/// Parses a comma-separated ASN list ("3356,1299"); exits 2 (with the flag
/// named) on an empty token, a non-number, or an out-of-range ASN.
inline std::vector<bgp::Asn> parse_asn_list_or_exit(const std::string& flag,
                                                    const std::string& text) {
  std::vector<bgp::Asn> asns;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const auto token = text.substr(start, comma - start);
    const auto value = parse_u64_or_exit(flag, token);
    if (value > 0xFFFFFFFFull) {
      std::cerr << flag << " ASN out of 32-bit range: " << token << "\n";
      std::exit(2);
    }
    asns.push_back(static_cast<bgp::Asn>(value));
    start = comma + 1;
  }
  return asns;
}

}  // namespace bgpcu::util

#endif  // BGPCU_UTIL_CLI_H
