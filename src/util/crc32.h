// IEEE CRC-32 (the zlib/PNG polynomial), shared by the durable store's
// record framing and the core index image. Table-driven, no dependencies;
// kept in util so both core and store can use it without a layering edge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bgpcu::util {

/// Continues a CRC-32 computation. Start with `crc = 0` and feed chunks in
/// order; the final value matches zlib's crc32() over the concatenation.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t crc,
                                         const std::uint8_t* data,
                                         std::size_t size) noexcept;

/// One-shot CRC-32 of a byte span.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  return crc32_update(0, bytes.data(), bytes.size());
}

}  // namespace bgpcu::util
