#include "util/crc32.h"

#include <array>

namespace bgpcu::util {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

/// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
/// table[k][b] is the CRC of byte b followed by k zero bytes. Eight lookups
/// advance eight input bytes per iteration, roughly 4-5x the single-table
/// throughput — this sits under every WAL record seal and every recovery
/// walk, so the constant matters.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables[0][n] = c;
  }
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = tables[0][n];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][n] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = make_tables();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t size) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  while (size >= 8) {
    // Little-endian-agnostic: bytes are folded individually, so the result
    // matches the byte-at-a-time loop on any host.
    const std::uint32_t lo = c ^ (static_cast<std::uint32_t>(data[0]) |
                                  (static_cast<std::uint32_t>(data[1]) << 8) |
                                  (static_cast<std::uint32_t>(data[2]) << 16) |
                                  (static_cast<std::uint32_t>(data[3]) << 24));
    const std::uint32_t hi = static_cast<std::uint32_t>(data[4]) |
                             (static_cast<std::uint32_t>(data[5]) << 8) |
                             (static_cast<std::uint32_t>(data[6]) << 16) |
                             (static_cast<std::uint32_t>(data[7]) << 24);
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    data += 8;
    size -= 8;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace bgpcu::util
