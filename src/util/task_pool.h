// A fixed-size worker-thread pool with a blocking parallel-for primitive —
// the execution substrate for the parallel sweep kernel (core/engine.cc) and
// any future data-parallel hot path. Iteration indices are claimed
// dynamically one at a time (an atomic increment plus a type-erased call
// each), so callers pass a small count of coarse-grained tasks — e.g. one
// lane per worker, each lane iterating its own contiguous slice — rather
// than one index per element. Design constraints, in order:
//
//   1. Deterministic decomposition: parallel_for hands out iteration indices
//      0..count-1; *which thread* runs an index is scheduling-dependent, so
//      callers that need bit-reproducible output keep per-index (not
//      per-thread) state and merge in index order after the call returns.
//   2. Degenerate hardware: a pool may have zero workers (single-core
//      containers); the calling thread always participates in draining the
//      iteration space, so parallel_for makes progress with any pool size
//      and any requested count.
//   3. One-time thread cost: workers are spawned once and parked on a
//      condition variable between jobs — a sweep that runs every few seconds
//      must not pay thread creation per snapshot.
#ifndef BGPCU_UTIL_TASK_POOL_H
#define BGPCU_UTIL_TASK_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgpcu::util {

/// Fixed worker threads + blocking parallel-for over coarse task indices.
class TaskPool {
 public:
  /// Spawns `workers` background threads. Zero is valid: every parallel_for
  /// then runs entirely on the calling thread (serial, but API-compatible).
  explicit TaskPool(std::size_t workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Background worker count (excludes the calling thread).
  [[nodiscard]] std::size_t workers() const noexcept { return workers_.size(); }

  /// Threads that can make progress inside parallel_for: workers + caller.
  [[nodiscard]] std::size_t parallelism() const noexcept { return workers_.size() + 1; }

  /// Runs body(i) exactly once for every i in [0, count), distributing
  /// indices dynamically across the workers and the calling thread, and
  /// blocks until all iterations finish. Concurrent parallel_for calls from
  /// different threads serialize on an internal mutex (the latecomer's
  /// caller still participates once its job starts). If any iteration
  /// throws, the first exception is rethrown on the calling thread after the
  /// remaining iterations complete.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide pool sized to the machine (hardware_concurrency - 1
  /// workers; zero on single-core hosts). Lazily constructed, never torn
  /// down before static destruction.
  static TaskPool& shared();

 private:
  /// One parallel_for invocation in flight.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};       ///< Next unclaimed index.
    std::atomic<std::size_t> remaining{0};  ///< Unfinished iterations.
    std::size_t active = 0;  ///< Workers inside the job (guarded by pool mutex_).
    std::exception_ptr error;               ///< First failure, if any.
    std::mutex error_mutex;
  };

  void worker_loop();
  /// Claims and runs indices until the job is drained.
  static void drain(Job& job);

  std::mutex mutex_;                 ///< Guards job_/job_seq_/stop_.
  std::condition_variable work_cv_;  ///< Workers park here between jobs.
  std::condition_variable done_cv_;  ///< Submitter waits for remaining == 0.
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
  std::mutex submit_mutex_;  ///< Serializes concurrent parallel_for calls.
  std::vector<std::thread> workers_;
};

}  // namespace bgpcu::util

#endif  // BGPCU_UTIL_TASK_POOL_H
