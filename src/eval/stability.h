// Stability tracking for the incremental multi-day experiment (Fig. 3):
// classifies the cumulative dataset day by day and, for each full class
// (tf/tc/sf/sc), counts how many ASes are *new* (first day ever in that
// class), *stable* (in the class every day since day 1), or *recurring*
// (returned after an interruption).
#ifndef BGPCU_EVAL_STABILITY_H
#define BGPCU_EVAL_STABILITY_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

namespace bgpcu::eval {

/// Index of a full class in the tracker's arrays.
enum class FullClass : std::uint8_t { kTf = 0, kTc = 1, kSf = 2, kSc = 3, kCount };

[[nodiscard]] const char* to_string(FullClass cls) noexcept;

/// Per-day membership counts for one class.
struct DayCounts {
  std::uint64_t fresh = 0;      ///< First-ever appearance in the class.
  std::uint64_t stable = 0;     ///< Present every day since day 0.
  std::uint64_t recurring = 0;  ///< Reappeared after a gap.
  [[nodiscard]] std::uint64_t total() const noexcept { return fresh + stable + recurring; }
};

/// Feed one inference result per day (cumulative input upstream); read the
/// per-class series afterwards.
class StabilityTracker {
 public:
  /// Records day `day_count()`'s classification.
  void add_day(const core::InferenceResult& result);

  [[nodiscard]] std::size_t day_count() const noexcept { return days_; }

  /// Series for one class, one entry per day.
  [[nodiscard]] const std::vector<DayCounts>& series(FullClass cls) const {
    return series_[static_cast<std::size_t>(cls)];
  }

 private:
  struct Membership {
    std::uint32_t first_day = 0;
    std::uint32_t last_day = 0;
    bool since_day0 = false;  ///< Contiguous membership starting at day 0.
  };

  std::size_t days_ = 0;
  std::array<std::unordered_map<bgp::Asn, Membership>,
             static_cast<std::size_t>(FullClass::kCount)>
      members_;
  std::array<std::vector<DayCounts>, static_cast<std::size_t>(FullClass::kCount)> series_;
};

}  // namespace bgpcu::eval

#endif  // BGPCU_EVAL_STABILITY_H
