// ROC threshold sweep (Fig. 2): re-runs the full inference for every
// threshold in [50%, 100%] and reports true/false-positive rates for the
// tagging and forwarding classifiers.
//
// Positive classes follow the paper's action-relevant reading: the tagging
// classifier detects *consistent taggers* (selective taggers count as
// negatives — they are not consistent), the forwarding classifier detects
// *cleaners*. Rates are computed over visible (non-hidden, non-leaf) ASes.
#ifndef BGPCU_EVAL_ROC_H
#define BGPCU_EVAL_ROC_H

#include <vector>

#include "core/engine.h"
#include "sim/scenario.h"

namespace bgpcu::eval {

/// One operating point.
struct RocPoint {
  double threshold = 0.0;
  double tagging_tpr = 0.0;
  double tagging_fpr = 0.0;
  double forwarding_tpr = 0.0;
  double forwarding_fpr = 0.0;
};

/// Sweeps thresholds from `lo` to `hi` percent (inclusive) in steps of
/// `step` percent; each point re-runs the column engine on the ground
/// truth's dataset with uniform thresholds.
[[nodiscard]] std::vector<RocPoint> roc_sweep(const topology::GeneratedTopology& topo,
                                              const sim::GroundTruth& truth, unsigned lo = 50,
                                              unsigned hi = 100, unsigned step = 5);

}  // namespace bgpcu::eval

#endif  // BGPCU_EVAL_ROC_H
