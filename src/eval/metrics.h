// Scenario scoring: confusion matrices in the shape of the paper's Tables 5
// and 6 (assigned role — including hidden/leaf sub-rows — versus inferred
// class), the recall/precision numbers of Table 2, and the combined-class
// histogram (full / partial / none-undecided columns).
//
// Metric definitions (documented here because the paper leaves some corner
// semantics open; these choices reproduce Table 2's reported values within
// seed noise):
//  * recall denominator ("eligible"): present, visible (non-hidden) ASes
//    with a true behavior to recover — including selective taggers, whose
//    partial behavior the algorithm is expected to surface; for forwarding,
//    leaf ASes are excluded ("missing" behavior, §6.3).
//  * recall numerator: eligible ASes whose inferred class matches the role;
//    a selective tagger counts as recalled when inferred tagger.
//  * precision: over present, non-hidden ASes with a *decided* class
//    (tagger/silent resp. forward/cleaner). A selective tagger inferred as
//    tagger counts as correct (it does tag); inferred as silent counts as
//    wrong.
#ifndef BGPCU_EVAL_METRICS_H
#define BGPCU_EVAL_METRICS_H

#include <array>
#include <cstdint>
#include <string>

#include "core/engine.h"
#include "sim/scenario.h"

namespace bgpcu::eval {

/// Confusion-matrix row kinds for tagging (Tables 5).
enum class TagRow : std::uint8_t {
  kTagger = 0,
  kSilent,
  kSelective,
  kTaggerHidden,
  kSilentHidden,
  kSelectiveHidden,
  kCount,
};

/// Confusion-matrix row kinds for forwarding (Table 6).
enum class FwdRow : std::uint8_t {
  kForward = 0,
  kCleaner,
  kForwardHidden,
  kCleanerHidden,
  kForwardLeaf,
  kCleanerLeaf,
  kCount,
};

[[nodiscard]] const char* to_string(TagRow row) noexcept;
[[nodiscard]] const char* to_string(FwdRow row) noexcept;

/// Columns are the inferred classes: decided-positive, decided-negative,
/// undecided, none — i.e. (tagger, silent, undecided, none) for tagging and
/// (forward, cleaner, undecided, none) for forwarding.
template <typename RowEnum>
struct Confusion {
  std::array<std::array<std::uint64_t, 4>, static_cast<std::size_t>(RowEnum::kCount)> m{};

  [[nodiscard]] std::uint64_t at(RowEnum row, std::size_t col) const {
    return m[static_cast<std::size_t>(row)][col];
  }
  void bump(RowEnum row, std::size_t col) { ++m[static_cast<std::size_t>(row)][col]; }

  /// Sum over one row.
  [[nodiscard]] std::uint64_t row_total(RowEnum row) const {
    std::uint64_t t = 0;
    for (const auto v : m[static_cast<std::size_t>(row)]) t += v;
    return t;
  }
};

using TaggingConfusion = Confusion<TagRow>;
using ForwardingConfusion = Confusion<FwdRow>;

/// Precision / recall with their raw ingredients.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
  std::uint64_t decided = 0;          ///< Precision denominator.
  std::uint64_t decided_correct = 0;  ///< Precision numerator.
  std::uint64_t eligible = 0;         ///< Recall denominator.
  std::uint64_t correct = 0;          ///< Recall numerator.
};

/// Combined-class histogram, the paper's Table 2 columns.
struct ClassHistogram {
  std::uint64_t tf = 0, tc = 0, sf = 0, sc = 0;        ///< Full classification.
  std::uint64_t tn = 0, sn = 0, nf = 0, nc = 0;        ///< Partial.
  std::uint64_t nn = 0, tag_u = 0, fwd_u = 0, uu = 0;  ///< none / undecided.
};

/// Everything a Table-2 row / Tables-5-6 block needs.
struct ScenarioEvaluation {
  TaggingConfusion tagging;
  ForwardingConfusion forwarding;
  PrecisionRecall tagging_pr;
  PrecisionRecall forwarding_pr;
  ClassHistogram classes;
};

/// Scores `result` against the ground truth. Only ASes present in the
/// substrate are counted.
[[nodiscard]] ScenarioEvaluation evaluate_scenario(const topology::GeneratedTopology& topo,
                                                   const sim::GroundTruth& truth,
                                                   const core::InferenceResult& result);

}  // namespace bgpcu::eval

#endif  // BGPCU_EVAL_METRICS_H
