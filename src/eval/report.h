// Fixed-width console table formatting shared by the bench binaries so every
// regenerated table/figure prints in a consistent, paper-like layout.
#ifndef BGPCU_EVAL_REPORT_H
#define BGPCU_EVAL_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bgpcu::eval {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal rule before the next row.
  void add_rule();

  /// Renders with two-space column gaps; first column left-aligned, the rest
  /// right-aligned (number-style).
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

/// 12345678 -> "12,345,678".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Compact human form: 9123456789 -> "9,123M"; small values unchanged.
[[nodiscard]] std::string human_count(std::uint64_t value);

/// Fixed two-decimal percentage/ratio formatting ("0.93").
[[nodiscard]] std::string ratio2(double value);

}  // namespace bgpcu::eval

#endif  // BGPCU_EVAL_REPORT_H
