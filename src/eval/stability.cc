#include "eval/stability.h"

namespace bgpcu::eval {

const char* to_string(FullClass cls) noexcept {
  switch (cls) {
    case FullClass::kTf:
      return "tagger-forward";
    case FullClass::kTc:
      return "tagger-cleaner";
    case FullClass::kSf:
      return "silent-forward";
    case FullClass::kSc:
      return "silent-cleaner";
    case FullClass::kCount:
      break;
  }
  return "?";
}

void StabilityTracker::add_day(const core::InferenceResult& result) {
  const auto day = static_cast<std::uint32_t>(days_);
  std::array<DayCounts, static_cast<std::size_t>(FullClass::kCount)> today{};

  for (const auto& [asn, counters] : result.counter_map()) {
    const auto usage = core::classify(counters, result.thresholds());
    if (!usage.full()) continue;
    const bool tagger = usage.tagging == core::TaggingClass::kTagger;
    const bool cleaner = usage.forwarding == core::ForwardingClass::kCleaner;
    const auto cls = static_cast<std::size_t>(tagger ? (cleaner ? FullClass::kTc : FullClass::kTf)
                                                     : (cleaner ? FullClass::kSc : FullClass::kSf));

    auto [it, inserted] = members_[cls].try_emplace(asn);
    Membership& member = it->second;
    if (inserted) {
      member.first_day = day;
      member.last_day = day;
      member.since_day0 = (day == 0);
      ++today[cls].fresh;
    } else {
      const bool contiguous = member.last_day + 1 == day || member.last_day == day;
      member.since_day0 = member.since_day0 && contiguous;
      if (member.since_day0) {
        ++today[cls].stable;
      } else if (!contiguous) {
        ++today[cls].recurring;
      } else {
        // Contiguous run that did not start at day 0: it began as "fresh"
        // on a later day; keep counting it as recurring per the paper's
        // new/stable/recurring trichotomy.
        ++today[cls].recurring;
      }
      member.last_day = day;
    }
  }

  for (std::size_t cls = 0; cls < today.size(); ++cls) {
    series_[cls].push_back(today[cls]);
  }
  ++days_;
}

}  // namespace bgpcu::eval
