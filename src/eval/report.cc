#include "eval/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace bgpcu::eval {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  const auto measure = [&width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      if (i == 0) {
        os << cell << std::string(width[i] - cell.size(), ' ');
      } else {
        os << "  " << std::string(width[i] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = width.empty() ? 0 : width[0];
  for (std::size_t i = 1; i < width.size(); ++i) total += width[i] + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total, '-') << '\n';
    } else {
      emit(row);
    }
  }
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string human_count(std::uint64_t value) {
  if (value >= 10'000'000ull) {
    return with_commas(value / 1'000'000ull) + "M";
  }
  return with_commas(value);
}

std::string ratio2(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  return buf;
}

}  // namespace bgpcu::eval
