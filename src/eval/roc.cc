#include "eval/roc.h"

namespace bgpcu::eval {

std::vector<RocPoint> roc_sweep(const topology::GeneratedTopology& topo,
                                const sim::GroundTruth& truth, unsigned lo, unsigned hi,
                                unsigned step) {
  std::vector<RocPoint> out;
  for (unsigned pct = lo; pct <= hi; pct += step) {
    core::EngineConfig config;
    config.thresholds = core::Thresholds::uniform(static_cast<double>(pct) / 100.0);
    const auto result = core::ColumnEngine(config).run(truth.dataset);

    std::uint64_t tag_pos = 0, tag_tp = 0, tag_neg = 0, tag_fp = 0;
    std::uint64_t fwd_pos = 0, fwd_tp = 0, fwd_neg = 0, fwd_fp = 0;

    for (topology::NodeId node = 0; node < topo.graph.node_count(); ++node) {
      if (!truth.present[node]) continue;
      const bgp::Asn asn = topo.graph.asn_of(node);
      const sim::Role& role = truth.roles[node];

      if (!truth.tagging_hidden[node]) {
        const bool predicted = result.tagging(asn) == core::TaggingClass::kTagger;
        if (role.tagger && !role.is_selective()) {
          ++tag_pos;
          if (predicted) ++tag_tp;
        } else {
          ++tag_neg;
          if (predicted) ++tag_fp;
        }
      }
      if (!truth.leaf[node] && !truth.forwarding_hidden[node]) {
        const bool predicted = result.forwarding(asn) == core::ForwardingClass::kCleaner;
        if (role.cleaner) {
          ++fwd_pos;
          if (predicted) ++fwd_tp;
        } else {
          ++fwd_neg;
          if (predicted) ++fwd_fp;
        }
      }
    }

    RocPoint point;
    point.threshold = static_cast<double>(pct) / 100.0;
    point.tagging_tpr =
        tag_pos ? static_cast<double>(tag_tp) / static_cast<double>(tag_pos) : 0.0;
    point.tagging_fpr =
        tag_neg ? static_cast<double>(tag_fp) / static_cast<double>(tag_neg) : 0.0;
    point.forwarding_tpr =
        fwd_pos ? static_cast<double>(fwd_tp) / static_cast<double>(fwd_pos) : 0.0;
    point.forwarding_fpr =
        fwd_neg ? static_cast<double>(fwd_fp) / static_cast<double>(fwd_neg) : 0.0;
    out.push_back(point);
  }
  return out;
}

}  // namespace bgpcu::eval
