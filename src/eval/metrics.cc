#include "eval/metrics.h"

namespace bgpcu::eval {

namespace {

// Column index for an inferred tagging class: 0 tagger, 1 silent,
// 2 undecided, 3 none.
std::size_t tag_col(core::TaggingClass c) {
  switch (c) {
    case core::TaggingClass::kTagger:
      return 0;
    case core::TaggingClass::kSilent:
      return 1;
    case core::TaggingClass::kUndecided:
      return 2;
    case core::TaggingClass::kNone:
      return 3;
  }
  return 3;
}

std::size_t fwd_col(core::ForwardingClass c) {
  switch (c) {
    case core::ForwardingClass::kForward:
      return 0;
    case core::ForwardingClass::kCleaner:
      return 1;
    case core::ForwardingClass::kUndecided:
      return 2;
    case core::ForwardingClass::kNone:
      return 3;
  }
  return 3;
}

void finalize(PrecisionRecall& pr) {
  pr.precision = pr.decided == 0
                     ? 0.0
                     : static_cast<double>(pr.decided_correct) / static_cast<double>(pr.decided);
  pr.recall = pr.eligible == 0
                  ? 0.0
                  : static_cast<double>(pr.correct) / static_cast<double>(pr.eligible);
}

}  // namespace

const char* to_string(TagRow row) noexcept {
  switch (row) {
    case TagRow::kTagger:
      return "tagger";
    case TagRow::kSilent:
      return "silent";
    case TagRow::kSelective:
      return "selective";
    case TagRow::kTaggerHidden:
      return "tagger (hidden)";
    case TagRow::kSilentHidden:
      return "silent (hidden)";
    case TagRow::kSelectiveHidden:
      return "selective (hidden)";
    case TagRow::kCount:
      break;
  }
  return "?";
}

const char* to_string(FwdRow row) noexcept {
  switch (row) {
    case FwdRow::kForward:
      return "forward";
    case FwdRow::kCleaner:
      return "cleaner";
    case FwdRow::kForwardHidden:
      return "forward (hidden)";
    case FwdRow::kCleanerHidden:
      return "cleaner (hidden)";
    case FwdRow::kForwardLeaf:
      return "forward (leaf)";
    case FwdRow::kCleanerLeaf:
      return "cleaner (leaf)";
    case FwdRow::kCount:
      break;
  }
  return "?";
}

ScenarioEvaluation evaluate_scenario(const topology::GeneratedTopology& topo,
                                     const sim::GroundTruth& truth,
                                     const core::InferenceResult& result) {
  ScenarioEvaluation ev;

  for (topology::NodeId node = 0; node < topo.graph.node_count(); ++node) {
    if (!truth.present[node]) continue;
    const bgp::Asn asn = topo.graph.asn_of(node);
    const sim::Role& role = truth.roles[node];
    const auto usage = result.usage(asn);

    // ---- Tagging confusion + metrics --------------------------------------
    {
      const bool hidden = truth.tagging_hidden[node];
      TagRow row;
      if (role.is_selective()) {
        row = hidden ? TagRow::kSelectiveHidden : TagRow::kSelective;
      } else if (role.tagger) {
        row = hidden ? TagRow::kTaggerHidden : TagRow::kTagger;
      } else {
        row = hidden ? TagRow::kSilentHidden : TagRow::kSilent;
      }
      ev.tagging.bump(row, tag_col(usage.tagging));

      const bool decided = usage.tagging == core::TaggingClass::kTagger ||
                           usage.tagging == core::TaggingClass::kSilent;
      if (!hidden) {
        // Precision: over decided, non-hidden ASes; a selective tagger
        // counts as correctly "tagger".
        if (decided) {
          ++ev.tagging_pr.decided;
          const bool correct = role.tagger
                                   ? usage.tagging == core::TaggingClass::kTagger
                                   : usage.tagging == core::TaggingClass::kSilent;
          if (correct) ++ev.tagging_pr.decided_correct;
        }
        // Recall: all visible behaviors, selective included (their tagging
        // counts as recovered only when inferred tagger).
        ++ev.tagging_pr.eligible;
        const bool correct = role.tagger ? usage.tagging == core::TaggingClass::kTagger
                                         : usage.tagging == core::TaggingClass::kSilent;
        if (correct) ++ev.tagging_pr.correct;
      }
    }

    // ---- Forwarding confusion + metrics ------------------------------------
    {
      const bool leaf = truth.leaf[node];
      const bool hidden = truth.forwarding_hidden[node];
      FwdRow row;
      if (leaf) {
        row = role.cleaner ? FwdRow::kCleanerLeaf : FwdRow::kForwardLeaf;
      } else if (hidden) {
        row = role.cleaner ? FwdRow::kCleanerHidden : FwdRow::kForwardHidden;
      } else {
        row = role.cleaner ? FwdRow::kCleaner : FwdRow::kForward;
      }
      ev.forwarding.bump(row, fwd_col(usage.forwarding));

      const bool decided = usage.forwarding == core::ForwardingClass::kForward ||
                           usage.forwarding == core::ForwardingClass::kCleaner;
      if (!leaf && !hidden) {
        if (decided) {
          ++ev.forwarding_pr.decided;
          const bool correct = role.cleaner
                                   ? usage.forwarding == core::ForwardingClass::kCleaner
                                   : usage.forwarding == core::ForwardingClass::kForward;
          if (correct) ++ev.forwarding_pr.decided_correct;
        }
        ++ev.forwarding_pr.eligible;
        const bool correct = role.cleaner
                                 ? usage.forwarding == core::ForwardingClass::kCleaner
                                 : usage.forwarding == core::ForwardingClass::kForward;
        if (correct) ++ev.forwarding_pr.correct;
      }
    }

    // ---- Combined-class histogram (Table 2 columns) ------------------------
    {
      const bool tag_u = usage.tagging == core::TaggingClass::kUndecided;
      const bool fwd_u = usage.forwarding == core::ForwardingClass::kUndecided;
      const auto code = usage.code();
      auto& h = ev.classes;
      if (tag_u && fwd_u) {
        ++h.uu;
      } else if (tag_u) {
        ++h.tag_u;
      } else if (fwd_u) {
        ++h.fwd_u;
      } else if (code == "tf") {
        ++h.tf;
      } else if (code == "tc") {
        ++h.tc;
      } else if (code == "sf") {
        ++h.sf;
      } else if (code == "sc") {
        ++h.sc;
      } else if (code == "tn") {
        ++h.tn;
      } else if (code == "sn") {
        ++h.sn;
      } else if (code == "nf") {
        ++h.nf;
      } else if (code == "nc") {
        ++h.nc;
      } else {
        ++h.nn;
      }
    }
  }

  finalize(ev.tagging_pr);
  finalize(ev.forwarding_pr);
  return ev;
}

}  // namespace bgpcu::eval
