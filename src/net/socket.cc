#include "net/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bgpcu::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

class TcpConnection final : public Connection {
 public:
  TcpConnection(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {}

  ~TcpConnection() override {
    // The fd is released only here, once no reader/writer thread can still
    // be about to use it (owners destroy the Connection after joining its
    // threads). close() during the connection's life only shuts down —
    // closing there would let the kernel reuse the fd number while a
    // preempted thread still holds it, splicing another client's stream
    // into this one.
    const int fd = fd_.exchange(-1);
    if (fd >= 0) ::close(fd);
  }

  std::size_t read_some(std::span<std::uint8_t> out) override {
    for (;;) {
      const auto n = ::recv(fd_, out.data(), out.size(), 0);
      if (n >= 0) return static_cast<std::size_t>(n);
      if (errno == EINTR) continue;
      // An expired SO_RCVTIMEO deadline reads as end-of-stream, per the
      // Connection contract.
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      // A reset or a locally closed fd both mean "stream over" to the
      // protocol layer; hard errors on a live fd are worth surfacing.
      if (errno == ECONNRESET || errno == EBADF || errno == EPIPE) return 0;
      throw_errno("recv from " + peer_);
    }
  }

  void set_read_timeout(std::chrono::milliseconds timeout) override {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }

  bool write_all(std::span<const std::uint8_t> data) override {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const auto n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer gone (EPIPE/ECONNRESET) or fd closed under us
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  void shutdown_write() override { ::shutdown(fd_, SHUT_WR); }

  void close() override {
    // Shutdown only: wakes threads blocked in recv/send and fails all
    // future I/O, while the fd number stays reserved until the destructor
    // (see ~TcpConnection). Idempotent.
    ::shutdown(fd_.load(), SHUT_RDWR);
  }

  [[nodiscard]] std::string peer_name() const override { return peer_; }

  [[nodiscard]] PollInfo poll_info() const override {
    const int fd = fd_.load();
    return {fd, fd};
  }

  IoStatus try_read(std::span<std::uint8_t> out, std::size_t& n) override {
    n = 0;
    for (;;) {
      const auto rc = ::recv(fd_, out.data(), out.size(), MSG_DONTWAIT);
      if (rc > 0) {
        n = static_cast<std::size_t>(rc);
        return IoStatus::kOk;
      }
      if (rc == 0) return IoStatus::kEof;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
      // Reset / closed-under-us / any hard error: stream over for the
      // protocol layer (same collapsing as read_some).
      return IoStatus::kEof;
    }
  }

  IoStatus try_write(std::span<const std::uint8_t> data, std::size_t& n) override {
    n = 0;
    for (;;) {
      const auto rc = ::send(fd_, data.data(), data.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
      if (rc > 0) {
        n = static_cast<std::size_t>(rc);
        return IoStatus::kOk;
      }
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return IoStatus::kWouldBlock;
      return IoStatus::kEof;  // peer gone or fd closed under us
    }
  }

 private:
  std::atomic<int> fd_;
  std::string peer_;
};

/// Connects `fd` within `timeout`: flips the socket non-blocking, starts the
/// connect, polls for writability, then reads SO_ERROR for the verdict.
/// Returns false with `error` set on failure; restores blocking mode on
/// success.
bool connect_with_deadline(int fd, const sockaddr* addr, socklen_t addrlen,
                           std::chrono::milliseconds timeout, std::string& error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    error = std::strerror(errno);
    return false;
  }
  if (::connect(fd, addr, addrlen) == 0) {
    ::fcntl(fd, F_SETFL, flags);
    return true;
  }
  if (errno != EINPROGRESS) {
    error = std::strerror(errno);
    return false;
  }
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  auto remaining = timeout;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc > 0) break;
    if (rc == 0) {
      error = "connect timed out";
      return false;
    }
    if (errno != EINTR) {
      error = std::strerror(errno);
      return false;
    }
    remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      error = "connect timed out";
      return false;
    }
  }
  int so_error = 0;
  socklen_t so_len = sizeof so_error;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) != 0) {
    error = std::strerror(errno);
    return false;
  }
  if (so_error != 0) {
    error = std::strerror(so_error);
    return false;
  }
  ::fcntl(fd, F_SETFL, flags);
  return true;
}

std::string describe_peer(const sockaddr_storage& addr, socklen_t len) {
  char host[NI_MAXHOST] = "?";
  char serv[NI_MAXSERV] = "?";
  ::getnameinfo(reinterpret_cast<const sockaddr*>(&addr), len, host, sizeof host, serv,
                sizeof serv, NI_NUMERICHOST | NI_NUMERICSERV);
  return std::string(host) + ":" + serv;
}

}  // namespace

TcpListener::TcpListener(const std::string& host, std::uint16_t port) : host_(host) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* result = nullptr;
  const auto service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result); rc != 0) {
    throw TransportError("cannot resolve listen address " + host + ": " +
                         ::gai_strerror(rc));
  }
  std::string last_error = "no usable address";
  for (auto* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || ::listen(fd, 64) != 0) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
      }
    }
    fd_ = fd;
    break;
  }
  ::freeaddrinfo(result);
  if (fd_ < 0) {
    throw TransportError("cannot listen on " + host + ":" + service + ": " + last_error);
  }
}

TcpListener::~TcpListener() {
  close();
  // Release the fd only once nothing can race a reuse (the owner joins the
  // accept thread before destroying the listener).
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  for (;;) {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return std::make_unique<TcpConnection>(fd, describe_peer(addr, len));
    }
    if (closed_.load()) return nullptr;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EBADF || errno == EINVAL) return nullptr;  // closed under us
    throw_errno("accept on " + name());
  }
}

std::unique_ptr<Connection> TcpListener::try_accept() {
  if (!nonblocking_) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    nonblocking_ = true;
  }
  for (;;) {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return std::make_unique<TcpConnection>(fd, describe_peer(addr, len));
    }
    if (closed_.load()) return nullptr;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return nullptr;
    if (errno == EBADF || errno == EINVAL) return nullptr;  // closed under us
    throw_errno("accept on " + name());
  }
}

void TcpListener::close() {
  if (closed_.exchange(true)) return;
  // shutdown() wakes a blocked accept() on Linux; the fd itself is released
  // in the destructor, after the accept thread is joined (same fd-reuse
  // discipline as TcpConnection).
  ::shutdown(fd_, SHUT_RDWR);
}

std::string TcpListener::name() const { return host_ + ":" + std::to_string(port_); }

std::unique_ptr<Connection> tcp_connect(const std::string& host, std::uint16_t port,
                                        std::chrono::milliseconds timeout) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* result = nullptr;
  const auto service = std::to_string(port);
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result); rc != 0) {
    throw TransportError("cannot resolve " + host + ": " + ::gai_strerror(rc));
  }
  std::string last_error = "no usable address";
  int fd = -1;
  for (auto* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (timeout.count() > 0) {
      if (connect_with_deadline(fd, ai->ai_addr, ai->ai_addrlen, timeout, last_error)) {
        break;
      }
    } else if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      break;
    } else {
      last_error = std::strerror(errno);
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    throw TransportError("cannot connect to " + host + ":" + service + ": " + last_error);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::make_unique<TcpConnection>(fd, host + ":" + service);
}

}  // namespace bgpcu::net
