#include "net/poller.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace bgpcu::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int make_wake_eventfd() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) throw_errno("eventfd");
  return fd;
}

void drain_eventfd(int fd) {
  std::uint64_t buf = 0;
  // Nonblocking: EAGAIN just means nobody woke us since the last drain.
  while (::read(fd, &buf, sizeof(buf)) == static_cast<ssize_t>(sizeof(buf))) {
  }
}

void signal_eventfd(int fd) {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — the wakeup is already pending.
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

// Sentinel token for the internal wake fd; never surfaced to callers.
constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};

class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)), wake_fd_(make_wake_eventfd()) {
    if (epfd_ < 0) throw_errno("epoll_create1");
    ::epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) throw_errno("epoll_ctl(wake)");
  }

  ~EpollPoller() override {
    ::close(wake_fd_);
    ::close(epfd_);
  }

  void set(int fd, std::uint64_t token, bool want_read, bool want_write) override {
    if (!want_read && !want_write) {
      remove(fd);
      return;
    }
    ::epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = token;
    // Try the cheaper path first based on what we believe is registered,
    // then reconcile: a closed-and-reused fd number makes our bookkeeping
    // stale, so MOD can hit ENOENT and ADD can hit EEXIST.
    const bool known = registered_.count(fd) != 0;
    int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
    if (::epoll_ctl(epfd_, op, fd, &ev) != 0) {
      if (op == EPOLL_CTL_MOD && errno == ENOENT) {
        op = EPOLL_CTL_ADD;
      } else if (op == EPOLL_CTL_ADD && errno == EEXIST) {
        op = EPOLL_CTL_MOD;
      } else {
        throw_errno("epoll_ctl");
      }
      if (::epoll_ctl(epfd_, op, fd, &ev) != 0) throw_errno("epoll_ctl(retry)");
    }
    registered_.insert(fd);
  }

  void remove(int fd) override {
    registered_.erase(fd);
    if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
      if (errno != ENOENT && errno != EBADF) throw_errno("epoll_ctl(del)");
    }
  }

  std::size_t wait(std::vector<PollerEvent>& out, int timeout_ms) override {
    out.clear();
    ::epoll_event evs[128];
    int n;
    do {
      n = ::epoll_wait(epfd_, evs, static_cast<int>(std::size(evs)), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("epoll_wait");
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.u64 == kWakeToken) {
        drain_eventfd(wake_fd_);
        continue;
      }
      PollerEvent pe;
      pe.token = evs[i].data.u64;
      pe.hangup = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      pe.readable = (evs[i].events & EPOLLIN) != 0 || pe.hangup;
      pe.writable = (evs[i].events & EPOLLOUT) != 0;
      out.push_back(pe);
    }
    return out.size();
  }

  void wake() override { signal_eventfd(wake_fd_); }

  [[nodiscard]] std::string_view name() const noexcept override { return "epoll"; }

 private:
  int epfd_;
  int wake_fd_;
  // fds we believe are registered; advisory only (see set()).
  std::unordered_set<int> registered_;
};

class PollPoller final : public Poller {
 public:
  PollPoller() : wake_fd_(make_wake_eventfd()) {}

  ~PollPoller() override { ::close(wake_fd_); }

  void set(int fd, std::uint64_t token, bool want_read, bool want_write) override {
    if (!want_read && !want_write) {
      remove(fd);
      return;
    }
    short events = 0;
    if (want_read) events |= POLLIN;
    if (want_write) events |= POLLOUT;
    watched_[fd] = Entry{token, events};
  }

  void remove(int fd) override { watched_.erase(fd); }

  std::size_t wait(std::vector<PollerEvent>& out, int timeout_ms) override {
    out.clear();
    fds_.clear();
    fds_.push_back({wake_fd_, POLLIN, 0});
    for (const auto& [fd, entry] : watched_) {
      fds_.push_back({fd, entry.events, 0});
    }
    int n;
    do {
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw_errno("poll");
    if (n == 0) return 0;
    if (fds_[0].revents != 0) drain_eventfd(wake_fd_);
    for (std::size_t i = 1; i < fds_.size(); ++i) {
      const short re = fds_[i].revents;
      if (re == 0) continue;
      const auto it = watched_.find(fds_[i].fd);
      if (it == watched_.end()) continue;
      PollerEvent pe;
      pe.token = it->second.token;
      pe.hangup = (re & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      pe.readable = (re & POLLIN) != 0 || pe.hangup;
      pe.writable = (re & POLLOUT) != 0;
      out.push_back(pe);
    }
    return out.size();
  }

  void wake() override { signal_eventfd(wake_fd_); }

  [[nodiscard]] std::string_view name() const noexcept override { return "poll"; }

 private:
  struct Entry {
    std::uint64_t token = 0;
    short events = 0;
  };
  int wake_fd_;
  std::unordered_map<int, Entry> watched_;
  std::vector<::pollfd> fds_;
};

}  // namespace

PollerBackend default_poller_backend() noexcept {
  const char* env = std::getenv("BGPCU_NET_POLLER");
  if (env != nullptr && std::string_view(env) == "poll") return PollerBackend::kPoll;
  return PollerBackend::kEpoll;
}

std::unique_ptr<Poller> Poller::create(PollerBackend backend) {
  switch (backend) {
    case PollerBackend::kPoll:
      return std::make_unique<PollPoller>();
    case PollerBackend::kEpoll:
    default:
      return std::make_unique<EpollPoller>();
  }
}

}  // namespace bgpcu::net
