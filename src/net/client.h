// net::Client — the synchronous consumer side of the frame protocol, used
// by `bgpcu_query --connect` and the protocol tests. One Client wraps one
// Connection: the constructor performs the hello/welcome handshake, query()
// is blocking request/response (pushed events arriving in between are
// buffered, never lost), and subscribe()/next_event() expose the class-
// change feed. Single-threaded by design: call it from one thread.
#ifndef BGPCU_NET_CLIENT_H
#define BGPCU_NET_CLIENT_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "api/service.h"
#include "api/wire.h"
#include "net/framer.h"
#include "net/transport.h"

namespace bgpcu::net {

/// The server answered with a kError frame; carries its code and message.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(api::ErrorFrame error);

  [[nodiscard]] const api::ErrorFrame& error() const noexcept { return error_; }

 private:
  api::ErrorFrame error_;
};

class Client {
 public:
  struct Options {
    std::string token;  ///< Sent in the hello frame; must match the server's.
    /// Cap on server -> client frames; snapshots can be large.
    std::size_t max_frame_payload = api::kMaxFramePayload;
  };

  /// Performs the handshake; throws ProtocolError when the server rejects
  /// it (auth, busy) and TransportError when the connection drops mid-way.
  Client(std::unique_ptr<Connection> conn, Options options);
  explicit Client(std::unique_ptr<Connection> conn) : Client(std::move(conn), Options{}) {}

  /// The server's handshake accept (protocol version + epoch at connect).
  [[nodiscard]] const api::WelcomeFrame& welcome() const noexcept { return welcome_; }

  /// Blocking request/response. Events pushed while waiting are buffered
  /// for next_event(). Throws ProtocolError on a kError answer.
  [[nodiscard]] api::QueryResponse query(const api::QueryRequest& request);

  /// Opens a subscription; returns its id (carried by every kEvent for it).
  std::uint64_t subscribe(const api::SubscriptionFilter& filter,
                          std::optional<stream::Epoch> replay_from = std::nullopt);

  /// Closes a subscription (acknowledged before returning).
  void unsubscribe(std::uint64_t subscription_id);

  /// The next pushed event — buffered or freshly read, blocking until one
  /// arrives. nullopt once the server closed the stream.
  [[nodiscard]] std::optional<api::EventFrame> next_event();

  /// Half-closes toward the server: no more requests will be sent, but
  /// already-solicited responses/events can still be drained.
  void finish_requests();

  void close();

 private:
  /// Next complete frame from the wire; empty on end-of-stream.
  [[nodiscard]] std::vector<std::uint8_t> read_frame();
  void send(const std::vector<std::uint8_t>& frame);

  std::unique_ptr<Connection> conn_;
  FrameBuffer frames_;
  std::vector<std::uint8_t> chunk_;  ///< Read buffer, reused across frames.
  api::WelcomeFrame welcome_;
  std::uint64_t next_request_id_ = 1;
  std::deque<api::EventFrame> pending_events_;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_CLIENT_H
