// Real-socket Transport implementation (POSIX TCP). TcpListener binds a
// host:port (port 0 picks an ephemeral port, readable back via port() — the
// smoke tests and --port-file depend on that), tcp_connect dials out. All
// I/O is blocking; SIGPIPE is suppressed per-send so a vanished peer is a
// false return from write_all, never a process kill.
#ifndef BGPCU_NET_SOCKET_H
#define BGPCU_NET_SOCKET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"

namespace bgpcu::net {

class TcpListener : public Listener {
 public:
  /// Binds and listens. `host` is a numeric address ("127.0.0.1", "0.0.0.0");
  /// `port` 0 asks the kernel for an ephemeral port. Throws TransportError.
  TcpListener(const std::string& host, std::uint16_t port);
  ~TcpListener() override;

  std::unique_ptr<Connection> accept() override;
  void close() override;
  [[nodiscard]] std::string name() const override;

  /// The actually bound port (resolves port 0 to the kernel's pick).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The listening fd, for registering with a Poller. Valid until the
  /// listener is destroyed.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Nonblocking accept for poller-driven owners: flips the listening fd
  /// to O_NONBLOCK on first use (this listener must then be drained via
  /// try_accept only) and returns nullptr when no connection is pending
  /// or the listener is closed.
  [[nodiscard]] std::unique_ptr<Connection> try_accept();

 private:
  int fd_ = -1;
  std::atomic<bool> closed_{false};
  bool nonblocking_ = false;
  std::string host_;
  std::uint16_t port_ = 0;
};

/// Dials host:port (numeric or resolvable name). Throws TransportError on
/// resolution or connect failure. A nonzero `timeout` bounds the TCP
/// connect itself (non-blocking connect + poll) so a black-holed address
/// fails in bounded time instead of the kernel's minutes-long default;
/// zero keeps the blocking behavior.
[[nodiscard]] std::unique_ptr<Connection> tcp_connect(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(0));

}  // namespace bgpcu::net

#endif  // BGPCU_NET_SOCKET_H
