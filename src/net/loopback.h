// In-process loopback transport: a pair of Connections joined by two
// bounded byte pipes, plus a Listener whose connect() hands the server end
// to an accept()er. This is what makes the protocol suite deterministic —
// tests drive framing splits byte-by-byte, fill a tiny pipe to simulate a
// slow subscriber, and half-close each direction independently, all without
// touching a real port.
#ifndef BGPCU_NET_LOOPBACK_H
#define BGPCU_NET_LOOPBACK_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "net/transport.h"

namespace bgpcu::net {

/// One direction of a loopback connection: a bounded byte queue with
/// blocking reads and writes. Both sides share it via shared_ptr.
///
/// For the event-driven server the pipe can also expose its readiness as
/// level-semantics eventfds: read_ready_fd() is readable whenever a read
/// would make progress (data buffered, or EOF pending), write_ready_fd()
/// whenever a write would (room in the buffer, or the stream is closed so
/// the writer should come learn that). The fds are created lazily — tests
/// that never poll pay nothing — and are maintained by every mutating
/// operation. On eventfd creation failure the accessors return -1 and the
/// connection reports itself non-pollable.
class LoopbackPipe {
 public:
  explicit LoopbackPipe(std::size_t capacity);
  ~LoopbackPipe();

  LoopbackPipe(const LoopbackPipe&) = delete;
  LoopbackPipe& operator=(const LoopbackPipe&) = delete;

  /// Blocks for data; 0 on EOF (writer closed and buffer drained, reader
  /// closed locally, or a nonzero `timeout` expired with nothing to read).
  std::size_t read_some(std::span<std::uint8_t> out,
                        std::chrono::milliseconds timeout = std::chrono::milliseconds::zero());

  /// Blocks while the pipe is full — real backpressure. False once the
  /// reader side is gone.
  bool write_all(std::span<const std::uint8_t> data);

  /// Nonblocking read: returns bytes copied (0 if nothing buffered). Sets
  /// `eof` when the stream is over (writer closed and drained, or reader
  /// closed locally).
  std::size_t try_read_some(std::span<std::uint8_t> out, bool& eof);

  /// Nonblocking write of a prefix of `data`: returns bytes accepted
  /// (0 when the pipe is full). Sets `closed` once the reader is gone.
  std::size_t try_write_some(std::span<const std::uint8_t> data, bool& closed);

  /// Lazily created readiness eventfds (see class comment); -1 on failure.
  [[nodiscard]] int read_ready_fd();
  [[nodiscard]] int write_ready_fd();

  void close_write();  ///< Writer done: reader drains the rest, then EOF.
  void close_read();   ///< Reader gone: writers fail fast from now on.

 private:
  void update_signals_locked();
  [[nodiscard]] std::size_t buffered_locked() const noexcept {
    return buffer_.size() - head_;
  }
  std::size_t consume_locked(std::span<std::uint8_t> out);

  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  // Contiguous byte queue: appends memcpy onto the tail, reads advance
  // `head_`. The storage resets to empty whenever the reader fully drains
  // (the common case), and compacts when the dead prefix dominates — a
  // deque of bytes pays per-byte segmented-iterator cost on every copy,
  // which at fan-out scale (tens of MB through thousands of pipes) was
  // measurable in both serving modes.
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;
  bool write_closed_ = false;
  bool read_closed_ = false;
  // Readiness eventfds: -2 = not yet requested, -1 = creation failed.
  int read_efd_ = -2;
  int write_efd_ = -2;
  // Whether each eventfd currently holds a nonzero counter (is readable).
  bool read_sig_ = false;
  bool write_sig_ = false;
};

/// Returns the two ends of a fresh loopback connection. `capacity` bounds
/// each direction's in-flight bytes; small values make write_all block
/// early, which is exactly what backpressure tests need.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>> make_loopback_pair(
    std::size_t capacity = std::size_t{1} << 16);

/// Listener over loopback pairs: connect() queues the server end for
/// accept() and returns the client end. Thread-safe; close() wakes accept.
class LoopbackListener : public Listener {
 public:
  explicit LoopbackListener(std::size_t capacity = std::size_t{1} << 16)
      : capacity_(capacity) {}

  /// Client side of a new connection (never null); the matching server side
  /// is queued for accept(). Throws TransportError after close().
  std::unique_ptr<Connection> connect();

  std::unique_ptr<Connection> accept() override;
  void close() override;
  [[nodiscard]] std::string name() const override { return "loopback"; }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable pending_cv_;
  std::deque<std::unique_ptr<Connection>> pending_;
  bool closed_ = false;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_LOOPBACK_H
