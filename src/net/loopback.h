// In-process loopback transport: a pair of Connections joined by two
// bounded byte pipes, plus a Listener whose connect() hands the server end
// to an accept()er. This is what makes the protocol suite deterministic —
// tests drive framing splits byte-by-byte, fill a tiny pipe to simulate a
// slow subscriber, and half-close each direction independently, all without
// touching a real port.
#ifndef BGPCU_NET_LOOPBACK_H
#define BGPCU_NET_LOOPBACK_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "net/transport.h"

namespace bgpcu::net {

/// One direction of a loopback connection: a bounded byte queue with
/// blocking reads and writes. Both sides share it via shared_ptr.
class LoopbackPipe {
 public:
  explicit LoopbackPipe(std::size_t capacity);

  /// Blocks for data; 0 on EOF (writer closed and buffer drained, reader
  /// closed locally, or a nonzero `timeout` expired with nothing to read).
  std::size_t read_some(std::span<std::uint8_t> out,
                        std::chrono::milliseconds timeout = std::chrono::milliseconds::zero());

  /// Blocks while the pipe is full — real backpressure. False once the
  /// reader side is gone.
  bool write_all(std::span<const std::uint8_t> data);

  void close_write();  ///< Writer done: reader drains the rest, then EOF.
  void close_read();   ///< Reader gone: writers fail fast from now on.

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<std::uint8_t> buffer_;
  bool write_closed_ = false;
  bool read_closed_ = false;
};

/// Returns the two ends of a fresh loopback connection. `capacity` bounds
/// each direction's in-flight bytes; small values make write_all block
/// early, which is exactly what backpressure tests need.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>> make_loopback_pair(
    std::size_t capacity = std::size_t{1} << 16);

/// Listener over loopback pairs: connect() queues the server end for
/// accept() and returns the client end. Thread-safe; close() wakes accept.
class LoopbackListener : public Listener {
 public:
  explicit LoopbackListener(std::size_t capacity = std::size_t{1} << 16)
      : capacity_(capacity) {}

  /// Client side of a new connection (never null); the matching server side
  /// is queued for accept(). Throws TransportError after close().
  std::unique_ptr<Connection> connect();

  std::unique_ptr<Connection> accept() override;
  void close() override;
  [[nodiscard]] std::string name() const override { return "loopback"; }

 private:
  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable pending_cv_;
  std::deque<std::unique_ptr<Connection>> pending_;
  bool closed_ = false;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_LOOPBACK_H
