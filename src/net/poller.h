// Readiness multiplexer behind the event-driven serving loop: one object
// watching many fds, returning which are readable/writable. Two backends
// share the interface — epoll (the production fast path: O(ready) wakeups,
// no per-wait registration rebuild) and plain poll(2) (portable fallback;
// the protocol conformance suite runs against both so a backend difference
// can never hide behind the default). Backend selection honors the
// BGPCU_NET_POLLER environment variable ("epoll" | "poll"), which is how
// CMake registers the net suite a second time against the fallback.
//
// Thread model: set/remove/wait belong to one owning loop thread; wake() is
// the only call safe from other threads (it makes a blocked wait() return).
#ifndef BGPCU_NET_POLLER_H
#define BGPCU_NET_POLLER_H

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace bgpcu::net {

enum class PollerBackend : std::uint8_t { kEpoll, kPoll };

/// kEpoll unless BGPCU_NET_POLLER=poll is set in the environment.
[[nodiscard]] PollerBackend default_poller_backend() noexcept;

/// One ready fd, identified by the token it was registered with.
struct PollerEvent {
  std::uint64_t token = 0;
  bool readable = false;
  bool writable = false;
  /// Error/hangup on the fd. Reported alongside readable so the owner's
  /// next read observes the EOF/reset instead of spinning on the event.
  bool hangup = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` under `token`, or updates its interest set if already
  /// registered. Asking for neither read nor write removes the fd.
  /// Registration survives a racing close of the fd number (stale entries
  /// are reconciled on the next set/remove), but the owner should remove
  /// fds before releasing them.
  virtual void set(int fd, std::uint64_t token, bool want_read, bool want_write) = 0;

  /// Drops `fd` from the watch set. Unknown fds are ignored.
  virtual void remove(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = poll-and-return) and
  /// appends ready fds to `out` (cleared first). wake() calls are consumed
  /// internally and may yield an empty result. Returns the event count.
  virtual std::size_t wait(std::vector<PollerEvent>& out, int timeout_ms) = 0;

  /// Makes a concurrent (or the next) wait() return promptly. The only
  /// member safe to call from a thread other than the owning loop.
  virtual void wake() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] static std::unique_ptr<Poller> create(PollerBackend backend);
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_POLLER_H
