#include "net/client.h"

#include <utility>

namespace bgpcu::net {

ProtocolError::ProtocolError(api::ErrorFrame error)
    : std::runtime_error("server error " + std::to_string(static_cast<int>(error.code)) +
                         ": " + error.message),
      error_(std::move(error)) {}

Client::Client(std::unique_ptr<Connection> conn, Options options)
    : conn_(std::move(conn)), frames_(options.max_frame_payload) {
  try {
    send(api::encode_hello({api::kProtocolVersion, options.token}));
  } catch (const TransportError&) {
    // The server may have rejected us (e.g. kServerBusy) and hung up before
    // our hello landed; its error frame is still readable below.
  }
  const auto frame = read_frame();
  if (frame.empty()) {
    throw TransportError("connection closed during handshake");
  }
  const auto type = api::peek_frame_type(frame);
  if (type == api::FrameType::kError) throw ProtocolError(api::decode_error(frame));
  if (type != api::FrameType::kWelcome) {
    throw TransportError("unexpected handshake frame type " +
                         std::to_string(static_cast<int>(type)));
  }
  welcome_ = api::decode_welcome(frame);
}

std::vector<std::uint8_t> Client::read_frame() {
  if (chunk_.empty()) chunk_.resize(16384);
  for (;;) {
    auto frame = frames_.extract();
    if (!frame.empty()) return frame;
    const auto n = conn_->read_some(chunk_);
    if (n == 0) return {};
    frames_.append(std::span(chunk_.data(), n));
  }
}

void Client::send(const std::vector<std::uint8_t>& frame) {
  if (!conn_->write_all(frame)) {
    throw TransportError("connection closed while sending");
  }
}

api::QueryResponse Client::query(const api::QueryRequest& request) {
  const auto id = next_request_id_++;
  send(api::encode_request({id, request}));
  for (;;) {
    const auto frame = read_frame();
    if (frame.empty()) {
      throw TransportError("connection closed awaiting response " + std::to_string(id));
    }
    switch (api::peek_frame_type(frame)) {
      case api::FrameType::kEvent:
        pending_events_.push_back(api::decode_event(frame));
        break;
      case api::FrameType::kResponse: {
        auto response = api::decode_response(frame);
        if (response.request_id != id) {
          throw TransportError("response id " + std::to_string(response.request_id) +
                               " does not match request " + std::to_string(id));
        }
        return std::move(response.response);
      }
      case api::FrameType::kError:
        throw ProtocolError(api::decode_error(frame));
      default:
        throw TransportError("unexpected frame while awaiting response");
    }
  }
}

std::uint64_t Client::subscribe(const api::SubscriptionFilter& filter,
                                std::optional<stream::Epoch> replay_from) {
  const auto id = next_request_id_++;
  send(api::encode_subscribe({id, filter, replay_from}));
  for (;;) {
    const auto frame = read_frame();
    if (frame.empty()) {
      throw TransportError("connection closed awaiting subscribe ack");
    }
    switch (api::peek_frame_type(frame)) {
      case api::FrameType::kEvent:
        pending_events_.push_back(api::decode_event(frame));
        break;
      case api::FrameType::kSubscribed: {
        const auto ack = api::decode_subscribed(frame);
        if (ack.request_id != id) {
          throw TransportError("subscribe ack for wrong request id");
        }
        return ack.subscription_id;
      }
      case api::FrameType::kError:
        throw ProtocolError(api::decode_error(frame));
      default:
        throw TransportError("unexpected frame while awaiting subscribe ack");
    }
  }
}

void Client::unsubscribe(std::uint64_t subscription_id) {
  const auto id = next_request_id_++;
  send(api::encode_unsubscribe({id, subscription_id}));
  for (;;) {
    const auto frame = read_frame();
    if (frame.empty()) {
      throw TransportError("connection closed awaiting unsubscribe ack");
    }
    switch (api::peek_frame_type(frame)) {
      case api::FrameType::kEvent:
        pending_events_.push_back(api::decode_event(frame));
        break;
      case api::FrameType::kUnsubscribed: {
        const auto ack = api::decode_subscribed(frame, api::FrameType::kUnsubscribed);
        if (ack.request_id != id) {
          throw TransportError("unsubscribe ack for wrong request id");
        }
        return;
      }
      case api::FrameType::kError:
        throw ProtocolError(api::decode_error(frame));
      default:
        throw TransportError("unexpected frame while awaiting unsubscribe ack");
    }
  }
}

std::optional<api::EventFrame> Client::next_event() {
  if (!pending_events_.empty()) {
    auto event = std::move(pending_events_.front());
    pending_events_.pop_front();
    return event;
  }
  for (;;) {
    const auto frame = read_frame();
    if (frame.empty()) return std::nullopt;
    switch (api::peek_frame_type(frame)) {
      case api::FrameType::kEvent:
        return api::decode_event(frame);
      case api::FrameType::kError:
        throw ProtocolError(api::decode_error(frame));
      default:
        throw TransportError("unexpected frame while awaiting events");
    }
  }
}

void Client::finish_requests() { conn_->shutdown_write(); }

void Client::close() { conn_->close(); }

}  // namespace bgpcu::net
