#include "net/fault.h"

#include <algorithm>
#include <limits>
#include <random>
#include <thread>

namespace bgpcu::net {

FaultPlan FaultPlan::cut_write_at(std::uint64_t n) {
  return {{Fault{Fault::Kind::kCut, Fault::Dir::kWrite, n, {}, 0}}};
}

FaultPlan FaultPlan::cut_read_at(std::uint64_t n) {
  return {{Fault{Fault::Kind::kCut, Fault::Dir::kRead, n, {}, 0}}};
}

FaultPlan FaultPlan::stall_write_at(std::uint64_t n, std::chrono::milliseconds delay) {
  return {{Fault{Fault::Kind::kStall, Fault::Dir::kWrite, n, delay, 0}}};
}

FaultPlan FaultPlan::stall_read_at(std::uint64_t n, std::chrono::milliseconds delay) {
  return {{Fault{Fault::Kind::kStall, Fault::Dir::kRead, n, delay, 0}}};
}

FaultPlan FaultPlan::short_writes(std::size_t chunk, std::uint64_t from) {
  return {{Fault{Fault::Kind::kShortWrite, Fault::Dir::kWrite, from, {}, chunk}}};
}

FaultPlan FaultPlan::random_cut(std::uint64_t seed, std::uint64_t min_bytes,
                                std::uint64_t max_bytes) {
  std::mt19937_64 rng(seed);
  if (max_bytes <= min_bytes) max_bytes = min_bytes + 1;
  std::uniform_int_distribution<std::uint64_t> at(min_bytes, max_bytes - 1);
  FaultPlan plan;
  const auto cut_at = at(rng);
  const auto dir = (rng() & 1) ? Fault::Dir::kWrite : Fault::Dir::kRead;
  // One seed in four also stalls shortly before the cut, so the schedule
  // exercises "slow then dead" links, not just clean drops.
  if ((rng() & 3) == 0 && cut_at > 1) {
    std::uniform_int_distribution<std::uint64_t> stall_at(0, cut_at - 1);
    plan.faults.push_back(
        Fault{Fault::Kind::kStall, dir, stall_at(rng), std::chrono::milliseconds(5), 0});
  }
  plan.faults.push_back(Fault{Fault::Kind::kCut, dir, cut_at, {}, 0});
  return plan;
}

FaultyConnection::FaultyConnection(std::unique_ptr<Connection> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)), fired_(plan_.faults.size(), false) {}

std::uint64_t FaultyConnection::cut_budget(Fault::Dir dir) const {
  auto budget = std::numeric_limits<std::uint64_t>::max();
  const auto done = dir == Fault::Dir::kRead ? bytes_read_.load() : bytes_written_.load();
  for (const auto& fault : plan_.faults) {
    if (fault.kind != Fault::Kind::kCut || fault.dir != dir) continue;
    budget = std::min(budget, fault.at_bytes > done ? fault.at_bytes - done : 0);
  }
  return budget;
}

void FaultyConnection::maybe_stall(Fault::Dir dir, std::uint64_t before,
                                   std::uint64_t after) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const auto& fault = plan_.faults[i];
    if (fault.kind != Fault::Kind::kStall || fault.dir != dir) continue;
    if (fault.at_bytes < before || fault.at_bytes >= after) continue;
    {
      const std::lock_guard lock(stall_mutex_);
      if (fired_[i]) continue;
      fired_[i] = true;
    }
    std::this_thread::sleep_for(fault.delay);
  }
}

void FaultyConnection::sever() {
  severed_.store(true);
  // A cut link drops both directions at once, exactly like a vanished TCP
  // peer: our reads hit EOF, our writes fail, and the real peer sees EOF.
  inner_->close();
}

std::size_t FaultyConnection::read_some(std::span<std::uint8_t> out) {
  if (severed_.load()) return 0;
  const auto budget = cut_budget(Fault::Dir::kRead);
  if (budget == 0) {
    sever();
    return 0;
  }
  const auto want = std::min<std::uint64_t>(out.size(), budget);
  const auto before = bytes_read_.load();
  maybe_stall(Fault::Dir::kRead, before, before + want);
  const auto n = inner_->read_some(out.subspan(0, static_cast<std::size_t>(want)));
  bytes_read_.fetch_add(n);
  if (n > 0 && cut_budget(Fault::Dir::kRead) == 0) {
    // The bytes up to the boundary are delivered; the link dies behind them.
    sever();
  }
  return n;
}

void FaultyConnection::set_read_timeout(std::chrono::milliseconds timeout) {
  inner_->set_read_timeout(timeout);
}

bool FaultyConnection::write_all(std::span<const std::uint8_t> data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    if (severed_.load()) return false;
    const auto budget = cut_budget(Fault::Dir::kWrite);
    if (budget == 0) {
      sever();
      return false;
    }
    auto chunk = std::min<std::uint64_t>(data.size() - offset, budget);
    const auto written = bytes_written_.load();
    for (const auto& fault : plan_.faults) {
      if (fault.kind != Fault::Kind::kShortWrite || written < fault.at_bytes) continue;
      chunk = std::min<std::uint64_t>(chunk, std::max<std::size_t>(fault.chunk, 1));
    }
    maybe_stall(Fault::Dir::kWrite, written, written + chunk);
    if (!inner_->write_all(data.subspan(offset, static_cast<std::size_t>(chunk)))) {
      return false;
    }
    bytes_written_.fetch_add(chunk);
    offset += static_cast<std::size_t>(chunk);
    if (cut_budget(Fault::Dir::kWrite) == 0) {
      // The frame in flight was partially delivered — the peer's decoder is
      // left holding a torn prefix, which is the point.
      sever();
      return false;
    }
  }
  return true;
}

void FaultyConnection::shutdown_write() { inner_->shutdown_write(); }

void FaultyConnection::close() { inner_->close(); }

std::string FaultyConnection::peer_name() const {
  return inner_->peer_name() + " (faulty)";
}

std::unique_ptr<Connection> wrap_with_faults(std::unique_ptr<Connection> inner,
                                             FaultPlan plan) {
  return std::make_unique<FaultyConnection>(std::move(inner), std::move(plan));
}

FaultyListener::FaultyListener(std::shared_ptr<Listener> inner, Planner planner)
    : inner_(std::move(inner)), planner_(std::move(planner)) {}

std::unique_ptr<Connection> FaultyListener::accept() {
  auto conn = inner_->accept();
  if (!conn) return nullptr;
  const auto index = accepted_.fetch_add(1);
  auto plan = planner_ ? planner_(index) : FaultPlan{};
  if (plan.empty()) return conn;
  return wrap_with_faults(std::move(conn), std::move(plan));
}

void FaultyListener::close() { inner_->close(); }

std::string FaultyListener::name() const { return inner_->name() + " (faulty)"; }

}  // namespace bgpcu::net
