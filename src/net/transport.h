// The byte-stream transport abstraction the serving stack is written
// against. A Transport is a factory for duplex Connections plus a Listener
// that accepts them; the daemon, the client, and every protocol test talk
// only to these interfaces. Two implementations exist: real TCP sockets
// (net/socket.h) for production, and an in-process loopback pair
// (net/loopback.h) so the full protocol conformance suite — framing splits,
// pipelining, backpressure, half-close, malformed frames — runs
// deterministically without binding a single port.
#ifndef BGPCU_NET_TRANSPORT_H
#define BGPCU_NET_TRANSPORT_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

namespace bgpcu::net {

/// Thrown on unrecoverable transport failures (socket errors, address
/// resolution). Peer disconnects are NOT errors — reads return 0 and writes
/// return false, because a vanishing peer is normal protocol life.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Result of a nonblocking try_read / try_write attempt.
enum class IoStatus : std::uint8_t {
  kOk,          ///< one or more bytes transferred
  kWouldBlock,  ///< no progress possible right now; wait for readiness
  kEof,         ///< stream over: peer gone, reset, or locally closed
};

/// Readiness descriptors for the event-driven server. `read_fd` becomes
/// readable when try_read can make progress (or EOF is pending). When
/// `write_fd` differs from `read_fd` it is a *signal* fd that becomes
/// READABLE when try_write can make progress (loopback uses an eventfd);
/// when they are equal (TCP) the owner asks for plain write readiness on
/// the one fd. A default-constructed PollInfo means the connection cannot
/// be polled and must be served by the threaded fallback path.
struct PollInfo {
  int read_fd = -1;
  int write_fd = -1;
  [[nodiscard]] bool pollable() const noexcept { return read_fd >= 0 && write_fd >= 0; }
};

/// One duplex byte-stream connection. Thread model: one reader thread and
/// one writer thread may use a connection concurrently (read_some vs
/// write_all); close() may be called from any thread and unblocks both.
/// The nonblocking surface (poll_info/try_read/try_write) is optional:
/// transports that don't implement it report a non-pollable PollInfo and
/// are served by dedicated threads instead of the event loop.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocks until at least one byte is available, then returns up to
  /// `out.size()` bytes. Returns 0 on end-of-stream: the peer closed or
  /// half-closed its write side, close() was called locally, or the read
  /// deadline (set_read_timeout) expired with no data.
  virtual std::size_t read_some(std::span<std::uint8_t> out) = 0;

  /// Bounds how long read_some may block; an expired deadline reads as
  /// end-of-stream. Zero (the initial state) means block forever. The
  /// server uses this to put a deadline on the handshake so an idle
  /// connection cannot pin its threads indefinitely.
  virtual void set_read_timeout(std::chrono::milliseconds timeout) = 0;

  /// Blocks until all of `data` is accepted by the transport. Returns false
  /// when the peer is gone (reset, closed read side, or local close()).
  virtual bool write_all(std::span<const std::uint8_t> data) = 0;

  /// Half-close: flushes and ends the local write side; the peer's
  /// read_some eventually returns 0. Reads stay usable — the canonical
  /// "send requests, half-close, drain responses" pattern.
  virtual void shutdown_write() = 0;

  /// Tears down both directions and unblocks any thread inside read_some or
  /// write_all. Idempotent.
  virtual void close() = 0;

  /// Human-readable peer name for diagnostics ("127.0.0.1:45112", "loopback").
  [[nodiscard]] virtual std::string peer_name() const = 0;

  /// Readiness fds for the event loop; non-pollable by default.
  [[nodiscard]] virtual PollInfo poll_info() const { return {}; }

  /// Nonblocking read of up to `out.size()` bytes into `out`. Sets `n` to
  /// the byte count on kOk (n >= 1); n is 0 otherwise. Never blocks.
  virtual IoStatus try_read(std::span<std::uint8_t> out, std::size_t& n) {
    (void)out;
    n = 0;
    return IoStatus::kEof;
  }

  /// Nonblocking write of a prefix of `data`. Sets `n` to the bytes
  /// accepted on kOk (n >= 1); n is 0 otherwise. Never blocks.
  virtual IoStatus try_write(std::span<const std::uint8_t> data, std::size_t& n) {
    (void)data;
    n = 0;
    return IoStatus::kEof;
  }
};

/// Accepts inbound connections. close() unblocks a pending accept().
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next inbound connection; nullptr once close() was called
  /// (the server's signal to stop accepting).
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Stops accepting and wakes any blocked accept(). Idempotent.
  virtual void close() = 0;

  /// Where this listener accepts ("127.0.0.1:4711", "loopback").
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_TRANSPORT_H
