// Deterministic fault injection for the transport layer. A FaultPlan is a
// seeded, reproducible schedule of link failures — disconnects at byte N,
// partial writes, read/write stalls, added latency — and FaultyConnection /
// FaultyListener wrap any Connection / Listener with one. Every failure mode
// the chaos suite exercises is a plan that can be replayed from its seed,
// so a production surprise becomes a regression test case.
//
// Byte offsets are cumulative per direction over the lifetime of the wrapped
// connection: "cut write at 7" lets exactly 7 bytes through (a partial write
// of the frame in flight), then severs the link — both directions, like a
// dropped TCP session — and every later operation reports peer-gone.
#ifndef BGPCU_NET_FAULT_H
#define BGPCU_NET_FAULT_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.h"

namespace bgpcu::net {

/// One scheduled fault.
struct Fault {
  enum class Kind : std::uint8_t {
    kCut,        ///< Sever the link once `at_bytes` have crossed in `dir`.
    kStall,      ///< Sleep `delay` once, when the byte threshold is crossed.
    kShortWrite, ///< From `at_bytes` on, pass writes to the transport in
                 ///< chunks of at most `chunk` bytes (forces partial-write
                 ///< interleavings at the peer's frame decoder).
  };
  enum class Dir : std::uint8_t { kRead, kWrite };

  Kind kind = Kind::kCut;
  Dir dir = Dir::kWrite;
  std::uint64_t at_bytes = 0;
  std::chrono::milliseconds delay{0};  ///< kStall only.
  std::size_t chunk = 0;               ///< kShortWrite only; 0 = 1 byte.
};

/// A deterministic schedule of faults for one connection.
struct FaultPlan {
  std::vector<Fault> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }

  /// Link dies once `n` bytes have been written through the wrapper.
  [[nodiscard]] static FaultPlan cut_write_at(std::uint64_t n);
  /// Link dies once `n` bytes have been read through the wrapper.
  [[nodiscard]] static FaultPlan cut_read_at(std::uint64_t n);
  /// One `delay` pause before the write that crosses byte `n`.
  [[nodiscard]] static FaultPlan stall_write_at(std::uint64_t n,
                                               std::chrono::milliseconds delay);
  /// One `delay` pause before the read that crosses byte `n`.
  [[nodiscard]] static FaultPlan stall_read_at(std::uint64_t n,
                                              std::chrono::milliseconds delay);
  /// All writes from byte `n` on are split into `chunk`-byte transport writes.
  [[nodiscard]] static FaultPlan short_writes(std::size_t chunk, std::uint64_t from = 0);

  /// Seeded random plan: a cut at a uniformly random byte offset in
  /// [min_bytes, max_bytes), in a random direction, sometimes preceded by a
  /// short stall. The same seed always yields the same plan.
  [[nodiscard]] static FaultPlan random_cut(std::uint64_t seed, std::uint64_t min_bytes,
                                            std::uint64_t max_bytes);
};

/// Connection wrapper executing a FaultPlan. Thread model matches
/// Connection: one reader + one writer thread; read-side fault state is
/// touched only by the reader, write-side only by the writer, and the
/// severed flag is atomic.
class FaultyConnection : public Connection {
 public:
  FaultyConnection(std::unique_ptr<Connection> inner, FaultPlan plan);

  std::size_t read_some(std::span<std::uint8_t> out) override;
  void set_read_timeout(std::chrono::milliseconds timeout) override;
  bool write_all(std::span<const std::uint8_t> data) override;
  void shutdown_write() override;
  void close() override;
  [[nodiscard]] std::string peer_name() const override;

  /// True once a kCut fault fired (diagnostics for tests/benches).
  [[nodiscard]] bool severed() const noexcept { return severed_.load(); }
  [[nodiscard]] std::uint64_t bytes_read() const noexcept { return bytes_read_.load(); }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_.load(); }

 private:
  /// Bytes until the next kCut in `dir`; ~0 when none remains.
  [[nodiscard]] std::uint64_t cut_budget(Fault::Dir dir) const;
  void maybe_stall(Fault::Dir dir, std::uint64_t before, std::uint64_t after);
  void sever();

  std::unique_ptr<Connection> inner_;
  FaultPlan plan_;
  std::atomic<bool> severed_{false};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::mutex stall_mutex_;  ///< Guards fired flags (reader vs writer stalls).
  std::vector<bool> fired_;
};

/// Wraps `inner` with `plan`; an empty plan still counts bytes but injects
/// nothing.
[[nodiscard]] std::unique_ptr<Connection> wrap_with_faults(std::unique_ptr<Connection> inner,
                                                           FaultPlan plan);

/// Listener wrapper handing each accepted connection its own plan: the
/// planner is called with the 0-based accept index, so a schedule like
/// "every third connection dies mid-frame" is one lambda.
class FaultyListener : public Listener {
 public:
  using Planner = std::function<FaultPlan(std::size_t accept_index)>;

  FaultyListener(std::shared_ptr<Listener> inner, Planner planner);

  std::unique_ptr<Connection> accept() override;
  void close() override;
  [[nodiscard]] std::string name() const override;

 private:
  std::shared_ptr<Listener> inner_;
  Planner planner_;
  std::atomic<std::size_t> accepted_{0};
};

}  // namespace bgpcu::net

#endif  // BGPCU_NET_FAULT_H
