#include "net/resilient.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/wellknown.h"
#include "stream/delta.h"

namespace bgpcu::net {


namespace {

constexpr core::UsageClass kNoClass{};  // kNone/kNone: "absent from the view".

[[nodiscard]] std::chrono::milliseconds ms(std::uint64_t value) {
  return std::chrono::milliseconds(static_cast<std::int64_t>(value));
}

}  // namespace

std::uint64_t decorrelated_backoff(std::uint64_t prev_ms, const BackoffPolicy& policy,
                                   std::mt19937_64& rng) {
  const auto base = policy.initial_ms;
  const auto high = std::max(base + 1, prev_ms * 3);
  std::uniform_int_distribution<std::uint64_t> dist(base, high);
  return std::min(policy.cap_ms, dist(rng));
}

ResilientClient::ResilientClient(Connector connector, ResilientConfig config)
    : connector_(std::move(connector)),
      config_(std::move(config)),
      frames_(config_.max_frame_payload),
      rng_(config_.backoff.seed) {}

void ResilientClient::ensure_session() {
  if (closed_) throw TransportError("resilient client is closed");
  std::uint64_t rounds = 0;
  while (!conn_ || (subscribed_ && !sub_active_)) {
    // Guards the pathological cycle where the handshake succeeds but the
    // subscription setup keeps failing: each loop round is at least one
    // full connect, so the attempt budget still bounds it.
    if (config_.max_connect_attempts != 0 && rounds >= config_.max_connect_attempts) {
      throw RetriesExhausted("session setup retries exhausted after " +
                             std::to_string(rounds) + " rounds");
    }
    ++rounds;
    const bool reconnect = ever_connected_ && !conn_;
    std::uint64_t attempts = 0;
    if (!conn_) {
      attempts = connect_with_backoff();
      ever_connected_ = true;
      ++stats_.connects;
      obs::metrics().net_client_connects.add();
      if (reconnect) {
        ++stats_.reconnects;
        obs::metrics().net_client_reconnects.add();
      }
    }
    if (subscribed_ && !sub_active_) {
      const auto pos = out_events_.size();
      try {
        establish_subscription();
        sub_active_ = true;
      } catch (const BusyError& e) {
        ++stats_.busy_deferrals;
        obs::metrics().net_client_busy_deferrals.add();
        drop_connection();
        sleep_backoff(e.retry_after_ms());
        continue;
      } catch (const api::WireFormatError&) {
        drop_connection();
        continue;
      } catch (const TransportError&) {
        drop_connection();
        continue;
      }
      if (reconnect) {
        // Inserted *before* any kGap event the re-subscribe just queued, so
        // consumers always observe reconnect -> gap -> resumed deltas.
        Event ev;
        ev.kind = Event::Kind::kReconnected;
        ev.attempts = attempts;
        out_events_.insert(out_events_.begin() + static_cast<std::ptrdiff_t>(pos),
                           std::move(ev));
      }
    }
  }
}

std::uint64_t ResilientClient::connect_with_backoff() {
  std::uint64_t attempts = 0;
  for (;;) {
    std::optional<std::uint64_t> hint;
    try {
      ++attempts;
      ++stats_.connect_attempts;
      auto conn = connector_();
      if (!conn) throw TransportError("connector returned no connection");
      conn_ = std::move(conn);
      frames_ = FrameBuffer(config_.max_frame_payload);
      handshake();
      prev_backoff_ms_ = 0;
      return attempts;
    } catch (const ProtocolError& e) {
      drop_connection();
      const auto code = e.error().code;
      if (code == api::ErrorCode::kBadRequest && !legacy_ &&
          e.error().message.find("unsupported protocol version") == std::string::npos) {
        // A pre-reliability server rejects the kHello2 type itself (as
        // opposed to rejecting our protocol *version*): fall back to the
        // legacy handshake, permanently, and redial right away.
        legacy_ = true;
        ++stats_.legacy_downgrades;
        --attempts;
        continue;
      }
      if (code != api::ErrorCode::kServerBusy) throw;  // Auth/bad request: permanent.
    } catch (const BusyError& e) {
      drop_connection();
      hint = e.retry_after_ms();
      ++stats_.busy_deferrals;
      obs::metrics().net_client_busy_deferrals.add();
    } catch (const api::WireFormatError&) {
      drop_connection();
    } catch (const TransportError&) {
      drop_connection();
    }
    if (config_.max_connect_attempts != 0 && attempts >= config_.max_connect_attempts) {
      throw RetriesExhausted("connect retries exhausted after " +
                             std::to_string(attempts) + " attempts");
    }
    sleep_backoff(hint);
  }
}

void ResilientClient::handshake() {
  // Mirror net::Client: the server may reject-and-hang-up before our hello
  // lands, and its error frame is still readable after the failed write.
  if (!legacy_) {
    api::Hello2Frame hello;
    hello.token = config_.token;
    hello.features = api::kAllFeatures;
    try {
      send(api::encode_hello2(hello));
    } catch (const TransportError&) {
    }
  } else {
    try {
      send(api::encode_hello({api::kProtocolVersion, config_.token}));
    } catch (const TransportError&) {
    }
  }
  const auto frame = read_frame(ms(config_.handshake_timeout_ms));
  if (frame.empty()) throw TransportError("connection closed during handshake");
  switch (api::peek_frame_type(frame)) {
    case api::FrameType::kWelcome2:
      welcome_ = api::decode_welcome2(frame);
      return;
    case api::FrameType::kWelcome: {
      const auto w = api::decode_welcome(frame);
      welcome_ = api::Welcome2Frame{};  // Legacy peer: no features, no horizon.
      welcome_.protocol = w.protocol;
      welcome_.epoch = w.epoch;
      return;
    }
    case api::FrameType::kBusy:
      throw BusyError(api::decode_busy(frame));
    case api::FrameType::kError:
      throw ProtocolError(api::decode_error(frame));
    default:
      throw TransportError("unexpected handshake frame type");
  }
}

void ResilientClient::establish_subscription() {
  const std::optional<stream::Epoch> replay =
      last_seen_ ? std::optional<stream::Epoch>(*last_seen_ + 1) : initial_replay_from_;
  const auto id = next_request_id_++;
  send(api::encode_subscribe({id, filter_, replay}));
  std::vector<api::EventFrame> held;
  api::SubscribedFrame ack;
  for (;;) {
    const auto frame = read_frame(ms(config_.handshake_timeout_ms));
    if (frame.empty()) throw TransportError("connection closed awaiting subscribe ack");
    const auto type = api::peek_frame_type(frame);
    if (type == api::FrameType::kSubscribed) {
      ack = api::decode_subscribed(frame);
      if (ack.request_id != id) throw TransportError("subscribe ack for wrong request id");
      break;
    }
    switch (type) {
      case api::FrameType::kEvent:
        held.push_back(api::decode_event(frame));
        break;
      case api::FrameType::kPing:
        send(api::encode_ping(api::decode_ping(frame), api::FrameType::kPong));
        break;
      case api::FrameType::kPong:
        break;
      case api::FrameType::kBusy:
        throw BusyError(api::decode_busy(frame));
      case api::FrameType::kError: {
        auto err = api::decode_error(frame);
        if (err.code == api::ErrorCode::kServerBusy) {
          throw BusyError(api::BusyFrame{err.request_id, 0, err.message});
        }
        throw ProtocolError(std::move(err));
      }
      default:
        throw TransportError("unexpected frame while awaiting subscribe ack");
    }
  }
  subscription_id_ = ack.subscription_id;
  // A legacy server cannot report coverage; assume the replay was complete —
  // the documented residual risk of running resume against a v1 peer.
  const bool complete = ack.replay_complete.value_or(true);
  if (replay && !complete) {
    ++stats_.gap_resyncs;
    obs::metrics().net_client_gap_resyncs.add();
    api::QueryRequest req;
    req.kind = api::QueryKind::kSnapshot;
    const auto resp = query_on_conn(req, &held);
    if (!resp.snapshot) throw TransportError("snapshot re-sync returned no snapshot");
    const stream::Epoch gap_from = *replay;
    const stream::Epoch gap_to =
        std::max<stream::Epoch>(welcome_.epoch, last_seen_.value_or(0));
    auto synth = synthesize_gap_delta(*resp.snapshot, gap_to);
    Event ev;
    ev.kind = Event::Kind::kGap;
    ev.gap_from = gap_from;
    ev.gap_to = gap_to;
    ev.delta.epoch = gap_to;
    ev.delta.changes = filter_.apply(synth);
    apply_changes(synth.changes);  // State catches up on the FULL diff.
    out_events_.push_back(std::move(ev));
    last_seen_ = gap_to;
    min_epoch_ = gap_to + 1;  // The replayed tail below this is lossy: drop it.
  } else {
    min_epoch_ = replay;  // Anything older is an overlap duplicate.
  }
  for (const auto& event : held) deliver_event(event);
}

api::QueryResponse ResilientClient::query(const api::QueryRequest& request) {
  using Clock = std::chrono::steady_clock;
  const bool has_deadline = config_.request_deadline_ms != 0;
  const auto deadline = Clock::now() + ms(config_.request_deadline_ms);
  const auto expired = [&] { return has_deadline && Clock::now() >= deadline; };
  for (;;) {
    // Checked per round, not just on entry: close() is terminal and must not
    // be retried around like a transport failure.
    if (closed_) throw TransportError("resilient client is closed");
    try {
      ensure_session();
      std::vector<api::EventFrame> held;
      auto response = query_on_conn(request, &held);
      for (const auto& event : held) deliver_event(event);
      return response;
    } catch (const RetriesExhausted&) {
      throw;
    } catch (const BusyError& e) {
      ++stats_.busy_deferrals;
      obs::metrics().net_client_busy_deferrals.add();
      // request_id 0 is connection-level: the server closes after sending it.
      if (e.busy().request_id == 0) drop_connection();
      if (expired()) throw;
      sleep_backoff(e.retry_after_ms());
    } catch (const api::WireFormatError&) {
      drop_connection();
      if (expired()) throw TransportError("request deadline expired");
    } catch (const TransportError&) {
      drop_connection();
      if (expired()) throw;
    }
  }
}

api::QueryResponse ResilientClient::query_on_conn(const api::QueryRequest& request,
                                                  std::vector<api::EventFrame>* held) {
  const auto id = next_request_id_++;
  send(api::encode_request({id, request}));
  for (;;) {
    const auto frame = read_frame(ms(config_.request_deadline_ms));
    if (frame.empty()) {
      throw TransportError("connection closed awaiting response " + std::to_string(id));
    }
    switch (api::peek_frame_type(frame)) {
      case api::FrameType::kEvent:
        held->push_back(api::decode_event(frame));
        break;
      case api::FrameType::kResponse: {
        auto response = api::decode_response(frame);
        if (response.request_id != id) {
          throw TransportError("response id does not match request");
        }
        return std::move(response.response);
      }
      case api::FrameType::kPing:
        send(api::encode_ping(api::decode_ping(frame), api::FrameType::kPong));
        break;
      case api::FrameType::kPong:
        break;
      case api::FrameType::kBusy:
        throw BusyError(api::decode_busy(frame));
      case api::FrameType::kError: {
        auto err = api::decode_error(frame);
        if (err.code == api::ErrorCode::kServerBusy) {
          throw BusyError(api::BusyFrame{err.request_id, 0, err.message});
        }
        throw ProtocolError(std::move(err));
      }
      default:
        throw TransportError("unexpected frame while awaiting response");
    }
  }
}

void ResilientClient::subscribe(api::SubscriptionFilter filter,
                                std::optional<stream::Epoch> replay_from) {
  if (subscribed_) {
    throw std::logic_error("ResilientClient maintains a single subscription");
  }
  subscribed_ = true;
  filter_ = std::move(filter);
  initial_replay_from_ = replay_from;
  ensure_session();
}

std::optional<ResilientClient::Event> ResilientClient::next_event() {
  for (;;) {
    if (!out_events_.empty()) {
      auto event = std::move(out_events_.front());
      out_events_.pop_front();
      return event;
    }
    if (closed_ || !subscribed_) return std::nullopt;
    ensure_session();
    // A reconnect inside ensure_session may have queued events (kReconnected,
    // kGap, replayed deltas). Surface those before blocking on the wire, or a
    // quiet stream would sit on them until the next keepalive or live delta.
    if (!out_events_.empty()) continue;
    const bool keepalive = config_.keepalive_interval_ms != 0 &&
                           (welcome_.features & api::kFeatureKeepalive) != 0;
    std::vector<std::uint8_t> frame;
    try {
      frame = read_frame(ms(keepalive ? config_.keepalive_interval_ms : 0));
    } catch (const api::WireFormatError&) {
      drop_connection();
      continue;
    }
    if (frame.empty()) {
      // Without keepalive the read blocks forever, so empty means EOF; with
      // it, empty may just be an idle interval — probe before giving up.
      if (!keepalive || !probe_alive()) drop_connection();
      continue;
    }
    try {
      dispatch_stream_frame(frame);
    } catch (const api::WireFormatError&) {
      drop_connection();
    } catch (const TransportError&) {
      drop_connection();
    }
  }
}

void ResilientClient::dispatch_stream_frame(const std::vector<std::uint8_t>& frame) {
  switch (api::peek_frame_type(frame)) {
    case api::FrameType::kEvent:
      deliver_event(api::decode_event(frame));
      break;
    case api::FrameType::kPing:
      send(api::encode_ping(api::decode_ping(frame), api::FrameType::kPong));
      break;
    case api::FrameType::kPong:
      (void)api::decode_ping(frame, api::FrameType::kPong);
      break;
    case api::FrameType::kBusy: {
      // Connection-level shed: the server closes next; reconnect via the
      // handshake path (which honors the retry-after hint it will resend).
      const auto busy = api::decode_busy(frame);
      if (busy.request_id == 0) drop_connection();
      break;
    }
    case api::FrameType::kError: {
      const auto err = api::decode_error(frame);
      if (err.request_id == 0) drop_connection();
      break;  // Request-level errors on the stream are stale; ignore.
    }
    default:
      drop_connection();
      break;
  }
}

void ResilientClient::deliver_event(const api::EventFrame& event) {
  if (subscription_id_ != 0 && event.subscription_id != subscription_id_) return;
  if (min_epoch_ && event.delta.epoch < *min_epoch_) return;
  apply_changes(event.delta.changes);
  if (!last_seen_ || event.delta.epoch > *last_seen_) last_seen_ = event.delta.epoch;
  Event ev;
  ev.delta = event.delta;
  out_events_.push_back(std::move(ev));
}

void ResilientClient::apply_changes(const std::vector<stream::ClassChange>& changes) {
  for (const auto& change : changes) {
    if (change.after == kNoClass) {
      state_.erase(change.asn);
    } else {
      state_[change.asn] = change.after;
    }
  }
}

api::EpochDelta ResilientClient::synthesize_gap_delta(const core::InferenceResult& snap,
                                                      stream::Epoch epoch) const {
  // One composed ClassChange per AS whose class differs between our
  // materialized view and the snapshot, over the union of both key sets,
  // sorted by ASN like every engine-produced delta.
  std::vector<bgp::Asn> asns;
  asns.reserve(state_.size() + snap.counter_map().size());
  for (const auto& [asn, cls] : state_) asns.push_back(asn);
  for (const auto& [asn, counters] : snap.counter_map()) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());

  api::EpochDelta delta;
  delta.epoch = epoch;
  for (const auto asn : asns) {
    const auto it = state_.find(asn);
    const auto before = it != state_.end() ? it->second : kNoClass;
    const auto after =
        snap.counter_map().contains(asn) ? snap.usage(asn) : kNoClass;
    if (before == after) continue;
    delta.changes.push_back({asn, before, after});
  }
  return delta;
}

bool ResilientClient::probe_alive() {
  try {
    api::PingFrame ping;
    ping.nonce = ++ping_nonce_;
    send(api::encode_ping(ping));
    ++stats_.pings_sent;
    obs::metrics().net_client_pings.add();
    const auto frame = read_frame(ms(config_.keepalive_timeout_ms));
    if (frame.empty()) return false;
    dispatch_stream_frame(frame);  // Any frame proves liveness, not just kPong.
    return conn_ != nullptr;
  } catch (const api::WireFormatError&) {
    return false;
  } catch (const TransportError&) {
    return false;
  }
}

void ResilientClient::drop_connection() {
  if (conn_) conn_->close();
  conn_.reset();
  sub_active_ = false;
}

void ResilientClient::close() {
  closed_ = true;
  drop_connection();
}

void ResilientClient::sleep_backoff(std::optional<std::uint64_t> floor_ms) {
  auto delay = decorrelated_backoff(prev_backoff_ms_, config_.backoff, rng_);
  if (floor_ms && *floor_ms > delay) delay = *floor_ms;
  prev_backoff_ms_ = delay;
  if (delay == 0) return;
  if (config_.sleep_fn) {
    config_.sleep_fn(ms(delay));
  } else {
    std::this_thread::sleep_for(ms(delay));
  }
}

std::vector<std::uint8_t> ResilientClient::read_frame(std::chrono::milliseconds timeout) {
  if (!conn_) throw TransportError("not connected");
  conn_->set_read_timeout(timeout);
  if (chunk_.empty()) chunk_.resize(16384);
  for (;;) {
    auto frame = frames_.extract();
    if (!frame.empty()) return frame;
    const auto n = conn_->read_some(chunk_);
    if (n == 0) return {};
    frames_.append(std::span(chunk_.data(), n));
  }
}

void ResilientClient::send(const std::vector<std::uint8_t>& frame) {
  if (!conn_ || !conn_->write_all(frame)) {
    throw TransportError("connection closed while sending");
  }
}

}  // namespace bgpcu::net
